// Package main_test holds the repository-level benchmarks: one testing.B
// benchmark per table/figure of the paper's evaluation, each delegating to
// the experiment harness in internal/benchmark. Run them with
//
//	go test -bench=. -benchmem
//
// cmd/benchrunner prints the full result tables (the benchmarks here focus on
// timing one representative configuration each so `go test -bench` stays
// fast).
package main_test

import (
	"testing"

	"repro/internal/benchmark"
)

// BenchmarkFig4_1_DataModels times the Figure 4.1 experiment (storage, commit
// and checkout across the five data models) on the smallest scaled dataset.
func BenchmarkFig4_1_DataModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunFig41([]string{"SCI_1K"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab5_2_DatasetStats times workload generation and the Table 5.2
// statistics.
func BenchmarkTab5_2_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunTable52([]string{"SCI_10K", "CUR_10K"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_7_CostModel times the checkout cost model validation sweep
// (join strategy × physical layout × partition size).
func BenchmarkFig5_7_CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunFig57([]int64{2000, 5000}, []int64{100, 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_8_Tradeoff times the storage-vs-checkout parameter sweep of
// LyreSplit, Agglo and Kmeans (Figures 5.8 and 5.20).
func BenchmarkFig5_8_Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunFig58("SCI_10K", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_10_PartitionerRuntime times solving Problem 5.1 (γ = 2|R|)
// with all three partitioners (Figures 5.10 and 5.12).
func BenchmarkFig5_10_PartitionerRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunFig510([]string{"SCI_10K"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_14_PartitionBenefit times the with-vs-without-partitioning
// comparison on physical storage (Figures 5.14 and 5.15).
func BenchmarkFig5_14_PartitionBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunFig514([]string{"SCI_10K"}, 1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentCheckoutScaling times the concurrent checkout scaling
// experiment: N clients (1/2/4/8) concurrently checking out versions of a
// partitioned Fig-5.14-style CVD through one shared engine. The rendered
// table (cmd/benchrunner -experiment concurrent) reports throughput and the
// speedup over a single client.
func BenchmarkConcurrentCheckoutScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunConcurrent(benchmark.ConcurrentConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_17_OnlineMaintenance times the streaming online-maintenance
// and migration simulation (Figures 5.17 and 5.19).
func BenchmarkFig5_17_OnlineMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunFig517("SCI_10K", 1, 1.5, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCh7_StorageRecreation times the Chapter 7 storage/recreation
// algorithm comparison over a collection of text dataset versions.
func BenchmarkCh7_StorageRecreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunCh7(25, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCh8_Lineage times lineage inference with and without signature
// pruning (Section 8.8).
func BenchmarkCh8_Lineage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchmark.RunCh8(20, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecsetSubsystem times the full before/after suite of the
// compressed record-set subsystem (RunRecset): map-based vs recset LyreSplit
// on a 1k-version tree, clone-per-row vs zero-copy partitioned checkout, and
// the set-algebra microworkloads. cmd/benchrunner -experiment recset prints
// the table and writes BENCH_recset.json.
func BenchmarkRecsetSubsystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunRecset("SCI_10K", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableSubsystem times the durable storage suite (RunDurable):
// binary snapshot save/restore, journaled load with fsync per commit, WAL
// streaming replay, and the re-init-from-CSV baseline. The small SCI_1K
// preset keeps the fsync-heavy measurements inside benchtime budgets;
// cmd/benchrunner -experiment durable runs the full-size version and writes
// BENCH_durable.json.
func BenchmarkDurableSubsystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunDurable("SCI_1K", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableIncremental times the incremental-checkpoint experiment
// (RunDurableIncremental): full checkpoint of a seeded history, a small burst
// of commits, then the incremental checkpoint that should rewrite only the
// touched chunks. The small SCI_1K preset keeps it inside benchtime budgets;
// cmd/benchrunner -experiment durable embeds the full-size SCI_50K report in
// BENCH_durable.json (or -experiment durable-incremental writes it alone).
func BenchmarkDurableIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunDurableIncremental("SCI_1K", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarSubsystem times the full before/after suite of the
// columnar storage subsystem (RunColumnar): frozen row-backed tables with
// closure predicates vs typed column vectors with vectorized predicate
// evaluation, plus the checkout and LyreSplit regression guards.
// cmd/benchrunner -experiment columnar prints the table and writes
// BENCH_columnar.json.
func BenchmarkColumnarSubsystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunColumnar("SCI_10K", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupCommitSubsystem times the WAL group-commit sweep
// (RunGroupCommit): the 64/256-client commit storm with fsync-per-commit vs
// batched fsyncs. A reduced per-client commit count keeps the fsync-heavy
// sweep inside benchtime budgets; cmd/benchrunner -experiment groupcommit
// runs the full-size version and writes BENCH_groupcommit.json.
func BenchmarkGroupCommitSubsystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchmark.RunGroupCommit(2); err != nil {
			b.Fatal(err)
		}
	}
}
