// Package parallel is the shared worker-pool utility behind every concurrent
// code path in the engine: parallel multi-version checkout and partition
// builds (package cvd), the LyreSplit candidate-evaluation loop (package
// partition), and the multi-client experiment harness (package benchmark).
//
// All helpers take an explicit worker count so callers can thread the
// engine-level WithWorkers(n) knob through; n <= 0 selects GOMAXPROCS.
// With one worker (or one item) the helpers run inline on the calling
// goroutine, so single-threaded callers pay no synchronization cost and
// produce byte-identical results to the pre-parallel code paths.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes n <= 0:
// the number of CPUs the scheduler may use.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a requested worker count to [1, n] for n work items,
// resolving non-positive requests to DefaultWorkers.
func Normalize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n) using up to workers goroutines.
// Items are handed out dynamically (an atomic counter), so uneven item costs
// balance across workers. It returns when all items are done.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for item functions that can fail. Every item runs to
// completion (no cancellation), and the error of the lowest-indexed failing
// item is returned, making the reported error deterministic regardless of
// scheduling.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if Normalize(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map computes fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for item functions that can fail. On error the first (lowest
// index) error is returned along with a nil slice.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits n items into at most workers contiguous [lo, hi) ranges of
// near-equal size, for data-parallel scans that want one range per worker
// rather than one task per item.
func Chunks(workers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers, n)
	out := make([][2]int, 0, workers)
	base := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
