package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		const n = 1000
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ForEach(4, -3, func(int) { t.Fatal("fn called for n<0") })
}

func TestForEachErrReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEachErr(workers, 100, func(i int) error {
			switch i {
			case 17:
				return errA
			case 80:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want error from item 17", workers, err)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(4, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErr(t *testing.T) {
	got, err := MapErr(3, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[9] != 10 {
		t.Fatalf("unexpected result %v", got)
	}
	boom := errors.New("boom")
	if _, err := MapErr(3, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	}); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(8, 3); got != 3 {
		t.Fatalf("Normalize(8,3) = %d, want 3", got)
	}
	if got := Normalize(0, 100); got < 1 {
		t.Fatalf("Normalize(0,100) = %d, want >= 1", got)
	}
	if got := Normalize(2, 100); got != 2 {
		t.Fatalf("Normalize(2,100) = %d, want 2", got)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{{1, 10}, {3, 10}, {4, 4}, {8, 3}, {2, 1}} {
		chunks := Chunks(tc.workers, tc.n)
		covered := 0
		prev := 0
		for _, c := range chunks {
			if c[0] != prev {
				t.Fatalf("workers=%d n=%d: chunk starts at %d, want %d", tc.workers, tc.n, c[0], prev)
			}
			if c[1] <= c[0] {
				t.Fatalf("workers=%d n=%d: empty chunk %v", tc.workers, tc.n, c)
			}
			covered += c[1] - c[0]
			prev = c[1]
		}
		if covered != tc.n {
			t.Fatalf("workers=%d n=%d: chunks cover %d items", tc.workers, tc.n, covered)
		}
	}
	if Chunks(4, 0) != nil {
		t.Fatal("Chunks(4,0) should be nil")
	}
}
