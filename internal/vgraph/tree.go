package vgraph

import (
	"fmt"
	"sort"
)

// Tree is a version tree: every version has at most one parent. It is the
// structure LyreSplit operates on. Trees are obtained either directly (SCI
// style workloads without merges) or by ToTree, which removes all but the
// heaviest incoming edge of every merged version (Section 5.3.1).
type Tree struct {
	// Root is the root version (the initial commit).
	Root VersionID
	// Parent maps each non-root version to its (single) parent.
	Parent map[VersionID]VersionID
	// Children maps each version to its children, sorted by id.
	Children map[VersionID][]VersionID
	// Weight maps each non-root version to the number of records shared
	// with its parent, w(v, p(v)).
	Weight map[VersionID]int64
	// Records maps each version to |R(v)|.
	Records map[VersionID]int64
	// Attrs and CommonAttrs carry schema sizes for the schema-change-aware
	// partitioner; they may be zero-valued when the schema is fixed.
	Attrs       map[VersionID]int
	CommonAttrs map[VersionID]int
	// DuplicatedRecords is |R̂|: the number of records that are conceptually
	// duplicated when merge edges are dropped (zero for true trees).
	DuplicatedRecords int64
}

// ToTree converts a version graph (possibly a DAG with merges) into a
// version tree by keeping, for every version with multiple parents, only the
// incoming edge with the largest weight. It returns the tree and the number
// of conceptually duplicated records |R̂| (Section 5.3.1): for each dropped
// edge, the records the child shared with that dropped parent but not with
// the kept parent are counted as new records.
func ToTree(g *Graph) (*Tree, error) {
	roots := g.Roots()
	if len(roots) == 0 {
		return nil, fmt.Errorf("vgraph: graph has no root version")
	}
	if len(roots) > 1 {
		return nil, fmt.Errorf("vgraph: graph has %d roots; a CVD has exactly one initial version", len(roots))
	}
	t := &Tree{
		Root:        roots[0],
		Parent:      make(map[VersionID]VersionID),
		Children:    make(map[VersionID][]VersionID),
		Weight:      make(map[VersionID]int64),
		Records:     make(map[VersionID]int64),
		Attrs:       make(map[VersionID]int),
		CommonAttrs: make(map[VersionID]int),
	}
	for _, id := range g.Versions() {
		n := g.Node(id)
		t.Records[id] = n.NumRecords
		t.Attrs[id] = n.NumAttrs
		if len(n.Parents) == 0 {
			continue
		}
		// Keep the incoming edge with the highest weight; ties go to the
		// smaller parent id for determinism.
		best := n.Parents[0]
		bestEdge := g.Edge(best, id)
		for _, p := range n.Parents[1:] {
			e := g.Edge(p, id)
			if e == nil {
				continue
			}
			if e.Weight > bestEdge.Weight || (e.Weight == bestEdge.Weight && p < best) {
				best, bestEdge = p, e
			}
		}
		t.Parent[id] = best
		t.Weight[id] = bestEdge.Weight
		t.CommonAttrs[id] = bestEdge.CommonAttrs
		t.Children[best] = append(t.Children[best], id)
		// Every record shared only through a dropped parent is conceptually
		// re-created in the tree view; we approximate |R̂| per the paper as
		// |R(v)| - w(kept edge) minus genuinely new records, i.e. the extra
		// inherited records attributed to dropped parents, bounded below by 0.
		if len(n.Parents) > 1 {
			var maxDropped int64
			for _, p := range n.Parents {
				if p == best {
					continue
				}
				if e := g.Edge(p, id); e != nil && e.Weight > maxDropped {
					maxDropped = e.Weight
				}
			}
			dup := maxDropped - bestEdge.Weight
			if dup < 0 {
				// The kept edge already covers at least as many records as any
				// dropped edge individually; conservatively count the records
				// the dropped parents contributed beyond the kept parent as 0.
				dup = 0
			}
			t.DuplicatedRecords += dup
		}
	}
	for id := range t.Children {
		c := t.Children[id]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	return t, nil
}

// NumVersions returns the number of versions in the tree.
func (t *Tree) NumVersions() int { return len(t.Records) }

// TotalBipartiteEdges returns |E| = Σ|R(v)|.
func (t *Tree) TotalBipartiteEdges() int64 {
	var total int64
	for _, r := range t.Records {
		total += r
	}
	return total
}

// TotalAttrCells returns Σ a(v)·|R(v)|, the bipartite "cell" count used by
// the schema-change-aware cost model. If attribute counts are absent it
// falls back to treating every version as having one attribute.
func (t *Tree) TotalAttrCells() int64 {
	var total int64
	for id, r := range t.Records {
		a := t.Attrs[id]
		if a <= 0 {
			a = 1
		}
		total += int64(a) * r
	}
	return total
}

// DistinctRecords returns the tree-model estimate of |R|: the root's records
// plus, for every other version, the records not shared with its parent.
// For graphs converted from DAGs this counts duplicated records separately
// (i.e. it returns |R| + |R̂|).
func (t *Tree) DistinctRecords() int64 {
	total := t.Records[t.Root]
	for id, p := range t.Parent {
		_ = p
		total += t.Records[id] - t.Weight[id]
	}
	return total
}

// SubtreeVersions returns all versions in the subtree rooted at v (including
// v), in DFS order.
func (t *Tree) SubtreeVersions(v VersionID) []VersionID {
	var out []VersionID
	stack := []VersionID{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur)
		children := t.Children[cur]
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	return out
}

// Depth returns the number of edges on the path from the root to v; the
// root has depth 0. Unknown versions return -1.
func (t *Tree) Depth(v VersionID) int {
	if _, ok := t.Records[v]; !ok {
		return -1
	}
	d := 0
	for v != t.Root {
		p, ok := t.Parent[v]
		if !ok {
			return -1
		}
		v = p
		d++
	}
	return d
}

// Validate checks structural invariants: single root, acyclic parent chain,
// weights not exceeding either endpoint's record count. Connectivity is
// checked with a memoized walk — each version's parent chain is followed
// only until it reaches a node already known connected — so validation is
// amortized O(n) even on chain-shaped histories (it is called on every
// LyreSplit entry point) and terminates with an error on parent cycles.
func (t *Tree) Validate() error {
	for v := range t.Records {
		if v == t.Root {
			continue
		}
		if _, ok := t.Parent[v]; !ok {
			return fmt.Errorf("vgraph: version %d has no parent and is not the root", v)
		}
	}
	connected := make(map[VersionID]bool, len(t.Records))
	connected[t.Root] = true
	var path []VersionID
	for v, p := range t.Parent {
		if _, ok := t.Records[v]; !ok {
			return fmt.Errorf("vgraph: version %d is not connected to the root", v)
		}
		path = path[:0]
		cur := v
		for !connected[cur] {
			next, ok := t.Parent[cur]
			if !ok {
				return fmt.Errorf("vgraph: version %d is not connected to the root", v)
			}
			path = append(path, cur)
			if len(path) > len(t.Records) {
				return fmt.Errorf("vgraph: version %d's parent chain contains a cycle", v)
			}
			cur = next
		}
		for _, u := range path {
			connected[u] = true
		}
		w := t.Weight[v]
		if w > t.Records[v] || w > t.Records[p] {
			return fmt.Errorf("vgraph: edge %d->%d weight %d exceeds endpoint size (%d, %d)", p, v, w, t.Records[p], t.Records[v])
		}
	}
	return nil
}

// ExpandWeighted builds the frequency-expanded tree T' of Section 5.3.2:
// each version v with checkout frequency f(v) ≥ 1 is replaced by a chain of
// f(v) replicas; the chain head attaches where v attached. It returns the
// expanded tree and a mapping from replica id to original id. Frequencies
// missing from freq default to 1; frequencies below 1 are treated as 1.
//
// Replica ids are synthetic and only meaningful within the returned tree.
func (t *Tree) ExpandWeighted(freq map[VersionID]int) (*Tree, map[VersionID]VersionID) {
	out := &Tree{
		Parent:      make(map[VersionID]VersionID),
		Children:    make(map[VersionID][]VersionID),
		Weight:      make(map[VersionID]int64),
		Records:     make(map[VersionID]int64),
		Attrs:       make(map[VersionID]int),
		CommonAttrs: make(map[VersionID]int),
	}
	origOf := make(map[VersionID]VersionID)
	head := make(map[VersionID]VersionID) // original -> first replica
	tail := make(map[VersionID]VersionID) // original -> last replica
	next := VersionID(1)

	// Deterministic order: BFS from root.
	order := t.SubtreeVersions(t.Root)
	for _, v := range order {
		f := freq[v]
		if f < 1 {
			f = 1
		}
		var prev VersionID
		for i := 0; i < f; i++ {
			id := next
			next++
			origOf[id] = v
			out.Records[id] = t.Records[v]
			out.Attrs[id] = t.Attrs[v]
			if i == 0 {
				head[v] = id
			} else {
				out.Parent[id] = prev
				out.Weight[id] = t.Records[v] // a replica shares everything with its predecessor
				out.Children[prev] = append(out.Children[prev], id)
			}
			prev = id
		}
		tail[v] = prev
	}
	// Connect chain heads following the original tree edges: the head of v
	// attaches to the tail of parent(v).
	for _, v := range order {
		if v == t.Root {
			out.Root = head[v]
			continue
		}
		p := t.Parent[v]
		out.Parent[head[v]] = tail[p]
		out.Weight[head[v]] = t.Weight[v]
		out.CommonAttrs[head[v]] = t.CommonAttrs[v]
		out.Children[tail[p]] = append(out.Children[tail[p]], head[v])
	}
	return out, origOf
}
