package vgraph

import (
	"testing"
)

// paperGraph builds the version graph of Figure 4.2 / 5.5: v1 -> {v2, v3},
// {v2, v3} -> v4, with record counts 3,3,4,6 and edge weights
// (v1,v2)=2, (v1,v3)=3, (v2,v4)=3, (v3,v4)=4.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	g.MustAddVersion(1, 3)
	g.MustAddVersion(2, 3)
	g.MustAddVersion(3, 4)
	g.MustAddVersion(4, 6)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 3, 3)
	g.MustAddEdge(2, 4, 3)
	g.MustAddEdge(3, 4, 4)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := paperGraph(t)
	if g.NumVersions() != 4 || g.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d, want 4, 4", g.NumVersions(), g.NumEdges())
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Roots = %v, want [1]", got)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != 4 {
		t.Errorf("Leaves = %v, want [4]", got)
	}
	if got := g.Parents(4); len(got) != 2 {
		t.Errorf("Parents(4) = %v, want two parents", got)
	}
	if got := g.Children(1); len(got) != 2 {
		t.Errorf("Children(1) = %v, want two children", got)
	}
	if e := g.Edge(3, 4); e == nil || e.Weight != 4 {
		t.Errorf("Edge(3,4) = %+v, want weight 4", e)
	}
	if g.TotalBipartiteEdges() != 16 {
		t.Errorf("TotalBipartiteEdges = %d, want 16", g.TotalBipartiteEdges())
	}
	if g.IsTree() {
		t.Error("graph with a merge should not be a tree")
	}
}

func TestGraphErrors(t *testing.T) {
	g := paperGraph(t)
	if _, err := g.AddVersion(1, 10); err == nil {
		t.Error("duplicate AddVersion should fail")
	}
	if err := g.AddEdge(1, 99, 1); err == nil {
		t.Error("edge to unknown version should fail")
	}
	if err := g.AddEdge(99, 1, 1); err == nil {
		t.Error("edge from unknown version should fail")
	}
	if err := g.AddEdge(1, 2, 1); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := g.AddEdge(2, 2, 1); err == nil {
		t.Error("self edge should fail")
	}
	if err := g.AddEdge(4, 1, 1); err == nil {
		t.Error("cycle-creating edge should fail")
	}
	if err := g.SetEdgeWeight(1, 4, 7); err == nil {
		t.Error("SetEdgeWeight on missing edge should fail")
	}
	if err := g.SetEdgeWeight(1, 2, 7); err != nil {
		t.Errorf("SetEdgeWeight: %v", err)
	}
	if g.Edge(1, 2).Weight != 7 {
		t.Error("SetEdgeWeight did not take effect")
	}
}

func TestAncestorsDescendantsNeighborhood(t *testing.T) {
	g := paperGraph(t)
	if got := g.Ancestors(4, 0); len(got) != 3 {
		t.Errorf("Ancestors(4) = %v, want 3 versions", got)
	}
	if got := g.Ancestors(4, 1); len(got) != 2 {
		t.Errorf("Ancestors(4, 1 hop) = %v, want the two parents", got)
	}
	if got := g.Descendants(1, 0); len(got) != 3 {
		t.Errorf("Descendants(1) = %v, want 3 versions", got)
	}
	if got := g.Descendants(2, 0); len(got) != 1 || got[0] != 4 {
		t.Errorf("Descendants(2) = %v, want [4]", got)
	}
	if got := g.Neighborhood(2, 1); len(got) != 2 {
		t.Errorf("Neighborhood(2,1) = %v, want [1 4]", got)
	}
	if got := g.Neighborhood(1, 2); len(got) != 3 {
		t.Errorf("Neighborhood(1,2) = %v, want 3 versions", got)
	}
	if got := g.Ancestors(99, 0); got != nil {
		t.Errorf("Ancestors of unknown version = %v, want nil", got)
	}
}

func TestLevelsAndTopoOrder(t *testing.T) {
	g := paperGraph(t)
	levels := g.Levels()
	want := map[VersionID]int{1: 1, 2: 2, 3: 2, 4: 3}
	for v, l := range want {
		if levels[v] != l {
			t.Errorf("level(%d) = %d, want %d", v, levels[v], l)
		}
	}
	order := g.TopoOrder()
	pos := make(map[VersionID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Parent] >= pos[e.Child] {
			t.Errorf("topo order violates edge %d->%d", e.Parent, e.Child)
		}
	}
}

func TestGraphClone(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	c.MustAddVersion(5, 10)
	c.MustAddEdge(4, 5, 6)
	if g.NumVersions() != 4 {
		t.Error("Clone shares node storage with original")
	}
	if g.Edge(4, 5) != nil {
		t.Error("Clone shares edge storage")
	}
	if c.NumVersions() != 5 || c.Edge(4, 5) == nil {
		t.Error("clone missing additions")
	}
}

func TestToTreePicksHeaviestParent(t *testing.T) {
	g := paperGraph(t)
	tree, err := ToTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 1 {
		t.Errorf("Root = %d, want 1", tree.Root)
	}
	// v4 has parents v2 (w=3) and v3 (w=4): keep v3.
	if tree.Parent[4] != 3 {
		t.Errorf("Parent(4) = %d, want 3", tree.Parent[4])
	}
	if tree.Weight[4] != 4 {
		t.Errorf("Weight(4) = %d, want 4", tree.Weight[4])
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The paper's example: v4 keeps 4 records from v3 and duplicates 2
	// records shared only with v2... our conservative formula counts
	// max(dropped) - kept clipped at 0, so duplicates here are 0; distinct
	// records = 3 + (3-2) + (4-3) + (6-4) = 7.
	if got := tree.DistinctRecords(); got != 7 {
		t.Errorf("DistinctRecords = %d, want 7", got)
	}
}

func TestToTreeErrors(t *testing.T) {
	g := New()
	if _, err := ToTree(g); err == nil {
		t.Error("empty graph should fail ToTree")
	}
	g.MustAddVersion(1, 5)
	g.MustAddVersion(2, 5)
	// two roots
	if _, err := ToTree(g); err == nil {
		t.Error("graph with two roots should fail ToTree")
	}
}

func TestTreeSubtreeAndDepth(t *testing.T) {
	g := New()
	// chain 1 -> 2 -> 3 with a branch 2 -> 4
	g.MustAddVersion(1, 10)
	g.MustAddVersion(2, 12)
	g.MustAddVersion(3, 14)
	g.MustAddVersion(4, 11)
	g.MustAddEdge(1, 2, 9)
	g.MustAddEdge(2, 3, 11)
	g.MustAddEdge(2, 4, 10)
	tree, err := ToTree(g)
	if err != nil {
		t.Fatal(err)
	}
	sub := tree.SubtreeVersions(2)
	if len(sub) != 3 {
		t.Errorf("SubtreeVersions(2) = %v, want 3 versions", sub)
	}
	if d := tree.Depth(3); d != 2 {
		t.Errorf("Depth(3) = %d, want 2", d)
	}
	if d := tree.Depth(1); d != 0 {
		t.Errorf("Depth(1) = %d, want 0", d)
	}
	if d := tree.Depth(99); d != -1 {
		t.Errorf("Depth(99) = %d, want -1", d)
	}
	if tree.TotalBipartiteEdges() != 47 {
		t.Errorf("TotalBipartiteEdges = %d, want 47", tree.TotalBipartiteEdges())
	}
	// DistinctRecords = 10 + (12-9) + (14-11) + (11-10) = 17
	if got := tree.DistinctRecords(); got != 17 {
		t.Errorf("DistinctRecords = %d, want 17", got)
	}
}

func TestExpandWeighted(t *testing.T) {
	g := New()
	g.MustAddVersion(1, 10)
	g.MustAddVersion(2, 12)
	g.MustAddEdge(1, 2, 8)
	tree, err := ToTree(g)
	if err != nil {
		t.Fatal(err)
	}
	expanded, origOf := tree.ExpandWeighted(map[VersionID]int{1: 2, 2: 3})
	if expanded.NumVersions() != 5 {
		t.Fatalf("expanded |V| = %d, want 5", expanded.NumVersions())
	}
	if err := expanded.Validate(); err != nil {
		t.Fatalf("expanded tree invalid: %v", err)
	}
	// Count replicas per original.
	counts := map[VersionID]int{}
	for _, orig := range origOf {
		counts[orig]++
	}
	if counts[1] != 2 || counts[2] != 3 {
		t.Errorf("replica counts = %v, want {1:2, 2:3}", counts)
	}
	// Total bipartite edges = f1*|R(1)| + f2*|R(2)| = 2*10 + 3*12 = 56.
	if got := expanded.TotalBipartiteEdges(); got != 56 {
		t.Errorf("expanded |E| = %d, want 56", got)
	}
	// Frequencies default to 1 when missing.
	expanded2, _ := tree.ExpandWeighted(nil)
	if expanded2.NumVersions() != 2 {
		t.Errorf("default expansion |V| = %d, want 2", expanded2.NumVersions())
	}
}

func TestTreeValidateCatchesBadWeight(t *testing.T) {
	tree := &Tree{
		Root:     1,
		Parent:   map[VersionID]VersionID{2: 1},
		Children: map[VersionID][]VersionID{1: {2}},
		Weight:   map[VersionID]int64{2: 50},
		Records:  map[VersionID]int64{1: 10, 2: 12},
	}
	if err := tree.Validate(); err == nil {
		t.Error("weight exceeding record counts should fail validation")
	}
}
