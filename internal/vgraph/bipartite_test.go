package vgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure51 builds the bipartite graph of Figure 5.1: versions v1..v4 over
// records r1..r7.
func figure51() *Bipartite {
	b := NewBipartite()
	b.SetVersion(1, []RecordID{1, 2, 3})
	b.SetVersion(2, []RecordID{2, 3, 4})
	b.SetVersion(3, []RecordID{3, 5, 6, 7})
	b.SetVersion(4, []RecordID{2, 3, 4, 5, 6, 7})
	return b
}

func TestBipartiteBasics(t *testing.T) {
	b := figure51()
	if b.NumVersions() != 4 {
		t.Errorf("|V| = %d, want 4", b.NumVersions())
	}
	if b.NumRecords() != 7 {
		t.Errorf("|R| = %d, want 7", b.NumRecords())
	}
	if b.NumEdges() != 16 {
		t.Errorf("|E| = %d, want 16", b.NumEdges())
	}
	if !b.HasVersion(3) || b.HasVersion(9) {
		t.Error("HasVersion wrong")
	}
	if got := b.CommonRecords(1, 2); got != 2 {
		t.Errorf("CommonRecords(1,2) = %d, want 2", got)
	}
	if got := b.CommonRecords(1, 4); got != 2 {
		t.Errorf("CommonRecords(1,4) = %d, want 2", got)
	}
	if got := b.UnionSize([]VersionID{1, 2}); got != 4 {
		t.Errorf("UnionSize(1,2) = %d, want 4", got)
	}
	if got := b.Union([]VersionID{3, 4}); len(got) != 6 {
		t.Errorf("Union(3,4) = %v, want 6 records", got)
	}
}

func TestBipartiteSetVersionDedupAndSort(t *testing.T) {
	b := NewBipartite()
	b.SetVersion(1, []RecordID{5, 1, 3, 5, 1})
	rs := b.Records(1)
	want := []RecordID{1, 3, 5}
	if len(rs) != len(want) {
		t.Fatalf("Records = %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Records = %v, want %v", rs, want)
		}
	}
	// Replacing is allowed and keeps |V| constant.
	b.SetVersion(1, []RecordID{7})
	if b.NumVersions() != 1 || b.Records(1)[0] != 7 {
		t.Error("SetVersion replacement failed")
	}
}

func TestBuildGraph(t *testing.T) {
	b := figure51()
	g, err := b.BuildGraph([][2]VersionID{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVersions() != 4 || g.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVersions(), g.NumEdges())
	}
	if g.Edge(3, 4).Weight != 4 {
		t.Errorf("edge (3,4) weight = %d, want 4", g.Edge(3, 4).Weight)
	}
	if g.Node(4).NumRecords != 6 {
		t.Errorf("|R(4)| = %d, want 6", g.Node(4).NumRecords)
	}
	if _, err := b.BuildGraph([][2]VersionID{{1, 99}}); err == nil {
		t.Error("derivation referencing unknown version should fail")
	}
}

func TestEvaluatePartitioning(t *testing.T) {
	b := figure51()
	// Figure 5.1(b): P1 = {v1, v2}, P2 = {v3, v4}.
	p := NewPartitioning(map[VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	cost := b.EvaluatePartitioning(p)
	// R1 = {1,2,3,4} (4 records), R2 = {2,3,4,5,6,7} (6 records).
	if cost.Storage != 10 {
		t.Errorf("Storage = %d, want 10", cost.Storage)
	}
	if cost.TotalCheckout != 2*4+2*6 {
		t.Errorf("TotalCheckout = %d, want 20", cost.TotalCheckout)
	}
	if cost.AvgCheckout != 5 {
		t.Errorf("AvgCheckout = %g, want 5", cost.AvgCheckout)
	}
	if cost.MaxCheckout != 6 {
		t.Errorf("MaxCheckout = %d, want 6", cost.MaxCheckout)
	}
}

func TestPartitioningExtremes(t *testing.T) {
	b := figure51()
	// All in one partition: S = |R| = 7, Cavg = |R| = 7 (Observation 5.2).
	single := NewPartitioning(map[VersionID]int{1: 0, 2: 0, 3: 0, 4: 0})
	c1 := b.EvaluatePartitioning(single)
	if c1.Storage != 7 || c1.AvgCheckout != 7 {
		t.Errorf("single partition: S=%d Cavg=%g, want 7, 7", c1.Storage, c1.AvgCheckout)
	}
	// Each version its own partition: S = |E| = 16, Cavg = |E|/|V| = 4
	// (Observation 5.1).
	each := NewPartitioning(map[VersionID]int{1: 0, 2: 1, 3: 2, 4: 3})
	c2 := b.EvaluatePartitioning(each)
	if c2.Storage != 16 || c2.AvgCheckout != 4 {
		t.Errorf("per-version partitions: S=%d Cavg=%g, want 16, 4", c2.Storage, c2.AvgCheckout)
	}
	if c1.Storage > c2.Storage {
		t.Error("single partition must minimize storage")
	}
	if c2.AvgCheckout > c1.AvgCheckout {
		t.Error("per-version partitions must minimize checkout")
	}
}

func TestNewPartitioningCompactsIndexes(t *testing.T) {
	p := NewPartitioning(map[VersionID]int{1: 5, 2: 9, 3: 5})
	if p.NumPartitions != 2 {
		t.Fatalf("NumPartitions = %d, want 2", p.NumPartitions)
	}
	if p.Assignment[1] != p.Assignment[3] {
		t.Error("versions 1 and 3 should share a partition")
	}
	if p.Assignment[1] == p.Assignment[2] {
		t.Error("versions 1 and 2 should be in different partitions")
	}
	got := p.VersionsOf(p.Assignment[1])
	if len(got) != 2 {
		t.Errorf("VersionsOf = %v, want two versions", got)
	}
	if groups := p.Groups(); len(groups) != 2 {
		t.Errorf("Groups = %v, want 2 groups", groups)
	}
}

func TestWeightedCheckoutCost(t *testing.T) {
	b := figure51()
	p := NewPartitioning(map[VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	// Unweighted equals AvgCheckout.
	unweighted := b.WeightedCheckoutCost(p, nil)
	if unweighted != 5 {
		t.Errorf("unweighted cost = %g, want 5", unweighted)
	}
	// Heavily weight v4 (in the 6-record partition): cost should rise.
	weighted := b.WeightedCheckoutCost(p, map[VersionID]int{4: 10})
	if weighted <= unweighted {
		t.Errorf("weighting an expensive version should raise the cost: %g <= %g", weighted, unweighted)
	}
}

// Property: for any random partitioning, the storage cost is between |R| and
// |E|, and the average checkout cost is between |E|/|V| and |R|... the upper
// storage bound |E| holds because each version's records are counted at most
// once per partition containing that version.
func TestPartitionCostBoundsProperty(t *testing.T) {
	b := figure51()
	nR := b.NumRecords()
	nE := b.NumEdges()
	nV := int64(b.NumVersions())
	f := func(a, c, d, e uint8) bool {
		p := NewPartitioning(map[VersionID]int{
			1: int(a % 4), 2: int(c % 4), 3: int(d % 4), 4: int(e % 4),
		})
		cost := b.EvaluatePartitioning(p)
		if cost.Storage < nR || cost.Storage > nE {
			return false
		}
		minAvg := float64(nE) / float64(nV)
		return cost.AvgCheckout >= minAvg-1e-9 && cost.AvgCheckout <= float64(nR)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CommonRecords is symmetric and bounded by min(|R(a)|, |R(b)|).
func TestCommonRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBipartite()
	for v := VersionID(1); v <= 20; v++ {
		n := rng.Intn(50)
		rs := make([]RecordID, n)
		for i := range rs {
			rs[i] = RecordID(rng.Intn(100))
		}
		b.SetVersion(v, rs)
	}
	for x := VersionID(1); x <= 20; x++ {
		for y := VersionID(1); y <= 20; y++ {
			c1, c2 := b.CommonRecords(x, y), b.CommonRecords(y, x)
			if c1 != c2 {
				t.Fatalf("CommonRecords not symmetric for (%d,%d): %d vs %d", x, y, c1, c2)
			}
			lx, ly := int64(len(b.Records(x))), int64(len(b.Records(y)))
			limit := lx
			if ly < lx {
				limit = ly
			}
			if c1 > limit {
				t.Fatalf("CommonRecords(%d,%d) = %d exceeds min size %d", x, y, c1, limit)
			}
		}
	}
}

// TestNumRecordsIncremental verifies the incrementally maintained
// distinct-record union: adds keep it in sync without rebuilds, and a
// version replacement (which can shrink the union) triggers the lazy
// rebuild path.
func TestNumRecordsIncremental(t *testing.T) {
	b := NewBipartite()
	b.SetVersion(1, []RecordID{1, 2, 3})
	if got := b.NumRecords(); got != 3 {
		t.Fatalf("NumRecords = %d, want 3", got)
	}
	b.SetVersion(2, []RecordID{3, 4, 5})
	if got := b.NumRecords(); got != 5 {
		t.Fatalf("NumRecords = %d, want 5", got)
	}
	// Replacement removes records 1 and 2 from the union entirely.
	b.SetVersion(1, []RecordID{3})
	if got := b.NumRecords(); got != 3 {
		t.Fatalf("NumRecords after replacement = %d, want 3", got)
	}
	// Adds after a rebuild keep maintaining the union incrementally.
	b.SetVersion(3, []RecordID{10})
	if got := b.NumRecords(); got != 4 {
		t.Fatalf("NumRecords after post-rebuild add = %d, want 4", got)
	}
	if got := b.AllRecords().Len(); got != 4 {
		t.Fatalf("AllRecords().Len() = %d, want 4", got)
	}
}

// TestRecordSetSharedAndRecordsFresh pins the ownership contract: RecordSet
// returns the shared set, Records returns a fresh slice the caller owns.
func TestRecordSetSharedAndRecordsFresh(t *testing.T) {
	b := NewBipartite()
	b.SetVersion(1, []RecordID{5, 1, 5, 9})
	rs := b.Records(1)
	want := []RecordID{1, 5, 9}
	if len(rs) != len(want) {
		t.Fatalf("Records = %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Records = %v, want %v", rs, want)
		}
	}
	rs[0] = 999 // mutating the returned slice must not affect the graph
	if got := b.Records(1)[0]; got != 1 {
		t.Fatalf("Records slice is not fresh: got %d after caller mutation", got)
	}
	if b.RecordSet(1).Len() != 3 || !b.RecordSet(1).Contains(5) {
		t.Fatal("RecordSet does not reflect the stored set")
	}
	if b.NumRecordsOf(1) != 3 {
		t.Fatalf("NumRecordsOf = %d, want 3", b.NumRecordsOf(1))
	}
}
