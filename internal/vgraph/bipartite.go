package vgraph

import (
	"fmt"
	"sort"

	"repro/internal/recset"
)

// RecordID identifies an immutable record within a CVD.
type RecordID int64

// Bipartite is the version-record bipartite graph G = (V, R, E) of Chapter 5:
// for every version it stores the compressed record set (package recset) the
// version contains. The baseline partitioners (Agglo, Kmeans) operate on this
// graph, and it is also used to compute exact storage / checkout costs of a
// partitioning scheme. The distinct-record union across versions is
// maintained incrementally, so NumRecords is O(1) instead of a full rebuild.
type Bipartite struct {
	versions map[VersionID]*recset.Set
	order    []VersionID

	// all is the running union of every version's records, maintained on the
	// write path (SetVersion) so every read — NumRecords in particular —
	// stays pure and safe for concurrent readers of a live graph.
	all *recset.Set
}

// NewBipartite creates an empty bipartite graph.
func NewBipartite() *Bipartite {
	return &Bipartite{versions: make(map[VersionID]*recset.Set), all: recset.New()}
}

// SetVersion records the record set of a version, replacing any previous
// value. The record list may be unsorted and contain duplicates.
func (b *Bipartite) SetVersion(v VersionID, records []RecordID) {
	vals := make([]int64, len(records))
	for i, r := range records {
		vals[i] = int64(r)
	}
	b.SetVersionSet(v, recset.FromSlice(vals))
}

// SetVersionSet is SetVersion taking an already-built record set. The set is
// owned by the graph afterwards: the caller must not mutate it (sharing it
// for reads is fine).
func (b *Bipartite) SetVersionSet(v VersionID, rs *recset.Set) {
	if rs == nil {
		rs = recset.New()
	}
	if _, exists := b.versions[v]; exists {
		// Replacement may remove records from the distinct union; rebuild it
		// here, on the (serialized) write path, so reads stay pure.
		b.versions[v] = rs
		b.all = recset.New()
		for _, other := range b.versions {
			b.all.UnionWith(other)
		}
		return
	}
	b.order = append(b.order, v)
	b.all.UnionWith(rs)
	b.versions[v] = rs
}

// RecordSet returns the compressed record set of a version (nil when the
// version is unknown). The set is shared and must be treated as read-only.
func (b *Bipartite) RecordSet(v VersionID) *recset.Set { return b.versions[v] }

// RecordIDs materializes a compressed record set as a fresh sorted RecordID
// slice (nil for a nil or empty set).
func RecordIDs(s *recset.Set) []RecordID {
	if s.IsEmpty() {
		return nil
	}
	out := make([]RecordID, 0, s.Len())
	s.ForEach(func(x int64) bool {
		out = append(out, RecordID(x))
		return true
	})
	return out
}

// Records returns the sorted record ids of a version as a fresh slice the
// caller owns.
func (b *Bipartite) Records(v VersionID) []RecordID {
	return RecordIDs(b.versions[v])
}

// NumRecordsOf returns |R(v)| for one version (0 when unknown).
func (b *Bipartite) NumRecordsOf(v VersionID) int64 { return b.versions[v].Len() }

// HasVersion reports whether the version is present.
func (b *Bipartite) HasVersion(v VersionID) bool {
	_, ok := b.versions[v]
	return ok
}

// Versions returns all version ids in insertion order.
func (b *Bipartite) Versions() []VersionID {
	out := make([]VersionID, len(b.order))
	copy(out, b.order)
	return out
}

// NumVersions returns |V|.
func (b *Bipartite) NumVersions() int { return len(b.versions) }

// NumRecords returns |R|, the number of distinct records across versions,
// from the union maintained incrementally by SetVersion. Pure read: safe to
// call from any number of goroutines sharing a live graph.
func (b *Bipartite) NumRecords() int64 { return b.all.Len() }

// AllRecords returns the distinct-record union across all versions as a
// shared, read-only set.
func (b *Bipartite) AllRecords() *recset.Set { return b.all }

// NumEdges returns |E| = Σ_v |R(v)|.
func (b *Bipartite) NumEdges() int64 {
	var total int64
	for _, rs := range b.versions {
		total += rs.Len()
	}
	return total
}

// CommonRecords returns |R(a) ∩ R(b)| without materializing the
// intersection.
func (b *Bipartite) CommonRecords(x, y VersionID) int64 {
	return recset.AndLen(b.versions[x], b.versions[y])
}

// UnionSet returns ∪ R(v) over the given versions as a fresh set the caller
// owns.
func (b *Bipartite) UnionSet(vs []VersionID) *recset.Set {
	out := recset.New()
	for _, v := range vs {
		out.UnionWith(b.versions[v])
	}
	return out
}

// UnionSize returns |∪ R(v)| over the given versions.
func (b *Bipartite) UnionSize(vs []VersionID) int64 {
	if len(vs) == 1 {
		return b.versions[vs[0]].Len()
	}
	return b.UnionSet(vs).Len()
}

// Union returns the sorted union of record ids over the given versions.
func (b *Bipartite) Union(vs []VersionID) []RecordID {
	return RecordIDs(b.UnionSet(vs))
}

// BuildGraph derives a version Graph from the bipartite graph and an
// explicit set of derivation edges (parent, child): node sizes are |R(v)|
// and edge weights are the exact common-record counts. It is the bridge the
// benchmark generators use to hand workloads to the partitioners.
func (b *Bipartite) BuildGraph(derivations [][2]VersionID) (*Graph, error) {
	g := New()
	for _, v := range b.order {
		if _, err := g.AddVersion(v, b.versions[v].Len()); err != nil {
			return nil, err
		}
	}
	for _, d := range derivations {
		parent, child := d[0], d[1]
		if !b.HasVersion(parent) || !b.HasVersion(child) {
			return nil, fmt.Errorf("vgraph: derivation %d->%d references unknown version", parent, child)
		}
		if err := g.AddEdge(parent, child, b.CommonRecords(parent, child)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Partitioning assigns every version to exactly one partition; records may
// be replicated across partitions (Section 5.1). Partition indexes are
// 0-based and dense.
type Partitioning struct {
	// Assignment maps version id -> partition index.
	Assignment map[VersionID]int
	// NumPartitions is the number of partitions.
	NumPartitions int
}

// NewPartitioning creates a partitioning from an assignment map, compacting
// partition indexes to be dense.
func NewPartitioning(assignment map[VersionID]int) Partitioning {
	remap := make(map[int]int)
	out := make(map[VersionID]int, len(assignment))
	// Deterministic remapping: iterate versions in sorted order.
	vs := make([]VersionID, 0, len(assignment))
	for v := range assignment {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		p := assignment[v]
		np, ok := remap[p]
		if !ok {
			np = len(remap)
			remap[p] = np
		}
		out[v] = np
	}
	return Partitioning{Assignment: out, NumPartitions: len(remap)}
}

// VersionsOf returns the versions assigned to partition k, sorted by id.
func (p Partitioning) VersionsOf(k int) []VersionID {
	var out []VersionID
	for v, pk := range p.Assignment {
		if pk == k {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups returns, for each partition, its versions.
func (p Partitioning) Groups() [][]VersionID {
	out := make([][]VersionID, p.NumPartitions)
	for v, k := range p.Assignment {
		out[k] = append(out[k], v)
	}
	for k := range out {
		sort.Slice(out[k], func(i, j int) bool { return out[k][i] < out[k][j] })
	}
	return out
}

// PartitionCost holds the exact storage and checkout cost of a partitioning
// evaluated against a bipartite graph (Equations 5.1 and 5.2).
type PartitionCost struct {
	// Storage is S = Σ_k |R_k| in records.
	Storage int64
	// TotalCheckout is Σ_i C_i = Σ_k |V_k|·|R_k| in records.
	TotalCheckout int64
	// AvgCheckout is TotalCheckout / |V|.
	AvgCheckout float64
	// MaxCheckout is max_k |R_k|.
	MaxCheckout int64
	// PartitionRecords lists |R_k| per partition.
	PartitionRecords []int64
	// PartitionVersions lists |V_k| per partition.
	PartitionVersions []int
}

// EvaluatePartitioning computes the exact cost metrics of a partitioning over
// this bipartite graph.
func (b *Bipartite) EvaluatePartitioning(p Partitioning) PartitionCost {
	groups := p.Groups()
	cost := PartitionCost{
		PartitionRecords:  make([]int64, len(groups)),
		PartitionVersions: make([]int, len(groups)),
	}
	for k, vs := range groups {
		rk := b.UnionSize(vs)
		cost.PartitionRecords[k] = rk
		cost.PartitionVersions[k] = len(vs)
		cost.Storage += rk
		cost.TotalCheckout += rk * int64(len(vs))
		if rk > cost.MaxCheckout {
			cost.MaxCheckout = rk
		}
	}
	if n := b.NumVersions(); n > 0 {
		cost.AvgCheckout = float64(cost.TotalCheckout) / float64(n)
	}
	return cost
}

// WeightedCheckoutCost computes the frequency-weighted checkout cost
// Σ f_i·C_i / Σ f_i of a partitioning (Section 5.3.2). Versions missing from
// freq have frequency 1.
func (b *Bipartite) WeightedCheckoutCost(p Partitioning, freq map[VersionID]int) float64 {
	groups := p.Groups()
	var num, den float64
	for _, vs := range groups {
		rk := float64(b.UnionSize(vs))
		for _, v := range vs {
			f := freq[v]
			if f < 1 {
				f = 1
			}
			num += float64(f) * rk
			den += float64(f)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
