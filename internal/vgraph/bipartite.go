package vgraph

import (
	"fmt"
	"sort"
)

// RecordID identifies an immutable record within a CVD.
type RecordID int64

// Bipartite is the version-record bipartite graph G = (V, R, E) of Chapter 5:
// for every version it stores the (sorted) set of record ids the version
// contains. The baseline partitioners (Agglo, Kmeans) operate on this graph,
// and it is also used to compute exact storage / checkout costs of a
// partitioning scheme.
type Bipartite struct {
	versions map[VersionID][]RecordID
	order    []VersionID
}

// NewBipartite creates an empty bipartite graph.
func NewBipartite() *Bipartite {
	return &Bipartite{versions: make(map[VersionID][]RecordID)}
}

// SetVersion records the record set of a version, replacing any previous
// value. The record list is copied and sorted.
func (b *Bipartite) SetVersion(v VersionID, records []RecordID) {
	rs := make([]RecordID, len(records))
	copy(rs, records)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	// Deduplicate.
	rs = dedupRecords(rs)
	if _, exists := b.versions[v]; !exists {
		b.order = append(b.order, v)
	}
	b.versions[v] = rs
}

func dedupRecords(rs []RecordID) []RecordID {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// Records returns the sorted record ids of a version (shared slice; callers
// must not mutate it).
func (b *Bipartite) Records(v VersionID) []RecordID { return b.versions[v] }

// HasVersion reports whether the version is present.
func (b *Bipartite) HasVersion(v VersionID) bool {
	_, ok := b.versions[v]
	return ok
}

// Versions returns all version ids in insertion order.
func (b *Bipartite) Versions() []VersionID {
	out := make([]VersionID, len(b.order))
	copy(out, b.order)
	return out
}

// NumVersions returns |V|.
func (b *Bipartite) NumVersions() int { return len(b.versions) }

// NumRecords returns |R|, the number of distinct records across versions.
func (b *Bipartite) NumRecords() int64 {
	seen := make(map[RecordID]struct{})
	for _, rs := range b.versions {
		for _, r := range rs {
			seen[r] = struct{}{}
		}
	}
	return int64(len(seen))
}

// NumEdges returns |E| = Σ_v |R(v)|.
func (b *Bipartite) NumEdges() int64 {
	var total int64
	for _, rs := range b.versions {
		total += int64(len(rs))
	}
	return total
}

// CommonRecords returns |R(a) ∩ R(b)| computed by merging the two sorted
// record lists.
func (b *Bipartite) CommonRecords(x, y VersionID) int64 {
	a, bb := b.versions[x], b.versions[y]
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(bb) {
		switch {
		case a[i] < bb[j]:
			i++
		case a[i] > bb[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |∪ R(v)| over the given versions.
func (b *Bipartite) UnionSize(vs []VersionID) int64 {
	seen := make(map[RecordID]struct{})
	for _, v := range vs {
		for _, r := range b.versions[v] {
			seen[r] = struct{}{}
		}
	}
	return int64(len(seen))
}

// Union returns the sorted union of record ids over the given versions.
func (b *Bipartite) Union(vs []VersionID) []RecordID {
	seen := make(map[RecordID]struct{})
	for _, v := range vs {
		for _, r := range b.versions[v] {
			seen[r] = struct{}{}
		}
	}
	out := make([]RecordID, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildGraph derives a version Graph from the bipartite graph and an
// explicit set of derivation edges (parent, child): node sizes are |R(v)|
// and edge weights are the exact common-record counts. It is the bridge the
// benchmark generators use to hand workloads to the partitioners.
func (b *Bipartite) BuildGraph(derivations [][2]VersionID) (*Graph, error) {
	g := New()
	for _, v := range b.order {
		if _, err := g.AddVersion(v, int64(len(b.versions[v]))); err != nil {
			return nil, err
		}
	}
	for _, d := range derivations {
		parent, child := d[0], d[1]
		if !b.HasVersion(parent) || !b.HasVersion(child) {
			return nil, fmt.Errorf("vgraph: derivation %d->%d references unknown version", parent, child)
		}
		if err := g.AddEdge(parent, child, b.CommonRecords(parent, child)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Partitioning assigns every version to exactly one partition; records may
// be replicated across partitions (Section 5.1). Partition indexes are
// 0-based and dense.
type Partitioning struct {
	// Assignment maps version id -> partition index.
	Assignment map[VersionID]int
	// NumPartitions is the number of partitions.
	NumPartitions int
}

// NewPartitioning creates a partitioning from an assignment map, compacting
// partition indexes to be dense.
func NewPartitioning(assignment map[VersionID]int) Partitioning {
	remap := make(map[int]int)
	out := make(map[VersionID]int, len(assignment))
	// Deterministic remapping: iterate versions in sorted order.
	vs := make([]VersionID, 0, len(assignment))
	for v := range assignment {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		p := assignment[v]
		np, ok := remap[p]
		if !ok {
			np = len(remap)
			remap[p] = np
		}
		out[v] = np
	}
	return Partitioning{Assignment: out, NumPartitions: len(remap)}
}

// VersionsOf returns the versions assigned to partition k, sorted by id.
func (p Partitioning) VersionsOf(k int) []VersionID {
	var out []VersionID
	for v, pk := range p.Assignment {
		if pk == k {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups returns, for each partition, its versions.
func (p Partitioning) Groups() [][]VersionID {
	out := make([][]VersionID, p.NumPartitions)
	for v, k := range p.Assignment {
		out[k] = append(out[k], v)
	}
	for k := range out {
		sort.Slice(out[k], func(i, j int) bool { return out[k][i] < out[k][j] })
	}
	return out
}

// PartitionCost holds the exact storage and checkout cost of a partitioning
// evaluated against a bipartite graph (Equations 5.1 and 5.2).
type PartitionCost struct {
	// Storage is S = Σ_k |R_k| in records.
	Storage int64
	// TotalCheckout is Σ_i C_i = Σ_k |V_k|·|R_k| in records.
	TotalCheckout int64
	// AvgCheckout is TotalCheckout / |V|.
	AvgCheckout float64
	// MaxCheckout is max_k |R_k|.
	MaxCheckout int64
	// PartitionRecords lists |R_k| per partition.
	PartitionRecords []int64
	// PartitionVersions lists |V_k| per partition.
	PartitionVersions []int
}

// EvaluatePartitioning computes the exact cost metrics of a partitioning over
// this bipartite graph.
func (b *Bipartite) EvaluatePartitioning(p Partitioning) PartitionCost {
	groups := p.Groups()
	cost := PartitionCost{
		PartitionRecords:  make([]int64, len(groups)),
		PartitionVersions: make([]int, len(groups)),
	}
	for k, vs := range groups {
		rk := b.UnionSize(vs)
		cost.PartitionRecords[k] = rk
		cost.PartitionVersions[k] = len(vs)
		cost.Storage += rk
		cost.TotalCheckout += rk * int64(len(vs))
		if rk > cost.MaxCheckout {
			cost.MaxCheckout = rk
		}
	}
	if n := b.NumVersions(); n > 0 {
		cost.AvgCheckout = float64(cost.TotalCheckout) / float64(n)
	}
	return cost
}

// WeightedCheckoutCost computes the frequency-weighted checkout cost
// Σ f_i·C_i / Σ f_i of a partitioning (Section 5.3.2). Versions missing from
// freq have frequency 1.
func (b *Bipartite) WeightedCheckoutCost(p Partitioning, freq map[VersionID]int) float64 {
	groups := p.Groups()
	var num, den float64
	for _, vs := range groups {
		rk := float64(b.UnionSize(vs))
		for _, v := range vs {
			f := freq[v]
			if f < 1 {
				f = 1
			}
			num += float64(f) * rk
			den += float64(f)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
