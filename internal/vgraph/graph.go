// Package vgraph models the version graph of a collaborative versioned
// dataset (CVD): a DAG whose nodes are versions and whose edges are
// derivation relationships, annotated with the number of records (and,
// optionally, attributes) shared between parent and child (Chapters 4–5).
//
// The partition optimizer (package partition) operates on this graph; the
// versioning layer (package cvd) keeps it up to date as versions are
// committed.
package vgraph

import (
	"fmt"
	"sort"
)

// VersionID identifies a version within a CVD. IDs are assigned by the
// version manager in commit order starting at 1.
type VersionID int64

// Edge is a derivation edge from Parent to Child. Weight is the number of
// records the two versions have in common, w(vi, vj) in the paper.
// CommonAttrs is the number of attributes in common (used by the
// schema-change-aware partitioning of Section 5.3.3); zero means "unknown /
// fixed schema".
type Edge struct {
	Parent      VersionID
	Child       VersionID
	Weight      int64
	CommonAttrs int
}

// Node is a single version in the graph.
type Node struct {
	ID VersionID
	// NumRecords is |R(v)|, the number of records in the version.
	NumRecords int64
	// NumAttrs is the number of attributes in the version's schema.
	NumAttrs int
	// Parents and Children hold adjacent version ids in insertion order.
	Parents  []VersionID
	Children []VersionID
}

// Graph is a version graph (a DAG). The zero value is not usable; call New.
type Graph struct {
	nodes map[VersionID]*Node
	edges map[[2]VersionID]*Edge
	order []VersionID // insertion (commit) order
}

// New creates an empty version graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[VersionID]*Node),
		edges: make(map[[2]VersionID]*Edge),
	}
}

// AddVersion inserts a version node. Adding an existing id is an error.
func (g *Graph) AddVersion(id VersionID, numRecords int64) (*Node, error) {
	if _, exists := g.nodes[id]; exists {
		return nil, fmt.Errorf("vgraph: version %d already exists", id)
	}
	n := &Node{ID: id, NumRecords: numRecords}
	g.nodes[id] = n
	g.order = append(g.order, id)
	return n, nil
}

// MustAddVersion is AddVersion that panics on error (for tests/generators).
func (g *Graph) MustAddVersion(id VersionID, numRecords int64) *Node {
	n, err := g.AddVersion(id, numRecords)
	if err != nil {
		panic(err)
	}
	return n
}

// AddEdge inserts a derivation edge parent→child with the given common
// record count. Both endpoints must exist and the edge must not create a
// cycle (children always have larger commit ids in practice; we validate
// explicitly to be safe).
func (g *Graph) AddEdge(parent, child VersionID, weight int64) error {
	return g.AddEdgeAttrs(parent, child, weight, 0)
}

// AddEdgeAttrs is AddEdge with an explicit common-attribute count.
func (g *Graph) AddEdgeAttrs(parent, child VersionID, weight int64, commonAttrs int) error {
	p, ok := g.nodes[parent]
	if !ok {
		return fmt.Errorf("vgraph: parent version %d does not exist", parent)
	}
	c, ok := g.nodes[child]
	if !ok {
		return fmt.Errorf("vgraph: child version %d does not exist", child)
	}
	if parent == child {
		return fmt.Errorf("vgraph: self edge on version %d", parent)
	}
	key := [2]VersionID{parent, child}
	if _, dup := g.edges[key]; dup {
		return fmt.Errorf("vgraph: edge %d->%d already exists", parent, child)
	}
	if g.reachable(child, parent) {
		return fmt.Errorf("vgraph: edge %d->%d would create a cycle", parent, child)
	}
	g.edges[key] = &Edge{Parent: parent, Child: child, Weight: weight, CommonAttrs: commonAttrs}
	p.Children = append(p.Children, child)
	c.Parents = append(c.Parents, parent)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(parent, child VersionID, weight int64) {
	if err := g.AddEdge(parent, child, weight); err != nil {
		panic(err)
	}
}

// reachable reports whether dst is reachable from src following child edges.
func (g *Graph) reachable(src, dst VersionID) bool {
	if src == dst {
		return true
	}
	seen := map[VersionID]bool{src: true}
	stack := []VersionID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.nodes[v].Children {
			if c == dst {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Node returns the node for id, or nil.
func (g *Graph) Node(id VersionID) *Node { return g.nodes[id] }

// Edge returns the edge parent→child, or nil.
func (g *Graph) Edge(parent, child VersionID) *Edge {
	return g.edges[[2]VersionID{parent, child}]
}

// SetEdgeWeight updates the weight of an existing edge.
func (g *Graph) SetEdgeWeight(parent, child VersionID, weight int64) error {
	e := g.Edge(parent, child)
	if e == nil {
		return fmt.Errorf("vgraph: edge %d->%d does not exist", parent, child)
	}
	e.Weight = weight
	return nil
}

// NumVersions returns |V|.
func (g *Graph) NumVersions() int { return len(g.nodes) }

// NumEdges returns the number of derivation edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Versions returns all version ids in commit (insertion) order.
func (g *Graph) Versions() []VersionID {
	out := make([]VersionID, len(g.order))
	copy(out, g.order)
	return out
}

// Edges returns all edges sorted by (parent, child).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}

// Roots returns versions with no parents, in commit order.
func (g *Graph) Roots() []VersionID {
	var out []VersionID
	for _, id := range g.order {
		if len(g.nodes[id].Parents) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns versions with no children, in commit order.
func (g *Graph) Leaves() []VersionID {
	var out []VersionID
	for _, id := range g.order {
		if len(g.nodes[id].Children) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Parents returns the parents of a version (nil if unknown version).
func (g *Graph) Parents(id VersionID) []VersionID {
	n := g.nodes[id]
	if n == nil {
		return nil
	}
	out := make([]VersionID, len(n.Parents))
	copy(out, n.Parents)
	return out
}

// Children returns the children of a version.
func (g *Graph) Children(id VersionID) []VersionID {
	n := g.nodes[id]
	if n == nil {
		return nil
	}
	out := make([]VersionID, len(n.Children))
	copy(out, n.Children)
	return out
}

// Ancestors returns all ancestors of id (excluding id itself), optionally
// limited to maxHops hops (maxHops <= 0 means unlimited). This backs the
// ancestor() query primitive and VQuel's P(k) traversal.
func (g *Graph) Ancestors(id VersionID, maxHops int) []VersionID {
	return g.traverse(id, maxHops, func(n *Node) []VersionID { return n.Parents })
}

// Descendants returns all descendants of id (excluding id itself),
// optionally limited to maxHops hops. Backs descendant() and VQuel's D(k).
func (g *Graph) Descendants(id VersionID, maxHops int) []VersionID {
	return g.traverse(id, maxHops, func(n *Node) []VersionID { return n.Children })
}

// Neighborhood returns all versions within maxHops hops of id in either
// direction (excluding id). Backs VQuel's N(k).
func (g *Graph) Neighborhood(id VersionID, maxHops int) []VersionID {
	return g.traverse(id, maxHops, func(n *Node) []VersionID {
		out := make([]VersionID, 0, len(n.Parents)+len(n.Children))
		out = append(out, n.Parents...)
		out = append(out, n.Children...)
		return out
	})
}

func (g *Graph) traverse(id VersionID, maxHops int, next func(*Node) []VersionID) []VersionID {
	if g.nodes[id] == nil {
		return nil
	}
	type qe struct {
		id   VersionID
		hops int
	}
	seen := map[VersionID]bool{id: true}
	var out []VersionID
	queue := []qe{{id, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxHops > 0 && cur.hops >= maxHops {
			continue
		}
		for _, nb := range next(g.nodes[cur.id]) {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			out = append(out, nb)
			queue = append(queue, qe{nb, cur.hops + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Levels returns the topological level l(v) of every version: roots are at
// level 1, and a version's level is one more than the maximum level of its
// parents (the topological-sort definition of Section 5.2).
func (g *Graph) Levels() map[VersionID]int {
	levels := make(map[VersionID]int, len(g.nodes))
	indeg := make(map[VersionID]int, len(g.nodes))
	for id, n := range g.nodes {
		indeg[id] = len(n.Parents)
	}
	var frontier []VersionID
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
			levels[id] = 1
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	for len(frontier) > 0 {
		var next []VersionID
		for _, id := range frontier {
			for _, c := range g.nodes[id].Children {
				if levels[c] < levels[id]+1 {
					levels[c] = levels[id] + 1
				}
				indeg[c]--
				if indeg[c] == 0 {
					next = append(next, c)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return levels
}

// TopoOrder returns the version ids in a topological order (parents before
// children); ties are broken by id.
func (g *Graph) TopoOrder() []VersionID {
	indeg := make(map[VersionID]int, len(g.nodes))
	for id, n := range g.nodes {
		indeg[id] = len(n.Parents)
	}
	var frontier []VersionID
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	out := make([]VersionID, 0, len(g.nodes))
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		out = append(out, id)
		for _, c := range g.nodes[id].Children {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
				sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
			}
		}
	}
	return out
}

// IsTree reports whether every version has at most one parent (no merges).
func (g *Graph) IsTree() bool {
	for _, n := range g.nodes {
		if len(n.Parents) > 1 {
			return false
		}
	}
	return true
}

// TotalBipartiteEdges returns |E| of the version-record bipartite graph,
// i.e. the sum of |R(v)| over all versions.
func (g *Graph) TotalBipartiteEdges() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.NumRecords
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, id := range g.order {
		n := g.nodes[id]
		nn := &Node{ID: n.ID, NumRecords: n.NumRecords, NumAttrs: n.NumAttrs}
		nn.Parents = append(nn.Parents, n.Parents...)
		nn.Children = append(nn.Children, n.Children...)
		out.nodes[id] = nn
		out.order = append(out.order, id)
	}
	for k, e := range g.edges {
		ec := *e
		out.edges[k] = &ec
	}
	return out
}
