package cvd

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// The zero-copy checkout fast path shares column backing between the data
// tables and checkout staging tables (copy-on-write per column since the
// columnar layout; it was per-row sharing before). The tests here pin down
// the boundary: staging-table mutation must never leak into the CVD's
// stored versions, mutating one column must not disturb its siblings'
// sharing, and concurrent checkouts plus staging edits must be race-free
// (run with -race).

// TestZeroCopyStagingMutationIsolation edits a staging table through every
// mutating path (UpdateWhere, AddColumn, AlterColumnType) and verifies a
// fresh checkout of the same version still sees the original data.
func TestZeroCopyStagingMutationIsolation(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)

	work, err := c.Checkout([]vgraph.VersionID{1}, "work")
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	nIdx := work.Schema.ColumnIndex("neighborhood")
	if _, err := work.UpdateWhere(
		func(r relstore.Row) bool { return true },
		func(r relstore.Row) relstore.Row { r[nIdx] = relstore.Int(999); return r },
	); err != nil {
		t.Fatalf("UpdateWhere: %v", err)
	}
	if err := work.AddColumn(relstore.Column{Name: "note", Type: relstore.TypeString}); err != nil {
		t.Fatalf("AddColumn: %v", err)
	}
	if err := work.AlterColumnType("cooccurrence", relstore.TypeFloat); err != nil {
		t.Fatalf("AlterColumnType: %v", err)
	}

	// A second checkout of version 1 must see the original values.
	fresh, err := c.Checkout([]vgraph.VersionID{1}, "fresh")
	if err != nil {
		t.Fatalf("fresh checkout: %v", err)
	}
	fIdx := fresh.Schema.ColumnIndex("neighborhood")
	coIdx := fresh.Schema.ColumnIndex("cooccurrence")
	for _, r := range fresh.Rows() {
		if r[fIdx].AsInt() == 999 {
			t.Fatalf("staging UpdateWhere leaked into the stored version: %v", r)
		}
		if r[coIdx].Type == relstore.TypeFloat {
			t.Fatalf("staging AlterColumnType leaked into the stored version: %v", r)
		}
	}
	if fresh.Schema.HasColumn("note") {
		t.Fatal("staging AddColumn leaked into the stored version's schema")
	}
	if len(fresh.RowAt(0)) != len(fresh.Schema.Columns) {
		t.Fatalf("fresh checkout row width %d != schema width %d", len(fresh.RowAt(0)), len(fresh.Schema.Columns))
	}
}

// TestZeroCopyColumnSharingBoundary pins the per-column copy-on-write
// boundary itself: a checkout that covers its whole backing table shares
// every column vector outright, and rewriting one column breaks exactly that
// column's sharing — the siblings keep referencing the data table's backing.
func TestZeroCopyColumnSharingBoundary(t *testing.T) {
	db := relstore.NewDatabase("zc")
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
	}, "gene")
	rows := []relstore.Row{
		{relstore.Str("g1"), relstore.Int(10)},
		{relstore.Str("g2"), relstore.Int(20)},
		{relstore.Str("g3"), relstore.Int(30)},
	}
	c, err := Init(db, "zc_cvd", schema, rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A single-version CVD: version 1 covers the whole data table, so the
	// staging table shares the column backing instead of gathering copies.
	work, err := c.Checkout([]vgraph.VersionID{1}, "work")
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	width := len(work.Schema.Columns)
	if got := work.SharedColumns(); got != width {
		t.Fatalf("full-cover checkout shares %d of %d columns, want all", got, width)
	}
	// Rewriting one column copies that column only.
	sIdx := work.Schema.ColumnIndex("score")
	work.Set(0, sIdx, relstore.Int(999))
	if got := work.SharedColumns(); got != width-1 {
		t.Fatalf("after one-column edit %d of %d columns still shared, want %d", got, width, width-1)
	}
	// The edit stayed in the staging table.
	fresh, err := c.Checkout([]vgraph.VersionID{1}, "fresh")
	if err != nil {
		t.Fatalf("fresh checkout: %v", err)
	}
	if got := fresh.At(0, fresh.Schema.ColumnIndex("score")).AsInt(); got == 999 {
		t.Fatal("staging Set leaked into the stored version")
	}
	// AddColumn allocates a new column without touching shared siblings.
	if err := work.AddColumn(relstore.Column{Name: "note", Type: relstore.TypeString}); err != nil {
		t.Fatal(err)
	}
	if got := work.SharedColumns(); got != width-1 {
		t.Fatalf("AddColumn disturbed sharing: %d shared, want %d", got, width-1)
	}
}

// TestZeroCopyConcurrentCheckoutsAndEdits runs parallel checkouts of a
// partitioned CVD while each goroutine mutates its own staging table; with
// shared column backing this exercises the per-column copy-on-write paths
// under -race.
func TestZeroCopyConcurrentCheckoutsAndEdits(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, err := c.Rlist()
	if err != nil {
		t.Fatal(err)
	}
	// Two partitions so checkouts hit partition tables, not just dataTab.
	if err := m.ApplyPartitioning(vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})); err != nil {
		t.Fatalf("ApplyPartitioning: %v", err)
	}
	c.SetWorkers(4)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := vgraph.VersionID(g%4 + 1)
			for i := 0; i < 10; i++ {
				tab := fmt.Sprintf("zc_%d_%d", g, i)
				work, err := c.Checkout([]vgraph.VersionID{v}, tab)
				if err != nil {
					errs[g] = err
					return
				}
				nIdx := work.Schema.ColumnIndex("neighborhood")
				if _, err := work.UpdateWhere(
					func(r relstore.Row) bool { return true },
					func(r relstore.Row) relstore.Row { r[nIdx] = relstore.Int(int64(g)); return r },
				); err != nil {
					errs[g] = err
					return
				}
				c.DiscardCheckout(tab)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// After all the concurrent staging edits, stored versions are intact.
	final, err := c.Checkout([]vgraph.VersionID{1}, "final")
	if err != nil {
		t.Fatalf("final checkout: %v", err)
	}
	if final.Len() != 3 {
		t.Fatalf("version 1 has %d rows after concurrent edits, want 3", final.Len())
	}
	nIdx := final.Schema.ColumnIndex("neighborhood")
	want := map[string]int64{"ENSP273047": 0, "ENSP300413": 426}
	for _, r := range final.Rows() {
		if w, ok := want[r[1].AsString()]; ok && r[nIdx].AsInt() != w {
			t.Fatalf("stored version mutated: row %v", r)
		}
	}
}

// TestZeroCopyCommitAfterStagingEdit checks the full checkout → edit →
// commit round trip still produces the right new version under column
// sharing.
func TestZeroCopyCommitAfterStagingEdit(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	work, err := c.Checkout([]vgraph.VersionID{1}, "work")
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	nIdx := work.Schema.ColumnIndex("neighborhood")
	p2Idx := work.Schema.ColumnIndex("protein2")
	if _, err := work.UpdateWhere(
		func(r relstore.Row) bool { return r[p2Idx].AsString() == "ENSP261890" },
		func(r relstore.Row) relstore.Row { r[nIdx] = relstore.Int(777); return r },
	); err != nil {
		t.Fatalf("UpdateWhere: %v", err)
	}
	v5, err := c.CommitTable("work", "recalibrated", "alice")
	if err != nil {
		t.Fatalf("CommitTable: %v", err)
	}
	got, err := c.Checkout([]vgraph.VersionID{v5}, "v5")
	if err != nil {
		t.Fatalf("checkout v5: %v", err)
	}
	found := false
	gn := got.Schema.ColumnIndex("neighborhood")
	gp2 := got.Schema.ColumnIndex("protein2")
	for _, r := range got.Rows() {
		if r[gp2].AsString() == "ENSP261890" {
			found = true
			if r[gn].AsInt() != 777 {
				t.Fatalf("committed edit lost: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("edited row missing from committed version")
	}
	// And version 1 still has the original value.
	orig, err := c.Checkout([]vgraph.VersionID{1}, "orig")
	if err != nil {
		t.Fatalf("checkout v1: %v", err)
	}
	for _, r := range orig.Rows() {
		if r[gp2].AsString() == "ENSP261890" && r[gn].AsInt() != 0 {
			t.Fatalf("version 1 mutated by commit: %v", r)
		}
	}
}
