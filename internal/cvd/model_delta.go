package cvd

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// deltaModel is the delta-based data model (Approach 4.4): every version is
// stored as a separate table holding its modifications (insertions and
// tombstoned deletions) relative to a single precedent version, plus a
// precedent metadata table recording which version each delta is based on.
// Checkout must walk the precedent chain back to the root; queries that span
// many versions effectively require recreating them, which is why OrpheusDB
// does not adopt this model despite its compact storage.
type deltaModel struct {
	db     *relstore.Database
	name   string
	schema relstore.Schema
	bases  map[vgraph.VersionID]vgraph.VersionID // version -> precedent (0 for root)
}

func newDeltaModel(db *relstore.Database, name string, schema relstore.Schema) *deltaModel {
	return &deltaModel{db: db, name: name, schema: schema.Clone(), bases: make(map[vgraph.VersionID]vgraph.VersionID)}
}

func (m *deltaModel) Kind() ModelKind { return DeltaBased }

func (m *deltaModel) deltaTabName(v vgraph.VersionID) string {
	return fmt.Sprintf("%s_delta%d", m.name, v)
}
func (m *deltaModel) metaTabName() string { return m.name + "_precedent" }

const tombstoneColumn = "tombstone"

func (m *deltaModel) deltaSchema() relstore.Schema {
	cols := make([]relstore.Column, 0, len(m.schema.Columns)+2)
	cols = append(cols, relstore.Column{Name: ridColumn, Type: relstore.TypeInt})
	cols = append(cols, m.schema.Columns...)
	cols = append(cols, relstore.Column{Name: tombstoneColumn, Type: relstore.TypeBool})
	return relstore.MustSchema(cols, ridColumn)
}

func (m *deltaModel) Init(req CommitRequest) error {
	if _, err := m.db.CreateTable(m.metaTabName(), relstore.MustSchema([]relstore.Column{
		{Name: vidColumn, Type: relstore.TypeInt},
		{Name: "base", Type: relstore.TypeInt},
	}, vidColumn)); err != nil {
		return err
	}
	return m.AppendVersion(req)
}

func (m *deltaModel) AppendVersion(req CommitRequest) error {
	// Pick the precedent: the parent sharing the largest number of records
	// with the new version (Section 4.1, Approach 4.4).
	var base vgraph.VersionID
	var bestCommon int64 = -1
	vset := make(map[vgraph.RecordID]struct{}, len(req.RIDs))
	for _, r := range req.RIDs {
		vset[r] = struct{}{}
	}
	for _, p := range req.Parents {
		var common int64
		for _, r := range req.ParentRIDs[p] {
			if _, ok := vset[r]; ok {
				common++
			}
		}
		if common > bestCommon {
			bestCommon = common
			base = p
		}
	}

	t, err := m.db.CreateTable(m.deltaTabName(req.Version), m.deltaSchema())
	if err != nil {
		return err
	}
	dataCols := len(m.schema.Columns)

	newByRID := make(map[vgraph.RecordID]CommitRecord, len(req.NewRecords))
	for _, rec := range req.NewRecords {
		newByRID[rec.RID] = rec
	}
	baseSet := make(map[vgraph.RecordID]struct{})
	if base != 0 {
		for _, r := range req.ParentRIDs[base] {
			baseSet[r] = struct{}{}
		}
	}
	insertRow := func(rid vgraph.RecordID, data relstore.Row, tombstone bool) error {
		row := make(relstore.Row, 0, dataCols+2)
		row = append(row, relstore.Int(int64(rid)))
		row = append(row, padRow(data, dataCols)...)
		row = append(row, relstore.Bool(tombstone))
		return t.Insert(row)
	}
	// Insertions: records in the new version that the base does not have.
	for _, rid := range req.RIDs {
		if _, inBase := baseSet[rid]; inBase {
			continue
		}
		var data relstore.Row
		if rec, ok := newByRID[rid]; ok {
			data = rec.Row.Clone()
		} else if req.Lookup != nil {
			if row, ok := req.Lookup(rid); ok {
				data = row.Clone()
			}
		}
		if data == nil {
			return fmt.Errorf("cvd: %s: no content available for record %d of version %d", m.name, rid, req.Version)
		}
		if err := insertRow(rid, data, false); err != nil {
			return err
		}
	}
	// Deletions: records in the base missing from the new version; their
	// content is repeated with a tombstone (this is what makes delta-based
	// storage worse when deletions are common).
	if base != 0 {
		for _, rid := range req.ParentRIDs[base] {
			if _, still := vset[rid]; still {
				continue
			}
			var data relstore.Row
			if req.Lookup != nil {
				if row, ok := req.Lookup(rid); ok {
					data = row.Clone()
				}
			}
			if data == nil {
				data = relstore.Row{}
			}
			if err := insertRow(rid, data, true); err != nil {
				return err
			}
		}
	}
	meta := m.db.MustTable(m.metaTabName())
	if err := meta.Insert(relstore.Row{relstore.Int(int64(req.Version)), relstore.Int(int64(base))}); err != nil {
		return err
	}
	m.bases[req.Version] = base
	return nil
}

func (m *deltaModel) Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error) {
	if _, ok := m.bases[v]; !ok {
		return nil, fmt.Errorf("cvd: %s: version %d not found", m.name, v)
	}
	out := relstore.NewTable(tableName, dataSchemaWithRID(m.schema))
	seen := make(map[int64]struct{})
	dataCols := len(m.schema.Columns)
	cur := v
	for {
		t := m.db.MustTable(m.deltaTabName(cur))
		out.SetStats(t.Stats())
		tombIdx := t.Schema.ColumnIndex(tombstoneColumn)
		t.Scan(func(_ int, r relstore.Row) bool {
			rid := r[0].AsInt()
			if _, dup := seen[rid]; dup {
				return true
			}
			seen[rid] = struct{}{}
			if r[tombIdx].AsBool() {
				return true // deleted in a later version; never resurface
			}
			row := make(relstore.Row, 0, dataCols+1)
			row = append(row, r[:len(r)-1].Clone()...)
			out.AppendRow(padRow(row, dataCols+1))
			return true
		})
		base := m.bases[cur]
		if base == 0 {
			break
		}
		cur = base
	}
	_ = out.BuildIndexOn(ridColumn)
	return out, nil
}

func (m *deltaModel) StorageBytes() int64 {
	var n int64
	for v := range m.bases {
		n += m.db.MustTable(m.deltaTabName(v)).StorageBytes()
	}
	n += m.db.MustTable(m.metaTabName()).StorageBytes()
	return n
}

func (m *deltaModel) AlterSchema(newSchema relstore.Schema) error {
	// Delta tables for already-committed versions are immutable; only new
	// deltas use the evolved schema.
	m.schema = newSchema.Clone()
	return nil
}

func (m *deltaModel) Drop() {
	for v := range m.bases {
		m.db.DropTable(m.deltaTabName(v))
	}
	m.db.DropTable(m.metaTabName())
	m.bases = make(map[vgraph.VersionID]vgraph.VersionID)
}
