package cvd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// journaledCommit is one captured LogCommit call — everything needed to
// replay the commit through CommitAt, the way WAL recovery does.
type journaledCommit struct {
	parents []vgraph.VersionID
	rows    []relstore.Row
	schema  relstore.Schema
	msg     string
	author  string
	at      time.Time
}

// flakyJournal records every successful append and fails the ones whose
// index is armed, simulating a WAL whose disk rejected an append.
type flakyJournal struct {
	log      []journaledCommit
	failNext bool
}

func (j *flakyJournal) LogCommit(_ string, parents []vgraph.VersionID, rows []relstore.Row, schema relstore.Schema, msg, author string, at time.Time) error {
	if j.failNext {
		j.failNext = false
		return errors.New("injected journal failure")
	}
	j.log = append(j.log, journaledCommit{
		parents: append([]vgraph.VersionID(nil), parents...),
		rows:    rows, schema: schema, msg: msg, author: author, at: at,
	})
	return nil
}

// TestJournalPoisonedAfterAppendFailure: once a commit is applied in memory
// but its journal append fails, the CVD holds a version the log lacks. Later
// commits must fail fast (poisoned journal) instead of journaling records
// that replay against the missing version — and the captured log must stay
// replayable: replaying it yields exactly the versions whose appends
// succeeded.
func TestJournalPoisonedAfterAppendFailure(t *testing.T) {
	db, c := buildProteinCVD(t, SplitByRlist)
	j := &flakyJournal{}
	c.SetJournal(j)

	// A journaled commit that succeeds end to end.
	v5rows := []relstore.Row{prow("ENSP000001", "ENSP000002", 1, 2, 3)}
	v5, err := c.Commit([]vgraph.VersionID{4}, v5rows, proteinSchema(), "journaled", "alice")
	if err != nil {
		t.Fatalf("journaled commit: %v", err)
	}
	if len(j.log) != 1 {
		t.Fatalf("journal captured %d commits, want 1", len(j.log))
	}

	// The divergence: applied in memory, lost by the journal.
	j.failNext = true
	lostRows := []relstore.Row{prow("ENSP000003", "ENSP000004", 4, 5, 6)}
	lost, err := c.Commit([]vgraph.VersionID{v5}, lostRows, proteinSchema(), "lost", "bob")
	if err == nil {
		t.Fatal("commit with failing journal reported success")
	}
	if lost == 0 {
		t.Fatal("partial success must return the in-memory version id")
	}
	if c.JournalErr() == nil {
		t.Fatal("journal not poisoned after append failure")
	}
	versionsAfterLoss := c.NumVersions()

	// Later commits must fail fast, BEFORE touching in-memory state.
	_, err = c.Commit([]vgraph.VersionID{lost}, v5rows, proteinSchema(), "rejected", "carol")
	if err == nil {
		t.Fatal("commit against a poisoned journal succeeded")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poison error not surfaced: %v", err)
	}
	if got := c.NumVersions(); got != versionsAfterLoss {
		t.Fatalf("rejected commit mutated state: %d versions, want %d", got, versionsAfterLoss)
	}
	if got := len(j.log); got != 1 {
		t.Fatalf("poisoned journal still received %d appends, want 1", got)
	}

	// Replayability pin: a fresh CVD built from the same history plus the
	// captured journal reproduces every journaled version without error —
	// the log contains no record referencing the lost version.
	_, fresh := buildProteinCVD(t, SplitByRlist)
	for i, jc := range j.log {
		if _, err := fresh.CommitAt(jc.parents, jc.rows, jc.schema, jc.msg, jc.author, jc.at); err != nil {
			t.Fatalf("replaying journaled commit %d: %v", i, err)
		}
	}
	if got, want := fresh.NumVersions(), 5; got != want {
		t.Fatalf("replay produced %d versions, want %d", got, want)
	}
	_ = db

	// Re-attaching the journal (the checkpoint path, after the diverged state
	// is folded into a snapshot) clears the poison.
	c.SetJournal(j)
	if c.JournalErr() != nil {
		t.Fatal("SetJournal did not clear the poison")
	}
	if _, err := c.Commit([]vgraph.VersionID{lost}, v5rows, proteinSchema(), "healed", "dave"); err != nil {
		t.Fatalf("commit after journal re-attach: %v", err)
	}
}

// TestJournalDetachClearsPoison: detaching (journal = nil) also clears the
// poison — an engine Close detaches every journal, and the now-ephemeral CVD
// must keep accepting commits.
func TestJournalDetachClearsPoison(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	j := &flakyJournal{failNext: true}
	c.SetJournal(j)
	rows := []relstore.Row{prow("ENSP000001", "ENSP000002", 1, 2, 3)}
	if _, err := c.Commit([]vgraph.VersionID{4}, rows, proteinSchema(), "lost", "a"); err == nil {
		t.Fatal("commit with failing journal reported success")
	}
	c.SetJournal(nil)
	if c.JournalErr() != nil {
		t.Fatal("detach did not clear the poison")
	}
	if _, err := c.Commit([]vgraph.VersionID{4}, rows, proteinSchema(), "ephemeral", "a"); err != nil {
		t.Fatalf("ephemeral commit after detach: %v", err)
	}
}
