package cvd

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// CVD is a collaborative versioned dataset: a relation whose versions are
// tracked by OrpheusDB. It owns the version graph, the version-record
// bipartite graph, version metadata, the attribute registry, and a physical
// data model inside a relstore database.
//
// A CVD is safe for concurrent use: commits take an exclusive lock while
// checkouts, diffs and versioned queries share a read lock, so any number of
// readers proceed in parallel. The raw-structure accessors (Graph, Bipartite,
// DataModel, Rlist, Attributes) return live internal pointers and are NOT
// synchronized; callers that traverse or mutate them concurrently with other
// operations must wrap the access in WithExclusive (or WithShared for pure
// reads).
type CVD struct {
	name   string
	db     *relstore.Database
	model  DataModel
	kind   ModelKind
	schema relstore.Schema // current single-pool data schema (no rid column)

	graph   *vgraph.Graph
	bip     *vgraph.Bipartite
	records map[vgraph.RecordID]relstore.Row // record catalog: rid -> data values
	meta    *metadataStore
	attrs   *AttributeRegistry

	nextVID vgraph.VersionID
	nextRID vgraph.RecordID

	// mu guards all version state above plus the physical model: commits and
	// schema evolution take it exclusively, checkouts and queries share it.
	mu sync.RWMutex

	// ckMu guards the staging-table registry (checkouts, reserved) so
	// concurrent checkouts can register staging tables without serializing
	// their materialization work behind an exclusive lock.
	ckMu      sync.Mutex
	checkouts map[string]checkoutInfo
	reserved  map[string]struct{} // staging names claimed by in-flight checkouts
	dropped   bool                // set by Drop; refuses new/in-flight checkouts

	workers    int  // intra-operation parallelism (see Options.Workers)
	workersSet bool // workers was configured explicitly (Options or SetWorkers)
	csvSeq     atomic.Int64
	clock      func() time.Time

	// journal, when set, receives the logical redo record of every
	// successful commit (see SetJournal); guarded by mu like the rest of the
	// version state.
	journal Journal
	// journalErr is the sticky poison set when a journal append fails: the
	// in-memory CVD then holds a version the WAL lacks, and journaling any
	// later commit would reference state the log cannot replay. While set,
	// commits fail fast; attaching or detaching a journal (SetJournal /
	// SetJournalLocked — the checkpoint path, which folds the diverged state
	// into a fresh snapshot) clears it.
	journalErr error
}

type checkoutInfo struct {
	parents []vgraph.VersionID
	at      time.Time
}

// Options configures CVD creation.
type Options struct {
	// Model selects the physical data model; the default is SplitByRlist,
	// the model OrpheusDB adopts.
	Model ModelKind
	// Author is recorded in the initial version's metadata.
	Author string
	// Message is the commit message of the initial version.
	Message string
	// Clock overrides the time source (used by tests and the benchmark
	// harness for reproducibility).
	Clock func() time.Time
	// At, when non-zero, is the commit timestamp of the initial version.
	// WAL replay uses it to reproduce the original metadata exactly; when
	// zero the clock supplies the time.
	At time.Time
	// Workers bounds the intra-operation parallelism of the hot paths
	// (multi-version checkout, partitioned scans, partition builds). 0 or 1
	// keeps every operation single-threaded on the calling goroutine; n > 1
	// fans work out over the shared worker-pool utility (package parallel).
	Workers int
}

// Init creates a new CVD named name inside db with the given data schema and
// initial rows, which become version 1.
func Init(db *relstore.Database, name string, schema relstore.Schema, rows []relstore.Row, opts Options) (*CVD, error) {
	if name == "" {
		return nil, fmt.Errorf("cvd: empty CVD name")
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("cvd: schema must have at least one column")
	}
	if schema.HasColumn(ridColumn) {
		return nil, fmt.Errorf("cvd: %q is a reserved column name", ridColumn)
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	c := &CVD{
		name:       name,
		db:         db,
		kind:       opts.Model,
		schema:     schema.Clone(),
		graph:      vgraph.New(),
		bip:        vgraph.NewBipartite(),
		records:    make(map[vgraph.RecordID]relstore.Row),
		attrs:      NewAttributeRegistry(),
		nextVID:    1,
		nextRID:    1,
		checkouts:  make(map[string]checkoutInfo),
		reserved:   make(map[string]struct{}),
		workers:    opts.Workers,
		workersSet: opts.Workers != 0,
		clock:      clock,
	}
	if c.workers <= 0 {
		// Parallelism is strictly opt-in: an unset knob means single-threaded
		// operations, not "use every CPU".
		c.workers = 1
	}
	meta, err := newMetadataStore(db, name)
	if err != nil {
		return nil, err
	}
	c.meta = meta
	model, err := newModel(opts.Model, db, name, schema)
	if err != nil {
		meta.drop()
		return nil, err
	}
	if rm, ok := model.(*rlistModel); ok {
		rm.SetWorkers(opts.Workers)
	}
	c.model = model

	if err := c.checkPrimaryKey(rows, schema); err != nil {
		meta.drop()
		return nil, err
	}
	req, err := c.buildCommit(nil, rows, schema)
	if err != nil {
		meta.drop()
		return nil, err
	}
	if err := model.Init(req); err != nil {
		meta.drop()
		return nil, err
	}
	at := opts.At
	if at.IsZero() {
		at = clock()
	}
	if err := c.recordVersion(req, opts.Message, opts.Author, at); err != nil {
		return nil, err
	}
	return c, nil
}

// Name returns the CVD name.
func (c *CVD) Name() string { return c.name }

// SetWorkers sets the intra-operation parallelism of the hot paths (see
// Options.Workers) after construction. n <= 0 means single-threaded.
func (c *CVD) SetWorkers(n int) {
	if n <= 0 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workersSet = true
	c.setWorkersLocked(n)
}

// InheritWorkers sets the worker count like SetWorkers, but only when it was
// never configured explicitly (via Options.Workers or SetWorkers) — the same
// inheritance semantics core.Engine.Init applies to its Options. Used by
// core.Engine.Adopt so externally loaded CVDs pick up the engine's knob
// without clobbering a deliberate per-CVD choice.
func (c *CVD) InheritWorkers(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.workersSet {
		return
	}
	c.setWorkersLocked(n)
}

// setWorkersLocked propagates a validated worker count to the CVD and its
// physical model; callers hold c.mu.
func (c *CVD) setWorkersLocked(n int) {
	c.workers = n
	if rm, ok := c.model.(*rlistModel); ok {
		rm.SetWorkers(n)
	}
}

// Model returns the physical data model kind in use.
func (c *CVD) Model() ModelKind { return c.kind }

// DataModel returns the underlying data model (for advanced operations such
// as partitioning of the split-by-rlist model). The returned pointer is live:
// synchronize mutations through WithExclusive when the CVD is shared.
func (c *CVD) DataModel() DataModel { return c.model }

// Rlist returns the split-by-rlist model when that model is in use, for
// partitioning operations; it returns an error otherwise. The returned
// pointer is live: synchronize mutations through WithExclusive when the CVD
// is shared.
func (c *CVD) Rlist() (*rlistModel, error) {
	m, ok := c.model.(*rlistModel)
	if !ok {
		return nil, fmt.Errorf("cvd: %s uses %s, not split-by-rlist", c.name, c.kind)
	}
	return m, nil
}

// WithExclusive runs fn while holding the CVD's exclusive lock, excluding all
// concurrent commits, checkouts, and queries. It is how callers that reach
// into the live internals (Graph, Rlist, DataModel) — e.g. the partition
// optimizer applying a new partitioning — make those multi-step operations
// atomic. fn must not call the CVD's own locking methods (Checkout, Commit,
// Versions, ...); use the raw accessors inside.
func (c *CVD) WithExclusive(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn()
}

// WithShared runs fn while holding the CVD's shared (read) lock. It gives a
// consistent multi-step view over the live internals while commits are
// excluded; other readers proceed concurrently. The same re-entrancy rule as
// WithExclusive applies: fn must not call the CVD's own locking methods.
func (c *CVD) WithShared(fn func() error) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return fn()
}

// Schema returns the current (single-pool) data schema.
func (c *CVD) Schema() relstore.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schema.Clone()
}

// Graph returns the version graph. The returned pointer is live: traversals
// concurrent with commits must be wrapped in WithShared/WithExclusive.
func (c *CVD) Graph() *vgraph.Graph { return c.graph }

// Bipartite returns the version-record bipartite graph. The returned pointer
// is live: see Graph.
func (c *CVD) Bipartite() *vgraph.Bipartite { return c.bip }

// Attributes returns the attribute registry (the attribute table of Section
// 4.3). The returned pointer is live: see Graph.
func (c *CVD) Attributes() *AttributeRegistry { return c.attrs }

// Versions returns all version ids in commit order.
func (c *CVD) Versions() []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Versions()
}

// NumVersions returns the number of versions.
func (c *CVD) NumVersions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.NumVersions()
}

// NumRecords returns the number of distinct records across all versions.
func (c *CVD) NumRecords() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.records))
}

// StorageBytes returns the accounted storage of the physical data model.
func (c *CVD) StorageBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.model.StorageBytes()
}

// Meta returns the metadata of a version.
func (c *CVD) Meta(v vgraph.VersionID) (*VersionMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.meta.get(v)
}

// AllMeta returns metadata for every version ordered by id.
func (c *CVD) AllMeta() []*VersionMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.meta.all()
}

// LatestVersion returns the version with the most recent commit time.
func (c *CVD) LatestVersion() (vgraph.VersionID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.meta.latest()
	if !ok {
		return 0, false
	}
	return m.ID, true
}

// RecordContent returns the data values of a record by id.
func (c *CVD) RecordContent(r vgraph.RecordID) (relstore.Row, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.recordContentLocked(r)
}

// recordContentLocked is RecordContent for callers already holding c.mu.
func (c *CVD) recordContentLocked(r vgraph.RecordID) (relstore.Row, bool) {
	row, ok := c.records[r]
	if !ok {
		return nil, false
	}
	return padRow(row.Clone(), len(c.schema.Columns)), true
}

// VersionSnapshot is one version's metadata plus its materialized rows, as
// returned by Snapshot.
type VersionSnapshot struct {
	Meta *VersionMeta
	Rows []relstore.Row
}

// Snapshot returns, under a single shared lock, the current schema together
// with every version's metadata and materialized rows in commit order. It is
// the consistent read path for whole-history consumers (vquel.FromCVD):
// piecing the same view together from separate Schema/Versions/Meta/
// RecordContent calls can interleave with a schema-widening commit and
// observe rows wider than the schema they were paired with.
func (c *CVD) Snapshot() (relstore.Schema, []VersionSnapshot, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	schema := c.schema.Clone()
	versions := c.graph.Versions()
	out := make([]VersionSnapshot, 0, len(versions))
	for _, vid := range versions {
		m, ok := c.meta.get(vid)
		if !ok {
			return relstore.Schema{}, nil, fmt.Errorf("cvd: %s: missing metadata for version %d", c.name, vid)
		}
		rids := c.bip.RecordSet(vid)
		rows := make([]relstore.Row, 0, rids.Len())
		rids.ForEach(func(rid int64) bool {
			if row, ok := c.recordContentLocked(vgraph.RecordID(rid)); ok {
				rows = append(rows, row)
			}
			return true
		})
		out = append(out, VersionSnapshot{Meta: m, Rows: rows})
	}
	return schema, out, nil
}

// RecordsOf returns the record ids of a version.
func (c *CVD) RecordsOf(v vgraph.VersionID) []vgraph.RecordID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.recordsOfLocked(v)
}

// recordsOfLocked is RecordsOf for callers already holding c.mu.
func (c *CVD) recordsOfLocked(v vgraph.VersionID) []vgraph.RecordID {
	// Bipartite.Records materializes a fresh slice the caller owns.
	return c.bip.Records(v)
}

// Drop removes all backing tables of the CVD from the database. Checkouts
// still in flight when Drop runs fail instead of re-attaching their staging
// table to the database after the teardown.
func (c *CVD) Drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.model.Drop()
	c.meta.drop()
	c.ckMu.Lock()
	defer c.ckMu.Unlock()
	c.dropped = true
	for tab := range c.checkouts {
		c.db.DropTable(tab)
	}
	c.checkouts = make(map[string]checkoutInfo)
	c.reserved = make(map[string]struct{})
}

// contentKey encodes a data row (padded to the current schema width) for
// record-identity comparison during commit.
func (c *CVD) contentKey(r relstore.Row) string {
	padded := padRow(r, len(c.schema.Columns))
	var b strings.Builder
	for i, v := range padded[:len(c.schema.Columns)] {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.AsString())
	}
	return b.String()
}

// checkPrimaryKey verifies that no two rows share primary-key values (a
// constraint that must hold within a single version).
func (c *CVD) checkPrimaryKey(rows []relstore.Row, schema relstore.Schema) error {
	pk := schema.PrimaryKeyIndexes()
	if len(pk) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		var b strings.Builder
		for _, i := range pk {
			if i < len(r) {
				b.WriteString(r[i].AsString())
			}
			b.WriteByte('\x1f')
		}
		k := b.String()
		if _, dup := seen[k]; dup {
			return fmt.Errorf("cvd: %s: duplicate primary key %q within a version", c.name, k)
		}
		seen[k] = struct{}{}
	}
	return nil
}

// buildCommit diffs the staged rows against the parent versions following
// the no cross-version diff rule: a staged row reuses the rid of a parent
// record with identical content; all other rows get fresh rids.
func (c *CVD) buildCommit(parents []vgraph.VersionID, rows []relstore.Row, schema relstore.Schema) (CommitRequest, error) {
	// Single-pool schema evolution first, so content keys use the final width.
	if err := c.evolveSchema(schema); err != nil {
		return CommitRequest{}, err
	}
	req := CommitRequest{
		Version:    c.nextVID,
		Parents:    append([]vgraph.VersionID(nil), parents...),
		ParentRIDs: make(map[vgraph.VersionID][]vgraph.RecordID, len(parents)),
		Lookup:     c.lookupRecord,
	}
	parentByKey := make(map[string]vgraph.RecordID)
	for _, p := range parents {
		rids := c.recordsOfLocked(p)
		req.ParentRIDs[p] = rids
		for _, rid := range rids {
			key := c.contentKey(c.records[rid])
			if _, exists := parentByKey[key]; !exists {
				parentByKey[key] = rid
			}
		}
	}
	seenRID := make(map[vgraph.RecordID]struct{}, len(rows))
	for _, r := range rows {
		aligned, err := c.alignRow(r, schema)
		if err != nil {
			return CommitRequest{}, err
		}
		key := c.contentKey(aligned)
		if rid, ok := parentByKey[key]; ok {
			if _, dup := seenRID[rid]; dup {
				continue // identical duplicate row within the staged table
			}
			seenRID[rid] = struct{}{}
			req.RIDs = append(req.RIDs, rid)
			continue
		}
		rid := c.nextRID
		c.nextRID++
		c.records[rid] = aligned
		seenRID[rid] = struct{}{}
		req.RIDs = append(req.RIDs, rid)
		req.NewRecords = append(req.NewRecords, CommitRecord{RID: rid, Row: aligned})
	}
	return req, nil
}

// alignRow reorders/pads a row expressed in rowSchema's column order into the
// CVD's current schema order.
func (c *CVD) alignRow(r relstore.Row, rowSchema relstore.Schema) (relstore.Row, error) {
	if len(r) != len(rowSchema.Columns) {
		return nil, fmt.Errorf("cvd: %s: row has %d values but schema has %d columns", c.name, len(r), len(rowSchema.Columns))
	}
	out := make(relstore.Row, len(c.schema.Columns))
	for i := range out {
		out[i] = relstore.Null()
	}
	for j, col := range rowSchema.Columns {
		i := c.schema.ColumnIndex(col.Name)
		if i < 0 {
			return nil, fmt.Errorf("cvd: %s: column %q not in CVD schema after evolution", c.name, col.Name)
		}
		out[i] = r[j]
	}
	return out, nil
}

// evolveSchema merges an incoming schema into the CVD's single-pool schema:
// new attributes are added, and conflicting types are generalized
// (Section 4.3). The physical model is altered accordingly.
func (c *CVD) evolveSchema(incoming relstore.Schema) error {
	changed := false
	merged := c.schema.Clone()
	for _, col := range incoming.Columns {
		if col.Name == ridColumn {
			continue
		}
		i := merged.ColumnIndex(col.Name)
		if i < 0 {
			var err error
			merged, err = merged.WithColumn(col)
			if err != nil {
				return err
			}
			changed = true
			continue
		}
		gen := relstore.GeneralizeType(merged.Columns[i].Type, col.Type)
		if gen != merged.Columns[i].Type {
			merged.Columns[i].Type = gen
			changed = true
		}
	}
	if !changed {
		return nil
	}
	if err := c.model.AlterSchema(merged); err != nil {
		return err
	}
	c.schema = merged
	return nil
}

func (c *CVD) lookupRecord(rid vgraph.RecordID) (relstore.Row, bool) {
	r, ok := c.records[rid]
	if !ok {
		return nil, false
	}
	return padRow(r.Clone(), len(c.schema.Columns)), true
}

// recordVersion updates the version graph, bipartite graph, and metadata
// after the physical model has accepted the commit.
func (c *CVD) recordVersion(req CommitRequest, msg, author string, at time.Time) error {
	if _, err := c.graph.AddVersion(req.Version, int64(len(req.RIDs))); err != nil {
		return err
	}
	// Build the new version's record set once: the parent edge weights are
	// intersection cardinalities against sets the bipartite graph already
	// holds, and the set itself is then handed to the graph.
	vals := make([]int64, len(req.RIDs))
	for i, r := range req.RIDs {
		vals[i] = int64(r)
	}
	vset := recset.FromSlice(vals)
	attrIDs := c.attrs.RegisterSchema(c.schema)
	for _, p := range req.Parents {
		common := recset.AndLen(c.bip.RecordSet(p), vset)
		if err := c.graph.AddEdgeAttrs(p, req.Version, common, len(c.schema.Columns)); err != nil {
			return err
		}
	}
	c.bip.SetVersionSet(req.Version, vset)
	m := &VersionMeta{
		ID:         req.Version,
		Parents:    append([]vgraph.VersionID(nil), req.Parents...),
		CommitAt:   at,
		Message:    msg,
		Author:     author,
		Attributes: attrIDs,
		NumRecords: int64(len(req.RIDs)),
	}
	if err := c.meta.add(m); err != nil {
		return err
	}
	c.nextVID++
	return nil
}

// Commit adds a new version derived from parents with the given rows (data
// attributes in rowSchema order). It returns the new version id. This is the
// programmatic path; CommitTable commits a previously checked-out staging
// table. Commit holds the CVD's exclusive lock for its duration: concurrent
// commits serialize, and checkouts/queries wait rather than observing a
// half-applied version.
func (c *CVD) Commit(parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string) (vgraph.VersionID, error) {
	return c.CommitAt(parents, rows, rowSchema, msg, author, time.Time{})
}

// CommitAt is Commit with an explicit commit timestamp (zero means "now").
// WAL replay uses it so a replayed commit reproduces the original version
// metadata bit for bit; replayed commits run before a journal is attached,
// so they are not logged a second time.
func (c *CVD) CommitAt(parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string, at time.Time) (vgraph.VersionID, error) {
	if len(parents) == 0 {
		return 0, fmt.Errorf("cvd: %s: commit requires at least one parent version", c.name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil && c.journalErr != nil {
		// An earlier commit was applied in memory but never reached the WAL.
		// Journaling this one would produce a log that replays against a
		// parent the WAL does not contain — refuse before touching any state,
		// so the divergence stays confined to the one lost version until a
		// checkpoint (which snapshots the diverged state and re-arms the
		// journal) or a reopen heals it.
		return 0, fmt.Errorf("cvd: %s: commit refused: journal poisoned by an earlier append failure (in-memory state diverged from the WAL; checkpoint or reopen to recover): %w", c.name, c.journalErr)
	}
	for _, p := range parents {
		if c.graph.Node(p) == nil {
			return 0, fmt.Errorf("cvd: %s: unknown parent version %d", c.name, p)
		}
	}
	if err := c.checkPrimaryKey(rows, rowSchema); err != nil {
		return 0, err
	}
	req, err := c.buildCommit(parents, rows, rowSchema)
	if err != nil {
		return 0, err
	}
	if err := c.model.AppendVersion(req); err != nil {
		return 0, err
	}
	if at.IsZero() {
		at = c.clock()
	}
	if err := c.recordVersion(req, msg, author, at); err != nil {
		return 0, err
	}
	if c.journal != nil {
		if err := c.journal.LogCommit(c.name, parents, rows, rowSchema, msg, author, at); err != nil {
			// The commit is applied in memory but the WAL lacks it: poison the
			// journal so every later commit fails fast instead of appending
			// records that replay against this missing version, then surface
			// the durability failure so the caller knows the WAL does not
			// cover it.
			c.journalErr = err
			return req.Version, fmt.Errorf("cvd: %s: version %d committed but journaling failed: %w", c.name, req.Version, err)
		}
	}
	return req.Version, nil
}

// Checkout materializes one or more versions into a staging table registered
// in the database under tableName. When several versions are listed the
// records are merged in precedence order: a record whose primary key was
// already added by an earlier version is omitted (Section 3.3.1). The
// staging table contains the rid column followed by the data attributes.
//
// Checkout holds only the shared lock while materializing, so any number of
// checkouts (and queries) run concurrently; the staging name is reserved
// up front so two concurrent checkouts cannot claim the same table.
func (c *CVD) Checkout(versions []vgraph.VersionID, tableName string) (*relstore.Table, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("cvd: %s: checkout requires at least one version", c.name)
	}
	if tableName == "" {
		return nil, fmt.Errorf("cvd: %s: checkout requires a table name", c.name)
	}
	c.ckMu.Lock()
	if c.dropped {
		c.ckMu.Unlock()
		return nil, fmt.Errorf("cvd: %s: CVD has been dropped", c.name)
	}
	_, inFlight := c.reserved[tableName]
	if inFlight || c.db.HasTable(tableName) {
		c.ckMu.Unlock()
		return nil, fmt.Errorf("cvd: %s: table %q already exists", c.name, tableName)
	}
	c.reserved[tableName] = struct{}{}
	c.ckMu.Unlock()

	out, err := c.materialize(versions, tableName)

	c.ckMu.Lock()
	delete(c.reserved, tableName)
	if err == nil && c.dropped {
		// Drop ran between materialize releasing the shared lock and here:
		// registering the staging table now would leak it past the teardown.
		err = fmt.Errorf("cvd: %s: CVD has been dropped", c.name)
	}
	if err == nil {
		c.db.AttachTable(out)
		c.checkouts[tableName] = checkoutInfo{parents: append([]vgraph.VersionID(nil), versions...), at: c.clock()}
	}
	c.ckMu.Unlock()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// materialize produces the checkout table under the shared lock.
func (c *CVD) materialize(versions []vgraph.VersionID, tableName string) (*relstore.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
	}
	if len(versions) == 1 {
		return c.model.Checkout(versions[0], tableName)
	}
	return c.checkoutMerged(versions, tableName)
}

// checkoutMerged materializes multiple versions with primary-key precedence.
// The per-version materializations — each touching exactly one partition
// under partitioned storage — run in parallel on the CVD's worker pool; the
// precedence merge itself stays sequential in version order so the result is
// identical to the single-threaded path.
func (c *CVD) checkoutMerged(versions []vgraph.VersionID, tableName string) (*relstore.Table, error) {
	tmps, err := parallel.MapErr(c.workers, len(versions), func(i int) (*relstore.Table, error) {
		return c.model.Checkout(versions[i], fmt.Sprintf("%s_tmp%d", tableName, i))
	})
	if err != nil {
		return nil, err
	}
	out := relstore.NewTable(tableName, dataSchemaWithRID(c.schema))
	pk := c.schema.PrimaryKeyIndexes()
	seenPK := make(map[string]struct{})
	seenRID := make(map[int64]struct{})
	for _, t := range tmps {
		// Select the surviving positions of this version's staging table with
		// cell reads only, then append them column-wise in one batch.
		keep := make(relstore.Selection, 0, t.Len())
		for i := 0; i < t.Len(); i++ {
			rid := t.IntAt(i, 0) // checkout tables carry rid first
			if _, dup := seenRID[rid]; dup {
				continue
			}
			if len(pk) > 0 {
				var b strings.Builder
				for _, j := range pk {
					// +1 because checkout rows carry rid first.
					b.WriteString(t.StringAt(i, j+1))
					b.WriteByte('\x1f')
				}
				k := b.String()
				if _, dup := seenPK[k]; dup {
					continue
				}
				seenPK[k] = struct{}{}
			}
			seenRID[rid] = struct{}{}
			keep = append(keep, int32(i))
		}
		if err := out.AppendFrom(t, keep); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CheckoutToCSV materializes versions and writes them to w as CSV (the
// `checkout -f` path for data-science workflows). The rid column is omitted.
func (c *CVD) CheckoutToCSV(versions []vgraph.VersionID, w io.Writer) error {
	// The sequence number keeps concurrent exports (or deterministic test
	// clocks) from colliding on the temporary staging name.
	tmp := fmt.Sprintf("%s_csv_checkout_%d_%d", c.name, c.clock().UnixNano(), c.csvSeq.Add(1))
	t, err := c.Checkout(versions, tmp)
	if err != nil {
		return err
	}
	defer c.DiscardCheckout(tmp)
	// Project away the rid column using the staging table's own schema: the
	// CVD's current schema may already be wider if a commit evolved it after
	// the checkout materialized.
	cols := make([]string, 0, len(t.Schema.Columns))
	for _, col := range t.Schema.Columns {
		if col.Name != ridColumn {
			cols = append(cols, col.Name)
		}
	}
	proj, err := t.Project(tmp+"_proj", cols...)
	if err != nil {
		return err
	}
	return relstore.WriteCSV(w, proj)
}

// CommitTable commits a previously checked-out staging table as a new
// version; the version's parents are the versions the table was checked out
// from. The staging table is dropped afterwards.
func (c *CVD) CommitTable(tableName, msg, author string) (vgraph.VersionID, error) {
	// Claim the checkout entry atomically: of two concurrent CommitTable
	// calls for the same staging table, exactly one proceeds (the loser sees
	// the entry gone). On failure the claim is restored so the caller can
	// retry or discard.
	c.ckMu.Lock()
	info, ok := c.checkouts[tableName]
	if ok {
		delete(c.checkouts, tableName)
	}
	c.ckMu.Unlock()
	if !ok {
		return 0, fmt.Errorf("cvd: %s: table %q was not produced by checkout", c.name, tableName)
	}
	restore := func() {
		c.ckMu.Lock()
		c.checkouts[tableName] = info
		c.ckMu.Unlock()
	}
	t, ok := c.db.Table(tableName)
	if !ok {
		restore()
		return 0, fmt.Errorf("cvd: %s: staging table %q has been dropped", c.name, tableName)
	}
	// Strip the rid column (users may have added rows without rids).
	dataCols := make([]string, 0, len(t.Schema.Columns))
	for _, col := range t.Schema.Columns {
		if col.Name != ridColumn {
			dataCols = append(dataCols, col.Name)
		}
	}
	proj, err := t.Project(tableName+"_commitproj", dataCols...)
	if err != nil {
		restore()
		return 0, err
	}
	v, err := c.Commit(info.parents, proj.Rows(), proj.Schema, msg, author)
	if err != nil {
		if v != 0 {
			// The commit was applied in memory but journaling it failed
			// (CommitAt's partial success). The staging table is consumed —
			// restoring the claim would let a retry commit the same rows as
			// a duplicate version.
			c.db.DropTable(tableName)
			return v, err
		}
		restore()
		return 0, err
	}
	c.db.DropTable(tableName)
	return v, nil
}

// CommitCSV commits a CSV stream (with header) as a new version derived from
// parents, coercing values through schema (the `commit -f -s` path).
func (c *CVD) CommitCSV(parents []vgraph.VersionID, r io.Reader, schema relstore.Schema, msg, author string) (vgraph.VersionID, error) {
	t, err := relstore.ReadCSV(r, c.name+"_csv_commit", schema)
	if err != nil {
		return 0, err
	}
	return c.Commit(parents, t.Rows(), schema, msg, author)
}

// DiscardCheckout drops a staging table without committing it.
func (c *CVD) DiscardCheckout(tableName string) {
	c.ckMu.Lock()
	delete(c.checkouts, tableName)
	c.ckMu.Unlock()
	c.db.DropTable(tableName)
}

// CheckoutParents returns the versions a staging table was checked out from.
func (c *CVD) CheckoutParents(tableName string) ([]vgraph.VersionID, bool) {
	c.ckMu.Lock()
	defer c.ckMu.Unlock()
	info, ok := c.checkouts[tableName]
	if !ok {
		return nil, false
	}
	return append([]vgraph.VersionID(nil), info.parents...), true
}

// DiffResult reports the records present in one version but not another.
type DiffResult struct {
	OnlyInA []vgraph.RecordID
	OnlyInB []vgraph.RecordID
}

// Diff compares two versions and returns the record ids on each side only,
// computed as two compressed-set differences (already sorted by
// construction).
func (c *CVD) Diff(a, b vgraph.VersionID) (DiffResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.graph.Node(a) == nil || c.graph.Node(b) == nil {
		return DiffResult{}, fmt.Errorf("cvd: %s: unknown version in diff(%d, %d)", c.name, a, b)
	}
	sa, sb := c.bip.RecordSet(a), c.bip.RecordSet(b)
	return DiffResult{
		OnlyInA: vgraph.RecordIDs(recset.AndNot(sa, sb)),
		OnlyInB: vgraph.RecordIDs(recset.AndNot(sb, sa)),
	}, nil
}
