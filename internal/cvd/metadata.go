package cvd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// VersionMeta is one row of the metadata table (Figure 4.2a): the
// version-level provenance OrpheusDB's version manager maintains.
type VersionMeta struct {
	ID         vgraph.VersionID
	Parents    []vgraph.VersionID
	CheckoutAt time.Time
	CommitAt   time.Time
	Message    string
	Author     string
	// Attributes lists the attribute ids (into the attribute registry)
	// present in this version's schema.
	Attributes []AttrID
	// NumRecords is |R(v)|.
	NumRecords int64
}

// AttrID identifies an entry of the attribute table. Any change to an
// attribute's name or type creates a new entry (Section 4.3).
type AttrID int64

// Attribute is one row of the attribute table (Figure 4.3b/c).
type Attribute struct {
	ID   AttrID
	Name string
	Type relstore.ValueType
}

// AttributeRegistry is the attribute table plus the CVD's current
// (generalized, single-pool) schema.
type AttributeRegistry struct {
	attrs  []Attribute
	byID   map[AttrID]int
	nextID AttrID
}

// NewAttributeRegistry creates an empty registry.
func NewAttributeRegistry() *AttributeRegistry {
	return &AttributeRegistry{byID: make(map[AttrID]int), nextID: 1}
}

// Register records an attribute with the given name and type, returning its
// id. If an identical (name, type) attribute already exists its id is
// reused; a changed type for an existing name creates a new attribute entry.
func (r *AttributeRegistry) Register(name string, typ relstore.ValueType) AttrID {
	for _, a := range r.attrs {
		if a.Name == name && a.Type == typ {
			return a.ID
		}
	}
	id := r.nextID
	r.nextID++
	r.byID[id] = len(r.attrs)
	r.attrs = append(r.attrs, Attribute{ID: id, Name: name, Type: typ})
	return id
}

// Lookup returns the attribute for an id.
func (r *AttributeRegistry) Lookup(id AttrID) (Attribute, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Attribute{}, false
	}
	return r.attrs[i], true
}

// All returns all registered attributes in registration order.
func (r *AttributeRegistry) All() []Attribute {
	out := make([]Attribute, len(r.attrs))
	copy(out, r.attrs)
	return out
}

// RegisterSchema registers every column of a schema and returns the ordered
// attribute ids.
func (r *AttributeRegistry) RegisterSchema(s relstore.Schema) []AttrID {
	out := make([]AttrID, 0, len(s.Columns))
	for _, c := range s.Columns {
		out = append(out, r.Register(c.Name, c.Type))
	}
	return out
}

// metadataStore keeps the per-version metadata in memory and mirrors it into
// a relstore table so it can be inspected and queried like any relation.
type metadataStore struct {
	db    *relstore.Database
	name  string
	metas map[vgraph.VersionID]*VersionMeta
}

func newMetadataStore(db *relstore.Database, cvdName string) (*metadataStore, error) {
	s := &metadataStore{db: db, name: cvdName + "_metadata", metas: make(map[vgraph.VersionID]*VersionMeta)}
	_, err := db.CreateTable(s.name, relstore.MustSchema([]relstore.Column{
		{Name: "vid", Type: relstore.TypeInt},
		{Name: "parents", Type: relstore.TypeIntArray},
		{Name: "checkout_ts", Type: relstore.TypeInt},
		{Name: "commit_ts", Type: relstore.TypeInt},
		{Name: "msg", Type: relstore.TypeString},
		{Name: "author", Type: relstore.TypeString},
		{Name: "attributes", Type: relstore.TypeIntArray},
		{Name: "num_records", Type: relstore.TypeInt},
	}, "vid"))
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *metadataStore) add(m *VersionMeta) error {
	if _, dup := s.metas[m.ID]; dup {
		return fmt.Errorf("cvd: metadata for version %d already exists", m.ID)
	}
	s.metas[m.ID] = m
	parents := make([]int64, len(m.Parents))
	for i, p := range m.Parents {
		parents[i] = int64(p)
	}
	attrs := make([]int64, len(m.Attributes))
	for i, a := range m.Attributes {
		attrs[i] = int64(a)
	}
	t := s.db.MustTable(s.name)
	return t.Insert(relstore.Row{
		relstore.Int(int64(m.ID)),
		relstore.IntArray(parents),
		relstore.Int(m.CheckoutAt.UnixNano()),
		relstore.Int(m.CommitAt.UnixNano()),
		relstore.Str(m.Message),
		relstore.Str(m.Author),
		relstore.IntArray(attrs),
		relstore.Int(m.NumRecords),
	})
}

func (s *metadataStore) get(v vgraph.VersionID) (*VersionMeta, bool) {
	m, ok := s.metas[v]
	return m, ok
}

func (s *metadataStore) all() []*VersionMeta {
	out := make([]*VersionMeta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *metadataStore) drop() { s.db.DropTable(s.name) }

// latest returns the version with the most recent commit timestamp (the
// "last modification to the CVD" metadata shortcut).
func (s *metadataStore) latest() (*VersionMeta, bool) {
	var best *VersionMeta
	for _, m := range s.metas {
		if best == nil || m.CommitAt.After(best.CommitAt) || (m.CommitAt.Equal(best.CommitAt) && m.ID > best.ID) {
			best = m
		}
	}
	return best, best != nil
}
