// Package cvd implements collaborative versioned datasets (CVDs): relations
// that implicitly contain many versions, stored inside the relstore
// substrate using one of the five data models compared in Chapter 4
// (a-table-per-version, combined-table, split-by-vlist, split-by-rlist and
// delta-based). It provides the git-style checkout / commit / diff workflow
// of Chapter 3, version metadata and schema evolution of Section 4.3, and
// the versioned query shortcuts used by the OrpheusDB query language.
//
// CVDs are safe for concurrent use: commits serialize behind an exclusive
// lock while checkouts, diffs, and versioned queries share a read lock and
// proceed in parallel. Operations additionally parallelize internally
// (multi-version checkout, partitioned scans, partition builds) when the
// CVD is created with Options.Workers > 1. The only unsynchronized surface
// is the raw-structure accessors (Graph, Bipartite, DataModel, Rlist,
// Attributes), which return live internal pointers; guard multi-step access
// to those with WithShared / WithExclusive.
package cvd

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// ModelKind enumerates the physical data models for representing a CVD
// inside the relational substrate (Section 4.1).
type ModelKind int

const (
	// SplitByRlist stores a data table plus a versioning table keyed by vid
	// with an rlist array (the model OrpheusDB adopts).
	SplitByRlist ModelKind = iota
	// SplitByVlist stores a data table plus a versioning table keyed by rid
	// with a vlist array.
	SplitByVlist
	// CombinedTable stores a single table with a vlist array per record.
	CombinedTable
	// TablePerVersion stores every version as its own table.
	TablePerVersion
	// DeltaBased stores each version as a delta (insertions plus tombstoned
	// deletions) from a chosen precedent version.
	DeltaBased
)

// String names the model.
func (k ModelKind) String() string {
	switch k {
	case SplitByRlist:
		return "split-by-rlist"
	case SplitByVlist:
		return "split-by-vlist"
	case CombinedTable:
		return "combined-table"
	case TablePerVersion:
		return "a-table-per-version"
	case DeltaBased:
		return "delta-based"
	default:
		return fmt.Sprintf("model(%d)", int(k))
	}
}

// CommitRecord pairs a record id with its data-attribute values.
type CommitRecord struct {
	RID vgraph.RecordID
	Row relstore.Row // data attributes only, aligned with the CVD schema
}

// CommitRequest carries everything a data model needs to add a new version.
type CommitRequest struct {
	// Version is the id of the new version.
	Version vgraph.VersionID
	// Parents are the versions the commit derives from (empty for the
	// initial version).
	Parents []vgraph.VersionID
	// ParentRIDs lists, per parent, the record ids that parent contains.
	ParentRIDs map[vgraph.VersionID][]vgraph.RecordID
	// RIDs is the complete record id list of the new version.
	RIDs []vgraph.RecordID
	// NewRecords are the records in RIDs that are not present in any parent
	// and must be added to physical storage, with their contents.
	NewRecords []CommitRecord
	// Lookup resolves the content of an already-stored record by id. Models
	// that restate inherited records (delta-based, a-table-per-version) use
	// it; models with a shared data table do not need it.
	Lookup func(vgraph.RecordID) (relstore.Row, bool)
}

// DataModel is the physical-storage strategy behind a CVD. Implementations
// live entirely inside a relstore.Database so their storage and I/O costs
// are measured by the substrate.
type DataModel interface {
	// Kind identifies the model.
	Kind() ModelKind
	// Init creates the model's backing tables for a CVD with the given data
	// schema (no rid column) and loads the initial version.
	Init(req CommitRequest) error
	// AppendVersion adds a committed version to storage.
	AppendVersion(req CommitRequest) error
	// Checkout materializes a single version as a fresh table named
	// tableName containing an rid column followed by the data attributes.
	Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error)
	// StorageBytes returns the accounted storage footprint of the model.
	StorageBytes() int64
	// AlterSchema evolves the data schema (single-pool evolution): columns
	// may be added and column types generalized. Existing records keep NULL
	// in new columns.
	AlterSchema(newSchema relstore.Schema) error
	// Drop removes all backing tables.
	Drop()
}

// ridColumn is the name of the synthetic record-id column in data tables and
// checkout results.
const ridColumn = "rid"

// vidColumn, rlistColumn, vlistColumn name the versioning-table attributes.
const (
	vidColumn   = "vid"
	rlistColumn = "rlist"
	vlistColumn = "vlist"
)

// dataSchemaWithRID prepends the rid column to the data schema and makes rid
// the physical primary key (the relation primary key only holds within a
// version, so it cannot index the shared data table).
func dataSchemaWithRID(data relstore.Schema) relstore.Schema {
	cols := make([]relstore.Column, 0, len(data.Columns)+1)
	cols = append(cols, relstore.Column{Name: ridColumn, Type: relstore.TypeInt})
	cols = append(cols, data.Columns...)
	return relstore.MustSchema(cols, ridColumn)
}

// rowWithRID prepends the rid value to a data row.
func rowWithRID(rid vgraph.RecordID, data relstore.Row) relstore.Row {
	out := make(relstore.Row, 0, len(data)+1)
	out = append(out, relstore.Int(int64(rid)))
	out = append(out, data...)
	return out
}

// padRow extends a row with NULLs so its length matches want. Used after
// schema evolution when older records have fewer attributes.
func padRow(r relstore.Row, want int) relstore.Row {
	for len(r) < want {
		r = append(r, relstore.Null())
	}
	return r
}

// newModel constructs a data model of the requested kind backed by db, with
// table names prefixed by the CVD name.
func newModel(kind ModelKind, db *relstore.Database, cvdName string, schema relstore.Schema) (DataModel, error) {
	switch kind {
	case SplitByRlist:
		return newRlistModel(db, cvdName, schema), nil
	case SplitByVlist:
		return newVlistModel(db, cvdName, schema), nil
	case CombinedTable:
		return newCombinedModel(db, cvdName, schema), nil
	case TablePerVersion:
		return newTPVModel(db, cvdName, schema), nil
	case DeltaBased:
		return newDeltaModel(db, cvdName, schema), nil
	default:
		return nil, fmt.Errorf("cvd: unknown data model %d", int(kind))
	}
}
