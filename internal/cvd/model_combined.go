package cvd

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// combinedModel is the combined-table data model (Approach 4.1): a single
// table holding the data attributes, the rid, and a vlist array naming every
// version each record belongs to. Checkout is a full scan with an array
// containment check; commit appends the new version id to the vlist of every
// record in the version, making it the slowest model for commit
// (Figure 4.1b).
type combinedModel struct {
	db     *relstore.Database
	name   string
	schema relstore.Schema
}

func newCombinedModel(db *relstore.Database, name string, schema relstore.Schema) *combinedModel {
	return &combinedModel{db: db, name: name, schema: schema.Clone()}
}

func (m *combinedModel) Kind() ModelKind { return CombinedTable }

func (m *combinedModel) tabName() string { return m.name + "_combined" }

func (m *combinedModel) combinedSchema() relstore.Schema {
	cols := make([]relstore.Column, 0, len(m.schema.Columns)+2)
	cols = append(cols, relstore.Column{Name: ridColumn, Type: relstore.TypeInt})
	cols = append(cols, m.schema.Columns...)
	cols = append(cols, relstore.Column{Name: vlistColumn, Type: relstore.TypeIntArray})
	return relstore.MustSchema(cols, ridColumn)
}

func (m *combinedModel) Init(req CommitRequest) error {
	if _, err := m.db.CreateTable(m.tabName(), m.combinedSchema()); err != nil {
		return err
	}
	return m.AppendVersion(req)
}

func (m *combinedModel) AppendVersion(req CommitRequest) error {
	t := m.db.MustTable(m.tabName())
	vlIdx := t.Schema.ColumnIndex(vlistColumn)
	ridIdx := t.Schema.ColumnIndex(ridColumn)
	dataCols := len(t.Schema.Columns) - 2

	newSet := make(map[vgraph.RecordID]struct{}, len(req.NewRecords))
	for _, rec := range req.NewRecords {
		newSet[rec.RID] = struct{}{}
		row := make(relstore.Row, 0, dataCols+2)
		row = append(row, relstore.Int(int64(rec.RID)))
		row = append(row, padRow(rec.Row.Clone(), dataCols)...)
		row = append(row, relstore.IntArray([]int64{int64(req.Version)}))
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	existing := make(map[int64]struct{})
	for _, rid := range req.RIDs {
		if _, isNew := newSet[rid]; !isNew {
			existing[int64(rid)] = struct{}{}
		}
	}
	if len(existing) == 0 {
		return nil
	}
	_, err := t.UpdateWhere(
		func(r relstore.Row) bool {
			_, ok := existing[r[ridIdx].AsInt()]
			return ok
		},
		func(r relstore.Row) relstore.Row {
			r[vlIdx] = relstore.IntArray(relstore.ArrayAppend(r[vlIdx].A, int64(req.Version)))
			return r
		},
	)
	return err
}

func (m *combinedModel) Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error) {
	t := m.db.MustTable(m.tabName())
	vlIdx := t.Schema.ColumnIndex(vlistColumn)
	outSchema := dataSchemaWithRID(m.schema)
	out := relstore.NewTable(tableName, outSchema)
	out.SetStats(t.Stats())
	found := false
	t.Scan(func(_ int, r relstore.Row) bool {
		if relstore.ArrayHas(r[vlIdx].A, int64(v)) {
			found = true
			row := make(relstore.Row, 0, len(outSchema.Columns))
			row = append(row, r[:len(outSchema.Columns)].Clone()...)
			out.AppendRow(padRow(row, len(outSchema.Columns)))
		}
		return true
	})
	if !found {
		return nil, fmt.Errorf("cvd: %s: version %d not found", m.name, v)
	}
	_ = out.BuildIndexOn(ridColumn)
	return out, nil
}

func (m *combinedModel) StorageBytes() int64 {
	return m.db.MustTable(m.tabName()).StorageBytes()
}

func (m *combinedModel) AlterSchema(newSchema relstore.Schema) error {
	t := m.db.MustTable(m.tabName())
	for _, c := range newSchema.Columns {
		if !t.Schema.HasColumn(c.Name) {
			// New data columns are inserted before the trailing vlist column by
			// rebuilding the table (ALTER ... ADD COLUMN appends, so we rebuild
			// to keep vlist last).
			if err := m.addColumnBeforeVlist(t, c); err != nil {
				return err
			}
			continue
		}
		idx := t.Schema.ColumnIndex(c.Name)
		if t.Schema.Columns[idx].Type != c.Type {
			if err := t.AlterColumnType(c.Name, c.Type); err != nil {
				return err
			}
		}
	}
	m.schema = newSchema.Clone()
	return nil
}

func (m *combinedModel) addColumnBeforeVlist(t *relstore.Table, c relstore.Column) error {
	oldRows := t.Rows()
	m.schema, _ = m.schema.WithColumn(c)
	newTab := relstore.NewTable(t.Name, m.combinedSchema())
	newTab.SetStats(t.Stats())
	for _, r := range oldRows {
		row := make(relstore.Row, 0, len(newTab.Schema.Columns))
		row = append(row, r[:len(r)-1]...) // rid + old data columns
		row = append(row, relstore.Null()) // new column
		row = append(row, r[len(r)-1])     // vlist stays last
		if err := newTab.Insert(row); err != nil {
			return err
		}
	}
	m.db.AttachTable(newTab)
	return nil
}

func (m *combinedModel) Drop() { m.db.DropTable(m.tabName()) }
