package cvd

import (
	"testing"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

func TestScanVersionsWithPredicateAndLimit(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	// SELECT * FROM VERSION 1, 2 OF CVD interaction WHERE coexpression > 80 LIMIT 50
	pred, err := c.NamedPredicate("coexpression", ">", relstore.Int(80))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.ScanVersions([]vgraph.VersionID{1, 2}, pred, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Only r3 (coexpression 164) in v1 and v2, and r4 (975) in v2 qualify.
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// LIMIT stops early.
	limited, err := c.ScanVersions([]vgraph.VersionID{1, 2}, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Errorf("limit ignored: got %d rows", len(limited))
	}
	if _, err := c.ScanVersions([]vgraph.VersionID{99}, nil, 0); err == nil {
		t.Error("scan of unknown version should fail")
	}
	if _, err := c.NamedPredicate("nope", "=", relstore.Int(1)); err == nil {
		t.Error("predicate on unknown column should fail")
	}
}

func TestPredicateOperators(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		pred, err := c.NamedPredicate("cooccurrence", op, relstore.Int(53))
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if _, err := c.ScanVersions([]vgraph.VersionID{1}, pred, 0); err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
	}
	pred, _ := c.NamedPredicate("cooccurrence", "bogus", relstore.Int(1))
	rows, _ := c.ScanVersions([]vgraph.VersionID{1}, pred, 0)
	if len(rows) != 0 {
		t.Error("bogus operator should match nothing")
	}
}

// TestMultiPredicatePushdownMatchesRowFallback pins that the compiled
// multi-predicate (NamedPredicateAll, pushed down as a chained selection
// refinement) selects exactly the rows the equivalent opaque conjunction
// does.
func TestMultiPredicatePushdownMatchesRowFallback(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	versions := c.Versions()
	named, err := c.NamedPredicateAll([]ColumnComparison{
		{Column: "cooccurrence", Op: ">", Value: relstore.Int(0)},
		{Column: "protein1", Op: "=", Value: relstore.Str("ENSP273047")},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := c.Schema()
	coIdx, p1Idx := schema.ColumnIndex("cooccurrence"), schema.ColumnIndex("protein1")
	opaque := RowPredicate(func(r relstore.Row) bool {
		return coIdx < len(r) && p1Idx < len(r) &&
			r[coIdx].Compare(relstore.Int(0)) > 0 &&
			r[p1Idx].Compare(relstore.Str("ENSP273047")) == 0
	})
	fast, err := c.ScanVersions(versions, named, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.ScanVersions(versions, opaque, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) == 0 || len(fast) != len(slow) {
		t.Fatalf("multi-predicate pushdown %d rows, fallback %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i].Version != slow[i].Version || fast[i].RID != slow[i].RID {
			t.Fatalf("row %d differs: %+v vs %+v", i, fast[i], slow[i])
		}
	}
	if _, err := c.NamedPredicateAll(nil); err == nil {
		t.Error("empty comparison list should error")
	}
	if _, err := c.NamedPredicateAll([]ColumnComparison{{Column: "nope", Op: "=", Value: relstore.Int(1)}}); err == nil {
		t.Error("unknown column should error")
	}
}

// TestPredicatePushdownEvolvedColumnNulls pins the delicate pushdown case:
// a predicate over a column added by schema evolution, where every
// pre-evolution record reads NULL (padded by AddColumn on the data table
// and by recordContentLocked in the catalog) and NULL sorts before
// everything — so e.g. `< 0.5` matches all old records. The vectorized
// FilterVec plan and the row-at-a-time fallback must agree exactly.
func TestPredicatePushdownEvolvedColumnNulls(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	wide := relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "confidence", Type: relstore.TypeFloat},
	})
	if _, err := c.Commit([]vgraph.VersionID{4},
		[]relstore.Row{{relstore.Str("ENSP900000"), relstore.Float(0.9)}},
		wide, "evolve: add confidence", "dave"); err != nil {
		t.Fatalf("evolving commit: %v", err)
	}
	versions := c.Versions()
	idx := c.Schema().ColumnIndex("confidence")
	if idx < 0 {
		t.Fatal("schema evolution did not add the confidence column")
	}
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		val := relstore.Float(0.5)
		named, err := c.NamedPredicate("confidence", op, val)
		if err != nil {
			t.Fatal(err)
		}
		cmp, _ := relstore.ParseCmpOp(op)
		opaque := RowPredicate(func(r relstore.Row) bool {
			return idx < len(r) && cmp.Eval(r[idx].Compare(val))
		})
		fast, err := c.ScanVersions(versions, named, 0)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := c.ScanVersions(versions, opaque, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("op %s: pushdown %d rows, fallback %d", op, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Version != slow[i].Version || fast[i].RID != slow[i].RID {
				t.Fatalf("op %s: row %d differs: %+v vs %+v", op, i, fast[i], slow[i])
			}
		}
		// The NULL-matching operators must actually select old records,
		// otherwise this test is vacuous.
		if (op == "<" || op == "<=" || op == "!=") && len(fast) == 0 {
			t.Fatalf("op %s selected nothing; expected NULL cells to match", op)
		}
	}
}

// TestPredicatePushdownMatchesRowFallback pins that the vectorized pushdown
// (NamedPredicate on a split-by-rlist CVD) selects exactly the rows an
// equivalent opaque RowPredicate does — across every model and operator.
func TestPredicatePushdownMatchesRowFallback(t *testing.T) {
	for _, kind := range []ModelKind{SplitByRlist, CombinedTable} {
		_, c := buildProteinCVD(t, kind)
		versions := c.Versions()
		for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
			for _, val := range []relstore.Value{relstore.Int(53), relstore.Int(0), relstore.Null(), relstore.Str("ENSP261890")} {
				named, err := c.NamedPredicate("cooccurrence", op, val)
				if err != nil {
					t.Fatal(err)
				}
				cmp, _ := relstore.ParseCmpOp(op)
				idx := -1
				for i, col := range c.Schema().Columns {
					if col.Name == "cooccurrence" {
						idx = i
					}
				}
				opaque := RowPredicate(func(r relstore.Row) bool {
					return idx < len(r) && cmp.Eval(r[idx].Compare(val))
				})
				fast, err := c.ScanVersions(versions, named, 0)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := c.ScanVersions(versions, opaque, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(fast) != len(slow) {
					t.Fatalf("model %v op %s val %v: pushdown %d rows, fallback %d", kind, op, val, len(fast), len(slow))
				}
				for i := range fast {
					if fast[i].Version != slow[i].Version || fast[i].RID != slow[i].RID {
						t.Fatalf("model %v op %s: row %d differs: %+v vs %+v", kind, op, i, fast[i], slow[i])
					}
				}
			}
		}
	}
}

func TestAggregateByVersion(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	// SELECT vid, count(*) FROM CVD interaction GROUP BY vid
	counts, err := c.AggregateByVersion(nil, nil, CountAgg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[vgraph.VersionID]int64{1: 3, 2: 3, 3: 4, 4: 6}
	for v, n := range want {
		if counts[v].AsInt() != n {
			t.Errorf("count(v%d) = %d, want %d", v, counts[v].AsInt(), n)
		}
	}
	// Aggregate with a predicate: count of tuples with coexpression > 80.
	pred, _ := c.NamedPredicate("coexpression", ">", relstore.Int(80))
	filtered, err := c.AggregateByVersion([]vgraph.VersionID{3, 4}, pred, CountAgg())
	if err != nil {
		t.Fatal(err)
	}
	if filtered[3].AsInt() != 3 {
		t.Errorf("filtered count(v3) = %d, want 3 (r3, r5, r6)", filtered[3].AsInt())
	}
	if filtered[4].AsInt() != 4 {
		t.Errorf("filtered count(v4) = %d, want 4 (r3, r4, r5, r6)", filtered[4].AsInt())
	}
	// Sum / Avg / Max aggregators.
	sum, err := c.SumAgg("coexpression")
	if err != nil {
		t.Fatal(err)
	}
	sums, _ := c.AggregateByVersion([]vgraph.VersionID{1}, nil, sum)
	if sums[1].AsFloat() != 164 {
		t.Errorf("sum coexpression(v1) = %g, want 164", sums[1].AsFloat())
	}
	avg, _ := c.AvgAgg("coexpression")
	avgs, _ := c.AggregateByVersion([]vgraph.VersionID{1}, nil, avg)
	if got := avgs[1].AsFloat(); got < 54 || got > 55 {
		t.Errorf("avg coexpression(v1) = %g, want ~54.7", got)
	}
	max, _ := c.MaxAgg("coexpression")
	maxs, _ := c.AggregateByVersion([]vgraph.VersionID{2}, nil, max)
	if maxs[2].AsInt() != 975 {
		t.Errorf("max coexpression(v2) = %d, want 975", maxs[2].AsInt())
	}
	if _, err := c.SumAgg("missing"); err == nil {
		t.Error("sum of missing column should fail")
	}
	if _, err := c.AggregateByVersion(nil, nil, nil); err == nil {
		t.Error("nil aggregator should fail")
	}
	if _, err := c.AggregateByVersion([]vgraph.VersionID{99}, nil, CountAgg()); err == nil {
		t.Error("unknown version should fail")
	}
}

func TestVersionsWhere(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	// Versions containing more than 3 records.
	vs, err := c.VersionsWhere(nil, CountAgg(), func(v relstore.Value) bool { return v.AsInt() > 3 })
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] != 3 || vs[1] != 4 {
		t.Errorf("VersionsWhere = %v, want [3 4]", vs)
	}
}

func TestGraphPrimitives(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	if got := c.Ancestors(4); len(got) != 3 {
		t.Errorf("ancestors(4) = %v, want 3", got)
	}
	if got := c.Descendants(1); len(got) != 3 {
		t.Errorf("descendants(1) = %v, want 3", got)
	}
	if got := c.Parents(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("parents(2) = %v, want [1]", got)
	}
}

func TestVDiffAndVIntersect(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	// v_diff(v3, v2): records in v3 but not v2 = {r5, r6, r7} -> 3 records.
	d := c.VDiff([]vgraph.VersionID{3}, []vgraph.VersionID{2})
	if len(d) != 3 {
		t.Errorf("v_diff(3,2) = %v, want 3 records", d)
	}
	// v_diff of a version against itself is empty.
	if got := c.VDiff([]vgraph.VersionID{2}, []vgraph.VersionID{2}); len(got) != 0 {
		t.Errorf("v_diff(2,2) = %v, want empty", got)
	}
	// v_intersect(v1, v2, v3, v4) = {r3}.
	in := c.VIntersect([]vgraph.VersionID{1, 2, 3, 4})
	if len(in) != 1 {
		t.Errorf("v_intersect(all) = %v, want exactly one shared record", in)
	}
	if got := c.VIntersect(nil); got != nil {
		t.Errorf("v_intersect() = %v, want nil", got)
	}
}

func TestSchemaEvolutionOnCommit(t *testing.T) {
	// Section 4.3: committing a version with a new attribute and a
	// generalized type evolves the single-pool schema.
	db := relstore.NewDatabase("db")
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "protein2", Type: relstore.TypeString},
		{Name: "cooccurrence", Type: relstore.TypeInt},
	}, "protein1", "protein2")
	c, err := Init(db, "evolving", schema, []relstore.Row{
		{relstore.Str("a"), relstore.Str("b"), relstore.Int(5)},
	}, Options{Model: SplitByRlist, Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	// v2 changes cooccurrence to decimal.
	schema2 := relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "protein2", Type: relstore.TypeString},
		{Name: "cooccurrence", Type: relstore.TypeFloat},
	}, "protein1", "protein2")
	if _, err := c.Commit([]vgraph.VersionID{1}, []relstore.Row{
		{relstore.Str("a"), relstore.Str("b"), relstore.Float(5.5)},
	}, schema2, "decimalize", ""); err != nil {
		t.Fatal(err)
	}
	// v3 adds a coexpression attribute.
	schema3 := relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "protein2", Type: relstore.TypeString},
		{Name: "cooccurrence", Type: relstore.TypeFloat},
		{Name: "coexpression", Type: relstore.TypeInt},
	}, "protein1", "protein2")
	if _, err := c.Commit([]vgraph.VersionID{2}, []relstore.Row{
		{relstore.Str("a"), relstore.Str("b"), relstore.Float(5.5), relstore.Int(42)},
	}, schema3, "add coexpression", ""); err != nil {
		t.Fatal(err)
	}
	cur := c.Schema()
	if !cur.HasColumn("coexpression") {
		t.Error("schema evolution did not add coexpression")
	}
	if idx := cur.ColumnIndex("cooccurrence"); cur.Columns[idx].Type != relstore.TypeFloat {
		t.Error("cooccurrence type not generalized to decimal")
	}
	// The attribute registry holds the old and the new cooccurrence entries
	// plus the other attributes (Figure 4.3).
	attrs := c.Attributes().All()
	var coocCount int
	for _, a := range attrs {
		if a.Name == "cooccurrence" {
			coocCount++
		}
	}
	if coocCount != 2 {
		t.Errorf("attribute table has %d cooccurrence entries, want 2 (integer and decimal)", coocCount)
	}
	// Old versions check out with NULL in the new column.
	tab, err := c.Checkout([]vgraph.VersionID{1}, "old")
	if err != nil {
		t.Fatal(err)
	}
	coIdx := tab.Schema.ColumnIndex("coexpression")
	if coIdx < 0 {
		t.Fatal("checked-out table lacks evolved column")
	}
	if !tab.At(0, coIdx).IsNull() {
		t.Errorf("old record should have NULL coexpression, got %v", tab.At(0, coIdx))
	}
	// Metadata records the attribute ids per version; v3 has more than v1.
	m1, _ := c.Meta(1)
	m3, _ := c.Meta(3)
	if len(m3.Attributes) <= len(m1.Attributes) {
		t.Errorf("v3 should record more attributes than v1: %d vs %d", len(m3.Attributes), len(m1.Attributes))
	}
}

func TestAttributeRegistry(t *testing.T) {
	r := NewAttributeRegistry()
	a1 := r.Register("x", relstore.TypeInt)
	a2 := r.Register("x", relstore.TypeInt)
	if a1 != a2 {
		t.Error("identical attribute should reuse its id")
	}
	a3 := r.Register("x", relstore.TypeFloat)
	if a3 == a1 {
		t.Error("type change should create a new attribute id")
	}
	if got, ok := r.Lookup(a3); !ok || got.Type != relstore.TypeFloat {
		t.Errorf("Lookup(%d) = %+v, %v", a3, got, ok)
	}
	if _, ok := r.Lookup(999); ok {
		t.Error("unknown attribute id should not resolve")
	}
	if len(r.All()) != 2 {
		t.Errorf("All() = %v, want 2 attributes", r.All())
	}
}
