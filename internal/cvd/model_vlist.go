package cvd

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// vlistModel is the split-by-vlist data model (Approach 4.2): a shared data
// table keyed by rid plus a versioning table keyed by rid whose vlist array
// lists the versions each record belongs to. Commit must append the new
// version id to the vlist of every record present in the committed version,
// which is what makes its commit time grow with version size (Figure 4.1b).
type vlistModel struct {
	db     *relstore.Database
	name   string
	schema relstore.Schema
	join   relstore.JoinMethod
}

func newVlistModel(db *relstore.Database, name string, schema relstore.Schema) *vlistModel {
	return &vlistModel{db: db, name: name, schema: schema.Clone(), join: relstore.HashJoin}
}

func (m *vlistModel) Kind() ModelKind { return SplitByVlist }

func (m *vlistModel) dataTabName() string       { return m.name + "_data" }
func (m *vlistModel) versioningTabName() string { return m.name + "_versions" }

func (m *vlistModel) Init(req CommitRequest) error {
	if _, err := m.db.CreateTable(m.dataTabName(), dataSchemaWithRID(m.schema)); err != nil {
		return err
	}
	if _, err := m.db.CreateTable(m.versioningTabName(), relstore.MustSchema([]relstore.Column{
		{Name: ridColumn, Type: relstore.TypeInt},
		{Name: vlistColumn, Type: relstore.TypeIntArray},
	}, ridColumn)); err != nil {
		return err
	}
	return m.AppendVersion(req)
}

func (m *vlistModel) AppendVersion(req CommitRequest) error {
	data := m.db.MustTable(m.dataTabName())
	vt := m.db.MustTable(m.versioningTabName())

	newSet := make(map[vgraph.RecordID]struct{}, len(req.NewRecords))
	for _, rec := range req.NewRecords {
		newSet[rec.RID] = struct{}{}
		if err := data.Insert(rowWithRID(rec.RID, padRow(rec.Row.Clone(), len(m.schema.Columns)))); err != nil {
			return err
		}
		if err := vt.Insert(relstore.Row{relstore.Int(int64(rec.RID)), relstore.IntArray([]int64{int64(req.Version)})}); err != nil {
			return err
		}
	}
	// Append the new version id to the vlist of every pre-existing record in
	// the version: the expensive array-append UPDATE of Table 4.1.
	existing := make(map[int64]struct{})
	for _, rid := range req.RIDs {
		if _, isNew := newSet[rid]; !isNew {
			existing[int64(rid)] = struct{}{}
		}
	}
	if len(existing) == 0 {
		return nil
	}
	ridIdx := vt.Schema.ColumnIndex(ridColumn)
	vlIdx := vt.Schema.ColumnIndex(vlistColumn)
	_, err := vt.UpdateWhere(
		func(r relstore.Row) bool {
			_, ok := existing[r[ridIdx].AsInt()]
			return ok
		},
		func(r relstore.Row) relstore.Row {
			r[vlIdx] = relstore.IntArray(relstore.ArrayAppend(r[vlIdx].A, int64(req.Version)))
			return r
		},
	)
	return err
}

func (m *vlistModel) Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error) {
	vt := m.db.MustTable(m.versioningTabName())
	vlIdx := vt.Schema.ColumnIndex(vlistColumn)
	ridIdx := vt.Schema.ColumnIndex(ridColumn)
	var rids []int64
	// Full scan of the versioning table checking vlist containment
	// (`ARRAY[vi] <@ vlist` in Table 4.1).
	vt.Scan(func(_ int, r relstore.Row) bool {
		if relstore.ArrayHas(r[vlIdx].A, int64(v)) {
			rids = append(rids, r[ridIdx].AsInt())
		}
		return true
	})
	if len(rids) == 0 {
		return nil, fmt.Errorf("cvd: %s: version %d not found", m.name, v)
	}
	data := m.db.MustTable(m.dataTabName())
	rows, err := relstore.JoinOnRIDs(data, ridColumn, rids, m.join)
	if err != nil {
		return nil, err
	}
	out := relstore.NewTable(tableName, data.Schema.Clone())
	out.SetStats(data.Stats())
	for _, r := range rows {
		out.AppendRow(r.Clone())
	}
	_ = out.BuildIndexOn(ridColumn)
	return out, nil
}

func (m *vlistModel) StorageBytes() int64 {
	return m.db.MustTable(m.dataTabName()).StorageBytes() + m.db.MustTable(m.versioningTabName()).StorageBytes()
}

func (m *vlistModel) AlterSchema(newSchema relstore.Schema) error {
	t := m.db.MustTable(m.dataTabName())
	for _, c := range newSchema.Columns {
		if !t.Schema.HasColumn(c.Name) {
			if err := t.AddColumn(c); err != nil {
				return err
			}
			continue
		}
		idx := t.Schema.ColumnIndex(c.Name)
		if t.Schema.Columns[idx].Type != c.Type {
			if err := t.AlterColumnType(c.Name, c.Type); err != nil {
				return err
			}
		}
	}
	m.schema = newSchema.Clone()
	return nil
}

func (m *vlistModel) Drop() {
	m.db.DropTable(m.dataTabName())
	m.db.DropTable(m.versioningTabName())
}
