package cvd

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// rlistModel is the split-by-rlist data model (Approach 4.3): a shared data
// table keyed by rid plus a versioning table keyed by vid whose rlist array
// lists the records in the version. It is the model OrpheusDB adopts, and
// the only model that supports partitioned storage (Chapter 5): the data
// table may be split into several partition tables, each holding all records
// of the versions assigned to it, so a checkout touches exactly one
// partition.
type rlistModel struct {
	db      *relstore.Database
	name    string
	schema  relstore.Schema // data schema without rid
	join    relstore.JoinMethod
	dataTab string

	// Partitioned state. When partitions is nil the model is unpartitioned
	// and all records live in the single dataTab table. When non-nil,
	// partition k's records live in table partTabName(k) and partitionOf
	// maps each version to its partition.
	partitions  []string // partition table names
	partitionOf map[vgraph.VersionID]int

	// resident caches, per partition, the compressed set of rids physically
	// present in the partition table. Commits and migrations consult it
	// instead of re-scanning the partition table to learn what is already
	// there (the pre-recset addVersionToPartition scanned the whole table on
	// every commit). Invariant: resident[k] holds exactly the rids of
	// partitions[k]'s rows.
	resident []*recset.Set

	// workers bounds intra-operation parallelism: checkout scans are chunked
	// and partition builds fan out across this many goroutines when > 1.
	workers int

	// cloneOnCheckout restores the pre-zero-copy behavior of deep-cloning
	// every emitted row. Checkout shares row backing by default (rows are
	// immutable once inserted; staging-table mutation is copy-on-write at
	// the relstore layer); the clone path is kept only so the benchmark
	// harness can measure the before/after difference.
	cloneOnCheckout bool
}

func newRlistModel(db *relstore.Database, name string, schema relstore.Schema) *rlistModel {
	return &rlistModel{
		db:      db,
		name:    name,
		schema:  schema.Clone(),
		join:    relstore.HashJoin,
		dataTab: name + "_data",
	}
}

func (m *rlistModel) Kind() ModelKind { return SplitByRlist }

// SetJoinMethod overrides the join strategy used during checkout; the
// default is a hash join (Section 5.5.5).
func (m *rlistModel) SetJoinMethod(j relstore.JoinMethod) { m.join = j }

// SetWorkers bounds the intra-operation parallelism of checkout scans and
// partition builds; 0 or 1 keeps them single-threaded.
func (m *rlistModel) SetWorkers(n int) {
	if n <= 0 {
		n = 1
	}
	m.workers = n
}

func (m *rlistModel) versioningTabName() string { return m.name + "_versions" }

func (m *rlistModel) partTabName(k int) string { return fmt.Sprintf("%s_part%d", m.name, k) }

func (m *rlistModel) Init(req CommitRequest) error {
	data, err := m.db.CreateTable(m.dataTab, dataSchemaWithRID(m.schema))
	if err != nil {
		return err
	}
	vt, err := m.db.CreateTable(m.versioningTabName(), relstore.MustSchema([]relstore.Column{
		{Name: vidColumn, Type: relstore.TypeInt},
		{Name: rlistColumn, Type: relstore.TypeIntArray},
	}, vidColumn))
	if err != nil {
		return err
	}
	_ = data
	_ = vt
	return m.AppendVersion(req)
}

func (m *rlistModel) AppendVersion(req CommitRequest) error {
	data, ok := m.db.Table(m.dataTab)
	if !ok {
		return fmt.Errorf("cvd: %s: data table missing", m.name)
	}
	for _, rec := range req.NewRecords {
		if err := data.Insert(rowWithRID(rec.RID, padRow(rec.Row.Clone(), len(m.schema.Columns)))); err != nil {
			return err
		}
	}
	vt := m.db.MustTable(m.versioningTabName())
	rlist := make([]int64, len(req.RIDs))
	for i, r := range req.RIDs {
		rlist[i] = int64(r)
	}
	sort.Slice(rlist, func(i, j int) bool { return rlist[i] < rlist[j] })
	if err := vt.Insert(relstore.Row{relstore.Int(int64(req.Version)), relstore.IntArray(rlist)}); err != nil {
		return err
	}
	// Under partitioning, new versions are routed by online maintenance
	// (OnlineAssign); until then they are placed with their first parent's
	// partition, or partition 0 if there is none.
	if m.partitions != nil {
		k := 0
		if len(req.Parents) > 0 {
			if pk, ok := m.partitionOf[req.Parents[0]]; ok {
				k = pk
			}
		}
		if err := m.addVersionToPartition(req.Version, k, req.RIDs, req.NewRecords); err != nil {
			return err
		}
	}
	return nil
}

// SetCloneOnCheckout restores the pre-zero-copy deep-clone checkout path;
// benchmark-only (see the cloneOnCheckout field).
func (m *rlistModel) SetCloneOnCheckout(clone bool) { m.cloneOnCheckout = clone }

// rlistOf returns the rid list of a version from the versioning table (kept
// sorted by AppendVersion).
func (m *rlistModel) rlistOf(v vgraph.VersionID) ([]int64, error) {
	vt := m.db.MustTable(m.versioningTabName())
	row, ok := vt.LookupIndex(relstore.Int(int64(v)))
	if !ok {
		return nil, fmt.Errorf("cvd: %s: version %d not found", m.name, v)
	}
	return row[1].A, nil
}

// rsetOf returns the rid list of a version as a compressed set.
func (m *rlistModel) rsetOf(v vgraph.VersionID) (*recset.Set, error) {
	rlist, err := m.rlistOf(v)
	if err != nil {
		return nil, err
	}
	return recset.FromSorted(rlist), nil
}

func (m *rlistModel) Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error) {
	set, err := m.rsetOf(v)
	if err != nil {
		return nil, err
	}
	src := m.dataTab
	if m.partitions != nil {
		k, ok := m.partitionOf[v]
		if !ok {
			return nil, fmt.Errorf("cvd: %s: version %d has no partition assignment", m.name, v)
		}
		src = m.partitions[k]
	}
	data := m.db.MustTable(src)
	if m.cloneOnCheckout {
		// Benchmark-only replay of the pre-zero-copy path: materialize and
		// deep-clone every matching row.
		rows, err := relstore.JoinOnRIDSetParallel(data, ridColumn, set, m.join, m.workers)
		if err != nil {
			return nil, err
		}
		out := relstore.NewTable(tableName, data.Schema.Clone())
		out.SetStats(data.Stats())
		width := len(out.Schema.Columns)
		for _, r := range rows {
			out.AppendRow(padRow(r.Clone(), width))
		}
		_ = out.BuildIndexOn(ridColumn)
		return out, nil
	}
	// The columnar fast path: the join resolves to a selection vector over
	// the data table and the staging table is gathered column-wise — sharing
	// the column backing outright (copy-on-write) when the version covers the
	// whole backing table.
	out, err := relstore.JoinTableOnRIDSet(data, ridColumn, set, m.join, m.workers, tableName)
	if err != nil {
		return nil, err
	}
	_ = out.BuildIndexOn(ridColumn)
	return out, nil
}

func (m *rlistModel) StorageBytes() int64 {
	var n int64
	if m.partitions == nil {
		n += m.db.MustTable(m.dataTab).StorageBytes()
	} else {
		for _, p := range m.partitions {
			n += m.db.MustTable(p).StorageBytes()
		}
	}
	n += m.db.MustTable(m.versioningTabName()).StorageBytes()
	return n
}

// DataStorageBytes returns only the data-table portion of the storage (the
// quantity partitioning schemes trade off; the versioning table is constant
// across schemes, Section 5.5.2).
func (m *rlistModel) DataStorageBytes() int64 {
	var n int64
	if m.partitions == nil {
		return m.db.MustTable(m.dataTab).StorageBytes()
	}
	for _, p := range m.partitions {
		n += m.db.MustTable(p).StorageBytes()
	}
	return n
}

// DataRecordCount returns Σ_k |R_k| in records (the storage cost S of
// Equation 5.1) under the current partitioning, or the data-table row count
// when unpartitioned.
func (m *rlistModel) DataRecordCount() int64 {
	if m.partitions == nil {
		return int64(m.db.MustTable(m.dataTab).Len())
	}
	var n int64
	for _, p := range m.partitions {
		n += int64(m.db.MustTable(p).Len())
	}
	return n
}

func (m *rlistModel) AlterSchema(newSchema relstore.Schema) error {
	apply := func(t *relstore.Table) error {
		for _, c := range newSchema.Columns {
			if !t.Schema.HasColumn(c.Name) {
				if err := t.AddColumn(c); err != nil {
					return err
				}
				continue
			}
			idx := t.Schema.ColumnIndex(c.Name)
			if t.Schema.Columns[idx].Type != c.Type {
				if err := t.AlterColumnType(c.Name, c.Type); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := apply(m.db.MustTable(m.dataTab)); err != nil {
		return err
	}
	for _, p := range m.partitions {
		if err := apply(m.db.MustTable(p)); err != nil {
			return err
		}
	}
	m.schema = newSchema.Clone()
	return nil
}

func (m *rlistModel) Drop() {
	m.db.DropTable(m.dataTab)
	m.db.DropTable(m.versioningTabName())
	for _, p := range m.partitions {
		m.db.DropTable(p)
	}
	m.partitions = nil
	m.partitionOf = nil
	m.resident = nil
}

// Partitioned reports whether partitioned storage is active.
func (m *rlistModel) Partitioned() bool { return m.partitions != nil }

// PartitionOf returns the partition index of a version (-1 when
// unpartitioned or unknown).
func (m *rlistModel) PartitionOf(v vgraph.VersionID) int {
	if m.partitions == nil {
		return -1
	}
	k, ok := m.partitionOf[v]
	if !ok {
		return -1
	}
	return k
}

// PartitionTableName returns the name of the backing table a version's
// checkout reads: its partition table under partitioned storage, the shared
// data table otherwise ("" when the version has no assignment). The
// benchmark harness uses it to replay the pre-recset checkout path against
// the same physical table.
func (m *rlistModel) PartitionTableName(v vgraph.VersionID) string {
	if m.partitions == nil {
		return m.dataTab
	}
	k, ok := m.partitionOf[v]
	if !ok {
		return ""
	}
	return m.partitions[k]
}

// PartitionSizes returns the number of records in each partition table.
func (m *rlistModel) PartitionSizes() []int64 {
	out := make([]int64, len(m.partitions))
	for i, p := range m.partitions {
		out[i] = int64(m.db.MustTable(p).Len())
	}
	return out
}

// ApplyPartitioning reorganizes the data table into one partition table per
// group of the supplied partitioning, rebuilding everything from scratch
// (the "naive" migration path). Each partition table receives all records of
// all versions assigned to it; records shared across partitions are
// duplicated (Section 5.1).
func (m *rlistModel) ApplyPartitioning(p vgraph.Partitioning) error {
	// Drop any previous partitions.
	for _, name := range m.partitions {
		m.db.DropTable(name)
	}
	m.partitions = nil
	m.partitionOf = make(map[vgraph.VersionID]int)

	// Create the (empty) partition tables sequentially, then fill them in
	// parallel: each fill reads the shared data table and writes only its own
	// partition table (and resident-set slot), so the builds are independent.
	groups := p.Groups()
	m.partitions = make([]string, len(groups))
	m.resident = make([]*recset.Set, len(groups))
	tables := make([]*relstore.Table, len(groups))
	for k, versions := range groups {
		name := m.partTabName(k)
		m.db.DropTable(name)
		t, err := m.db.CreateTable(name, dataSchemaWithRID(m.schema))
		if err != nil {
			return err
		}
		tables[k] = t
		m.partitions[k] = name
		for _, v := range versions {
			m.partitionOf[v] = k
		}
	}
	return parallel.ForEachErr(m.workers, len(groups), func(k int) error {
		return m.fillPartition(tables[k], k, groups[k])
	})
}

// fillPartition inserts into t (partition k) all records belonging to any of
// versions, fetched from the unpartitioned data table with a compressed-set
// probe and appended column-wise (no row materialization). The union set
// becomes the partition's resident-rid cache.
func (m *rlistModel) fillPartition(t *relstore.Table, k int, versions []vgraph.VersionID) error {
	need := recset.New()
	for _, v := range versions {
		rs, err := m.rsetOf(v)
		if err != nil {
			return err
		}
		need.UnionWith(rs)
	}
	data := m.db.MustTable(m.dataTab)
	sel, err := data.SelectRIDSet(ridColumn, need)
	if err != nil {
		return err
	}
	if err := t.AppendFrom(data, sel); err != nil {
		return err
	}
	m.resident[k] = need
	return nil
}

// MigrationOp describes one partition's migration action when moving to a
// new partitioning scheme (Section 5.4): either rebuild the partition from
// scratch or transform an existing partition by deleting and inserting
// records.
type MigrationOp struct {
	// NewPartition is the index of the partition in the new scheme.
	NewPartition int
	// FromPartition is the index of the old partition to transform, or -1 to
	// build from scratch.
	FromPartition int
	// Versions are the versions assigned to the new partition.
	Versions []vgraph.VersionID
}

// MigrationResult reports the work performed while migrating.
type MigrationResult struct {
	RecordsInserted int64
	RecordsDeleted  int64
	PartitionsBuilt int
}

// Migrate applies a new partitioning using an explicit per-partition plan
// (typically produced by partition.PlanMigration). Partitions with
// FromPartition >= 0 are transformed in place by deleting records no longer
// needed and inserting missing ones; others are rebuilt from scratch.
func (m *rlistModel) Migrate(p vgraph.Partitioning, plan []MigrationOp) (MigrationResult, error) {
	var res MigrationResult
	if m.partitions == nil {
		// Nothing to reuse; fall back to a full rebuild.
		if err := m.ApplyPartitioning(p); err != nil {
			return res, err
		}
		res.PartitionsBuilt = p.NumPartitions
		for _, n := range m.PartitionSizes() {
			res.RecordsInserted += n
		}
		return res, nil
	}
	oldTables := make([]*relstore.Table, len(m.partitions))
	for i, name := range m.partitions {
		oldTables[i] = m.db.MustTable(name)
	}
	newNames := make([]string, p.NumPartitions)
	newResident := make([]*recset.Set, p.NumPartitions)
	newAssign := make(map[vgraph.VersionID]int)

	for _, op := range plan {
		need := recset.New()
		for _, v := range op.Versions {
			rs, err := m.rsetOf(v)
			if err != nil {
				return res, err
			}
			need.UnionWith(rs)
			newAssign[v] = op.NewPartition
		}
		tmpName := fmt.Sprintf("%s_newpart%d", m.name, op.NewPartition)
		m.db.DropTable(tmpName)
		t, err := m.db.CreateTable(tmpName, dataSchemaWithRID(m.schema))
		if err != nil {
			return res, err
		}
		// missing starts as everything the new partition needs; records copied
		// over from the transformed old partition are subtracted below.
		missing := need
		if op.FromPartition >= 0 && op.FromPartition < len(oldTables) {
			// Transform: copy surviving records from the old partition, count
			// the dropped ones as deletions, then insert the missing records.
			// The old partition's resident set tells us what it holds without
			// re-deriving it from the scan.
			old := oldTables[op.FromPartition]
			oldResident := m.residentOf(op.FromPartition)
			sel, err := old.SelectRIDSet(ridColumn, need)
			if err != nil {
				return res, err
			}
			res.RecordsDeleted += int64(old.Len() - len(sel))
			if err := t.AppendFrom(old, sel); err != nil {
				return res, err
			}
			missing = recset.AndNot(need, oldResident)
		} else {
			res.PartitionsBuilt++
		}
		// Insert the records still missing, fetched from the master data table.
		data := m.db.MustTable(m.dataTab)
		sel, err := data.SelectRIDSet(ridColumn, missing)
		if err != nil {
			return res, err
		}
		if err := t.AppendFrom(data, sel); err != nil {
			return res, err
		}
		res.RecordsInserted += int64(len(sel))
		newNames[op.NewPartition] = tmpName
		newResident[op.NewPartition] = need
	}
	// Swap in the new partitions under canonical names.
	for _, name := range m.partitions {
		m.db.DropTable(name)
	}
	m.partitions = make([]string, p.NumPartitions)
	for k, tmp := range newNames {
		final := m.partTabName(k)
		m.db.DropTable(final)
		if tmp == "" {
			// The plan omitted this partition (no versions assigned); create
			// an empty table so indexes stay dense.
			t, err := m.db.CreateTable(final, dataSchemaWithRID(m.schema))
			if err != nil {
				return res, err
			}
			_ = t
			m.partitions[k] = final
			newResident[k] = recset.New()
			continue
		}
		// Rename in place: re-registering the same table under its final name
		// avoids deep-cloning every row just to change the name.
		t := m.db.MustTable(tmp)
		m.db.DropTable(tmp)
		t.Name = final
		m.db.AttachTable(t)
		m.partitions[k] = final
	}
	m.partitionOf = newAssign
	m.resident = newResident
	return res, nil
}

// residentOf returns partition k's resident-rid set, rebuilding it from a
// table scan if the cache is missing (defensive; the cache is maintained on
// every fill, migrate, and per-commit insert).
func (m *rlistModel) residentOf(k int) *recset.Set {
	if k < len(m.resident) && m.resident[k] != nil {
		return m.resident[k]
	}
	t := m.db.MustTable(m.partitions[k])
	ridIdx := t.Schema.ColumnIndex(ridColumn)
	rs := recset.New()
	for i := 0; i < t.Len(); i++ {
		rs.Add(t.IntAt(i, ridIdx))
	}
	t.Stats().AddSeqReads(int64(t.Len()))
	if k < len(m.resident) {
		m.resident[k] = rs
	}
	return rs
}

// OnlineAssign places a newly committed version into partition k and inserts
// the version's new records into that partition (the online maintenance rule
// of Section 5.4). If newPartition is true a fresh partition is created for
// the version instead.
func (m *rlistModel) OnlineAssign(v vgraph.VersionID, k int, newPartition bool, rids []vgraph.RecordID, newRecords []CommitRecord) (int, error) {
	if m.partitions == nil {
		return -1, fmt.Errorf("cvd: %s: OnlineAssign requires partitioned storage", m.name)
	}
	if newPartition {
		k = len(m.partitions)
		name := m.partTabName(k)
		m.db.DropTable(name)
		if _, err := m.db.CreateTable(name, dataSchemaWithRID(m.schema)); err != nil {
			return -1, err
		}
		m.partitions = append(m.partitions, name)
		m.resident = append(m.resident, recset.New())
	}
	if k < 0 || k >= len(m.partitions) {
		return -1, fmt.Errorf("cvd: %s: partition %d out of range", m.name, k)
	}
	if err := m.addVersionToPartition(v, k, rids, newRecords); err != nil {
		return -1, err
	}
	return k, nil
}

// addVersionToPartition ensures all records of the version exist in the
// partition table and records the assignment. Membership of already-present
// records comes from the partition's resident-rid recset — O(|rlist|) bit
// probes per commit instead of the pre-recset full partition-table scan —
// and the cache is updated as rows are inserted.
func (m *rlistModel) addVersionToPartition(v vgraph.VersionID, k int, rids []vgraph.RecordID, newRecords []CommitRecord) error {
	t := m.db.MustTable(m.partitions[k])
	have := m.residentOf(k)
	newByRID := make(map[int64]CommitRecord, len(newRecords))
	for _, rec := range newRecords {
		newByRID[int64(rec.RID)] = rec
	}
	var missing []int64
	for _, rid := range rids {
		if have.Contains(int64(rid)) {
			continue
		}
		if rec, ok := newByRID[int64(rid)]; ok {
			if err := t.Insert(rowWithRID(rec.RID, padRow(rec.Row.Clone(), len(m.schema.Columns)))); err != nil {
				return err
			}
			have.Add(int64(rid))
			continue
		}
		missing = append(missing, int64(rid))
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		data := m.db.MustTable(m.dataTab)
		sel, err := data.SelectRIDSet(ridColumn, recset.FromSorted(missing))
		if err != nil {
			return err
		}
		found, err := data.GatherInts(ridColumn, sel)
		if err != nil {
			return err
		}
		if err := t.AppendFrom(data, sel); err != nil {
			return err
		}
		for _, rid := range found {
			have.Add(rid)
		}
	}
	if m.partitionOf == nil {
		m.partitionOf = make(map[vgraph.VersionID]int)
	}
	m.partitionOf[v] = k
	return nil
}
