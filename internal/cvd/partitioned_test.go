package cvd

import (
	"testing"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

func TestApplyPartitioningAndCheckout(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, err := c.Rlist()
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitioned() {
		t.Fatal("model should start unpartitioned")
	}
	if m.PartitionOf(1) != -1 {
		t.Error("unpartitioned model should report -1 partitions")
	}
	// Partition as in Figure 5.1(b): P1 = {v1, v2}, P2 = {v3, v4}.
	p := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	if err := m.ApplyPartitioning(p); err != nil {
		t.Fatal(err)
	}
	if !m.Partitioned() {
		t.Fatal("model should be partitioned")
	}
	sizes := m.PartitionSizes()
	if len(sizes) != 2 {
		t.Fatalf("partition sizes = %v, want 2 partitions", sizes)
	}
	// P1 holds R(v1) ∪ R(v2) = 4 records; P2 holds R(v3) ∪ R(v4) = 6 records.
	if sizes[0]+sizes[1] != 10 {
		t.Errorf("total partitioned records = %d, want 10 (with duplication)", sizes[0]+sizes[1])
	}
	if m.DataRecordCount() != 10 {
		t.Errorf("DataRecordCount = %d, want 10", m.DataRecordCount())
	}
	// Checkout of every version still returns the correct contents.
	wantSizes := map[vgraph.VersionID]int{1: 3, 2: 3, 3: 4, 4: 6}
	for v, n := range wantSizes {
		tab, err := c.Checkout([]vgraph.VersionID{v}, "pc")
		if err != nil {
			t.Fatalf("checkout v%d after partitioning: %v", v, err)
		}
		if tab.Len() != n {
			t.Errorf("checkout(v%d) = %d rows, want %d", v, tab.Len(), n)
		}
		c.DiscardCheckout("pc")
	}
	// Checkout cost is bounded by the partition size, not the full table.
	db := cdb(t, c)
	db.ResetStats()
	if _, err := c.Checkout([]vgraph.VersionID{1}, "cost"); err != nil {
		t.Fatal(err)
	}
	c.DiscardCheckout("cost")
	if reads := db.Stats().SeqReads; reads > 6 {
		t.Errorf("checkout of v1 scanned %d rows; partition P1 only has 4", reads)
	}
}

// cdb extracts the backing database from a CVD through its staging behaviour.
func cdb(t *testing.T, c *CVD) *relstore.Database { t.Helper(); return c.db }

func TestCommitAfterPartitioningRoutesToParentPartition(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, _ := c.Rlist()
	p := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	if err := m.ApplyPartitioning(p); err != nil {
		t.Fatal(err)
	}
	// Commit v5 derived from v4 (partition 1): it should land in partition 1.
	rows := []relstore.Row{prow("NEW1", "NEW2", 1, 2, 3)}
	v5, err := c.Commit([]vgraph.VersionID{4}, rows, proteinSchema(), "post-partition commit", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PartitionOf(v5); got != m.PartitionOf(4) {
		t.Errorf("v5 in partition %d, want parent's partition %d", got, m.PartitionOf(4))
	}
	tab, err := c.Checkout([]vgraph.VersionID{v5}, "v5co")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("checkout(v5) = %d rows, want 1", tab.Len())
	}
	c.DiscardCheckout("v5co")
}

func TestOnlineAssignNewPartition(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, _ := c.Rlist()
	if _, err := m.OnlineAssign(1, 0, false, nil, nil); err == nil {
		t.Error("OnlineAssign on unpartitioned model should fail")
	}
	p := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 0, 4: 0})
	if err := m.ApplyPartitioning(p); err != nil {
		t.Fatal(err)
	}
	// Move v4 into a brand new partition.
	rids := c.RecordsOf(4)
	k, err := m.OnlineAssign(4, -1, true, rids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("new partition index = %d, want 1", k)
	}
	if m.PartitionOf(4) != 1 {
		t.Errorf("v4 partition = %d, want 1", m.PartitionOf(4))
	}
	sizes := m.PartitionSizes()
	if len(sizes) != 2 || sizes[1] != 6 {
		t.Errorf("partition sizes = %v, want second partition with 6 records", sizes)
	}
	if _, err := m.OnlineAssign(4, 99, false, rids, nil); err == nil {
		t.Error("out-of-range partition index should fail")
	}
}

func TestMigrate(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, _ := c.Rlist()
	// Start from {v1,v2 | v3,v4}.
	p1 := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	if err := m.ApplyPartitioning(p1); err != nil {
		t.Fatal(err)
	}
	// Migrate to {v1 | v2, v3, v4}, reusing old partition 1 for the new big
	// partition and rebuilding the singleton.
	p2 := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 1, 3: 1, 4: 1})
	plan := []MigrationOp{
		{NewPartition: 0, FromPartition: -1, Versions: []vgraph.VersionID{1}},
		{NewPartition: 1, FromPartition: 1, Versions: []vgraph.VersionID{2, 3, 4}},
	}
	res, err := m.Migrate(p2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsBuilt != 1 {
		t.Errorf("PartitionsBuilt = %d, want 1", res.PartitionsBuilt)
	}
	if res.RecordsInserted == 0 {
		t.Error("expected some inserted records")
	}
	// All versions still check out correctly.
	wantSizes := map[vgraph.VersionID]int{1: 3, 2: 3, 3: 4, 4: 6}
	for v, n := range wantSizes {
		tab, err := c.Checkout([]vgraph.VersionID{v}, "mig")
		if err != nil {
			t.Fatalf("checkout v%d after migration: %v", v, err)
		}
		if tab.Len() != n {
			t.Errorf("checkout(v%d) = %d rows, want %d", v, tab.Len(), n)
		}
		c.DiscardCheckout("mig")
	}
	// New assignment is in effect.
	if m.PartitionOf(2) != m.PartitionOf(4) {
		t.Error("v2 and v4 should share a partition after migration")
	}
	if m.PartitionOf(1) == m.PartitionOf(2) {
		t.Error("v1 should be alone after migration")
	}
}

func TestMigrateFromUnpartitionedFallsBackToRebuild(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, _ := c.Rlist()
	p := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0, 3: 1, 4: 1})
	res, err := m.Migrate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsBuilt != 2 {
		t.Errorf("PartitionsBuilt = %d, want 2", res.PartitionsBuilt)
	}
	if !m.Partitioned() {
		t.Error("model should be partitioned after migration")
	}
}

func TestRlistAccessorOnOtherModelFails(t *testing.T) {
	_, c := buildProteinCVD(t, CombinedTable)
	if _, err := c.Rlist(); err == nil {
		t.Error("Rlist() on a combined-table CVD should fail")
	}
}

func TestSetJoinMethodCheckoutStillCorrect(t *testing.T) {
	for _, j := range []relstore.JoinMethod{relstore.HashJoin, relstore.MergeJoin, relstore.IndexNestedLoopJoin} {
		_, c := buildProteinCVD(t, SplitByRlist)
		m, _ := c.Rlist()
		m.SetJoinMethod(j)
		tab, err := c.Checkout([]vgraph.VersionID{4}, "jm")
		if err != nil {
			t.Fatalf("%v: %v", j, err)
		}
		if tab.Len() != 6 {
			t.Errorf("%v: checkout(v4) = %d rows, want 6", j, tab.Len())
		}
		c.DiscardCheckout("jm")
	}
}
