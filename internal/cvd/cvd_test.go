package cvd

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// proteinSchema is the protein-protein interaction schema of Figure 3.2 with
// a composite primary key <protein1, protein2>.
func proteinSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "protein2", Type: relstore.TypeString},
		{Name: "neighborhood", Type: relstore.TypeInt},
		{Name: "cooccurrence", Type: relstore.TypeInt},
		{Name: "coexpression", Type: relstore.TypeInt},
	}, "protein1", "protein2")
}

func prow(p1, p2 string, n, co, cx int64) relstore.Row {
	return relstore.Row{relstore.Str(p1), relstore.Str(p2), relstore.Int(n), relstore.Int(co), relstore.Int(cx)}
}

func fixedClock() func() time.Time {
	t := time.Date(2026, 6, 15, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// buildProteinCVD reproduces the four versions of Figure 3.2 on the given
// data model and returns the CVD with versions 1..4.
func buildProteinCVD(t testing.TB, kind ModelKind) (*relstore.Database, *CVD) {
	t.Helper()
	db := relstore.NewDatabase("orpheus")
	// v1 = {r1, r2, r3}
	v1rows := []relstore.Row{
		prow("ENSP273047", "ENSP261890", 0, 53, 0),    // r1
		prow("ENSP273047", "ENSP235932", 0, 87, 0),    // r2
		prow("ENSP300413", "ENSP274242", 426, 0, 164), // r3
	}
	c, err := Init(db, "interaction", proteinSchema(), v1rows, Options{Model: kind, Author: "alice", Message: "initial import", Clock: fixedClock()})
	if err != nil {
		t.Fatalf("Init(%v): %v", kind, err)
	}
	// v2 = {r2, r3, r4} derived from v1
	v2rows := []relstore.Row{
		prow("ENSP273047", "ENSP235932", 0, 87, 0),    // r2
		prow("ENSP300413", "ENSP274242", 426, 0, 164), // r3
		prow("ENSP309334", "ENSP346022", 0, 227, 975), // r4
	}
	if _, err := c.Commit([]vgraph.VersionID{1}, v2rows, proteinSchema(), "add ENSP309334 pair", "bob"); err != nil {
		t.Fatalf("commit v2: %v", err)
	}
	// v3 = {r3, r5, r6, r7} derived from v1
	v3rows := []relstore.Row{
		prow("ENSP300413", "ENSP274242", 426, 0, 164), // r3
		prow("ENSP273047", "ENSP261890", 0, 53, 83),   // r5 (updated coexpression)
		prow("ENSP332973", "ENSP300134", 0, 0, 83),    // r6
		prow("ENSP472847", "ENSP365773", 225, 0, 73),  // r7
	}
	if _, err := c.Commit([]vgraph.VersionID{1}, v3rows, proteinSchema(), "clean coexpression", "carol"); err != nil {
		t.Fatalf("commit v3: %v", err)
	}
	// v4 = {r2, r3, r4, r5, r6, r7} merged from v2 and v3
	v4rows := append(append([]relstore.Row{}, v2rows...), v3rows[1:]...)
	if _, err := c.Commit([]vgraph.VersionID{2, 3}, v4rows, proteinSchema(), "merge", "alice"); err != nil {
		t.Fatalf("commit v4: %v", err)
	}
	return db, c
}

var allModels = []ModelKind{SplitByRlist, SplitByVlist, CombinedTable, TablePerVersion, DeltaBased}

func sortedRIDs(rs []vgraph.RecordID) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = int64(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestFigure32AcrossAllModels(t *testing.T) {
	for _, kind := range allModels {
		t.Run(kind.String(), func(t *testing.T) {
			_, c := buildProteinCVD(t, kind)
			if c.NumVersions() != 4 {
				t.Fatalf("|V| = %d, want 4", c.NumVersions())
			}
			if c.NumRecords() != 7 {
				t.Fatalf("|R| = %d, want 7 distinct records", c.NumRecords())
			}
			// Version membership mirrors Figure 3.2(c.ii).
			wantSizes := map[vgraph.VersionID]int{1: 3, 2: 3, 3: 4, 4: 6}
			for v, n := range wantSizes {
				if got := len(c.RecordsOf(v)); got != n {
					t.Errorf("%v: |R(v%d)| = %d, want %d", kind, v, got, n)
				}
			}
			// The merge version v4 has two parents.
			if got := c.Parents(4); len(got) != 2 {
				t.Errorf("parents(v4) = %v, want 2 parents", got)
			}
			// Every version checks out with exactly its records.
			for v, n := range wantSizes {
				tab, err := c.Checkout([]vgraph.VersionID{v}, "co_"+kind.String()+string(rune('0'+v)))
				if err != nil {
					t.Fatalf("checkout v%d: %v", v, err)
				}
				if tab.Len() != n {
					t.Errorf("%v: checkout(v%d) has %d rows, want %d", kind, v, tab.Len(), n)
				}
				c.DiscardCheckout(tab.Name)
			}
		})
	}
}

func TestCheckoutContentsAgreeAcrossModels(t *testing.T) {
	// All five models must return identical version contents.
	type versionKey map[int64]string // rid -> rendered row
	contents := make(map[ModelKind]map[vgraph.VersionID]versionKey)
	for _, kind := range allModels {
		_, c := buildProteinCVD(t, kind)
		perVersion := make(map[vgraph.VersionID]versionKey)
		for _, v := range c.Versions() {
			tab, err := c.Checkout([]vgraph.VersionID{v}, "x")
			if err != nil {
				t.Fatalf("%v checkout v%d: %v", kind, v, err)
			}
			vk := versionKey{}
			for _, r := range tab.Rows() {
				var parts []string
				for _, cell := range r[1:] {
					parts = append(parts, cell.AsString())
				}
				vk[r[0].AsInt()] = strings.Join(parts, "|")
			}
			perVersion[v] = vk
			c.DiscardCheckout("x")
		}
		contents[kind] = perVersion
	}
	ref := contents[SplitByRlist]
	for _, kind := range allModels[1:] {
		for v, vk := range contents[kind] {
			if len(vk) != len(ref[v]) {
				t.Errorf("%v: version %d has %d records, split-by-rlist has %d", kind, v, len(vk), len(ref[v]))
				continue
			}
			for rid, row := range vk {
				if ref[v][rid] != row {
					t.Errorf("%v: version %d rid %d content %q != %q", kind, v, rid, row, ref[v][rid])
				}
			}
		}
	}
}

func TestStorageOrderingAcrossModels(t *testing.T) {
	// Figure 4.1(a): a-table-per-version uses far more storage than the
	// deduplicated models; combined/vlist/rlist are comparable.
	storage := map[ModelKind]int64{}
	for _, kind := range allModels {
		_, c := buildProteinCVD(t, kind)
		storage[kind] = c.StorageBytes()
	}
	if storage[TablePerVersion] <= storage[SplitByRlist] {
		t.Errorf("a-table-per-version (%d) should use more storage than split-by-rlist (%d)", storage[TablePerVersion], storage[SplitByRlist])
	}
	if storage[SplitByRlist] <= 0 || storage[SplitByVlist] <= 0 || storage[CombinedTable] <= 0 || storage[DeltaBased] <= 0 {
		t.Errorf("storage must be positive: %v", storage)
	}
}

func TestCheckoutCommitRoundTrip(t *testing.T) {
	for _, kind := range allModels {
		t.Run(kind.String(), func(t *testing.T) {
			_, c := buildProteinCVD(t, kind)
			tab, err := c.Checkout([]vgraph.VersionID{3}, "work")
			if err != nil {
				t.Fatal(err)
			}
			// Modify: bump coexpression of one record and add a new pair.
			coIdx := tab.Schema.ColumnIndex("coexpression")
			if _, err := tab.UpdateWhere(
				func(r relstore.Row) bool { return r[1].AsString() == "ENSP472847" },
				func(r relstore.Row) relstore.Row { r[coIdx] = relstore.Int(500); return r },
			); err != nil {
				t.Fatal(err)
			}
			tab.MustInsert(relstore.Row{relstore.Int(0), relstore.Str("ENSP999999"), relstore.Str("ENSP888888"), relstore.Int(1), relstore.Int(2), relstore.Int(3)})
			v5, err := c.CommitTable("work", "local analysis", "dave")
			if err != nil {
				t.Fatal(err)
			}
			if v5 != 5 {
				t.Errorf("new version id = %d, want 5", v5)
			}
			// v5 keeps 3 unchanged records of v3, replaces 1, adds 1 -> 5 records.
			if got := len(c.RecordsOf(v5)); got != 5 {
				t.Errorf("|R(v5)| = %d, want 5", got)
			}
			// Record immutability: the modified record got a fresh rid, so the
			// total distinct records grew by 2 (modified + new).
			if got := c.NumRecords(); got != 9 {
				t.Errorf("|R| = %d, want 9", got)
			}
			// Parent edge weight = 3 shared records.
			if e := c.Graph().Edge(3, v5); e == nil || e.Weight != 3 {
				t.Errorf("edge (3,5) = %+v, want weight 3", e)
			}
			// The staging table is gone after commit.
			if _, ok := c.CheckoutParents("work"); ok {
				t.Error("checkout registration should be cleared after commit")
			}
		})
	}
}

func TestCommitIdenticalVersionSharesAllRecords(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	before := c.NumRecords()
	tab, err := c.Checkout([]vgraph.VersionID{4}, "same")
	if err != nil {
		t.Fatal(err)
	}
	_ = tab
	v5, err := c.CommitTable("same", "no changes", "eve")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRecords() != before {
		t.Errorf("identical commit should add no records: %d -> %d", before, c.NumRecords())
	}
	if len(c.RecordsOf(v5)) != len(c.RecordsOf(4)) {
		t.Error("identical commit should have the same record set as its parent")
	}
}

func TestNoCrossVersionDiffRule(t *testing.T) {
	// A record deleted and later re-added gets a new rid (Section 3.3.1).
	db := relstore.NewDatabase("db")
	schema := relstore.MustSchema([]relstore.Column{{Name: "k", Type: relstore.TypeString}, {Name: "v", Type: relstore.TypeInt}}, "k")
	c, err := Init(db, "t", schema, []relstore.Row{
		{relstore.Str("a"), relstore.Int(1)},
		{relstore.Str("b"), relstore.Int(2)},
	}, Options{Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	// v2 deletes "b".
	v2, err := c.Commit([]vgraph.VersionID{1}, []relstore.Row{{relstore.Str("a"), relstore.Int(1)}}, schema, "del b", "")
	if err != nil {
		t.Fatal(err)
	}
	// v3 re-adds "b" with identical content.
	_, err = c.Commit([]vgraph.VersionID{v2}, []relstore.Row{
		{relstore.Str("a"), relstore.Int(1)},
		{relstore.Str("b"), relstore.Int(2)},
	}, schema, "re-add b", "")
	if err != nil {
		t.Fatal(err)
	}
	// "b" now exists under two different rids: 4 records total, not 3.
	if got := c.NumRecords(); got != 3 {
		// r1=a, r2=b(old), r3=b(new) -> 3 records
		t.Errorf("|R| = %d, want 3 (old and new b are distinct records)", got)
	}
}

func TestMultiVersionCheckoutPrimaryKeyPrecedence(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	// v1 has <ENSP273047, ENSP261890> with coexpression 0; v3 has the same
	// key with coexpression 83. Listing v1 first must keep v1's record.
	tab, err := c.Checkout([]vgraph.VersionID{1, 3}, "merged")
	if err != nil {
		t.Fatal(err)
	}
	defer c.DiscardCheckout("merged")
	// v1 contributes 3 records; v3 contributes its records minus the two
	// whose primary keys already appeared (r3 shared, r5 same PK as r1).
	if tab.Len() != 5 {
		t.Fatalf("merged checkout has %d rows, want 5", tab.Len())
	}
	coIdx := tab.Schema.ColumnIndex("coexpression")
	for _, r := range tab.Rows() {
		if r[1].AsString() == "ENSP273047" && r[2].AsString() == "ENSP261890" {
			if r[coIdx].AsInt() != 0 {
				t.Errorf("precedence violated: coexpression = %d, want 0 (v1's record)", r[coIdx].AsInt())
			}
		}
	}
	// Reversed precedence keeps v3's record.
	tab2, err := c.Checkout([]vgraph.VersionID{3, 1}, "merged2")
	if err != nil {
		t.Fatal(err)
	}
	defer c.DiscardCheckout("merged2")
	for _, r := range tab2.Rows() {
		if r[1].AsString() == "ENSP273047" && r[2].AsString() == "ENSP261890" {
			if r[coIdx].AsInt() != 83 {
				t.Errorf("precedence violated: coexpression = %d, want 83 (v3's record)", r[coIdx].AsInt())
			}
		}
	}
}

func TestDiff(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	d, err := c.Diff(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// v2 = {r2,r3,r4}, v3 = {r3,r5,r6,r7}: only-in-A = {r2,r4}, only-in-B = {r5,r6,r7}.
	if len(d.OnlyInA) != 2 || len(d.OnlyInB) != 3 {
		t.Errorf("diff sizes = %d, %d, want 2, 3", len(d.OnlyInA), len(d.OnlyInB))
	}
	if _, err := c.Diff(1, 99); err == nil {
		t.Error("diff with unknown version should error")
	}
}

func TestVersionMetadata(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	m, ok := c.Meta(3)
	if !ok {
		t.Fatal("metadata for v3 missing")
	}
	if m.Author != "carol" || m.Message != "clean coexpression" {
		t.Errorf("metadata = %+v", m)
	}
	if m.NumRecords != 4 {
		t.Errorf("NumRecords = %d, want 4", m.NumRecords)
	}
	if len(c.AllMeta()) != 4 {
		t.Errorf("AllMeta returned %d entries, want 4", len(c.AllMeta()))
	}
	latest, ok := c.LatestVersion()
	if !ok || latest != 4 {
		t.Errorf("LatestVersion = %d, want 4", latest)
	}
	// Metadata is mirrored into a queryable relation.
	db, _ := buildProteinCVD(t, SplitByRlist)
	metaTab, ok := db.Table("interaction_metadata")
	if !ok || metaTab.Len() != 4 {
		t.Error("metadata table missing or wrong size")
	}
}

func TestCheckoutErrors(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	if _, err := c.Checkout(nil, "x"); err == nil {
		t.Error("checkout with no versions should fail")
	}
	if _, err := c.Checkout([]vgraph.VersionID{1}, ""); err == nil {
		t.Error("checkout with empty table name should fail")
	}
	if _, err := c.Checkout([]vgraph.VersionID{42}, "x"); err == nil {
		t.Error("checkout of unknown version should fail")
	}
	if _, err := c.Checkout([]vgraph.VersionID{1}, "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkout([]vgraph.VersionID{2}, "dup"); err == nil {
		t.Error("checkout into existing table should fail")
	}
}

func TestCommitErrors(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	schema := proteinSchema()
	if _, err := c.Commit(nil, nil, schema, "", ""); err == nil {
		t.Error("commit without parents should fail")
	}
	if _, err := c.Commit([]vgraph.VersionID{42}, nil, schema, "", ""); err == nil {
		t.Error("commit with unknown parent should fail")
	}
	if _, err := c.CommitTable("neverCheckedOut", "", ""); err == nil {
		t.Error("committing a non-checkout table should fail")
	}
	// Primary key violation within a version.
	dup := []relstore.Row{
		prow("A", "B", 1, 2, 3),
		prow("A", "B", 9, 9, 9),
	}
	if _, err := c.Commit([]vgraph.VersionID{1}, dup, schema, "", ""); err == nil {
		t.Error("duplicate primary key within a version should fail")
	}
}

func TestInitErrors(t *testing.T) {
	db := relstore.NewDatabase("db")
	if _, err := Init(db, "", proteinSchema(), nil, Options{}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := Init(db, "x", relstore.Schema{}, nil, Options{}); err == nil {
		t.Error("empty schema should fail")
	}
	bad := relstore.MustSchema([]relstore.Column{{Name: "rid", Type: relstore.TypeInt}})
	if _, err := Init(db, "x", bad, nil, Options{}); err == nil {
		t.Error("schema using reserved rid column should fail")
	}
	if _, err := Init(db, "x", proteinSchema(), nil, Options{Model: ModelKind(99)}); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestCSVCheckoutAndCommit(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	var buf bytes.Buffer
	if err := c.CheckoutToCSV([]vgraph.VersionID{2}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 records
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "protein1,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	// Commit a CSV with an extra record back as a new version.
	csvIn := buf.String() + "ENSP111111,ENSP222222,1,1,1\n"
	v, err := c.CommitCSV([]vgraph.VersionID{2}, strings.NewReader(csvIn), proteinSchema(), "csv commit", "frank")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.RecordsOf(v)); got != 4 {
		t.Errorf("CSV-committed version has %d records, want 4", got)
	}
}

func TestDropRemovesTables(t *testing.T) {
	db, c := buildProteinCVD(t, SplitByRlist)
	before := len(db.TableNames())
	if before == 0 {
		t.Fatal("expected backing tables")
	}
	c.Drop()
	for _, name := range db.TableNames() {
		if strings.HasPrefix(name, "interaction") {
			t.Errorf("table %q survived Drop", name)
		}
	}
}

func TestRecordContentAndRIDs(t *testing.T) {
	_, c := buildProteinCVD(t, SplitByRlist)
	rids := c.RecordsOf(1)
	if len(rids) != 3 {
		t.Fatalf("RecordsOf(1) = %v", rids)
	}
	row, ok := c.RecordContent(rids[0])
	if !ok || len(row) != 5 {
		t.Errorf("RecordContent = %v, %v", row, ok)
	}
	if _, ok := c.RecordContent(9999); ok {
		t.Error("unknown record should not resolve")
	}
	_ = sortedRIDs(rids)
}
