package cvd

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// tpvModel is the a-table-per-version data model (Approach 4.5): every
// version is stored as its own table containing all of its records. Checkout
// is as cheap as copying one table, but storage grows with the total number
// of (version, record) pairs rather than with the number of distinct records
// (Figure 4.1a).
type tpvModel struct {
	db       *relstore.Database
	name     string
	schema   relstore.Schema
	versions map[vgraph.VersionID]string
}

func newTPVModel(db *relstore.Database, name string, schema relstore.Schema) *tpvModel {
	return &tpvModel{db: db, name: name, schema: schema.Clone(), versions: make(map[vgraph.VersionID]string)}
}

func (m *tpvModel) Kind() ModelKind { return TablePerVersion }

func (m *tpvModel) tabName(v vgraph.VersionID) string { return fmt.Sprintf("%s_v%d", m.name, v) }

func (m *tpvModel) Init(req CommitRequest) error { return m.AppendVersion(req) }

func (m *tpvModel) AppendVersion(req CommitRequest) error {
	name := m.tabName(req.Version)
	t, err := m.db.CreateTable(name, dataSchemaWithRID(m.schema))
	if err != nil {
		return err
	}
	newByRID := make(map[vgraph.RecordID]CommitRecord, len(req.NewRecords))
	for _, rec := range req.NewRecords {
		newByRID[rec.RID] = rec
	}
	// Records inherited from parents are looked up in the parents' tables;
	// genuinely new records come from the commit request.
	var parentTables []*relstore.Table
	for _, p := range req.Parents {
		if pt, ok := m.db.Table(m.tabName(p)); ok {
			parentTables = append(parentTables, pt)
		}
	}
	for _, rid := range req.RIDs {
		if rec, ok := newByRID[rid]; ok {
			if err := t.Insert(rowWithRID(rec.RID, padRow(rec.Row.Clone(), len(m.schema.Columns)))); err != nil {
				return err
			}
			continue
		}
		inserted := false
		for _, pt := range parentTables {
			if row, ok := pt.LookupIndex(relstore.Int(int64(rid))); ok {
				if err := t.Insert(padRow(row.Clone(), len(t.Schema.Columns))); err != nil {
					return err
				}
				inserted = true
				break
			}
		}
		if !inserted {
			return fmt.Errorf("cvd: %s: record %d of version %d not found in any parent", m.name, rid, req.Version)
		}
	}
	m.versions[req.Version] = name
	return nil
}

func (m *tpvModel) Checkout(v vgraph.VersionID, tableName string) (*relstore.Table, error) {
	name, ok := m.versions[v]
	if !ok {
		return nil, fmt.Errorf("cvd: %s: version %d not found", m.name, v)
	}
	src := m.db.MustTable(name)
	out := relstore.NewTable(tableName, src.Schema.Clone())
	out.SetStats(src.Stats())
	src.Scan(func(_ int, r relstore.Row) bool {
		out.AppendRow(r.Clone())
		return true
	})
	_ = out.BuildIndexOn(ridColumn)
	return out, nil
}

func (m *tpvModel) StorageBytes() int64 {
	var n int64
	for _, name := range m.versions {
		n += m.db.MustTable(name).StorageBytes()
	}
	return n
}

func (m *tpvModel) AlterSchema(newSchema relstore.Schema) error {
	// Only tables for new versions carry the evolved schema; existing
	// version tables are immutable snapshots and keep their schema. This is
	// the multi-pool flavour of evolution, which is natural for
	// a-table-per-version.
	m.schema = newSchema.Clone()
	return nil
}

func (m *tpvModel) Drop() {
	for _, name := range m.versions {
		m.db.DropTable(name)
	}
	m.versions = make(map[vgraph.VersionID]string)
}
