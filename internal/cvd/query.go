package cvd

import (
	"fmt"
	"sort"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file implements the versioned query shortcuts OrpheusDB exposes on
// top of SQL (Section 3.3.2): querying records of specific versions with
// predicates and limits, aggregation grouped by version, the version-graph
// functional primitives ancestor/descendant/parent, and the v_diff /
// v_intersect aggregation functions.

// Predicate filters data rows; a nil predicate accepts every row.
type Predicate func(relstore.Row) bool

// NamedPredicate builds a predicate comparing a named column against a value
// with the given comparison operator ("=", "!=", "<", "<=", ">", ">=").
func (c *CVD) NamedPredicate(column, op string, value relstore.Value) (Predicate, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(r relstore.Row) bool {
		if idx >= len(r) {
			return false
		}
		cmp := r[idx].Compare(value)
		switch op {
		case "=", "==":
			return cmp == 0
		case "!=", "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		default:
			return false
		}
	}, nil
}

// VersionedRow pairs a record with the version it was selected from.
type VersionedRow struct {
	Version vgraph.VersionID
	RID     vgraph.RecordID
	Row     relstore.Row
}

// ScanVersions evaluates `SELECT * FROM VERSION v1, v2, ... OF CVD c WHERE
// pred LIMIT limit`: it returns the (version, record) pairs of the listed
// versions whose data satisfies pred. limit <= 0 means no limit.
func (c *CVD) ScanVersions(versions []vgraph.VersionID, pred Predicate, limit int) ([]VersionedRow, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []VersionedRow
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		for _, rid := range c.bip.Records(v) {
			row, ok := c.recordContentLocked(rid)
			if !ok {
				continue
			}
			if pred != nil && !pred(row) {
				continue
			}
			out = append(out, VersionedRow{Version: v, RID: rid, Row: row})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// Aggregator folds rows into a single value.
type Aggregator func(rows []relstore.Row) relstore.Value

// CountAgg counts rows.
func CountAgg() Aggregator {
	return func(rows []relstore.Row) relstore.Value { return relstore.Int(int64(len(rows))) }
}

// SumAgg sums a named column (resolved against the CVD schema at call time).
func (c *CVD) SumAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		var sum float64
		for _, r := range rows {
			if idx < len(r) {
				sum += r[idx].AsFloat()
			}
		}
		return relstore.Float(sum)
	}, nil
}

// AvgAgg averages a named column.
func (c *CVD) AvgAgg(column string) (Aggregator, error) {
	sum, err := c.SumAgg(column)
	if err != nil {
		return nil, err
	}
	return func(rows []relstore.Row) relstore.Value {
		if len(rows) == 0 {
			return relstore.Null()
		}
		return relstore.Float(sum(rows).AsFloat() / float64(len(rows)))
	}, nil
}

// MaxAgg returns the maximum of a named column.
func (c *CVD) MaxAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		best := relstore.Null()
		for _, r := range rows {
			if idx < len(r) && (best.IsNull() || r[idx].Compare(best) > 0) {
				best = r[idx]
			}
		}
		return best
	}, nil
}

// AggregateByVersion evaluates `SELECT vid, agg(...) FROM CVD c [WHERE pred]
// GROUP BY vid` over the given versions (all versions when versions is nil).
func (c *CVD) AggregateByVersion(versions []vgraph.VersionID, pred Predicate, agg Aggregator) (map[vgraph.VersionID]relstore.Value, error) {
	if agg == nil {
		return nil, fmt.Errorf("cvd: %s: nil aggregator", c.name)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if versions == nil {
		versions = c.graph.Versions()
	}
	out := make(map[vgraph.VersionID]relstore.Value, len(versions))
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		var rows []relstore.Row
		for _, rid := range c.bip.Records(v) {
			row, ok := c.recordContentLocked(rid)
			if !ok {
				continue
			}
			if pred != nil && !pred(row) {
				continue
			}
			rows = append(rows, row)
		}
		out[v] = agg(rows)
	}
	return out, nil
}

// VersionsWhere returns the versions whose per-version aggregate satisfies
// test (e.g. "versions where count of tuples with protein1 = X exceeds 50").
func (c *CVD) VersionsWhere(pred Predicate, agg Aggregator, test func(relstore.Value) bool) ([]vgraph.VersionID, error) {
	byVersion, err := c.AggregateByVersion(nil, pred, agg)
	if err != nil {
		return nil, err
	}
	var out []vgraph.VersionID
	for v, val := range byVersion {
		if test(val) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Ancestors returns all ancestors of v (the ancestor(vid) primitive).
func (c *CVD) Ancestors(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Ancestors(v, 0)
}

// Descendants returns all descendants of v (the descendant(vid) primitive).
func (c *CVD) Descendants(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Descendants(v, 0)
}

// Parents returns the direct parents of v (the parent(vid) primitive).
func (c *CVD) Parents(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Parents(v)
}

// VDiff implements v_diff(A, B): the record ids present in any version of A
// but in no version of B.
func (c *CVD) VDiff(a, b []vgraph.VersionID) []vgraph.RecordID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	inB := make(map[vgraph.RecordID]struct{})
	for _, v := range b {
		for _, r := range c.bip.Records(v) {
			inB[r] = struct{}{}
		}
	}
	seen := make(map[vgraph.RecordID]struct{})
	var out []vgraph.RecordID
	for _, v := range a {
		for _, r := range c.bip.Records(v) {
			if _, dup := seen[r]; dup {
				continue
			}
			seen[r] = struct{}{}
			if _, ok := inB[r]; !ok {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VIntersect implements v_intersect(A): the record ids present in every
// listed version.
func (c *CVD) VIntersect(versions []vgraph.VersionID) []vgraph.RecordID {
	if len(versions) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	counts := make(map[vgraph.RecordID]int)
	for _, v := range versions {
		for _, r := range c.bip.Records(v) {
			counts[r]++
		}
	}
	var out []vgraph.RecordID
	for r, n := range counts {
		if n == len(versions) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
