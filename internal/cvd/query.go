package cvd

import (
	"fmt"
	"sort"

	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file implements the versioned query shortcuts OrpheusDB exposes on
// top of SQL (Section 3.3.2): querying records of specific versions with
// predicates and limits, aggregation grouped by version, the version-graph
// functional primitives ancestor/descendant/parent, and the v_diff /
// v_intersect aggregation functions.

// Predicate filters data rows; a nil predicate accepts every row.
type Predicate func(relstore.Row) bool

// NamedPredicate builds a predicate comparing a named column against a value
// with the given comparison operator ("=", "!=", "<", "<=", ">", ">=").
func (c *CVD) NamedPredicate(column, op string, value relstore.Value) (Predicate, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(r relstore.Row) bool {
		if idx >= len(r) {
			return false
		}
		cmp := r[idx].Compare(value)
		switch op {
		case "=", "==":
			return cmp == 0
		case "!=", "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		default:
			return false
		}
	}, nil
}

// VersionedRow pairs a record with the version it was selected from.
type VersionedRow struct {
	Version vgraph.VersionID
	RID     vgraph.RecordID
	Row     relstore.Row
}

// ScanVersions evaluates `SELECT * FROM VERSION v1, v2, ... OF CVD c WHERE
// pred LIMIT limit`: it returns the (version, record) pairs of the listed
// versions whose data satisfies pred. limit <= 0 means no limit.
func (c *CVD) ScanVersions(versions []vgraph.VersionID, pred Predicate, limit int) ([]VersionedRow, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []VersionedRow
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		done := false
		c.bip.RecordSet(v).ForEach(func(x int64) bool {
			rid := vgraph.RecordID(x)
			row, ok := c.recordContentLocked(rid)
			if !ok {
				return true
			}
			if pred != nil && !pred(row) {
				return true
			}
			out = append(out, VersionedRow{Version: v, RID: rid, Row: row})
			if limit > 0 && len(out) >= limit {
				done = true
				return false
			}
			return true
		})
		if done {
			return out, nil
		}
	}
	return out, nil
}

// Aggregator folds rows into a single value.
type Aggregator func(rows []relstore.Row) relstore.Value

// CountAgg counts rows.
func CountAgg() Aggregator {
	return func(rows []relstore.Row) relstore.Value { return relstore.Int(int64(len(rows))) }
}

// SumAgg sums a named column (resolved against the CVD schema at call time).
func (c *CVD) SumAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		var sum float64
		for _, r := range rows {
			if idx < len(r) {
				sum += r[idx].AsFloat()
			}
		}
		return relstore.Float(sum)
	}, nil
}

// AvgAgg averages a named column.
func (c *CVD) AvgAgg(column string) (Aggregator, error) {
	sum, err := c.SumAgg(column)
	if err != nil {
		return nil, err
	}
	return func(rows []relstore.Row) relstore.Value {
		if len(rows) == 0 {
			return relstore.Null()
		}
		return relstore.Float(sum(rows).AsFloat() / float64(len(rows)))
	}, nil
}

// MaxAgg returns the maximum of a named column.
func (c *CVD) MaxAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		best := relstore.Null()
		for _, r := range rows {
			if idx < len(r) && (best.IsNull() || r[idx].Compare(best) > 0) {
				best = r[idx]
			}
		}
		return best
	}, nil
}

// AggregateByVersion evaluates `SELECT vid, agg(...) FROM CVD c [WHERE pred]
// GROUP BY vid` over the given versions (all versions when versions is nil).
func (c *CVD) AggregateByVersion(versions []vgraph.VersionID, pred Predicate, agg Aggregator) (map[vgraph.VersionID]relstore.Value, error) {
	if agg == nil {
		return nil, fmt.Errorf("cvd: %s: nil aggregator", c.name)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if versions == nil {
		versions = c.graph.Versions()
	}
	out := make(map[vgraph.VersionID]relstore.Value, len(versions))
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		var rows []relstore.Row
		c.bip.RecordSet(v).ForEach(func(x int64) bool {
			row, ok := c.recordContentLocked(vgraph.RecordID(x))
			if ok && (pred == nil || pred(row)) {
				rows = append(rows, row)
			}
			return true
		})
		out[v] = agg(rows)
	}
	return out, nil
}

// VersionsWhere returns the versions whose per-version aggregate satisfies
// test (e.g. "versions where count of tuples with protein1 = X exceeds 50").
func (c *CVD) VersionsWhere(pred Predicate, agg Aggregator, test func(relstore.Value) bool) ([]vgraph.VersionID, error) {
	byVersion, err := c.AggregateByVersion(nil, pred, agg)
	if err != nil {
		return nil, err
	}
	var out []vgraph.VersionID
	for v, val := range byVersion {
		if test(val) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Ancestors returns all ancestors of v (the ancestor(vid) primitive).
func (c *CVD) Ancestors(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Ancestors(v, 0)
}

// Descendants returns all descendants of v (the descendant(vid) primitive).
func (c *CVD) Descendants(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Descendants(v, 0)
}

// Parents returns the direct parents of v (the parent(vid) primitive).
func (c *CVD) Parents(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Parents(v)
}

// VDiff implements v_diff(A, B): the record ids present in any version of A
// but in no version of B, as a compressed-set difference of the two unions.
func (c *CVD) VDiff(a, b []vgraph.VersionID) []vgraph.RecordID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return vgraph.RecordIDs(recset.AndNot(c.bip.UnionSet(a), c.bip.UnionSet(b)))
}

// VIntersect implements v_intersect(A): the record ids present in every
// listed version, as a running compressed-set intersection.
func (c *CVD) VIntersect(versions []vgraph.VersionID) []vgraph.RecordID {
	if len(versions) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	inter := c.bip.RecordSet(versions[0])
	for _, v := range versions[1:] {
		if inter.IsEmpty() {
			break
		}
		inter = recset.And(inter, c.bip.RecordSet(v))
	}
	return vgraph.RecordIDs(inter)
}
