package cvd

import (
	"fmt"
	"sort"

	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file implements the versioned query shortcuts OrpheusDB exposes on
// top of SQL (Section 3.3.2): querying records of specific versions with
// predicates and limits, aggregation grouped by version, the version-graph
// functional primitives ancestor/descendant/parent, and the v_diff /
// v_intersect aggregation functions.

// Predicate filters data rows; a nil predicate accepts every row. Opaque
// predicates (arbitrary Go functions, see RowPredicate) are evaluated row at
// a time; predicates built by NamedPredicate carry their column comparison
// in structured form, so the versioned query shortcuts push them down to the
// vectorized relstore scan (Table.FilterVec) instead of materializing and
// testing every row.
type Predicate interface {
	// Match reports whether the row satisfies the predicate.
	Match(relstore.Row) bool
}

// RowPredicate wraps an arbitrary row function as an (opaque) Predicate.
type RowPredicate func(relstore.Row) bool

// Match implements Predicate.
func (f RowPredicate) Match(r relstore.Row) bool { return f(r) }

// columnPredicate is a single column comparison with the operator resolved
// to a compiled relstore.CmpOp once at construction — the per-row work is a
// three-way compare plus a jump table, and the comparison is available in
// structured form for vectorized pushdown.
type columnPredicate struct {
	column string
	idx    int // column position in the CVD schema at construction time
	op     relstore.CmpOp
	value  relstore.Value
}

// Match implements Predicate (the row-at-a-time fallback).
func (p *columnPredicate) Match(r relstore.Row) bool {
	if p.idx >= len(r) {
		return false
	}
	return p.op.Eval(r[p.idx].Compare(p.value))
}

// multiColumnPredicate is the conjunction of compiled column comparisons;
// its pushdown form is the chained selection refinement of
// relstore.Table.FilterVecAll.
type multiColumnPredicate struct {
	preds []*columnPredicate
}

// Match implements Predicate (the row-at-a-time fallback).
func (p *multiColumnPredicate) Match(r relstore.Row) bool {
	for _, cp := range p.preds {
		if !cp.Match(r) {
			return false
		}
	}
	return true
}

// NamedPredicate builds a predicate comparing a named column against a value
// with the given comparison operator ("=", "!=", "<", "<=", ">", ">=").
// Unknown operators yield a predicate that matches nothing, mirroring the
// historical behavior.
func (c *CVD) NamedPredicate(column, op string, value relstore.Value) (Predicate, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	cmp, ok := relstore.ParseCmpOp(op)
	if !ok {
		return RowPredicate(func(relstore.Row) bool { return false }), nil
	}
	return &columnPredicate{column: column, idx: idx, op: cmp, value: value}, nil
}

// ColumnComparison specifies one comparison of a compiled multi-predicate
// (NamedPredicateAll).
type ColumnComparison struct {
	Column string
	Op     string
	Value  relstore.Value
}

// NamedPredicateAll builds the conjunction of column comparisons, each
// compiled once like NamedPredicate. When pushed down, the comparisons
// evaluate as a chained selection refinement: the first scans its whole
// column vector, each subsequent one touches only the surviving rows.
func (c *CVD) NamedPredicateAll(comparisons []ColumnComparison) (Predicate, error) {
	if len(comparisons) == 0 {
		return nil, fmt.Errorf("cvd: %s: NamedPredicateAll requires at least one comparison", c.name)
	}
	preds := make([]*columnPredicate, 0, len(comparisons))
	for _, cmp := range comparisons {
		p, err := c.NamedPredicate(cmp.Column, cmp.Op, cmp.Value)
		if err != nil {
			return nil, err
		}
		cp, ok := p.(*columnPredicate)
		if !ok {
			// Unknown operator: the whole conjunction matches nothing.
			return RowPredicate(func(relstore.Row) bool { return false }), nil
		}
		preds = append(preds, cp)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &multiColumnPredicate{preds: preds}, nil
}

// pushdownSetLocked evaluates a (multi-)column predicate vectorized over
// the split-by-rlist master data table, returning the compressed set of
// rids whose record content satisfies it. It returns ok=false when the
// predicate is opaque or the CVD's physical model has no shared data table
// to scan (the caller then falls back to row-at-a-time evaluation).
// Callers hold c.mu.
func (c *CVD) pushdownSetLocked(pred Predicate) (*recset.Set, bool) {
	var cps []*columnPredicate
	switch p := pred.(type) {
	case *columnPredicate:
		cps = []*columnPredicate{p}
	case *multiColumnPredicate:
		cps = p.preds
	default:
		return nil, false
	}
	m, ok := c.model.(*rlistModel)
	if !ok {
		return nil, false
	}
	data, ok := c.db.Table(m.dataTab)
	if !ok {
		return nil, false
	}
	preds := make([]relstore.ColPred, 0, len(cps))
	for _, cp := range cps {
		// Resolve the column against the data table (rid first, then the
		// data attributes): the registered position may predate schema
		// evolution.
		di := data.Schema.ColumnIndex(cp.column)
		if di < 0 {
			return nil, false
		}
		preds = append(preds, relstore.ColPred{Col: data.Schema.Columns[di].Name, Op: cp.op, Value: cp.value})
	}
	sel, err := data.FilterVecAll(preds)
	if err != nil {
		return nil, false
	}
	rids, err := data.GatherInts(ridColumn, sel)
	if err != nil {
		return nil, false
	}
	return recset.FromSlice(rids), true
}

// VersionedRow pairs a record with the version it was selected from.
type VersionedRow struct {
	Version vgraph.VersionID
	RID     vgraph.RecordID
	Row     relstore.Row
}

// ScanVersions evaluates `SELECT * FROM VERSION v1, v2, ... OF CVD c WHERE
// pred LIMIT limit`: it returns the (version, record) pairs of the listed
// versions whose data satisfies pred. limit <= 0 means no limit.
func (c *CVD) ScanVersions(versions []vgraph.VersionID, pred Predicate, limit int) ([]VersionedRow, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Vectorized pushdown: a column predicate is evaluated once over the
	// shared data table's column vectors, and each version's scan reduces to
	// a compressed-set intersection — rows are materialized only for the
	// records that both belong to the version and match.
	var match *recset.Set
	if set, ok := c.pushdownSetLocked(pred); ok {
		match = set
		pred = nil
	}
	var out []VersionedRow
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		rset := c.bip.RecordSet(v)
		if match != nil {
			rset = recset.And(rset, match)
		}
		done := false
		rset.ForEach(func(x int64) bool {
			rid := vgraph.RecordID(x)
			row, ok := c.recordContentLocked(rid)
			if !ok {
				return true
			}
			if pred != nil && !pred.Match(row) {
				return true
			}
			out = append(out, VersionedRow{Version: v, RID: rid, Row: row})
			if limit > 0 && len(out) >= limit {
				done = true
				return false
			}
			return true
		})
		if done {
			return out, nil
		}
	}
	return out, nil
}

// Aggregator folds rows into a single value.
type Aggregator func(rows []relstore.Row) relstore.Value

// CountAgg counts rows.
func CountAgg() Aggregator {
	return func(rows []relstore.Row) relstore.Value { return relstore.Int(int64(len(rows))) }
}

// SumAgg sums a named column (resolved against the CVD schema at call time).
func (c *CVD) SumAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		var sum float64
		for _, r := range rows {
			if idx < len(r) {
				sum += r[idx].AsFloat()
			}
		}
		return relstore.Float(sum)
	}, nil
}

// AvgAgg averages a named column.
func (c *CVD) AvgAgg(column string) (Aggregator, error) {
	sum, err := c.SumAgg(column)
	if err != nil {
		return nil, err
	}
	return func(rows []relstore.Row) relstore.Value {
		if len(rows) == 0 {
			return relstore.Null()
		}
		return relstore.Float(sum(rows).AsFloat() / float64(len(rows)))
	}, nil
}

// MaxAgg returns the maximum of a named column.
func (c *CVD) MaxAgg(column string) (Aggregator, error) {
	c.mu.RLock()
	idx := c.schema.ColumnIndex(column)
	c.mu.RUnlock()
	if idx < 0 {
		return nil, fmt.Errorf("cvd: %s: unknown column %q", c.name, column)
	}
	return func(rows []relstore.Row) relstore.Value {
		best := relstore.Null()
		for _, r := range rows {
			if idx < len(r) && (best.IsNull() || r[idx].Compare(best) > 0) {
				best = r[idx]
			}
		}
		return best
	}, nil
}

// AggregateByVersion evaluates `SELECT vid, agg(...) FROM CVD c [WHERE pred]
// GROUP BY vid` over the given versions (all versions when versions is nil).
func (c *CVD) AggregateByVersion(versions []vgraph.VersionID, pred Predicate, agg Aggregator) (map[vgraph.VersionID]relstore.Value, error) {
	if agg == nil {
		return nil, fmt.Errorf("cvd: %s: nil aggregator", c.name)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if versions == nil {
		versions = c.graph.Versions()
	}
	// Same pushdown as ScanVersions: evaluate a column predicate once over
	// the data table's column vectors, then intersect per version.
	var match *recset.Set
	if set, ok := c.pushdownSetLocked(pred); ok {
		match = set
		pred = nil
	}
	out := make(map[vgraph.VersionID]relstore.Value, len(versions))
	for _, v := range versions {
		if c.graph.Node(v) == nil {
			return nil, fmt.Errorf("cvd: %s: unknown version %d", c.name, v)
		}
		rset := c.bip.RecordSet(v)
		if match != nil {
			rset = recset.And(rset, match)
		}
		var rows []relstore.Row
		rset.ForEach(func(x int64) bool {
			row, ok := c.recordContentLocked(vgraph.RecordID(x))
			if ok && (pred == nil || pred.Match(row)) {
				rows = append(rows, row)
			}
			return true
		})
		out[v] = agg(rows)
	}
	return out, nil
}

// VersionsWhere returns the versions whose per-version aggregate satisfies
// test (e.g. "versions where count of tuples with protein1 = X exceeds 50").
func (c *CVD) VersionsWhere(pred Predicate, agg Aggregator, test func(relstore.Value) bool) ([]vgraph.VersionID, error) {
	byVersion, err := c.AggregateByVersion(nil, pred, agg)
	if err != nil {
		return nil, err
	}
	var out []vgraph.VersionID
	for v, val := range byVersion {
		if test(val) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Ancestors returns all ancestors of v (the ancestor(vid) primitive).
func (c *CVD) Ancestors(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Ancestors(v, 0)
}

// Descendants returns all descendants of v (the descendant(vid) primitive).
func (c *CVD) Descendants(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Descendants(v, 0)
}

// Parents returns the direct parents of v (the parent(vid) primitive).
func (c *CVD) Parents(v vgraph.VersionID) []vgraph.VersionID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.graph.Parents(v)
}

// VDiff implements v_diff(A, B): the record ids present in any version of A
// but in no version of B, as a compressed-set difference of the two unions.
func (c *CVD) VDiff(a, b []vgraph.VersionID) []vgraph.RecordID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return vgraph.RecordIDs(recset.AndNot(c.bip.UnionSet(a), c.bip.UnionSet(b)))
}

// VIntersect implements v_intersect(A): the record ids present in every
// listed version, as a running compressed-set intersection.
func (c *CVD) VIntersect(versions []vgraph.VersionID) []vgraph.RecordID {
	if len(versions) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	inter := c.bip.RecordSet(versions[0])
	for _, v := range versions[1:] {
		if inter.IsEmpty() {
			break
		}
		inter = recset.And(inter, c.bip.RecordSet(v))
	}
	return vgraph.RecordIDs(inter)
}
