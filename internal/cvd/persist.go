package cvd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file is the persistence boundary of a CVD: it exposes the complete
// logical state needed to serialize a CVD into a durable snapshot (package
// durable) and rebuilds a live CVD from that state plus the backing tables.
// The binary format lives entirely in package durable; cvd only decides WHAT
// constitutes the persistent state.

// Journal receives the logical redo log of a CVD: every successful commit is
// reported (with its staged rows, row schema — which also carries any schema
// evolution — and commit timestamp) so a write-ahead log can make it durable.
// Implementations are called while the CVD's exclusive lock is held, after
// the commit has been applied in memory; they must not call back into the
// CVD.
type Journal interface {
	LogCommit(cvdName string, parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string, at time.Time) error
}

// SetJournal attaches (or detaches, with nil) the commit journal. The engine
// wires this up when the CVD belongs to a durable data directory; replayed
// commits run before the journal is attached so they are not re-logged.
// Attaching (or detaching) clears any journal poison left by a failed
// append: the caller is asserting that the journal's backing log agrees with
// the in-memory state again (a checkpoint folded the diverged state into the
// snapshot, or the store was reopened).
func (c *CVD) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
	c.journalErr = nil
}

// LockShared acquires the CVD's shared (read) lock without running a
// callback, for callers — the snapshot writer — that must hold several CVDs'
// locks at once. Pair with UnlockShared; prefer WithShared everywhere else.
func (c *CVD) LockShared() { c.mu.RLock() }

// UnlockShared releases the lock taken by LockShared.
func (c *CVD) UnlockShared() { c.mu.RUnlock() }

// LockExclusive acquires the CVD's exclusive lock without running a
// callback, for the checkpoint path that must fence writers on several CVDs
// at once (and swap journals while fenced). Pair with UnlockExclusive;
// prefer WithExclusive everywhere else.
func (c *CVD) LockExclusive() { c.mu.Lock() }

// UnlockExclusive releases the lock taken by LockExclusive.
func (c *CVD) UnlockExclusive() { c.mu.Unlock() }

// SetJournalLocked is SetJournal for callers already holding the exclusive
// lock (LockExclusive); like SetJournal it clears any journal poison.
func (c *CVD) SetJournalLocked(j Journal) {
	c.journal = j
	c.journalErr = nil
}

// JournalErr reports the sticky journal poison: non-nil after a commit was
// applied in memory but its journal append failed, until a checkpoint or
// journal swap clears it.
func (c *CVD) JournalErr() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.journalErr
}

// JournalLocked returns the attached journal and the sticky journal poison
// for a caller already holding the exclusive lock (LockExclusive) — the
// checkpoint fence, which cannot call JournalErr without self-deadlocking on
// the RWMutex.
func (c *CVD) JournalLocked() (Journal, error) {
	return c.journal, c.journalErr
}

// PersistedRecord is one entry of the record catalog (rid → data values).
type PersistedRecord struct {
	RID vgraph.RecordID
	Row relstore.Row
}

// VersionRecordSet pairs a version with its compressed record set, in the
// bipartite graph's insertion order.
type VersionRecordSet struct {
	Version vgraph.VersionID
	Set     *recset.Set
}

// PersistentState is the complete logical state of a CVD minus the backing
// tables themselves (those are serialized separately, straight from their
// columnar lanes; Tables names which ones belong to this CVD). Exported
// pointers (Graph, Metas, record sets, resident sets) are live internal
// state: ExportState must be called under the shared lock (LockShared) and
// the state must be consumed — serialized — before the lock is released.
type PersistentState struct {
	Name    string
	Kind    ModelKind
	Schema  relstore.Schema
	NextVID vgraph.VersionID
	NextRID vgraph.RecordID

	Records    []PersistedRecord  // record catalog sorted by rid
	Graph      *vgraph.Graph      // version graph
	RecordSets []VersionRecordSet // bipartite graph, insertion order
	Metas      []*VersionMeta     // version metadata ordered by id
	Attrs      []Attribute        // attribute registry in registration order

	// Tables lists every backing table of this CVD (data, versioning,
	// metadata, partitions, per-version/delta tables). Checked-out staging
	// tables are deliberately absent: they are transient working state.
	Tables []string

	// Split-by-rlist partitioned storage (all empty when unpartitioned or
	// when another model is in use).
	Partitions  []string
	PartitionOf map[vgraph.VersionID]int
	Resident    []*recset.Set
}

// ExportState assembles the CVD's persistent state. The caller must hold the
// shared lock (LockShared) and keep holding it until serialization finishes;
// the returned structure shares internal pointers rather than copying the
// whole dataset.
func (c *CVD) ExportState() *PersistentState {
	st := &PersistentState{
		Name:    c.name,
		Kind:    c.kind,
		Schema:  c.schema.Clone(),
		NextVID: c.nextVID,
		NextRID: c.nextRID,
		Graph:   c.graph,
		Metas:   c.meta.all(),
		Attrs:   c.attrs.All(),
		Tables:  append(c.modelTableNames(), c.meta.name),
	}
	st.Records = make([]PersistedRecord, 0, len(c.records))
	for rid, row := range c.records {
		st.Records = append(st.Records, PersistedRecord{RID: rid, Row: row})
	}
	sort.Slice(st.Records, func(i, j int) bool { return st.Records[i].RID < st.Records[j].RID })
	for _, v := range c.bip.Versions() {
		st.RecordSets = append(st.RecordSets, VersionRecordSet{Version: v, Set: c.bip.RecordSet(v)})
	}
	if m, ok := c.model.(*rlistModel); ok && m.partitions != nil {
		st.Partitions = append([]string(nil), m.partitions...)
		st.PartitionOf = make(map[vgraph.VersionID]int, len(m.partitionOf))
		for v, k := range m.partitionOf {
			st.PartitionOf[v] = k
		}
		st.Resident = m.resident
	}
	return st
}

// ExportStateCOW assembles the persistent state as a frozen capture that
// stays valid after the CVD's lock is released — the non-blocking checkpoint
// path. The caller must hold the exclusive lock for the call itself. The
// mutable structures (version graph, partition resident sets, version
// metadata) are cloned; structurally immutable data — catalog rows and
// committed record sets, which commits only ever add to, never mutate — is
// shared by pointer, so the capture is O(versions) extra memory, not
// O(dataset).
func (c *CVD) ExportStateCOW() *PersistentState {
	st := c.ExportState()
	st.Graph = c.graph.Clone()
	metas := make([]*VersionMeta, len(st.Metas))
	for i, m := range st.Metas {
		cp := *m
		metas[i] = &cp
	}
	st.Metas = metas
	if len(st.Resident) > 0 {
		res := make([]*recset.Set, len(st.Resident))
		for i, s := range st.Resident {
			if s != nil {
				res[i] = s.Clone()
			}
		}
		st.Resident = res
	}
	return st
}

// modelTableNames lists the backing tables of the physical data model.
func (c *CVD) modelTableNames() []string {
	switch m := c.model.(type) {
	case *rlistModel:
		out := []string{m.dataTab, m.versioningTabName()}
		return append(out, m.partitions...)
	case *vlistModel:
		return []string{m.dataTabName(), m.versioningTabName()}
	case *combinedModel:
		return []string{m.tabName()}
	case *tpvModel:
		out := make([]string, 0, len(m.versions))
		for _, name := range m.versions {
			out = append(out, name)
		}
		sort.Strings(out)
		return out
	case *deltaModel:
		out := make([]string, 0, len(m.bases)+1)
		for v := range m.bases {
			out = append(out, m.deltaTabName(v))
		}
		sort.Strings(out)
		return append(out, m.metaTabName())
	default:
		return nil
	}
}

// Restore rebuilds a live CVD from a persistent state. Every table named in
// st.Tables must already have been deserialized into db; Restore only wires
// the in-memory structures (graph, bipartite record sets, record catalog,
// metadata, attribute registry, model bookkeeping) back around them. The
// restored CVD takes ownership of the state's pointers.
func Restore(db *relstore.Database, st *PersistentState) (*CVD, error) {
	for _, name := range st.Tables {
		if !db.HasTable(name) {
			return nil, fmt.Errorf("cvd: restore %s: backing table %q missing from database", st.Name, name)
		}
	}
	c := &CVD{
		name:      st.Name,
		db:        db,
		kind:      st.Kind,
		schema:    st.Schema.Clone(),
		graph:     st.Graph,
		bip:       vgraph.NewBipartite(),
		records:   make(map[vgraph.RecordID]relstore.Row, len(st.Records)),
		nextVID:   st.NextVID,
		nextRID:   st.NextRID,
		checkouts: make(map[string]checkoutInfo),
		reserved:  make(map[string]struct{}),
		workers:   1,
		clock:     time.Now,
	}
	for _, rec := range st.Records {
		c.records[rec.RID] = rec.Row
	}
	for _, vs := range st.RecordSets {
		c.bip.SetVersionSet(vs.Version, vs.Set)
	}
	c.attrs = restoreAttributeRegistry(st.Attrs)
	meta, err := restoreMetadataStore(db, st.Name, st.Metas)
	if err != nil {
		return nil, err
	}
	c.meta = meta
	model, err := restoreModel(db, st)
	if err != nil {
		return nil, err
	}
	c.model = model
	return c, nil
}

// restoreAttributeRegistry rebuilds the registry from its persisted rows.
// Attribute ids are assigned densely from 1, so the next id is len+1.
func restoreAttributeRegistry(attrs []Attribute) *AttributeRegistry {
	r := NewAttributeRegistry()
	for i, a := range attrs {
		r.byID[a.ID] = i
		if a.ID >= r.nextID {
			r.nextID = a.ID + 1
		}
	}
	r.attrs = append(r.attrs, attrs...)
	return r
}

// restoreMetadataStore re-attaches the metadata store to its already
// deserialized mirror table and repopulates the in-memory map.
func restoreMetadataStore(db *relstore.Database, cvdName string, metas []*VersionMeta) (*metadataStore, error) {
	name := cvdName + "_metadata"
	if !db.HasTable(name) {
		return nil, fmt.Errorf("cvd: restore %s: metadata table %q missing", cvdName, name)
	}
	s := &metadataStore{db: db, name: name, metas: make(map[vgraph.VersionID]*VersionMeta, len(metas))}
	for _, m := range metas {
		if _, dup := s.metas[m.ID]; dup {
			return nil, fmt.Errorf("cvd: restore %s: duplicate metadata for version %d", cvdName, m.ID)
		}
		s.metas[m.ID] = m
	}
	return s, nil
}

// restoreModel rebuilds the physical data model's in-memory bookkeeping
// around the already deserialized tables.
func restoreModel(db *relstore.Database, st *PersistentState) (DataModel, error) {
	switch st.Kind {
	case SplitByRlist:
		m := newRlistModel(db, st.Name, st.Schema)
		if len(st.Partitions) > 0 {
			m.partitions = append([]string(nil), st.Partitions...)
			m.partitionOf = make(map[vgraph.VersionID]int, len(st.PartitionOf))
			for v, k := range st.PartitionOf {
				m.partitionOf[v] = k
			}
			if len(st.Resident) == len(st.Partitions) {
				m.resident = st.Resident
			} else {
				// Defensive: residentOf rebuilds lazily from partition scans.
				m.resident = make([]*recset.Set, len(st.Partitions))
			}
		}
		return m, nil
	case SplitByVlist:
		return newVlistModel(db, st.Name, st.Schema), nil
	case CombinedTable:
		return newCombinedModel(db, st.Name, st.Schema), nil
	case TablePerVersion:
		m := newTPVModel(db, st.Name, st.Schema)
		for _, v := range st.Graph.Versions() {
			m.versions[v] = m.tabName(v)
		}
		return m, nil
	case DeltaBased:
		m := newDeltaModel(db, st.Name, st.Schema)
		// The precedent chain is mirrored in the metadata table; rebuild the
		// in-memory map from it.
		meta, ok := db.Table(m.metaTabName())
		if !ok {
			return nil, fmt.Errorf("cvd: restore %s: precedent table missing", st.Name)
		}
		meta.Scan(func(_ int, r relstore.Row) bool {
			m.bases[vgraph.VersionID(r[0].AsInt())] = vgraph.VersionID(r[1].AsInt())
			return true
		})
		return m, nil
	default:
		return nil, fmt.Errorf("cvd: restore %s: unknown data model %d", st.Name, int(st.Kind))
	}
}
