package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cvd"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// The chunk and manifest decoders sit directly behind the CRC-framed pack and
// manifest files, but a flipped disk block can pass a stale CRC or the frame
// check can be the thing that's corrupt — so the decoders themselves must
// treat their input as hostile: arbitrary bytes return an error, never panic,
// and never trigger an implausible allocation.

// fuzzColBandPayload encodes one real column band for the seed corpus.
func fuzzColBandPayload(rawLanes bool) []byte {
	const n = 20
	lanes := relstore.ColumnLanes{
		Tags:   make([]uint8, n),
		Ints:   make([]int64, n),
		Floats: make([]float64, n),
		Strs:   make([]string, n),
		Arrs:   make([][]int64, n),
	}
	for i := 0; i < n; i++ {
		lanes.Tags[i] = uint8(relstore.TypeInt)
		lanes.Ints[i] = int64(i * 1000)
		lanes.Floats[i] = float64(i) / 3
		lanes.Strs[i] = []string{"x", "y", "z"}[i%3]
		lanes.Arrs[i] = []int64{int64(i), int64(i + 1)}
	}
	var e enc
	encodeColBand(&e, lanes, 0, n, rawLanes)
	return e.b
}

// fuzzCVDState builds a small but fully populated persistent CVD state.
func fuzzCVDState() *cvd.PersistentState {
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "key", Type: relstore.TypeInt},
		{Name: "val", Type: relstore.TypeString},
	}, "key")
	g := vgraph.New()
	for v := vgraph.VersionID(1); v <= 3; v++ {
		node, err := g.AddVersion(v, int64(v)*10)
		if err != nil {
			panic(err)
		}
		node.NumAttrs = 2
	}
	if err := g.AddEdgeAttrs(1, 2, 5, 2); err != nil {
		panic(err)
	}
	if err := g.AddEdgeAttrs(1, 3, 7, 2); err != nil {
		panic(err)
	}
	st := &cvd.PersistentState{
		Name:    "fuzz",
		Kind:    cvd.SplitByRlist,
		Schema:  schema,
		NextVID: 4,
		NextRID: 31,
		Graph:   g,
		Metas: []*cvd.VersionMeta{
			{ID: 1, CommitAt: time.Unix(0, 12345), Message: "init", Author: "f", Attributes: []cvd.AttrID{1, 2}, NumRecords: 10},
			{ID: 2, Parents: []vgraph.VersionID{1}, Message: "edit", NumRecords: 20},
			{ID: 3, Parents: []vgraph.VersionID{1}, NumRecords: 30},
		},
		Attrs: []cvd.Attribute{
			{ID: 1, Name: "key", Type: relstore.TypeInt},
			{ID: 2, Name: "val", Type: relstore.TypeString},
		},
		Tables: []string{"fuzz_data", "fuzz_versions"},
	}
	for rid := vgraph.RecordID(1); rid <= 30; rid++ {
		st.Records = append(st.Records, cvd.PersistedRecord{
			RID: rid,
			Row: relstore.Row{relstore.Int(int64(rid)), relstore.Str("r")},
		})
	}
	for v := vgraph.VersionID(1); v <= 3; v++ {
		st.RecordSets = append(st.RecordSets, cvd.VersionRecordSet{
			Version: v,
			Set:     recset.FromSlice([]int64{1, 2, int64(v) * 10}),
		})
	}
	return st
}

// FuzzChunkDecode runs arbitrary payloads through all four chunk decoders.
// The payload kind byte routes real chunks to the right decoder, but every
// decoder sees every input here — a pack lookup can hand back the wrong kind.
func FuzzChunkDecode(f *testing.F) {
	var e enc
	st := fuzzCVDState()
	encodeCVDHead(&e, st)
	f.Add(append([]byte(nil), e.b...))
	e.b = e.b[:0]
	encodeCatalogBand(&e, st.Records)
	f.Add(append([]byte(nil), e.b...))
	e.b = e.b[:0]
	encodeRecsetRun(&e, st.RecordSets)
	f.Add(append([]byte(nil), e.b...))
	f.Add(fuzzColBandPayload(false))
	f.Add(fuzzColBandPayload(true))
	f.Add([]byte{})
	f.Add([]byte{chunkColBand})
	f.Add([]byte{chunkCVDHead, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if lanes, present, n, err := decodeColBand(data, relstore.ColumnLanes{}); err == nil {
			if len(lanes.Tags) != n {
				t.Fatalf("column band: %d tags for %d rows", len(lanes.Tags), n)
			}
			if present&laneInts != 0 && len(lanes.Ints) != n {
				t.Fatalf("column band: %d ints for %d rows", len(lanes.Ints), n)
			}
			if present&laneStrs != 0 && len(lanes.Strs) != n {
				t.Fatalf("column band: %d strings for %d rows", len(lanes.Strs), n)
			}
		}
		if st, err := decodeCVDHead(data); err == nil && st.Graph == nil {
			t.Fatal("CVD head decoded without a graph")
		}
		_, _ = decodeCatalogBand(nil, data)
		_, _ = decodeRecsetRun(nil, data)
	})
}

// FuzzManifestDecode pins two properties of the manifest payload codec: no
// input panics or over-allocates (band counts are derived from decoded
// geometry, so a hostile header could otherwise demand terabytes), and any
// accepted input re-encodes to a stable canonical form — encode(decode(x)) is
// a fixed point even when x itself used non-canonical varints.
func FuzzManifestDecode(f *testing.F) {
	st := fuzzCVDState()
	m := &manifest{dbName: "db", epoch: 9}
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "rid", Type: relstore.TypeInt},
		{Name: "txt", Type: relstore.TypeString},
	}, "rid")
	mt := manifestTable{meta: tableMeta{
		name: "t", schema: schema, nrows: 10, bandRows: 4, index: []string{"rid"},
	}}
	for ci := 0; ci < len(schema.Columns); ci++ {
		bands := make([]ChunkHash, numBands(10, 4))
		for b := range bands {
			bands[b] = hashChunk([]byte{byte(ci), byte(b)})
		}
		mt.cols = append(mt.cols, bands)
	}
	m.tables = append(m.tables, mt)
	layout := layoutForCVD(st)
	mc := manifestCVD{
		layout:  layout,
		head:    hashChunk([]byte("head")),
		catalog: make([]ChunkHash, numBands(layout.records, layout.catBand)),
		runs:    make([]ChunkHash, numBands(layout.sets, layout.runLen)),
	}
	m.cvds = append(m.cvds, mc)
	var e enc
	encodeManifestPayload(&e, m)
	f.Add(append([]byte(nil), e.b...))
	f.Add(e.b[:len(e.b)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifestPayload(data)
		if err != nil {
			return
		}
		var e1 enc
		encodeManifestPayload(&e1, m)
		m2, err := decodeManifestPayload(e1.b)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		var e2 enc
		encodeManifestPayload(&e2, m2)
		if !bytes.Equal(e1.b, e2.b) {
			t.Fatal("manifest encoding is not a fixed point after one round trip")
		}
	})
}

// FuzzScrub feeds hostile bytes as an entire data directory — pack, manifest,
// WAL segment, and flat snapshot all at once — and demands Scrub classify the
// wreckage (or error) without ever panicking, with and without repair. The
// repair pass additionally exercises truncation, quarantine, and the
// verification reopen against arbitrary garbage.
func FuzzScrub(f *testing.F) {
	f.Add([]byte(packMagic+"\x02\x00\x00\x00"), []byte(manifestMagic), []byte(walMagic), []byte{})
	f.Add([]byte("ORPHPAK1\x02\x00\x00\x00garbage frame bytes"), []byte("not a manifest"),
		[]byte("ORPHWAL1\x02\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\xff\xff"), []byte(snapshotMagic))
	f.Add([]byte{}, []byte{}, []byte{}, []byte{0x00})
	f.Fuzz(func(t *testing.T, pack, man, wal, snap []byte) {
		dir := t.TempDir()
		for name, data := range map[string][]byte{
			PackFile:              pack,
			ManifestFileName(1):   man,
			WALSegmentFileName(1): wal,
			SnapshotFile:          snap,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for _, repair := range []bool{false, true} {
			// Corruption must surface as a report or an error — never a panic.
			_, _ = Scrub(dir, ScrubOptions{Repair: repair})
		}
	})
}
