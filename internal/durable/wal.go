package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// The commit WAL is an append-only file of self-delimiting records:
//
//	header: magic "ORPHWAL1", uint32 format version, uint64 epoch
//	record: uint32 payload length, uint32 CRC32(payload), payload
//
// Each payload is one logical engine operation (init / commit / drop). The
// file is fsynced after every append — the commit boundary — so a committed
// version survives a crash. Replay reads records until the end of the file;
// a torn tail (short header, short payload, or CRC mismatch from a crashed
// append) ends replay and is truncated away, keeping every fully-committed
// record before it.

// walHeaderSize is the fixed byte length of the WAL header.
const walHeaderSize = 8 + 4 + 8

// RecordOp enumerates the logical operations a WAL record can carry.
type RecordOp uint8

// WAL record operations.
const (
	OpInit   RecordOp = 1 // create a CVD with its initial version
	OpCommit RecordOp = 2 // commit a new version (rows carry schema changes too)
	OpDrop   RecordOp = 3 // drop a CVD
)

// Record is one decoded WAL entry: a logical redo operation.
type Record struct {
	Op      RecordOp
	CVD     string
	Kind    cvd.ModelKind      // OpInit: physical data model
	Schema  relstore.Schema    // OpInit: initial schema; OpCommit: row schema
	Parents []vgraph.VersionID // OpCommit
	Rows    []relstore.Row     // OpInit, OpCommit
	Message string
	Author  string
	At      time.Time // original commit timestamp, reproduced on replay
}

func encodeRecord(e *enc, r *Record) {
	e.u8(uint8(r.Op))
	e.str(r.CVD)
	switch r.Op {
	case OpInit:
		e.uvarint(uint64(r.Kind))
		e.schema(r.Schema)
		e.str(r.Message)
		e.str(r.Author)
		e.varint(timeNano(r.At))
		e.uvarint(uint64(len(r.Rows)))
		for _, row := range r.Rows {
			e.row(row)
		}
	case OpCommit:
		e.uvarint(uint64(len(r.Parents)))
		for _, p := range r.Parents {
			e.uvarint(uint64(p))
		}
		e.schema(r.Schema)
		e.str(r.Message)
		e.str(r.Author)
		e.varint(timeNano(r.At))
		e.uvarint(uint64(len(r.Rows)))
		for _, row := range r.Rows {
			e.row(row)
		}
	case OpDrop:
		// name only
	}
}

func decodeRecord(payload []byte) (*Record, error) {
	d := &dec{b: payload}
	r := &Record{Op: RecordOp(d.u8()), CVD: d.str()}
	switch r.Op {
	case OpInit:
		r.Kind = cvd.ModelKind(d.uvarint())
		r.Schema = d.schema()
		r.Message = d.str()
		r.Author = d.str()
		r.At = nanoTime(d.varint())
		n := d.length(2)
		r.Rows = make([]relstore.Row, n)
		for i := range r.Rows {
			r.Rows[i] = d.row()
		}
	case OpCommit:
		np := d.length(1)
		r.Parents = make([]vgraph.VersionID, np)
		for i := range r.Parents {
			r.Parents[i] = vgraph.VersionID(d.uvarint())
		}
		r.Schema = d.schema()
		r.Message = d.str()
		r.Author = d.str()
		r.At = nanoTime(d.varint())
		n := d.length(2)
		r.Rows = make([]relstore.Row, n)
		for i := range r.Rows {
			r.Rows[i] = d.row()
		}
	case OpDrop:
	default:
		return nil, fmt.Errorf("durable: unknown WAL op %d", uint8(r.Op))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: WAL record: %d trailing bytes", len(payload)-d.off)
	}
	return r, nil
}

// writeWALHeader (re)writes the header at the start of f and truncates
// everything after it.
func writeWALHeader(f vfs.File, epoch uint64) error {
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], formatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], epoch)
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// readWALHeader validates the header and returns the epoch.
func readWALHeader(f vfs.File) (uint64, error) {
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, walHeaderSize), hdr[:]); err != nil {
		return 0, fmt.Errorf("durable: reading WAL header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("durable: not a WAL file (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != formatVersion {
		return 0, fmt.Errorf("durable: unsupported WAL format version %d (want %d)", v, formatVersion)
	}
	return binary.LittleEndian.Uint64(hdr[12:]), nil
}

// scanWAL validates the record frames after the header without decoding
// payloads (pass 1 of recovery): it returns the offset just past the last
// fully-valid record and whether a torn tail — truncated header or payload,
// or a CRC mismatch from a crashed append — follows it.
func scanWAL(f vfs.File) (validEnd int64, torn bool, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	size := info.Size()
	offset := int64(walHeaderSize)
	var hdr [8]byte
	var payload []byte
	for {
		if size-offset < int64(len(hdr)) {
			return offset, size > offset, nil
		}
		if _, err := f.ReadAt(hdr[:], offset); err != nil {
			return offset, false, err
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if size-offset-int64(len(hdr)) < int64(n) {
			return offset, true, nil
		}
		if int(n) > cap(payload) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := f.ReadAt(payload, offset+int64(len(hdr))); err != nil {
			return offset, false, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return offset, true, nil
		}
		offset += int64(len(hdr)) + int64(n)
	}
}

// replayWAL streams every record after the header to apply, decoding one
// payload at a time so replaying a large WAL never materializes the whole
// log in memory. The caller (Open) has already truncated any torn tail, so
// every frame here is complete and CRC-valid.
func replayWAL(f vfs.File, apply func(*Record) error) (applied int, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	offset := int64(walHeaderSize)
	var hdr [8]byte
	for size-offset >= int64(len(hdr)) {
		if _, err := f.ReadAt(hdr[:], offset); err != nil {
			return applied, err
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, offset+int64(len(hdr))); err != nil {
			return applied, err
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// A record that passes its CRC but does not decode is real
			// corruption, not a torn tail: fail loudly instead of silently
			// dropping committed history.
			return applied, err
		}
		if err := apply(rec); err != nil {
			return applied, fmt.Errorf("durable: replaying WAL record %d: %w", applied, err)
		}
		applied++
		offset += int64(len(hdr)) + int64(n)
	}
	return applied, nil
}

// encodeFrame frames one record — uint32 length, uint32 CRC32, payload — as
// the byte slice the group-commit queue hands to the batch leader, which
// writes and fsyncs every frame of its batch in one pass (the commit
// boundary).
func encodeFrame(rec *Record) ([]byte, error) {
	var e enc
	e.b = make([]byte, 8) // header placeholder
	encodeRecord(&e, rec)
	payload := e.b[8:]
	if len(payload) > math.MaxUint32 {
		// A wrapped length field would frame-corrupt the log and take every
		// later record down with it during torn-tail recovery.
		return nil, fmt.Errorf("durable: WAL record of %d bytes exceeds the 4 GiB frame limit; checkpoint and commit in smaller batches", len(payload))
	}
	binary.LittleEndian.PutUint32(e.b[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.b[4:8], crc32.ChecksumIEEE(payload))
	return e.b, nil
}
