package durable

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

func walSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "id", Type: relstore.TypeInt},
		{Name: "name", Type: relstore.TypeString},
	}, "id")
}

func walRows(n int) []relstore.Row {
	out := make([]relstore.Row, n)
	for i := range out {
		out[i] = relstore.Row{relstore.Int(int64(i + 1)), relstore.Str("r")}
	}
	return out
}

// openCollect opens a data directory and drains its WAL into a slice — the
// shape the pre-streaming API returned, which the assertions below consume.
func openCollect(t *testing.T, dir string) (*Store, *OpenResult, []*Record) {
	t.Helper()
	s, res, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var records []*Record
	if _, err := s.ReplayWAL(func(r *Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s, res, records
}

func logThree(t *testing.T, s *Store) {
	t.Helper()
	at := time.Unix(0, 1234567890)
	if err := s.LogInit("cvd", cvd.SplitByRlist, walSchema(), walRows(3), "init", "alice", at); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit("cvd", []vgraph.VersionID{1}, walRows(4), walSchema(), "more", "bob", at.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDrop("gone"); err != nil {
		t.Fatal(err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, res, recs := openCollect(t, dir)
	if res.Snapshot != nil || len(recs) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", res)
	}
	logThree(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, res2, recs2 := openCollect(t, dir)
	defer s2.Close()
	if res2.TornTail || res2.StaleWAL {
		t.Fatalf("clean WAL flagged as recovered: %+v", res2)
	}
	if len(recs2) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs2))
	}
	r0 := recs2[0]
	if r0.Op != OpInit || r0.CVD != "cvd" || r0.Author != "alice" || len(r0.Rows) != 3 || !r0.Schema.Equal(walSchema()) {
		t.Fatalf("init record mismatch: %+v", r0)
	}
	if r0.At.UnixNano() != 1234567890 {
		t.Fatalf("init timestamp %d", r0.At.UnixNano())
	}
	r1 := recs2[1]
	if r1.Op != OpCommit || len(r1.Parents) != 1 || r1.Parents[0] != 1 || len(r1.Rows) != 4 || r1.Message != "more" {
		t.Fatalf("commit record mismatch: %+v", r1)
	}
	if recs2[2].Op != OpDrop || recs2[2].CVD != "gone" {
		t.Fatalf("drop record mismatch: %+v", recs2[2])
	}
}

// TestWALTornTail truncates the WAL at every possible byte boundary inside
// the last record and verifies replay recovers exactly the fully-written
// prefix, truncates the torn bytes, and accepts new appends afterwards.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	logThree(t, s)
	walPath := filepath.Join(dir, WALSegmentFileName(0))
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	full := info.Size()
	// Find the offset where the third record starts by replaying sizes.
	s.Close()

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := full - 1; cut > walHeaderSize; cut-- {
		dir2 := t.TempDir()
		p2 := filepath.Join(dir2, WALSegmentFileName(0))
		if err := os.WriteFile(p2, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, _, recs := openCollect(t, dir2)
		// A cut landing exactly on a record boundary leaves a clean shorter
		// WAL; anywhere else must be detected as a torn tail.
		if len(recs) >= 3 {
			t.Fatalf("cut %d: replayed %d records from a truncated WAL", cut, len(recs))
		}
		// Every record that did replay must be complete and ordered.
		for i, r := range recs {
			wantOp := []RecordOp{OpInit, OpCommit, OpDrop}[i]
			if r.Op != wantOp {
				t.Fatalf("cut %d: record %d op %d, want %d", cut, i, r.Op, wantOp)
			}
		}
		// The file must have been truncated to a clean boundary: appending and
		// reopening yields the prefix plus the new record.
		before := len(recs)
		if err := s2.LogDrop("after-recovery"); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		s2.Close()
		s3, res3, recs3 := openCollect(t, dir2)
		s3.Close()
		if res3.TornTail {
			t.Fatalf("cut %d: reopen still sees a torn tail", cut)
		}
		if len(recs3) != before+1 {
			t.Fatalf("cut %d: %d records after recovery append, want %d", cut, len(recs3), before+1)
		}
		last := recs3[len(recs3)-1]
		if last.Op != OpDrop || last.CVD != "after-recovery" {
			t.Fatalf("cut %d: post-recovery record mismatch: %+v", cut, last)
		}
	}
}

// TestWALCorruptTail flips a byte in the middle of the record stream: the CRC
// framing must stop replay there rather than apply garbage.
func TestWALCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	logThree(t, s)
	s.Close()
	walPath := filepath.Join(dir, WALSegmentFileName(0))
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte well into the last record's payload.
	raw[len(raw)-3] ^= 0x55
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sc, res, recs := openCollect(t, dir)
	defer sc.Close()
	if !res.TornTail {
		t.Fatal("corrupt tail not detected")
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
}

// TestDirectoryLock pins the single-opener rule: a second Open of a live
// data directory must fail loudly, and Close must release the lock.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("second Open of a locked directory succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

// TestStaleWALDiscarded simulates a crash between checkpoint's snapshot
// rename and WAL reset: the WAL carries an older epoch than the snapshot and
// must be discarded, not replayed.
func TestStaleWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	logThree(t, s)
	// Checkpoint writes an (empty-engine) snapshot at epoch 1... then
	// simulate the crash by restoring the old epoch-0 WAL content.
	walPath := filepath.Join(dir, WALSegmentFileName(0))
	oldWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&Snapshot{DBName: "db"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(walPath, oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, res, recs := openCollect(t, dir)
	defer s2.Close()
	if !res.StaleWAL {
		t.Fatal("stale WAL not flagged")
	}
	if len(recs) != 0 {
		t.Fatalf("stale WAL replayed %d records", len(recs))
	}
	if s2.Epoch() != 1 {
		t.Fatalf("epoch %d after recovery, want 1", s2.Epoch())
	}
}
