package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/vfs"
)

// The chunk pack is the append-only chunk store of a data directory:
//
//	header: magic "ORPHPAK1", uint32 format version
//	frame:  16-byte chunk hash, uint32 payload length, uint32 CRC32(payload), payload
//
// Chunks are written at most once (append-if-absent keyed by content hash)
// and never rewritten in place; retention GC rewrites the pack to a temp
// file and renames it over when enough dead bytes accumulate (compact).
// Opening scans the frames sequentially to rebuild the in-memory index,
// truncating a torn tail from a crashed append — safe because a chunk only
// becomes reachable once a manifest referencing it is durably renamed in,
// and manifests are written after the pack is fsynced.

// PackFile is the chunk pack's file name inside a data directory.
const PackFile = "chunks.orph"

const packHeaderSize = 8 + 4

// packFrameOverhead is the per-chunk framing cost (hash + length + CRC).
const packFrameOverhead = 16 + 4 + 4

// chunkLoc locates one chunk's payload inside the pack.
type chunkLoc struct {
	off int64 // payload offset (past the frame header)
	n   uint32
}

// chunkPack is the open pack: file handle plus the hash → location index.
// All methods are safe for concurrent use.
type chunkPack struct {
	mu   sync.Mutex
	fsys vfs.FS
	path string
	f    vfs.File
	idx  map[ChunkHash]chunkLoc
	size int64 // end of the last valid frame == next append offset
}

// openPack opens (creating if needed) the pack at path and scans its frames
// into the index. A torn tail is truncated; tornTail reports that.
func openPack(fsys vfs.FS, path string) (p *chunkPack, tornTail bool, err error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	fail := func(err error) (*chunkPack, bool, error) {
		f.Close()
		return nil, false, err
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if info.Size() < packHeaderSize {
		var hdr [packHeaderSize]byte
		copy(hdr[:8], packMagic)
		binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		return &chunkPack{fsys: fsys, path: path, f: f, idx: make(map[ChunkHash]chunkLoc), size: packHeaderSize}, false, nil
	}
	var hdr [packHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	if string(hdr[:8]) != packMagic {
		return fail(fmt.Errorf("durable: %s is not a chunk pack (magic %q)", path, hdr[:8]))
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return fail(fmt.Errorf("durable: unsupported chunk pack version %d (want %d)", v, formatVersion))
	}

	idx := make(map[ChunkHash]chunkLoc)
	size := info.Size()
	br := bufio.NewReaderSize(io.NewSectionReader(f, packHeaderSize, size-packHeaderSize), 1<<20)
	off := int64(packHeaderSize)
	valid := off
	var frame [packFrameOverhead]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				break
			}
			tornTail = true // short frame header
			break
		}
		var h ChunkHash
		copy(h[:], frame[:16])
		n := binary.LittleEndian.Uint32(frame[16:20])
		want := binary.LittleEndian.Uint32(frame[20:24])
		if int64(n) > size-off-packFrameOverhead {
			tornTail = true
			break
		}
		if int(n) > cap(payload) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			tornTail = true
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			tornTail = true
			break
		}
		idx[h] = chunkLoc{off: off + packFrameOverhead, n: n}
		off += packFrameOverhead + int64(n)
		valid = off
	}
	if tornTail {
		if err := f.Truncate(valid); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	return &chunkPack{fsys: fsys, path: path, f: f, idx: idx, size: valid}, tornTail, nil
}

// has reports whether the chunk is present.
func (p *chunkPack) has(h ChunkHash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.idx[h]
	return ok
}

// put appends the chunk unless it is already present. It returns whether the
// chunk was written (false = deduplicated). Durability is the caller's:
// CompleteCheckpoint syncs the pack once before writing the manifest.
func (p *chunkPack) put(h ChunkHash, payload []byte) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.idx[h]; ok {
		return false, nil
	}
	if p.f == nil {
		return false, fmt.Errorf("durable: chunk pack %s is closed", p.path)
	}
	frame := make([]byte, packFrameOverhead+len(payload))
	copy(frame[:16], h[:])
	binary.LittleEndian.PutUint32(frame[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[20:24], crc32.ChecksumIEEE(payload))
	copy(frame[packFrameOverhead:], payload)
	if _, err := p.f.WriteAt(frame, p.size); err != nil {
		// The tail past size is garbage now; leave size unchanged so the next
		// put overwrites it, and open-time scanning would truncate it anyway.
		return false, err
	}
	p.idx[h] = chunkLoc{off: p.size + packFrameOverhead, n: uint32(len(payload))}
	p.size += int64(len(frame))
	return true, nil
}

// get reads one chunk's payload, re-verifying its CRC against the stored hash
// location (detects on-disk corruption after open).
func (p *chunkPack) get(h ChunkHash) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.idx[h]
	if !ok {
		return nil, fmt.Errorf("durable: chunk %s missing from pack %s", h, p.path)
	}
	if p.f == nil {
		return nil, fmt.Errorf("durable: chunk pack %s is closed", p.path)
	}
	payload := make([]byte, loc.n)
	if _, err := p.f.ReadAt(payload, loc.off); err != nil {
		return nil, fmt.Errorf("durable: reading chunk %s: %w", h, err)
	}
	if got := hashChunk(payload); got != h {
		return nil, fmt.Errorf("durable: chunk %s content hash mismatch (%s)", h, got)
	}
	return payload, nil
}

// sizeOf returns the payload size of an indexed chunk.
func (p *chunkPack) sizeOf(h ChunkHash) (uint32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.idx[h]
	return loc.n, ok
}

// sync makes every appended chunk durable.
func (p *chunkPack) sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return fmt.Errorf("durable: chunk pack %s is closed", p.path)
	}
	return p.f.Sync()
}

// close releases the file handle.
func (p *chunkPack) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	p.f = nil
	return err
}

// bytes returns the pack's frame bytes total and the portion referenced by
// live (the payload bytes of indexed chunks in the live set, with framing).
func (p *chunkPack) bytes(live map[ChunkHash]struct{}) (total, liveBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for h, loc := range p.idx {
		total += packFrameOverhead + int64(loc.n)
		if _, ok := live[h]; ok {
			liveBytes += packFrameOverhead + int64(loc.n)
		}
	}
	return total, liveBytes
}

// compact rewrites the pack keeping only live chunks: frames stream to a
// temp file which is fsynced and renamed over the pack, and the index is
// rebuilt against the new file. Readers are excluded for the duration.
func (p *chunkPack) compact(live map[ChunkHash]struct{}) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return fmt.Errorf("durable: chunk pack %s is closed", p.path)
	}
	dir := filepath.Dir(p.path)
	tmp, err := p.fsys.CreateTemp(dir, ".chunks-*.tmp")
	if err != nil {
		return err
	}
	defer p.fsys.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	var hdr [packHeaderSize]byte
	copy(hdr[:8], packMagic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	newIdx := make(map[ChunkHash]chunkLoc, len(live))
	off := int64(packHeaderSize)
	var frame [packFrameOverhead]byte
	for h := range live {
		loc, ok := p.idx[h]
		if !ok {
			tmp.Close()
			return fmt.Errorf("durable: compacting %s: live chunk %s missing", p.path, h)
		}
		payload := make([]byte, loc.n)
		if _, err := p.f.ReadAt(payload, loc.off); err != nil {
			tmp.Close()
			return err
		}
		if got := hashChunk(payload); got != h {
			// Copying a silently-rotted live chunk forward would launder the
			// corruption behind a fresh CRC; abort and leave the old pack (and
			// its detectable mismatch) intact for fsck.
			tmp.Close()
			return fmt.Errorf("durable: compacting %s: chunk %s content hash mismatch (%s)", p.path, h, got)
		}
		copy(frame[:16], h[:])
		binary.LittleEndian.PutUint32(frame[16:20], loc.n)
		binary.LittleEndian.PutUint32(frame[20:24], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(frame[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			tmp.Close()
			return err
		}
		newIdx[h] = chunkLoc{off: off + packFrameOverhead, n: loc.n}
		off += packFrameOverhead + int64(loc.n)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := p.fsys.Rename(tmp.Name(), p.path); err != nil {
		return err
	}
	if err := p.fsys.SyncDir(dir); err != nil {
		return err
	}
	f, err := p.fsys.OpenFile(p.path, os.O_RDWR, 0o644)
	if err != nil {
		// The old handle now reads the unlinked pre-compaction file — still
		// consistent, so keep serving from it rather than failing the store.
		return fmt.Errorf("durable: reopening compacted pack %s: %w", p.path, err)
	}
	p.f.Close()
	p.f = f
	p.idx = newIdx
	p.size = off
	return nil
}
