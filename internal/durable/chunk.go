package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/cvd"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// The format v2 snapshot is content-addressed: engine state is split into
// chunks — fixed-geometry row bands of each table column, the CVD head
// (graph, metadata, counters), bands of the record catalog, and runs of
// per-version record sets — each serialized independently and identified by
// the SHA-256 of its payload truncated to 16 bytes. A checkpoint manifest
// maps section → chunk hash, and chunk payloads live in the append-only
// chunk pack (pack.go), so a checkpoint writes only chunks whose content
// changed and retained manifests share unchanged chunks structurally.
//
// Band geometry is fixed multiples from row 0, so appending rows (the
// dominant mutation: rlist commits append to the shared data table, the
// versioning table, and the catalog) dirties only the tail band of each
// section while every full interior band keeps its hash.

// ChunkHash is the 16-byte truncated SHA-256 content address of a chunk
// payload (the payload includes its one-byte kind prefix).
type ChunkHash [16]byte

// String renders the hash as hex for diagnostics.
func (h ChunkHash) String() string { return hex.EncodeToString(h[:]) }

// hashChunk computes the content address of a chunk payload.
func hashChunk(payload []byte) ChunkHash {
	sum := sha256.Sum256(payload)
	var h ChunkHash
	copy(h[:], sum[:16])
	return h
}

// Chunk payload kinds (first payload byte).
const (
	chunkColBand     uint8 = 1 // one row band of one table column's lanes
	chunkCVDHead     uint8 = 2 // CVD identity, counters, graph, metas, partitions
	chunkCatalogBand uint8 = 3 // one band of a CVD's record catalog
	chunkRecsetRun   uint8 = 4 // one run of per-version record sets
)

// Band geometry. These are defaults for newly written checkpoints; readers
// take the actual geometry from the manifest or snapshot stream, so the
// constants can change without a format break.
const (
	// DefaultBandRows is the row-band height of table-column chunks.
	DefaultBandRows = 4096
	// defaultCatalogBand is how many catalog records form one chunk.
	defaultCatalogBand = 4096
	// defaultRecsetRun is how many version record sets form one chunk. Kept
	// small: the partial tail run is re-encoded on every checkpoint (its
	// content moves with each commit), so short runs let older — typically
	// larger — record sets settle into full, fingerprint-cached bands
	// quickly, keeping incremental checkpoints proportional to the delta.
	defaultRecsetRun = 16
	// bandTargetBytes caps roughly how many raw table bytes one row band
	// spans across all its columns. Fixed-height bands are fine for narrow
	// rows, but a table with fat array cells (a versions table's record
	// lists) would otherwise pack megabytes into the always-re-encoded tail
	// band and defeat incremental checkpoints.
	bandTargetBytes = 1 << 20
)

// maxBandRows bounds band geometry read from disk before any allocation.
const maxBandRows = 1 << 22

// numBands returns how many fixed-height bands cover n elements.
func numBands(n, band int) int {
	if n <= 0 || band <= 0 {
		return 0
	}
	return (n + band - 1) / band
}

// bandSpan returns the element range [lo, hi) of band b.
func bandSpan(b, band, n int) (int, int) {
	lo := b * band
	hi := lo + band
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ---- table column bands -----------------------------------------------------

// encodeColBand appends the chunk payload for rows [lo, hi) of one column to
// e: kind, row count, lane presence mask, then each present lane under its
// sampled encoding id (lanecodec.go). rawLanes forces the identity encodings
// (the benchmark's uncompressed baseline).
func encodeColBand(e *enc, l relstore.ColumnLanes, lo, hi int, rawLanes bool) {
	e.u8(chunkColBand)
	n := hi - lo
	e.uvarint(uint64(n))
	var present uint8
	if l.Ints != nil {
		present |= laneInts
	}
	if l.Floats != nil {
		present |= laneFloats
	}
	if l.Strs != nil {
		present |= laneStrs
	}
	if l.Arrs != nil {
		present |= laneArrs
	}
	e.u8(present)

	tags := l.Tags[lo:hi]
	tagEnc := relstore.TagEncRaw
	if !rawLanes {
		tagEnc = relstore.PickTagEnc(tags)
	}
	e.u8(tagEnc)
	e.b = relstore.AppendTagLane(e.b, tagEnc, tags)

	if l.Ints != nil {
		vals := l.Ints[lo:hi]
		intEnc := relstore.IntEncRaw
		if !rawLanes {
			intEnc = relstore.PickIntEnc(vals)
		}
		e.u8(intEnc)
		e.b = relstore.AppendIntLane(e.b, intEnc, vals)
	}
	if l.Floats != nil {
		e.b = relstore.AppendFloatLane(e.b, l.Floats[lo:hi])
	}
	if l.Strs != nil {
		vals := l.Strs[lo:hi]
		strEnc := relstore.StrEncRaw
		if !rawLanes {
			strEnc = relstore.PickStrEnc(vals)
		}
		e.u8(strEnc)
		e.b = relstore.AppendStrLane(e.b, strEnc, vals)
	}
	if l.Arrs != nil {
		arrs := l.Arrs[lo:hi]
		arrEnc := relstore.ArrEncRaw
		if !rawLanes {
			arrEnc = relstore.PickArrEnc(arrs)
		}
		e.u8(arrEnc)
		e.b = relstore.AppendArrLane(e.b, arrEnc, arrs)
	}
}

// decodeColBand decodes a column-band payload, appending each present lane
// into dst's lanes, and returns the grown lanes plus the presence mask and
// decoded row count.
func decodeColBand(payload []byte, dst relstore.ColumnLanes) (relstore.ColumnLanes, uint8, int, error) {
	fail := func(err error) (relstore.ColumnLanes, uint8, int, error) {
		return relstore.ColumnLanes{}, 0, 0, err
	}
	d := &dec{b: payload}
	if k := d.u8(); k != chunkColBand {
		return fail(fmt.Errorf("durable: chunk kind %d, want column band", k))
	}
	n64 := d.uvarint()
	if n64 > maxBandRows {
		return fail(fmt.Errorf("durable: column band of %d rows exceeds the %d-row bound", n64, maxBandRows))
	}
	n := int(n64)
	present := d.u8()
	tagEnc := d.u8()
	if d.err != nil {
		return fail(d.err)
	}
	var err error
	var used int
	dst.Tags, used, err = relstore.DecodeTagLane(dst.Tags, d.b[d.off:], tagEnc, n)
	if err != nil {
		return fail(err)
	}
	d.off += used
	if present&laneInts != 0 {
		intEnc := d.u8()
		if d.err != nil {
			return fail(d.err)
		}
		dst.Ints, used, err = relstore.DecodeIntLane(dst.Ints, d.b[d.off:], intEnc, n)
		if err != nil {
			return fail(err)
		}
		d.off += used
	}
	if present&laneFloats != 0 {
		dst.Floats, used, err = relstore.DecodeFloatLane(dst.Floats, d.b[d.off:], n)
		if err != nil {
			return fail(err)
		}
		d.off += used
	}
	if present&laneStrs != 0 {
		strEnc := d.u8()
		if d.err != nil {
			return fail(d.err)
		}
		dst.Strs, used, err = relstore.DecodeStrLane(dst.Strs, d.b[d.off:], strEnc, n)
		if err != nil {
			return fail(err)
		}
		d.off += used
	}
	if present&laneArrs != 0 {
		arrEnc := d.u8()
		if d.err != nil {
			return fail(d.err)
		}
		dst.Arrs, used, err = relstore.DecodeArrLane(dst.Arrs, d.b[d.off:], arrEnc, n)
		if err != nil {
			return fail(err)
		}
		d.off += used
	}
	if d.off != len(payload) {
		return fail(fmt.Errorf("durable: column band: %d trailing bytes", len(payload)-d.off))
	}
	return dst, present, n, nil
}

// ---- table metadata and assembly --------------------------------------------

// tableMeta is the per-table header shared by manifests and the snapshot
// stream: everything about a table except its cell data.
type tableMeta struct {
	name     string
	schema   relstore.Schema
	cluster  relstore.ClusterMode
	index    []string
	nrows    int
	bandRows int
}

func (e *enc) tableMeta(m *tableMeta) {
	e.str(m.name)
	e.schema(m.schema)
	e.uvarint(uint64(m.cluster))
	e.uvarint(uint64(len(m.index)))
	for _, c := range m.index {
		e.str(c)
	}
	e.uvarint(uint64(m.nrows))
	e.uvarint(uint64(m.bandRows))
}

func (d *dec) tableMeta() tableMeta {
	var m tableMeta
	m.name = d.str()
	m.schema = d.schema()
	m.cluster = relstore.ClusterMode(d.uvarint())
	nidx := d.length(1)
	m.index = make([]string, nidx)
	for i := range m.index {
		m.index[i] = d.str()
	}
	nrows := d.uvarint()
	band := d.uvarint()
	if d.err != nil {
		return m
	}
	if band == 0 || band > maxBandRows {
		d.fail("table %s: implausible band height %d", m.name, band)
		return m
	}
	if nrows > 1<<40 {
		d.fail("table %s: implausible row count %d", m.name, nrows)
		return m
	}
	m.nrows = int(nrows)
	m.bandRows = int(band)
	return m
}

// metaForTable captures a table's serialization header.
func metaForTable(t *relstore.Table) tableMeta {
	return tableMeta{
		name:     t.Name,
		schema:   t.Schema,
		cluster:  t.Cluster,
		index:    t.IndexColumns(),
		nrows:    t.Len(),
		bandRows: bandRowsFor(t),
	}
}

// bandRowsFor sizes a table's row bands so one band spans roughly
// bandTargetBytes of accounted storage. The height shrinks in powers of four
// from DefaultBandRows, so narrow tables keep the default geometry and the
// boundaries only reshuffle (forcing a one-time full re-encode) when a
// table's average row width crosses a 4x threshold.
func bandRowsFor(t *relstore.Table) int {
	n := t.Len()
	if n == 0 {
		return DefaultBandRows
	}
	avg := t.StorageBytes() / int64(n)
	band := DefaultBandRows
	for band > 1 && int64(band)*avg > bandTargetBytes {
		band /= 4
	}
	return band
}

// tableAssembler rebuilds a table from its meta plus column-band chunks
// delivered in band order per column (columns may arrive in any interleaving).
type tableAssembler struct {
	meta  tableMeta
	lanes []relstore.ColumnLanes
	rows  []int // rows assembled so far, per column
	mask  []uint8
	begun []bool
}

func newTableAssembler(meta tableMeta) *tableAssembler {
	ncols := len(meta.schema.Columns)
	return &tableAssembler{
		meta:  meta,
		lanes: make([]relstore.ColumnLanes, ncols),
		rows:  make([]int, ncols),
		mask:  make([]uint8, ncols),
		begun: make([]bool, ncols),
	}
}

// addBand decodes the next band of column ci into the assembler.
func (a *tableAssembler) addBand(ci int, payload []byte) error {
	if ci < 0 || ci >= len(a.lanes) {
		return fmt.Errorf("durable: table %s: band for column %d of %d", a.meta.name, ci, len(a.lanes))
	}
	lo := a.rows[ci]
	if lo >= a.meta.nrows {
		return fmt.Errorf("durable: table %s: column %d has more bands than %d rows need", a.meta.name, ci, a.meta.nrows)
	}
	want := a.meta.bandRows
	if lo+want > a.meta.nrows {
		want = a.meta.nrows - lo
	}
	lanes, present, n, err := decodeColBand(payload, a.lanes[ci])
	if err != nil {
		return fmt.Errorf("durable: table %s column %d band at row %d: %w", a.meta.name, ci, lo, err)
	}
	if n != want {
		return fmt.Errorf("durable: table %s column %d band at row %d: %d rows, want %d", a.meta.name, ci, lo, n, want)
	}
	// Lane presence is a whole-column property (lanes materialize for the
	// full column or not at all), so every band must agree with the first.
	if a.begun[ci] && present != a.mask[ci] {
		return fmt.Errorf("durable: table %s column %d: lane mask changed between bands (%x != %x)", a.meta.name, ci, present, a.mask[ci])
	}
	a.lanes[ci] = lanes
	a.mask[ci] = present
	a.begun[ci] = true
	a.rows[ci] = lo + n
	return nil
}

// finish validates completeness and builds the table.
func (a *tableAssembler) finish() (*relstore.Table, error) {
	for ci, got := range a.rows {
		if got != a.meta.nrows {
			return nil, fmt.Errorf("durable: table %s column %d: assembled %d of %d rows", a.meta.name, ci, got, a.meta.nrows)
		}
	}
	return relstore.NewTableFromLanes(a.meta.name, a.meta.schema, a.meta.cluster, a.meta.nrows, a.lanes, a.meta.index)
}

// ---- CVD head chunk ---------------------------------------------------------

// encodeCVDHead appends the CVD head chunk: the persisted CVD state minus the
// record catalog and the per-version record sets, which chunk separately.
// Field order matches the v1 CVD section with those two blocks removed.
func encodeCVDHead(e *enc, st *cvd.PersistentState) {
	e.u8(chunkCVDHead)
	e.str(st.Name)
	e.uvarint(uint64(st.Kind))
	e.schema(st.Schema)
	e.uvarint(uint64(st.NextVID))
	e.uvarint(uint64(st.NextRID))

	versions := st.Graph.Versions()
	e.uvarint(uint64(len(versions)))
	for _, v := range versions {
		n := st.Graph.Node(v)
		e.uvarint(uint64(n.ID))
		e.varint(n.NumRecords)
		e.varint(int64(n.NumAttrs))
	}
	edges := st.Graph.Edges()
	e.uvarint(uint64(len(edges)))
	for _, ed := range edges {
		e.uvarint(uint64(ed.Parent))
		e.uvarint(uint64(ed.Child))
		e.varint(ed.Weight)
		e.varint(int64(ed.CommonAttrs))
	}

	e.uvarint(uint64(len(st.Metas)))
	for _, m := range st.Metas {
		e.uvarint(uint64(m.ID))
		e.uvarint(uint64(len(m.Parents)))
		for _, p := range m.Parents {
			e.uvarint(uint64(p))
		}
		e.varint(timeNano(m.CheckoutAt))
		e.varint(timeNano(m.CommitAt))
		e.str(m.Message)
		e.str(m.Author)
		e.uvarint(uint64(len(m.Attributes)))
		for _, a := range m.Attributes {
			e.uvarint(uint64(a))
		}
		e.varint(m.NumRecords)
	}

	e.uvarint(uint64(len(st.Attrs)))
	for _, a := range st.Attrs {
		e.uvarint(uint64(a.ID))
		e.str(a.Name)
		e.uvarint(uint64(a.Type))
	}

	e.uvarint(uint64(len(st.Tables)))
	for _, t := range st.Tables {
		e.str(t)
	}

	e.uvarint(uint64(len(st.Partitions)))
	for _, p := range st.Partitions {
		e.str(p)
	}
	if len(st.Partitions) > 0 {
		e.uvarint(uint64(len(st.PartitionOf)))
		for _, v := range sortedVersionKeys(st.PartitionOf) {
			e.uvarint(uint64(v))
			e.uvarint(uint64(st.PartitionOf[v]))
		}
		for _, rs := range st.Resident {
			e.b = rs.AppendBinary(e.b)
		}
	}
}

// decodeCVDHead parses a CVD head chunk. Records and RecordSets stay nil —
// the cvdAssembler fills them from catalog-band and recset-run chunks.
func decodeCVDHead(payload []byte) (*cvd.PersistentState, error) {
	d := &dec{b: payload}
	if k := d.u8(); k != chunkCVDHead {
		return nil, fmt.Errorf("durable: chunk kind %d, want CVD head", k)
	}
	st := &cvd.PersistentState{
		Name:    d.str(),
		Kind:    cvd.ModelKind(d.uvarint()),
		Schema:  d.schema(),
		NextVID: vgraph.VersionID(d.uvarint()),
		NextRID: vgraph.RecordID(d.uvarint()),
	}

	g := vgraph.New()
	nver := d.length(2)
	for i := 0; i < nver; i++ {
		id := vgraph.VersionID(d.uvarint())
		numRecords := d.varint()
		numAttrs := int(d.varint())
		if d.err != nil {
			return nil, d.err
		}
		n, err := g.AddVersion(id, numRecords)
		if err != nil {
			return nil, fmt.Errorf("durable: CVD %s: %w", st.Name, err)
		}
		n.NumAttrs = numAttrs
	}
	nedge := d.length(2)
	for i := 0; i < nedge; i++ {
		parent := vgraph.VersionID(d.uvarint())
		child := vgraph.VersionID(d.uvarint())
		weight := d.varint()
		commonAttrs := int(d.varint())
		if d.err != nil {
			return nil, d.err
		}
		if err := g.AddEdgeAttrs(parent, child, weight, commonAttrs); err != nil {
			return nil, fmt.Errorf("durable: CVD %s: %w", st.Name, err)
		}
	}
	st.Graph = g

	nmeta := d.length(2)
	st.Metas = make([]*cvd.VersionMeta, nmeta)
	for i := range st.Metas {
		m := &cvd.VersionMeta{ID: vgraph.VersionID(d.uvarint())}
		nparents := d.length(1)
		m.Parents = make([]vgraph.VersionID, nparents)
		for j := range m.Parents {
			m.Parents[j] = vgraph.VersionID(d.uvarint())
		}
		m.CheckoutAt = nanoTime(d.varint())
		m.CommitAt = nanoTime(d.varint())
		m.Message = d.str()
		m.Author = d.str()
		nattrs := d.length(1)
		m.Attributes = make([]cvd.AttrID, nattrs)
		for j := range m.Attributes {
			m.Attributes[j] = cvd.AttrID(d.uvarint())
		}
		m.NumRecords = d.varint()
		st.Metas[i] = m
	}

	nattr := d.length(2)
	st.Attrs = make([]cvd.Attribute, nattr)
	for i := range st.Attrs {
		st.Attrs[i] = cvd.Attribute{
			ID:   cvd.AttrID(d.uvarint()),
			Name: d.str(),
			Type: relstore.ValueType(d.uvarint()),
		}
	}

	ntab := d.length(1)
	st.Tables = make([]string, ntab)
	for i := range st.Tables {
		st.Tables[i] = d.str()
	}

	nparts := d.length(1)
	if nparts > 0 {
		st.Partitions = make([]string, nparts)
		for i := range st.Partitions {
			st.Partitions[i] = d.str()
		}
		nassign := d.length(2)
		st.PartitionOf = make(map[vgraph.VersionID]int, nassign)
		for i := 0; i < nassign; i++ {
			v := vgraph.VersionID(d.uvarint())
			st.PartitionOf[v] = int(d.uvarint())
		}
		st.Resident = make([]*recset.Set, nparts)
		for i := range st.Resident {
			st.Resident[i] = d.recset()
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: CVD head %s: %d trailing bytes", st.Name, len(d.b)-d.off)
	}
	return st, nil
}

// ---- catalog bands and recset runs ------------------------------------------

// encodeCatalogBand appends one band of the record catalog.
func encodeCatalogBand(e *enc, recs []cvd.PersistedRecord) {
	e.u8(chunkCatalogBand)
	e.uvarint(uint64(len(recs)))
	for _, rec := range recs {
		e.uvarint(uint64(rec.RID))
		e.row(rec.Row)
	}
}

// decodeCatalogBand appends the band's records to dst.
func decodeCatalogBand(dst []cvd.PersistedRecord, payload []byte) ([]cvd.PersistedRecord, error) {
	d := &dec{b: payload}
	if k := d.u8(); k != chunkCatalogBand {
		return nil, fmt.Errorf("durable: chunk kind %d, want catalog band", k)
	}
	n := d.length(2)
	for i := 0; i < n; i++ {
		dst = append(dst, cvd.PersistedRecord{RID: vgraph.RecordID(d.uvarint()), Row: d.row()})
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: catalog band: %d trailing bytes", len(payload)-d.off)
	}
	return dst, nil
}

// encodeRecsetRun appends one run of per-version record sets.
func encodeRecsetRun(e *enc, sets []cvd.VersionRecordSet) {
	e.u8(chunkRecsetRun)
	e.uvarint(uint64(len(sets)))
	for _, vs := range sets {
		e.uvarint(uint64(vs.Version))
		e.b = vs.Set.AppendBinary(e.b)
	}
}

// decodeRecsetRun appends the run's record sets to dst.
func decodeRecsetRun(dst []cvd.VersionRecordSet, payload []byte) ([]cvd.VersionRecordSet, error) {
	d := &dec{b: payload}
	if k := d.u8(); k != chunkRecsetRun {
		return nil, fmt.Errorf("durable: chunk kind %d, want record-set run", k)
	}
	n := d.length(2)
	for i := 0; i < n; i++ {
		dst = append(dst, cvd.VersionRecordSet{Version: vgraph.VersionID(d.uvarint()), Set: d.recset()})
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: record-set run: %d trailing bytes", len(payload)-d.off)
	}
	return dst, nil
}

// cvdLayout is the per-CVD section geometry in manifests and the snapshot
// stream: how many records and sets the chunks must reassemble.
type cvdLayout struct {
	name    string
	records int // catalog record count
	catBand int // catalog band height
	sets    int // version record-set count
	runLen  int // record sets per run chunk
}

func (e *enc) cvdLayout(l *cvdLayout) {
	e.str(l.name)
	e.uvarint(uint64(l.records))
	e.uvarint(uint64(l.catBand))
	e.uvarint(uint64(l.sets))
	e.uvarint(uint64(l.runLen))
}

func (d *dec) cvdLayout() cvdLayout {
	var l cvdLayout
	l.name = d.str()
	records := d.uvarint()
	catBand := d.uvarint()
	sets := d.uvarint()
	runLen := d.uvarint()
	if d.err != nil {
		return l
	}
	if records > 1<<40 || sets > 1<<40 {
		d.fail("CVD %s: implausible layout counts (%d records, %d sets)", l.name, records, sets)
		return l
	}
	if catBand == 0 || catBand > maxBandRows || runLen == 0 || runLen > maxBandRows {
		d.fail("CVD %s: implausible band geometry (%d, %d)", l.name, catBand, runLen)
		return l
	}
	l.records = int(records)
	l.catBand = int(catBand)
	l.sets = int(sets)
	l.runLen = int(runLen)
	return l
}

// layoutForCVD captures a CVD state's chunk geometry.
func layoutForCVD(st *cvd.PersistentState) cvdLayout {
	return cvdLayout{
		name:    st.Name,
		records: len(st.Records),
		catBand: defaultCatalogBand,
		sets:    len(st.RecordSets),
		runLen:  defaultRecsetRun,
	}
}

// cvdAssembler rebuilds a persisted CVD state from its head chunk plus
// catalog-band and recset-run chunks delivered in order.
type cvdAssembler struct {
	layout cvdLayout
	st     *cvd.PersistentState
}

func newCVDAssembler(layout cvdLayout, headPayload []byte) (*cvdAssembler, error) {
	st, err := decodeCVDHead(headPayload)
	if err != nil {
		return nil, err
	}
	if st.Name != layout.name {
		return nil, fmt.Errorf("durable: CVD head names %q, manifest says %q", st.Name, layout.name)
	}
	if layout.records > 0 {
		st.Records = make([]cvd.PersistedRecord, 0, layout.records)
	}
	if layout.sets > 0 {
		st.RecordSets = make([]cvd.VersionRecordSet, 0, layout.sets)
	}
	return &cvdAssembler{layout: layout, st: st}, nil
}

func (a *cvdAssembler) addCatalogBand(payload []byte) error {
	before := len(a.st.Records)
	if before >= a.layout.records {
		return fmt.Errorf("durable: CVD %s: more catalog bands than %d records need", a.layout.name, a.layout.records)
	}
	recs, err := decodeCatalogBand(a.st.Records, payload)
	if err != nil {
		return fmt.Errorf("durable: CVD %s catalog band at %d: %w", a.layout.name, before, err)
	}
	want := a.layout.catBand
	if before+want > a.layout.records {
		want = a.layout.records - before
	}
	if len(recs)-before != want {
		return fmt.Errorf("durable: CVD %s catalog band at %d: %d records, want %d", a.layout.name, before, len(recs)-before, want)
	}
	a.st.Records = recs
	return nil
}

func (a *cvdAssembler) addRecsetRun(payload []byte) error {
	before := len(a.st.RecordSets)
	if before >= a.layout.sets {
		return fmt.Errorf("durable: CVD %s: more record-set runs than %d sets need", a.layout.name, a.layout.sets)
	}
	sets, err := decodeRecsetRun(a.st.RecordSets, payload)
	if err != nil {
		return fmt.Errorf("durable: CVD %s record-set run at %d: %w", a.layout.name, before, err)
	}
	want := a.layout.runLen
	if before+want > a.layout.sets {
		want = a.layout.sets - before
	}
	if len(sets)-before != want {
		return fmt.Errorf("durable: CVD %s record-set run at %d: %d sets, want %d", a.layout.name, before, len(sets)-before, want)
	}
	a.st.RecordSets = sets
	return nil
}

func (a *cvdAssembler) finish() (*cvd.PersistentState, error) {
	if got := len(a.st.Records); got != a.layout.records {
		return nil, fmt.Errorf("durable: CVD %s: assembled %d of %d catalog records", a.layout.name, got, a.layout.records)
	}
	if got := len(a.st.RecordSets); got != a.layout.sets {
		return nil, fmt.Errorf("durable: CVD %s: assembled %d of %d record sets", a.layout.name, got, a.layout.sets)
	}
	return a.st, nil
}
