package durable

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// The fsck "teeth" tests: each one injects a precise, realistic corruption
// into a real data directory and proves Scrub detects it — and repairs it
// exactly when repair is safe.

// buildScrubDir creates a closed data directory with one completed
// checkpoint and a non-empty active WAL segment.
func buildScrubDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(0, 42)
	if err := s.LogInit("cvd", 0, walSchema(), walRows(3), "init", "alice", at); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	snap := &Snapshot{DBName: "db", Tables: []*relstore.Table{randomTable(t, rng, "a", 64)}}
	if _, err := s.CheckpointSync(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.LogCommit("cvd", []vgraph.VersionID{1}, walRows(2), walSchema(), "post-ckpt", "bob", at.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

type packFrame struct {
	off     int64 // frame start (hash field)
	n       uint32
	h       ChunkHash
	payload []byte
}

// readPackFrames parses every frame of a pack file.
func readPackFrames(t *testing.T, path string) []packFrame {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var frames []packFrame
	off := int64(packHeaderSize)
	for off < int64(len(data)) {
		var f packFrame
		f.off = off
		copy(f.h[:], data[off:off+16])
		f.n = binary.LittleEndian.Uint32(data[off+16 : off+20])
		f.payload = data[off+packFrameOverhead : off+packFrameOverhead+int64(f.n)]
		frames = append(frames, f)
		off += packFrameOverhead + int64(f.n)
	}
	return frames
}

func scrubKinds(rep *ScrubReport) map[IssueKind]int {
	kinds := make(map[IssueKind]int)
	for _, is := range rep.Issues {
		kinds[is.Kind]++
	}
	return kinds
}

func TestScrubHealthyDir(t *testing.T) {
	dir := buildScrubDir(t)
	rep, err := Scrub(dir, ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("healthy directory reported issues: %+v", rep.Issues)
	}
	if rep.ChunksChecked == 0 || rep.ManifestsChecked == 0 || rep.SegmentsChecked == 0 {
		t.Fatalf("scrub walked nothing: %+v", rep)
	}
}

// TestScrubFlippedLiveChunk: silent bit rot inside a live chunk. The flip is
// paired with a recomputed frame CRC, so only the content-hash check can
// catch it — the exact gap a CRC-only scrubber would miss. Detection is
// mandatory; repair is impossible (the payload is gone) so the issue must
// stay unrepaired and name the affected epoch.
func TestScrubFlippedLiveChunk(t *testing.T) {
	dir := buildScrubDir(t)
	packPath := filepath.Join(dir, PackFile)
	frames := readPackFrames(t, packPath)
	if len(frames) < 2 {
		t.Fatalf("fixture pack has %d frames, want >= 2", len(frames))
	}
	f, err := os.OpenFile(packPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	target := frames[0]
	flipped := append([]byte(nil), target.payload...)
	flipped[len(flipped)/2] ^= 0x01
	if _, err := f.WriteAt(flipped, target.off+packFrameOverhead); err != nil {
		t.Fatal(err)
	}
	var crcField [4]byte
	binary.LittleEndian.PutUint32(crcField[:], crc32.ChecksumIEEE(flipped))
	if _, err := f.WriteAt(crcField[:], target.off+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, repair := range []bool{false, true} {
		rep, err := Scrub(dir, ScrubOptions{Repair: repair})
		if err != nil {
			t.Fatal(err)
		}
		kinds := scrubKinds(rep)
		if kinds[IssueCorruptChunk] == 0 {
			t.Fatalf("repair=%v: flipped live chunk not detected: %+v", repair, rep.Issues)
		}
		found := false
		for _, is := range rep.Issues {
			if is.Kind == IssueCorruptChunk && len(is.Epochs) > 0 {
				found = true
				if is.Repaired {
					t.Fatalf("a corrupt LIVE chunk claims to be repaired: %+v", is)
				}
			}
		}
		if !found {
			t.Fatalf("repair=%v: no corrupt-chunk issue names the affected epoch: %+v", repair, rep.Issues)
		}
		if rep.Unrepaired() == 0 {
			t.Fatalf("repair=%v: irrecoverable rot reported as fully repaired", repair)
		}
	}
}

// TestScrubPlainBitFlip: the classic single bit flip (no CRC fix-up). The
// frame CRC catches it; mid-file position must classify as corruption, not a
// torn tail.
func TestScrubPlainBitFlip(t *testing.T) {
	dir := buildScrubDir(t)
	packPath := filepath.Join(dir, PackFile)
	frames := readPackFrames(t, packPath)
	if len(frames) < 2 {
		t.Fatalf("fixture pack has %d frames, want >= 2", len(frames))
	}
	f, err := os.OpenFile(packPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	target := frames[0] // mid-file: later frames follow
	b := []byte{target.payload[0] ^ 0x80}
	if _, err := f.WriteAt(b, target.off+packFrameOverhead); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := Scrub(dir, ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := scrubKinds(rep)
	if kinds[IssueCorruptChunk] == 0 {
		t.Fatalf("mid-file bit flip not detected as corrupt chunk: %+v", rep.Issues)
	}
	if kinds[IssueTornPackTail] != 0 {
		t.Fatalf("mid-file bit flip misclassified as torn tail: %+v", rep.Issues)
	}
}

// TestScrubDanglingRef: a chunk the manifest references vanishes from the
// pack (here: the pack is rewritten without its first frame — the shape left
// by a bad compaction or an external truncate+rewrite).
func TestScrubDanglingRef(t *testing.T) {
	dir := buildScrubDir(t)
	packPath := filepath.Join(dir, PackFile)
	data, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	frames := readPackFrames(t, packPath)
	if len(frames) < 2 {
		t.Fatalf("fixture pack has %d frames, want >= 2", len(frames))
	}
	// Splice out frame 0.
	cut := frames[1].off
	out := append(append([]byte(nil), data[:packHeaderSize]...), data[cut:]...)
	if err := os.WriteFile(packPath, out, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(dir, ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := scrubKinds(rep)
	if kinds[IssueDanglingRef] == 0 {
		t.Fatalf("dangling manifest reference not detected: %+v", rep.Issues)
	}
}

// TestScrubTornWALTail: a crashed append leaves half a record at the end of
// the active segment. Detection is mandatory; repair (truncating the
// unacknowledged bytes) is safe, after which the directory must reopen with
// every committed record intact.
func TestScrubTornWALTail(t *testing.T) {
	dir := buildScrubDir(t)
	segs, err := listWALSegments(vfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	active := segs[len(segs)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Record header claiming 1000 payload bytes, followed by only 6.
	var tail [8 + 6]byte
	binary.LittleEndian.PutUint32(tail[:4], 1000)
	binary.LittleEndian.PutUint32(tail[4:8], 0xdeadbeef)
	if _, err := f.Write(tail[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := Scrub(dir, ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if scrubKinds(rep)[IssueTornWALTail] == 0 {
		t.Fatalf("torn active WAL tail not detected: %+v", rep.Issues)
	}

	rep, err = Scrub(dir, ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if scrubKinds(rep)[IssueTornWALTail] == 0 {
		t.Fatalf("torn tail vanished from repair report: %+v", rep.Issues)
	}
	if rep.Unrepaired() != 0 {
		t.Fatalf("torn active tail should repair cleanly: %+v", rep.Issues)
	}
	s, _, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening repaired directory: %v", err)
	}
	var commits int
	if _, err := s.ReplayWAL(func(r *Record) error {
		commits++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if commits != 1 {
		t.Fatalf("replayed %d records after repair, want 1 (the post-checkpoint commit)", commits)
	}
}

// TestScrubTornPackTail: garbage appended to the pack (a crashed chunk
// append) is classified as a torn tail and truncated away on repair.
func TestScrubTornPackTail(t *testing.T) {
	dir := buildScrubDir(t)
	packPath := filepath.Join(dir, PackFile)
	f, err := os.OpenFile(packPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half a frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := Scrub(dir, ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if scrubKinds(rep)[IssueTornPackTail] == 0 {
		t.Fatalf("torn pack tail not detected: %+v", rep.Issues)
	}
	if rep.Unrepaired() != 0 {
		t.Fatalf("torn pack tail should repair cleanly: %+v", rep.Issues)
	}
	if _, err := Scrub(dir, ScrubOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestScrubManifestFallback: the newest of two retained manifests is
// corrupted. Scrub must fall back to the older intact one on repair —
// quarantining the damaged manifest and the WAL segments stranded by the
// fallback — and report exactly which epochs were lost. The directory must
// open again afterwards.
func TestScrubManifestFallback(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetention(4)
	at := time.Unix(0, 42)
	if err := s.LogInit("cvd", 0, walSchema(), walRows(3), "init", "alice", at); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := s.CheckpointSync(&Snapshot{DBName: "db", Tables: []*relstore.Table{randomTable(t, rng, "a", 64)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointSync(&Snapshot{DBName: "db", Tables: []*relstore.Table{randomTable(t, rng, "b", 64)}}); err != nil {
		t.Fatal(err)
	}
	epochs := s.RetainedEpochs()
	if len(epochs) < 2 {
		t.Fatalf("fixture retained %d epochs, want >= 2", len(epochs))
	}
	newest := epochs[len(epochs)-1]
	older := epochs[len(epochs)-2]
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the newest manifest's payload.
	manPath := filepath.Join(dir, ManifestFileName(newest))
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(manPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(dir, ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if scrubKinds(rep)[IssueCorruptManifest] == 0 {
		t.Fatalf("corrupt newest manifest not detected: %+v", rep.Issues)
	}

	rep, err = Scrub(dir, ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	var lostReported bool
	for _, is := range rep.Issues {
		if is.Repaired {
			for _, e := range is.Epochs {
				if e == newest {
					lostReported = true
				}
			}
		}
	}
	if !lostReported {
		t.Fatalf("fallback repair does not report epoch %d as lost: %+v", newest, rep.Issues)
	}
	if scrubKinds(rep)[IssueUnopenable] != 0 {
		t.Fatalf("directory still unopenable after fallback repair: %+v", rep.Issues)
	}
	s2, res, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening after fallback repair: %v", err)
	}
	defer s2.Close()
	if s2.Epoch() != older {
		t.Fatalf("reopened at epoch %d, want fallback epoch %d", s2.Epoch(), older)
	}
	if res.Snapshot == nil {
		t.Fatal("fallback open recovered no snapshot")
	}
}

// TestScrubRefusesLiveDir: a directory held open by a live store must refuse
// to scrub rather than racing its writes.
func TestScrubRefusesLiveDir(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Scrub(dir, ScrubOptions{}); err == nil {
		t.Fatal("scrub of a locked live directory succeeded")
	}
}
