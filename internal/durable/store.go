package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// Store manages one data directory: the snapshot file plus the commit WAL.
// It is safe for concurrent use; appends serialize behind an internal mutex.
//
// Epoch discipline: the snapshot records the WAL epoch that continues it.
// Checkpoint first writes the new snapshot (epoch+1, atomic rename), then
// resets the WAL to the new epoch. A crash between the two leaves a WAL whose
// epoch is older than the snapshot's; Open detects that and discards the
// stale WAL — everything in it is already folded into the snapshot.
type Store struct {
	dir string

	mu    sync.Mutex
	wal   *os.File
	lock  *os.File // flock-held lock file fencing other processes
	epoch uint64
}

// LockFile is the advisory lock file inside a data directory: Open takes an
// exclusive flock on it, so a second engine (same process or another one)
// opening the directory fails loudly instead of interleaving WAL appends
// with the first. The kernel releases the lock automatically when the
// holding process dies.
const LockFile = "lock.orph"

// lockDir acquires the directory's advisory lock, non-blocking.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: data directory %s is locked by another engine: %w", dir, err)
	}
	return f, nil
}

// OpenResult is what Open recovered from a data directory: the snapshot (nil
// when none was ever written) and recovery diagnostics. The WAL records that
// continue the snapshot are streamed separately through Store.ReplayWAL so a
// large log is never materialized whole.
type OpenResult struct {
	Snapshot *Snapshot
	// TornTail reports whether a partially-written WAL record (a crashed
	// append) was found and truncated away.
	TornTail bool
	// StaleWAL reports whether a WAL older than the snapshot was discarded
	// (a crash between checkpoint's snapshot rename and WAL reset).
	StaleWAL bool
}

// Open opens (creating if needed) a data directory, loads its snapshot, and
// recovers the WAL's framing: a torn tail from a crashed append is truncated
// so the file ends on a record boundary. Call ReplayWAL next to stream the
// surviving records; the returned store is ready for appends.
func Open(dir string) (*Store, *OpenResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	res := &OpenResult{}
	snap, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	res.Snapshot = snap
	var snapEpoch uint64
	if snap != nil {
		snapEpoch = snap.Epoch
	}

	walPath := filepath.Join(dir, WALFile)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	s := &Store{dir: dir, wal: f, lock: lock, epoch: snapEpoch}
	fail := func(err error) (*Store, *OpenResult, error) {
		f.Close()
		lock.Close()
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if info.Size() < walHeaderSize {
		// Fresh (or never-completed) WAL: write a clean header at the
		// snapshot's epoch.
		if err := writeWALHeader(f, snapEpoch); err != nil {
			return fail(err)
		}
		return s, res, nil
	}
	walEpoch, err := readWALHeader(f)
	if err != nil {
		return fail(err)
	}
	switch {
	case walEpoch < snapEpoch:
		// Crash between checkpoint's snapshot rename and WAL reset: the WAL
		// predates the snapshot, so everything in it is already folded in.
		res.StaleWAL = true
		if err := writeWALHeader(f, snapEpoch); err != nil {
			return fail(err)
		}
	case walEpoch > snapEpoch:
		return fail(fmt.Errorf("durable: WAL epoch %d is newer than snapshot epoch %d — refusing to open %s", walEpoch, snapEpoch, dir))
	default:
		validEnd, torn, err := scanWAL(f)
		if err != nil {
			return fail(err)
		}
		if torn {
			if err := f.Truncate(validEnd); err != nil {
				return fail(err)
			}
			if err := f.Sync(); err != nil {
				return fail(err)
			}
		}
		res.TornTail = torn
	}
	return s, res, nil
}

// ReplayWAL streams every record of the (already recovered) WAL to apply in
// append order, one decoded record at a time. Call it once, right after
// Open and before any appends.
func (s *Store) ReplayWAL(apply func(*Record) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, fmt.Errorf("durable: store %s is closed", s.dir)
	}
	return replayWAL(s.wal, apply)
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Epoch returns the current snapshot/WAL generation.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Close closes the WAL file and releases the directory lock. The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.wal != nil {
		err = s.wal.Close()
		s.wal = nil
	}
	if s.lock != nil {
		s.lock.Close() // closing drops the flock
		s.lock = nil
	}
	return err
}

// append frames, appends, and fsyncs one record.
func (s *Store) append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("durable: store %s is closed", s.dir)
	}
	return appendRecord(s.wal, rec)
}

// LogInit journals the creation of a CVD with its initial rows.
func (s *Store) LogInit(name string, kind cvd.ModelKind, schema relstore.Schema, rows []relstore.Row, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpInit, CVD: name, Kind: kind, Schema: schema, Rows: rows, Message: msg, Author: author, At: at})
}

// LogDrop journals dropping a CVD.
func (s *Store) LogDrop(name string) error {
	return s.append(&Record{Op: OpDrop, CVD: name})
}

// LogCommit implements cvd.Journal: it journals one committed version with
// its staged rows and row schema (which also carries schema evolution).
func (s *Store) LogCommit(cvdName string, parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpCommit, CVD: cvdName, Parents: parents, Rows: rows, Schema: rowSchema, Message: msg, Author: author, At: at})
}

// Checkpoint folds the WAL into a fresh snapshot: the snapshot is written
// atomically under the next epoch, then the WAL is reset (truncated to a
// clean header) at that same epoch. The caller must pass a snapshot that
// reflects every operation logged so far — the engine holds its locks across
// building snap and calling Checkpoint.
func (s *Store) Checkpoint(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("durable: store %s is closed", s.dir)
	}
	snap.Epoch = s.epoch + 1
	if err := WriteSnapshotFile(filepath.Join(s.dir, SnapshotFile), snap); err != nil {
		return err
	}
	if err := writeWALHeader(s.wal, snap.Epoch); err != nil {
		// The snapshot is already on disk at the new epoch but the WAL still
		// carries the old one; anything appended to it now would be discarded
		// as stale on the next open. Poison the store so no later commit can
		// claim durability it does not have — recovery from the snapshot is
		// intact, and reopening the directory heals the WAL.
		s.wal.Close()
		s.wal = nil
		return fmt.Errorf("durable: checkpoint of %s wrote the snapshot but failed to reset the WAL; store disabled until reopen: %w", s.dir, err)
	}
	s.epoch = snap.Epoch
	return nil
}

// SaveSnapshot writes a one-shot snapshot (epoch 0, no WAL) into dir,
// creating it if needed — the engine's Save-to-a-new-directory export path. A
// directory that already holds a WAL is refused: overwriting its snapshot
// with epoch 0 would desynchronize the epoch pairing.
func SaveSnapshot(dir string, snap *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, WALFile)); err == nil {
		return fmt.Errorf("durable: %s is a live data directory (has a WAL); use Checkpoint instead of Save", dir)
	}
	snap.Epoch = 0
	return WriteSnapshotFile(filepath.Join(dir, SnapshotFile), snap)
}
