package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// Store manages one data directory: the snapshot file plus the commit WAL.
// It is safe for concurrent use; appends coalesce through a leader/follower
// group-commit queue (see append) while checkpoints and replay serialize
// behind the store mutex.
//
// Epoch discipline: the snapshot records the WAL epoch that continues it.
// Checkpoint first writes the new snapshot (epoch+1, atomic rename), then
// resets the WAL to the new epoch. A crash between the two leaves a WAL whose
// epoch is older than the snapshot's; Open detects that and discards the
// stale WAL — everything in it is already folded into the snapshot.
type Store struct {
	dir string

	// mu guards the WAL handle, epoch, end-of-log offset, and poison state,
	// and serializes every disk operation (batch writes, checkpoints, replay).
	mu       sync.Mutex
	wal      walFile
	lock     *os.File // flock-held lock file fencing other processes
	epoch    uint64
	walSize  int64 // offset just past the last durable record (header included)
	poisoned error // sticky fatal error: the log tail state is unknown

	// gcMu guards the open group-commit batch. It is never held across disk
	// I/O: appenders join the pending batch under gcMu, then the batch leader
	// takes mu for the single write+fsync.
	gcMu    sync.Mutex
	pending *walBatch
	gc      GroupCommitConfig
}

// walFile is the subset of *os.File the WAL code uses. It exists so tests can
// wrap the real file with a fault-injecting implementation and prove the
// failure paths (short writes, failed fsyncs) keep the log recoverable.
type walFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// DefaultGroupCommitBatch is the frames-per-fsync cap used when group commit
// is not configured explicitly.
const DefaultGroupCommitBatch = 128

// GroupCommitConfig tunes the leader/follower commit batching of append.
type GroupCommitConfig struct {
	// MaxBatch caps how many records share one write+fsync. 1 disables
	// batching (every record syncs alone — the pre-group-commit behaviour);
	// <= 0 selects DefaultGroupCommitBatch.
	MaxBatch int
	// MaxDelay is how long a batch leader waits for followers once the disk
	// is free. 0 (the default) never waits: batching then arises naturally
	// from appends that queue up while the previous batch is fsyncing, adding
	// no latency to uncontended commits.
	MaxDelay time.Duration
}

func (c GroupCommitConfig) normalized() GroupCommitConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultGroupCommitBatch
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	return c
}

// SetGroupCommit configures commit batching. It may be called at any time;
// the configuration applies to batches formed after the call.
func (s *Store) SetGroupCommit(cfg GroupCommitConfig) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	s.gc = cfg.normalized()
}

// walBatch is one group-commit unit: the frames of every record admitted to
// it, written and fsynced together by the batch leader.
type walBatch struct {
	frames [][]byte
	full   chan struct{} // closed when the batch reaches MaxBatch
	done   chan struct{} // closed by the leader once err is set
	err    error
}

// LockFile is the advisory lock file inside a data directory: Open takes an
// exclusive flock on it, so a second engine (same process or another one)
// opening the directory fails loudly instead of interleaving WAL appends
// with the first. The kernel releases the lock automatically when the
// holding process dies.
const LockFile = "lock.orph"

// lockDir acquires the directory's advisory lock, non-blocking.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: data directory %s is locked by another engine: %w", dir, err)
	}
	return f, nil
}

// OpenResult is what Open recovered from a data directory: the snapshot (nil
// when none was ever written) and recovery diagnostics. The WAL records that
// continue the snapshot are streamed separately through Store.ReplayWAL so a
// large log is never materialized whole.
type OpenResult struct {
	Snapshot *Snapshot
	// TornTail reports whether a partially-written WAL record (a crashed
	// append) was found and truncated away.
	TornTail bool
	// StaleWAL reports whether a WAL older than the snapshot was discarded
	// (a crash between checkpoint's snapshot rename and WAL reset).
	StaleWAL bool
}

// Open opens (creating if needed) a data directory, loads its snapshot, and
// recovers the WAL's framing: a torn tail from a crashed append is truncated
// so the file ends on a record boundary. Call ReplayWAL next to stream the
// surviving records; the returned store is ready for appends.
func Open(dir string) (*Store, *OpenResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	res := &OpenResult{}
	snap, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	res.Snapshot = snap
	var snapEpoch uint64
	if snap != nil {
		snapEpoch = snap.Epoch
	}

	walPath := filepath.Join(dir, WALFile)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	s := &Store{dir: dir, wal: f, lock: lock, epoch: snapEpoch, walSize: walHeaderSize, gc: GroupCommitConfig{}.normalized()}
	fail := func(err error) (*Store, *OpenResult, error) {
		f.Close()
		lock.Close()
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if info.Size() < walHeaderSize {
		// Fresh (or never-completed) WAL: write a clean header at the
		// snapshot's epoch.
		if err := writeWALHeader(f, snapEpoch); err != nil {
			return fail(err)
		}
		return s, res, nil
	}
	walEpoch, err := readWALHeader(f)
	if err != nil {
		return fail(err)
	}
	switch {
	case walEpoch < snapEpoch:
		// Crash between checkpoint's snapshot rename and WAL reset: the WAL
		// predates the snapshot, so everything in it is already folded in.
		res.StaleWAL = true
		if err := writeWALHeader(f, snapEpoch); err != nil {
			return fail(err)
		}
	case walEpoch > snapEpoch:
		return fail(fmt.Errorf("durable: WAL epoch %d is newer than snapshot epoch %d — refusing to open %s", walEpoch, snapEpoch, dir))
	default:
		validEnd, torn, err := scanWAL(f)
		if err != nil {
			return fail(err)
		}
		if torn {
			if err := f.Truncate(validEnd); err != nil {
				return fail(err)
			}
			if err := f.Sync(); err != nil {
				return fail(err)
			}
		}
		s.walSize = validEnd
		res.TornTail = torn
	}
	return s, res, nil
}

// ReplayWAL streams every record of the (already recovered) WAL to apply in
// append order, one decoded record at a time. Call it once, right after
// Open and before any appends.
func (s *Store) ReplayWAL(apply func(*Record) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, s.closedErr()
	}
	return replayWAL(s.wal, apply)
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Epoch returns the current snapshot/WAL generation.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Close closes the WAL file and releases the directory lock. The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.wal != nil {
		err = s.wal.Close()
		s.wal = nil
	}
	if s.lock != nil {
		s.lock.Close() // closing drops the flock
		s.lock = nil
	}
	return err
}

// closedErr distinguishes a poisoned store (failure path disabled it) from a
// plainly closed one; callers hold s.mu.
func (s *Store) closedErr() error {
	if s.poisoned != nil {
		return s.poisoned
	}
	return fmt.Errorf("durable: store %s is closed", s.dir)
}

// append frames one record and makes it durable through the group-commit
// queue: the first appender to find no open batch becomes the leader — it
// waits for the disk to be free (and optionally MaxDelay for followers),
// seals the batch, and performs one write+fsync for every record in it.
// Appenders that arrive while a batch is open join it and wait for the
// leader's verdict. Uncontended appends still sync immediately: with
// MaxDelay 0 the leader never waits for company, so batching only arises
// from genuine concurrency.
func (s *Store) append(rec *Record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	s.gcMu.Lock()
	cfg := s.gc
	if b := s.pending; b != nil {
		// Follower: join the open batch and wait for its leader.
		b.frames = append(b.frames, frame)
		if len(b.frames) >= cfg.MaxBatch {
			// Full: stop admitting followers and wake a delaying leader.
			s.pending = nil
			close(b.full)
		}
		s.gcMu.Unlock()
		<-b.done
		return b.err
	}
	b := &walBatch{frames: [][]byte{frame}, full: make(chan struct{}), done: make(chan struct{})}
	if cfg.MaxBatch > 1 {
		s.pending = b
	}
	s.gcMu.Unlock()

	// Leader: wait for the disk (the previous batch's fsync, a checkpoint, or
	// a replay) — followers accumulate into b meanwhile.
	s.mu.Lock()
	if cfg.MaxDelay > 0 && cfg.MaxBatch > 1 {
		t := time.NewTimer(cfg.MaxDelay)
		select {
		case <-b.full:
		case <-t.C:
		}
		t.Stop()
	}
	// Seal the batch: after this no appender can join it.
	s.gcMu.Lock()
	if s.pending == b {
		s.pending = nil
	}
	frames := b.frames
	s.gcMu.Unlock()

	err = s.writeFramesLocked(frames)
	s.mu.Unlock()
	b.err = err
	close(b.done)
	return err
}

// writeFramesLocked appends the sealed batch's frames with one write and one
// fsync; the caller holds s.mu. On any write or sync failure the log tail
// past the pre-append offset is garbage: it is truncated back (and the
// truncation fsynced) so the next append — and recovery — continue from the
// last durable record instead of burying later commits behind torn bytes. If
// the truncation itself fails the tail state is unknown and the store is
// poisoned: every later operation fails until the directory is reopened.
func (s *Store) writeFramesLocked(frames [][]byte) error {
	if s.wal == nil {
		return s.closedErr()
	}
	var buf []byte
	if len(frames) == 1 {
		buf = frames[0]
	} else {
		total := 0
		for _, f := range frames {
			total += len(f)
		}
		buf = make([]byte, 0, total)
		for _, f := range frames {
			buf = append(buf, f...)
		}
	}
	start := s.walSize
	_, err := s.wal.WriteAt(buf, start)
	if err == nil {
		err = s.wal.Sync()
	}
	if err == nil {
		s.walSize = start + int64(len(buf))
		return nil
	}
	// Failure path: remove whatever landed past the last durable record.
	if terr := s.truncateTailLocked(start); terr != nil {
		s.poisoned = fmt.Errorf("durable: WAL append to %s failed (%v) and truncating the torn tail failed too (%v); store disabled until reopen", s.dir, err, terr)
		s.wal.Close()
		s.wal = nil
		return s.poisoned
	}
	return fmt.Errorf("durable: WAL append to %s failed; log truncated back to the last durable record: %w", s.dir, err)
}

// truncateTailLocked cuts the WAL back to off and makes the cut durable.
func (s *Store) truncateTailLocked(off int64) error {
	if err := s.wal.Truncate(off); err != nil {
		return err
	}
	return s.wal.Sync()
}

// LogInit journals the creation of a CVD with its initial rows.
func (s *Store) LogInit(name string, kind cvd.ModelKind, schema relstore.Schema, rows []relstore.Row, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpInit, CVD: name, Kind: kind, Schema: schema, Rows: rows, Message: msg, Author: author, At: at})
}

// LogDrop journals dropping a CVD.
func (s *Store) LogDrop(name string) error {
	return s.append(&Record{Op: OpDrop, CVD: name})
}

// LogCommit implements cvd.Journal: it journals one committed version with
// its staged rows and row schema (which also carries schema evolution).
func (s *Store) LogCommit(cvdName string, parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpCommit, CVD: cvdName, Parents: parents, Rows: rows, Schema: rowSchema, Message: msg, Author: author, At: at})
}

// Checkpoint folds the WAL into a fresh snapshot: the snapshot is written
// atomically under the next epoch, then the WAL is reset (truncated to a
// clean header) at that same epoch. The caller must pass a snapshot that
// reflects every operation logged so far — the engine holds its locks across
// building snap and calling Checkpoint.
func (s *Store) Checkpoint(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return s.closedErr()
	}
	snap.Epoch = s.epoch + 1
	if err := WriteSnapshotFile(filepath.Join(s.dir, SnapshotFile), snap); err != nil {
		return err
	}
	if err := writeWALHeader(s.wal, snap.Epoch); err != nil {
		// The snapshot is already on disk at the new epoch but the WAL still
		// carries the old one; anything appended to it now would be discarded
		// as stale on the next open. Poison the store so no later commit can
		// claim durability it does not have — recovery from the snapshot is
		// intact, and reopening the directory heals the WAL.
		s.poisoned = fmt.Errorf("durable: checkpoint of %s wrote the snapshot but failed to reset the WAL; store disabled until reopen", s.dir)
		s.wal.Close()
		s.wal = nil
		return fmt.Errorf("durable: checkpoint of %s wrote the snapshot but failed to reset the WAL; store disabled until reopen: %w", s.dir, err)
	}
	s.epoch = snap.Epoch
	s.walSize = walHeaderSize
	return nil
}

// SaveSnapshot writes a one-shot snapshot (epoch 0, no WAL) into dir,
// creating it if needed — the engine's Save-to-a-new-directory export path.
// The directory's advisory lock is held for the write so a concurrent engine
// cannot open the directory mid-export. A directory that already holds a WAL
// is refused: overwriting its snapshot with epoch 0 would desynchronize the
// epoch pairing.
func SaveSnapshot(dir string, snap *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Check for a WAL before taking the flock: saving into a live, currently
	// open data directory then fails with this message instead of the lock
	// contention one. The post-lock write is still fenced either way.
	if _, err := os.Stat(filepath.Join(dir, WALFile)); err == nil {
		return fmt.Errorf("durable: %s is a live data directory (has a WAL); use Checkpoint instead of Save", dir)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return err
	}
	defer lock.Close()
	snap.Epoch = 0
	return WriteSnapshotFile(filepath.Join(dir, SnapshotFile), snap)
}
