package durable

import (
	"fmt"
	"hash/maphash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cvd"
	"repro/internal/parallel"
	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// Store manages one data directory: the chunk pack, the retained checkpoint
// manifests, and the epoch-named commit WAL segments. It is safe for
// concurrent use; appends coalesce through a leader/follower group-commit
// queue (see append) while checkpoints run in two halves — BeginCheckpoint
// seals the active WAL segment and starts a fresh one under the store mutex
// (cheap, done inside the engine's commit fence), then CompleteCheckpoint
// encodes, hashes, and writes the chunks outside the mutex while commits keep
// flowing into the new segment.
//
// Epoch discipline: the active WAL segment's epoch always equals the epoch
// the NEXT manifest will be written under. A manifest at epoch M covers
// exactly the state of every segment with epoch < M, so recovery loads the
// newest manifest and replays the segments at or after its epoch, in order.
// Segments older than the newest manifest are deleted as stale on open and
// after every completed checkpoint.
type Store struct {
	dir  string
	fsys vfs.FS // every byte of durable I/O goes through this

	// mu guards the WAL handle, epochs, end-of-log offset, poison state, the
	// sealed-segment list, and the manifest map, and serializes every WAL disk
	// operation (batch writes, sealing, replay).
	mu         sync.Mutex
	wal        vfs.File
	walPath    string
	lock       io.Closer // held advisory lock fencing other processes
	epoch      uint64    // active WAL segment epoch == next manifest epoch
	base       uint64    // newest durable manifest epoch (or flat-snapshot epoch)
	walSize    int64     // offset just past the last durable record (header included)
	poisoned   error     // sticky fatal error: the log tail state is unknown
	sealed     []walSegment
	ckptActive bool
	manifests  map[uint64]*manifest
	retain     int
	gens       map[string]uint64 // per-CVD drop generation (see LogDrop)

	// gcMu guards the open group-commit batch. It is never held across disk
	// I/O: appenders join the pending batch under gcMu, then the batch leader
	// takes mu for the single write+fsync.
	gcMu    sync.Mutex
	pending *walBatch
	gc      GroupCommitConfig

	pack    *chunkPack
	workers int // checkpoint encode parallelism; <= 0 selects GOMAXPROCS

	// Process-local fingerprint cache: full-band content fingerprints from the
	// previous checkpoint mapped to the chunk hash they produced, so an
	// unchanged interior band skips encoding and hashing entirely. The maphash
	// seeds are fresh per open — the cache never persists, and a miss only
	// costs a re-encode. Accessed only inside a running checkpoint (serialized
	// by ckptActive).
	fpSeed1, fpSeed2 maphash.Seed
	fpCache          map[string]fpEntry
}

// fpEntry is one fingerprint-cache slot: the band's 128-bit content
// fingerprint and the chunk hash it encoded to last checkpoint.
type fpEntry struct {
	fp   [2]uint64
	hash ChunkHash
}

// walSegment names one on-disk WAL segment.
type walSegment struct {
	epoch uint64
	path  string
}

// DefaultGroupCommitBatch is the frames-per-fsync cap used when group commit
// is not configured explicitly.
const DefaultGroupCommitBatch = 128

// DefaultCheckpointRetention is how many checkpoint manifests a store keeps
// for point-in-time restore when not configured explicitly.
const DefaultCheckpointRetention = 8

// packCompactMinDead is the minimum dead-byte volume before retention GC
// rewrites the chunk pack.
const packCompactMinDead = 4 << 20

// GroupCommitConfig tunes the leader/follower commit batching of append.
type GroupCommitConfig struct {
	// MaxBatch caps how many records share one write+fsync. 1 disables
	// batching (every record syncs alone — the pre-group-commit behaviour);
	// <= 0 selects DefaultGroupCommitBatch.
	MaxBatch int
	// MaxDelay is how long a batch leader waits for followers once the disk
	// is free. 0 (the default) never waits: batching then arises naturally
	// from appends that queue up while the previous batch is fsyncing, adding
	// no latency to uncontended commits.
	MaxDelay time.Duration
}

func (c GroupCommitConfig) normalized() GroupCommitConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultGroupCommitBatch
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	return c
}

// SetGroupCommit configures commit batching. It may be called at any time;
// the configuration applies to batches formed after the call.
func (s *Store) SetGroupCommit(cfg GroupCommitConfig) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	s.gc = cfg.normalized()
}

// SetRetention sets how many checkpoint manifests to keep (at least 1). It
// applies to the garbage collection after the next completed checkpoint.
func (s *Store) SetRetention(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retain = n
}

// SetWorkers sets the checkpoint encode parallelism; n <= 0 selects
// GOMAXPROCS.
func (s *Store) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers = n
}

// walBatch is one group-commit unit: the frames of every record admitted to
// it, written and fsynced together by the batch leader.
type walBatch struct {
	frames [][]byte
	full   chan struct{} // closed when the batch reaches MaxBatch
	done   chan struct{} // closed by the leader once err is set
	err    error
}

// LockFile is the advisory lock file inside a data directory: Open takes an
// exclusive flock on it, so a second engine (same process or another one)
// opening the directory fails loudly instead of interleaving WAL appends
// with the first. The kernel releases the lock automatically when the
// holding process dies.
const LockFile = "lock.orph"

// lockDir acquires the directory's advisory lock, non-blocking.
func lockDir(fsys vfs.FS, dir string) (io.Closer, error) {
	lock, err := fsys.Lock(filepath.Join(dir, LockFile))
	if err != nil {
		if os.IsNotExist(err) || os.IsPermission(err) {
			return nil, err
		}
		return nil, fmt.Errorf("durable: data directory %s is locked by another engine: %w", dir, err)
	}
	return lock, nil
}

// OpenResult is what Open recovered from a data directory: the snapshot (nil
// when none was ever written) and recovery diagnostics. The WAL records that
// continue the snapshot are streamed separately through Store.ReplayWAL so a
// large log is never materialized whole.
type OpenResult struct {
	Snapshot *Snapshot
	// TornTail reports whether a partially-written WAL record (a crashed
	// append) was found and truncated away.
	TornTail bool
	// StaleWAL reports whether WAL segments older than the newest manifest
	// were discarded (their content is already folded into the checkpoint).
	StaleWAL bool
}

// removeLeftoverTemps clears crash debris: temp files whose rename never
// happened.
func removeLeftoverTemps(fsys vfs.FS, dir string) {
	for _, pat := range []string{".snapshot-*.tmp", ".manifest-*.tmp", ".chunks-*.tmp"} {
		matches, _ := vfs.Glob(fsys, dir, pat)
		for _, m := range matches {
			fsys.Remove(m)
		}
	}
}

// listWALSegments returns the directory's WAL segments, epoch-ascending.
func listWALSegments(fsys vfs.FS, dir string) ([]walSegment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if epoch, ok := parseWALSegmentName(ent.Name()); ok {
			segs = append(segs, walSegment{epoch: epoch, path: filepath.Join(dir, ent.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].epoch < segs[j].epoch })
	return segs, nil
}

// Open opens (creating if needed) a data directory and recovers it: the
// newest manifest's chunks are assembled into the snapshot (falling back to a
// flat snapshot.orph export if no checkpoint ever completed), stale WAL
// segments are deleted, and the surviving segments' framing is validated — a
// torn tail from a crashed append is truncated so the active segment ends on
// a record boundary. Call ReplayWAL next to stream the surviving records; the
// returned store is ready for appends.
func Open(dir string) (*Store, *OpenResult, error) {
	return OpenFS(dir, vfs.OS())
}

// OpenFS is Open on an explicit filesystem — the production entry point uses
// vfs.OS(); fault-injection tests substitute a vfs.FaultFS so every byte of
// durable I/O is interceptable.
func OpenFS(dir string, fsys vfs.FS) (*Store, *OpenResult, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if _, err := fsys.Stat(filepath.Join(dir, WALFile)); err == nil {
		return nil, nil, fmt.Errorf("durable: %s holds a format v1 WAL (%s); this build reads format v2 only — re-export from a v1 build and load the export", dir, WALFile)
	}
	lock, err := lockDir(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:       dir,
		fsys:      fsys,
		lock:      lock,
		gc:        GroupCommitConfig{}.normalized(),
		manifests: make(map[uint64]*manifest),
		retain:    DefaultCheckpointRetention,
		gens:      make(map[string]uint64),
		fpSeed1:   maphash.MakeSeed(),
		fpSeed2:   maphash.MakeSeed(),
		fpCache:   make(map[string]fpEntry),
	}
	res := &OpenResult{}
	fail := func(err error) (*Store, *OpenResult, error) {
		if s.wal != nil {
			s.wal.Close()
		}
		if s.pack != nil {
			s.pack.close()
		}
		lock.Close()
		return nil, nil, err
	}
	removeLeftoverTemps(fsys, dir)

	// A torn pack tail is routine crash debris: chunks only become reachable
	// once a manifest referencing them is durably renamed in, and the pack is
	// fsynced before the manifest, so the truncated bytes were unreferenced.
	pack, _, err := openPack(fsys, filepath.Join(dir, PackFile))
	if err != nil {
		return fail(err)
	}
	s.pack = pack

	epochs, err := listManifestEpochs(fsys, dir)
	if err != nil {
		return fail(err)
	}
	for _, e := range epochs {
		m, err := readManifestFile(fsys, filepath.Join(dir, ManifestFileName(e)))
		if err != nil {
			return fail(err)
		}
		if m.epoch != e {
			return fail(fmt.Errorf("durable: manifest %s carries epoch %d", ManifestFileName(e), m.epoch))
		}
		s.manifests[e] = m
	}
	if len(epochs) > 0 {
		s.base = epochs[len(epochs)-1]
		snap, err := loadSnapshotFromManifest(s.manifests[s.base], pack.get)
		if err != nil {
			return fail(err)
		}
		res.Snapshot = snap
	} else {
		snap, err := readSnapshotFileFS(fsys, filepath.Join(dir, SnapshotFile))
		if err != nil {
			return fail(err)
		}
		if snap != nil {
			s.base = snap.Epoch
			res.Snapshot = snap
		}
	}

	segs, err := listWALSegments(fsys, dir)
	if err != nil {
		return fail(err)
	}
	var keep []walSegment
	for _, seg := range segs {
		if seg.epoch < s.base {
			// Older than the newest manifest: everything in it is already
			// folded into the checkpoint (a crash beat the post-checkpoint
			// cleanup to the delete).
			res.StaleWAL = true
			if err := fsys.Remove(seg.path); err != nil {
				return fail(err)
			}
			continue
		}
		keep = append(keep, seg)
	}
	if len(keep) == 0 {
		seg := walSegment{epoch: s.base, path: filepath.Join(dir, WALSegmentFileName(s.base))}
		f, err := fsys.OpenFile(seg.path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fail(err)
		}
		s.wal, s.walPath, s.epoch, s.walSize = f, seg.path, seg.epoch, walHeaderSize
		if err := writeWALHeader(f, seg.epoch); err != nil {
			return fail(err)
		}
		return s, res, nil
	}
	if keep[0].epoch != s.base {
		return fail(fmt.Errorf("durable: %s: WAL segment for epoch %d is missing (oldest present is %d)", dir, s.base, keep[0].epoch))
	}
	for i := 1; i < len(keep); i++ {
		if keep[i].epoch != keep[i-1].epoch+1 {
			return fail(fmt.Errorf("durable: %s: WAL segments %d and %d are not contiguous", dir, keep[i-1].epoch, keep[i].epoch))
		}
	}
	// Sealed segments (all but the newest): they were closed by a completed
	// BeginCheckpoint after every append in them returned durably, so a torn
	// tail here is mid-log corruption, not crash debris.
	for _, seg := range keep[:len(keep)-1] {
		f, err := vfs.Open(fsys, seg.path)
		if err != nil {
			return fail(err)
		}
		e, err := readWALHeader(f)
		if err == nil && e != seg.epoch {
			err = fmt.Errorf("durable: WAL segment %s carries epoch %d", seg.path, e)
		}
		var torn bool
		if err == nil {
			_, torn, err = scanWAL(f)
		}
		f.Close()
		if err != nil {
			return fail(err)
		}
		if torn {
			return fail(fmt.Errorf("durable: sealed WAL segment %s has a torn tail — refusing to drop committed history", seg.path))
		}
		s.sealed = append(s.sealed, seg)
	}

	active := keep[len(keep)-1]
	f, err := fsys.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return fail(err)
	}
	s.wal, s.walPath, s.epoch, s.walSize = f, active.path, active.epoch, walHeaderSize
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if info.Size() < walHeaderSize {
		// Crash inside BeginCheckpoint after creating the new segment but
		// before its header landed: finish the header now.
		if err := writeWALHeader(f, active.epoch); err != nil {
			return fail(err)
		}
		return s, res, nil
	}
	e, err := readWALHeader(f)
	if err != nil {
		return fail(err)
	}
	if e != active.epoch {
		return fail(fmt.Errorf("durable: WAL segment %s carries epoch %d", active.path, e))
	}
	validEnd, torn, err := scanWAL(f)
	if err != nil {
		return fail(err)
	}
	if torn {
		if err := f.Truncate(validEnd); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	s.walSize = validEnd
	res.TornTail = torn
	return s, res, nil
}

// ReplayWAL streams every record of the (already recovered) WAL segments to
// apply in append order — sealed segments first, then the active one — one
// decoded record at a time. Call it once, right after Open and before any
// appends.
func (s *Store) ReplayWAL(apply func(*Record) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, s.closedErr()
	}
	total := 0
	for _, seg := range s.sealed {
		f, err := vfs.Open(s.fsys, seg.path)
		if err != nil {
			return total, err
		}
		n, err := replayWAL(f, apply)
		f.Close()
		total += n
		if err != nil {
			return total, err
		}
	}
	n, err := replayWAL(s.wal, apply)
	return total + n, err
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Epoch returns the active WAL segment's epoch (== the epoch the next
// completed checkpoint will be written under).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// RetainedEpochs returns the epochs a point-in-time restore can load,
// ascending.
func (s *Store) RetainedEpochs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.manifests))
	for e := range s.manifests {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close closes the WAL segment, the chunk pack, and releases the directory
// lock. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.wal != nil {
		err = s.wal.Close()
		s.wal = nil
	}
	if s.pack != nil {
		if perr := s.pack.close(); err == nil {
			err = perr
		}
	}
	if s.lock != nil {
		s.lock.Close() // closing drops the flock
		s.lock = nil
	}
	return err
}

// closedErr distinguishes a poisoned store (failure path disabled it) from a
// plainly closed one; callers hold s.mu.
func (s *Store) closedErr() error {
	if s.poisoned != nil {
		return s.poisoned
	}
	return fmt.Errorf("durable: store %s is closed", s.dir)
}

// append frames one record and makes it durable through the group-commit
// queue: the first appender to find no open batch becomes the leader — it
// waits for the disk to be free (and optionally MaxDelay for followers),
// seals the batch, and performs one write+fsync for every record in it.
// Appenders that arrive while a batch is open join it and wait for the
// leader's verdict. Uncontended appends still sync immediately: with
// MaxDelay 0 the leader never waits for company, so batching only arises
// from genuine concurrency.
func (s *Store) append(rec *Record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	s.gcMu.Lock()
	cfg := s.gc
	if b := s.pending; b != nil {
		// Follower: join the open batch and wait for its leader.
		b.frames = append(b.frames, frame)
		if len(b.frames) >= cfg.MaxBatch {
			// Full: stop admitting followers and wake a delaying leader.
			s.pending = nil
			close(b.full)
		}
		s.gcMu.Unlock()
		<-b.done
		return b.err
	}
	b := &walBatch{frames: [][]byte{frame}, full: make(chan struct{}), done: make(chan struct{})}
	if cfg.MaxBatch > 1 {
		s.pending = b
	}
	s.gcMu.Unlock()

	// Leader: wait for the disk (the previous batch's fsync, a segment seal,
	// or a replay) — followers accumulate into b meanwhile.
	s.mu.Lock()
	if cfg.MaxDelay > 0 && cfg.MaxBatch > 1 {
		t := time.NewTimer(cfg.MaxDelay)
		select {
		case <-b.full:
		case <-t.C:
		}
		t.Stop()
	}
	// Seal the batch: after this no appender can join it.
	s.gcMu.Lock()
	if s.pending == b {
		s.pending = nil
	}
	frames := b.frames
	s.gcMu.Unlock()

	err = s.writeFramesLocked(frames)
	s.mu.Unlock()
	b.err = err
	close(b.done)
	return err
}

// writeFramesLocked appends the sealed batch's frames with one write and one
// fsync; the caller holds s.mu. On any write or sync failure the log tail
// past the pre-append offset is garbage: it is truncated back (and the
// truncation fsynced) so the next append — and recovery — continue from the
// last durable record instead of burying later commits behind torn bytes. If
// the truncation itself fails the tail state is unknown and the store is
// poisoned: every later operation fails until the directory is reopened.
func (s *Store) writeFramesLocked(frames [][]byte) error {
	if s.wal == nil {
		return s.closedErr()
	}
	var buf []byte
	if len(frames) == 1 {
		buf = frames[0]
	} else {
		total := 0
		for _, f := range frames {
			total += len(f)
		}
		buf = make([]byte, 0, total)
		for _, f := range frames {
			buf = append(buf, f...)
		}
	}
	start := s.walSize
	_, err := s.wal.WriteAt(buf, start)
	if err == nil {
		err = s.wal.Sync()
	}
	if err == nil {
		s.walSize = start + int64(len(buf))
		return nil
	}
	// Failure path: remove whatever landed past the last durable record.
	if terr := s.truncateTailLocked(start); terr != nil {
		s.poisoned = fmt.Errorf("durable: WAL append to %s failed (%v) and truncating the torn tail failed too (%v); store disabled until reopen", s.dir, err, terr)
		s.wal.Close()
		s.wal = nil
		return s.poisoned
	}
	return fmt.Errorf("durable: WAL append to %s failed; log truncated back to the last durable record: %w", s.dir, err)
}

// truncateTailLocked cuts the WAL back to off and makes the cut durable.
func (s *Store) truncateTailLocked(off int64) error {
	if err := s.wal.Truncate(off); err != nil {
		return err
	}
	return s.wal.Sync()
}

// LogInit journals the creation of a CVD with its initial rows.
func (s *Store) LogInit(name string, kind cvd.ModelKind, schema relstore.Schema, rows []relstore.Row, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpInit, CVD: name, Kind: kind, Schema: schema, Rows: rows, Message: msg, Author: author, At: at})
}

// LogDrop journals dropping a CVD. It also bumps the name's drop generation:
// catalog and record-set fingerprint-cache keys include it, so a CVD
// re-created under a dropped name can never structurally alias the old one's
// cached chunks.
func (s *Store) LogDrop(name string) error {
	s.mu.Lock()
	s.gens[name]++
	s.mu.Unlock()
	return s.append(&Record{Op: OpDrop, CVD: name})
}

// LogCommit implements cvd.Journal: it journals one committed version with
// its staged rows and row schema (which also carries schema evolution).
func (s *Store) LogCommit(cvdName string, parents []vgraph.VersionID, rows []relstore.Row, rowSchema relstore.Schema, msg, author string, at time.Time) error {
	return s.append(&Record{Op: OpCommit, CVD: cvdName, Parents: parents, Rows: rows, Schema: rowSchema, Message: msg, Author: author, At: at})
}

// ---- checkpointing -----------------------------------------------------------

// CheckpointJob is the handle BeginCheckpoint returns: the epoch the
// checkpoint will commit under plus state captured inside the commit fence.
type CheckpointJob struct {
	epoch uint64
	start time.Time
	gens  map[string]uint64
}

// Epoch returns the epoch the checkpoint will be written under.
func (j *CheckpointJob) Epoch() uint64 { return j.epoch }

// CheckpointStats reports what one completed checkpoint cost.
type CheckpointStats struct {
	Epoch         uint64
	Chunks        int   // chunk references in the manifest
	ChunksWritten int   // chunks actually appended to the pack (not reused)
	ChunkBytes    int64 // payload bytes of every referenced chunk
	BytesWritten  int64 // bytes appended to disk: new pack frames + manifest
	ManifestBytes int64
	Duration      time.Duration
}

// BeginCheckpoint seals the active WAL segment and opens the next one, so
// commits logged after it are outside the checkpoint being taken. It is
// cheap (one file create + header write) and must be called while the caller
// holds the engine state fixed — the snapshot later passed to
// CompleteCheckpoint must reflect exactly the operations logged before this
// call.
func (s *Store) BeginCheckpoint() (*CheckpointJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil, s.closedErr()
	}
	if s.ckptActive {
		return nil, fmt.Errorf("durable: a checkpoint of %s is already in progress", s.dir)
	}
	newEpoch := s.epoch + 1
	newPath := filepath.Join(s.dir, WALSegmentFileName(newEpoch))
	f, err := s.fsys.OpenFile(newPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeWALHeader(f, newEpoch); err != nil {
		f.Close()
		s.fsys.Remove(newPath)
		return nil, err
	}
	// Seal the old segment. Every record in it is already fsynced (append's
	// commit boundary), so a close error cannot lose data; the file stays
	// readable by path for replay either way.
	s.wal.Close()
	s.sealed = append(s.sealed, walSegment{epoch: s.epoch, path: s.walPath})
	s.wal, s.walPath, s.epoch, s.walSize = f, newPath, newEpoch, walHeaderSize
	s.ckptActive = true
	job := &CheckpointJob{epoch: newEpoch, start: time.Now(), gens: make(map[string]uint64, len(s.gens))}
	for k, v := range s.gens {
		job.gens[k] = v
	}
	return job, nil
}

// CompleteCheckpoint encodes the snapshot into content-addressed chunks,
// writes the changed ones to the pack, fsyncs it, and commits the checkpoint
// by renaming in the manifest — all without holding the store mutex, so
// commits keep flowing into the segment BeginCheckpoint opened. On success
// the covered WAL segments are deleted and retention GC prunes old manifests
// and unreferenced chunks. On failure nothing is committed and the store
// stays fully usable: commits remain durable in the active segment, and the
// next checkpoint folds them in.
func (s *Store) CompleteCheckpoint(job *CheckpointJob, snap *Snapshot) (CheckpointStats, error) {
	var stats CheckpointStats
	if job == nil {
		return stats, fmt.Errorf("durable: CompleteCheckpoint without a BeginCheckpoint job")
	}
	defer func() {
		s.mu.Lock()
		s.ckptActive = false
		s.mu.Unlock()
	}()
	snap.Epoch = job.epoch
	m, newCache, stats, err := s.encodeSnapshotChunks(job, snap)
	if err != nil {
		return stats, fmt.Errorf("durable: checkpoint %d of %s: %w", job.epoch, s.dir, err)
	}
	if err := s.pack.sync(); err != nil {
		return stats, err
	}
	mb, err := writeManifestFile(s.fsys, s.dir, m)
	if err != nil {
		return stats, err
	}
	stats.ManifestBytes = mb
	stats.BytesWritten += mb

	s.mu.Lock()
	s.fpCache = newCache
	s.base = job.epoch
	s.manifests[job.epoch] = m
	var keep []walSegment
	for _, seg := range s.sealed {
		if seg.epoch < job.epoch {
			s.fsys.Remove(seg.path)
		} else {
			keep = append(keep, seg)
		}
	}
	s.sealed = keep
	retain := s.retain
	s.mu.Unlock()

	// The flat snapshot export (if this directory began life as one) is
	// superseded by the manifest now.
	s.fsys.Remove(filepath.Join(s.dir, SnapshotFile))
	s.collectGarbage(retain)
	stats.Duration = time.Since(job.start)
	return stats, nil
}

// Checkpoint is the synchronous form: seal, encode, and commit in one call.
// The caller must hold the engine state fixed for the full duration (the
// non-blocking path is BeginCheckpoint under the fence + CompleteCheckpoint
// outside it).
func (s *Store) Checkpoint(snap *Snapshot) error {
	job, err := s.BeginCheckpoint()
	if err != nil {
		return err
	}
	_, err = s.CompleteCheckpoint(job, snap)
	return err
}

// CheckpointSync is Checkpoint returning the stats.
func (s *Store) CheckpointSync(snap *Snapshot) (CheckpointStats, error) {
	job, err := s.BeginCheckpoint()
	if err != nil {
		return CheckpointStats{}, err
	}
	return s.CompleteCheckpoint(job, snap)
}

// encodeSnapshotChunks chunks the snapshot, writing changed chunks to the
// pack, and returns the manifest plus the next fingerprint cache. Table
// columns encode in parallel; full interior bands whose content fingerprint
// matches the previous checkpoint skip encoding entirely and reuse their
// chunk hash. Catalog bands and record-set runs exploit a stronger invariant
// — within one CVD lifetime (see LogDrop's generation) both are strictly
// append-only, so a full band at the same index is immutable and only needs
// its boundary guard checked.
func (s *Store) encodeSnapshotChunks(job *CheckpointJob, snap *Snapshot) (*manifest, map[string]fpEntry, CheckpointStats, error) {
	stats := CheckpointStats{Epoch: snap.Epoch}
	m := &manifest{dbName: snap.DBName, epoch: snap.Epoch}
	newCache := make(map[string]fpEntry)
	var cacheMu sync.Mutex
	var chunks, written, chunkBytes, bytesWritten atomic.Int64

	// emit writes one encoded payload to the pack (deduplicated by content).
	emit := func(payload []byte) (ChunkHash, error) {
		h := hashChunk(payload)
		wrote, err := s.pack.put(h, payload)
		if err != nil {
			return h, err
		}
		chunks.Add(1)
		chunkBytes.Add(int64(len(payload)))
		if wrote {
			written.Add(1)
			bytesWritten.Add(packFrameOverhead + int64(len(payload)))
		}
		return h, nil
	}
	// reuse accounts for a band served from the fingerprint cache.
	reuse := func(h ChunkHash) {
		chunks.Add(1)
		if n, ok := s.pack.sizeOf(h); ok {
			chunkBytes.Add(int64(n))
		}
	}

	type unit struct{ ti, ci int }
	var units []unit
	m.tables = make([]manifestTable, len(snap.Tables))
	for ti, t := range snap.Tables {
		meta := metaForTable(t)
		mt := manifestTable{meta: meta, cols: make([][]ChunkHash, len(meta.schema.Columns))}
		nb := numBands(meta.nrows, meta.bandRows)
		for ci := range mt.cols {
			mt.cols[ci] = make([]ChunkHash, nb)
			units = append(units, unit{ti, ci})
		}
		m.tables[ti] = mt
	}
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	err := parallel.ForEachErr(workers, len(units), func(i int) error {
		u := units[i]
		mt := &m.tables[u.ti]
		meta := &mt.meta
		lanes := snap.Tables[u.ti].ColumnLanes(u.ci)
		var e enc
		nb := numBands(meta.nrows, meta.bandRows)
		for b := 0; b < nb; b++ {
			lo, hi := bandSpan(b, meta.bandRows, meta.nrows)
			if hi-lo == meta.bandRows {
				key := fmt.Sprintf("b|%s|%d|%d", meta.name, u.ci, b)
				fp := lanes.BandFingerprint(s.fpSeed1, s.fpSeed2, lo, hi)
				cacheMu.Lock()
				old, ok := s.fpCache[key]
				cacheMu.Unlock()
				if ok && old.fp == fp && s.pack.has(old.hash) {
					mt.cols[u.ci][b] = old.hash
					reuse(old.hash)
					cacheMu.Lock()
					newCache[key] = old
					cacheMu.Unlock()
					continue
				}
				e.b = e.b[:0]
				encodeColBand(&e, lanes, lo, hi, false)
				h, err := emit(e.b)
				if err != nil {
					return err
				}
				mt.cols[u.ci][b] = h
				cacheMu.Lock()
				newCache[key] = fpEntry{fp: fp, hash: h}
				cacheMu.Unlock()
				continue
			}
			// Tail band: its content moves on every append, always re-encode.
			e.b = e.b[:0]
			encodeColBand(&e, lanes, lo, hi, false)
			h, err := emit(e.b)
			if err != nil {
				return err
			}
			mt.cols[u.ci][b] = h
		}
		return nil
	})
	if err != nil {
		return nil, nil, stats, err
	}

	// CVD sections run serially: heads are small and always re-encoded (the
	// pack deduplicates them by content), and the append-only sections are
	// mostly cache hits.
	var e enc
	for _, st := range snap.CVDs {
		gen := job.gens[st.Name]
		layout := layoutForCVD(st)
		mc := manifestCVD{layout: layout}
		e.b = e.b[:0]
		encodeCVDHead(&e, st)
		h, err := emit(e.b)
		if err != nil {
			return nil, nil, stats, err
		}
		mc.head = h

		nb := numBands(layout.records, layout.catBand)
		mc.catalog = make([]ChunkHash, nb)
		for b := 0; b < nb; b++ {
			lo, hi := bandSpan(b, layout.catBand, layout.records)
			if hi-lo == layout.catBand {
				key := fmt.Sprintf("c|%s|%d|%d", st.Name, gen, b)
				fp := [2]uint64{uint64(st.Records[lo].RID), uint64(st.Records[hi-1].RID)}
				if old, ok := s.fpCache[key]; ok && old.fp == fp && s.pack.has(old.hash) {
					mc.catalog[b] = old.hash
					reuse(old.hash)
					newCache[key] = old
					continue
				}
			}
			e.b = e.b[:0]
			encodeCatalogBand(&e, st.Records[lo:hi])
			if mc.catalog[b], err = emit(e.b); err != nil {
				return nil, nil, stats, err
			}
			if hi-lo == layout.catBand {
				key := fmt.Sprintf("c|%s|%d|%d", st.Name, gen, b)
				fp := [2]uint64{uint64(st.Records[lo].RID), uint64(st.Records[hi-1].RID)}
				newCache[key] = fpEntry{fp: fp, hash: mc.catalog[b]}
			}
		}

		nr := numBands(layout.sets, layout.runLen)
		mc.runs = make([]ChunkHash, nr)
		for r := 0; r < nr; r++ {
			lo, hi := bandSpan(r, layout.runLen, layout.sets)
			var fp [2]uint64
			full := hi-lo == layout.runLen
			var key string
			if full {
				key = fmt.Sprintf("r|%s|%d|%d", st.Name, gen, r)
				var sum int64
				for _, vs := range st.RecordSets[lo:hi] {
					sum += vs.Set.Len()
				}
				fp = [2]uint64{
					uint64(st.RecordSets[lo].Version)<<32 | uint64(st.RecordSets[hi-1].Version)&0xffffffff,
					uint64(sum),
				}
				if old, ok := s.fpCache[key]; ok && old.fp == fp && s.pack.has(old.hash) {
					mc.runs[r] = old.hash
					reuse(old.hash)
					newCache[key] = old
					continue
				}
			}
			e.b = e.b[:0]
			encodeRecsetRun(&e, st.RecordSets[lo:hi])
			if mc.runs[r], err = emit(e.b); err != nil {
				return nil, nil, stats, err
			}
			if full {
				newCache[key] = fpEntry{fp: fp, hash: mc.runs[r]}
			}
		}
		m.cvds = append(m.cvds, mc)
	}

	stats.Chunks = int(chunks.Load())
	stats.ChunksWritten = int(written.Load())
	stats.ChunkBytes = chunkBytes.Load()
	stats.BytesWritten = bytesWritten.Load()
	return m, newCache, stats, nil
}

// collectGarbage prunes manifests beyond the retention window, then rewrites
// the chunk pack when enough dead bytes have accumulated. Runs with
// ckptActive still held, so no concurrent checkpoint appends chunks while
// the pack compacts.
func (s *Store) collectGarbage(retain int) {
	s.mu.Lock()
	epochs := make([]uint64, 0, len(s.manifests))
	for e := range s.manifests {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	removed := false
	for len(epochs) > retain {
		e := epochs[0]
		epochs = epochs[1:]
		delete(s.manifests, e)
		s.fsys.Remove(filepath.Join(s.dir, ManifestFileName(e)))
		removed = true
	}
	live := make(map[ChunkHash]struct{})
	for _, m := range s.manifests {
		m.chunkRefs(func(h ChunkHash) { live[h] = struct{}{} })
	}
	s.mu.Unlock()
	if removed {
		// Make the deletions durable before dropping the chunks they pinned:
		// a resurrected manifest must never reference compacted-away chunks.
		s.fsys.SyncDir(s.dir)
	}
	total, liveBytes := s.pack.bytes(live)
	if dead := total - liveBytes; dead > packCompactMinDead && dead > liveBytes {
		// Best-effort: a failed compaction leaves the old pack fully intact.
		s.pack.compact(live)
	}
}

// LoadEpoch assembles the snapshot of one retained checkpoint epoch — the
// point-in-time restore read path. It does not disturb the live state.
func (s *Store) LoadEpoch(epoch uint64) (*Snapshot, error) {
	s.mu.Lock()
	m := s.manifests[epoch]
	s.mu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("durable: epoch %d is not retained in %s (see RetainedEpochs)", epoch, s.dir)
	}
	return loadSnapshotFromManifest(m, s.pack.get)
}

// ---- package-level directory helpers ----------------------------------------

// ListEpochs returns the retained checkpoint epochs of a data directory,
// ascending, without opening it as a store.
func ListEpochs(dir string) ([]uint64, error) {
	return listManifestEpochs(vfs.OS(), dir)
}

// OpenAtEpoch loads the snapshot of one retained epoch from a closed data
// directory (the directory lock is held only for the read).
func OpenAtEpoch(dir string, epoch uint64) (*Snapshot, error) {
	fsys := vfs.OS()
	lock, err := lockDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	defer lock.Close()
	m, err := readManifestFile(fsys, filepath.Join(dir, ManifestFileName(epoch)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("durable: epoch %d is not retained in %s", epoch, dir)
		}
		return nil, err
	}
	pack, _, err := openPack(fsys, filepath.Join(dir, PackFile))
	if err != nil {
		return nil, err
	}
	defer pack.close()
	return loadSnapshotFromManifest(m, pack.get)
}

// WALBytes sums the sizes of a data directory's WAL segments — the log
// volume recovery would have to replay.
func WALBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if _, ok := parseWALSegmentName(ent.Name()); !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// SaveSnapshot writes a one-shot flat snapshot (epoch 0, no WAL) into dir,
// creating it if needed — the engine's Save-to-a-new-directory export path.
// The directory's advisory lock is held for the write so a concurrent engine
// cannot open the directory mid-export. A directory that already holds live
// checkpoint state is refused: overwriting part of it would desynchronize
// the manifest/WAL pairing.
func SaveSnapshot(dir string, snap *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Check for live artifacts before taking the flock: saving into a live,
	// currently open data directory then fails with this message instead of
	// the lock contention one. The post-lock write is still fenced either way.
	if live, what := liveDirArtifact(dir); live {
		return fmt.Errorf("durable: %s is a live data directory (has %s); use Checkpoint instead of Save", dir, what)
	}
	lock, err := lockDir(vfs.OS(), dir)
	if err != nil {
		return err
	}
	defer lock.Close()
	snap.Epoch = 0
	return WriteSnapshotFile(filepath.Join(dir, SnapshotFile), snap)
}

// liveDirArtifact reports whether dir holds live data-directory state and
// what kind was found.
func liveDirArtifact(dir string) (bool, string) {
	if _, err := os.Stat(filepath.Join(dir, WALFile)); err == nil {
		return true, "a format v1 WAL"
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, ""
	}
	for _, ent := range entries {
		if _, ok := parseManifestName(ent.Name()); ok {
			return true, "a checkpoint manifest"
		}
		if _, ok := parseWALSegmentName(ent.Name()); ok {
			return true, "a WAL segment"
		}
	}
	return false, ""
}
