package durable

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/recset"
	"repro/internal/relstore"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []relstore.Value{
		relstore.Null(),
		relstore.Int(0), relstore.Int(-7), relstore.Int(1 << 60),
		relstore.Float(3.25), relstore.Float(-0.0),
		relstore.Str(""), relstore.Str("héllo\x00world"),
		relstore.Bool(true), relstore.Bool(false),
		relstore.IntArray(nil), relstore.IntArray([]int64{1, -2, 3}),
	}
	var e enc
	for _, v := range vals {
		e.value(v)
	}
	d := &dec{b: e.b}
	for i, want := range vals {
		got := d.value()
		if d.err != nil {
			t.Fatalf("value %d: %v", i, d.err)
		}
		if got.Type != want.Type || got.AsString() != want.AsString() {
			t.Fatalf("value %d: got %v (%v), want %v (%v)", i, got, got.Type, want, want.Type)
		}
	}
	if d.off != len(d.b) {
		t.Fatalf("decoder left %d bytes", len(d.b)-d.off)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := relstore.MustSchema([]relstore.Column{
		{Name: "id", Type: relstore.TypeInt},
		{Name: "name", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeFloat},
	}, "id", "name")
	var e enc
	e.schema(s)
	d := &dec{b: e.b}
	got := d.schema()
	if d.err != nil {
		t.Fatal(d.err)
	}
	if !got.Equal(s) {
		t.Fatalf("schema round trip: got %v, want %v", got, s)
	}
}

// randomTable builds a table with heterogeneous columns: every lane type,
// nulls sprinkled in, and cells whose type disagrees with the declared column
// type (the columnar layer's escape hatch).
func randomTable(t *testing.T, rng *rand.Rand, name string, nrows int) *relstore.Table {
	t.Helper()
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "rid", Type: relstore.TypeInt},
		{Name: "txt", Type: relstore.TypeString},
		{Name: "val", Type: relstore.TypeFloat},
		{Name: "flag", Type: relstore.TypeBool},
		{Name: "arr", Type: relstore.TypeIntArray},
	}, "rid")
	tab := relstore.NewTable(name, schema)
	for i := 0; i < nrows; i++ {
		row := relstore.Row{
			relstore.Int(int64(i + 1)),
			relstore.Str(""),
			relstore.Float(rng.NormFloat64()),
			relstore.Bool(rng.Intn(2) == 0),
			relstore.IntArray([]int64{rng.Int63n(100), -rng.Int63n(100)}),
		}
		switch rng.Intn(5) {
		case 0:
			row[1] = relstore.Null()
		case 1:
			row[1] = relstore.Int(rng.Int63n(1000)) // stray int in a string column
		default:
			row[1] = relstore.Str(string(rune('a' + rng.Intn(26))))
		}
		if rng.Intn(4) == 0 {
			row[2] = relstore.Null()
		}
		if rng.Intn(6) == 0 {
			row[4] = relstore.Null()
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func tablesEqual(t *testing.T, a, b *relstore.Table) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("table name %q != %q", a.Name, b.Name)
	}
	if !a.Schema.Equal(b.Schema) {
		t.Fatalf("table %s: schema %v != %v", a.Name, a.Schema, b.Schema)
	}
	if a.Cluster != b.Cluster {
		t.Fatalf("table %s: cluster %v != %v", a.Name, a.Cluster, b.Cluster)
	}
	if a.Len() != b.Len() {
		t.Fatalf("table %s: %d rows != %d rows", a.Name, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.RowAt(i), b.RowAt(i)
		for j := range ra {
			va, vb := ra[j], rb[j]
			if va.Type != vb.Type || va.AsString() != vb.AsString() {
				t.Fatalf("table %s row %d col %d: %v (%v) != %v (%v)", a.Name, i, j, va, va.Type, vb, vb.Type)
			}
		}
	}
}

func TestTableBandChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 500} {
		for _, raw := range []bool{false, true} {
			tab := randomTable(t, rng, "tab", n)
			meta := metaForTable(tab)
			// A small band height forces multi-band assembly even for the
			// modest row counts above.
			meta.bandRows = 64
			asm := newTableAssembler(meta)
			var e enc
			for ci := range meta.schema.Columns {
				lanes := tab.ColumnLanes(ci)
				for b := 0; b < numBands(meta.nrows, meta.bandRows); b++ {
					lo, hi := bandSpan(b, meta.bandRows, meta.nrows)
					e.b = e.b[:0]
					encodeColBand(&e, lanes, lo, hi, raw)
					if err := asm.addBand(ci, e.b); err != nil {
						t.Fatalf("n=%d raw=%v: %v", n, raw, err)
					}
				}
			}
			got, err := asm.finish()
			if err != nil {
				t.Fatalf("n=%d raw=%v: %v", n, raw, err)
			}
			tablesEqual(t, tab, got)
			if tab.HasIndex() != got.HasIndex() {
				t.Fatalf("n=%d raw=%v: index presence diverged", n, raw)
			}
		}
	}
}

func TestSnapshotStreamRoundTripAndCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	snap := &Snapshot{
		DBName: "db",
		Epoch:  42,
		Tables: []*relstore.Table{
			randomTable(t, rng, "a", 40),
			randomTable(t, rng, "b", 7),
		},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.DBName != "db" || got.Epoch != 42 || len(got.Tables) != 2 {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	for i := range snap.Tables {
		tablesEqual(t, snap.Tables[i], got.Tables[i])
	}

	// Flip one payload byte: the section CRC must catch it.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)/2] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted snapshot read succeeded")
	}

	// Truncations must error, not panic.
	for cut := 1; cut < len(raw); cut += 97 {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) read succeeded", cut)
		}
	}
}

func TestRecsetBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := []*recset.Set{
		nil,
		recset.New(),
		recset.FromSlice([]int64{1, 2, 3, 1 << 40}),
	}
	// A dense run that forces bitmap containers plus a sparse spread.
	dense := make([]int64, 0, 10000)
	for i := int64(0); i < 10000; i++ {
		dense = append(dense, i)
	}
	sets = append(sets, recset.FromSlice(dense))
	sparse := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		sparse = append(sparse, rng.Int63n(1<<30))
	}
	sets = append(sets, recset.FromSlice(sparse))

	for i, s := range sets {
		b := s.AppendBinary(nil)
		got, n, err := recset.DecodeBinary(b)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("set %d: consumed %d of %d bytes", i, n, len(b))
		}
		if got.Len() != s.Len() || !recset.Equal(got, orEmpty(s)) {
			t.Fatalf("set %d: round trip mismatch (%d vs %d elements)", i, got.Len(), s.Len())
		}
	}
}

func orEmpty(s *recset.Set) *recset.Set {
	if s == nil {
		return recset.New()
	}
	return s
}
