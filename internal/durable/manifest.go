package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"repro/internal/vfs"
)

// A checkpoint manifest is the root of one epoch's snapshot: per-table and
// per-CVD geometry plus the chunk hash of every section. The manifest file
// is small (16 bytes per chunk reference), written atomically via temp +
// rename after the pack is fsynced, and named for its epoch —
// manifest-<epoch>.orph — so a directory listing enumerates the retained
// restore points.
//
//	file: magic "ORPHMAN1", uint32 format version,
//	      uint32 payload length, uint32 CRC32(payload), payload
//
// Payload layout (enc encoding):
//
//	str dbName, u64 epoch
//	uvarint ntables, per table: tableMeta, ncols × nbands × hash16 (col-major)
//	uvarint ncvds, per CVD: cvdLayout, head hash16,
//	    catalog-band hashes, recset-run hashes

// manifest is one decoded checkpoint manifest.
type manifest struct {
	dbName string
	epoch  uint64
	tables []manifestTable
	cvds   []manifestCVD
}

type manifestTable struct {
	meta tableMeta
	cols [][]ChunkHash // [column][band]
}

type manifestCVD struct {
	layout  cvdLayout
	head    ChunkHash
	catalog []ChunkHash
	runs    []ChunkHash
}

// ManifestFileName returns the manifest file name for an epoch; the fixed-
// width hex key makes lexical order equal epoch order.
func ManifestFileName(epoch uint64) string {
	return fmt.Sprintf("manifest-%016x.orph", epoch)
}

// parseManifestName extracts the epoch from a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	var epoch uint64
	var tail string
	if n, err := fmt.Sscanf(name, "manifest-%16x%s", &epoch, &tail); err != nil || n != 2 || tail != ".orph" {
		return 0, false
	}
	return epoch, true
}

func (e *enc) chunkHash(h ChunkHash) { e.b = append(e.b, h[:]...) }

func (d *dec) chunkHash() ChunkHash {
	var h ChunkHash
	copy(h[:], d.raw(16))
	return h
}

// hashesFit reports whether count 16-byte chunk hashes can still be present
// in the remaining payload, failing the decoder otherwise. Band counts are
// derived from decoded geometry (rows ÷ band height), not read directly, so
// this check must run before the hash slices are allocated — a corrupt
// manifest could otherwise demand terabytes.
func (d *dec) hashesFit(count int64, what string) bool {
	if d.err != nil {
		return false
	}
	if remaining := int64(len(d.b) - d.off); count < 0 || count > remaining/16 {
		d.fail("%s: %d chunk hashes exceed remaining %d bytes", what, count, remaining)
		return false
	}
	return true
}

// encodeManifestPayload serializes the manifest body (without file framing).
func encodeManifestPayload(e *enc, m *manifest) {
	e.str(m.dbName)
	e.u64(m.epoch)
	e.uvarint(uint64(len(m.tables)))
	for i := range m.tables {
		t := &m.tables[i]
		e.tableMeta(&t.meta)
		for _, bands := range t.cols {
			for _, h := range bands {
				e.chunkHash(h)
			}
		}
	}
	e.uvarint(uint64(len(m.cvds)))
	for i := range m.cvds {
		c := &m.cvds[i]
		e.cvdLayout(&c.layout)
		e.chunkHash(c.head)
		for _, h := range c.catalog {
			e.chunkHash(h)
		}
		for _, h := range c.runs {
			e.chunkHash(h)
		}
	}
}

// decodeManifestPayload parses a manifest body.
func decodeManifestPayload(payload []byte) (*manifest, error) {
	d := &dec{b: payload}
	m := &manifest{dbName: d.str(), epoch: d.u64()}
	ntables := d.length(2)
	m.tables = make([]manifestTable, 0, ntables)
	for i := 0; i < ntables; i++ {
		var t manifestTable
		t.meta = d.tableMeta()
		if d.err != nil {
			return nil, d.err
		}
		nbands := numBands(t.meta.nrows, t.meta.bandRows)
		if !d.hashesFit(int64(nbands)*int64(len(t.meta.schema.Columns)), "table "+t.meta.name) {
			return nil, d.err
		}
		t.cols = make([][]ChunkHash, len(t.meta.schema.Columns))
		for ci := range t.cols {
			bands := make([]ChunkHash, nbands)
			for b := range bands {
				bands[b] = d.chunkHash()
			}
			t.cols[ci] = bands
		}
		if d.err != nil {
			return nil, d.err
		}
		m.tables = append(m.tables, t)
	}
	ncvds := d.length(2)
	m.cvds = make([]manifestCVD, 0, ncvds)
	for i := 0; i < ncvds; i++ {
		var c manifestCVD
		c.layout = d.cvdLayout()
		if d.err != nil {
			return nil, d.err
		}
		c.head = d.chunkHash()
		ncat := numBands(c.layout.records, c.layout.catBand)
		nruns := numBands(c.layout.sets, c.layout.runLen)
		if !d.hashesFit(int64(ncat)+int64(nruns), "CVD "+c.layout.name) {
			return nil, d.err
		}
		c.catalog = make([]ChunkHash, ncat)
		for b := range c.catalog {
			c.catalog[b] = d.chunkHash()
		}
		c.runs = make([]ChunkHash, nruns)
		for b := range c.runs {
			c.runs[b] = d.chunkHash()
		}
		if d.err != nil {
			return nil, d.err
		}
		m.cvds = append(m.cvds, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("durable: manifest: %d trailing bytes", len(payload)-d.off)
	}
	return m, nil
}

// writeManifestFile writes the manifest atomically into dir and returns its
// file size. The chunk pack must already be fsynced: the rename is the
// commit point of the checkpoint.
func writeManifestFile(fsys vfs.FS, dir string, m *manifest) (int64, error) {
	var e enc
	e.raw([]byte(manifestMagic))
	e.u32(formatVersion)
	e.u32(0) // payload length placeholder
	e.u32(0) // payload CRC placeholder
	bodyStart := len(e.b)
	encodeManifestPayload(&e, m)
	payload := e.b[bodyStart:]
	binary.LittleEndian.PutUint32(e.b[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.b[16:20], crc32.ChecksumIEEE(payload))

	tmp, err := fsys.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return 0, err
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(e.b); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := fsys.Rename(tmp.Name(), filepath.Join(dir, ManifestFileName(m.epoch))); err != nil {
		return 0, err
	}
	return int64(len(e.b)), fsys.SyncDir(dir)
}

// readManifestFile loads and validates one manifest file.
func readManifestFile(fsys vfs.FS, path string) (*manifest, error) {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	if len(data) < 20 {
		return nil, fmt.Errorf("durable: manifest %s: truncated header", path)
	}
	if string(data[:8]) != manifestMagic {
		return nil, fmt.Errorf("durable: %s is not a manifest (magic %q)", path, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return nil, fmt.Errorf("durable: unsupported manifest version %d (want %d)", v, formatVersion)
	}
	n := binary.LittleEndian.Uint32(data[12:16])
	want := binary.LittleEndian.Uint32(data[16:20])
	if int64(n) != int64(len(data)-20) {
		return nil, fmt.Errorf("durable: manifest %s: payload length %d does not match file size", path, n)
	}
	payload := data[20:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("durable: manifest %s: CRC mismatch (%08x != %08x)", path, got, want)
	}
	m, err := decodeManifestPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("durable: manifest %s: %w", path, err)
	}
	return m, nil
}

// chunkRefs calls fn for every chunk reference in the manifest (duplicates
// included — identical bands of different epochs, or within one epoch,
// reference the same chunk).
func (m *manifest) chunkRefs(fn func(ChunkHash)) {
	for i := range m.tables {
		for _, bands := range m.tables[i].cols {
			for _, h := range bands {
				fn(h)
			}
		}
	}
	for i := range m.cvds {
		c := &m.cvds[i]
		fn(c.head)
		for _, h := range c.catalog {
			fn(h)
		}
		for _, h := range c.runs {
			fn(h)
		}
	}
}

// listManifestEpochs returns the epochs of all manifest files in dir,
// ascending.
func listManifestEpochs(fsys vfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if epoch, ok := parseManifestName(ent.Name()); ok {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// loadSnapshotFromManifest assembles the full snapshot a manifest describes,
// fetching chunk payloads through get.
func loadSnapshotFromManifest(m *manifest, get func(ChunkHash) ([]byte, error)) (*Snapshot, error) {
	snap := &Snapshot{DBName: m.dbName, Epoch: m.epoch}
	for i := range m.tables {
		mt := &m.tables[i]
		asm := newTableAssembler(mt.meta)
		for ci, bands := range mt.cols {
			for _, h := range bands {
				payload, err := get(h)
				if err != nil {
					return nil, fmt.Errorf("durable: table %s: %w", mt.meta.name, err)
				}
				if err := asm.addBand(ci, payload); err != nil {
					return nil, err
				}
			}
		}
		t, err := asm.finish()
		if err != nil {
			return nil, err
		}
		snap.Tables = append(snap.Tables, t)
	}
	for i := range m.cvds {
		mc := &m.cvds[i]
		head, err := get(mc.head)
		if err != nil {
			return nil, fmt.Errorf("durable: CVD %s head: %w", mc.layout.name, err)
		}
		asm, err := newCVDAssembler(mc.layout, head)
		if err != nil {
			return nil, err
		}
		for _, h := range mc.catalog {
			payload, err := get(h)
			if err != nil {
				return nil, fmt.Errorf("durable: CVD %s catalog: %w", mc.layout.name, err)
			}
			if err := asm.addCatalogBand(payload); err != nil {
				return nil, err
			}
		}
		for _, h := range mc.runs {
			payload, err := get(h)
			if err != nil {
				return nil, fmt.Errorf("durable: CVD %s record sets: %w", mc.layout.name, err)
			}
			if err := asm.addRecsetRun(payload); err != nil {
				return nil, err
			}
		}
		st, err := asm.finish()
		if err != nil {
			return nil, err
		}
		snap.CVDs = append(snap.CVDs, st)
	}
	return snap, nil
}

// manifestForSnapshot is used by tests and the flat-file writer to derive
// geometry without going through the store: it chunks a snapshot and hands
// every payload to emit, returning the manifest skeleton. emit receives the
// payload and must return its hash (typically hashChunk + pack put).
func manifestForSnapshot(snap *Snapshot, rawLanes bool, emit func(payload []byte) (ChunkHash, error)) (*manifest, error) {
	m := &manifest{dbName: snap.DBName, epoch: snap.Epoch}
	var e enc
	for _, t := range snap.Tables {
		meta := metaForTable(t)
		mt := manifestTable{meta: meta, cols: make([][]ChunkHash, len(meta.schema.Columns))}
		nbands := numBands(meta.nrows, meta.bandRows)
		for ci := range mt.cols {
			lanes := t.ColumnLanes(ci)
			bands := make([]ChunkHash, nbands)
			for b := range bands {
				lo, hi := bandSpan(b, meta.bandRows, meta.nrows)
				e.b = e.b[:0]
				encodeColBand(&e, lanes, lo, hi, rawLanes)
				h, err := emit(e.b)
				if err != nil {
					return nil, err
				}
				bands[b] = h
			}
			mt.cols[ci] = bands
		}
		m.tables = append(m.tables, mt)
	}
	for _, st := range snap.CVDs {
		layout := layoutForCVD(st)
		mc := manifestCVD{layout: layout}
		e.b = e.b[:0]
		encodeCVDHead(&e, st)
		h, err := emit(e.b)
		if err != nil {
			return nil, err
		}
		mc.head = h
		mc.catalog = make([]ChunkHash, numBands(layout.records, layout.catBand))
		for b := range mc.catalog {
			lo, hi := bandSpan(b, layout.catBand, layout.records)
			e.b = e.b[:0]
			encodeCatalogBand(&e, st.Records[lo:hi])
			if mc.catalog[b], err = emit(e.b); err != nil {
				return nil, err
			}
		}
		mc.runs = make([]ChunkHash, numBands(layout.sets, layout.runLen))
		for b := range mc.runs {
			lo, hi := bandSpan(b, layout.runLen, layout.sets)
			e.b = e.b[:0]
			encodeRecsetRun(&e, st.RecordSets[lo:hi])
			if mc.runs[b], err = emit(e.b); err != nil {
				return nil, err
			}
		}
		m.cvds = append(m.cvds, mc)
	}
	return m, nil
}
