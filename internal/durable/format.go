// Package durable is the persistence subsystem of the engine: incremental,
// content-addressed checkpoints of the full engine state (columnar table
// lanes under sampled per-lane codecs, compressed record sets, version
// graphs, partition maps, and CVD metadata) plus an append-only commit
// write-ahead log with crash recovery. A live data directory holds the
// chunk pack (chunks.orph), one manifest per retained checkpoint epoch
// (manifest-<epoch>.orph), and epoch-named WAL segments (wal-<epoch>.orph);
// opening it assembles the latest manifest's chunks and replays the WAL
// segments at or after that epoch (tolerating a torn tail). A checkpoint
// writes only chunks whose content hash changed, seals the active WAL
// segment, and starts a new one — commits keep flowing while the chunks are
// encoded in the background. Prior manifests are retained for point-in-time
// restore; a refcounting GC drops unreferenced chunks.
//
// See FORMAT.md in this directory for the on-disk layout. The format is
// self-describing enough to fail loudly — every section and WAL record is
// CRC32-framed and the files carry magic plus a format version — but it is
// not portable across incompatible format versions: bump formatVersion on
// layout changes and keep readers refusing unknown versions.
package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/relstore"
)

const (
	// formatVersion is bumped on any incompatible change to the snapshot,
	// chunk, manifest, or WAL payload layout. Readers refuse other versions.
	// Version 2 introduced content-addressed chunked checkpoints (manifest +
	// chunk pack), lane codecs, and epoch-named WAL segments.
	formatVersion = 2

	snapshotMagic = "ORPHSNP1"
	walMagic      = "ORPHWAL1"
	packMagic     = "ORPHPAK1"
	manifestMagic = "ORPHMAN1"

	// SnapshotFile is the single-file snapshot name: the Save export format
	// (and the only file of a Save-created directory). Live data directories
	// instead persist through manifest-<epoch>.orph + chunks.orph.
	SnapshotFile = "snapshot.orph"

	// WALFile is the format v1 WAL name. v2 names WAL segments by epoch
	// (WALSegmentFileName); the old name is only detected to refuse v1
	// directories loudly.
	WALFile = "wal.orph"
)

// WALSegmentFileName returns the WAL segment file name for an epoch; the
// fixed-width hex key makes lexical order equal epoch order.
func WALSegmentFileName(epoch uint64) string {
	return fmt.Sprintf("wal-%016x.orph", epoch)
}

// parseWALSegmentName extracts the epoch from a WAL segment file name.
func parseWALSegmentName(name string) (uint64, bool) {
	var epoch uint64
	var tail string
	if n, err := fmt.Sscanf(name, "wal-%16x%s", &epoch, &tail); err != nil || n != 2 || tail != ".orph" {
		return 0, false
	}
	return epoch, true
}

// enc is a little-endian append-only encoder over a byte slice.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)      { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)    { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)    { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)    { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64)   { e.u64(math.Float64bits(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) raw(b []byte) { e.b = append(e.b, b...) }

// dec is the matching decoder with a sticky error: after the first failure
// every accessor returns zero values, so decode code reads linearly and
// checks d.err once per section.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("durable: "+format, args...)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.fail("truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) boolean() bool { return d.u8() != 0 }

// length reads a uvarint count and bounds it by the remaining bytes divided
// by minBytesPer, so corrupt counts fail instead of allocating gigabytes.
func (d *dec) length(minBytesPer int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64((len(d.b)-d.off)/minBytesPer)+1 {
		d.fail("implausible element count %d with %d bytes left", n, len(d.b)-d.off)
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.length(1)
	if !d.need(n) {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

func (d *dec) raw(n int) []byte {
	if !d.need(n) {
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// ---- shared sub-encodings ---------------------------------------------------

// value encodes one relstore.Value as a type tag plus typed payload.
func (e *enc) value(v relstore.Value) {
	e.u8(uint8(v.Type))
	switch v.Type {
	case relstore.TypeInt:
		e.varint(v.I)
	case relstore.TypeFloat:
		e.f64(v.F)
	case relstore.TypeString:
		e.str(v.S)
	case relstore.TypeBool:
		e.boolean(v.B)
	case relstore.TypeIntArray:
		e.uvarint(uint64(len(v.A)))
		for _, x := range v.A {
			e.varint(x)
		}
	}
}

func (d *dec) value() relstore.Value {
	t := relstore.ValueType(d.u8())
	switch t {
	case relstore.TypeNull:
		return relstore.Null()
	case relstore.TypeInt:
		return relstore.Int(d.varint())
	case relstore.TypeFloat:
		return relstore.Float(d.f64())
	case relstore.TypeString:
		return relstore.Str(d.str())
	case relstore.TypeBool:
		return relstore.Bool(d.boolean())
	case relstore.TypeIntArray:
		n := d.length(1)
		a := make([]int64, n)
		for i := range a {
			a[i] = d.varint()
		}
		return relstore.IntArray(a)
	default:
		d.fail("unknown value type %d", int(t))
		return relstore.Null()
	}
}

func (e *enc) row(r relstore.Row) {
	e.uvarint(uint64(len(r)))
	for _, v := range r {
		e.value(v)
	}
}

func (d *dec) row() relstore.Row {
	n := d.length(1)
	r := make(relstore.Row, n)
	for i := range r {
		r[i] = d.value()
	}
	return r
}

func (e *enc) schema(s relstore.Schema) {
	e.uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		e.str(c.Name)
		e.uvarint(uint64(c.Type))
	}
	e.uvarint(uint64(len(s.PrimaryKey)))
	for _, k := range s.PrimaryKey {
		e.str(k)
	}
}

func (d *dec) schema() relstore.Schema {
	ncols := d.length(2)
	cols := make([]relstore.Column, ncols)
	for i := range cols {
		cols[i] = relstore.Column{Name: d.str(), Type: relstore.ValueType(d.uvarint())}
	}
	npk := d.length(1)
	pk := make([]string, npk)
	for i := range pk {
		pk[i] = d.str()
	}
	if d.err != nil {
		return relstore.Schema{}
	}
	s, err := relstore.NewSchema(cols, pk...)
	if err != nil {
		d.fail("invalid schema: %v", err)
		return relstore.Schema{}
	}
	return s
}
