package durable

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// injectFaults swaps the store's WAL file for the fault-injecting wrapper
// promoted into internal/vfs (FaultFile): failing writes land a torn prefix,
// syncs are counted, and each armed failure is single-shot.
func injectFaults(s *Store) *vfs.FaultFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	ff := vfs.NewFaultFile(s.wal)
	s.wal = ff
	return ff
}

// TestAppendFailureKeepsLaterCommits is the append-failure durability
// property: a failed append leaves torn bytes mid-log, and before the
// truncate-back fix the next append would write after the garbage — recovery
// then cut the torn frame AND every later acknowledged record. Now the failed
// append truncates back to the last durable record, so commits acknowledged
// after the failure are recovered bit-identical after reopen.
func TestAppendFailureKeepsLaterCommits(t *testing.T) {
	for _, mode := range []string{"write", "sync"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			ff := injectFaults(s)

			at := time.Unix(0, 42)
			if err := s.LogInit("cvd", 0, walSchema(), walRows(3), "init", "alice", at); err != nil {
				t.Fatal(err)
			}
			if mode == "write" {
				ff.FailWrites(1)
			} else {
				ff.FailSyncs(1)
			}
			if err := s.LogCommit("cvd", []vgraph.VersionID{1}, walRows(2), walSchema(), "lost", "bob", at.Add(time.Second)); err == nil {
				t.Fatal("append with injected fault succeeded")
			}

			// This commit is acknowledged AFTER the failed append: it must
			// survive recovery exactly as written.
			want := &Record{
				Op: OpCommit, CVD: "cvd", Parents: []vgraph.VersionID{7},
				Rows: walRows(5), Schema: walSchema(),
				Message: "survivor", Author: "carol", At: time.Unix(0, 99),
			}
			if err := s.LogCommit(want.CVD, want.Parents, want.Rows, want.Schema, want.Message, want.Author, want.At); err != nil {
				t.Fatalf("append after recovered failure: %v", err)
			}
			s.Close()

			s2, res, recs := openCollect(t, dir)
			defer s2.Close()
			if res.TornTail {
				t.Fatal("reopen saw a torn tail: the failed append was not truncated back")
			}
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2 (init + survivor)", len(recs))
			}
			got := recs[1]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("survivor commit not bit-identical after reopen:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestAppendTruncateFailurePoisonsStore: when the failed append's truncate-back
// itself fails, the tail state is unknown — the store must poison itself (as
// Checkpoint does) so no later commit can claim durability, and reopening the
// directory must recover everything durable before the failure.
func TestAppendTruncateFailurePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ff := injectFaults(s)
	at := time.Unix(0, 42)
	if err := s.LogInit("cvd", 0, walSchema(), walRows(3), "init", "alice", at); err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(1)
	ff.FailTruncs(1)
	if err := s.LogDrop("x"); err == nil {
		t.Fatal("append with injected fault succeeded")
	}
	// Poisoned: every later append must fail fast, even though the fault is gone.
	if err := s.LogDrop("y"); err == nil {
		t.Fatal("append on a poisoned store succeeded")
	}
	if err := s.Checkpoint(&Snapshot{DBName: "db"}); err == nil {
		t.Fatal("checkpoint on a poisoned store succeeded")
	}
	s.Close()

	// Reopen heals: the torn bytes are cut by recovery, the init survives.
	s2, res, recs := openCollect(t, dir)
	defer s2.Close()
	if !res.TornTail {
		t.Fatal("reopen did not report the torn tail left by the poisoned store")
	}
	if len(recs) != 1 || recs[0].Op != OpInit {
		t.Fatalf("recovered %d records, want the init only", len(recs))
	}
	if err := s2.LogDrop("after"); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestGroupCommitBatchesFsyncs: with group commit enabled, a storm of
// concurrent appends must coalesce into far fewer fsyncs than records while
// every record still replays after reopen.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGroupCommit(GroupCommitConfig{MaxBatch: 16, MaxDelay: 5 * time.Millisecond})
	ff := injectFaults(s)

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.LogDrop(fmt.Sprintf("cvd%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := ff.SyncCount(); got >= n {
		t.Fatalf("%d appends cost %d fsyncs; group commit did not batch", n, got)
	}
	s.Close()

	_, _, recs := openCollect(t, dir)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	seen := make(map[string]bool, n)
	for _, r := range recs {
		if r.Op != OpDrop {
			t.Fatalf("unexpected op %d", r.Op)
		}
		if seen[r.CVD] {
			t.Fatalf("record %q replayed twice", r.CVD)
		}
		seen[r.CVD] = true
	}
}

// TestGroupCommitDisabled pins the single-fsync baseline: MaxBatch 1 keeps
// the old one-append-one-fsync behaviour.
func TestGroupCommitDisabled(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetGroupCommit(GroupCommitConfig{MaxBatch: 1})
	ff := injectFaults(s)
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.LogDrop(fmt.Sprintf("cvd%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ff.SyncCount(); got != n {
		t.Fatalf("%d sequential unbatched appends cost %d fsyncs, want %d", n, got, n)
	}
}

// TestGroupCommitFailureFailsWholeBatch: a batch whose write fails must
// report the failure to every record in it, truncate back, and leave the
// store appendable; nothing from the failed batch may survive recovery.
func TestGroupCommitFailureFailsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A long delay window so the concurrent appends below reliably share one
	// batch (and one failing write).
	s.SetGroupCommit(GroupCommitConfig{MaxBatch: 64, MaxDelay: 50 * time.Millisecond})
	ff := injectFaults(s)
	if err := s.LogDrop("before"); err != nil {
		t.Fatal(err)
	}
	// Arm more write failures than batches the 8 appends could possibly
	// split into: however the race shakes out, every batch's write fails.
	ff.FailWrites(8)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.LogDrop(fmt.Sprintf("doomed%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("append %d of the failing batch reported success", i)
		}
	}
	ff.FailWrites(0)
	if err := s.LogDrop("after"); err != nil {
		t.Fatalf("append after failed batch: %v", err)
	}
	s.Close()

	_, _, recs := openCollect(t, dir)
	if len(recs) != 2 || recs[0].CVD != "before" || recs[1].CVD != "after" {
		t.Fatalf("recovered %v, want exactly [before after]", recs)
	}
}
