package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cvd"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// nanoTime converts a persisted UnixNano timestamp back to a time.Time,
// preserving the zero time (UnixNano of the zero time is undefined, so zero
// times are stored as 0).
func nanoTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// timeNano is the encoding half of nanoTime.
func timeNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Snapshot is the complete persisted state of an engine: the backing
// database's tables (serialized straight from their columnar lanes) plus the
// logical state of every CVD. Epoch pairs the snapshot with the WAL
// generation that continues it (see Store.Checkpoint).
type Snapshot struct {
	DBName string
	Epoch  uint64
	Tables []*relstore.Table
	CVDs   []*cvd.PersistentState
}

// Section kinds of the single-file snapshot stream (the Save export format).
// The stream is strictly sequential — header, then per table its meta
// followed by its column-band chunks (col-major), then per CVD its layout +
// head chunk followed by catalog-band and recset-run chunks — so both writer
// and reader touch one section at a time: peak memory is O(largest section),
// not O(snapshot).
const (
	secHeader uint8 = 1
	secTable  uint8 = 2
	secCVD    uint8 = 3
	secChunk  uint8 = 4
)

// SnapshotOptions tunes snapshot encoding.
type SnapshotOptions struct {
	// RawLanes forces the identity lane encodings, disabling the sampled
	// codecs — the uncompressed baseline for the compression benchmark.
	RawLanes bool
}

// writeSection frames one section: kind, payload length, payload, CRC32.
func writeSection(w io.Writer, kind uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readSection reads one framed section; io.EOF (clean) signals end of stream.
func readSection(r io.Reader) (uint8, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("durable: truncated section header: %w", err)
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint64(hdr[1:])
	if n > 1<<40 {
		return 0, nil, fmt.Errorf("durable: implausible section length %d", n)
	}
	// The length is read before the payload CRC can vouch for it, so grow
	// incrementally (CopyN reads in small chunks): a corrupt huge length
	// fails with a truncation error once the real bytes run out instead of
	// attempting one giant allocation up front.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated section payload: %w", err)
	}
	payload := buf.Bytes()
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated section CRC: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("durable: section kind %d CRC mismatch (%08x != %08x)", kind, got, want)
	}
	return kind, payload, nil
}

// WriteSnapshot serializes a snapshot to w with default options.
func WriteSnapshot(w io.Writer, snap *Snapshot) error {
	return WriteSnapshotOpts(w, snap, SnapshotOptions{})
}

// WriteSnapshotOpts serializes a snapshot to w: magic, format version, then
// the sequential section stream (see the section-kind comment), each section
// CRC32-framed independently so corruption is localized on read. One encoder
// buffer is reused for every section, so peak memory above the snapshot
// itself is the largest single chunk.
func WriteSnapshotOpts(w io.Writer, snap *Snapshot, opts SnapshotOptions) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], formatVersion)
	if _, err := bw.Write(ver[:]); err != nil {
		return err
	}
	var e enc
	e.str(snap.DBName)
	e.u64(snap.Epoch)
	e.uvarint(uint64(len(snap.Tables)))
	e.uvarint(uint64(len(snap.CVDs)))
	if err := writeSection(bw, secHeader, e.b); err != nil {
		return err
	}
	for _, t := range snap.Tables {
		meta := metaForTable(t)
		e.b = e.b[:0]
		e.tableMeta(&meta)
		if err := writeSection(bw, secTable, e.b); err != nil {
			return err
		}
		for ci := range meta.schema.Columns {
			lanes := t.ColumnLanes(ci)
			for b := 0; b < numBands(meta.nrows, meta.bandRows); b++ {
				lo, hi := bandSpan(b, meta.bandRows, meta.nrows)
				e.b = e.b[:0]
				encodeColBand(&e, lanes, lo, hi, opts.RawLanes)
				if err := writeSection(bw, secChunk, e.b); err != nil {
					return err
				}
			}
		}
	}
	for _, st := range snap.CVDs {
		layout := layoutForCVD(st)
		e.b = e.b[:0]
		e.cvdLayout(&layout)
		encodeCVDHead(&e, st)
		if err := writeSection(bw, secCVD, e.b); err != nil {
			return err
		}
		for b := 0; b < numBands(layout.records, layout.catBand); b++ {
			lo, hi := bandSpan(b, layout.catBand, layout.records)
			e.b = e.b[:0]
			encodeCatalogBand(&e, st.Records[lo:hi])
			if err := writeSection(bw, secChunk, e.b); err != nil {
				return err
			}
		}
		for b := 0; b < numBands(layout.sets, layout.runLen); b++ {
			lo, hi := bandSpan(b, layout.runLen, layout.sets)
			e.b = e.b[:0]
			encodeRecsetRun(&e, st.RecordSets[lo:hi])
			if err := writeSection(bw, secChunk, e.b); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readChunkSection reads the next section and requires it to be a chunk.
func readChunkSection(br io.Reader, what string) ([]byte, error) {
	kind, payload, err := readSection(br)
	if err != nil {
		return nil, fmt.Errorf("durable: %s: %w", what, err)
	}
	if kind != secChunk {
		return nil, fmt.Errorf("durable: %s: section kind %d, want chunk", what, kind)
	}
	return payload, nil
}

// ReadSnapshot parses a snapshot stream written by WriteSnapshot, one
// section at a time.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != snapshotMagic {
		return nil, fmt.Errorf("durable: not a snapshot file (magic %q)", magic[:])
	}
	var ver [4]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(ver[:]); v != formatVersion {
		return nil, fmt.Errorf("durable: unsupported snapshot format version %d (want %d; reopen with a matching build and re-export)", v, formatVersion)
	}
	kind, payload, err := readSection(br)
	if err != nil {
		return nil, err
	}
	if kind != secHeader {
		return nil, fmt.Errorf("durable: first section is kind %d, want header", kind)
	}
	d := &dec{b: payload}
	snap := &Snapshot{DBName: d.str(), Epoch: d.u64()}
	// The header counts refer to the sections that follow, not to bytes of
	// this payload, so they get an absolute bound rather than the
	// payload-relative plausibility check.
	numTables := d.uvarint()
	numCVDs := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("durable: snapshot header: %w", d.err)
	}
	if numTables > 1<<24 || numCVDs > 1<<24 {
		return nil, fmt.Errorf("durable: snapshot header: implausible section counts (%d tables, %d CVDs)", numTables, numCVDs)
	}
	for i := uint64(0); i < numTables; i++ {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("durable: table section %d: %w", i, err)
		}
		if kind != secTable {
			return nil, fmt.Errorf("durable: section %d is kind %d, want table", i, kind)
		}
		td := &dec{b: payload}
		meta := td.tableMeta()
		if td.err != nil {
			return nil, fmt.Errorf("durable: table section %d: %w", i, td.err)
		}
		asm := newTableAssembler(meta)
		for ci := range meta.schema.Columns {
			for b := 0; b < numBands(meta.nrows, meta.bandRows); b++ {
				chunk, err := readChunkSection(br, fmt.Sprintf("table %s column %d", meta.name, ci))
				if err != nil {
					return nil, err
				}
				if err := asm.addBand(ci, chunk); err != nil {
					return nil, err
				}
			}
		}
		t, err := asm.finish()
		if err != nil {
			return nil, err
		}
		snap.Tables = append(snap.Tables, t)
	}
	for i := uint64(0); i < numCVDs; i++ {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("durable: CVD section %d: %w", i, err)
		}
		if kind != secCVD {
			return nil, fmt.Errorf("durable: section %d is kind %d, want CVD", i, kind)
		}
		cd := &dec{b: payload}
		layout := cd.cvdLayout()
		if cd.err != nil {
			return nil, fmt.Errorf("durable: CVD section %d: %w", i, cd.err)
		}
		asm, err := newCVDAssembler(layout, payload[cd.off:])
		if err != nil {
			return nil, err
		}
		for b := 0; b < numBands(layout.records, layout.catBand); b++ {
			chunk, err := readChunkSection(br, fmt.Sprintf("CVD %s catalog", layout.name))
			if err != nil {
				return nil, err
			}
			if err := asm.addCatalogBand(chunk); err != nil {
				return nil, err
			}
		}
		for b := 0; b < numBands(layout.sets, layout.runLen); b++ {
			chunk, err := readChunkSection(br, fmt.Sprintf("CVD %s record sets", layout.name))
			if err != nil {
				return nil, err
			}
			if err := asm.addRecsetRun(chunk); err != nil {
				return nil, err
			}
		}
		st, err := asm.finish()
		if err != nil {
			return nil, err
		}
		snap.CVDs = append(snap.CVDs, st)
	}
	return snap, nil
}

// WriteSnapshotFile writes a snapshot atomically: into a temp file in the
// same directory, fsynced, then renamed over the target.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	return writeSnapshotFileFS(vfs.OS(), path, snap, SnapshotOptions{})
}

// WriteSnapshotFileOpts is WriteSnapshotFile with explicit encoding options.
func WriteSnapshotFileOpts(path string, snap *Snapshot, opts SnapshotOptions) error {
	return writeSnapshotFileFS(vfs.OS(), path, snap, opts)
}

// writeSnapshotFileFS is the FS-explicit snapshot writer behind the exported
// entry points: temp file, fsync, rename, dir sync.
func writeSnapshotFileFS(fsys vfs.FS, path string, snap *Snapshot, opts SnapshotOptions) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if err := WriteSnapshotOpts(tmp, snap, opts); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// ReadSnapshotFile loads a snapshot file; a missing file returns (nil, nil).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	return readSnapshotFileFS(vfs.OS(), path)
}

func readSnapshotFileFS(fsys vfs.FS, path string) (*Snapshot, error) {
	f, err := vfs.Open(fsys, path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ---- table sections ---------------------------------------------------------

// Lane presence bits of a serialized column.
const (
	laneInts uint8 = 1 << iota
	laneFloats
	laneStrs
	laneArrs
)

// ---- CVD sections -----------------------------------------------------------

func sortedVersionKeys(m map[vgraph.VersionID]int) []vgraph.VersionID {
	out := make([]vgraph.VersionID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *dec) recset() *recset.Set {
	if d.err != nil {
		return recset.New()
	}
	s, n, err := recset.DecodeBinary(d.b[d.off:])
	if err != nil {
		d.fail("decoding record set: %v", err)
		return recset.New()
	}
	d.off += n
	return s
}
