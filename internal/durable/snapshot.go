package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cvd"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// nanoTime converts a persisted UnixNano timestamp back to a time.Time,
// preserving the zero time (UnixNano of the zero time is undefined, so zero
// times are stored as 0).
func nanoTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// timeNano is the encoding half of nanoTime.
func timeNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Snapshot is the complete persisted state of an engine: the backing
// database's tables (serialized straight from their columnar lanes) plus the
// logical state of every CVD. Epoch pairs the snapshot with the WAL
// generation that continues it (see Store.Checkpoint).
type Snapshot struct {
	DBName string
	Epoch  uint64
	Tables []*relstore.Table
	CVDs   []*cvd.PersistentState
}

// Section kinds of the snapshot stream.
const (
	secManifest uint8 = 1
	secTable    uint8 = 2
	secCVD      uint8 = 3
)

// writeSection frames one section: kind, payload length, payload, CRC32.
func writeSection(w io.Writer, kind uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readSection reads one framed section; io.EOF (clean) signals end of stream.
func readSection(r io.Reader) (uint8, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("durable: truncated section header: %w", err)
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint64(hdr[1:])
	if n > 1<<40 {
		return 0, nil, fmt.Errorf("durable: implausible section length %d", n)
	}
	// The length is read before the payload CRC can vouch for it, so grow
	// incrementally (CopyN reads in small chunks): a corrupt huge length
	// fails with a truncation error once the real bytes run out instead of
	// attempting one giant allocation up front.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated section payload: %w", err)
	}
	payload := buf.Bytes()
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated section CRC: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("durable: section kind %d CRC mismatch (%08x != %08x)", kind, got, want)
	}
	return kind, payload, nil
}

// WriteSnapshot serializes a snapshot to w: magic, format version, then a
// manifest section followed by one section per table and per CVD, each
// CRC32-framed independently so corruption is localized on read.
func WriteSnapshot(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], formatVersion)
	if _, err := bw.Write(ver[:]); err != nil {
		return err
	}
	var e enc
	e.str(snap.DBName)
	e.u64(snap.Epoch)
	e.uvarint(uint64(len(snap.Tables)))
	e.uvarint(uint64(len(snap.CVDs)))
	if err := writeSection(bw, secManifest, e.b); err != nil {
		return err
	}
	for _, t := range snap.Tables {
		e.b = e.b[:0]
		encodeTable(&e, t)
		if err := writeSection(bw, secTable, e.b); err != nil {
			return err
		}
	}
	for _, st := range snap.CVDs {
		e.b = e.b[:0]
		encodeCVDState(&e, st)
		if err := writeSection(bw, secCVD, e.b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot stream written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != snapshotMagic {
		return nil, fmt.Errorf("durable: not a snapshot file (magic %q)", magic[:])
	}
	var ver [4]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(ver[:]); v != formatVersion {
		return nil, fmt.Errorf("durable: unsupported snapshot format version %d (want %d)", v, formatVersion)
	}
	kind, payload, err := readSection(br)
	if err != nil {
		return nil, err
	}
	if kind != secManifest {
		return nil, fmt.Errorf("durable: first section is kind %d, want manifest", kind)
	}
	d := &dec{b: payload}
	snap := &Snapshot{DBName: d.str(), Epoch: d.u64()}
	// The manifest counts refer to the sections that follow, not to bytes of
	// this payload, so they get an absolute bound rather than the
	// payload-relative plausibility check.
	numTables := d.uvarint()
	numCVDs := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("durable: manifest: %w", d.err)
	}
	if numTables > 1<<24 || numCVDs > 1<<24 {
		return nil, fmt.Errorf("durable: manifest: implausible section counts (%d tables, %d CVDs)", numTables, numCVDs)
	}
	for i := uint64(0); i < numTables; i++ {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("durable: table section %d: %w", i, err)
		}
		if kind != secTable {
			return nil, fmt.Errorf("durable: section %d is kind %d, want table", i, kind)
		}
		t, err := decodeTable(&dec{b: payload})
		if err != nil {
			return nil, fmt.Errorf("durable: table section %d: %w", i, err)
		}
		snap.Tables = append(snap.Tables, t)
	}
	for i := uint64(0); i < numCVDs; i++ {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("durable: CVD section %d: %w", i, err)
		}
		if kind != secCVD {
			return nil, fmt.Errorf("durable: section %d is kind %d, want CVD", i, kind)
		}
		st, err := decodeCVDState(&dec{b: payload})
		if err != nil {
			return nil, fmt.Errorf("durable: CVD section %d: %w", i, err)
		}
		snap.CVDs = append(snap.CVDs, st)
	}
	return snap, nil
}

// WriteSnapshotFile writes a snapshot atomically: into a temp file in the
// same directory, fsynced, then renamed over the target.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadSnapshotFile loads a snapshot file; a missing file returns (nil, nil).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// syncDir fsyncs a directory so a rename inside it is durable; best-effort on
// platforms where directories cannot be opened for sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// ---- table sections ---------------------------------------------------------

// Lane presence bits of a serialized column.
const (
	laneInts uint8 = 1 << iota
	laneFloats
	laneStrs
	laneArrs
)

// encodeTable writes one table: name, schema, clustering, index definition,
// row count, then each column's physical lanes — the tag vector verbatim and
// every materialized payload lane (int64/float64/string/overflow).
func encodeTable(e *enc, t *relstore.Table) {
	e.str(t.Name)
	e.schema(t.Schema)
	e.uvarint(uint64(t.Cluster))
	idx := t.IndexColumns()
	e.uvarint(uint64(len(idx)))
	for _, c := range idx {
		e.str(c)
	}
	n := t.Len()
	e.uvarint(uint64(n))
	for ci := range t.Schema.Columns {
		l := t.ColumnLanes(ci)
		var present uint8
		if l.Ints != nil {
			present |= laneInts
		}
		if l.Floats != nil {
			present |= laneFloats
		}
		if l.Strs != nil {
			present |= laneStrs
		}
		if l.Arrs != nil {
			present |= laneArrs
		}
		e.u8(present)
		e.raw(l.Tags)
		if l.Ints != nil {
			for _, v := range l.Ints {
				e.u64(uint64(v))
			}
		}
		if l.Floats != nil {
			for _, v := range l.Floats {
				e.f64(v)
			}
		}
		if l.Strs != nil {
			for _, s := range l.Strs {
				e.str(s)
			}
		}
		if l.Arrs != nil {
			for _, a := range l.Arrs {
				e.uvarint(uint64(len(a)))
				for _, v := range a {
					e.varint(v)
				}
			}
		}
	}
}

func decodeTable(d *dec) (*relstore.Table, error) {
	name := d.str()
	schema := d.schema()
	cluster := relstore.ClusterMode(d.uvarint())
	nidx := d.length(1)
	idx := make([]string, nidx)
	for i := range idx {
		idx[i] = d.str()
	}
	n := d.length(1)
	if d.err != nil {
		return nil, d.err
	}
	lanes := make([]relstore.ColumnLanes, len(schema.Columns))
	for ci := range lanes {
		present := d.u8()
		tags := d.raw(n)
		if d.err != nil {
			return nil, d.err
		}
		l := relstore.ColumnLanes{Tags: append([]uint8(nil), tags...)}
		if present&laneInts != 0 {
			l.Ints = make([]int64, n)
			for i := range l.Ints {
				l.Ints[i] = int64(d.u64())
			}
		}
		if present&laneFloats != 0 {
			l.Floats = make([]float64, n)
			for i := range l.Floats {
				l.Floats[i] = d.f64()
			}
		}
		if present&laneStrs != 0 {
			l.Strs = make([]string, n)
			for i := range l.Strs {
				l.Strs[i] = d.str()
			}
		}
		if present&laneArrs != 0 {
			l.Arrs = make([][]int64, n)
			for i := range l.Arrs {
				an := d.length(1)
				if an == 0 {
					continue
				}
				a := make([]int64, an)
				for j := range a {
					a[j] = d.varint()
				}
				l.Arrs[i] = a
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		lanes[ci] = l
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("durable: table %s: %d trailing bytes", name, len(d.b)-d.off)
	}
	return relstore.NewTableFromLanes(name, schema, cluster, n, lanes, idx)
}

// ---- CVD sections -----------------------------------------------------------

// encodeCVDState writes one CVD's logical state: identity and counters, the
// record catalog, the version graph, the bipartite record sets (recset
// containers verbatim), version metadata, the attribute registry, the
// backing-table list, and the partition map of partitioned rlist storage.
func encodeCVDState(e *enc, st *cvd.PersistentState) {
	e.str(st.Name)
	e.uvarint(uint64(st.Kind))
	e.schema(st.Schema)
	e.uvarint(uint64(st.NextVID))
	e.uvarint(uint64(st.NextRID))

	e.uvarint(uint64(len(st.Records)))
	for _, rec := range st.Records {
		e.uvarint(uint64(rec.RID))
		e.row(rec.Row)
	}

	versions := st.Graph.Versions()
	e.uvarint(uint64(len(versions)))
	for _, v := range versions {
		n := st.Graph.Node(v)
		e.uvarint(uint64(n.ID))
		e.varint(n.NumRecords)
		e.varint(int64(n.NumAttrs))
	}
	edges := st.Graph.Edges()
	e.uvarint(uint64(len(edges)))
	for _, ed := range edges {
		e.uvarint(uint64(ed.Parent))
		e.uvarint(uint64(ed.Child))
		e.varint(ed.Weight)
		e.varint(int64(ed.CommonAttrs))
	}

	e.uvarint(uint64(len(st.RecordSets)))
	for _, vs := range st.RecordSets {
		e.uvarint(uint64(vs.Version))
		e.b = vs.Set.AppendBinary(e.b)
	}

	e.uvarint(uint64(len(st.Metas)))
	for _, m := range st.Metas {
		e.uvarint(uint64(m.ID))
		e.uvarint(uint64(len(m.Parents)))
		for _, p := range m.Parents {
			e.uvarint(uint64(p))
		}
		e.varint(timeNano(m.CheckoutAt))
		e.varint(timeNano(m.CommitAt))
		e.str(m.Message)
		e.str(m.Author)
		e.uvarint(uint64(len(m.Attributes)))
		for _, a := range m.Attributes {
			e.uvarint(uint64(a))
		}
		e.varint(m.NumRecords)
	}

	e.uvarint(uint64(len(st.Attrs)))
	for _, a := range st.Attrs {
		e.uvarint(uint64(a.ID))
		e.str(a.Name)
		e.uvarint(uint64(a.Type))
	}

	e.uvarint(uint64(len(st.Tables)))
	for _, t := range st.Tables {
		e.str(t)
	}

	e.uvarint(uint64(len(st.Partitions)))
	for _, p := range st.Partitions {
		e.str(p)
	}
	if len(st.Partitions) > 0 {
		e.uvarint(uint64(len(st.PartitionOf)))
		for _, v := range sortedVersionKeys(st.PartitionOf) {
			e.uvarint(uint64(v))
			e.uvarint(uint64(st.PartitionOf[v]))
		}
		for _, rs := range st.Resident {
			e.b = rs.AppendBinary(e.b)
		}
	}
}

func sortedVersionKeys(m map[vgraph.VersionID]int) []vgraph.VersionID {
	out := make([]vgraph.VersionID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *dec) recset() *recset.Set {
	if d.err != nil {
		return recset.New()
	}
	s, n, err := recset.DecodeBinary(d.b[d.off:])
	if err != nil {
		d.fail("decoding record set: %v", err)
		return recset.New()
	}
	d.off += n
	return s
}

func decodeCVDState(d *dec) (*cvd.PersistentState, error) {
	st := &cvd.PersistentState{
		Name:    d.str(),
		Kind:    cvd.ModelKind(d.uvarint()),
		Schema:  d.schema(),
		NextVID: vgraph.VersionID(d.uvarint()),
		NextRID: vgraph.RecordID(d.uvarint()),
	}

	nrec := d.length(2)
	st.Records = make([]cvd.PersistedRecord, nrec)
	for i := range st.Records {
		st.Records[i] = cvd.PersistedRecord{RID: vgraph.RecordID(d.uvarint()), Row: d.row()}
	}

	g := vgraph.New()
	nver := d.length(2)
	for i := 0; i < nver; i++ {
		id := vgraph.VersionID(d.uvarint())
		numRecords := d.varint()
		numAttrs := int(d.varint())
		if d.err != nil {
			return nil, d.err
		}
		n, err := g.AddVersion(id, numRecords)
		if err != nil {
			return nil, fmt.Errorf("durable: CVD %s: %w", st.Name, err)
		}
		n.NumAttrs = numAttrs
	}
	nedge := d.length(2)
	for i := 0; i < nedge; i++ {
		parent := vgraph.VersionID(d.uvarint())
		child := vgraph.VersionID(d.uvarint())
		weight := d.varint()
		commonAttrs := int(d.varint())
		if d.err != nil {
			return nil, d.err
		}
		if err := g.AddEdgeAttrs(parent, child, weight, commonAttrs); err != nil {
			return nil, fmt.Errorf("durable: CVD %s: %w", st.Name, err)
		}
	}
	st.Graph = g

	nsets := d.length(2)
	st.RecordSets = make([]cvd.VersionRecordSet, nsets)
	for i := range st.RecordSets {
		st.RecordSets[i] = cvd.VersionRecordSet{Version: vgraph.VersionID(d.uvarint()), Set: d.recset()}
	}

	nmeta := d.length(2)
	st.Metas = make([]*cvd.VersionMeta, nmeta)
	for i := range st.Metas {
		m := &cvd.VersionMeta{ID: vgraph.VersionID(d.uvarint())}
		nparents := d.length(1)
		m.Parents = make([]vgraph.VersionID, nparents)
		for j := range m.Parents {
			m.Parents[j] = vgraph.VersionID(d.uvarint())
		}
		m.CheckoutAt = nanoTime(d.varint())
		m.CommitAt = nanoTime(d.varint())
		m.Message = d.str()
		m.Author = d.str()
		nattrs := d.length(1)
		m.Attributes = make([]cvd.AttrID, nattrs)
		for j := range m.Attributes {
			m.Attributes[j] = cvd.AttrID(d.uvarint())
		}
		m.NumRecords = d.varint()
		st.Metas[i] = m
	}

	nattr := d.length(2)
	st.Attrs = make([]cvd.Attribute, nattr)
	for i := range st.Attrs {
		st.Attrs[i] = cvd.Attribute{
			ID:   cvd.AttrID(d.uvarint()),
			Name: d.str(),
			Type: relstore.ValueType(d.uvarint()),
		}
	}

	ntab := d.length(1)
	st.Tables = make([]string, ntab)
	for i := range st.Tables {
		st.Tables[i] = d.str()
	}

	nparts := d.length(1)
	if nparts > 0 {
		st.Partitions = make([]string, nparts)
		for i := range st.Partitions {
			st.Partitions[i] = d.str()
		}
		nassign := d.length(2)
		st.PartitionOf = make(map[vgraph.VersionID]int, nassign)
		for i := 0; i < nassign; i++ {
			v := vgraph.VersionID(d.uvarint())
			st.PartitionOf[v] = int(d.uvarint())
		}
		st.Resident = make([]*recset.Set, nparts)
		for i := range st.Resident {
			st.Resident[i] = d.recset()
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("durable: CVD %s: %d trailing bytes", st.Name, len(d.b)-d.off)
	}
	return st, nil
}
