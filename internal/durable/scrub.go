package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/vfs"
)

// Scrub is the offline integrity checker behind `orpheus fsck`: it walks a
// closed data directory end to end — chunk pack frames (CRC and content
// hash), checkpoint manifests (file CRC plus every chunk reference),
// WAL segment framing and record decoding, and the manifest/segment epoch
// chain — classifies every defect it finds, and (with Repair) fixes what can
// be fixed without dropping committed history silently:
//
//   - a torn pack tail or torn active-WAL tail (crash debris) is truncated
//     away, exactly as recovery would;
//   - corrupt chunks no manifest references are compacted out of the pack;
//   - when the newest manifest references corrupt or missing chunks but an
//     older retained manifest is fully intact, the damaged manifests (and
//     the WAL segments stranded by the fallback) are quarantined with a
//     .corrupt suffix so the directory opens again at the older epoch — and
//     the report says exactly which epochs were lost;
//   - everything else (a torn sealed segment, a corrupt live chunk with no
//     intact fallback, an undecodable committed record) is reported with the
//     affected epochs and left untouched.

// IssueKind classifies one defect found by Scrub.
type IssueKind string

// The corruption classes Scrub distinguishes.
const (
	// IssueTornPackTail: the chunk pack ends mid-frame — a crashed append.
	// Repairable: the tail is unreferenced by construction (manifests are
	// written only after the pack is fsynced).
	IssueTornPackTail IssueKind = "torn-pack-tail"
	// IssueCorruptChunk: a pack frame whose payload fails its CRC or whose
	// content does not hash to the frame's chunk hash (mid-file corruption,
	// not a torn tail). Repairable by compaction only if no manifest
	// references it.
	IssueCorruptChunk IssueKind = "corrupt-chunk"
	// IssueDanglingRef: a manifest references a chunk the pack does not hold.
	IssueDanglingRef IssueKind = "dangling-ref"
	// IssueCorruptManifest: a manifest file fails its magic, CRC, or decode.
	IssueCorruptManifest IssueKind = "corrupt-manifest"
	// IssueTornWALTail: the active WAL segment ends mid-record — a crashed
	// append. Repairable: recovery would truncate it identically.
	IssueTornWALTail IssueKind = "torn-wal-tail"
	// IssueSealedWALTorn: a sealed segment ends mid-record. Every record in a
	// sealed segment was acknowledged, so this is committed-history loss —
	// never repaired silently.
	IssueSealedWALTorn IssueKind = "sealed-wal-torn"
	// IssueCorruptWALRecord: a record passes its frame CRC but does not
	// decode — mid-log corruption of committed history.
	IssueCorruptWALRecord IssueKind = "corrupt-wal-record"
	// IssueMissingWALSegment: the manifest/segment epoch chain has a hole.
	IssueMissingWALSegment IssueKind = "missing-wal-segment"
	// IssueCorruptSnapshot: the flat snapshot.orph fails validation (only
	// checked when it is the recovery root, i.e. no manifest exists).
	IssueCorruptSnapshot IssueKind = "corrupt-snapshot"
	// IssueUnopenable: after repairs, a full open of the directory still
	// fails (reported by Scrub's verification pass).
	IssueUnopenable IssueKind = "unopenable"
)

// ScrubIssue is one classified defect.
type ScrubIssue struct {
	Kind   IssueKind `json:"kind"`
	Path   string    `json:"path,omitempty"`
	Detail string    `json:"detail"`
	// Epochs lists the checkpoint epochs whose restorability the issue
	// affects (empty when none — e.g. a corrupt chunk nothing references).
	Epochs []uint64 `json:"epochs,omitempty"`
	// Repaired reports that a Repair run fixed this issue.
	Repaired bool `json:"repaired,omitempty"`
}

// ScrubReport is the outcome of one Scrub pass.
type ScrubReport struct {
	Issues []ScrubIssue `json:"issues"`
	// ChunksChecked counts pack frames whose CRC and content hash were
	// verified; ManifestsChecked and SegmentsChecked count files walked.
	ChunksChecked    int `json:"chunks_checked"`
	ManifestsChecked int `json:"manifests_checked"`
	SegmentsChecked  int `json:"segments_checked"`
	// Repairs counts repair actions taken (0 unless ScrubOptions.Repair).
	Repairs int `json:"repairs"`
}

// Healthy reports a defect-free directory.
func (r *ScrubReport) Healthy() bool { return len(r.Issues) == 0 }

// Unrepaired counts issues no repair fixed — the fsck exit-status signal.
func (r *ScrubReport) Unrepaired() int {
	n := 0
	for _, is := range r.Issues {
		if !is.Repaired {
			n++
		}
	}
	return n
}

func (r *ScrubReport) addIssue(is ScrubIssue) { r.Issues = append(r.Issues, is) }

// ScrubOptions configures Scrub.
type ScrubOptions struct {
	// Repair applies the safe repairs instead of only reporting.
	Repair bool
	// FS substitutes the filesystem (nil = the real one).
	FS vfs.FS
}

// Scrub checks the data directory at dir. It takes the directory's advisory
// lock for the duration — a directory held open by a live engine refuses to
// scrub. The returned report lists every defect found; err is reserved for
// I/O failures of the scrub itself (an unreadable directory), not for
// corruption, which is always reported rather than returned.
func Scrub(dir string, opts ScrubOptions) (*ScrubReport, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if _, err := fsys.Stat(dir); err != nil {
		return nil, err
	}
	lock, err := lockDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{}
	scrubErr := scrubLocked(fsys, dir, opts, rep)
	lock.Close()
	if scrubErr != nil {
		return rep, scrubErr
	}
	// Verification pass: after a repair run, the directory must actually
	// open (full recovery path: manifest load, chunk hash verification, WAL
	// scan). The lock is released above so OpenFS can take it.
	if opts.Repair && rep.Repairs > 0 {
		s, _, err := OpenFS(dir, fsys)
		if err != nil {
			rep.addIssue(ScrubIssue{Kind: IssueUnopenable, Path: dir,
				Detail: fmt.Sprintf("directory still fails to open after repair: %v", err)})
		} else {
			s.Close()
		}
	}
	return rep, nil
}

// packState is the pack walk's outcome.
type packState struct {
	path    string
	exists  bool
	valid   map[ChunkHash]chunkLoc
	corrupt map[ChunkHash]chunkLoc // frames present but failing CRC or hash
	tornAt  int64                  // file offset of a torn tail, -1 if none
	size    int64
	headerBad string // non-empty: the file is not a readable pack at all
}

// scanPackFile walks every pack frame, verifying both the frame CRC and the
// payload's content hash against the frame's chunk hash. Frames that fail
// either but carry a plausible length are skipped over (mid-file corruption
// must not hide the chunks after it); an implausible length or a short read
// at end of file is a torn tail.
func scanPackFile(fsys vfs.FS, path string, rep *ScrubReport) (*packState, error) {
	st := &packState{path: path, tornAt: -1,
		valid: make(map[ChunkHash]chunkLoc), corrupt: make(map[ChunkHash]chunkLoc)}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return nil, err
	}
	defer f.Close()
	st.exists = true
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	st.size = info.Size()
	if st.size < packHeaderSize {
		st.headerBad = fmt.Sprintf("%d bytes is shorter than the pack header", st.size)
		return st, nil
	}
	var hdr [packHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != packMagic {
		st.headerBad = fmt.Sprintf("bad magic %q", hdr[:8])
		return st, nil
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		st.headerBad = fmt.Sprintf("unsupported format version %d (want %d)", v, formatVersion)
		return st, nil
	}
	off := int64(packHeaderSize)
	var frame [packFrameOverhead]byte
	for off < st.size {
		if st.size-off < packFrameOverhead {
			st.tornAt = off
			break
		}
		if _, err := f.ReadAt(frame[:], off); err != nil {
			return nil, err
		}
		var h ChunkHash
		copy(h[:], frame[:16])
		n := binary.LittleEndian.Uint32(frame[16:20])
		wantCRC := binary.LittleEndian.Uint32(frame[20:24])
		if int64(n) > st.size-off-packFrameOverhead {
			// The length field runs past end of file: either a torn append
			// or header rot that makes the rest of the file unparseable.
			st.tornAt = off
			break
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+packFrameOverhead); err != nil {
			return nil, err
		}
		loc := chunkLoc{off: off + packFrameOverhead, n: n}
		rep.ChunksChecked++
		crcOK := crc32.ChecksumIEEE(payload) == wantCRC
		hashOK := hashChunk(payload) == h
		switch {
		case crcOK && hashOK:
			st.valid[h] = loc
		case !crcOK && off+packFrameOverhead+int64(n) == st.size:
			// A CRC failure in the file's very last frame is
			// indistinguishable from a crashed append: classify torn tail.
			st.tornAt = off
		default:
			st.corrupt[h] = loc
		}
		if st.tornAt >= 0 {
			break
		}
		off += packFrameOverhead + int64(n)
	}
	return st, nil
}

// manifestState is one manifest's scrub outcome.
type manifestState struct {
	epoch    uint64
	path     string
	m        *manifest // nil when the file itself is corrupt
	dangling []ChunkHash
	corrupt  []ChunkHash
}

func (ms *manifestState) usable() bool {
	return ms.m != nil && len(ms.dangling) == 0 && len(ms.corrupt) == 0
}

// walState is one WAL segment's scrub outcome.
type walState struct {
	epoch     uint64
	path      string
	headerErr error
	validEnd  int64
	torn      bool
	decodeErr error // a CRC-valid record that does not decode
	records   int
}

// scanWALSegment validates one segment: header, framing, and a full decode
// of every CRC-valid record (a record that passes its CRC but does not
// decode is mid-log corruption, not a torn tail).
func scanWALSegment(fsys vfs.FS, path string, epoch uint64) (*walState, error) {
	ws := &walState{epoch: epoch, path: path}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() < walHeaderSize {
		// Crash inside BeginCheckpoint before the new segment's header
		// landed; recovery completes the header, so this is only a torn tail
		// when the segment is sealed.
		ws.validEnd = walHeaderSize
		ws.torn = info.Size() > 0
		return ws, nil
	}
	e, err := readWALHeader(f)
	if err != nil {
		ws.headerErr = err
		return ws, nil
	}
	if e != epoch {
		ws.headerErr = fmt.Errorf("segment carries epoch %d, name says %d", e, epoch)
		return ws, nil
	}
	ws.validEnd, ws.torn, err = scanWAL(f)
	if err != nil {
		return nil, err
	}
	// Decode pass over the valid region.
	offset := int64(walHeaderSize)
	var hdr [8]byte
	for offset < ws.validEnd {
		if _, err := f.ReadAt(hdr[:], offset); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, offset+int64(len(hdr))); err != nil {
			return nil, err
		}
		if _, err := decodeRecord(payload); err != nil {
			ws.decodeErr = fmt.Errorf("record %d: %w", ws.records, err)
			break
		}
		ws.records++
		offset += int64(len(hdr)) + int64(n)
	}
	return ws, nil
}

// scrubLocked runs the actual analysis (and repairs) under the directory
// lock.
func scrubLocked(fsys vfs.FS, dir string, opts ScrubOptions, rep *ScrubReport) error {
	packPath := filepath.Join(dir, PackFile)
	pack, err := scanPackFile(fsys, packPath, rep)
	if err != nil {
		return err
	}
	if pack.headerBad != "" {
		rep.addIssue(ScrubIssue{Kind: IssueCorruptChunk, Path: packPath,
			Detail: "pack header unreadable: " + pack.headerBad})
	}
	if pack.tornAt >= 0 {
		is := ScrubIssue{Kind: IssueTornPackTail, Path: packPath,
			Detail: fmt.Sprintf("pack ends mid-frame at offset %d (file size %d)", pack.tornAt, pack.size)}
		if opts.Repair {
			if err := truncateFile(fsys, packPath, pack.tornAt); err != nil {
				is.Detail += fmt.Sprintf("; truncate failed: %v", err)
			} else {
				is.Repaired = true
				rep.Repairs++
			}
		}
		rep.addIssue(is)
	}

	// Manifests: file integrity plus every chunk reference.
	epochs, err := listManifestEpochs(fsys, dir)
	if err != nil {
		return err
	}
	var manifests []*manifestState
	for _, e := range epochs {
		ms := &manifestState{epoch: e, path: filepath.Join(dir, ManifestFileName(e))}
		rep.ManifestsChecked++
		m, err := readManifestFile(fsys, ms.path)
		if err != nil {
			rep.addIssue(ScrubIssue{Kind: IssueCorruptManifest, Path: ms.path,
				Detail: err.Error(), Epochs: []uint64{e}})
		} else if m.epoch != e {
			rep.addIssue(ScrubIssue{Kind: IssueCorruptManifest, Path: ms.path,
				Detail: fmt.Sprintf("manifest carries epoch %d, name says %d", m.epoch, e),
				Epochs: []uint64{e}})
		} else {
			ms.m = m
			seen := make(map[ChunkHash]struct{})
			m.chunkRefs(func(h ChunkHash) {
				if _, dup := seen[h]; dup {
					return
				}
				seen[h] = struct{}{}
				if _, ok := pack.valid[h]; ok {
					return
				}
				if _, ok := pack.corrupt[h]; ok {
					ms.corrupt = append(ms.corrupt, h)
				} else {
					ms.dangling = append(ms.dangling, h)
				}
			})
			for _, h := range ms.corrupt {
				rep.addIssue(ScrubIssue{Kind: IssueCorruptChunk, Path: packPath,
					Detail: fmt.Sprintf("live chunk %s fails CRC/content-hash verification (referenced by epoch %d)", h, e),
					Epochs: []uint64{e}})
			}
			for _, h := range ms.dangling {
				rep.addIssue(ScrubIssue{Kind: IssueDanglingRef, Path: ms.path,
					Detail: fmt.Sprintf("manifest references chunk %s which the pack does not hold", h),
					Epochs: []uint64{e}})
			}
		}
		manifests = append(manifests, ms)
	}

	// The recovery root Scrub will hold the directory to: the newest usable
	// manifest, else the flat snapshot (validated only when it is the root).
	bestUsable := -1
	for i := len(manifests) - 1; i >= 0; i-- {
		if manifests[i].usable() {
			bestUsable = i
			break
		}
	}
	var base uint64
	haveRoot := false
	if bestUsable >= 0 {
		base = manifests[bestUsable].epoch
		haveRoot = true
	} else if len(manifests) == 0 {
		snapPath := filepath.Join(dir, SnapshotFile)
		if _, err := fsys.Stat(snapPath); err == nil {
			snap, err := readSnapshotFileFS(fsys, snapPath)
			if err != nil {
				rep.addIssue(ScrubIssue{Kind: IssueCorruptSnapshot, Path: snapPath, Detail: err.Error()})
			} else if snap != nil {
				base = snap.Epoch
				haveRoot = true
			}
		} else {
			haveRoot = true // empty/fresh directory: base 0
		}
	}

	// Quarantine fallback: the newest manifests are damaged but an older one
	// is intact. Renaming the damaged manifests (and the WAL segments the
	// fallback strands — their records build on checkpoints that are gone)
	// to .corrupt lets the directory open again at the older epoch. The lost
	// epochs are reported, never dropped silently.
	newestDamaged := len(manifests) > 0 && !manifests[len(manifests)-1].usable()
	if newestDamaged && bestUsable >= 0 && opts.Repair {
		var lost []uint64
		ok := true
		for _, ms := range manifests[bestUsable+1:] {
			if err := fsys.Rename(ms.path, ms.path+".corrupt"); err != nil {
				ok = false
				break
			}
			lost = append(lost, ms.epoch)
			rep.Repairs++
		}
		if ok {
			fsys.SyncDir(dir)
			manifests = manifests[:bestUsable+1]
			rep.addIssue(ScrubIssue{Kind: IssueCorruptManifest, Path: dir, Repaired: true,
				Detail: fmt.Sprintf("fell back to intact manifest epoch %d; quarantined %d damaged newer manifest(s) as .corrupt — epochs %v are no longer restorable", base, len(lost), lost),
				Epochs: lost})
		}
	} else if newestDamaged && bestUsable < 0 && len(manifests) > 0 {
		rep.addIssue(ScrubIssue{Kind: IssueCorruptManifest, Path: dir,
			Detail: "no intact manifest remains; the directory cannot be repaired from checkpoints",
			Epochs: manifestEpochsOf(manifests)})
	}

	// WAL segments: framing, record decode, and chain contiguity from base.
	segs, err := listWALSegments(fsys, dir)
	if err != nil {
		return err
	}
	var chain []walSegment
	for _, seg := range segs {
		if seg.epoch < base {
			continue // stale: recovery deletes these, content already checkpointed
		}
		chain = append(chain, seg)
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].epoch < chain[j].epoch })
	if haveRoot && len(chain) > 0 {
		if chain[0].epoch != base {
			is := ScrubIssue{Kind: IssueMissingWALSegment, Path: dir,
				Detail: fmt.Sprintf("WAL segment for epoch %d is missing (oldest present is %d); commits since checkpoint %d are stranded", base, chain[0].epoch, base),
				Epochs: []uint64{base}}
			if opts.Repair {
				// The stranded segments' records build on state that no
				// longer exists; quarantine them so the directory opens at
				// the base checkpoint.
				ok := true
				var lostEpochs []uint64
				for _, seg := range chain {
					if err := fsys.Rename(seg.path, seg.path+".corrupt"); err != nil {
						ok = false
						break
					}
					lostEpochs = append(lostEpochs, seg.epoch)
					rep.Repairs++
				}
				if ok {
					fsys.SyncDir(dir)
					is.Repaired = true
					is.Detail += fmt.Sprintf("; quarantined stranded segment(s) %v as .corrupt — their records are no longer replayable", lostEpochs)
					chain = nil
				}
			}
			rep.addIssue(is)
		} else {
			for i := 1; i < len(chain); i++ {
				if chain[i].epoch != chain[i-1].epoch+1 {
					rep.addIssue(ScrubIssue{Kind: IssueMissingWALSegment, Path: dir,
						Detail: fmt.Sprintf("WAL segments %d and %d are not contiguous", chain[i-1].epoch, chain[i].epoch),
						Epochs: []uint64{chain[i-1].epoch + 1}})
					break
				}
			}
		}
	}
	for i, seg := range chain {
		active := i == len(chain)-1
		rep.SegmentsChecked++
		ws, err := scanWALSegment(fsys, seg.path, seg.epoch)
		if err != nil {
			return err
		}
		switch {
		case ws.headerErr != nil:
			rep.addIssue(ScrubIssue{Kind: IssueCorruptWALRecord, Path: seg.path,
				Detail: "WAL header unreadable: " + ws.headerErr.Error(), Epochs: []uint64{seg.epoch}})
		case ws.decodeErr != nil:
			rep.addIssue(ScrubIssue{Kind: IssueCorruptWALRecord, Path: seg.path,
				Detail: "committed record does not decode: " + ws.decodeErr.Error(), Epochs: []uint64{seg.epoch}})
		case ws.torn && !active:
			rep.addIssue(ScrubIssue{Kind: IssueSealedWALTorn, Path: seg.path,
				Detail: fmt.Sprintf("sealed segment ends mid-record at offset %d — committed history is damaged; refusing to truncate", ws.validEnd),
				Epochs: []uint64{seg.epoch}})
		case ws.torn && active:
			is := ScrubIssue{Kind: IssueTornWALTail, Path: seg.path,
				Detail: fmt.Sprintf("active segment ends mid-record at offset %d (a crashed append); the torn bytes were never acknowledged", ws.validEnd),
				Epochs: []uint64{seg.epoch}}
			if opts.Repair {
				if err := truncateFile(fsys, seg.path, ws.validEnd); err != nil {
					is.Detail += fmt.Sprintf("; truncate failed: %v", err)
				} else {
					is.Repaired = true
					rep.Repairs++
				}
			}
			rep.addIssue(is)
		}
	}

	// Dead corrupt chunks: compact them out of the pack. Live ones must stay
	// in place — dropping the frame would turn a detectable hash mismatch
	// into a dangling reference.
	if len(pack.corrupt) > 0 && opts.Repair {
		live := make(map[ChunkHash]struct{})
		for _, ms := range manifests {
			if ms.m != nil {
				ms.m.chunkRefs(func(h ChunkHash) { live[h] = struct{}{} })
			}
		}
		dead := 0
		anyLive := false
		for h := range pack.corrupt {
			if _, ok := live[h]; ok {
				anyLive = true
			} else {
				dead++
			}
		}
		if dead > 0 && !anyLive {
			is := ScrubIssue{Kind: IssueCorruptChunk, Path: packPath,
				Detail: fmt.Sprintf("compacted %d corrupt unreferenced chunk frame(s) out of the pack", dead)}
			if err := rewritePackDroppingCorrupt(fsys, packPath, pack); err != nil {
				is.Detail = fmt.Sprintf("compacting %d corrupt unreferenced chunk frame(s) failed: %v", dead, err)
			} else {
				is.Repaired = true
				rep.Repairs++
			}
			rep.addIssue(is)
		}
	}
	// Corrupt chunks nothing references (reported even without Repair so a
	// plain fsck run shows them).
	if !opts.Repair {
		live := make(map[ChunkHash]struct{})
		for _, ms := range manifests {
			if ms.m != nil {
				ms.m.chunkRefs(func(h ChunkHash) { live[h] = struct{}{} })
			}
		}
		for h := range pack.corrupt {
			if _, ok := live[h]; !ok {
				rep.addIssue(ScrubIssue{Kind: IssueCorruptChunk, Path: packPath,
					Detail: fmt.Sprintf("unreferenced chunk %s fails CRC/content-hash verification (safe to compact away with -repair)", h)})
			}
		}
	}
	return nil
}

func manifestEpochsOf(ms []*manifestState) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.epoch
	}
	return out
}

// truncateFile truncates path to size and syncs it.
func truncateFile(fsys vfs.FS, path string, size int64) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// rewritePackDroppingCorrupt streams every valid frame of the pack into a
// temp file and renames it over — the fsck sibling of chunkPack.compact,
// keeping all valid chunks (live or dead; retention GC owns dead-chunk
// collection) and dropping only frames that fail verification.
func rewritePackDroppingCorrupt(fsys vfs.FS, path string, pack *packState) error {
	src, err := vfs.Open(fsys, path)
	if err != nil {
		return err
	}
	defer src.Close()
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".chunks-*.tmp")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	var hdr [packHeaderSize]byte
	copy(hdr[:8], packMagic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	// Deterministic output order: by source offset.
	type entry struct {
		h   ChunkHash
		loc chunkLoc
	}
	entries := make([]entry, 0, len(pack.valid))
	for h, loc := range pack.valid {
		entries = append(entries, entry{h, loc})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].loc.off < entries[j].loc.off })
	var frame [packFrameOverhead]byte
	for _, ent := range entries {
		payload := make([]byte, ent.loc.n)
		if _, err := src.ReadAt(payload, ent.loc.off); err != nil {
			tmp.Close()
			return err
		}
		if got := hashChunk(payload); got != ent.h {
			tmp.Close()
			return fmt.Errorf("chunk %s changed under scrub (now hashes %s)", ent.h, got)
		}
		copy(frame[:16], ent.h[:])
		binary.LittleEndian.PutUint32(frame[16:20], ent.loc.n)
		binary.LittleEndian.PutUint32(frame[20:24], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(frame[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
