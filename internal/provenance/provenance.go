// Package provenance implements the generalized provenance manager of
// Chapter 8: it removes OrpheusDB's "from-scratch" assumption by inferring
// derivation (lineage) relationships among dataset versions that already sit
// in a shared repository without any registered metadata.
//
// Given a collection of artifacts (tables or CSV files with creation
// timestamps), the manager:
//
//  1. generates candidate parent→child pairs, pruned by timestamps and,
//     optionally, min-hash signatures (the workflow acceleration of §8.6);
//  2. scores each candidate by record- and schema-level overlap, specialized
//     for row-preserving operations (§8.4);
//  3. picks the most likely parent(s) for every artifact, yielding an
//     inferred version graph; and
//  4. produces a structural explanation of each inferred edge — which
//     operation (row insertion/deletion/update, column addition/removal,
//     value transformation) most plausibly produced the child (§8.5).
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/relstore"
)

// Artifact is one unregistered dataset version found in a repository.
type Artifact struct {
	Name string
	// ModTime orders artifacts; an artifact can only derive from strictly
	// earlier artifacts.
	ModTime time.Time
	Table   *relstore.Table
}

// Operation classifies the dominant modification along an inferred edge.
type Operation string

// Operation kinds reported by structural explanations.
const (
	OpUnknown        Operation = "unknown"
	OpIdentical      Operation = "identical-copy"
	OpRowInsertion   Operation = "row-insertion"
	OpRowDeletion    Operation = "row-deletion"
	OpRowUpdate      Operation = "row-update"
	OpColumnAddition Operation = "column-addition"
	OpColumnRemoval  Operation = "column-removal"
	OpTransformation Operation = "row-preserving-transformation"
)

// Explanation describes how a child most plausibly derives from a parent.
type Explanation struct {
	Operation      Operation
	RowsShared     int
	RowsInserted   int
	RowsDeleted    int
	RowsUpdated    int
	ColumnsShared  int
	ColumnsAdded   []string
	ColumnsRemoved []string
}

// Edge is one inferred derivation relationship.
type Edge struct {
	Parent, Child string
	// Score in [0,1]: how strongly the evidence supports the edge.
	Score       float64
	Explanation Explanation
}

// Options tunes lineage inference.
type Options struct {
	// MinScore is the threshold below which no parent is inferred for an
	// artifact (it is treated as an independent root). Default 0.1.
	MinScore float64
	// MaxParents bounds how many parents may be inferred per artifact
	// (merged artifacts have more than one). Default 1.
	MaxParents int
	// UseSignatures enables min-hash pruning of candidate pairs: only the
	// CandidateLimit most signature-similar earlier artifacts are scored
	// exactly. This is the workflow acceleration of §8.6.
	UseSignatures bool
	// CandidateLimit is the number of candidates retained per artifact when
	// signatures are enabled. Default 5.
	CandidateLimit int
	// SignatureSize is the number of min-hash values per artifact signature.
	// Default 32.
	SignatureSize int
}

func (o *Options) defaults() {
	if o.MinScore <= 0 {
		o.MinScore = 0.1
	}
	if o.MaxParents <= 0 {
		o.MaxParents = 1
	}
	if o.CandidateLimit <= 0 {
		o.CandidateLimit = 5
	}
	if o.SignatureSize <= 0 {
		o.SignatureSize = 32
	}
}

// Result is the outcome of lineage inference: the inferred edges plus how
// many exact pair comparisons were performed (the quantity signature pruning
// reduces).
type Result struct {
	Edges            []Edge
	PairsCompared    int
	ArtifactsScanned int
}

// InferLineage infers derivation edges among the artifacts.
func InferLineage(artifacts []Artifact, opts Options) (*Result, error) {
	opts.defaults()
	if len(artifacts) == 0 {
		return nil, fmt.Errorf("provenance: no artifacts given")
	}
	for i, a := range artifacts {
		if a.Table == nil {
			return nil, fmt.Errorf("provenance: artifact %d (%s) has no table", i, a.Name)
		}
		if a.Name == "" {
			return nil, fmt.Errorf("provenance: artifact %d has no name", i)
		}
	}
	ordered := make([]Artifact, len(artifacts))
	copy(ordered, artifacts)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ModTime.Before(ordered[j].ModTime) })

	fps := make([]fingerprint, len(ordered))
	for i, a := range ordered {
		fps[i] = fingerprintOf(a.Table, opts.SignatureSize)
	}

	res := &Result{ArtifactsScanned: len(ordered)}
	for i := 1; i < len(ordered); i++ {
		child := ordered[i]
		// Candidate earlier artifacts, optionally pruned by signature overlap.
		candidates := make([]int, 0, i)
		for j := 0; j < i; j++ {
			candidates = append(candidates, j)
		}
		if opts.UseSignatures && len(candidates) > opts.CandidateLimit {
			sort.SliceStable(candidates, func(a, b int) bool {
				return fps[candidates[a]].similarity(fps[i]) > fps[candidates[b]].similarity(fps[i])
			})
			candidates = candidates[:opts.CandidateLimit]
		}
		type scored struct {
			j     int
			score float64
			exp   Explanation
		}
		var best []scored
		for _, j := range candidates {
			res.PairsCompared++
			score, exp := scorePair(ordered[j].Table, child.Table)
			if score < opts.MinScore {
				continue
			}
			best = append(best, scored{j: j, score: score, exp: exp})
		}
		sort.SliceStable(best, func(a, b int) bool { return best[a].score > best[b].score })
		if len(best) > opts.MaxParents {
			best = best[:opts.MaxParents]
		}
		for _, b := range best {
			res.Edges = append(res.Edges, Edge{
				Parent:      ordered[b.j].Name,
				Child:       child.Name,
				Score:       b.score,
				Explanation: b.exp,
			})
		}
	}
	return res, nil
}

// fingerprint is a min-hash signature over a table's row contents.
type fingerprint struct{ sig []uint64 }

func fingerprintOf(t *relstore.Table, size int) fingerprint {
	sig := make([]uint64, size)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for pos := 0; pos < t.Len(); pos++ {
		h := hashString(rowKey(t.RowAt(pos)))
		for i := range sig {
			mixed := mix(h, uint64(i+1))
			if mixed < sig[i] {
				sig[i] = mixed
			}
		}
	}
	return fingerprint{sig: sig}
}

func (f fingerprint) similarity(o fingerprint) float64 {
	if len(f.sig) == 0 || len(f.sig) != len(o.sig) {
		return 0
	}
	same := 0
	for i := range f.sig {
		if f.sig[i] == o.sig[i] {
			same++
		}
	}
	return float64(same) / float64(len(f.sig))
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix(h, seed uint64) uint64 {
	x := h ^ (seed * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func rowKey(r relstore.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.AsString()
	}
	return strings.Join(parts, "\x1f")
}

// scorePair computes the likelihood that child derives from parent together
// with a structural explanation. The score combines row containment (how
// much of the smaller table is shared) and schema overlap, with a key-based
// analysis to distinguish updates from insertions/deletions.
func scorePair(parent, child *relstore.Table) (float64, Explanation) {
	exp := Explanation{}
	sharedCols, addedCols, removedCols := schemaDiff(parent.Schema, child.Schema)
	exp.ColumnsShared = len(sharedCols)
	exp.ColumnsAdded = addedCols
	exp.ColumnsRemoved = removedCols
	if len(sharedCols) == 0 {
		return 0, exp
	}
	// Row-level overlap on the shared columns.
	parentKeys := projectKeys(parent, sharedCols)
	childKeys := projectKeys(child, sharedCols)
	shared := 0
	for k := range childKeys {
		if _, ok := parentKeys[k]; ok {
			shared++
		}
	}
	exp.RowsShared = shared
	exp.RowsInserted = len(childKeys) - shared
	exp.RowsDeleted = len(parentKeys) - shared
	// Updates: rows whose "key" (first shared column) matches but whose full
	// shared projection differs.
	keyCol := sharedCols[0]
	parentByKey := projectColumn(parent, keyCol)
	childByKey := projectColumn(child, keyCol)
	updates := 0
	for k := range childByKey {
		if _, ok := parentByKey[k]; ok {
			if _, full := parentKeys[childFullKey(child, childByKey[k], sharedCols)]; !full {
				updates++
			}
		}
	}
	exp.RowsUpdated = updates

	// Jaccard similarity over the shared-column projection, with half credit
	// for updated rows (same key, changed values). Jaccard — rather than
	// containment — makes the *closest* earlier version win, so chains of
	// derivations are recovered edge by edge instead of collapsing onto the
	// root version.
	union := len(parentKeys) + len(childKeys) - shared
	var rowScore float64
	if union > 0 {
		rowScore = (float64(shared) + 0.5*float64(updates)) / float64(union)
		if rowScore > 1 {
			rowScore = 1
		}
	}
	colScore := float64(len(sharedCols)) / float64(len(sharedCols)+len(addedCols)+len(removedCols))
	score := 0.7*rowScore + 0.3*colScore
	exp.Operation = classify(exp, parent.Len(), child.Len())
	return score, exp
}

func classify(exp Explanation, parentRows, childRows int) Operation {
	switch {
	case len(exp.ColumnsAdded) > 0 && len(exp.ColumnsRemoved) == 0 && exp.RowsShared > 0:
		return OpColumnAddition
	case len(exp.ColumnsRemoved) > 0 && len(exp.ColumnsAdded) == 0 && exp.RowsShared > 0:
		return OpColumnRemoval
	case exp.RowsShared == parentRows && exp.RowsShared == childRows && exp.RowsUpdated == 0:
		return OpIdentical
	case exp.RowsUpdated > 0 && exp.RowsInserted == exp.RowsUpdated && exp.RowsDeleted == exp.RowsUpdated:
		return OpRowUpdate
	case exp.RowsInserted > 0 && exp.RowsDeleted == 0:
		return OpRowInsertion
	case exp.RowsDeleted > 0 && exp.RowsInserted == 0:
		return OpRowDeletion
	case exp.RowsShared > 0 && parentRows == childRows:
		return OpTransformation
	case exp.RowsShared > 0:
		return OpRowUpdate
	default:
		return OpUnknown
	}
}

func schemaDiff(parent, child relstore.Schema) (shared, added, removed []string) {
	pset := map[string]bool{}
	for _, c := range parent.Columns {
		pset[c.Name] = true
	}
	cset := map[string]bool{}
	for _, c := range child.Columns {
		cset[c.Name] = true
		if pset[c.Name] {
			shared = append(shared, c.Name)
		} else {
			added = append(added, c.Name)
		}
	}
	for _, c := range parent.Columns {
		if !cset[c.Name] {
			removed = append(removed, c.Name)
		}
	}
	return shared, added, removed
}

// projectKeys returns the set of rows projected onto the given columns.
func projectKeys(t *relstore.Table, cols []string) map[string]struct{} {
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		idx = append(idx, t.Schema.ColumnIndex(c))
	}
	out := make(map[string]struct{}, t.Len())
	for pos := 0; pos < t.Len(); pos++ {
		parts := make([]string, len(idx))
		for i, ci := range idx {
			if ci >= 0 {
				parts[i] = t.StringAt(pos, ci)
			}
		}
		out[strings.Join(parts, "\x1f")] = struct{}{}
	}
	return out
}

// projectColumn maps the rendering of one column to a representative row.
func projectColumn(t *relstore.Table, col string) map[string]relstore.Row {
	ci := t.Schema.ColumnIndex(col)
	out := make(map[string]relstore.Row, t.Len())
	if ci < 0 {
		return out
	}
	for pos := 0; pos < t.Len(); pos++ {
		out[t.StringAt(pos, ci)] = t.RowAt(pos)
	}
	return out
}

func childFullKey(t *relstore.Table, r relstore.Row, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci >= 0 && ci < len(r) {
			parts[i] = r[ci].AsString()
		}
	}
	return strings.Join(parts, "\x1f")
}

// GroundTruth lists the true derivation edges of a repository, for
// evaluating inference quality (§8.8).
type GroundTruth struct {
	Edges map[[2]string]bool
}

// NewGroundTruth builds a ground truth from (parent, child) name pairs.
func NewGroundTruth(pairs [][2]string) GroundTruth {
	gt := GroundTruth{Edges: make(map[[2]string]bool, len(pairs))}
	for _, p := range pairs {
		gt.Edges[p] = true
	}
	return gt
}

// Quality reports precision and recall of inferred edges against the truth.
type Quality struct {
	Precision float64
	Recall    float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// Evaluate compares inferred edges against the ground truth.
func (gt GroundTruth) Evaluate(edges []Edge) Quality {
	var q Quality
	seen := map[[2]string]bool{}
	for _, e := range edges {
		key := [2]string{e.Parent, e.Child}
		seen[key] = true
		if gt.Edges[key] {
			q.TruePos++
		} else {
			q.FalsePos++
		}
	}
	for key := range gt.Edges {
		if !seen[key] {
			q.FalseNeg++
		}
	}
	if q.TruePos+q.FalsePos > 0 {
		q.Precision = float64(q.TruePos) / float64(q.TruePos+q.FalsePos)
	}
	if q.TruePos+q.FalseNeg > 0 {
		q.Recall = float64(q.TruePos) / float64(q.TruePos+q.FalseNeg)
	}
	return q
}
