package provenance

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/relstore"
)

func geneSchema(extra ...relstore.Column) relstore.Schema {
	cols := []relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
	}
	cols = append(cols, extra...)
	return relstore.MustSchema(cols)
}

func mkTable(t testing.TB, schema relstore.Schema, rows ...relstore.Row) *relstore.Table {
	t.Helper()
	tab := relstore.NewTable("t", schema)
	for _, r := range rows {
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func g(name string, score int64, extra ...relstore.Value) relstore.Row {
	row := relstore.Row{relstore.Str(name), relstore.Int(score)}
	return append(row, extra...)
}

// buildRepository builds a small repository with known lineage:
// base -> insert -> update -> addcol, plus base -> delete (a branch) and an
// unrelated artifact.
func buildRepository(t testing.TB) ([]Artifact, GroundTruth) {
	t.Helper()
	ts := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	base := mkTable(t, geneSchema(), g("BRCA1", 10), g("TP53", 20), g("EGFR", 30), g("MYC", 40))
	insert := mkTable(t, geneSchema(), g("BRCA1", 10), g("TP53", 20), g("EGFR", 30), g("MYC", 40), g("KRAS", 50))
	update := mkTable(t, geneSchema(), g("BRCA1", 10), g("TP53", 99), g("EGFR", 30), g("MYC", 40), g("KRAS", 50))
	addcol := mkTable(t, geneSchema(relstore.Column{Name: "pvalue", Type: relstore.TypeFloat}),
		g("BRCA1", 10, relstore.Float(0.01)), g("TP53", 99, relstore.Float(0.2)), g("EGFR", 30, relstore.Float(0.05)),
		g("MYC", 40, relstore.Float(0.3)), g("KRAS", 50, relstore.Float(0.07)))
	del := mkTable(t, geneSchema(), g("BRCA1", 10), g("TP53", 20))
	unrelatedSchema := relstore.MustSchema([]relstore.Column{{Name: "city", Type: relstore.TypeString}, {Name: "pop", Type: relstore.TypeInt}})
	unrelated := mkTable(t, unrelatedSchema, relstore.Row{relstore.Str("Urbana"), relstore.Int(42000)})

	artifacts := []Artifact{
		{Name: "genes_v1.csv", ModTime: ts, Table: base},
		{Name: "genes_v2.csv", ModTime: ts.Add(1 * time.Hour), Table: insert},
		{Name: "genes_v3.csv", ModTime: ts.Add(2 * time.Hour), Table: update},
		{Name: "genes_v4.csv", ModTime: ts.Add(3 * time.Hour), Table: addcol},
		{Name: "genes_small.csv", ModTime: ts.Add(90 * time.Minute), Table: del},
		{Name: "cities.csv", ModTime: ts.Add(4 * time.Hour), Table: unrelated},
	}
	gt := NewGroundTruth([][2]string{
		{"genes_v1.csv", "genes_v2.csv"},
		{"genes_v2.csv", "genes_v3.csv"},
		{"genes_v3.csv", "genes_v4.csv"},
		{"genes_v1.csv", "genes_small.csv"},
	})
	return artifacts, gt
}

func TestInferLineageRecoversTrueEdges(t *testing.T) {
	artifacts, gt := buildRepository(t)
	res, err := InferLineage(artifacts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := gt.Evaluate(res.Edges)
	if q.Recall < 0.75 {
		t.Errorf("recall = %.2f, want >= 0.75 (edges: %+v)", q.Recall, res.Edges)
	}
	if q.Precision < 0.75 {
		t.Errorf("precision = %.2f, want >= 0.75 (edges: %+v)", q.Precision, res.Edges)
	}
	// The unrelated artifact gets no parent.
	for _, e := range res.Edges {
		if e.Child == "cities.csv" {
			t.Errorf("unrelated artifact should have no inferred parent, got %+v", e)
		}
	}
}

func TestStructuralExplanations(t *testing.T) {
	artifacts, _ := buildRepository(t)
	res, err := InferLineage(artifacts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]Operation{}
	for _, e := range res.Edges {
		ops[e.Child] = e.Explanation.Operation
	}
	if op := ops["genes_v2.csv"]; op != OpRowInsertion {
		t.Errorf("genes_v2 operation = %s, want row-insertion", op)
	}
	if op := ops["genes_v4.csv"]; op != OpColumnAddition {
		t.Errorf("genes_v4 operation = %s, want column-addition", op)
	}
	if op := ops["genes_small.csv"]; op != OpRowDeletion {
		t.Errorf("genes_small operation = %s, want row-deletion", op)
	}
	if op := ops["genes_v3.csv"]; op != OpRowUpdate && op != OpTransformation {
		t.Errorf("genes_v3 operation = %s, want row-update or row-preserving-transformation", op)
	}
}

func TestIdenticalCopyDetected(t *testing.T) {
	ts := time.Now()
	base := mkTable(t, geneSchema(), g("A", 1), g("B", 2))
	copyTab := mkTable(t, geneSchema(), g("A", 1), g("B", 2))
	res, err := InferLineage([]Artifact{
		{Name: "orig", ModTime: ts, Table: base},
		{Name: "copy", ModTime: ts.Add(time.Minute), Table: copyTab},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Fatalf("edges = %+v, want 1", res.Edges)
	}
	if res.Edges[0].Explanation.Operation != OpIdentical {
		t.Errorf("operation = %s, want identical-copy", res.Edges[0].Explanation.Operation)
	}
	if res.Edges[0].Score < 0.9 {
		t.Errorf("score = %.2f, want near 1", res.Edges[0].Score)
	}
}

func TestSignaturePruningReducesComparisons(t *testing.T) {
	// Build a larger chain of versions plus noise tables.
	rng := rand.New(rand.NewSource(9))
	ts := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	var artifacts []Artifact
	var truth [][2]string
	prevRows := []relstore.Row{}
	for i := 0; i < 30; i++ {
		prevRows = append(prevRows, g(fmt.Sprintf("gene%03d", i), int64(rng.Intn(100))))
	}
	prevName := "chain_000"
	artifacts = append(artifacts, Artifact{Name: prevName, ModTime: ts, Table: mkTable(t, geneSchema(), prevRows...)})
	for v := 1; v < 20; v++ {
		rows := make([]relstore.Row, len(prevRows))
		copy(rows, prevRows)
		rows = append(rows, g(fmt.Sprintf("new%03d", v), int64(rng.Intn(100))))
		name := fmt.Sprintf("chain_%03d", v)
		artifacts = append(artifacts, Artifact{Name: name, ModTime: ts.Add(time.Duration(v) * time.Hour), Table: mkTable(t, geneSchema(), rows...)})
		truth = append(truth, [2]string{prevName, name})
		prevRows = rows
		prevName = name
	}
	gt := NewGroundTruth(truth)

	exhaustive, err := InferLineage(artifacts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := InferLineage(artifacts, Options{UseSignatures: true, CandidateLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PairsCompared >= exhaustive.PairsCompared {
		t.Errorf("signature pruning should reduce comparisons: %d vs %d", pruned.PairsCompared, exhaustive.PairsCompared)
	}
	qe := gt.Evaluate(exhaustive.Edges)
	qp := gt.Evaluate(pruned.Edges)
	if qe.Recall < 0.9 {
		t.Errorf("exhaustive recall = %.2f, want >= 0.9", qe.Recall)
	}
	if qp.Recall < 0.75 {
		t.Errorf("pruned recall = %.2f, want >= 0.75", qp.Recall)
	}
}

func TestMaxParentsAllowsMerges(t *testing.T) {
	ts := time.Now()
	a := mkTable(t, geneSchema(), g("A", 1), g("B", 2), g("C", 3))
	b := mkTable(t, geneSchema(), g("D", 4), g("E", 5), g("F", 6))
	merged := mkTable(t, geneSchema(), g("A", 1), g("B", 2), g("C", 3), g("D", 4), g("E", 5), g("F", 6))
	arts := []Artifact{
		{Name: "a", ModTime: ts, Table: a},
		{Name: "b", ModTime: ts.Add(time.Minute), Table: b},
		{Name: "merged", ModTime: ts.Add(2 * time.Minute), Table: merged},
	}
	res, err := InferLineage(arts, Options{MaxParents: 2, MinScore: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	parents := map[string]bool{}
	for _, e := range res.Edges {
		if e.Child == "merged" {
			parents[e.Parent] = true
		}
	}
	if !parents["a"] || !parents["b"] {
		t.Errorf("merged artifact should have both a and b as parents, got %+v", res.Edges)
	}
}

func TestInferLineageErrors(t *testing.T) {
	if _, err := InferLineage(nil, Options{}); err == nil {
		t.Error("empty artifact list should fail")
	}
	if _, err := InferLineage([]Artifact{{Name: "x"}}, Options{}); err == nil {
		t.Error("artifact without table should fail")
	}
	tab := mkTable(t, geneSchema(), g("A", 1))
	if _, err := InferLineage([]Artifact{{Table: tab}}, Options{}); err == nil {
		t.Error("artifact without name should fail")
	}
}

func TestGroundTruthEvaluate(t *testing.T) {
	gt := NewGroundTruth([][2]string{{"a", "b"}, {"b", "c"}})
	q := gt.Evaluate([]Edge{{Parent: "a", Child: "b"}, {Parent: "a", Child: "c"}})
	if q.TruePos != 1 || q.FalsePos != 1 || q.FalseNeg != 1 {
		t.Errorf("quality = %+v", q)
	}
	if q.Precision != 0.5 || q.Recall != 0.5 {
		t.Errorf("precision/recall = %g/%g, want 0.5/0.5", q.Precision, q.Recall)
	}
	empty := NewGroundTruth(nil)
	q = empty.Evaluate(nil)
	if q.Precision != 0 || q.Recall != 0 {
		t.Errorf("empty evaluation should be zero: %+v", q)
	}
}
