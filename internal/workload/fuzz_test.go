package workload

import "testing"

// FuzzParseSpec pins the parser's no-panic contract: arbitrary bytes —
// malformed YAML, truncated JSON, binary garbage — must produce either a
// valid spec or an error, never a panic. The seed corpus covers both
// syntaxes, every section, and the known failure shapes.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"name: ok\n",
		"# only a comment\n",
		"name: full\nmode: http\ndataset: CUR_10K\nclients: 3\nops: 50\nmix:\n  commit: 25\n  checkout: 25\n  select: 25\n  merge: 25\n",
		"name: d\nduration: 2s\nengine:\n  durable: true\n  group_commit_batch: 8\n  group_commit_delay: 1ms\n",
		"name: c\ncrash:\n  iterations: 3\n  max_commits: 10\n  checkpoint_pct: 100\n  min_kill_delay: 1ms\n  max_kill_delay: 2ms\n",
		`{"name": "j", "clients": 2, "mix": {"commit": 50, "checkout": 50, "select": 0, "merge": 0}}`,
		`{"name": "j", "duration": "250ms"}`,
		`{"name": "j", "duration": 1000000}`,
		"{",
		`{"name"`,
		"name: x\nbogus: 1\n",
		"name: x\nmix:\n\tcommit: 100\n",
		"name: x\n  stray: 1\n",
		"name: x\nname: y\n",
		"name: x\nclients: -9999999999999999999999\n",
		"mix:\nengine:\ncrash:\n",
		"name: x\nduration: 9223372036854775807ns\n",
		":\n::\n:::\n",
		"\x00\x01\x02",
		"name: \"quoted value\" # trailing comment\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err == nil && spec == nil {
			t.Fatal("nil spec with nil error")
		}
		if err == nil {
			// A parsed spec must satisfy its own invariants.
			if spec.Mix.Sum() != 100 {
				t.Fatalf("accepted spec with mix sum %d: %+v", spec.Mix.Sum(), spec)
			}
			if spec.Name == "" {
				t.Fatalf("accepted spec without a name: %+v", spec)
			}
		}
	})
}
