package workload

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// opKind enumerates the driver operations of the mix.
type opKind int

const (
	opCommit opKind = iota
	opCheckout
	opSelect
	opMerge
	numOps
)

func (o opKind) String() string {
	switch o {
	case opCommit:
		return "commit"
	case opCheckout:
		return "checkout"
	case opSelect:
		return "select"
	case opMerge:
		return "merge"
	}
	return fmt.Sprintf("op%d", int(o))
}

// OpStats is the per-operation section of a report: counts plus latency
// percentiles over every completed operation of that kind.
type OpStats struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors"`
	// Shed counts 503 admission-control rejections (http mode only): the
	// server degraded by shedding, which is load-test signal, not failure.
	Shed int64 `json:"shed,omitempty"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Report is the BENCH_<spec>.json document: the spec it ran (the JSON
// header round-trips back into a Spec), the seed dataset's shape, and the
// measured throughput and latency percentiles per operation kind.
type Report struct {
	Spec Spec `json:"spec"`

	// Seed dataset shape after loading (before any workload ops ran).
	SeedVersions int   `json:"seed_versions"`
	SeedRecords  int64 `json:"seed_records"`

	ElapsedMs   float64 `json:"elapsed_ms"`
	TotalOps    int64   `json:"total_ops"`
	TotalErrors int64   `json:"total_errors"`
	TotalShed   int64   `json:"total_shed,omitempty"`
	// TotalRetries counts requests the http driver re-sent after a 503 shed
	// or a transient connection error (bounded backoff+jitter); retried
	// requests that eventually succeed are not errors.
	TotalRetries     int64   `json:"total_retries,omitempty"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	// Final engine shape after the run (commits and merges grow it).
	FinalVersions int   `json:"final_versions"`
	FinalRecords  int64 `json:"final_records"`

	// Background checkpoints the runner triggered (engine.checkpoint_every)
	// and how many of them failed.
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	CheckpointErrors int64 `json:"checkpoint_errors,omitempty"`
	// Point-in-time restore verification (engine.restore_epoch): the epoch
	// that was reopened and whether its content checked out.
	RestoredEpoch   uint64 `json:"restored_epoch,omitempty"`
	RestoreVerified bool   `json:"restore_verified,omitempty"`

	Ops []OpStats `json:"ops"`
}

// CommitP99Ms returns the commit operation's p99 latency (0 when the run had
// no successful commits).
func (r *Report) CommitP99Ms() float64 {
	for _, st := range r.Ops {
		if st.Op == opCommit.String() {
			return st.P99Ms
		}
	}
	return 0
}

// JSON renders the report.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// latencyRecorder accumulates per-op-kind latencies for one client; clients
// each own one and the runner merges them, so recording takes no locks.
type latencyRecorder struct {
	samples [numOps][]time.Duration
	errors  [numOps]int64
	shed    [numOps]int64
}

func (l *latencyRecorder) record(op opKind, d time.Duration) {
	l.samples[op] = append(l.samples[op], d)
}

// mergeStats folds per-client recorders into the report's OpStats.
func mergeStats(recs []*latencyRecorder) []OpStats {
	out := make([]OpStats, 0, int(numOps))
	for op := opKind(0); op < numOps; op++ {
		var all []time.Duration
		var errs, shed int64
		for _, r := range recs {
			all = append(all, r.samples[op]...)
			errs += r.errors[op]
			shed += r.shed[op]
		}
		if len(all) == 0 && errs == 0 && shed == 0 {
			continue
		}
		st := OpStats{Op: op.String(), Count: int64(len(all)), Errors: errs, Shed: shed}
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			st.P50Ms = msf(percentile(all, 0.50))
			st.P90Ms = msf(percentile(all, 0.90))
			st.P99Ms = msf(percentile(all, 0.99))
			st.MaxMs = msf(all[len(all)-1])
		}
		out = append(out, st)
	}
	return out
}

// percentile reads the q-quantile from an ascending-sorted sample set
// (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func msf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
