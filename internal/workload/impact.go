package workload

import "fmt"

// CheckpointImpactReport quantifies what background checkpointing costs the
// foreground commit path: the same spec is run twice — once with
// checkpoint_every disabled, once as written — and the commit p99 latencies
// are compared. The claim under test is that checkpointing is non-blocking:
// commits only pay for the COW capture and WAL segment roll, never the
// chunk encode, so the ratio should stay near 1.
type CheckpointImpactReport struct {
	Baseline        *Report `json:"baseline"`
	WithCheckpoints *Report `json:"with_checkpoints"`

	BaselineCommitP99Ms   float64 `json:"baseline_commit_p99_ms"`
	CheckpointCommitP99Ms float64 `json:"checkpoint_commit_p99_ms"`
	// P99Ratio is checkpointed / baseline commit p99 (0 when the baseline
	// recorded no commits).
	P99Ratio float64 `json:"p99_ratio"`
	// Checkpoints that actually ran during the checkpointed leg.
	Checkpoints int64 `json:"checkpoints"`
}

// RunCheckpointImpact runs spec twice — a baseline leg with checkpointing
// (and restore verification) stripped, then the spec as written — and
// returns the commit-p99 comparison. The spec must have
// engine.checkpoint_every set, or there is nothing to measure.
func RunCheckpointImpact(spec *Spec) (*CheckpointImpactReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Engine.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("workload: checkpoint impact needs engine.checkpoint_every > 0")
	}
	base := *spec
	base.Name = spec.Name + "-baseline"
	base.Engine.CheckpointEvery = 0
	base.Engine.RestoreEpoch = 0
	baseline, err := Run(&base)
	if err != nil {
		return nil, fmt.Errorf("workload: baseline leg: %w", err)
	}
	with, err := Run(spec)
	if err != nil {
		return nil, fmt.Errorf("workload: checkpointed leg: %w", err)
	}
	out := &CheckpointImpactReport{
		Baseline:              baseline,
		WithCheckpoints:       with,
		BaselineCommitP99Ms:   baseline.CommitP99Ms(),
		CheckpointCommitP99Ms: with.CommitP99Ms(),
		Checkpoints:           with.Checkpoints,
	}
	if out.BaselineCommitP99Ms > 0 {
		out.P99Ratio = out.CheckpointCommitP99Ms / out.BaselineCommitP99Ms
	}
	return out, nil
}
