package workload

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/vgraph"
)

// CVDName is the dataset name every spec-driven run loads its workload into.
const CVDName = "workload"

// errShed marks a 503 admission-control rejection: counted separately from
// errors (the server shedding under load is the designed degradation).
var errShed = fmt.Errorf("workload: request shed (503)")

// driver abstracts where operations land: directly on the engine, or over
// the orpheusd HTTP API.
type driver interface {
	// do performs one operation for the given client. rng is the client's
	// private random source.
	do(client int, rng *rand.Rand, op opKind) error
	// close releases driver resources (HTTP server, sessions).
	close() error
}

// Run compiles a spec into a driver and executes it: seed the dataset, fan
// out the clients, apply the operation mix until the op count or duration is
// exhausted, and return the report. The error is reserved for harness
// failures (bad spec, seed load, listener); per-operation failures are
// counted in the report instead.
func Run(spec *Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, err := spec.workloadConfig()
	if err != nil {
		return nil, err
	}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		return nil, err
	}

	engine, dataDir, cleanup, err := openEngine(spec)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	if err := seedEngine(engine, w); err != nil {
		return nil, fmt.Errorf("workload: seeding %s: %w", spec.Dataset, err)
	}
	c, err := engine.CVD(CVDName)
	if err != nil {
		return nil, err
	}
	report := &Report{
		Spec:         *spec,
		SeedVersions: c.NumVersions(),
		SeedRecords:  c.NumRecords(),
	}

	var drv driver
	// httpDrv keeps the concrete driver reachable after decorators wrap it
	// (the retry counter lives on it, not on the ckptDriver wrapper).
	var httpDrv *httpDriver
	switch spec.Mode {
	case ModeHTTP:
		httpDrv, err = newHTTPDriver(engine, spec)
		drv = httpDrv
	default:
		drv, err = newEngineDriver(engine, spec)
	}
	if err != nil {
		return nil, err
	}
	drvClosed := false
	defer func() {
		if !drvClosed {
			drv.close()
		}
	}()

	// engine.checkpoint_every: a decorator counts successful commits and a
	// dedicated goroutine runs the checkpoints, so client latency only sees
	// the commit fence (COW capture + WAL segment seal), never the encode.
	var ckpt *ckptDriver
	var ckptWG sync.WaitGroup
	if spec.Engine.CheckpointEvery > 0 {
		ckpt = &ckptDriver{driver: drv, every: int64(spec.Engine.CheckpointEvery), trigger: make(chan struct{}, 1)}
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			for range ckpt.trigger {
				if err := engine.Checkpoint(); err != nil {
					ckpt.errs.Add(1)
				} else {
					ckpt.done.Add(1)
				}
			}
		}()
		drv = ckpt
	}

	recs := runClients(spec, drv)
	if ckpt != nil {
		close(ckpt.trigger)
		ckptWG.Wait()
		report.Checkpoints = ckpt.done.Load()
		report.CheckpointErrors = ckpt.errs.Load()
	}

	elapsed := recs.elapsed
	report.ElapsedMs = msf(elapsed)
	report.Ops = mergeStats(recs.perClient)
	for _, st := range report.Ops {
		report.TotalOps += st.Count
		report.TotalErrors += st.Errors
		report.TotalShed += st.Shed
	}
	if httpDrv != nil {
		report.TotalRetries = httpDrv.retries.Load()
	}
	if elapsed > 0 {
		report.ThroughputPerSec = float64(report.TotalOps) / elapsed.Seconds()
	}
	report.FinalVersions = c.NumVersions()
	report.FinalRecords = c.NumRecords()

	// engine.restore_epoch: shut the live store down, reopen the data dir at
	// the requested (or latest) retained manifest epoch, and prove the
	// point-in-time state checks out. Must run before cleanup removes a
	// disposable temp dir.
	if spec.Engine.RestoreEpoch != 0 {
		drvClosed = true
		if err := drv.close(); err != nil {
			return nil, err
		}
		if err := engine.Close(); err != nil {
			return nil, err
		}
		if err := verifyRestore(spec, dataDir, report); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// ckptDriver decorates a driver to count successful commits and nudge the
// checkpointer goroutine every `every` of them. The trigger channel has
// capacity 1 and sends never block: if a checkpoint is already pending the
// nudge coalesces into it.
type ckptDriver struct {
	driver
	every   int64
	commits atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
	trigger chan struct{}
}

func (c *ckptDriver) do(client int, rng *rand.Rand, op opKind) error {
	err := c.driver.do(client, rng, op)
	if err == nil && op == opCommit {
		if n := c.commits.Add(1); n%c.every == 0 {
			select {
			case c.trigger <- struct{}{}:
			default:
			}
		}
	}
	return err
}

// verifyRestore reopens dir at the spec's restore epoch (-1 = latest
// retained) and checks the workload CVD out at its first and newest version.
func verifyRestore(spec *Spec, dir string, report *Report) error {
	epochs, err := durable.ListEpochs(dir)
	if err != nil {
		return fmt.Errorf("workload: restore_epoch: %w", err)
	}
	if len(epochs) == 0 {
		return fmt.Errorf("workload: restore_epoch: no retained epochs in %s (did any checkpoint run?)", dir)
	}
	var epoch uint64
	if spec.Engine.RestoreEpoch < 0 {
		epoch = epochs[len(epochs)-1]
	} else {
		epoch = uint64(spec.Engine.RestoreEpoch)
		found := false
		for _, e := range epochs {
			found = found || e == epoch
		}
		if !found {
			return fmt.Errorf("workload: restore_epoch %d not retained (have %v)", epoch, epochs)
		}
	}
	re, err := core.OpenAtEpoch(spec.Name+"-restore", dir, epoch)
	if err != nil {
		return fmt.Errorf("workload: restoring epoch %d: %w", epoch, err)
	}
	defer re.Close()
	c, err := re.CVD(CVDName)
	if err != nil {
		return fmt.Errorf("workload: restored epoch %d: %w", epoch, err)
	}
	// Version ids are dense and commit-ordered, so the newest id equals the
	// version count at that epoch.
	latest := vgraph.VersionID(c.NumVersions())
	for _, v := range []vgraph.VersionID{1, latest} {
		if _, err := core.CheckoutVersionRows(re, CVDName, v, fmt.Sprintf("restore-epoch-%d", epoch)); err != nil {
			return fmt.Errorf("workload: restored epoch %d: version %d: %w", epoch, v, err)
		}
	}
	report.RestoredEpoch = epoch
	report.RestoreVerified = true
	return nil
}

// clientRun is the outcome of the client fan-out.
type clientRun struct {
	perClient []*latencyRecorder
	elapsed   time.Duration
}

// runClients drives the operation mix from spec.Clients goroutines until the
// op budget or the duration is exhausted.
func runClients(spec *Spec, drv driver) clientRun {
	recs := make([]*latencyRecorder, spec.Clients)
	var issued atomic.Int64
	var deadline time.Time
	if spec.Duration > 0 {
		deadline = time.Now().Add(spec.Duration.Std())
	}
	start := time.Now()
	var wg sync.WaitGroup
	for client := 0; client < spec.Clients; client++ {
		rec := &latencyRecorder{}
		recs[client] = rec
		wg.Add(1)
		go func(client int, rec *latencyRecorder) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(client)*7919))
			for {
				if spec.Ops > 0 {
					if issued.Add(1) > int64(spec.Ops) {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				op := pickOp(rng, spec.Mix)
				opStart := time.Now()
				err := drv.do(client, rng, op)
				lat := time.Since(opStart)
				switch {
				case err == nil:
					rec.record(op, lat)
				case err == errShed:
					rec.shed[op]++
				default:
					rec.errors[op]++
				}
			}
		}(client, rec)
	}
	wg.Wait()
	return clientRun{perClient: recs, elapsed: time.Since(start)}
}

// pickOp draws an operation from the mix.
func pickOp(rng *rand.Rand, m Mix) opKind {
	r := rng.Intn(100)
	switch {
	case r < m.Commit:
		return opCommit
	case r < m.Commit+m.Checkout:
		return opCheckout
	case r < m.Commit+m.Checkout+m.Select:
		return opSelect
	default:
		return opMerge
	}
}

// openEngine builds the engine the spec asks for: ephemeral or durable (in
// the spec's data_dir or a disposable temp dir), with the worker and
// group-commit knobs applied. For durable engines it also returns the data
// directory so the runner can reopen it for restore verification.
func openEngine(spec *Spec) (*core.Engine, string, func(), error) {
	opts := []core.Option{core.WithWorkers(spec.Engine.Workers)}
	if spec.Engine.GroupCommitBatch != 0 || spec.Engine.GroupCommitDelay != 0 {
		opts = append(opts, core.GroupCommit(spec.Engine.GroupCommitBatch, spec.Engine.GroupCommitDelay.Std()))
	}
	if !spec.Engine.Durable {
		return core.Open(spec.Name, opts...), "", func() {}, nil
	}
	dir := spec.Engine.DataDir
	removeDir := false
	if dir == "" {
		tmp, err := os.MkdirTemp("", "workload-"+spec.Name+"-*")
		if err != nil {
			return nil, "", nil, err
		}
		dir = tmp
		removeDir = true
	}
	engine, err := core.OpenDurable(spec.Name, dir, opts...)
	if err != nil {
		if removeDir {
			os.RemoveAll(dir)
		}
		return nil, "", nil, err
	}
	cleanup := func() {
		engine.Close()
		if removeDir {
			os.RemoveAll(dir)
		}
	}
	return engine, dir, cleanup, nil
}

// seedEngine loads a generated workload into the engine through the engine
// façade (unlike benchmark.LoadCVD, which builds the CVD underneath it), so
// on a durable engine the whole seed history is journaled and survives
// crashes — the property the crash harness and durable specs depend on.
func seedEngine(e *core.Engine, w *benchmark.Workload) error {
	order := w.Graph.TopoOrder()
	if len(order) == 0 {
		return fmt.Errorf("workload has no versions")
	}
	if _, err := e.Init(CVDName, w.Schema, w.Rows(order[0]), cvd.Options{
		Author:  "workload",
		Message: "seed version",
	}); err != nil {
		return err
	}
	c, err := e.CVD(CVDName)
	if err != nil {
		return err
	}
	// Version ids were assigned in commit order; committing in id order keeps
	// them aligned (same invariant as benchmark.LoadCVD).
	rest := append([]vgraph.VersionID(nil), order[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, v := range rest {
		got, err := c.Commit(w.Graph.Parents(v), w.Rows(v), w.Schema, fmt.Sprintf("seed version %d", v), "workload")
		if err != nil {
			return fmt.Errorf("committing seed version %d: %w", v, err)
		}
		if got != v {
			return fmt.Errorf("seed version id mismatch: committed %d, expected %d", got, v)
		}
	}
	return nil
}
