package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// newRowKeyBase keeps workload-inserted keys far above anything the seed
// generator produced, so commits never collide on the primary key.
const newRowKeyBase = int64(1) << 40

// versionPool is the committed-version universe the clients draw targets
// from; commits and merges grow it as the run progresses.
type versionPool struct {
	mu       sync.Mutex
	versions []vgraph.VersionID
}

func newVersionPool(vs []vgraph.VersionID) *versionPool {
	return &versionPool{versions: append([]vgraph.VersionID(nil), vs...)}
}

func (p *versionPool) add(v vgraph.VersionID) {
	p.mu.Lock()
	p.versions = append(p.versions, v)
	p.mu.Unlock()
}

func (p *versionPool) pick(rng *rand.Rand) vgraph.VersionID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.versions[rng.Intn(len(p.versions))]
}

// pickTwo returns two distinct versions when the pool has at least two;
// otherwise both results are the single version.
func (p *versionPool) pickTwo(rng *rand.Rand) (vgraph.VersionID, vgraph.VersionID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.versions)
	if n < 2 {
		return p.versions[0], p.versions[0]
	}
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return p.versions[i], p.versions[j]
}

// engineDriver runs the mix directly against the in-process engine — the
// embedded deployment of the paper, no network between client and CVD.
type engineDriver struct {
	engine *core.Engine
	cvd    *cvd.CVD
	pool   *versionPool
	seq    atomic.Int64
	nextK  atomic.Int64
	maxKey int64
}

func newEngineDriver(engine *core.Engine, spec *Spec) (*engineDriver, error) {
	c, err := engine.CVD(CVDName)
	if err != nil {
		return nil, err
	}
	return &engineDriver{
		engine: engine,
		cvd:    c,
		pool:   newVersionPool(c.Versions()),
		maxKey: c.NumRecords(),
	}, nil
}

func (d *engineDriver) close() error { return nil }

func (d *engineDriver) do(client int, rng *rand.Rand, op opKind) error {
	switch op {
	case opCommit:
		return d.commit(client, rng)
	case opCheckout:
		return d.checkout(client, rng)
	case opSelect:
		return d.selectOp(rng)
	case opMerge:
		return d.merge(client, rng)
	}
	return fmt.Errorf("workload: unknown op %v", op)
}

// commit stages a checkout of a random version, appends one fresh record,
// and commits it back — the continuous-ingest shape.
func (d *engineDriver) commit(client int, rng *rand.Rand) error {
	v := d.pool.pick(rng)
	return d.commitVersions(client, rng, []vgraph.VersionID{v}, true)
}

// merge stages a merged checkout of two versions and commits it, producing a
// two-parent version.
func (d *engineDriver) merge(client int, rng *rand.Rand) error {
	a, b := d.pool.pickTwo(rng)
	if a == b {
		// Degenerate pool: fall back to a plain commit rather than failing.
		return d.commitVersions(client, rng, []vgraph.VersionID{a}, false)
	}
	return d.commitVersions(client, rng, []vgraph.VersionID{a, b}, false)
}

func (d *engineDriver) commitVersions(client int, rng *rand.Rand, parents []vgraph.VersionID, appendRow bool) error {
	tab := d.stagingName(client)
	t, err := d.engine.Checkout(CVDName, parents, tab)
	if err != nil {
		return err
	}
	if appendRow {
		t.AppendRow(d.newRow(rng, t.Schema))
	}
	nv, err := d.engine.Commit(CVDName, tab, "workload commit", fmt.Sprintf("client-%d", client))
	if err != nil {
		if nv == 0 {
			d.cvd.DiscardCheckout(tab)
		}
		return err
	}
	d.pool.add(nv)
	return nil
}

// checkout materializes a random version and discards it — the read path
// that stresses recset decompression and table assembly.
func (d *engineDriver) checkout(client int, rng *rand.Rand) error {
	v := d.pool.pick(rng)
	tab := d.stagingName(client)
	if _, err := d.engine.Checkout(CVDName, []vgraph.VersionID{v}, tab); err != nil {
		return err
	}
	d.cvd.DiscardCheckout(tab)
	return nil
}

// selectOp runs a versioned predicate scan without materializing a table.
func (d *engineDriver) selectOp(rng *rand.Rand) error {
	v := d.pool.pick(rng)
	bound := int64(1)
	if d.maxKey > 1 {
		bound = d.maxKey
	}
	pred, err := d.cvd.NamedPredicate("key", ">", relstore.Int(rng.Int63n(bound)))
	if err != nil {
		return err
	}
	_, err = d.cvd.ScanVersions([]vgraph.VersionID{v}, pred, 100)
	return err
}

func (d *engineDriver) stagingName(client int) string {
	return fmt.Sprintf("w_%d_%d", client, d.seq.Add(1))
}

// newRow synthesizes one fresh record shaped like the staging table: the rid
// column (first, stripped again by commit) gets a placeholder, the primary
// key gets a globally unique value, attributes get random fill.
func (d *engineDriver) newRow(rng *rand.Rand, schema relstore.Schema) relstore.Row {
	row := make(relstore.Row, len(schema.Columns))
	for i, col := range schema.Columns {
		switch {
		case i == 0:
			row[i] = relstore.Int(-1)
		case col.Name == "key":
			row[i] = relstore.Int(newRowKeyBase + d.nextK.Add(1))
		default:
			row[i] = randomCell(rng, col.Type)
		}
	}
	return row
}

func randomCell(rng *rand.Rand, t relstore.ValueType) relstore.Value {
	switch t {
	case relstore.TypeString:
		return relstore.Str(fmt.Sprintf("w%08d", rng.Intn(1e8)))
	case relstore.TypeFloat:
		return relstore.Float(rng.Float64())
	default:
		return relstore.Int(rng.Int63n(1_000_000))
	}
}
