// Package workload is the declarative workload harness: a benchmark scenario
// is a small YAML or JSON spec — dataset, scale, workload kind, branch
// factor, client count, operation mix, duration or op count, and engine
// knobs — that compiles to a driver over the engine (in process, or over the
// orpheusd HTTP API) and emits one BENCH_<spec>.json report with throughput
// and latency percentiles. Opening a new scenario means writing a spec file,
// not a new Go bench function (the dolt import_benchmarker idiom).
//
// The package also carries the crash-injection harness (crash.go): a parent
// process forks a child committing deterministic content into a durable data
// directory, kill -9s it at randomized points mid-commit or mid-checkpoint,
// reopens the directory, and verifies that every acknowledged commit checks
// out bit-identically (the comparators shared with core's persistence
// round-trip property tests).
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchmark"
)

// Duration is a time.Duration that marshals to and from JSON (and the YAML
// subset) as a Go duration string ("250ms"), with bare integers read as
// nanoseconds for compatibility with numeric JSON.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\" or integer nanoseconds: %s", data)
	}
	*d = Duration(n)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Mix is the operation mix: what percentage of operations are commits
// (checkout head + commit on top), bare checkouts, versioned selects, and
// merges (checkout of two versions committed as one child). The four must
// sum to exactly 100.
type Mix struct {
	Commit   int `json:"commit"`
	Checkout int `json:"checkout"`
	Select   int `json:"select"`
	Merge    int `json:"merge"`
}

// Sum returns the percentage total.
func (m Mix) Sum() int { return m.Commit + m.Checkout + m.Select + m.Merge }

// EngineSpec is the engine configuration block of a spec.
type EngineSpec struct {
	// Workers is the engine's intra-operation worker-pool size
	// (core.WithWorkers; 0 = single-threaded operations).
	Workers int `json:"workers,omitempty"`
	// Durable binds the run to a data directory (OpenDurable): every commit
	// is WAL-journaled and fsynced. Off by default — throughput specs
	// usually measure the in-memory engine.
	Durable bool `json:"durable,omitempty"`
	// DataDir is the durable data directory; empty selects a fresh temporary
	// directory removed after the run. Only valid with Durable.
	DataDir string `json:"data_dir,omitempty"`
	// GroupCommitBatch / GroupCommitDelay configure WAL group commit
	// (core.GroupCommit) on a durable engine; zero values select defaults.
	GroupCommitBatch int      `json:"group_commit_batch,omitempty"`
	GroupCommitDelay Duration `json:"group_commit_delay,omitempty"`
	// CheckpointEvery triggers a background checkpoint (core.CheckpointAsync
	// through the engine's sync wrapper, run off the client goroutines) every
	// N successful commit operations. Requires Durable. 0 disables runner
	// checkpoints.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// RestoreEpoch verifies point-in-time restore after the run: the data
	// directory is reopened read-only at the given retained checkpoint epoch
	// (-1 = the newest retained one) and its content checked out. Requires
	// Durable and CheckpointEvery. 0 disables the check.
	RestoreEpoch int `json:"restore_epoch,omitempty"`
}

// Crash-child checkpoint modes.
const (
	CheckpointSync       = "sync"
	CheckpointBackground = "background"
)

// CrashSpec parameterizes the crash-injection harness (workloadrunner
// -crash): how many kill -9 iterations to run, how the child behaves, and
// the randomized kill window.
type CrashSpec struct {
	// Iterations is the number of kill -9 cycles (default 20). Every
	// iteration spawns a child on the same data directory, kills it, reopens
	// the directory, and verifies every acknowledged commit bit-identically.
	Iterations int `json:"iterations,omitempty"`
	// MaxCommits bounds how many commits the child attempts per iteration
	// (default 500 — high enough that the kill lands first).
	MaxCommits int `json:"max_commits,omitempty"`
	// CheckpointPct is the percent chance, per commit, that the child runs a
	// checkpoint right after it (default 10) — so kills also land
	// mid-checkpoint, exercising the stale-WAL recovery path.
	CheckpointPct int `json:"checkpoint_pct,omitempty"`
	// CheckpointMode is how the child checkpoints: "sync" (default) waits for
	// the whole checkpoint; "background" uses CheckpointAsync and keeps
	// committing while it completes, so kills land mid-background-checkpoint
	// and recovery must fall back to the previous manifest plus the WAL
	// segments.
	CheckpointMode string `json:"checkpoint_mode,omitempty"`
	// MinKillDelay / MaxKillDelay bound the randomized delay between the
	// child's first acknowledged commit and the kill (defaults 20ms / 400ms).
	MinKillDelay Duration `json:"min_kill_delay,omitempty"`
	MaxKillDelay Duration `json:"max_kill_delay,omitempty"`
}

// Spec is one declared workload scenario. The zero value is not runnable:
// parse specs with ParseSpec / ParseSpecFile (which reject unknown keys) or
// fill the struct and call Validate.
type Spec struct {
	// Name labels the run; the report is written to BENCH_<name>.json by
	// default. ParseSpecFile defaults it to the spec file's base name.
	Name string `json:"name"`
	// Mode selects the driver: "inprocess" (default) drives core.Engine
	// directly; "http" serves the engine through internal/server (the
	// orpheusd HTTP API) on a loopback listener and drives it with HTTP
	// clients — sessions, admission control and JSON codecs included.
	Mode string `json:"mode,omitempty"`
	// Dataset names the seed dataset preset (benchmark.Preset; default
	// SCI_10K). Scale multiplies its record counts.
	Dataset string `json:"dataset,omitempty"`
	Scale   int    `json:"scale,omitempty"`
	// Kind overrides the workload kind ("SCI" or "CUR"); empty keeps the
	// preset's kind.
	Kind string `json:"kind,omitempty"`
	// Branches / VersionsPerBranch override the preset's branch factor —
	// how the seed history is shaped (branch-heavy specs set Branches into
	// the thousands with one or two versions each).
	Branches          int `json:"branches,omitempty"`
	VersionsPerBranch int `json:"versions_per_branch,omitempty"`
	// Clients is the number of concurrent clients (default 4).
	Clients int `json:"clients,omitempty"`
	// Ops is the total operation count across all clients; Duration runs
	// for wall-clock time instead. Exactly one may be set (when both are
	// zero, Ops defaults to 200).
	Ops      int      `json:"ops,omitempty"`
	Duration Duration `json:"duration,omitempty"`
	// Seed makes the run deterministic (default 42).
	Seed int64 `json:"seed,omitempty"`
	// SessionChurn (http mode) is how many staged checkouts a client
	// accumulates before closing its session — reclaiming its staging
	// tables — and opening a fresh one (default 8).
	SessionChurn int `json:"session_churn,omitempty"`

	Mix    Mix        `json:"mix"`
	Engine EngineSpec `json:"engine,omitempty"`
	Crash  CrashSpec  `json:"crash,omitempty"`
}

// Modes.
const (
	ModeInProcess = "inprocess"
	ModeHTTP      = "http"
)

// ParseSpec parses a workload spec from YAML (the flat subset described in
// BENCH.md: top-level `key: value` lines plus one nesting level for the
// mix/engine/crash blocks) or JSON (when the document starts with '{').
// Unknown keys, duplicate keys, malformed values, and an operation mix that
// does not sum to 100 are all errors; malformed input never panics (pinned
// by FuzzParseSpec).
func ParseSpec(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var spec Spec
	if len(trimmed) > 0 && trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("workload: parsing JSON spec: %w", err)
		}
	} else if err := parseYAMLSubset(data, &spec); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// ParseSpecFile reads and parses a spec file; a missing name defaults to the
// file's base name without extension.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var spec Spec
	if len(trimmed) > 0 && trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("workload: %s: parsing JSON spec: %w", path, err)
		}
	} else if err := parseYAMLSubset(data, &spec); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	if spec.Name == "" {
		base := filepath.Base(path)
		spec.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return &spec, nil
}

// Validate checks the spec and applies defaults; it is called by the
// parsers and must be called on hand-built specs before Run.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if s.Mode == "" {
		s.Mode = ModeInProcess
	}
	if s.Mode != ModeInProcess && s.Mode != ModeHTTP {
		return fmt.Errorf("workload: unknown mode %q (want %q or %q)", s.Mode, ModeInProcess, ModeHTTP)
	}
	if s.Dataset == "" {
		s.Dataset = "SCI_10K"
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Scale < 0 {
		return fmt.Errorf("workload: scale must be positive")
	}
	if _, err := benchmark.Preset(s.Dataset, s.Scale); err != nil {
		return fmt.Errorf("workload: %w (known presets: %s)", err, strings.Join(benchmark.PresetNames(), ", "))
	}
	switch s.Kind {
	case "", "SCI", "CUR":
	default:
		return fmt.Errorf("workload: unknown kind %q (want SCI or CUR)", s.Kind)
	}
	if s.Branches < 0 || s.VersionsPerBranch < 0 {
		return fmt.Errorf("workload: branches and versions_per_branch must be non-negative")
	}
	if s.Clients == 0 {
		s.Clients = 4
	}
	if s.Clients < 0 || s.Clients > 1024 {
		return fmt.Errorf("workload: clients must be in [1, 1024], got %d", s.Clients)
	}
	if s.Ops < 0 {
		return fmt.Errorf("workload: ops must be non-negative")
	}
	if s.Duration < 0 {
		return fmt.Errorf("workload: duration must be non-negative")
	}
	if s.Ops > 0 && s.Duration > 0 {
		return fmt.Errorf("workload: set ops or duration, not both")
	}
	if s.Ops == 0 && s.Duration == 0 {
		s.Ops = 200
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.SessionChurn == 0 {
		s.SessionChurn = 8
	}
	if s.SessionChurn < 0 {
		return fmt.Errorf("workload: session_churn must be non-negative")
	}
	if s.Mix == (Mix{}) {
		s.Mix = Mix{Commit: 10, Checkout: 40, Select: 45, Merge: 5}
	}
	if s.Mix.Commit < 0 || s.Mix.Checkout < 0 || s.Mix.Select < 0 || s.Mix.Merge < 0 {
		return fmt.Errorf("workload: operation-mix percentages must be non-negative: %+v", s.Mix)
	}
	if got := s.Mix.Sum(); got != 100 {
		return fmt.Errorf("workload: operation mix must sum to 100, got %d (%+v)", got, s.Mix)
	}
	if s.Engine.Workers < 0 {
		return fmt.Errorf("workload: engine workers must be non-negative")
	}
	if s.Engine.GroupCommitBatch < 0 || s.Engine.GroupCommitDelay < 0 {
		return fmt.Errorf("workload: group-commit knobs must be non-negative")
	}
	if s.Engine.DataDir != "" && !s.Engine.Durable {
		return fmt.Errorf("workload: engine data_dir requires durable: true")
	}
	if s.Engine.CheckpointEvery < 0 {
		return fmt.Errorf("workload: engine checkpoint_every must be non-negative")
	}
	if s.Engine.CheckpointEvery > 0 && !s.Engine.Durable {
		return fmt.Errorf("workload: engine checkpoint_every requires durable: true")
	}
	if s.Engine.RestoreEpoch < -1 {
		return fmt.Errorf("workload: engine restore_epoch must be -1 (latest), 0 (off), or a retained epoch")
	}
	if s.Engine.RestoreEpoch != 0 && s.Engine.CheckpointEvery <= 0 {
		return fmt.Errorf("workload: engine restore_epoch requires checkpoint_every (no checkpoint, nothing to restore)")
	}
	if s.Crash.Iterations < 0 || s.Crash.MaxCommits < 0 {
		return fmt.Errorf("workload: crash iterations and max_commits must be non-negative")
	}
	if s.Crash.Iterations == 0 {
		s.Crash.Iterations = 20
	}
	if s.Crash.MaxCommits == 0 {
		s.Crash.MaxCommits = 500
	}
	if s.Crash.CheckpointPct < 0 || s.Crash.CheckpointPct > 100 {
		return fmt.Errorf("workload: crash checkpoint_pct must be in [0, 100]")
	}
	if s.Crash.CheckpointPct == 0 {
		s.Crash.CheckpointPct = 10
	}
	switch s.Crash.CheckpointMode {
	case "":
		s.Crash.CheckpointMode = CheckpointSync
	case CheckpointSync, CheckpointBackground:
	default:
		return fmt.Errorf("workload: crash checkpoint_mode must be %q or %q, got %q",
			CheckpointSync, CheckpointBackground, s.Crash.CheckpointMode)
	}
	if s.Crash.MinKillDelay == 0 {
		s.Crash.MinKillDelay = Duration(20 * time.Millisecond)
	}
	if s.Crash.MaxKillDelay == 0 {
		s.Crash.MaxKillDelay = Duration(400 * time.Millisecond)
	}
	if s.Crash.MinKillDelay < 0 || s.Crash.MaxKillDelay < s.Crash.MinKillDelay {
		return fmt.Errorf("workload: crash kill-delay window [%s, %s] is invalid",
			s.Crash.MinKillDelay.Std(), s.Crash.MaxKillDelay.Std())
	}
	return nil
}

// workloadConfig translates the spec's dataset block into a generator config.
func (s *Spec) workloadConfig() (benchmark.Config, error) {
	cfg, err := benchmark.Preset(s.Dataset, s.Scale)
	if err != nil {
		return benchmark.Config{}, err
	}
	switch s.Kind {
	case "SCI":
		cfg.Kind = benchmark.SCI
	case "CUR":
		cfg.Kind = benchmark.CUR
	}
	if s.Branches > 0 {
		cfg.Branches = s.Branches
	}
	if s.VersionsPerBranch > 0 {
		cfg.VersionsPerBranch = s.VersionsPerBranch
	}
	cfg.Seed = s.Seed
	cfg.Name = s.Dataset
	return cfg, nil
}

// ---- YAML subset parser -----------------------------------------------------

// parseYAMLSubset parses the declarative spec syntax: `key: value` lines,
// `#` comments, blank lines, and exactly one nesting level for the `mix:`,
// `engine:` and `crash:` blocks (children indented by spaces). It is
// deliberately tiny — no anchors, no lists, no multi-line scalars — so spec
// files stay flat and the parser stays fuzzable without a YAML dependency.
func parseYAMLSubset(data []byte, spec *Spec) error {
	section := "" // "", "mix", "engine", "crash"
	seen := map[string]bool{}
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmedAll := strings.TrimSpace(line)
		if trimmedAll == "" || strings.HasPrefix(trimmedAll, "#") {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if strings.HasPrefix(strings.TrimLeft(line, " "), "\t") || strings.HasPrefix(line, "\t") {
			return fmt.Errorf("line %d: tabs are not allowed for indentation", lineNo+1)
		}
		key, value, ok := strings.Cut(trimmedAll, ":")
		if !ok {
			return fmt.Errorf("line %d: expected `key: value`, got %q", lineNo+1, trimmedAll)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		// Strip a trailing comment (specs never need '#' inside a value).
		if i := strings.Index(value, "#"); i >= 0 {
			value = strings.TrimSpace(value[:i])
		}
		value = strings.Trim(value, `"'`)
		if key == "" {
			return fmt.Errorf("line %d: empty key", lineNo+1)
		}
		if indent == 0 {
			section = ""
			if value == "" {
				switch key {
				case "mix", "engine", "crash":
					if seen[key] {
						return fmt.Errorf("line %d: duplicate section %q", lineNo+1, key)
					}
					seen[key] = true
					section = key
					continue
				default:
					return fmt.Errorf("line %d: key %q has no value", lineNo+1, key)
				}
			}
			if seen[key] {
				return fmt.Errorf("line %d: duplicate key %q", lineNo+1, key)
			}
			seen[key] = true
			if err := spec.setTopLevel(key, value); err != nil {
				return fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			continue
		}
		// Indented line: must belong to an open section.
		if section == "" {
			return fmt.Errorf("line %d: indented key %q outside a mix/engine/crash block", lineNo+1, key)
		}
		if value == "" {
			return fmt.Errorf("line %d: key %q has no value", lineNo+1, key)
		}
		qualified := section + "." + key
		if seen[qualified] {
			return fmt.Errorf("line %d: duplicate key %q", lineNo+1, qualified)
		}
		seen[qualified] = true
		var err error
		switch section {
		case "mix":
			err = spec.setMix(key, value)
		case "engine":
			err = spec.setEngine(key, value)
		case "crash":
			err = spec.setCrash(key, value)
		}
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

func (s *Spec) setTopLevel(key, value string) error {
	switch key {
	case "name":
		s.Name = value
	case "mode":
		s.Mode = value
	case "dataset":
		s.Dataset = value
	case "scale":
		return yInt(key, value, &s.Scale)
	case "kind":
		s.Kind = value
	case "branches":
		return yInt(key, value, &s.Branches)
	case "versions_per_branch":
		return yInt(key, value, &s.VersionsPerBranch)
	case "clients":
		return yInt(key, value, &s.Clients)
	case "ops":
		return yInt(key, value, &s.Ops)
	case "duration":
		return yDuration(key, value, &s.Duration)
	case "seed":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("key %q: not an integer: %q", key, value)
		}
		s.Seed = n
	case "session_churn":
		return yInt(key, value, &s.SessionChurn)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func (s *Spec) setMix(key, value string) error {
	switch key {
	case "commit":
		return yInt("mix.commit", value, &s.Mix.Commit)
	case "checkout":
		return yInt("mix.checkout", value, &s.Mix.Checkout)
	case "select":
		return yInt("mix.select", value, &s.Mix.Select)
	case "merge":
		return yInt("mix.merge", value, &s.Mix.Merge)
	}
	return fmt.Errorf("unknown key \"mix.%s\"", key)
}

func (s *Spec) setEngine(key, value string) error {
	switch key {
	case "workers":
		return yInt("engine.workers", value, &s.Engine.Workers)
	case "durable":
		return yBool("engine.durable", value, &s.Engine.Durable)
	case "data_dir":
		s.Engine.DataDir = value
		return nil
	case "group_commit_batch":
		return yInt("engine.group_commit_batch", value, &s.Engine.GroupCommitBatch)
	case "group_commit_delay":
		return yDuration("engine.group_commit_delay", value, &s.Engine.GroupCommitDelay)
	case "checkpoint_every":
		return yInt("engine.checkpoint_every", value, &s.Engine.CheckpointEvery)
	case "restore_epoch":
		return yInt("engine.restore_epoch", value, &s.Engine.RestoreEpoch)
	}
	return fmt.Errorf("unknown key \"engine.%s\"", key)
}

func (s *Spec) setCrash(key, value string) error {
	switch key {
	case "iterations":
		return yInt("crash.iterations", value, &s.Crash.Iterations)
	case "max_commits":
		return yInt("crash.max_commits", value, &s.Crash.MaxCommits)
	case "checkpoint_pct":
		return yInt("crash.checkpoint_pct", value, &s.Crash.CheckpointPct)
	case "checkpoint_mode":
		s.Crash.CheckpointMode = value
		return nil
	case "min_kill_delay":
		return yDuration("crash.min_kill_delay", value, &s.Crash.MinKillDelay)
	case "max_kill_delay":
		return yDuration("crash.max_kill_delay", value, &s.Crash.MaxKillDelay)
	}
	return fmt.Errorf("unknown key \"crash.%s\"", key)
}

func yInt(key, value string, into *int) error {
	n, err := strconv.Atoi(value)
	if err != nil {
		return fmt.Errorf("key %q: not an integer: %q", key, value)
	}
	*into = n
	return nil
}

func yBool(key, value string, into *bool) error {
	switch value {
	case "true", "yes", "on":
		*into = true
	case "false", "no", "off":
		*into = false
	default:
		return fmt.Errorf("key %q: not a boolean: %q", key, value)
	}
	return nil
}

func yDuration(key, value string, into *Duration) error {
	d, err := time.ParseDuration(value)
	if err != nil {
		return fmt.Errorf("key %q: not a duration: %q", key, value)
	}
	*into = Duration(d)
	return nil
}
