package workload

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte("name: defaults\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]interface{}{
		"mode":          ModeInProcess,
		"dataset":       "SCI_10K",
		"scale":         1,
		"clients":       4,
		"ops":           200,
		"seed":          int64(42),
		"session_churn": 8,
	}
	got := map[string]interface{}{
		"mode":          spec.Mode,
		"dataset":       spec.Dataset,
		"scale":         spec.Scale,
		"clients":       spec.Clients,
		"ops":           spec.Ops,
		"seed":          spec.Seed,
		"session_churn": spec.SessionChurn,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("defaults: got %+v, want %+v", got, want)
	}
	if spec.Mix.Sum() != 100 {
		t.Errorf("default mix sums to %d, want 100", spec.Mix.Sum())
	}
	if spec.Crash.Iterations != 20 || spec.Crash.MaxCommits != 500 || spec.Crash.CheckpointPct != 10 {
		t.Errorf("crash defaults: %+v", spec.Crash)
	}
	if spec.Crash.MinKillDelay.Std() != 20*time.Millisecond || spec.Crash.MaxKillDelay.Std() != 400*time.Millisecond {
		t.Errorf("kill window defaults: [%s, %s]", spec.Crash.MinKillDelay.Std(), spec.Crash.MaxKillDelay.Std())
	}
}

func TestParseSpecTable(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring; empty = must parse
		check   func(t *testing.T, s *Spec)
	}{
		{
			name: "full yaml",
			in: `# comment
name: full
mode: http
dataset: CUR_10K
kind: CUR
scale: 2
branches: 30
versions_per_branch: 3
clients: 12
duration: 1500ms
seed: 7
session_churn: 5
mix:
  commit: 25
  checkout: 25
  select: 25
  merge: 25
engine:
  workers: 4
  durable: true
  group_commit_batch: 16
  group_commit_delay: 3ms
crash:
  iterations: 7
  max_commits: 100
  checkpoint_pct: 50
  min_kill_delay: 5ms
  max_kill_delay: 50ms
`,
			check: func(t *testing.T, s *Spec) {
				if s.Mode != ModeHTTP || s.Dataset != "CUR_10K" || s.Scale != 2 || s.Clients != 12 {
					t.Errorf("top level: %+v", s)
				}
				if s.Duration.Std() != 1500*time.Millisecond || s.Ops != 0 {
					t.Errorf("duration %s ops %d", s.Duration.Std(), s.Ops)
				}
				if s.Mix != (Mix{Commit: 25, Checkout: 25, Select: 25, Merge: 25}) {
					t.Errorf("mix: %+v", s.Mix)
				}
				if !s.Engine.Durable || s.Engine.Workers != 4 || s.Engine.GroupCommitBatch != 16 ||
					s.Engine.GroupCommitDelay.Std() != 3*time.Millisecond {
					t.Errorf("engine: %+v", s.Engine)
				}
				if s.Crash.Iterations != 7 || s.Crash.MaxKillDelay.Std() != 50*time.Millisecond {
					t.Errorf("crash: %+v", s.Crash)
				}
			},
		},
		{
			name: "json spec",
			in:   `{"name": "j", "clients": 2, "mix": {"commit": 50, "checkout": 50, "select": 0, "merge": 0}}`,
			check: func(t *testing.T, s *Spec) {
				if s.Clients != 2 || s.Mix.Commit != 50 {
					t.Errorf("json spec: %+v", s)
				}
			},
		},
		{
			name:    "unknown top-level key yaml",
			in:      "name: x\nbogus: 1\n",
			wantErr: `unknown key "bogus"`,
		},
		{
			name:    "unknown section key yaml",
			in:      "name: x\nmix:\n  commit: 100\n  typo: 0\n",
			wantErr: `unknown key "mix.typo"`,
		},
		{
			name:    "unknown key json",
			in:      `{"name": "x", "bogus": 1}`,
			wantErr: "unknown field",
		},
		{
			name:    "duplicate key",
			in:      "name: x\nname: y\n",
			wantErr: `duplicate key "name"`,
		},
		{
			name:    "duplicate section key",
			in:      "name: x\nmix:\n  commit: 50\n  commit: 50\n",
			wantErr: `duplicate key "mix.commit"`,
		},
		{
			name:    "tab indentation",
			in:      "name: x\nmix:\n\tcommit: 100\n",
			wantErr: "tabs are not allowed",
		},
		{
			name:    "indented key outside section",
			in:      "name: x\n  stray: 1\n",
			wantErr: "outside a mix/engine/crash block",
		},
		{
			name:    "mix does not sum to 100",
			in:      "name: x\nmix:\n  commit: 10\n  checkout: 10\n  select: 10\n  merge: 10\n",
			wantErr: "operation mix must sum to 100, got 40",
		},
		{
			name:    "mix over 100",
			in:      `{"name": "x", "mix": {"commit": 90, "checkout": 20, "select": 0, "merge": 0}}`,
			wantErr: "operation mix must sum to 100, got 110",
		},
		{
			name:    "negative mix entry",
			in:      `{"name": "x", "mix": {"commit": 120, "checkout": -20, "select": 0, "merge": 0}}`,
			wantErr: "must be non-negative",
		},
		{
			name:    "ops and duration both set",
			in:      "name: x\nops: 10\nduration: 1s\n",
			wantErr: "set ops or duration, not both",
		},
		{
			name:    "data_dir without durable",
			in:      "name: x\nengine:\n  data_dir: /tmp/somewhere\n",
			wantErr: "data_dir requires durable",
		},
		{
			name:    "unknown dataset",
			in:      "name: x\ndataset: SCI_999Z\n",
			wantErr: "unknown preset",
		},
		{
			name:    "unknown mode",
			in:      "name: x\nmode: carrier-pigeon\n",
			wantErr: "unknown mode",
		},
		{
			name:    "unknown kind",
			in:      "name: x\nkind: OLTP\n",
			wantErr: "unknown kind",
		},
		{
			name:    "bad integer",
			in:      "name: x\nclients: many\n",
			wantErr: "not an integer",
		},
		{
			name:    "bad duration",
			in:      "name: x\nduration: fortnight\n",
			wantErr: "not a duration",
		},
		{
			name:    "bad bool",
			in:      "name: x\nengine:\n  durable: maybe\n",
			wantErr: "not a boolean",
		},
		{
			name:    "missing name",
			in:      "clients: 2\n",
			wantErr: "needs a name",
		},
		{
			name:    "invalid kill window",
			in:      "name: x\ncrash:\n  min_kill_delay: 100ms\n  max_kill_delay: 10ms\n",
			wantErr: "kill-delay window",
		},
		{
			name:    "line without colon",
			in:      "name: x\njust words\n",
			wantErr: "expected `key: value`",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec([]byte(tc.in))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tc.check != nil {
					tc.check(t, spec)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got spec %+v", tc.wantErr, spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSpecReportRoundTrip pins the report-header contract: the spec embedded
// in a BENCH_*.json report parses back into the exact spec that ran,
// defaults included — so a report is a reproducible run description.
func TestSpecReportRoundTrip(t *testing.T) {
	spec, err := ParseSpec([]byte(`name: roundtrip
mode: http
dataset: SCI_1K
clients: 3
duration: 750ms
mix:
  commit: 20
  checkout: 30
  select: 40
  merge: 10
engine:
  durable: true
  group_commit_delay: 4ms
`))
	if err != nil {
		t.Fatal(err)
	}
	report := &Report{Spec: *spec, TotalOps: 123}
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spec json.RawMessage `json:"spec"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(decoded.Spec)
	if err != nil {
		t.Fatalf("report header does not re-parse as a spec: %v", err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip diverged:\n ran %+v\n got %+v", spec, back)
	}
}

func TestParseSpecFileNameDefault(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/my_scenario.yaml"
	if err := os.WriteFile(path, []byte("clients: 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "my_scenario" {
		t.Errorf("name defaulted to %q, want my_scenario", spec.Name)
	}
}
