package workload

import (
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
)

// TestMain doubles as the crash child: RunCrash re-execs this test binary
// with ["crash-child", specPath, dataDir], which must bypass the test
// framework entirely and behave like workloadrunner -crash-child.
func TestMain(m *testing.M) {
	if len(os.Args) >= 4 && os.Args[1] == "crash-child" {
		os.Exit(CrashChild(os.Args[2], os.Args[3], os.Stdout))
	}
	os.Exit(m.Run())
}

func crashChildArgs(specPath, dataDir string) []string {
	return []string{"crash-child", specPath, dataDir}
}

// smallSpec is a fast mixed workload against the smallest preset.
func smallSpec(t *testing.T, mode string) *Spec {
	t.Helper()
	spec := &Spec{
		Name:    "t_" + mode,
		Mode:    mode,
		Dataset: "SCI_1K",
		Clients: 4,
		Ops:     80,
		Mix:     Mix{Commit: 20, Checkout: 30, Select: 40, Merge: 10},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func checkReport(t *testing.T, spec *Spec, report *Report) {
	t.Helper()
	if report.TotalOps+report.TotalErrors+report.TotalShed != int64(spec.Ops) {
		t.Errorf("ops accounted: %d ok + %d errors + %d shed != %d issued",
			report.TotalOps, report.TotalErrors, report.TotalShed, spec.Ops)
	}
	if report.TotalErrors != 0 {
		t.Errorf("%d operations failed: %+v", report.TotalErrors, report.Ops)
	}
	if report.SeedVersions == 0 || report.SeedRecords == 0 {
		t.Errorf("seed shape empty: %d versions, %d records", report.SeedVersions, report.SeedRecords)
	}
	// ~20% commits + ~10% merges must have grown the version graph.
	if report.FinalVersions <= report.SeedVersions {
		t.Errorf("no versions created: seed %d, final %d", report.SeedVersions, report.FinalVersions)
	}
	if report.ThroughputPerSec <= 0 {
		t.Errorf("throughput %f", report.ThroughputPerSec)
	}
}

func TestRunInProcess(t *testing.T) {
	spec := smallSpec(t, ModeInProcess)
	report, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, spec, report)
}

func TestRunHTTP(t *testing.T) {
	spec := smallSpec(t, ModeHTTP)
	spec.SessionChurn = 3
	report, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, spec, report)
}

func TestRunDurableGroupCommit(t *testing.T) {
	spec := smallSpec(t, ModeInProcess)
	spec.Name = "t_durable"
	spec.Ops = 40
	spec.Engine = EngineSpec{Durable: true, GroupCommitBatch: 8, GroupCommitDelay: Duration(time.Millisecond)}
	report, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalErrors != 0 {
		t.Errorf("%d operations failed on durable engine: %+v", report.TotalErrors, report.Ops)
	}
}

// TestRunHTTPStressDrain is the -race admission-path stress: a mixed
// read/write HTTP workload with aggressive session churn while the server's
// sessions are repeatedly drained out from under the clients (the daemon's
// CloseSessions path). Clients must transparently reopen sessions; the run
// must finish with every operation accounted for.
func TestRunHTTPStressDrain(t *testing.T) {
	spec := &Spec{
		Name:         "t_stress",
		Mode:         ModeHTTP,
		Dataset:      "SCI_1K",
		Clients:      8,
		Ops:          240,
		SessionChurn: 2,
		Mix:          Mix{Commit: 25, Checkout: 35, Select: 30, Merge: 10},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.workloadConfig()
	if err != nil {
		t.Fatal(err)
	}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.Open(spec.Name, core.WithWorkers(0))
	if err := seedEngine(engine, w); err != nil {
		t.Fatal(err)
	}
	drv, err := newHTTPDriver(engine, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer drv.close()

	// Drain every open session repeatedly while the clients run.
	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				drv.api.CloseSessions()
			}
		}
	}()
	recs := runClients(spec, drv)
	close(stop)
	drains.Wait()

	stats := mergeStats(recs.perClient)
	var ok, errs, shed int64
	for _, st := range stats {
		ok += st.Count
		errs += st.Errors
		shed += st.Shed
	}
	if ok+errs+shed != int64(spec.Ops) {
		t.Errorf("ops accounted: %d ok + %d errors + %d shed != %d issued", ok, errs, shed, spec.Ops)
	}
	if ok == 0 {
		t.Error("no operation succeeded under drain churn")
	}
	// Commits must have landed despite the drains.
	c, err := engine.CVD(CVDName)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVersions() <= len(w.Graph.TopoOrder()) {
		t.Errorf("no committed versions survived drain churn: %d", c.NumVersions())
	}
}

// TestRunCrashSmoke runs a short real kill -9 campaign: fork this test
// binary as the crash child, kill it mid-commit, and verify acknowledged
// commits recover bit-identically. The full 20-iteration campaign runs in CI
// via workloadrunner; this keeps the unit suite fast.
func TestRunCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills child processes")
	}
	spec := &Spec{
		Name:   "t_crash",
		Engine: EngineSpec{Durable: true},
		Crash: CrashSpec{
			Iterations:    3,
			MaxCommits:    300,
			CheckpointPct: 20,
			MinKillDelay:  Duration(5 * time.Millisecond),
			MaxKillDelay:  Duration(60 * time.Millisecond),
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	report, err := RunCrash(spec, CrashConfig{
		ArgsFor: crashChildArgs,
		DataDir: t.TempDir() + "/data",
	})
	if err != nil {
		t.Fatalf("crash campaign failed: %v", err)
	}
	if report.Kills != 3 {
		t.Errorf("kills = %d, want 3", report.Kills)
	}
	if report.AckedCommits == 0 {
		t.Error("no commits were acknowledged before the kills")
	}
	if report.VerifiedVersions < report.AckedCommits {
		t.Errorf("verified %d versions < %d acked", report.VerifiedVersions, report.AckedCommits)
	}
}

// TestRunCrashBackgroundCheckpointSmoke is the background-checkpoint variant:
// the child places the WAL fence synchronously but races the kill through the
// encode/write half, so some iterations die with a checkpoint mid-flight and
// must recover from the previous manifest plus the sealed segments.
func TestRunCrashBackgroundCheckpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills child processes")
	}
	spec := &Spec{
		Name:   "t_crash_bg",
		Engine: EngineSpec{Durable: true},
		Crash: CrashSpec{
			Iterations:     3,
			MaxCommits:     300,
			CheckpointPct:  40,
			CheckpointMode: CheckpointBackground,
			MinKillDelay:   Duration(5 * time.Millisecond),
			MaxKillDelay:   Duration(60 * time.Millisecond),
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	report, err := RunCrash(spec, CrashConfig{
		ArgsFor: crashChildArgs,
		DataDir: t.TempDir() + "/data",
	})
	if err != nil {
		t.Fatalf("background-checkpoint crash campaign failed: %v", err)
	}
	if report.Kills != 3 {
		t.Errorf("kills = %d, want 3", report.Kills)
	}
	if report.VerifiedVersions < report.AckedCommits {
		t.Errorf("verified %d versions < %d acked", report.VerifiedVersions, report.AckedCommits)
	}
}

// TestCrashDetectsLoss pins the harness's teeth: verifying a data dir whose
// recovered history is shorter than the acknowledged high-water mark must
// fail with an acknowledged-commit-loss error.
func TestCrashDetectsLoss(t *testing.T) {
	spec := &Spec{Name: "t_loss", Engine: EngineSpec{Durable: true}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	engine, err := core.OpenDurable("loss", dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := replayCrashHistory(engine, spec.Seed, 5); err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	// 5 versions on disk, but 7 were "acknowledged": must be flagged.
	if _, err := verifyCrashDir(spec, dir, 7); err == nil {
		t.Fatal("verifyCrashDir accepted a history missing acknowledged commits")
	}
	// The honest count passes.
	verified, err := verifyCrashDir(spec, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if verified != 5 {
		t.Errorf("verified %d versions, want 5", verified)
	}
}

// TestCrashDetectsCorruption pins content verification: a recovered history
// whose row payloads differ from the deterministic expectation must fail
// bit-identity even when the version count matches.
func TestCrashDetectsCorruption(t *testing.T) {
	spec := &Spec{Name: "t_corrupt", Engine: EngineSpec{Durable: true}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	engine, err := core.OpenDurable("corrupt", dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, wrong payloads: replay with a different seed.
	if err := replayCrashHistory(engine, spec.Seed+1, 4); err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := verifyCrashDir(spec, dir, 4); err == nil {
		t.Fatal("verifyCrashDir accepted diverged content")
	}
}
