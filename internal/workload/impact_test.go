package workload

import (
	"testing"
	"time"
)

// TestRunCheckpointAndRestore pins the runner's checkpoint_every/restore_epoch
// wiring: background checkpoints fire during the run, and afterwards the data
// dir reopens at the newest retained epoch with the workload CVD intact.
func TestRunCheckpointAndRestore(t *testing.T) {
	spec := smallSpec(t, ModeInProcess)
	spec.Name = "t_ckpt_restore"
	spec.Ops = 120
	spec.Mix = Mix{Commit: 60, Checkout: 20, Select: 20, Merge: 0}
	spec.Engine = EngineSpec{Durable: true, CheckpointEvery: 10, RestoreEpoch: -1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	report, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalErrors != 0 {
		t.Errorf("%d operations failed: %+v", report.TotalErrors, report.Ops)
	}
	if report.Checkpoints < 1 {
		t.Errorf("checkpoints = %d, want >= 1 (checkpoint_every=10 over ~72 commits)", report.Checkpoints)
	}
	if report.CheckpointErrors != 0 {
		t.Errorf("checkpoint errors = %d", report.CheckpointErrors)
	}
	if !report.RestoreVerified {
		t.Error("restore_epoch -1 did not verify")
	}
	if report.RestoredEpoch < 1 {
		t.Errorf("restored epoch = %d, want >= 1", report.RestoredEpoch)
	}
}

// TestRunRestoreSpecificEpoch pins restore_epoch with an explicit epoch id
// (every run checkpoints at least once with these op counts, so epoch 1 is
// always retained).
func TestRunRestoreSpecificEpoch(t *testing.T) {
	spec := smallSpec(t, ModeInProcess)
	spec.Name = "t_ckpt_epoch1"
	spec.Ops = 60
	spec.Mix = Mix{Commit: 80, Checkout: 10, Select: 10, Merge: 0}
	spec.Engine = EngineSpec{Durable: true, CheckpointEvery: 5, RestoreEpoch: 1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	report, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.RestoreVerified || report.RestoredEpoch != 1 {
		t.Errorf("restore: verified=%v epoch=%d, want verified epoch 1",
			report.RestoreVerified, report.RestoredEpoch)
	}
}

// TestCheckpointImpactContinuousIngest is the commit-p99 budget assertion for
// the continuous_ingest spec: background checkpoints must not blow up
// foreground commit latency. The spec file is shortened for the unit suite
// (CI runs the full spec via workloadrunner).
func TestCheckpointImpactContinuousIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("timed two-leg workload")
	}
	spec, err := ParseSpecFile("../../specs/continuous_ingest.yaml")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = Duration(900 * time.Millisecond)
	spec.Engine.CheckpointEvery = 40
	imp, err := RunCheckpointImpact(spec)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Checkpoints < 1 {
		t.Errorf("checkpointed leg ran %d checkpoints, want >= 1", imp.Checkpoints)
	}
	if !imp.WithCheckpoints.RestoreVerified {
		t.Error("checkpointed leg did not verify its restore epoch")
	}
	// Budget: p99 with background checkpoints <= 1.5x baseline. Absolute
	// escape hatch for noisy shared runners: if the checkpointed p99 is
	// itself tiny, the ratio is measurement noise, not a stall.
	const budgetRatio, escapeHatchMs = 1.5, 15.0
	if imp.P99Ratio > budgetRatio && imp.CheckpointCommitP99Ms > escapeHatchMs {
		t.Errorf("commit p99 %.2fms is %.2fx baseline %.2fms (budget %.1fx)",
			imp.CheckpointCommitP99Ms, imp.P99Ratio, imp.BaselineCommitP99Ms, budgetRatio)
	}
	t.Logf("commit p99: baseline %.3fms, with checkpoints %.3fms (ratio %.2f, %d checkpoints)",
		imp.BaselineCommitP99Ms, imp.CheckpointCommitP99Ms, imp.P99Ratio, imp.Checkpoints)
}
