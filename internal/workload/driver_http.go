package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/vgraph"
)

// httpDriver runs the mix over the orpheusd HTTP API: the runner owns the
// engine, serves it on a loopback listener, and each client drives it with
// JSON requests through its own session — the hosted deployment of the
// paper, admission control and session reclaim included.
type httpDriver struct {
	api    *server.Server
	srv    *http.Server
	ln     net.Listener
	base   string
	client *http.Client
	pool   *versionPool
	states []*httpClientState
	churn  int
	maxKey int64
	seq    atomic.Int64
	// retries counts requests re-sent after a 503 shed or a transient
	// connection error; reported in the BENCH report (total_retries), never
	// as operation errors.
	retries atomic.Int64
}

// httpClientState is one client's session bookkeeping; each client goroutine
// owns its entry exclusively, so no locking.
type httpClientState struct {
	session string
	staged  int // checkout-op tables staged since the session opened
}

func newHTTPDriver(engine *core.Engine, spec *Spec) (*httpDriver, error) {
	c, err := engine.CVD(CVDName)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("workload: http listener: %w", err)
	}
	api := server.New(engine, server.Config{})
	srv := &http.Server{Handler: api}
	go srv.Serve(ln)
	states := make([]*httpClientState, spec.Clients)
	for i := range states {
		states[i] = &httpClientState{}
	}
	return &httpDriver{
		api:    api,
		srv:    srv,
		ln:     ln,
		base:   "http://" + ln.Addr().String(),
		client: &http.Client{Timeout: 30 * time.Second},
		pool:   newVersionPool(c.Versions()),
		states: states,
		churn:  spec.SessionChurn,
		maxKey: c.NumRecords(),
	}, nil
}

func (d *httpDriver) close() error {
	err := d.srv.Close()
	d.api.CloseSessions()
	return err
}

func (d *httpDriver) do(client int, rng *rand.Rand, op opKind) error {
	switch op {
	case opCommit:
		return d.commit(client, rng, false)
	case opMerge:
		return d.commit(client, rng, true)
	case opCheckout:
		return d.checkout(client, rng)
	case opSelect:
		return d.selectOp(rng)
	}
	return fmt.Errorf("workload: unknown op %v", op)
}

// commit checks a version (or a two-version merge) out into a staging table
// and immediately commits it back, creating a new version through the full
// server commit path.
func (d *httpDriver) commit(client int, rng *rand.Rand, merge bool) error {
	var versions []int64
	if merge {
		a, b := d.pool.pickTwo(rng)
		if a == b {
			versions = []int64{int64(a)}
		} else {
			versions = []int64{int64(a), int64(b)}
		}
	} else {
		versions = []int64{int64(d.pool.pick(rng))}
	}
	table := fmt.Sprintf("wd%d", d.seq.Add(1))
	var committed struct {
		Version int64 `json:"version"`
	}
	// Checkout and commit run inside one withSession closure: if the server
	// drops the session between the two (a mid-run drain), the commit's 404
	// retries the whole sequence under a fresh session instead of stranding
	// a staged table it can no longer commit.
	err := d.withSession(client, func(sess string) (int, error) {
		var out struct {
			Table   string `json:"table"`
			Records int    `json:"records"`
		}
		status, err := d.post("/v1/checkout", map[string]interface{}{
			"session": sess, "cvd": CVDName, "versions": versions, "table": table,
		}, &out)
		if err != nil {
			return status, err
		}
		return d.post("/v1/commit", map[string]interface{}{
			"session": sess, "cvd": CVDName, "table": table,
			"message": "workload commit", "author": fmt.Sprintf("client-%d", client),
		}, &committed)
	})
	if err != nil {
		return err
	}
	d.pool.add(vgraph.VersionID(committed.Version))
	return nil
}

// checkout stages a version under the session and leaves it there; session
// churn (close + reopen after spec.session_churn checkouts) exercises the
// server's staging-table reclaim.
func (d *httpDriver) checkout(client int, rng *rand.Rand) error {
	v := d.pool.pick(rng)
	table := fmt.Sprintf("wd%d", d.seq.Add(1))
	err := d.withSession(client, func(sess string) (int, error) {
		var out struct {
			Table   string `json:"table"`
			Records int    `json:"records"`
		}
		return d.post("/v1/checkout", map[string]interface{}{
			"session": sess, "cvd": CVDName, "versions": []int64{int64(v)}, "table": table,
		}, &out)
	})
	if err != nil {
		return err
	}
	st := d.states[client]
	st.staged++
	if d.churn > 0 && st.staged >= d.churn {
		d.closeSession(st)
	}
	return nil
}

// selectOp runs a predicate scan; sessionless, like any read-only consumer.
func (d *httpDriver) selectOp(rng *rand.Rand) error {
	v := d.pool.pick(rng)
	bound := int64(1)
	if d.maxKey > 1 {
		bound = d.maxKey
	}
	var out struct {
		Columns []string          `json:"columns"`
		Rows    []json.RawMessage `json:"rows"`
	}
	status, err := d.post("/v1/select", map[string]interface{}{
		"cvd": CVDName, "versions": []int64{int64(v)},
		"where": []map[string]interface{}{{"column": "key", "op": ">", "value": rng.Int63n(bound)}},
		"limit": 100,
	}, &out)
	if status == http.StatusServiceUnavailable {
		return errShed
	}
	return err
}

// withSession runs fn with the client's session, opening one on demand. A
// 404 (the server dropped the session, e.g. a mid-run drain) discards the
// cached id and retries once with a fresh session; a 503 maps to errShed.
func (d *httpDriver) withSession(client int, fn func(session string) (int, error)) error {
	st := d.states[client]
	for attempt := 0; attempt < 4; attempt++ {
		if st.session == "" {
			var out struct {
				Session string `json:"session"`
			}
			status, err := d.post("/v1/session", map[string]interface{}{}, &out)
			if status == http.StatusServiceUnavailable {
				return errShed
			}
			if err != nil {
				return err
			}
			st.session = out.Session
			st.staged = 0
		}
		status, err := fn(st.session)
		switch {
		case status == http.StatusServiceUnavailable:
			return errShed
		case status == http.StatusNotFound && err != nil && strings.Contains(err.Error(), "unknown session"):
			st.session = ""
			continue
		}
		return err
	}
	return fmt.Errorf("workload: session lost on every retry")
}

func (d *httpDriver) closeSession(st *httpClientState) {
	if st.session == "" {
		return
	}
	d.post("/v1/session/close", map[string]interface{}{"session": st.session}, &struct{}{})
	st.session = ""
	st.staged = 0
}

// Retry policy for one request: a 503 shed or a transient connection error
// (refused/reset during a drain window) is retried a bounded number of times
// with exponential backoff plus jitter; anything still failing after that
// surfaces to the caller as usual. Retries are counted in the report rather
// than as errors — the server shedding briefly is designed degradation, not
// a workload failure.
const (
	retryAttempts    = 4
	retryBackoffBase = 5 * time.Millisecond
	retryBackoffCap  = 100 * time.Millisecond
)

// retryableConnErr reports whether a transport-level error (no HTTP status
// at all) looks transient: the connection was refused, reset, or dropped
// mid-flight, the shapes a server drain or restart produces.
func retryableConnErr(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "EOF") ||
		strings.Contains(msg, "broken pipe")
}

// post sends one JSON request with bounded retry on 503s and transient
// connection errors, decoding the response like postOnce.
func (d *httpDriver) post(path string, body interface{}, out interface{}) (int, error) {
	backoff := retryBackoffBase
	for attempt := 0; ; attempt++ {
		status, err := d.postOnce(path, body, out)
		retryable := status == http.StatusServiceUnavailable || (status == 0 && retryableConnErr(err))
		if !retryable || attempt == retryAttempts-1 {
			return status, err
		}
		d.retries.Add(1)
		// Full jitter: sleep a uniform fraction of the exponential step so
		// concurrent clients that were shed together do not return together.
		time.Sleep(time.Duration(rand.Int63n(int64(backoff)) + int64(backoff)/2))
		if backoff *= 2; backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
	}
}

// postOnce sends one JSON request and decodes the response, returning the
// HTTP status alongside any error (non-2xx bodies become errors carrying the
// server's error message).
func (d *httpDriver) postOnce(path string, body interface{}, out interface{}) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := d.client.Post(d.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s: %s (status %d)", path, e.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decoding response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
