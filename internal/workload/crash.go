package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// The crash harness proves the durability claim the WAL makes: an
// acknowledged commit survives kill -9 at any instant. The parent process
// forks a child running CrashChild against a durable data dir; the child
// commits deterministic versions and prints "ACK <v>" after each commit
// returns (i.e. after the WAL fsync). The parent SIGKILLs it at a random
// point, reopens the data dir, and demands that every acknowledged version
// checks out bit-identical to a reference engine that replayed the same
// deterministic history — reusing the persistence round-trip comparators
// from internal/core. Iterations reuse the same data dir, so recovery also
// runs on top of previous recoveries and mid-write WAL tails.

// CrashCVD is the dataset name the crash child commits into.
const CrashCVD = "crash"

// crashAuthor tags the child's commits.
const crashAuthor = "crash-child"

// CrashConfig wires RunCrash to the re-exec'able binary hosting CrashChild.
type CrashConfig struct {
	// Exe is the binary to fork; defaults to os.Executable().
	Exe string
	// ArgsFor builds the child argv (without argv[0]) that routes the binary
	// into CrashChild with the given spec file and data dir. Required.
	ArgsFor func(specPath, dataDir string) []string
	// DataDir hosts the durable store under test; a temp dir when empty.
	DataDir string
	// KeepFailed leaves the data dir in place when verification fails, so CI
	// can upload it as an artifact. The report records the path.
	KeepFailed bool
	// Log receives progress lines; io.Discard when nil.
	Log io.Writer
}

// CrashReport summarizes a RunCrash campaign.
type CrashReport struct {
	Spec Spec `json:"spec"`

	// Kills counts kill -9 iterations (the spec's crash.iterations target).
	Kills int `json:"kills"`
	// CleanExits counts children that finished MaxCommits before the timer
	// fired; the data dir is reset afterwards so killing resumes from scratch.
	CleanExits int `json:"clean_exits"`
	// AckedCommits sums acknowledged commits across all children.
	AckedCommits int64 `json:"acked_commits"`
	// VerifiedVersions sums versions proven bit-identical across iterations.
	VerifiedVersions int64 `json:"verified_versions"`
	// Checkpoints counts child-side checkpoints (stale-WAL recovery coverage).
	Checkpoints int64 `json:"checkpoints"`
	ElapsedMs   float64 `json:"elapsed_ms"`

	// FailedDataDir is set when verification failed and KeepFailed preserved
	// the evidence.
	FailedDataDir string `json:"failed_data_dir,omitempty"`
}

// JSON renders the report.
func (r *CrashReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// RunCrash executes spec.Crash.Iterations kill -9 cycles and verifies
// durability after each. Any acknowledged-commit loss or content divergence
// is a hard error.
func RunCrash(spec *Spec, cfg CrashConfig) (*CrashReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArgsFor == nil {
		return nil, fmt.Errorf("workload: CrashConfig.ArgsFor is required")
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	exe := cfg.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return nil, err
		}
	}
	workRoot, err := os.MkdirTemp("", "crash-"+spec.Name+"-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workRoot)
	dataDir := cfg.DataDir
	if dataDir == "" {
		dataDir = filepath.Join(workRoot, "data")
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	specPath := filepath.Join(workRoot, "crash_spec.json")
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		return nil, err
	}

	report := &CrashReport{Spec: *spec}
	rng := rand.New(rand.NewSource(spec.Seed))
	minD := spec.Crash.MinKillDelay.Std()
	maxD := spec.Crash.MaxKillDelay.Std()
	start := time.Now()
	for report.Kills < spec.Crash.Iterations {
		delay := minD
		if maxD > minD {
			delay += time.Duration(rng.Int63n(int64(maxD - minD)))
		}
		outcome, err := runCrashChild(exe, cfg.ArgsFor(specPath, dataDir), delay)
		if err != nil {
			return report, err
		}
		report.AckedCommits += int64(outcome.acked)
		report.Checkpoints += int64(outcome.checkpoints)
		verified, verr := verifyCrashDir(spec, dataDir, outcome.acked)
		report.VerifiedVersions += int64(verified)
		if verr != nil {
			if cfg.KeepFailed {
				report.FailedDataDir = preserveDataDir(dataDir)
			}
			return report, fmt.Errorf("workload: durability violated after iteration %d (killed=%v, acked=%d): %w",
				report.Kills+report.CleanExits+1, outcome.killed, outcome.acked, verr)
		}
		if outcome.killed {
			report.Kills++
			fmt.Fprintf(logw, "iteration %d/%d: killed after %v, acked=%d, verified %d versions\n",
				report.Kills, spec.Crash.Iterations, delay.Round(time.Millisecond), outcome.acked, verified)
		} else {
			// The child finished its budget before the timer fired: restart
			// from an empty dir so later kills land mid-history again.
			report.CleanExits++
			fmt.Fprintf(logw, "clean exit (acked=%d, verified %d versions); resetting data dir\n", outcome.acked, verified)
			if err := os.RemoveAll(dataDir); err != nil {
				return report, err
			}
			if err := os.MkdirAll(dataDir, 0o755); err != nil {
				return report, err
			}
		}
	}
	report.ElapsedMs = msf(time.Since(start))
	return report, nil
}

// childOutcome is what the parent learned from one child run.
type childOutcome struct {
	acked       int // highest acknowledged version
	checkpoints int
	killed      bool
}

// runCrashChild forks the child, harvests its ACK stream, and SIGKILLs it
// after delay (if it is still running).
func runCrashChild(exe string, args []string, delay time.Duration) (*childOutcome, error) {
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var acked, ckpts atomic.Int64
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			switch {
			case strings.HasPrefix(line, "ACK "):
				if v, err := strconv.Atoi(line[4:]); err == nil {
					acked.Store(int64(v))
				}
			case line == "CKPT":
				ckpts.Add(1)
			}
		}
	}()
	out := &childOutcome{}
	timer := time.NewTimer(delay)
	select {
	case <-scanDone:
		timer.Stop()
	case <-timer.C:
		cmd.Process.Kill()
		out.killed = true
		<-scanDone
	}
	werr := cmd.Wait()
	if !out.killed && werr != nil {
		return nil, fmt.Errorf("crash child failed: %w", werr)
	}
	out.acked = int(acked.Load())
	out.checkpoints = int(ckpts.Load())
	return out, nil
}

// verifyCrashDir reopens the data dir and checks the durability contract:
// every acknowledged version is present, and every recovered version checks
// out bit-identical to a reference engine that replayed the same
// deterministic history. Returns the number of versions verified.
func verifyCrashDir(spec *Spec, dataDir string, acked int) (int, error) {
	recovered, err := core.OpenDurable(spec.Name+"-verify", dataDir)
	if err != nil {
		return 0, fmt.Errorf("reopening data dir: %w", err)
	}
	defer recovered.Close()

	if acked == 0 {
		// Nothing was acknowledged; an empty or partially-initialized store is
		// acceptable, but if version 1 exists it must still verify below.
	}
	var have int
	if c, err := recovered.CVD(CrashCVD); err == nil {
		have = c.NumVersions()
	}
	if have < acked {
		return 0, fmt.Errorf("acknowledged commit lost: acked v%d but only %d versions recovered", acked, have)
	}
	if have == 0 {
		return 0, nil
	}
	// An unacknowledged trailing commit may legitimately have made it to disk
	// (the crash hit between fsync and ACK); it must still be self-consistent,
	// so the reference replays everything that was recovered, not just acked.
	reference := core.Open(spec.Name + "-reference")
	if err := replayCrashHistory(reference, spec.Seed, have); err != nil {
		return 0, fmt.Errorf("building reference engine: %w", err)
	}
	cr, err := recovered.CVD(CrashCVD)
	if err != nil {
		return 0, err
	}
	versions := cr.Versions()
	for i, v := range versions {
		want := vgraph.VersionID(i + 1)
		if v != want {
			return 0, fmt.Errorf("recovered version order %v: position %d holds v%d, want v%d", versions, i, v, want)
		}
	}
	for v := 1; v <= have; v++ {
		got, err := core.CheckoutVersionRows(recovered, CrashCVD, vgraph.VersionID(v), "rec")
		if err != nil {
			return 0, fmt.Errorf("recovered engine: %w", err)
		}
		want, err := core.CheckoutVersionRows(reference, CrashCVD, vgraph.VersionID(v), "ref")
		if err != nil {
			return 0, fmt.Errorf("reference engine: %w", err)
		}
		if err := core.RowsBitIdentical(fmt.Sprintf("crash v%d", v), got, want); err != nil {
			return 0, err
		}
	}
	return have, nil
}

// crashSchema is the deterministic dataset: an int primary key plus a
// payload column whose value is a pure function of (seed, key).
func crashSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "key", Type: relstore.TypeInt},
		{Name: "payload", Type: relstore.TypeString},
	}, "key")
}

// crashRows returns the full content of version v: keys 1..v. Row k is
// identical in every version that contains it, so the record universe (and
// therefore rid assignment) is deterministic across replays.
func crashRows(seed int64, v int) []relstore.Row {
	rows := make([]relstore.Row, v)
	for k := 1; k <= v; k++ {
		rows[k-1] = relstore.Row{
			relstore.Int(int64(k)),
			relstore.Str(fmt.Sprintf("payload-%d-%d", seed, k)),
		}
	}
	return rows
}

// replayCrashHistory commits versions 1..n of the deterministic history
// into a fresh engine.
func replayCrashHistory(e *core.Engine, seed int64, n int) error {
	if n < 1 {
		return nil
	}
	if _, err := e.Init(CrashCVD, crashSchema(), crashRows(seed, 1), cvd.Options{
		Author: crashAuthor, Message: "crash v1",
	}); err != nil {
		return err
	}
	c, err := e.CVD(CrashCVD)
	if err != nil {
		return err
	}
	for v := 2; v <= n; v++ {
		if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(v - 1)}, crashRows(seed, v), crashSchema(),
			fmt.Sprintf("crash v%d", v), crashAuthor); err != nil {
			return err
		}
	}
	return nil
}

// CrashChild is the child side: open the durable store, resume the
// deterministic history wherever the previous child left it, and print
// "ACK <v>" after each commit returns. It never exits between a commit
// returning and the ACK being written unbuffered to stdout.
//
// The caller (a -crash-child CLI mode or a test binary's re-exec hook) runs
// this and exits with the returned code.
func CrashChild(specPath, dataDir string, stdout io.Writer) int {
	data, err := os.ReadFile(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		return 1
	}
	spec, err := ParseSpec(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		return 1
	}
	engine, err := core.OpenDurable(spec.Name+"-child", dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: open: %v\n", err)
		return 1
	}
	defer engine.Close()

	rng := rand.New(rand.NewSource(spec.Seed + int64(os.Getpid())))
	next := 1
	c, err := engine.CVD(CrashCVD)
	if err == nil {
		next = c.NumVersions() + 1
	} else {
		if _, ierr := engine.Init(CrashCVD, crashSchema(), crashRows(spec.Seed, 1), cvd.Options{
			Author: crashAuthor, Message: "crash v1",
		}); ierr != nil {
			fmt.Fprintf(os.Stderr, "crash child: init: %v\n", ierr)
			return 1
		}
		fmt.Fprintf(stdout, "ACK 1\n")
		c, err = engine.CVD(CrashCVD)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
			return 1
		}
		next = 2
	}
	for v := next; v <= spec.Crash.MaxCommits; v++ {
		if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(v - 1)}, crashRows(spec.Seed, v), crashSchema(),
			fmt.Sprintf("crash v%d", v), crashAuthor); err != nil {
			fmt.Fprintf(os.Stderr, "crash child: commit v%d: %v\n", v, err)
			return 1
		}
		fmt.Fprintf(stdout, "ACK %d\n", v)
		if spec.Crash.CheckpointPct > 0 && rng.Intn(100) < spec.Crash.CheckpointPct {
			if spec.Crash.CheckpointMode == CheckpointBackground {
				// Background mode: the WAL fence is placed synchronously (so
				// the commit fence is real), but the encode/write half races
				// the kill. A kill mid-encode must recover from the previous
				// manifest plus the sealed segments.
				done, err := engine.CheckpointAsync()
				if err != nil {
					fmt.Fprintf(os.Stderr, "crash child: checkpoint: %v\n", err)
					return 1
				}
				fmt.Fprintf(stdout, "CKPT\n")
				go func() {
					if err := <-done; err != nil {
						fmt.Fprintf(os.Stderr, "crash child: background checkpoint: %v\n", err)
					}
				}()
			} else {
				if err := engine.Checkpoint(); err != nil {
					fmt.Fprintf(os.Stderr, "crash child: checkpoint: %v\n", err)
					return 1
				}
				fmt.Fprintf(stdout, "CKPT\n")
			}
		}
	}
	return 0
}

// preserveDataDir moves a failing data dir out of the about-to-be-removed
// work root so it survives for artifact upload; falls back to the original
// path if the move fails.
func preserveDataDir(dataDir string) string {
	dst := filepath.Join(os.TempDir(), "crash-failed-"+filepath.Base(dataDir)+"-"+strconv.Itoa(os.Getpid()))
	if err := os.Rename(dataDir, dst); err != nil {
		return dataDir
	}
	return dst
}
