// Package recset implements a compressed, sorted set of int64 record
// identifiers — the record-set subsystem behind the version-record bipartite
// graph, the partition optimizer, and partitioned storage maintenance.
//
// The layout is roaring-style (Chambi et al.; the same structure dolt uses
// for chunk membership): values are split into a high key (value >> 16) and a
// 16-bit low part. Each key owns one container holding the low parts, either
// as a sorted []uint16 array (sparse, at most 4096 entries) or as a 64 Ki-bit
// bitmap (dense). Set operations work container-by-container, so Intersect /
// Union / Difference cost O(min(|a|, |b|)) array merges for sparse data and
// word-parallel bit operations for dense runs, and cardinalities (Len,
// AndLen, OrLen) are available without materializing a result.
//
// Sets are not safe for concurrent mutation, but any number of goroutines may
// read (Contains, AndLen, ForEach, ...) a set concurrently as long as nobody
// mutates it — the access pattern of the checkout and partitioning hot paths,
// which build a set once and then share it read-only.
package recset

import (
	"math/bits"
	"slices"
)

const (
	// arrayMaxLen is the container cardinality above which a sorted-array
	// container converts to a bitmap: 4096 uint16 entries occupy the same
	// 8 KiB as the bitmap, so beyond it the bitmap is never larger and every
	// operation on it is word-parallel.
	arrayMaxLen = 4096
	// bitmapWords is the fixed word count of a bitmap container (65536 bits).
	bitmapWords = 1 << 10
)

// container holds the low 16 bits of the values sharing one high key.
// Exactly one of array / bitmap is non-nil.
type container struct {
	array  []uint16 // sorted ascending, unique
	bitmap []uint64 // len == bitmapWords
	n      int      // cardinality (== len(array) for array containers)
}

func newArrayContainer(lows []uint16) *container {
	a := make([]uint16, len(lows))
	copy(a, lows)
	return &container{array: a, n: len(a)}
}

func newBitmapContainer() *container {
	return &container{bitmap: make([]uint64, bitmapWords)}
}

func (c *container) clone() *container {
	out := &container{n: c.n}
	if c.bitmap != nil {
		out.bitmap = make([]uint64, bitmapWords)
		copy(out.bitmap, c.bitmap)
	} else {
		out.array = make([]uint16, len(c.array))
		copy(out.array, c.array)
	}
	return out
}

// searchU16 returns the first index i with a[i] >= v.
func searchU16(a []uint16, v uint16) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (c *container) contains(v uint16) bool {
	if c.bitmap != nil {
		return c.bitmap[v>>6]&(1<<(v&63)) != 0
	}
	i := searchU16(c.array, v)
	return i < len(c.array) && c.array[i] == v
}

func (c *container) toBitmap() {
	bm := make([]uint64, bitmapWords)
	for _, v := range c.array {
		bm[v>>6] |= 1 << (v & 63)
	}
	c.bitmap = bm
	c.array = nil
}

// toArrayIfSparse converts a bitmap container back to an array when its
// cardinality no longer justifies the fixed 8 KiB footprint.
func (c *container) toArrayIfSparse() {
	if c.bitmap == nil || c.n > arrayMaxLen/2 {
		return
	}
	a := make([]uint16, 0, c.n)
	for w, word := range c.bitmap {
		for word != 0 {
			a = append(a, uint16(w<<6|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.array = a
	c.bitmap = nil
}

func (c *container) add(v uint16) bool {
	if c.bitmap != nil {
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bitmap[w]&b != 0 {
			return false
		}
		c.bitmap[w] |= b
		c.n++
		return true
	}
	i := searchU16(c.array, v)
	if i < len(c.array) && c.array[i] == v {
		return false
	}
	if len(c.array) >= arrayMaxLen {
		c.toBitmap()
		return c.add(v)
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = v
	c.n++
	return true
}

func (c *container) remove(v uint16) bool {
	if c.bitmap != nil {
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bitmap[w]&b == 0 {
			return false
		}
		c.bitmap[w] &^= b
		c.n--
		c.toArrayIfSparse()
		return true
	}
	i := searchU16(c.array, v)
	if i >= len(c.array) || c.array[i] != v {
		return false
	}
	copy(c.array[i:], c.array[i+1:])
	c.array = c.array[:len(c.array)-1]
	c.n--
	return true
}

// forEach invokes fn for every value (base | low) in ascending order and
// reports whether iteration ran to completion.
func (c *container) forEach(base int64, fn func(int64) bool) bool {
	if c.bitmap != nil {
		for w, word := range c.bitmap {
			for word != 0 {
				if !fn(base | int64(w<<6|bits.TrailingZeros64(word))) {
					return false
				}
				word &= word - 1
			}
		}
		return true
	}
	for _, v := range c.array {
		if !fn(base | int64(v)) {
			return false
		}
	}
	return true
}

func andLenContainers(a, b *container) int {
	switch {
	case a.bitmap != nil && b.bitmap != nil:
		n := 0
		for i := range a.bitmap {
			n += bits.OnesCount64(a.bitmap[i] & b.bitmap[i])
		}
		return n
	case a.bitmap == nil && b.bitmap == nil:
		n, i, j := 0, 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				i++
			case a.array[i] > b.array[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	default:
		arr, bm := a, b
		if arr.bitmap != nil {
			arr, bm = b, a
		}
		n := 0
		for _, v := range arr.array {
			if bm.bitmap[v>>6]&(1<<(v&63)) != 0 {
				n++
			}
		}
		return n
	}
}

// andContainers returns a ∩ b, or nil when the intersection is empty.
func andContainers(a, b *container) *container {
	switch {
	case a.bitmap != nil && b.bitmap != nil:
		out := newBitmapContainer()
		n := 0
		for i := range a.bitmap {
			w := a.bitmap[i] & b.bitmap[i]
			out.bitmap[i] = w
			n += bits.OnesCount64(w)
		}
		if n == 0 {
			return nil
		}
		out.n = n
		out.toArrayIfSparse()
		return out
	case a.bitmap == nil && b.bitmap == nil:
		var lows []uint16
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				i++
			case a.array[i] > b.array[j]:
				j++
			default:
				lows = append(lows, a.array[i])
				i++
				j++
			}
		}
		if len(lows) == 0 {
			return nil
		}
		return &container{array: lows, n: len(lows)}
	default:
		arr, bm := a, b
		if arr.bitmap != nil {
			arr, bm = b, a
		}
		var lows []uint16
		for _, v := range arr.array {
			if bm.bitmap[v>>6]&(1<<(v&63)) != 0 {
				lows = append(lows, v)
			}
		}
		if len(lows) == 0 {
			return nil
		}
		return &container{array: lows, n: len(lows)}
	}
}

// orInPlace merges o into c (c is mutated; o is not).
func (c *container) orInPlace(o *container) {
	switch {
	case c.bitmap != nil && o.bitmap != nil:
		n := 0
		for i := range c.bitmap {
			c.bitmap[i] |= o.bitmap[i]
			n += bits.OnesCount64(c.bitmap[i])
		}
		c.n = n
	case c.bitmap != nil:
		for _, v := range o.array {
			w, b := v>>6, uint64(1)<<(v&63)
			if c.bitmap[w]&b == 0 {
				c.bitmap[w] |= b
				c.n++
			}
		}
	case o.bitmap != nil:
		bm := make([]uint64, bitmapWords)
		copy(bm, o.bitmap)
		n := o.n
		for _, v := range c.array {
			w, b := v>>6, uint64(1)<<(v&63)
			if bm[w]&b == 0 {
				bm[w] |= b
				n++
			}
		}
		c.bitmap, c.array, c.n = bm, nil, n
	default:
		merged := make([]uint16, 0, len(c.array)+len(o.array))
		i, j := 0, 0
		for i < len(c.array) && j < len(o.array) {
			switch {
			case c.array[i] < o.array[j]:
				merged = append(merged, c.array[i])
				i++
			case c.array[i] > o.array[j]:
				merged = append(merged, o.array[j])
				j++
			default:
				merged = append(merged, c.array[i])
				i++
				j++
			}
		}
		merged = append(merged, c.array[i:]...)
		merged = append(merged, o.array[j:]...)
		c.array, c.n = merged, len(merged)
		if len(merged) > arrayMaxLen {
			c.toBitmap()
		}
	}
}

// andNotContainers returns a \ b, or nil when the difference is empty.
func andNotContainers(a, b *container) *container {
	switch {
	case a.bitmap != nil && b.bitmap != nil:
		out := newBitmapContainer()
		n := 0
		for i := range a.bitmap {
			w := a.bitmap[i] &^ b.bitmap[i]
			out.bitmap[i] = w
			n += bits.OnesCount64(w)
		}
		if n == 0 {
			return nil
		}
		out.n = n
		out.toArrayIfSparse()
		return out
	case a.bitmap == nil:
		var lows []uint16
		for _, v := range a.array {
			if !b.contains(v) {
				lows = append(lows, v)
			}
		}
		if len(lows) == 0 {
			return nil
		}
		return &container{array: lows, n: len(lows)}
	default: // a bitmap, b array
		out := a.clone()
		for _, v := range b.array {
			w, bit := v>>6, uint64(1)<<(v&63)
			if out.bitmap[w]&bit != 0 {
				out.bitmap[w] &^= bit
				out.n--
			}
		}
		if out.n == 0 {
			return nil
		}
		out.toArrayIfSparse()
		return out
	}
}

// Set is a compressed, sorted set of int64 values. The zero value is not
// usable; construct sets with New, FromSlice, or FromSorted.
type Set struct {
	keys []int64      // sorted high keys (value >> 16)
	cs   []*container // parallel to keys
	n    int64        // total cardinality
}

// New returns an empty set.
func New() *Set { return &Set{} }

// FromSlice builds a set from values in any order (duplicates are fine).
// The input slice is not modified.
func FromSlice(vals []int64) *Set {
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	slices.Sort(sorted)
	return FromSorted(sorted)
}

// FromSorted builds a set from values sorted ascending (duplicates are
// skipped). This is the fast bulk-construction path: each container is built
// in one pass with no per-value search.
func FromSorted(vals []int64) *Set {
	s := New()
	var lows []uint16
	var curKey int64
	started := false
	flush := func() {
		c := newArrayContainer(lows)
		if c.n > arrayMaxLen {
			c.toBitmap()
		}
		s.keys = append(s.keys, curKey)
		s.cs = append(s.cs, c)
		s.n += int64(c.n)
	}
	for i, v := range vals {
		if i > 0 && v == vals[i-1] {
			continue
		}
		k := v >> 16
		if !started {
			started = true
			curKey = k
		} else if k != curKey {
			flush()
			curKey = k
			lows = lows[:0]
		}
		lows = append(lows, uint16(v&0xFFFF))
	}
	if started {
		flush()
	}
	return s
}

// findKey returns the index of key in s.keys, or (insertion index, false).
func (s *Set) findKey(key int64) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.keys) && s.keys[lo] == key
}

// Len returns the cardinality.
func (s *Set) Len() int64 {
	if s == nil {
		return 0
	}
	return s.n
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool { return s.Len() == 0 }

// Contains reports membership.
func (s *Set) Contains(v int64) bool {
	if s == nil {
		return false
	}
	i, ok := s.findKey(v >> 16)
	return ok && s.cs[i].contains(uint16(v&0xFFFF))
}

// Add inserts v, reporting whether the set changed.
func (s *Set) Add(v int64) bool {
	key := v >> 16
	i, ok := s.findKey(key)
	if !ok {
		c := &container{array: []uint16{uint16(v & 0xFFFF)}, n: 1}
		s.keys = append(s.keys, 0)
		s.cs = append(s.cs, nil)
		copy(s.keys[i+1:], s.keys[i:])
		copy(s.cs[i+1:], s.cs[i:])
		s.keys[i], s.cs[i] = key, c
		s.n++
		return true
	}
	if s.cs[i].add(uint16(v & 0xFFFF)) {
		s.n++
		return true
	}
	return false
}

// Remove deletes v, reporting whether the set changed.
func (s *Set) Remove(v int64) bool {
	i, ok := s.findKey(v >> 16)
	if !ok || !s.cs[i].remove(uint16(v&0xFFFF)) {
		return false
	}
	s.n--
	if s.cs[i].n == 0 {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
		s.cs = append(s.cs[:i], s.cs[i+1:]...)
	}
	return true
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	if s == nil {
		return New()
	}
	out := &Set{
		keys: append([]int64(nil), s.keys...),
		cs:   make([]*container, len(s.cs)),
		n:    s.n,
	}
	for i, c := range s.cs {
		out.cs[i] = c.clone()
	}
	return out
}

// ForEach invokes fn for every element in ascending order; iteration stops
// early when fn returns false.
func (s *Set) ForEach(fn func(int64) bool) {
	if s == nil {
		return
	}
	for i, key := range s.keys {
		if !s.cs[i].forEach(key<<16, fn) {
			return
		}
	}
}

// AppendTo appends the elements in ascending order to dst and returns it.
func (s *Set) AppendTo(dst []int64) []int64 {
	s.ForEach(func(v int64) bool {
		dst = append(dst, v)
		return true
	})
	return dst
}

// Slice materializes the elements as a fresh ascending slice.
func (s *Set) Slice() []int64 {
	return s.AppendTo(make([]int64, 0, s.Len()))
}

// UnionWith merges o into s in place (s grows; o is unchanged). Containers
// copied from o are cloned, so later mutation of s never aliases o.
func (s *Set) UnionWith(o *Set) {
	if o == nil || o.n == 0 {
		return
	}
	keys := make([]int64, 0, len(s.keys)+len(o.keys))
	cs := make([]*container, 0, len(s.cs)+len(o.cs))
	i, j := 0, 0
	var n int64
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			keys, cs = append(keys, s.keys[i]), append(cs, s.cs[i])
			n += int64(s.cs[i].n)
			i++
		case s.keys[i] > o.keys[j]:
			keys, cs = append(keys, o.keys[j]), append(cs, o.cs[j].clone())
			n += int64(o.cs[j].n)
			j++
		default:
			c := s.cs[i]
			c.orInPlace(o.cs[j])
			keys, cs = append(keys, s.keys[i]), append(cs, c)
			n += int64(c.n)
			i++
			j++
		}
	}
	for ; i < len(s.keys); i++ {
		keys, cs = append(keys, s.keys[i]), append(cs, s.cs[i])
		n += int64(s.cs[i].n)
	}
	for ; j < len(o.keys); j++ {
		keys, cs = append(keys, o.keys[j]), append(cs, o.cs[j].clone())
		n += int64(o.cs[j].n)
	}
	s.keys, s.cs, s.n = keys, cs, n
}

// Or returns a ∪ b as a new set.
func Or(a, b *Set) *Set {
	out := a.Clone()
	out.UnionWith(b)
	return out
}

// And returns a ∩ b as a new set.
func And(a, b *Set) *Set {
	out := New()
	if a == nil || b == nil {
		return out
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if c := andContainers(a.cs[i], b.cs[j]); c != nil {
				out.keys = append(out.keys, a.keys[i])
				out.cs = append(out.cs, c)
				out.n += int64(c.n)
			}
			i++
			j++
		}
	}
	return out
}

// AndNot returns a \ b as a new set.
func AndNot(a, b *Set) *Set {
	out := New()
	if a == nil {
		return out
	}
	if b == nil {
		return a.Clone()
	}
	i, j := 0, 0
	for i < len(a.keys) {
		for j < len(b.keys) && b.keys[j] < a.keys[i] {
			j++
		}
		var c *container
		if j < len(b.keys) && b.keys[j] == a.keys[i] {
			c = andNotContainers(a.cs[i], b.cs[j])
		} else {
			c = a.cs[i].clone()
		}
		if c != nil {
			out.keys = append(out.keys, a.keys[i])
			out.cs = append(out.cs, c)
			out.n += int64(c.n)
		}
		i++
	}
	return out
}

// AndLen returns |a ∩ b| without materializing the intersection.
func AndLen(a, b *Set) int64 {
	if a == nil || b == nil {
		return 0
	}
	var n int64
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n += int64(andLenContainers(a.cs[i], b.cs[j]))
			i++
			j++
		}
	}
	return n
}

// OrLen returns |a ∪ b| without materializing the union.
func OrLen(a, b *Set) int64 {
	return a.Len() + b.Len() - AndLen(a, b)
}

// Equal reports whether the two sets hold exactly the same elements.
func Equal(a, b *Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	return AndLen(a, b) == a.Len()
}
