package recset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Binary serialization of a Set for the durable storage layer (package
// durable). Containers are written verbatim in their in-memory shape — a
// sorted-array container as its []uint16 low parts, a bitmap container as its
// 1024 64-bit words — so serialization is a straight memory walk and
// deserialization rebuilds the exact same container layout with no re-packing.
//
// Layout (all integers little-endian):
//
//	uint32  container count
//	per container:
//	  int64   high key
//	  uint8   kind (0 = array, 1 = bitmap)
//	  array:  uint32 n, then n × uint16 low parts (sorted ascending)
//	  bitmap: uint32 n (cardinality), then 1024 × uint64 words
//
// Framing (length prefix, CRC) is the caller's concern.

const (
	containerKindArray  = 0
	containerKindBitmap = 1
)

// AppendBinary appends the set's binary encoding to dst and returns the
// extended slice. A nil set encodes as an empty set.
func (s *Set) AppendBinary(dst []byte) []byte {
	if s == nil {
		return binary.LittleEndian.AppendUint32(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.keys)))
	for i, key := range s.keys {
		c := s.cs[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(key))
		if c.bitmap != nil {
			dst = append(dst, containerKindBitmap)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(c.n))
			for _, w := range c.bitmap {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
			continue
		}
		dst = append(dst, containerKindArray)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.array)))
		for _, v := range c.array {
			dst = binary.LittleEndian.AppendUint16(dst, v)
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Set) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// DecodeBinary decodes a set produced by AppendBinary from the front of b,
// returning the set and the number of bytes consumed.
func DecodeBinary(b []byte) (*Set, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("recset: truncated set header")
	}
	nkeys := int(binary.LittleEndian.Uint32(b))
	off := 4
	// Bound the pre-allocation by the bytes actually present: every container
	// costs at least 13 bytes (key + kind + n), so a corrupt count fails here
	// instead of attempting a gigantic allocation.
	if nkeys > (len(b)-off)/13+1 {
		return nil, 0, fmt.Errorf("recset: implausible container count %d with %d bytes left", nkeys, len(b)-off)
	}
	s := &Set{
		keys: make([]int64, 0, nkeys),
		cs:   make([]*container, 0, nkeys),
	}
	var prevKey int64
	for i := 0; i < nkeys; i++ {
		if len(b)-off < 8+1+4 {
			return nil, 0, fmt.Errorf("recset: truncated container %d header", i)
		}
		key := int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		kind := b[off]
		off++
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if i > 0 && key <= prevKey {
			return nil, 0, fmt.Errorf("recset: container keys out of order (%d after %d)", key, prevKey)
		}
		prevKey = key
		var c *container
		switch kind {
		case containerKindArray:
			if n > arrayMaxLen || len(b)-off < 2*n {
				return nil, 0, fmt.Errorf("recset: bad array container (n=%d, %d bytes left)", n, len(b)-off)
			}
			arr := make([]uint16, n)
			for j := range arr {
				arr[j] = binary.LittleEndian.Uint16(b[off:])
				off += 2
				if j > 0 && arr[j] <= arr[j-1] {
					return nil, 0, fmt.Errorf("recset: array container values out of order")
				}
			}
			c = &container{array: arr, n: n}
		case containerKindBitmap:
			if n < 0 || n > 1<<16 || len(b)-off < 8*bitmapWords {
				return nil, 0, fmt.Errorf("recset: bad bitmap container (n=%d, %d bytes left)", n, len(b)-off)
			}
			bm := make([]uint64, bitmapWords)
			card := 0
			for j := range bm {
				bm[j] = binary.LittleEndian.Uint64(b[off:])
				card += bits.OnesCount64(bm[j])
				off += 8
			}
			if card != n {
				return nil, 0, fmt.Errorf("recset: bitmap container cardinality %d does not match header %d", card, n)
			}
			c = &container{bitmap: bm, n: n}
		default:
			return nil, 0, fmt.Errorf("recset: unknown container kind %d", kind)
		}
		s.keys = append(s.keys, key)
		s.cs = append(s.cs, c)
		s.n += int64(c.n)
	}
	return s, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Trailing bytes after
// a complete set are an error; use DecodeBinary to read a set embedded in a
// larger buffer.
func (s *Set) UnmarshalBinary(b []byte) error {
	got, n, err := DecodeBinary(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("recset: %d trailing bytes after set", len(b)-n)
	}
	*s = *got
	return nil
}
