package recset

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// naive is the reference implementation: a plain map-based set with the same
// operations, against which the compressed set is property-checked.
type naive map[int64]struct{}

func (n naive) slice() []int64 {
	out := make([]int64, 0, len(n))
	for v := range n {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkAgainst(t *testing.T, s *Set, n naive, ctx string) {
	t.Helper()
	if s.Len() != int64(len(n)) {
		t.Fatalf("%s: Len = %d, want %d", ctx, s.Len(), len(n))
	}
	got := s.Slice()
	want := n.slice()
	if len(got) != len(want) {
		t.Fatalf("%s: Slice has %d elements, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", ctx, i, got[i], want[i])
		}
	}
	// Spot-check Contains both ways.
	for i := 0; i < len(want) && i < 64; i++ {
		if !s.Contains(want[i]) {
			t.Fatalf("%s: Contains(%d) = false for member", ctx, want[i])
		}
	}
}

// TestPropertyRandomOps drives randomized Add/Remove/Contains sequences and
// asserts the compressed set matches the map reference after every batch,
// across value distributions that exercise array containers, bitmap
// containers, the 4096-entry conversion threshold, container boundaries, and
// negative values.
func TestPropertyRandomOps(t *testing.T) {
	distributions := []struct {
		name string
		draw func(rng *rand.Rand) int64
	}{
		{"dense-small", func(rng *rand.Rand) int64 { return rng.Int63n(5_000) }},
		{"dense-wide", func(rng *rand.Rand) int64 { return rng.Int63n(200_000) }},
		{"sparse", func(rng *rand.Rand) int64 { return rng.Int63n(1 << 40) }},
		{"boundary", func(rng *rand.Rand) int64 {
			base := int64(rng.Intn(4)) << 16
			return base + rng.Int63n(8) - 4 + 65534
		}},
		{"negative", func(rng *rand.Rand) int64 { return rng.Int63n(100_000) - 50_000 }},
	}
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := New()
			ref := make(naive)
			for batch := 0; batch < 40; batch++ {
				for op := 0; op < 500; op++ {
					v := dist.draw(rng)
					if rng.Intn(3) == 0 {
						got := s.Remove(v)
						_, had := ref[v]
						if got != had {
							t.Fatalf("Remove(%d) = %v, want %v", v, got, had)
						}
						delete(ref, v)
					} else {
						got := s.Add(v)
						_, had := ref[v]
						if got == had {
							t.Fatalf("Add(%d) = %v, want %v", v, got, !had)
						}
						ref[v] = struct{}{}
					}
				}
				checkAgainst(t, s, ref, dist.name)
			}
		})
	}
}

// TestPropertySetAlgebra checks Intersect/Union/Difference and their
// cardinality shortcuts against the map reference across random set pairs,
// including pairs dense enough to sit in bitmap containers.
func TestPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		limit := int64(10_000)
		if trial%3 == 0 {
			limit = 1 << 30 // sparse regime
		}
		na, nb := make(naive), make(naive)
		size := 1 + rng.Intn(9000) // crosses the 4096 array→bitmap threshold
		for i := 0; i < size; i++ {
			na[rng.Int63n(limit)] = struct{}{}
		}
		for i := 0; i < 1+rng.Intn(9000); i++ {
			v := rng.Int63n(limit)
			if rng.Intn(2) == 0 {
				// Force overlap with a.
				if as := na.slice(); len(as) > 0 {
					v = as[rng.Intn(len(as))]
				}
			}
			nb[v] = struct{}{}
		}
		a, b := FromSlice(na.slice()), FromSorted(nb.slice())

		wantAnd, wantOr, wantDiff := make(naive), make(naive), make(naive)
		for v := range na {
			wantOr[v] = struct{}{}
			if _, ok := nb[v]; ok {
				wantAnd[v] = struct{}{}
			} else {
				wantDiff[v] = struct{}{}
			}
		}
		for v := range nb {
			wantOr[v] = struct{}{}
		}
		checkAgainst(t, And(a, b), wantAnd, "And")
		checkAgainst(t, Or(a, b), wantOr, "Or")
		checkAgainst(t, AndNot(a, b), wantDiff, "AndNot")
		if got := AndLen(a, b); got != int64(len(wantAnd)) {
			t.Fatalf("AndLen = %d, want %d", got, len(wantAnd))
		}
		if got := OrLen(a, b); got != int64(len(wantOr)) {
			t.Fatalf("OrLen = %d, want %d", got, len(wantOr))
		}
		u := a.Clone()
		u.UnionWith(b)
		checkAgainst(t, u, wantOr, "UnionWith")
		// UnionWith must not alias b: mutating the union leaves b intact.
		u.Add(limit + 12345)
		checkAgainst(t, b, nb, "b after union mutation")
		checkAgainst(t, a, na, "a after operations")
		if !Equal(And(a, a), a) {
			t.Fatal("And(a, a) != a")
		}
	}
}

// TestForEachOrderAndEarlyStop verifies ascending iteration and early stop.
func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromSlice([]int64{70000, 3, -5, 123456789, 3, 65536, 65535})
	var got []int64
	s.ForEach(func(v int64) bool {
		got = append(got, v)
		return true
	})
	want := []int64{-5, 3, 65535, 65536, 70000, 123456789}
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	count := 0
	s.ForEach(func(int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d elements, want 3", count)
	}
}

// TestNilAndEmpty exercises nil-receiver and empty-set behavior used by
// callers that treat "no set" as the empty set.
func TestNilAndEmpty(t *testing.T) {
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Contains(1) || !nilSet.IsEmpty() {
		t.Fatal("nil set should behave as empty")
	}
	if got := And(nilSet, FromSlice([]int64{1})); got.Len() != 0 {
		t.Fatal("And with nil should be empty")
	}
	if got := AndNot(FromSlice([]int64{1, 2}), nilSet); got.Len() != 2 {
		t.Fatal("AndNot with nil b should equal a")
	}
	e := New()
	e.UnionWith(nilSet)
	if e.Len() != 0 {
		t.Fatal("UnionWith(nil) should be a no-op")
	}
}

// TestConcurrentReads shares one set across goroutines doing reads only, the
// access pattern of parallel checkout; run with -race.
func TestConcurrentReads(t *testing.T) {
	vals := make([]int64, 0, 50_000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50_000; i++ {
		vals = append(vals, rng.Int63n(1_000_000))
	}
	s := FromSlice(vals)
	other := FromSlice(vals[:10_000])
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Contains(int64(g*1000 + i))
			}
			AndLen(s, other)
			n := int64(0)
			s.ForEach(func(int64) bool {
				n++
				return n < 1000
			})
		}(g)
	}
	wg.Wait()
}
