package recset

import (
	"math/rand"
	"testing"
)

// The benchmarks here pit the compressed set against the map-based pattern it
// replaced (build a map[int64]struct{} from one side, probe the other, or
// union into a map) on a dense workload shaped like the version record sets
// of the Huang20 benchmark: ~10k record ids with heavy overlap between
// versions. See BENCH.md ("Record-set subsystem") for how to read the
// results.

func benchSets(n int, overlap float64) (a, b []int64) {
	rng := rand.New(rand.NewSource(13))
	a = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		a = append(a, rng.Int63n(int64(n)*4))
	}
	b = make([]int64, 0, n)
	shared := int(float64(n) * overlap)
	b = append(b, a[:shared]...)
	for i := shared; i < n; i++ {
		b = append(b, rng.Int63n(int64(n)*4))
	}
	return a, b
}

func BenchmarkIntersectRecset(bm *testing.B) {
	av, bv := benchSets(10_000, 0.8)
	a, b := FromSlice(av), FromSlice(bv)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if AndLen(a, b) == 0 {
			bm.Fatal("empty intersection")
		}
	}
}

func BenchmarkIntersectMap(bm *testing.B) {
	av, bv := benchSets(10_000, 0.8)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		set := make(map[int64]struct{}, len(av))
		for _, v := range av {
			set[v] = struct{}{}
		}
		n := 0
		for _, v := range bv {
			if _, ok := set[v]; ok {
				n++
			}
		}
		if n == 0 {
			bm.Fatal("empty intersection")
		}
	}
}

func BenchmarkUnionRecset(bm *testing.B) {
	av, bv := benchSets(10_000, 0.5)
	a, b := FromSlice(av), FromSlice(bv)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		u := a.Clone()
		u.UnionWith(b)
		if u.Len() == 0 {
			bm.Fatal("empty union")
		}
	}
}

func BenchmarkUnionMap(bm *testing.B) {
	av, bv := benchSets(10_000, 0.5)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		set := make(map[int64]struct{}, len(av))
		for _, v := range av {
			set[v] = struct{}{}
		}
		for _, v := range bv {
			set[v] = struct{}{}
		}
		if len(set) == 0 {
			bm.Fatal("empty union")
		}
	}
}

func BenchmarkContainsRecset(bm *testing.B) {
	av, _ := benchSets(10_000, 0)
	a := FromSlice(av)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		a.Contains(av[i%len(av)])
	}
}

func BenchmarkContainsMap(bm *testing.B) {
	av, _ := benchSets(10_000, 0)
	set := make(map[int64]struct{}, len(av))
	for _, v := range av {
		set[v] = struct{}{}
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		_, _ = set[av[i%len(av)]]
	}
}
