package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// ExampleEngine_Checkout shows the minimal checkout/commit round trip: init a
// CVD, check out version 1 into a staging table, modify it, and commit it
// back as version 2.
func ExampleEngine_Checkout() {
	engine := core.Open("example")
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
	}, "gene")
	_, err := engine.Init("genes", schema, []relstore.Row{
		{relstore.Str("BRCA1"), relstore.Int(12)},
		{relstore.Str("TP53"), relstore.Int(48)},
	}, cvd.Options{Author: "alice", Message: "initial import"})
	if err != nil {
		log.Fatal(err)
	}

	work, err := engine.Checkout("genes", []vgraph.VersionID{1}, "alice_work")
	if err != nil {
		log.Fatal(err)
	}
	// Staging rows carry the rid column first, then the data attributes.
	work.MustInsert(relstore.Row{relstore.Int(0), relstore.Str("MYC"), relstore.Int(77)})

	v2, err := engine.Commit("genes", "alice_work", "added MYC", "alice")
	if err != nil {
		log.Fatal(err)
	}
	c, err := engine.CVD("genes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed version %d with %d records\n", v2, len(c.RecordsOf(v2)))
	// Output:
	// committed version 2 with 3 records
}

// ExampleEngine_Query runs a VQuel query over the version history: one row
// per version with an aggregate over that version's records.
func ExampleEngine_Query() {
	engine := core.Open("example")
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
	}, "gene")
	_, err := engine.Init("genes", schema, []relstore.Row{
		{relstore.Str("BRCA1"), relstore.Int(12)},
		{relstore.Str("TP53"), relstore.Int(48)},
		{relstore.Str("EGFR"), relstore.Int(31)},
	}, cvd.Options{Author: "alice", Message: "initial import"})
	if err != nil {
		log.Fatal(err)
	}

	res, err := engine.Query("genes", `
		range of V is Version
		range of E is V.Relations(name = "genes").Tuples
		retrieve V.id, count(E.gene where E.score > 40)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: %s high-scoring\n", row[0].AsString(), row[1].AsString())
	}
	// Output:
	// v1: 1 high-scoring
}
