package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// The stress tests in this file lock in the concurrent execution layer: many
// goroutines hammering one engine with a mix of commits, checkouts, diffs,
// and VQuel queries. They are written to run under `go test -race`, where
// any unsynchronized access to shared engine state fails the build.

func stressSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "k", Type: relstore.TypeInt},
		{Name: "v", Type: relstore.TypeInt},
	}, "k")
}

func stressRows(n, salt int) []relstore.Row {
	rows := make([]relstore.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, relstore.Row{relstore.Int(int64(i)), relstore.Int(int64(salt*1000 + i))})
	}
	return rows
}

// TestConcurrentMixedWorkload runs committers, checkout clients, and query
// clients against a single CVD at the same time.
func TestConcurrentMixedWorkload(t *testing.T) {
	engine := Open("stress", WithWorkers(4))
	c, err := engine.Init("data", stressSchema(), stressRows(60, 0), cvd.Options{Author: "seed", Message: "v1"})
	if err != nil {
		t.Fatal(err)
	}

	const (
		committers = 3
		readers    = 4
		queriers   = 2
		iters      = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, committers+readers+queriers)

	// Committers: each derives fresh versions from version 1 repeatedly.
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rows := stressRows(60, g*iters+i+1)
				if _, err := c.Commit([]vgraph.VersionID{1}, rows, stressSchema(), fmt.Sprintf("c%d-%d", g, i), "committer"); err != nil {
					errCh <- fmt.Errorf("committer %d: %w", g, err)
					return
				}
			}
		}(g)
	}

	// Checkout clients: check out whatever versions currently exist (single
	// and merged multi-version checkouts), then discard the staging tables.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vs := c.Versions()
				if len(vs) == 0 {
					continue
				}
				pick := []vgraph.VersionID{vs[i%len(vs)]}
				if len(vs) > 1 && i%2 == 0 {
					pick = append(pick, vs[(i+1)%len(vs)])
				}
				tab := fmt.Sprintf("r%d_%d", g, i)
				if _, err := engine.Checkout("data", pick, tab); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				c.DiscardCheckout(tab)
			}
		}(g)
	}

	// Query clients: diffs, VQuel, and versioned aggregates.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vs := c.Versions()
				if len(vs) >= 2 {
					if _, err := engine.Diff("data", vs[0], vs[len(vs)-1]); err != nil {
						errCh <- fmt.Errorf("querier %d diff: %w", g, err)
						return
					}
				}
				if _, err := engine.Query("data", `range of V is Version
					retrieve V.id`); err != nil {
					errCh <- fmt.Errorf("querier %d vquel: %w", g, err)
					return
				}
				agg, err := c.SumAgg("v")
				if err != nil {
					errCh <- err
					return
				}
				if _, err := c.AggregateByVersion(nil, nil, agg); err != nil {
					errCh <- fmt.Errorf("querier %d agg: %w", g, err)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every committer iteration must have produced a version: 1 initial +
	// committers*iters commits.
	if got, want := c.NumVersions(), 1+committers*iters; got != want {
		t.Errorf("NumVersions = %d, want %d", got, want)
	}
}

// TestConcurrentCheckoutSameName verifies that two checkouts racing for one
// staging-table name resolve cleanly: exactly one wins, the other errors.
func TestConcurrentCheckoutSameName(t *testing.T) {
	engine := Open("stress2")
	c, err := engine.Init("data", stressSchema(), stressRows(20, 0), cvd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 20
	for i := 0; i < attempts; i++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, errs[g] = engine.Checkout("data", []vgraph.VersionID{1}, "contested")
			}(g)
		}
		wg.Wait()
		won := 0
		for _, err := range errs {
			if err == nil {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("attempt %d: %d checkouts claimed table %q, want exactly 1 (errs: %v)", i, won, "contested", errs)
		}
		c.DiscardCheckout("contested")
	}
}

// TestConcurrentEngineRegistry exercises the engine-level registry lock:
// goroutines creating, listing, and dropping distinct CVDs.
func TestConcurrentEngineRegistry(t *testing.T) {
	engine := Open("registry")
	const n = 8
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("cvd%d", g)
			if _, err := engine.Init(name, stressSchema(), stressRows(10, g), cvd.Options{}); err != nil {
				t.Error(err)
				return
			}
			engine.List()
			if _, err := engine.Checkout(name, []vgraph.VersionID{1}, name+"_w"); err != nil {
				t.Error(err)
				return
			}
			if _, err := engine.Commit(name, name+"_w", "bump", "g"); err != nil {
				t.Error(err)
				return
			}
			if g%2 == 0 {
				if err := engine.Drop(name); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(engine.List()); got != n/2 {
		t.Errorf("List() = %d CVDs, want %d", got, n/2)
	}
}

// TestDropDuringCheckouts drops CVDs while checkout, commit, and List
// traffic is in flight. Drop unlinks under the registry lock but runs the
// teardown (and, on durable engines, the journal fence) outside it, so
// (a) an in-flight checkout of the dropped CVD either completes before the
// drop or fails cleanly with "has been dropped", and (b) List/Checkout
// traffic on *other* CVDs never stalls behind or races the teardown. Run
// under -race this pins the lock discipline on both engine flavors.
func TestDropDuringCheckouts(t *testing.T) {
	t.Run("ephemeral", func(t *testing.T) {
		dropDuringCheckouts(t, Open("dropstress", WithWorkers(2)))
	})
	t.Run("durable", func(t *testing.T) {
		engine, err := OpenDurable("dropstress", t.TempDir(), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()
		dropDuringCheckouts(t, engine)
	})
}

func dropDuringCheckouts(t *testing.T, engine *Engine) {
	// One long-lived CVD that is never dropped, plus a churn target per round.
	if _, err := engine.Init("stable", stressSchema(), stressRows(50, 0), cvd.Options{}); err != nil {
		t.Fatal(err)
	}
	const rounds = 12
	for round := 0; round < rounds; round++ {
		name := fmt.Sprintf("victim%d", round)
		victim, err := engine.Init(name, stressSchema(), stressRows(120, round), cvd.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := victim.Commit([]vgraph.VersionID{1}, stressRows(120, round+1), stressSchema(), "v2", "d"); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		// Checkout clients hammering the victim while it is dropped.
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 6; i++ {
					tab := fmt.Sprintf("v%d_r%d_%d", round, g, i)
					_, err := engine.Checkout(name, []vgraph.VersionID{vgraph.VersionID(i%2 + 1)}, tab)
					if err == nil {
						victim.DiscardCheckout(tab)
						continue
					}
					// The only acceptable failures are the drop landing first.
					if !strings.Contains(err.Error(), "has been dropped") && !strings.Contains(err.Error(), "unknown CVD") {
						t.Errorf("round %d reader %d: unexpected error: %v", round, g, err)
						return
					}
				}
			}(g)
		}
		// Committers racing the drop the same way.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				_, err := victim.Commit([]vgraph.VersionID{1}, stressRows(120, 900+i), stressSchema(), "racing", "d")
				_ = err // a commit racing Drop may succeed or fail; -race is the assertion
			}
		}()
		// List/lookup traffic on the rest of the engine must stay responsive
		// and consistent throughout.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				names := engine.List()
				found := false
				for _, n := range names {
					if n == "stable" {
						found = true
					}
				}
				if !found {
					t.Errorf("round %d: List lost the stable CVD: %v", round, names)
					return
				}
				if _, err := engine.CVD("stable"); err != nil {
					t.Errorf("round %d: stable lookup failed: %v", round, err)
					return
				}
			}
		}()
		// The drop itself, mid-traffic.
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := engine.Drop(name); err != nil {
				t.Errorf("round %d: drop: %v", round, err)
			}
		}()
		close(start)
		wg.Wait()
		if _, err := engine.CVD(name); err == nil {
			t.Fatalf("round %d: %s still registered after drop", round, name)
		}
	}
	// The stable CVD survived it all and still works.
	if _, err := engine.Checkout("stable", []vgraph.VersionID{1}, "final"); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizeDuringCheckouts runs the partition optimizer while checkout
// clients are live; WithExclusive must fence them off.
func TestOptimizeDuringCheckouts(t *testing.T) {
	engine := Open("stress3", WithWorkers(2))
	c, err := engine.Init("data", stressSchema(), stressRows(80, 0), cvd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build some history so there is something to partition.
	for i := 0; i < 6; i++ {
		if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(i + 1)}, stressRows(80, i+1), stressSchema(), "m", "a"); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tab := fmt.Sprintf("opt_r%d_%d", g, i)
				if _, err := engine.Checkout("data", []vgraph.VersionID{vgraph.VersionID(i%7 + 1)}, tab); err != nil {
					t.Error(err)
					return
				}
				c.DiscardCheckout(tab)
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		if _, err := engine.Optimize("data", 2.0); err != nil {
			t.Error(err)
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
