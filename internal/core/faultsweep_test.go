package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
)

// The fault-point sweep: a deterministic commit/checkpoint workload is run
// once against an unarmed vfs.FaultFS to count its durable I/O operations,
// then re-run once per operation index with a fault injected exactly there —
// ENOSPC, a short (torn) write, an fsync error, or a crash that drops every
// unsynced buffer. After each injected run the data directory is reopened on
// the real filesystem and every acknowledged commit must check out
// bit-identical to a reference engine, or the reopen must fail with a
// diagnosable error. Silent loss and panics are the two forbidden outcomes.
// The sweep covers three durability modes: fsync-per-commit, group commit,
// and background checkpoint.

const sweepCVD = "sweep"

func sweepSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "key", Type: relstore.TypeInt},
		{Name: "payload", Type: relstore.TypeString},
	}, "key")
}

// sweepRows is the deterministic content of version v: keys 1..v with a
// payload that is a pure function of (seed, key).
func sweepRows(seed int64, v int) []relstore.Row {
	rows := make([]relstore.Row, v)
	for k := 1; k <= v; k++ {
		rows[k-1] = relstore.Row{
			relstore.Int(int64(k)),
			relstore.Str(fmt.Sprintf("sweep-%d-%d", seed, k)),
		}
	}
	return rows
}

const sweepVersions = 6

// runSweepWorkload drives the deterministic history against dir through fs
// and returns how many commits were acknowledged (Commit returned nil). A
// failed open or commit ends the workload early — exactly like a client that
// stops on the first error — but a failed checkpoint does not, because
// commits must survive a checkpoint that dies halfway.
func runSweepWorkload(mode, dir string, fs vfs.FS, seed int64) (acked int) {
	var opts []Option
	switch mode {
	case "fsync-per-commit":
		opts = []Option{GroupCommit(1, 0)}
	case "group-commit":
		opts = []Option{GroupCommit(8, 0)}
	case "background-checkpoint":
		// Store-default group commit; the checkpoint runs concurrently with
		// later commits.
	}
	opts = append(opts, WithFS(fs), WithWorkers(1))
	e, err := OpenDurable("sweep", dir, opts...)
	if err != nil {
		return 0
	}
	defer e.Close()
	if _, err := e.Init(sweepCVD, sweepSchema(), sweepRows(seed, 1), cvd.Options{
		Author: "sweep", Message: "sweep v1",
	}); err != nil {
		return 0
	}
	acked = 1
	c, err := e.CVD(sweepCVD)
	if err != nil {
		return acked
	}
	commit := func(v int) bool {
		_, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(v - 1)}, sweepRows(seed, v),
			sweepSchema(), fmt.Sprintf("sweep v%d", v), "sweep")
		if err != nil {
			return false
		}
		acked = v
		return true
	}
	switch mode {
	case "background-checkpoint":
		for v := 2; v <= 3; v++ {
			if !commit(v) {
				return acked
			}
		}
		done, err := e.CheckpointAsync()
		for v := 4; v <= sweepVersions; v++ {
			if !commit(v) {
				break
			}
		}
		if err == nil {
			<-done
		}
	default:
		for v := 2; v <= 4; v++ {
			if !commit(v) {
				return acked
			}
		}
		_ = e.Checkpoint() // a dead checkpoint must not take commits with it
		for v := 5; v <= sweepVersions; v++ {
			if !commit(v) {
				return acked
			}
		}
	}
	return acked
}

// verifySweepDir reopens dir on the real filesystem and checks the
// no-silent-loss invariant: either the open fails with a diagnosable error,
// or every acknowledged version (and any unacknowledged trailing commit that
// made it to disk) checks out bit-identical to a reference engine.
func verifySweepDir(dir string, seed int64, acked int) error {
	recovered, err := OpenDurable("sweep-verify", dir)
	if err != nil {
		// Failing loudly is an allowed outcome; failing silently is not.
		return nil
	}
	defer recovered.Close()
	var have int
	if c, err := recovered.CVD(sweepCVD); err == nil {
		have = c.NumVersions()
	}
	if have < acked {
		return fmt.Errorf("silent loss: acked v%d but only %d versions recovered", acked, have)
	}
	if have == 0 {
		return nil
	}
	reference := Open("sweep-reference")
	if _, err := reference.Init(sweepCVD, sweepSchema(), sweepRows(seed, 1), cvd.Options{
		Author: "sweep", Message: "sweep v1",
	}); err != nil {
		return fmt.Errorf("building reference: %w", err)
	}
	rc, err := reference.CVD(sweepCVD)
	if err != nil {
		return err
	}
	for v := 2; v <= have; v++ {
		if _, err := rc.Commit([]vgraph.VersionID{vgraph.VersionID(v - 1)}, sweepRows(seed, v),
			sweepSchema(), fmt.Sprintf("sweep v%d", v), "sweep"); err != nil {
			return fmt.Errorf("building reference: %w", err)
		}
	}
	for v := 1; v <= have; v++ {
		got, err := CheckoutVersionRows(recovered, sweepCVD, vgraph.VersionID(v), "recovered")
		if err != nil {
			return fmt.Errorf("recovered engine, v%d: %w", v, err)
		}
		want, err := CheckoutVersionRows(reference, sweepCVD, vgraph.VersionID(v), "reference")
		if err != nil {
			return fmt.Errorf("reference engine, v%d: %w", v, err)
		}
		if err := RowsBitIdentical(fmt.Sprintf("sweep v%d", v), got, want); err != nil {
			return err
		}
	}
	return nil
}

// sweepOnce runs the workload with a single fault armed at op index op and
// verifies the invariant. It reports whether the fault actually fired (runs
// short enough not to reach op count as zero injection points, not as
// failures). Panics anywhere in the run are converted into test failures
// that name the exact injection point.
func sweepOnce(t *testing.T, mode string, kind vfs.FaultKind, op int64, seed int64) (injected bool) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data")
	fs := vfs.NewFaultFS(vfs.OS(), seed)
	fs.FailAt(op, kind)
	var acked int
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("mode=%s kind=%s op=%d: workload panicked: %v", mode, kind, op, r)
			}
		}()
		acked = runSweepWorkload(mode, dir, fs, seed)
	}()
	if fs.Injected() == 0 {
		return false
	}
	if err := verifySweepDir(dir, seed, acked); err != nil {
		t.Errorf("mode=%s kind=%s op=%d acked=%d: %v", mode, kind, op, acked, err)
	}
	return true
}

// TestFaultPointSweep is the systematic sweep. It asserts the acceptance
// floor in-test: at least 200 distinct injection points across the three
// durability modes, with zero silent-loss or panic failures.
func TestFaultPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-point sweep is the long way around; skipped in -short")
	}
	modes := []string{"fsync-per-commit", "group-commit", "background-checkpoint"}
	kinds := []vfs.FaultKind{vfs.FaultENOSPC, vfs.FaultShortWrite, vfs.FaultSyncErr, vfs.FaultCrash}
	const seed = 42
	var totalPoints int
	for _, mode := range modes {
		// Golden run: count the workload's durable I/O operations with the
		// fault injector present but unarmed, and prove the workload itself
		// is sound.
		goldenDir := filepath.Join(t.TempDir(), "golden")
		goldenFS := vfs.NewFaultFS(vfs.OS(), seed)
		acked := runSweepWorkload(mode, goldenDir, goldenFS, seed)
		if acked != sweepVersions {
			t.Fatalf("mode=%s: golden run acked %d versions, want %d", mode, acked, sweepVersions)
		}
		if err := verifySweepDir(goldenDir, seed, acked); err != nil {
			t.Fatalf("mode=%s: golden run does not verify: %v", mode, err)
		}
		ops := goldenFS.Ops()
		if ops < 20 {
			t.Fatalf("mode=%s: golden run issued only %d durable I/O ops — sweep would be vacuous", mode, ops)
		}
		var points int
		for _, kind := range kinds {
			for op := int64(1); op <= ops; op++ {
				if sweepOnce(t, mode, kind, op, seed) {
					points++
				}
			}
		}
		t.Logf("mode=%s: %d ops in golden run, %d injection points fired", mode, ops, points)
		totalPoints += points
	}
	if totalPoints < 200 {
		t.Fatalf("sweep covered only %d injection points, want >= 200", totalPoints)
	}
}

// TestCheckpointAsyncENOSPC starves a background checkpoint of disk space
// mid-flight: the checkpoint must fail (or the store end up poisoned — also
// an error, never silence) while every acknowledged commit stays intact, and
// the directory must reopen cleanly once space returns.
func TestCheckpointAsyncENOSPC(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	const seed = 7
	fs := vfs.NewFaultFS(vfs.OS(), seed)
	e, err := OpenDurable("enospc", dir, WithFS(fs), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(sweepCVD, sweepSchema(), sweepRows(seed, 1), cvd.Options{
		Author: "sweep", Message: "sweep v1",
	}); err != nil {
		t.Fatal(err)
	}
	c, err := e.CVD(sweepCVD)
	if err != nil {
		t.Fatal(err)
	}
	acked := 1
	for v := 2; v <= 4; v++ {
		if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(v - 1)}, sweepRows(seed, v),
			sweepSchema(), fmt.Sprintf("sweep v%d", v), "sweep"); err != nil {
			t.Fatalf("commit v%d: %v", v, err)
		}
		acked = v
	}
	// The disk fills mid-checkpoint: a handful of bytes is enough for the
	// checkpoint to start writing its pack, not enough to finish.
	fs.SetWriteBudget(64)
	done, err := e.CheckpointAsync()
	if err == nil {
		err = <-done
	}
	if err == nil {
		t.Fatal("checkpoint on a full disk reported success")
	}
	fs.SetWriteBudget(-1)
	// Poisoned-or-recoverable: a later commit may succeed (recovered) or fail
	// loudly (poisoned); silence is the only wrong answer — checked below by
	// reopening and demanding every acked commit back.
	if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(acked)}, sweepRows(seed, acked+1),
		sweepSchema(), fmt.Sprintf("sweep v%d", acked+1), "sweep"); err == nil {
		acked++
	} else {
		t.Logf("post-ENOSPC commit refused (store poisoned): %v", err)
	}
	if err := e.Close(); err != nil {
		t.Logf("close after ENOSPC: %v", err)
	}
	if err := verifySweepDir(dir, seed, acked); err != nil {
		t.Fatalf("after ENOSPC checkpoint: %v", err)
	}
	// The directory must also still be openable for writing (no stuck temp
	// files or half-written manifests wedging recovery).
	e2, err := OpenDurable("enospc-reopen", dir)
	if err != nil {
		t.Fatalf("reopening after ENOSPC checkpoint: %v", err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	_ = os.RemoveAll(dir)
}
