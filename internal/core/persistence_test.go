package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// checkoutRows materializes one version into rows (rid column included) and
// drops the staging table again. The comparator itself lives in compare.go
// (CheckoutVersionRows) so the crash-injection harness can reuse it.
func checkoutRows(t *testing.T, e *Engine, cvdName string, v vgraph.VersionID, tag string) []relstore.Row {
	t.Helper()
	rows, err := CheckoutVersionRows(e, cvdName, v, tag)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// enginesEquivalent verifies that every version of every CVD checks out
// identically on both engines and that metadata survived (EnginesEquivalent
// in compare.go, shared with the crash harness).
func enginesEquivalent(t *testing.T, tag string, a, b *Engine) {
	t.Helper()
	if err := EnginesEquivalent(tag, a, b); err != nil {
		t.Fatal(err)
	}
}

// randomValue produces a value for a column, sometimes NULL, sometimes of a
// surprising type (exercising the heterogeneous-column escape hatch).
func randomValue(rng *rand.Rand, typ relstore.ValueType) relstore.Value {
	if rng.Intn(6) == 0 {
		return relstore.Null()
	}
	switch typ {
	case relstore.TypeInt:
		return relstore.Int(rng.Int63n(1_000_000) - 500_000)
	case relstore.TypeFloat:
		return relstore.Float(rng.NormFloat64() * 100)
	case relstore.TypeBool:
		return relstore.Bool(rng.Intn(2) == 0)
	default:
		return relstore.Str(fmt.Sprintf("s%d", rng.Intn(10_000)))
	}
}

var colTypes = []relstore.ValueType{relstore.TypeInt, relstore.TypeFloat, relstore.TypeString, relstore.TypeBool}

// buildRandomCVD grows a CVD through a random commit history: branching
// parents, row churn, and — crucially for the property — schema evolution
// mid-history (new columns, generalized types).
func buildRandomCVD(t *testing.T, rng *rand.Rand, e *Engine, name string, model cvd.ModelKind) {
	t.Helper()
	ncols := 2 + rng.Intn(3)
	cols := []relstore.Column{{Name: "k", Type: relstore.TypeInt}}
	for i := 1; i < ncols; i++ {
		cols = append(cols, relstore.Column{Name: fmt.Sprintf("c%d", i), Type: colTypes[rng.Intn(len(colTypes))]})
	}
	schema := relstore.MustSchema(cols, "k")
	nextKey := int64(1)
	makeRows := func(s relstore.Schema, n int) []relstore.Row {
		rows := make([]relstore.Row, n)
		for i := range rows {
			row := make(relstore.Row, len(s.Columns))
			row[0] = relstore.Int(nextKey)
			nextKey++
			for j := 1; j < len(s.Columns); j++ {
				row[j] = randomValue(rng, s.Columns[j].Type)
			}
			rows[i] = row
		}
		return rows
	}
	clock := time.Unix(1_700_000_000, 0)
	tick := func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	}
	_, err := e.Init(name, schema, makeRows(schema, 5+rng.Intn(20)), cvd.Options{
		Model: model, Author: "prop", Message: "v1", Clock: tick,
	})
	if err != nil {
		t.Fatalf("init %s: %v", name, err)
	}
	c, err := e.CVD(name)
	if err != nil {
		t.Fatal(err)
	}
	nversions := 3 + rng.Intn(6)
	for i := 0; i < nversions; i++ {
		versions := c.Versions()
		parent := versions[rng.Intn(len(versions))]
		rowSchema := schema
		if rng.Intn(3) == 0 {
			// Evolve: add a column and/or generalize an existing one.
			evolved := schema.Clone()
			if rng.Intn(2) == 0 {
				evolved.Columns = append(evolved.Columns, relstore.Column{
					Name: fmt.Sprintf("e%d_%d", i, rng.Intn(100)),
					Type: colTypes[rng.Intn(len(colTypes))],
				})
			} else if len(evolved.Columns) > 1 {
				evolved.Columns[1+rng.Intn(len(evolved.Columns)-1)].Type = relstore.TypeString
			}
			rowSchema = evolved
			schema = evolved
		}
		if _, err := c.Commit([]vgraph.VersionID{parent}, makeRows(rowSchema, 3+rng.Intn(15)), rowSchema, fmt.Sprintf("v%d", i+2), "prop"); err != nil {
			t.Fatalf("commit %s #%d: %v", name, i, err)
		}
	}
}

// TestSnapshotRoundTripProperty is the snapshot property test of the
// acceptance criteria: across randomized schemas, nulls, evolved columns,
// several data models, and partitioned storage, a Save + OpenDurable cycle
// reconstructs an engine whose every version checks out bit-identically.
func TestSnapshotRoundTripProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			e := Open("prop")
			models := []cvd.ModelKind{cvd.SplitByRlist, cvd.SplitByVlist, cvd.CombinedTable, cvd.TablePerVersion, cvd.DeltaBased}
			ncvds := 1 + rng.Intn(3)
			for i := 0; i < ncvds; i++ {
				buildRandomCVD(t, rng, e, fmt.Sprintf("cvd%d", i), models[rng.Intn(len(models))])
			}
			// Partition one rlist CVD half the time so partition maps and
			// resident sets go through the snapshot too.
			buildRandomCVD(t, rng, e, "parted", cvd.SplitByRlist)
			if trial%2 == 0 {
				if _, err := e.Optimize("parted", 2.0); err != nil {
					t.Fatalf("optimize: %v", err)
				}
			}

			dir := t.TempDir()
			if err := e.Save(dir); err != nil {
				t.Fatalf("save: %v", err)
			}
			restored, err := OpenDurable("prop", dir)
			if err != nil {
				t.Fatalf("open durable: %v", err)
			}
			defer restored.Close()
			enginesEquivalent(t, fmt.Sprintf("trial%d", trial), e, restored)

			// The restored engine must remain fully writable: commit on top of
			// a restored version and check out the result.
			name := restored.List()[0]
			rc, err := restored.CVD(name)
			if err != nil {
				t.Fatal(err)
			}
			latest, _ := rc.LatestVersion()
			tab := "post_restore"
			if _, err := restored.Checkout(name, []vgraph.VersionID{latest}, tab); err != nil {
				t.Fatalf("post-restore checkout: %v", err)
			}
			if _, err := restored.Commit(name, tab, "post-restore commit", "prop"); err != nil {
				t.Fatalf("post-restore commit: %v", err)
			}
		})
	}
}

// TestSnapshotRoundTripPartitioned pins partitioned rlist storage round-trip:
// partition maps, per-partition tables, and resident record sets must come
// back so checkouts still read exactly one partition.
func TestSnapshotRoundTripPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := Open("parts")
	buildRandomCVD(t, rng, e, "d", cvd.SplitByRlist)
	if _, err := e.Optimize("d", 1.5); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	m, err := c.Rlist()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partitioned() {
		t.Fatal("optimizer did not partition")
	}
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenDurable("parts", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	rc, _ := restored.CVD("d")
	rm, err := rc.Rlist()
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Partitioned() {
		t.Fatal("partitioning lost in round trip")
	}
	for _, v := range c.Versions() {
		if got, want := rm.PartitionOf(v), m.PartitionOf(v); got != want {
			t.Fatalf("v%d assigned to partition %d after restore, want %d", v, got, want)
		}
	}
	enginesEquivalent(t, "parted", e, restored)
}

// TestWALCrashRecovery is the crash-recovery property test of the acceptance
// criteria: the WAL is truncated mid-record at every byte offset inside its
// tail, and reopening must recover every fully-committed version — no more,
// no less — and stay writable.
func TestWALCrashRecovery(t *testing.T) {
	build := func(t *testing.T, dir string) (versions int) {
		e, err := OpenDurable("crash", dir)
		if err != nil {
			t.Fatal(err)
		}
		schema := relstore.MustSchema([]relstore.Column{
			{Name: "id", Type: relstore.TypeInt},
			{Name: "payload", Type: relstore.TypeString},
		}, "id")
		rows := []relstore.Row{
			{relstore.Int(1), relstore.Str("a")},
			{relstore.Int(2), relstore.Str("b")},
		}
		if _, err := e.Init("d", schema, rows, cvd.Options{Author: "crash", Message: "v1"}); err != nil {
			t.Fatal(err)
		}
		c, _ := e.CVD("d")
		for i := 0; i < 4; i++ {
			rows = append(rows, relstore.Row{relstore.Int(int64(10 + i)), relstore.Str(fmt.Sprintf("p%d", i))})
			if _, err := c.Commit([]vgraph.VersionID{vgraph.VersionID(i + 1)}, rows, schema, fmt.Sprintf("v%d", i+2), "crash"); err != nil {
				t.Fatal(err)
			}
		}
		n := c.NumVersions()
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return n
	}

	master := t.TempDir()
	total := build(t, master)
	if total != 5 {
		t.Fatalf("built %d versions, want 5", total)
	}
	walRaw, err := os.ReadFile(filepath.Join(master, durable.WALSegmentFileName(0)))
	if err != nil {
		t.Fatal(err)
	}

	// Truncate inside the tail: from the full file back into the middle of
	// the WAL, at every byte offset of the last quarter plus a spread of
	// earlier offsets.
	cuts := map[int]struct{}{}
	for c := len(walRaw) - 1; c > len(walRaw)*3/4; c-- {
		cuts[c] = struct{}{}
	}
	for c := len(walRaw) * 3 / 4; c > 20; c -= 37 {
		cuts[c] = struct{}{}
	}
	for cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, durable.WALSegmentFileName(0)), walRaw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := OpenDurable("crash", dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		names := e.List()
		if len(names) == 0 {
			// Cut inside the init record: nothing recovered, which is correct.
			e.Close()
			continue
		}
		c, err := e.CVD("d")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := c.NumVersions()
		if got < 1 || got > total {
			t.Fatalf("cut %d: recovered %d versions", cut, got)
		}
		// Every recovered version must check out completely: v_k has 2+(k-1)
		// rows by construction.
		for _, v := range c.Versions() {
			rows := checkoutRows(t, e, "d", v, fmt.Sprintf("cut%d", cut))
			if want := 2 + int(v) - 1; len(rows) != want {
				t.Fatalf("cut %d v%d: %d rows, want %d", cut, v, len(rows), want)
			}
		}
		// The recovered engine must accept new commits (the torn tail was
		// truncated to a clean append boundary).
		latest, _ := c.LatestVersion()
		tab := "recommit"
		if _, err := e.Checkout("d", []vgraph.VersionID{latest}, tab); err != nil {
			t.Fatalf("cut %d: checkout after recovery: %v", cut, err)
		}
		if _, err := e.Commit("d", tab, "after recovery", "crash"); err != nil {
			t.Fatalf("cut %d: commit after recovery: %v", cut, err)
		}
		after := c.NumVersions()
		e.Close()
		// And that commit must itself be durable.
		e2, err := OpenDurable("crash", dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		c2, err := e2.CVD("d")
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if c2.NumVersions() != after {
			t.Fatalf("cut %d: %d versions after reopen, want %d", cut, c2.NumVersions(), after)
		}
		e2.Close()
	}
}

// TestCheckpointFoldsWAL verifies the checkpoint lifecycle: the WAL segment
// grows with commits, Checkpoint seals it behind a manifest (the sealed
// segment is deleted once the manifest is durable), recovery works from the
// manifest plus the fresh segment, and post-checkpoint commits land in that
// fresh segment.
func TestCheckpointFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("ckpt", dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := relstore.MustSchema([]relstore.Column{{Name: "id", Type: relstore.TypeInt}}, "id")
	if _, err := e.Init("d", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{Message: "v1"}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	if _, err := c.Commit([]vgraph.VersionID{1}, []relstore.Row{{relstore.Int(1)}, {relstore.Int(2)}}, schema, "v2", "t"); err != nil {
		t.Fatal(err)
	}
	grown, err := os.Stat(filepath.Join(dir, durable.WALSegmentFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, durable.WALSegmentFileName(0))); !os.IsNotExist(err) {
		t.Fatalf("checkpoint left the sealed WAL segment behind (err=%v)", err)
	}
	fresh, err := os.Stat(filepath.Join(dir, durable.WALSegmentFileName(1)))
	if err != nil {
		t.Fatalf("no fresh WAL segment after checkpoint: %v", err)
	}
	if fresh.Size() >= grown.Size() {
		t.Fatalf("fresh WAL segment not empty (%d bytes, sealed had %d)", fresh.Size(), grown.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, durable.ManifestFileName(1))); err != nil {
		t.Fatalf("no manifest after checkpoint: %v", err)
	}
	if stats, ok := e.LastCheckpoint(); !ok || stats.Epoch != 1 || stats.Chunks == 0 {
		t.Fatalf("LastCheckpoint = %+v, %v", stats, ok)
	}
	// Post-checkpoint commit lands in the fresh WAL.
	if _, err := c.Commit([]vgraph.VersionID{2}, []relstore.Row{{relstore.Int(1)}, {relstore.Int(2)}, {relstore.Int(3)}}, schema, "v3", "t"); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := OpenDurable("ckpt", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c2, err := e2.CVD("d")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumVersions() != 3 {
		t.Fatalf("recovered %d versions, want 3", c2.NumVersions())
	}
	rows := checkoutRows(t, e2, "d", 3, "ck")
	if len(rows) != 3 {
		t.Fatalf("v3 has %d rows after recovery, want 3", len(rows))
	}
}

// TestAdoptDurability pins the adopt contract on a durable engine: an
// adopted CVD (and commits to it) are invisible to recovery until a
// Checkpoint folds them in — crucially, a crash before that checkpoint must
// leave the data directory openable, not bricked by WAL records that replay
// against a CVD the snapshot does not contain.
func TestAdoptDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("adopt", dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := relstore.MustSchema([]relstore.Column{{Name: "id", Type: relstore.TypeInt}}, "id")
	// A journaled CVD for contrast.
	if _, err := e.Init("native", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{}); err != nil {
		t.Fatal(err)
	}
	// Build a CVD outside the engine and adopt it, then commit to it WITHOUT
	// checkpointing — simulating the crash-before-checkpoint window.
	adopted, err := cvd.Init(e.Database(), "adopted", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Adopt(adopted); err != nil {
		t.Fatal(err)
	}
	if _, err := adopted.Commit([]vgraph.VersionID{1}, []relstore.Row{{relstore.Int(1)}, {relstore.Int(2)}}, schema, "pre-ckpt", "a"); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Reopen: the directory must open cleanly; the adopted CVD is simply not
	// there (its history was never durable), while the journaled one is.
	e2, err := OpenDurable("adopt", dir)
	if err != nil {
		t.Fatalf("reopen after adopt-without-checkpoint: %v", err)
	}
	if got := e2.List(); len(got) != 1 || got[0] != "native" {
		t.Fatalf("recovered CVDs %v, want [native]", got)
	}

	// Adopt again, checkpoint, then commit: now everything must be durable.
	adopted2, err := cvd.Init(e2.Database(), "adopted", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Adopt(adopted2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := adopted2.Commit([]vgraph.VersionID{1}, []relstore.Row{{relstore.Int(1)}, {relstore.Int(3)}}, schema, "post-ckpt", "a"); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	e3, err := OpenDurable("adopt", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	c, err := e3.CVD("adopted")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVersions() != 2 {
		t.Fatalf("adopted CVD recovered with %d versions, want 2", c.NumVersions())
	}
	m, ok := c.Meta(2)
	if !ok || m.Message != "post-ckpt" {
		t.Fatalf("post-checkpoint commit not recovered: %+v", m)
	}
}

// failingJournal implements cvd.Journal and rejects every append — the shape
// of a WAL whose disk went bad.
type failingJournal struct{}

func (failingJournal) LogCommit(string, []vgraph.VersionID, []relstore.Row, relstore.Schema, string, string, time.Time) error {
	return fmt.Errorf("injected journal failure")
}

// TestCommitTableJournalFailure pins CommitAt's partial-success contract at
// the CommitTable level: when the commit applies in memory but the WAL
// append fails, the staging table must be consumed — not restored — so a
// retry cannot create a duplicate version.
func TestCommitTableJournalFailure(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("jfail", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	schema := relstore.MustSchema([]relstore.Column{{Name: "id", Type: relstore.TypeInt}}, "id")
	if _, err := e.Init("d", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkout("d", []vgraph.VersionID{1}, "stage"); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	// Swap in a journal whose appends fail.
	c.SetJournal(failingJournal{})
	v, err := e.Commit("d", "stage", "m", "a")
	if err == nil {
		t.Fatal("commit with a failing journal succeeded silently")
	}
	if v != 2 {
		t.Fatalf("partial-success version = %d, want 2", v)
	}
	if c.NumVersions() != 2 {
		t.Fatalf("NumVersions = %d, want 2 (commit applied in memory)", c.NumVersions())
	}
	if c.JournalErr() == nil {
		t.Fatal("journal not poisoned after the failed append")
	}
	// The staging table is consumed: a retry must fail the claim, not
	// duplicate the version.
	if _, err := e.Commit("d", "stage", "m", "a"); err == nil {
		t.Fatal("retry after journal failure re-committed the staging table")
	}
	if c.NumVersions() != 2 {
		t.Fatalf("NumVersions after retry = %d, want 2", c.NumVersions())
	}
	if e.Database().HasTable("stage") {
		t.Fatal("staging table survived the consumed commit")
	}
}

// TestCloseDetachesDurability pins the Close contract: after Close the
// engine is ephemeral — Durable reports false, DataDir is empty, journals
// are detached (later commits succeed un-journaled instead of tripping
// append failures against a closed WAL), and the data directory is unlocked
// and intact for the next OpenDurable.
func TestCloseDetachesDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("close", dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := relstore.MustSchema([]relstore.Column{{Name: "id", Type: relstore.TypeInt}}, "id")
	if _, err := e.Init("d", schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	if _, err := c.Commit([]vgraph.VersionID{1}, []relstore.Row{{relstore.Int(2)}}, schema, "durable", "a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Durable() {
		t.Fatal("Durable() still true after Close")
	}
	if got := e.DataDir(); got != "" {
		t.Fatalf("DataDir() = %q after Close, want empty", got)
	}
	// The journal is detached: this commit is ephemeral and must succeed.
	if _, err := c.Commit([]vgraph.VersionID{2}, []relstore.Row{{relstore.Int(3)}}, schema, "ephemeral", "a"); err != nil {
		t.Fatalf("ephemeral commit after Close: %v", err)
	}
	// Close is idempotent.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The directory reopens cleanly (flock released) with only the journaled
	// history — the post-Close commit was never logged.
	e2, err := OpenDurable("close", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rc, err := e2.CVD("d")
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumVersions() != 2 {
		t.Fatalf("recovered %d versions, want 2", rc.NumVersions())
	}
}

// TestDurableDropRecovery verifies drops are journaled and replayed.
func TestDurableDropRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("drop", dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := relstore.MustSchema([]relstore.Column{{Name: "id", Type: relstore.TypeInt}}, "id")
	for _, name := range []string{"keep", "toss"} {
		if _, err := e.Init(name, schema, []relstore.Row{{relstore.Int(1)}}, cvd.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drop("toss"); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := OpenDurable("drop", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.List(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("recovered CVDs %v, want [keep]", got)
	}
}
