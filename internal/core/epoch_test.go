package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// kvSchema is the two-column schema the epoch tests commit against.
func kvSchema(t *testing.T) relstore.Schema {
	t.Helper()
	return relstore.MustSchema([]relstore.Column{
		{Name: "id", Type: relstore.TypeInt},
		{Name: "payload", Type: relstore.TypeString},
	}, "id")
}

// TestRestoreAnyRetainedEpoch is the point-in-time property test of the
// acceptance criteria: after a run of commits interleaved with checkpoints,
// every retained epoch restores (OpenAtEpoch) to exactly the state the engine
// held at that checkpoint's fence — every version present then checks out
// bit-identically, and versions committed later are absent.
func TestRestoreAnyRetainedEpoch(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("pit", dir, WithCheckpointRetention(16))
	if err != nil {
		t.Fatal(err)
	}
	schema := kvSchema(t)
	rows := []relstore.Row{{relstore.Int(1), relstore.Str("seed")}}
	if _, err := e.Init("d", schema, rows, cvd.Options{Message: "v1"}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")

	// expected[epoch][version] is the reference checkout captured at the
	// moment of each checkpoint.
	expected := map[uint64]map[vgraph.VersionID][]relstore.Row{}
	next := int64(2)
	for ckpt := 0; ckpt < 5; ckpt++ {
		for i := 0; i < 2; i++ {
			rows = append(rows, relstore.Row{relstore.Int(next), relstore.Str(fmt.Sprintf("p%d", next))})
			next++
			parent, _ := c.LatestVersion()
			if _, err := c.Commit([]vgraph.VersionID{parent}, rows, schema, fmt.Sprintf("c%d", next), "pit"); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		epochs, err := e.RetainedEpochs()
		if err != nil {
			t.Fatal(err)
		}
		epoch := epochs[len(epochs)-1]
		ref := map[vgraph.VersionID][]relstore.Row{}
		for _, v := range c.Versions() {
			got, err := CheckoutVersionRows(e, "d", v, fmt.Sprintf("ref%d", epoch))
			if err != nil {
				t.Fatal(err)
			}
			ref[v] = got
		}
		expected[epoch] = ref
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if len(expected) != 5 {
		t.Fatalf("captured %d checkpoint references, want 5", len(expected))
	}

	for epoch, ref := range expected {
		re, err := OpenAtEpoch("pit", dir, epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		rc, err := re.CVD("d")
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got, want := rc.NumVersions(), len(ref); got != want {
			t.Fatalf("epoch %d: restored %d versions, want %d", epoch, got, want)
		}
		for v, want := range ref {
			got, err := CheckoutVersionRows(re, "d", v, fmt.Sprintf("pit%d", epoch))
			if err != nil {
				t.Fatalf("epoch %d v%d: %v", epoch, v, err)
			}
			if err := RowsBitIdentical(fmt.Sprintf("epoch %d v%d", epoch, v), got, want); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCheckpointAsyncCommitsContinue pins the non-blocking checkpoint
// contract: once CheckpointAsync returns, commits proceed into the fresh WAL
// segment while the background half encodes; the manifest captures exactly
// the fenced state (a point-in-time restore excludes the later commits), and
// a reopen recovers everything.
func TestCheckpointAsyncCommitsContinue(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("bg", dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := kvSchema(t)
	rows := []relstore.Row{{relstore.Int(1), relstore.Str("seed")}}
	if _, err := e.Init("d", schema, rows, cvd.Options{Message: "v1"}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	for i := 0; i < 3; i++ {
		rows = append(rows, relstore.Row{relstore.Int(int64(10 + i)), relstore.Str("pre")})
		parent, _ := c.LatestVersion()
		if _, err := c.Commit([]vgraph.VersionID{parent}, rows, schema, "pre", "bg"); err != nil {
			t.Fatal(err)
		}
	}
	fenced := c.NumVersions()

	done, err := e.CheckpointAsync()
	if err != nil {
		t.Fatal(err)
	}
	// These commits overlap the background half of the checkpoint.
	for i := 0; i < 5; i++ {
		rows = append(rows, relstore.Row{relstore.Int(int64(100 + i)), relstore.Str("post")})
		parent, _ := c.LatestVersion()
		if _, err := c.Commit([]vgraph.VersionID{parent}, rows, schema, "post", "bg"); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("background checkpoint: %v", err)
	}
	total := c.NumVersions()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest holds the fenced state only.
	re, err := OpenAtEpoch("bg", dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := re.CVD("d")
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumVersions() != fenced {
		t.Fatalf("epoch 1 restored %d versions, want the %d at the fence", rc.NumVersions(), fenced)
	}

	// A live reopen replays the overlapping commits from the fresh segment.
	e2, err := OpenDurable("bg", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c2, err := e2.CVD("d")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumVersions() != total {
		t.Fatalf("reopen recovered %d versions, want %d", c2.NumVersions(), total)
	}
}

// TestRetentionAndExportEpoch verifies the retention window prunes old
// manifests (and OpenAtEpoch refuses them) while ExportEpoch turns a retained
// one into a standalone directory that opens to the equivalent engine.
func TestRetentionAndExportEpoch(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable("ret", dir, WithCheckpointRetention(2))
	if err != nil {
		t.Fatal(err)
	}
	schema := kvSchema(t)
	rows := []relstore.Row{{relstore.Int(1), relstore.Str("seed")}}
	if _, err := e.Init("d", schema, rows, cvd.Options{Message: "v1"}); err != nil {
		t.Fatal(err)
	}
	c, _ := e.CVD("d")
	for ckpt := 0; ckpt < 4; ckpt++ {
		rows = append(rows, relstore.Row{relstore.Int(int64(2 + ckpt)), relstore.Str("x")})
		parent, _ := c.LatestVersion()
		if _, err := c.Commit([]vgraph.VersionID{parent}, rows, schema, "x", "ret"); err != nil {
			t.Fatal(err)
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := e.RetainedEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 3 || epochs[1] != 4 {
		t.Fatalf("retained epochs %v, want [3 4]", epochs)
	}
	if _, err := os.Stat(filepath.Join(dir, durable.ManifestFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("pruned manifest 1 still on disk (err=%v)", err)
	}

	// Export the newest epoch (== current state, nothing committed since).
	exp := t.TempDir()
	if err := e.ExportEpoch(4, exp); err != nil {
		t.Fatal(err)
	}
	// A pruned epoch is not exportable.
	if err := e.ExportEpoch(1, t.TempDir()); err == nil {
		t.Fatal("ExportEpoch of a pruned epoch succeeded")
	}
	exported, err := OpenDurable("ret", exp)
	if err != nil {
		t.Fatal(err)
	}
	defer exported.Close()
	if err := EnginesEquivalent("export", e, exported); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Pruned epochs are refused by the read-only opener too.
	if _, err := OpenAtEpoch("ret", dir, 1); err == nil {
		t.Fatal("OpenAtEpoch of a pruned epoch succeeded")
	}
}
