package core

import (
	"fmt"
	"sort"

	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/relstore"
)

// This file binds the engine to the durable storage subsystem (package
// durable): opening a data directory (snapshot load + WAL replay), journaling
// live operations, exporting snapshots, and checkpointing.

// OpenDurable opens an engine bound to a data directory. If the directory
// holds a snapshot it is loaded (tables rebuilt straight from their columnar
// lanes), and the commit WAL is replayed on top of it — every fully-committed
// record is applied, a torn tail from a crashed append is truncated away, and
// a WAL made stale by a crashed checkpoint is discarded. Afterwards every
// Init / Commit / Drop through the engine (or directly on a managed CVD) is
// appended to the WAL and fsynced before it returns.
func OpenDurable(name, dir string, opts ...Option) (*Engine, error) {
	store, res, err := durable.Open(dir)
	if err != nil {
		return nil, err
	}
	e := Open(name, opts...)
	if e.gcSet {
		store.SetGroupCommit(e.gc)
	}
	e.recovery = RecoveryInfo{TornTail: res.TornTail, StaleWAL: res.StaleWAL}
	if res.Snapshot != nil {
		if res.Snapshot.DBName != "" {
			e.db = relstore.NewDatabase(res.Snapshot.DBName)
		}
		for _, t := range res.Snapshot.Tables {
			e.db.AttachTable(t)
		}
		for _, st := range res.Snapshot.CVDs {
			c, err := cvd.Restore(e.db, st)
			if err != nil {
				store.Close()
				return nil, err
			}
			e.cvds[c.Name()] = c
		}
	}
	// Stream the WAL through the engine one record at a time (a large log is
	// never materialized whole).
	if _, err := store.ReplayWAL(e.applyRecord); err != nil {
		store.Close()
		return nil, err
	}
	// Attach the journal only after replay so replayed operations are not
	// logged a second time.
	e.store = store
	for _, c := range e.cvds {
		c.SetJournal(store)
		c.InheritWorkers(e.workers)
	}
	return e, nil
}

// applyRecord replays one WAL record against the in-memory engine. Replay
// runs before the journal is attached, so nothing here re-logs.
func (e *Engine) applyRecord(rec *durable.Record) error {
	switch rec.Op {
	case durable.OpInit:
		if _, dup := e.cvds[rec.CVD]; dup {
			return fmt.Errorf("core: WAL replays init of existing CVD %q", rec.CVD)
		}
		c, err := cvd.Init(e.db, rec.CVD, rec.Schema, rec.Rows, cvd.Options{
			Model:   rec.Kind,
			Author:  rec.Author,
			Message: rec.Message,
			At:      rec.At,
			Workers: e.workers,
		})
		if err != nil {
			return fmt.Errorf("core: replaying init of %q: %w", rec.CVD, err)
		}
		e.cvds[rec.CVD] = c
		return nil
	case durable.OpCommit:
		c, ok := e.cvds[rec.CVD]
		if !ok {
			return fmt.Errorf("core: WAL replays commit to unknown CVD %q (a CVD adopted but never checkpointed?)", rec.CVD)
		}
		if _, err := c.CommitAt(rec.Parents, rec.Rows, rec.Schema, rec.Message, rec.Author, rec.At); err != nil {
			return fmt.Errorf("core: replaying commit to %q: %w", rec.CVD, err)
		}
		return nil
	case durable.OpDrop:
		// A drop may race a checkpoint in the original process (the CVD was
		// already unlinked from the snapshot's registry), so a drop of an
		// unknown CVD is a no-op, not corruption.
		if c, ok := e.cvds[rec.CVD]; ok {
			c.Drop()
			delete(e.cvds, rec.CVD)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record op %d", rec.Op)
	}
}

// Durable reports whether the engine is bound to a data directory. It
// reports false after Close: the binding is gone and commits are no longer
// journaled.
func (e *Engine) Durable() bool { return e.getStore() != nil }

// DataDir returns the bound data directory ("" for ephemeral and closed
// engines).
func (e *Engine) DataDir() string {
	store := e.getStore()
	if store == nil {
		return ""
	}
	return store.Dir()
}

// getStore reads the durable binding under the registry lock (Close clears
// it concurrently).
func (e *Engine) getStore() *durable.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// buildSnapshot assembles the full engine snapshot under a consistent set of
// locks: the registry shared lock plus every CVD's lock (in name order,
// shared or exclusive per the flag), held for the whole serialization so no
// commit can slip between two CVDs' sections. The returned release function
// drops the locks; callers that need to act while the engine is still fenced
// (Checkpoint resetting the WAL) do so before calling it.
func (e *Engine) buildSnapshot(exclusive bool) (*durable.Snapshot, []*cvd.CVD, func(), error) {
	e.mu.RLock()
	names := make([]string, 0, len(e.cvds))
	for n := range e.cvds {
		// A CVD with a drop in flight is excluded: its OpDrop may already be
		// in the WAL (which a checkpoint is about to truncate), and its
		// teardown may race the serialization. Skipping it makes the
		// snapshot agree with the drop's outcome — the replayed OpDrop, if
		// it survives in the new WAL, degrades to a tolerated no-op.
		if _, busy := e.dropping[n]; busy {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	locked := make([]*cvd.CVD, 0, len(names))
	for _, n := range names {
		c := e.cvds[n]
		if exclusive {
			c.LockExclusive()
		} else {
			c.LockShared()
		}
		locked = append(locked, c)
	}
	release := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if exclusive {
				locked[i].UnlockExclusive()
			} else {
				locked[i].UnlockShared()
			}
		}
		e.mu.RUnlock()
	}
	snap := &durable.Snapshot{DBName: e.db.Name()}
	for _, c := range locked {
		st := c.ExportState()
		snap.CVDs = append(snap.CVDs, st)
		for _, name := range st.Tables {
			t, ok := e.db.Table(name)
			if !ok {
				// Writing a snapshot that names a table it does not contain
				// would fail only at restore time — after a checkpoint has
				// already truncated the WAL. Fail loudly now instead.
				release()
				return nil, nil, nil, fmt.Errorf("core: snapshot of CVD %q: backing table %q missing from database", c.Name(), name)
			}
			snap.Tables = append(snap.Tables, t)
		}
	}
	return snap, locked, release, nil
}

// Save exports a one-shot snapshot of the whole engine into dir (created if
// needed): every CVD's versions, partition maps, and metadata, serialized
// from the live columnar storage. The directory can later be opened with
// OpenDurable. Saving into a live data directory (one with a WAL) is
// refused — use Checkpoint for that.
func (e *Engine) Save(dir string) error {
	snap, _, release, err := e.buildSnapshot(false)
	if err != nil {
		return err
	}
	defer release()
	return durable.SaveSnapshot(dir, snap)
}

// Checkpoint folds the commit WAL into a fresh snapshot of the bound data
// directory and truncates the WAL, bounding recovery time. It requires a
// durable engine.
//
// Checkpoint takes every CVD's exclusive lock (writers and readers are
// fenced for the duration of the snapshot write): the fence is what lets it
// atomically fold adopted CVDs into the snapshot and attach their journals —
// no commit can land between "in the snapshot" and "journaled", which would
// otherwise leave WAL records that replay against a CVD the snapshot does
// not contain.
func (e *Engine) Checkpoint() error {
	snap, locked, release, err := e.buildSnapshot(true)
	if err != nil {
		return err
	}
	defer release()
	// buildSnapshot holds the registry lock, so the store cannot be cleared
	// by a concurrent Close between this read and the checkpoint itself.
	store := e.store
	if store == nil {
		return fmt.Errorf("core: Checkpoint requires a durable engine (OpenDurable)")
	}
	if err := store.Checkpoint(snap); err != nil {
		return err
	}
	for _, c := range locked {
		c.SetJournalLocked(store)
	}
	return nil
}

// Close releases the durable binding: every CVD's journal is detached, the
// store is cleared (Durable reports false, DataDir returns "" afterwards),
// and the WAL file and directory lock are released. The in-memory engine
// remains usable as an ephemeral engine — later commits simply stop being
// journaled, instead of tripping journal-append failures against a closed
// WAL. Close on an ephemeral (or already closed) engine is a no-op.
func (e *Engine) Close() error {
	e.mu.Lock()
	store := e.store
	e.store = nil
	cvds := make([]*cvd.CVD, 0, len(e.cvds))
	for _, c := range e.cvds {
		cvds = append(cvds, c)
	}
	e.mu.Unlock()
	if store == nil {
		return nil
	}
	// Detach outside the registry lock (lock order registry → CVD): each
	// detach waits out that CVD's in-flight commit, so no commit can reach
	// the store after it is closed and mistake "closed" for a lost write.
	for _, c := range cvds {
		c.SetJournal(nil)
	}
	return store.Close()
}
