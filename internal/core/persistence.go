package core

import (
	"fmt"
	"sort"

	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/relstore"
	"repro/internal/vfs"
)

// This file binds the engine to the durable storage subsystem (package
// durable): opening a data directory (snapshot load + WAL replay), journaling
// live operations, exporting snapshots, and checkpointing.

// OpenDurable opens an engine bound to a data directory. If the directory
// holds a snapshot it is loaded (tables rebuilt straight from their columnar
// lanes), and the commit WAL is replayed on top of it — every fully-committed
// record is applied, a torn tail from a crashed append is truncated away, and
// a WAL made stale by a crashed checkpoint is discarded. Afterwards every
// Init / Commit / Drop through the engine (or directly on a managed CVD) is
// appended to the WAL and fsynced before it returns.
func OpenDurable(name, dir string, opts ...Option) (*Engine, error) {
	e := Open(name, opts...)
	fsys := e.fsys
	if fsys == nil {
		fsys = vfs.OS()
	}
	store, res, err := durable.OpenFS(dir, fsys)
	if err != nil {
		return nil, err
	}
	if e.gcSet {
		store.SetGroupCommit(e.gc)
	}
	store.SetWorkers(e.workers)
	if e.retain > 0 {
		store.SetRetention(e.retain)
	}
	e.recovery = RecoveryInfo{TornTail: res.TornTail, StaleWAL: res.StaleWAL}
	if res.Snapshot != nil {
		if err := e.restoreSnapshot(res.Snapshot); err != nil {
			store.Close()
			return nil, err
		}
	}
	// Stream the WAL through the engine one record at a time (a large log is
	// never materialized whole).
	if _, err := store.ReplayWAL(e.applyRecord); err != nil {
		store.Close()
		return nil, err
	}
	// Attach the journal only after replay so replayed operations are not
	// logged a second time.
	e.store = store
	for _, c := range e.cvds {
		c.SetJournal(store)
		c.InheritWorkers(e.workers)
	}
	return e, nil
}

// restoreSnapshot populates a fresh engine from a decoded snapshot: tables
// attach straight to the backing database and each CVD state is rebuilt over
// them.
func (e *Engine) restoreSnapshot(snap *durable.Snapshot) error {
	if snap.DBName != "" {
		e.db = relstore.NewDatabase(snap.DBName)
	}
	for _, t := range snap.Tables {
		e.db.AttachTable(t)
	}
	for _, st := range snap.CVDs {
		c, err := cvd.Restore(e.db, st)
		if err != nil {
			return err
		}
		e.cvds[c.Name()] = c
	}
	return nil
}

// OpenAtEpoch materializes the engine state captured by a retained checkpoint
// manifest of dir as an ephemeral engine: no lock is held on the directory
// afterwards, nothing is journaled, and the live engine (if any) is
// unaffected. Use Engine.RetainedEpochs (or durable.ListEpochs) to discover
// which epochs are restorable.
func OpenAtEpoch(name, dir string, epoch uint64, opts ...Option) (*Engine, error) {
	snap, err := durable.OpenAtEpoch(dir, epoch)
	if err != nil {
		return nil, err
	}
	e := Open(name, opts...)
	if err := e.restoreSnapshot(snap); err != nil {
		return nil, err
	}
	for _, c := range e.cvds {
		c.InheritWorkers(e.workers)
	}
	return e, nil
}

// applyRecord replays one WAL record against the in-memory engine. Replay
// runs before the journal is attached, so nothing here re-logs.
func (e *Engine) applyRecord(rec *durable.Record) error {
	switch rec.Op {
	case durable.OpInit:
		if _, dup := e.cvds[rec.CVD]; dup {
			return fmt.Errorf("core: WAL replays init of existing CVD %q", rec.CVD)
		}
		c, err := cvd.Init(e.db, rec.CVD, rec.Schema, rec.Rows, cvd.Options{
			Model:   rec.Kind,
			Author:  rec.Author,
			Message: rec.Message,
			At:      rec.At,
			Workers: e.workers,
		})
		if err != nil {
			return fmt.Errorf("core: replaying init of %q: %w", rec.CVD, err)
		}
		e.cvds[rec.CVD] = c
		return nil
	case durable.OpCommit:
		c, ok := e.cvds[rec.CVD]
		if !ok {
			return fmt.Errorf("core: WAL replays commit to unknown CVD %q (a CVD adopted but never checkpointed?)", rec.CVD)
		}
		if _, err := c.CommitAt(rec.Parents, rec.Rows, rec.Schema, rec.Message, rec.Author, rec.At); err != nil {
			return fmt.Errorf("core: replaying commit to %q: %w", rec.CVD, err)
		}
		return nil
	case durable.OpDrop:
		// A drop may race a checkpoint in the original process (the CVD was
		// already unlinked from the snapshot's registry), so a drop of an
		// unknown CVD is a no-op, not corruption.
		if c, ok := e.cvds[rec.CVD]; ok {
			c.Drop()
			delete(e.cvds, rec.CVD)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record op %d", rec.Op)
	}
}

// Durable reports whether the engine is bound to a data directory. It
// reports false after Close: the binding is gone and commits are no longer
// journaled.
func (e *Engine) Durable() bool { return e.getStore() != nil }

// DataDir returns the bound data directory ("" for ephemeral and closed
// engines).
func (e *Engine) DataDir() string {
	store := e.getStore()
	if store == nil {
		return ""
	}
	return store.Dir()
}

// getStore reads the durable binding under the registry lock (Close clears
// it concurrently).
func (e *Engine) getStore() *durable.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// buildSnapshot assembles the full engine snapshot under a consistent set of
// locks: the registry shared lock plus every CVD's lock (in name order,
// shared or exclusive per the flag). The returned release function drops the
// locks; callers that need to act while the engine is still fenced
// (Checkpoint sealing the WAL segment) do so before calling it.
//
// With cow the snapshot references copy-on-write captures — cloned table
// headers over shared immutable column lanes (Table.SnapshotClone) and CVD
// states whose mutable containers are copied (ExportStateCOW) — so it stays
// consistent after release while commits continue; without it the snapshot
// shares live structures and is only valid while the locks are held.
func (e *Engine) buildSnapshot(exclusive, cow bool) (*durable.Snapshot, []*cvd.CVD, func(), error) {
	e.mu.RLock()
	names := make([]string, 0, len(e.cvds))
	for n := range e.cvds {
		// A CVD with a drop in flight is excluded: its OpDrop may already be
		// in the WAL (which a checkpoint is about to truncate), and its
		// teardown may race the serialization. Skipping it makes the
		// snapshot agree with the drop's outcome — the replayed OpDrop, if
		// it survives in the new WAL, degrades to a tolerated no-op.
		if _, busy := e.dropping[n]; busy {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	locked := make([]*cvd.CVD, 0, len(names))
	for _, n := range names {
		c := e.cvds[n]
		if exclusive {
			c.LockExclusive()
		} else {
			c.LockShared()
		}
		locked = append(locked, c)
	}
	release := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if exclusive {
				locked[i].UnlockExclusive()
			} else {
				locked[i].UnlockShared()
			}
		}
		e.mu.RUnlock()
	}
	snap := &durable.Snapshot{DBName: e.db.Name()}
	for _, c := range locked {
		var st *cvd.PersistentState
		if cow {
			st = c.ExportStateCOW()
		} else {
			st = c.ExportState()
		}
		snap.CVDs = append(snap.CVDs, st)
		for _, name := range st.Tables {
			t, ok := e.db.Table(name)
			if !ok {
				// Writing a snapshot that names a table it does not contain
				// would fail only at restore time — after a checkpoint has
				// already truncated the WAL. Fail loudly now instead.
				release()
				return nil, nil, nil, fmt.Errorf("core: snapshot of CVD %q: backing table %q missing from database", c.Name(), name)
			}
			if cow {
				t = t.SnapshotClone()
			}
			snap.Tables = append(snap.Tables, t)
		}
	}
	return snap, locked, release, nil
}

// Save exports a one-shot snapshot of the whole engine into dir (created if
// needed): every CVD's versions, partition maps, and metadata, serialized
// from the live columnar storage. The directory can later be opened with
// OpenDurable. Saving into a live data directory (one with a WAL) is
// refused — use Checkpoint for that.
func (e *Engine) Save(dir string) error {
	snap, _, release, err := e.buildSnapshot(false, false)
	if err != nil {
		return err
	}
	defer release()
	return durable.SaveSnapshot(dir, snap)
}

// RetainedEpochs returns the checkpoint epochs the bound data directory still
// retains manifests for, ascending. It requires a durable engine.
func (e *Engine) RetainedEpochs() ([]uint64, error) {
	store := e.getStore()
	if store == nil {
		return nil, fmt.Errorf("core: RetainedEpochs requires a durable engine (OpenDurable)")
	}
	return store.RetainedEpochs(), nil
}

// ExportEpoch exports the engine state captured by a retained checkpoint
// epoch of the bound data directory as a flat snapshot in dir (which must not
// be a live data directory). The export can later be loaded with OpenDurable.
func (e *Engine) ExportEpoch(epoch uint64, dir string) error {
	store := e.getStore()
	if store == nil {
		return fmt.Errorf("core: ExportEpoch requires a durable engine (OpenDurable)")
	}
	snap, err := store.LoadEpoch(epoch)
	if err != nil {
		return err
	}
	return durable.SaveSnapshot(dir, snap)
}

// Checkpoint folds the committed state into a fresh checkpoint manifest of
// the bound data directory (writing only chunks that changed since the last
// one) and seals the WAL segment it covers, bounding recovery time. It
// requires a durable engine. Checkpoint waits for the whole checkpoint; see
// CheckpointAsync for the non-blocking form it wraps.
func (e *Engine) Checkpoint() error {
	done, err := e.CheckpointAsync()
	if err != nil {
		return err
	}
	return <-done
}

// CheckpointAsync begins a checkpoint and completes it in the background.
//
// The commit fence (every CVD's exclusive lock) is held only long enough to
// capture copy-on-write references to the column lanes and version metadata
// and to seal the active WAL segment — typically far shorter than encoding
// and writing the checkpoint itself. Commits resume into a fresh WAL segment
// while chunk encoding, hashing, and manifest writing run on a background
// goroutine; the returned channel delivers that half's result (buffered, so
// it may be abandoned). Recovery composes the newest durable manifest with
// every WAL segment after it, so a crash mid-checkpoint loses nothing.
//
// One exception degrades to a synchronous checkpoint under the fence: a CVD
// whose journal is not this store (adopted since the last checkpoint, or
// poisoned by an append failure) must have its journal attached atomically
// with the checkpoint — no commit may land between "in the manifest" and
// "journaled" — so the fence is held through completion.
//
// Checkpoints are serialized: a second CheckpointAsync blocks until the
// previous one's background half finishes.
func (e *Engine) CheckpointAsync() (<-chan error, error) {
	e.ckptSem <- struct{}{}
	fail := func(err error) (<-chan error, error) {
		<-e.ckptSem
		return nil, err
	}
	snap, locked, release, err := e.buildSnapshot(true, true)
	if err != nil {
		return fail(err)
	}
	// buildSnapshot holds the registry lock, so the store cannot be cleared
	// by a concurrent Close between this read and the checkpoint itself.
	store := e.store
	if store == nil {
		release()
		return fail(fmt.Errorf("core: Checkpoint requires a durable engine (OpenDurable)"))
	}
	job, err := store.BeginCheckpoint()
	if err != nil {
		release()
		return fail(err)
	}
	attach := false
	for _, c := range locked {
		if j, jerr := c.JournalLocked(); j != cvd.Journal(store) || jerr != nil {
			attach = true
			break
		}
	}
	done := make(chan error, 1)
	if attach {
		stats, err := store.CompleteCheckpoint(job, snap)
		if err == nil {
			for _, c := range locked {
				c.SetJournalLocked(store)
			}
		}
		release()
		e.recordCheckpoint(stats, err)
		done <- err
		<-e.ckptSem
		return done, nil
	}
	release()
	go func() {
		stats, err := store.CompleteCheckpoint(job, snap)
		e.recordCheckpoint(stats, err)
		done <- err
		<-e.ckptSem
	}()
	return done, nil
}

// recordCheckpoint notes a completed checkpoint's stats for LastCheckpoint.
func (e *Engine) recordCheckpoint(stats durable.CheckpointStats, err error) {
	if err != nil {
		return
	}
	e.ckptStatsMu.Lock()
	e.lastCkpt = stats
	e.ckptDone = true
	e.ckptStatsMu.Unlock()
}

// LastCheckpoint returns the stats of the most recent successful checkpoint
// through this engine (ok reports whether one has completed).
func (e *Engine) LastCheckpoint() (stats durable.CheckpointStats, ok bool) {
	e.ckptStatsMu.Lock()
	defer e.ckptStatsMu.Unlock()
	return e.lastCkpt, e.ckptDone
}

// Close releases the durable binding: every CVD's journal is detached, the
// store is cleared (Durable reports false, DataDir returns "" afterwards),
// and the WAL file and directory lock are released. The in-memory engine
// remains usable as an ephemeral engine — later commits simply stop being
// journaled, instead of tripping journal-append failures against a closed
// WAL. Close on an ephemeral (or already closed) engine is a no-op.
//
// Close first waits out the background half of any in-flight CheckpointAsync
// (and keeps new checkpoints from starting mid-close), so the store is never
// closed under a running checkpoint.
func (e *Engine) Close() error {
	e.ckptSem <- struct{}{}
	defer func() { <-e.ckptSem }()
	e.mu.Lock()
	store := e.store
	e.store = nil
	cvds := make([]*cvd.CVD, 0, len(e.cvds))
	for _, c := range e.cvds {
		cvds = append(cvds, c)
	}
	e.mu.Unlock()
	if store == nil {
		return nil
	}
	// Detach outside the registry lock (lock order registry → CVD): each
	// detach waits out that CVD's in-flight commit, so no commit can reach
	// the store after it is closed and mistake "closed" for a lost write.
	for _, c := range cvds {
		c.SetJournal(nil)
	}
	return store.Close()
}
