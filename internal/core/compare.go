package core

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file holds the bit-identity comparators shared by the persistence
// round-trip property tests (persistence_test.go) and the crash-injection
// harness (internal/workload): after a snapshot restore or a kill -9
// recovery, the claim is always the same — every version checks out with the
// same rows, the same value type tags, and the same payloads as before.

// CheckoutVersionRows materializes one version of a CVD into cloned rows
// (the rid column included, exactly as checkout produces it) and drops the
// staging table again. The tag keeps concurrent callers' staging names apart.
func CheckoutVersionRows(e *Engine, cvdName string, v vgraph.VersionID, tag string) ([]relstore.Row, error) {
	tab := fmt.Sprintf("cmp_%s_%s_%d", cvdName, tag, v)
	out, err := e.Checkout(cvdName, []vgraph.VersionID{v}, tab)
	if err != nil {
		return nil, fmt.Errorf("checkout %s v%d: %w", cvdName, v, err)
	}
	rows := make([]relstore.Row, out.Len())
	for i := range rows {
		rows[i] = out.RowAt(i).Clone()
	}
	c, err := e.CVD(cvdName)
	if err != nil {
		return nil, err
	}
	c.DiscardCheckout(tab)
	return rows, nil
}

// RowsBitIdentical demands bit-level equality of two row sets: same order,
// same widths, same value type tags, same payloads. ctx names the comparison
// in the error.
func RowsBitIdentical(ctx string, a, b []relstore.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d rows != %d rows", ctx, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("%s row %d: width %d != %d", ctx, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			va, vb := a[i][j], b[i][j]
			if va.Type != vb.Type || va.AsString() != vb.AsString() {
				return fmt.Errorf("%s row %d col %d: %v (%v) != %v (%v)", ctx, i, j, va, va.Type, vb, vb.Type)
			}
		}
	}
	return nil
}

// EnginesEquivalent verifies that two engines hold the same CVDs, that every
// version of every CVD checks out bit-identically on both, and that commit
// metadata survived. tag names the comparison in errors and keeps the two
// engines' staging tables apart.
func EnginesEquivalent(tag string, a, b *Engine) error {
	namesA, namesB := a.List(), b.List()
	if len(namesA) != len(namesB) {
		return fmt.Errorf("%s: CVD lists %v vs %v", tag, namesA, namesB)
	}
	for i := range namesA {
		if namesA[i] != namesB[i] {
			return fmt.Errorf("%s: CVD lists %v vs %v", tag, namesA, namesB)
		}
	}
	for _, name := range namesA {
		ca, err := a.CVD(name)
		if err != nil {
			return err
		}
		cb, err := b.CVD(name)
		if err != nil {
			return err
		}
		if !ca.Schema().Equal(cb.Schema()) {
			return fmt.Errorf("%s/%s: schema %v != %v", tag, name, ca.Schema(), cb.Schema())
		}
		if ca.NumRecords() != cb.NumRecords() {
			return fmt.Errorf("%s/%s: records %d != %d", tag, name, ca.NumRecords(), cb.NumRecords())
		}
		va, vb := ca.Versions(), cb.Versions()
		if len(va) != len(vb) {
			return fmt.Errorf("%s/%s: %d versions != %d", tag, name, len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				return fmt.Errorf("%s/%s: version order %v vs %v", tag, name, va, vb)
			}
			rowsA, err := CheckoutVersionRows(a, name, va[i], tag+"a")
			if err != nil {
				return err
			}
			rowsB, err := CheckoutVersionRows(b, name, vb[i], tag+"b")
			if err != nil {
				return err
			}
			if err := RowsBitIdentical(fmt.Sprintf("%s/%s v%d", tag, name, va[i]), rowsA, rowsB); err != nil {
				return err
			}
			ma, oka := ca.Meta(va[i])
			mb, okb := cb.Meta(vb[i])
			if !oka || !okb {
				return fmt.Errorf("%s/%s v%d: metadata missing (%v, %v)", tag, name, va[i], oka, okb)
			}
			if ma.Message != mb.Message || ma.Author != mb.Author || !ma.CommitAt.Equal(mb.CommitAt) || ma.NumRecords != mb.NumRecords {
				return fmt.Errorf("%s/%s v%d: metadata %+v != %+v", tag, name, va[i], ma, mb)
			}
		}
	}
	return nil
}
