package core

import (
	"strings"
	"testing"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

func testSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
	}, "gene")
}

func TestEngineLifecycle(t *testing.T) {
	e := Open("orpheus")
	rows := []relstore.Row{
		{relstore.Str("BRCA1"), relstore.Int(10)},
		{relstore.Str("TP53"), relstore.Int(20)},
	}
	c, err := e.Init("genes", testSchema(), rows, cvd.Options{Author: "alice", Message: "init"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init("genes", testSchema(), rows, cvd.Options{}); err == nil {
		t.Error("duplicate Init should fail")
	}
	if got := e.List(); len(got) != 1 || got[0] != "genes" {
		t.Errorf("List = %v", got)
	}
	if _, err := e.CVD("nope"); err == nil {
		t.Error("unknown CVD should error")
	}
	// checkout -> modify -> commit
	tab, err := e.Checkout("genes", []vgraph.VersionID{1}, "work")
	if err != nil {
		t.Fatal(err)
	}
	tab.MustInsert(relstore.Row{relstore.Int(0), relstore.Str("EGFR"), relstore.Int(30)})
	v2, err := e.Commit("genes", "work", "add EGFR", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Errorf("v2 = %d, want 2", v2)
	}
	d, err := e.Diff("genes", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyInA) != 1 || len(d.OnlyInB) != 0 {
		t.Errorf("diff = %+v", d)
	}
	// VQuel over the engine.
	res, err := e.Query("genes", `
		range of V is Version
		range of E is V.Relations(name = "genes").Tuples
		retrieve V.id, count(E)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("query rows = %v", res.Rows)
	}
	// Optimize applies partitioning and checkouts still work.
	rep, err := e.Optimize("genes", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partitions < 1 {
		t.Errorf("optimize report = %+v", rep)
	}
	if _, err := e.Checkout("genes", []vgraph.VersionID{2}, "after"); err != nil {
		t.Fatal(err)
	}
	c.DiscardCheckout("after")
	if err := e.Drop("genes"); err != nil {
		t.Fatal(err)
	}
	if err := e.Drop("genes"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestEngineInitFromCSV(t *testing.T) {
	e := Open("orpheus")
	csvText := "gene,score\nBRCA1,10\nTP53,20\n"
	c, err := e.InitFromCSV("genes", strings.NewReader(csvText), testSchema(), cvd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRecords() != 2 {
		t.Errorf("records = %d, want 2", c.NumRecords())
	}
	if _, err := e.InitFromCSV("bad", strings.NewReader("not,a header only"), testSchema(), cvd.Options{}); err != nil {
		// A header-only CSV is fine (empty CVD); malformed CSVs error later.
		t.Logf("init from malformed CSV: %v", err)
	}
}

func TestEngineErrorsOnWrongModel(t *testing.T) {
	e := Open("orpheus")
	rows := []relstore.Row{{relstore.Str("A"), relstore.Int(1)}}
	if _, err := e.Init("g", testSchema(), rows, cvd.Options{Model: cvd.DeltaBased}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Optimize("g", 2); err == nil {
		t.Error("optimize on a non-rlist CVD should fail")
	}
	if _, err := e.Optimize("missing", 2); err == nil {
		t.Error("optimize on missing CVD should fail")
	}
	if _, err := e.Checkout("missing", []vgraph.VersionID{1}, "t"); err == nil {
		t.Error("checkout on missing CVD should fail")
	}
	if _, err := e.Commit("missing", "t", "", ""); err == nil {
		t.Error("commit on missing CVD should fail")
	}
	if _, err := e.Diff("missing", 1, 2); err == nil {
		t.Error("diff on missing CVD should fail")
	}
	if _, err := e.Query("missing", "range of V is Version retrieve V.id"); err == nil {
		t.Error("query on missing CVD should fail")
	}
}
