// Package core is the OrpheusDB engine façade: the public entry point tying
// together the relational substrate (relstore), collaborative versioned
// datasets (cvd), the partition optimizer (partition), and the VQuel query
// language (vquel). Examples and the command-line tools use this package.
//
// An Engine is safe for concurrent use by many clients: the CVD registry is
// guarded by a read-write mutex, and each CVD carries its own read-write
// lock so checkouts, diffs, and queries of one dataset proceed in parallel
// while commits and the partition optimizer get exclusive access. The
// WithWorkers option additionally bounds the intra-operation parallelism of
// the hot paths (multi-version checkout, partitioned scans, partition
// builds, and LyreSplit candidate evaluation).
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cvd"
	"repro/internal/partition"
	"repro/internal/relstore"
	"repro/internal/vgraph"
	"repro/internal/vquel"
)

// Engine is an OrpheusDB instance: a backing database plus the CVDs it
// manages. All methods are safe for concurrent use.
type Engine struct {
	mu      sync.RWMutex // guards the CVD registry
	db      *relstore.Database
	cvds    map[string]*cvd.CVD
	workers int
}

// Option configures an Engine at Open time.
type Option func(*Engine)

// WithWorkers sets the worker-pool size used by the engine's parallel code
// paths. n <= 1 keeps every operation single-threaded on its calling
// goroutine (concurrent clients still run in parallel — this knob only
// bounds intra-operation fan-out).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// Open creates an engine over a fresh in-memory database.
func Open(name string, opts ...Option) *Engine {
	e := &Engine{db: relstore.NewDatabase(name), cvds: make(map[string]*cvd.CVD)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Database exposes the backing database (staging tables live there).
func (e *Engine) Database() *relstore.Database { return e.db }

// Workers returns the configured intra-operation worker count (0 means
// single-threaded operations).
func (e *Engine) Workers() int { return e.workers }

// Init creates a new CVD from initial rows (the `init` command). Unless the
// options say otherwise, the CVD inherits the engine's worker count.
func (e *Engine) Init(name string, schema relstore.Schema, rows []relstore.Row, opts cvd.Options) (*cvd.CVD, error) {
	if opts.Workers == 0 {
		opts.Workers = e.workers
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.cvds[name]; dup {
		return nil, fmt.Errorf("core: CVD %q already exists", name)
	}
	c, err := cvd.Init(e.db, name, schema, rows, opts)
	if err != nil {
		return nil, err
	}
	e.cvds[name] = c
	return c, nil
}

// Adopt registers an externally constructed CVD (for example one loaded by
// the benchmark harness directly against the engine's database) so that it
// is reachable through the engine façade. Like Init, the adopted CVD
// inherits the engine's worker count unless its own was set explicitly.
func (e *Engine) Adopt(c *cvd.CVD) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.cvds[c.Name()]; dup {
		return fmt.Errorf("core: CVD %q already exists", c.Name())
	}
	c.InheritWorkers(e.workers)
	e.cvds[c.Name()] = c
	return nil
}

// InitFromCSV creates a new CVD from a CSV stream (the `init -f` path).
func (e *Engine) InitFromCSV(name string, r io.Reader, schema relstore.Schema, opts cvd.Options) (*cvd.CVD, error) {
	tab, err := relstore.ReadCSV(r, name+"_import", schema)
	if err != nil {
		return nil, err
	}
	return e.Init(name, schema, tab.Rows(), opts)
}

// CVD returns a managed CVD by name.
func (e *Engine) CVD(name string) (*cvd.CVD, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.cvds[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown CVD %q", name)
	}
	return c, nil
}

// List returns the names of all managed CVDs (the `ls` command).
func (e *Engine) List() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.cvds))
	for n := range e.cvds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a CVD and its backing tables (the `drop` command).
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.cvds[name]
	if !ok {
		return fmt.Errorf("core: unknown CVD %q", name)
	}
	c.Drop()
	delete(e.cvds, name)
	return nil
}

// Checkout materializes versions of a CVD into a staging table (the
// `checkout -t` command).
func (e *Engine) Checkout(cvdName string, versions []vgraph.VersionID, tableName string) (*relstore.Table, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return nil, err
	}
	return c.Checkout(versions, tableName)
}

// Commit commits a staging table back as a new version (the `commit -t`
// command).
func (e *Engine) Commit(cvdName, tableName, message, author string) (vgraph.VersionID, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return 0, err
	}
	return c.CommitTable(tableName, message, author)
}

// Diff compares two versions (the `diff` command).
func (e *Engine) Diff(cvdName string, a, b vgraph.VersionID) (cvd.DiffResult, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return cvd.DiffResult{}, err
	}
	return c.Diff(a, b)
}

// OptimizeReport summarizes what the `optimize` command did.
type OptimizeReport struct {
	Partitions       int
	Delta            float64
	EstimatedStorage int64
	EstimatedAvgCost float64
}

// Optimize runs the partition optimizer on a split-by-rlist CVD with the
// given storage threshold factor (γ = factor·|R|) and applies the resulting
// partitioning (the `optimize` command). The whole optimize-and-apply runs
// under the CVD's exclusive lock, so concurrent checkouts never observe a
// half-built partitioning.
func (e *Engine) Optimize(cvdName string, storageFactor float64) (OptimizeReport, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return OptimizeReport{}, err
	}
	var rep OptimizeReport
	err = c.WithExclusive(func() error {
		m, err := c.Rlist()
		if err != nil {
			return err
		}
		tree, err := vgraph.ToTree(c.Graph())
		if err != nil {
			return err
		}
		if storageFactor < 1 {
			storageFactor = 2
		}
		gamma := int64(storageFactor * float64(tree.DistinctRecords()))
		res, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{Workers: e.workers})
		if err != nil {
			return err
		}
		if err := m.ApplyPartitioning(res.Partitioning); err != nil {
			return err
		}
		rep = OptimizeReport{
			Partitions:       res.Partitioning.NumPartitions,
			Delta:            res.Delta,
			EstimatedStorage: res.EstimatedStorage,
			EstimatedAvgCost: res.EstimatedAvgCheckout,
		}
		return nil
	})
	if err != nil {
		return OptimizeReport{}, err
	}
	return rep, nil
}

// Query runs a VQuel query against a CVD's version history (the `run`
// command with VQuel input).
func (e *Engine) Query(cvdName, query string) (*vquel.Result, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return nil, err
	}
	repo, err := vquel.FromCVD(c)
	if err != nil {
		return nil, err
	}
	return vquel.NewEvaluator(repo).Run(query)
}
