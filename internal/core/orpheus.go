// Package core is the OrpheusDB engine façade: the public entry point tying
// together the relational substrate (relstore), collaborative versioned
// datasets (cvd), the partition optimizer (partition), and the VQuel query
// language (vquel). Examples and the command-line tools use this package.
//
// An Engine is safe for concurrent use by many clients: the CVD registry is
// guarded by a read-write mutex, and each CVD carries its own read-write
// lock so checkouts, diffs, and queries of one dataset proceed in parallel
// while commits and the partition optimizer get exclusive access. The
// WithWorkers option additionally bounds the intra-operation parallelism of
// the hot paths (multi-version checkout, partitioned scans, partition
// builds, and LyreSplit candidate evaluation).
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/partition"
	"repro/internal/relstore"
	"repro/internal/vfs"
	"repro/internal/vgraph"
	"repro/internal/vquel"
)

// Engine is an OrpheusDB instance: a backing database plus the CVDs it
// manages. All methods are safe for concurrent use.
//
// An engine is either ephemeral (Open) or durable (OpenDurable): a durable
// engine is bound to a data directory whose snapshot and commit WAL it
// replayed on startup, appends every Init / Commit / Drop to the WAL (fsync
// on the commit boundary), and folds the WAL into a fresh snapshot on
// Checkpoint. See package durable for the on-disk format.
type Engine struct {
	mu      sync.RWMutex // guards the CVD registry
	db      *relstore.Database
	cvds    map[string]*cvd.CVD
	workers int

	// dropping reserves names mid-Drop (guarded by mu): the name stays
	// un-reusable by Init between the drop's WAL record being prepared and
	// the registry unlink, without holding mu across the fence wait.
	dropping map[string]struct{}

	// store is the durable data directory binding; nil for ephemeral
	// engines and after Close. Guarded by mu. The lock order across the
	// stack is engine registry → CVD lock → store append mutex (commits take
	// CVD → store; checkpoints take registry → every CVD → store).
	store *durable.Store
	// gc is the WAL group-commit configuration applied by OpenDurable when
	// gcSet (the GroupCommit option was given).
	gc    durable.GroupCommitConfig
	gcSet bool
	// retain is the checkpoint retention window applied by OpenDurable
	// (0 keeps the store default).
	retain int
	// fsys is the filesystem the durable layer runs on (nil means the real
	// one, vfs.OS()); set by WithFS so fault-injection tests can route every
	// durable I/O operation through a vfs.FaultFS.
	fsys vfs.FS
	// recovery records what OpenDurable had to repair; immutable after open.
	recovery RecoveryInfo

	// ckptSem serializes checkpoints (including the background half of
	// CheckpointAsync); Close acquires it to wait out an in-flight background
	// checkpoint before closing the store.
	ckptSem chan struct{}
	// ckptStatsMu guards the last-checkpoint record.
	ckptStatsMu sync.Mutex
	lastCkpt    durable.CheckpointStats
	ckptDone    bool
}

// RecoveryInfo reports what opening a data directory had to repair.
type RecoveryInfo struct {
	// TornTail: a partially-written WAL record (crashed append) was found
	// and truncated away. Every fully-committed record before it survived.
	TornTail bool
	// StaleWAL: a WAL older than the snapshot was discarded — the signature
	// of a crash between a checkpoint's snapshot rename and WAL reset.
	// Everything in the discarded WAL is already in the snapshot.
	StaleWAL bool
}

// Recovery returns what OpenDurable had to repair when the engine's data
// directory was opened (the zero value for ephemeral engines and clean
// opens).
func (e *Engine) Recovery() RecoveryInfo { return e.recovery }

// Option configures an Engine at Open time.
type Option func(*Engine)

// WithWorkers sets the worker-pool size used by the engine's parallel code
// paths. n <= 1 keeps every operation single-threaded on its calling
// goroutine (concurrent clients still run in parallel — this knob only
// bounds intra-operation fan-out).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCheckpointRetention sets how many checkpoint manifests a durable engine
// retains for point-in-time restore (OpenAtEpoch); older manifests and the
// chunks only they reference are garbage-collected after each checkpoint.
// n < 1 and 0 keep the store default (durable.DefaultCheckpointRetention).
// Ephemeral engines ignore it.
func WithCheckpointRetention(n int) Option {
	return func(e *Engine) { e.retain = n }
}

// GroupCommit configures WAL group commit for a durable engine (OpenDurable;
// ephemeral engines ignore it): up to maxBatch concurrent commits share one
// WAL write+fsync, and a batch leader waits up to maxDelay for followers once
// the disk is free. maxBatch 1 disables batching (every commit fsyncs alone —
// the pre-group-commit behaviour); maxBatch <= 0 selects the default
// (durable.DefaultGroupCommitBatch). maxDelay 0 adds no latency: batches then
// form only from commits that queue while an earlier batch is fsyncing.
func GroupCommit(maxBatch int, maxDelay time.Duration) Option {
	return func(e *Engine) {
		e.gc = durable.GroupCommitConfig{MaxBatch: maxBatch, MaxDelay: maxDelay}
		e.gcSet = true
	}
}

// WithFS routes a durable engine's storage I/O through fsys (OpenDurable
// only; ephemeral engines ignore it). The production default is the real
// filesystem; fault-injection tests pass a vfs.FaultFS to fail or crash at
// any chosen I/O operation.
func WithFS(fsys vfs.FS) Option {
	return func(e *Engine) { e.fsys = fsys }
}

// Open creates an engine over a fresh in-memory database.
func Open(name string, opts ...Option) *Engine {
	e := &Engine{
		db:       relstore.NewDatabase(name),
		cvds:     make(map[string]*cvd.CVD),
		dropping: make(map[string]struct{}),
		ckptSem:  make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Database exposes the backing database (staging tables live there).
func (e *Engine) Database() *relstore.Database { return e.db }

// Workers returns the configured intra-operation worker count (0 means
// single-threaded operations).
func (e *Engine) Workers() int { return e.workers }

// Init creates a new CVD from initial rows (the `init` command). Unless the
// options say otherwise, the CVD inherits the engine's worker count. On a
// durable engine the creation (with its initial rows) is appended to the
// commit WAL and fsynced before Init returns, and every later commit to the
// CVD is journaled the same way.
func (e *Engine) Init(name string, schema relstore.Schema, rows []relstore.Row, opts cvd.Options) (*cvd.CVD, error) {
	if opts.Workers == 0 {
		opts.Workers = e.workers
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.cvds[name]; dup {
		return nil, fmt.Errorf("core: CVD %q already exists", name)
	}
	if _, busy := e.dropping[name]; busy {
		return nil, fmt.Errorf("core: CVD %q is being dropped", name)
	}
	c, err := cvd.Init(e.db, name, schema, rows, opts)
	if err != nil {
		return nil, err
	}
	if e.store != nil {
		// The WAL append (including its fsync) runs under the registry lock
		// deliberately: holding e.mu across both the in-memory creation and
		// the OpInit append is what makes Init atomic with Checkpoint — a
		// checkpoint can never observe the CVD without its init record being
		// either folded in or in the continuing WAL.
		meta, _ := c.Meta(1)
		at := opts.At
		if meta != nil {
			at = meta.CommitAt
		}
		if err := e.store.LogInit(name, opts.Model, schema, rows, opts.Message, opts.Author, at); err != nil {
			c.Drop()
			return nil, fmt.Errorf("core: journaling init of %q: %w", name, err)
		}
		c.SetJournal(e.store)
	}
	e.cvds[name] = c
	return c, nil
}

// Adopt registers an externally constructed CVD (for example one loaded by
// the benchmark harness directly against the engine's database) so that it
// is reachable through the engine façade. Like Init, the adopted CVD
// inherits the engine's worker count unless its own was set explicitly.
//
// On a durable engine an adopted CVD is NOT durable until the next
// Checkpoint: its pre-adoption history cannot be expressed as WAL records,
// so no journal is attached either — journaling commits against a CVD the
// snapshot does not contain would make the WAL unreplayable. Checkpoint
// folds the CVD into the snapshot and attaches the journal atomically; call
// it right after adopting.
func (e *Engine) Adopt(c *cvd.CVD) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.cvds[c.Name()]; dup {
		return fmt.Errorf("core: CVD %q already exists", c.Name())
	}
	if _, busy := e.dropping[c.Name()]; busy {
		return fmt.Errorf("core: CVD %q is being dropped", c.Name())
	}
	c.InheritWorkers(e.workers)
	e.cvds[c.Name()] = c
	return nil
}

// InitFromCSV creates a new CVD from a CSV stream (the `init -f` path).
func (e *Engine) InitFromCSV(name string, r io.Reader, schema relstore.Schema, opts cvd.Options) (*cvd.CVD, error) {
	tab, err := relstore.ReadCSV(r, name+"_import", schema)
	if err != nil {
		return nil, err
	}
	return e.Init(name, schema, tab.Rows(), opts)
}

// CVD returns a managed CVD by name.
func (e *Engine) CVD(name string) (*cvd.CVD, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.cvds[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown CVD %q", name)
	}
	return c, nil
}

// List returns the names of all managed CVDs (the `ls` command).
func (e *Engine) List() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.cvds))
	for n := range e.cvds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a CVD and its backing tables (the `drop` command). The
// registry lock is held only to unlink the CVD: the teardown itself — which
// must wait for in-flight checkouts and commits of that CVD — runs outside
// it, so concurrent List / CVD / Checkout calls on other datasets never
// stall behind one dataset's teardown.
func (e *Engine) Drop(name string) error {
	// Reserve the name first: Init refuses reserved names, so no OpInit for
	// a reused name can reach the WAL before this drop's OpDrop, without the
	// registry lock being held across the fence below.
	e.mu.Lock()
	c, ok := e.cvds[name]
	store := e.store
	if ok {
		if _, busy := e.dropping[name]; busy {
			ok = false // another Drop of the same name is in flight
		} else {
			e.dropping[name] = struct{}{}
		}
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown CVD %q", name)
	}
	var logErr error
	if store != nil {
		// WAL ordering: the OpDrop must land after any in-flight commit's
		// OpCommit, so fence the CVD's exclusive lock (waiting out in-flight
		// work without holding e.mu — registry traffic on other datasets
		// stays live) and detach its journal; commits that slip in after the
		// fence journal nothing, and the teardown below discards them anyway.
		c.LockExclusive()
		c.SetJournalLocked(nil)
		logErr = store.LogDrop(name)
		c.UnlockExclusive()
	}
	e.mu.Lock()
	delete(e.cvds, name)
	e.mu.Unlock()
	// The name reservation outlives the unlink: it is released only after the
	// teardown finishes, so an Init reusing the name cannot create fresh
	// backing tables that the in-flight c.Drop() would then destroy.
	c.Drop()
	e.mu.Lock()
	delete(e.dropping, name)
	e.mu.Unlock()
	if logErr != nil {
		return fmt.Errorf("core: journaling drop of %q: %w", name, logErr)
	}
	return nil
}

// Checkout materializes versions of a CVD into a staging table (the
// `checkout -t` command).
func (e *Engine) Checkout(cvdName string, versions []vgraph.VersionID, tableName string) (*relstore.Table, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return nil, err
	}
	return c.Checkout(versions, tableName)
}

// Commit commits a staging table back as a new version (the `commit -t`
// command).
func (e *Engine) Commit(cvdName, tableName, message, author string) (vgraph.VersionID, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return 0, err
	}
	return c.CommitTable(tableName, message, author)
}

// Diff compares two versions (the `diff` command).
func (e *Engine) Diff(cvdName string, a, b vgraph.VersionID) (cvd.DiffResult, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return cvd.DiffResult{}, err
	}
	return c.Diff(a, b)
}

// OptimizeReport summarizes what the `optimize` command did.
type OptimizeReport struct {
	Partitions       int
	Delta            float64
	EstimatedStorage int64
	EstimatedAvgCost float64
}

// Optimize runs the partition optimizer on a split-by-rlist CVD with the
// given storage threshold factor (γ = factor·|R|) and applies the resulting
// partitioning (the `optimize` command). The whole optimize-and-apply runs
// under the CVD's exclusive lock, so concurrent checkouts never observe a
// half-built partitioning.
func (e *Engine) Optimize(cvdName string, storageFactor float64) (OptimizeReport, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return OptimizeReport{}, err
	}
	var rep OptimizeReport
	err = c.WithExclusive(func() error {
		m, err := c.Rlist()
		if err != nil {
			return err
		}
		tree, err := vgraph.ToTree(c.Graph())
		if err != nil {
			return err
		}
		if storageFactor < 1 {
			storageFactor = 2
		}
		gamma := int64(storageFactor * float64(tree.DistinctRecords()))
		res, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{Workers: e.workers})
		if err != nil {
			return err
		}
		if err := m.ApplyPartitioning(res.Partitioning); err != nil {
			return err
		}
		rep = OptimizeReport{
			Partitions:       res.Partitioning.NumPartitions,
			Delta:            res.Delta,
			EstimatedStorage: res.EstimatedStorage,
			EstimatedAvgCost: res.EstimatedAvgCheckout,
		}
		return nil
	})
	if err != nil {
		return OptimizeReport{}, err
	}
	return rep, nil
}

// Query runs a VQuel query against a CVD's version history (the `run`
// command with VQuel input).
func (e *Engine) Query(cvdName, query string) (*vquel.Result, error) {
	c, err := e.CVD(cvdName)
	if err != nil {
		return nil, err
	}
	repo, err := vquel.FromCVD(c)
	if err != nil {
		return nil, err
	}
	return vquel.NewEvaluator(repo).Run(query)
}
