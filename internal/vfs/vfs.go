// Package vfs is the filesystem abstraction under the durable storage layer.
// Production code runs on OsFS (thin delegation to the os package); tests run
// the same code on FaultFS, a deterministic, seeded fault injector that
// buffers writes like a kernel page cache and can fail or crash at any
// durable I/O operation — ENOSPC, short (torn) writes, fsync errors, whole-
// process crash points that drop unsynced buffers, and bit flips on read.
// FaultFile is the single-file variant for tests that only need to wrap one
// already-open file (the WAL fault tests).
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durable layer uses. Everything the
// storage code does to an open file — sequential and positioned reads and
// writes, truncation, fsync, stat — goes through this interface so a fault
// injector can intercept every byte.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer

	// Name returns the path the file was opened with.
	Name() string
	// Truncate changes the file size.
	Truncate(size int64) error
	// Sync flushes the file's content to stable storage — the durability
	// boundary every commit protocol in the durable layer is built on.
	Sync() error
	// Stat returns file metadata; implementations must report the logical
	// (post-buffered-write) size.
	Stat() (fs.FileInfo, error)
}

// FS is the directory-level operations of a data directory: opening and
// creating files, the atomic temp+rename commit protocol, deletion, listing,
// directory fsync, and advisory locking.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics. Implementations may
	// reject flags the durable layer never uses (O_TRUNC, O_APPEND).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temp file in dir with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat returns metadata for a path; like File.Stat it must report the
	// logical size of buffered content.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory path like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so renames inside it are durable;
	// best-effort on platforms where directories cannot be opened for sync.
	SyncDir(dir string) error
	// Lock takes an exclusive, non-blocking advisory lock on the named file
	// (creating it if needed). Closing the returned Closer releases it.
	Lock(name string) (io.Closer, error)
}

// Open opens a file read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// ReadFile reads a whole file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Glob returns the names in dir matching pattern (filepath.Match against the
// base name), joined with dir. Unlike filepath.Glob it runs through fsys, so
// a fault injector sees the listing.
func Glob(fsys FS, dir, pattern string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if ok, err := filepath.Match(pattern, ent.Name()); err != nil {
			return nil, err
		} else if ok {
			out = append(out, filepath.Join(dir, ent.Name()))
		}
	}
	return out, nil
}
