package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// OsFS is the production FS: thin delegation to the os package. The zero
// value is ready to use; OS() returns a shared instance.
type OsFS struct{}

var osFS = OsFS{}

// OS returns the production filesystem.
func OS() FS { return osFS }

// osFile adapts *os.File's Stat signature (os.FileInfo vs fs.FileInfo are
// the same type, so this is a direct embed).
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OsFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OsFS) Remove(name string) error { return os.Remove(name) }

func (OsFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OsFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir fsyncs a directory so a rename inside it is durable; best-effort
// on platforms where directories cannot be opened for sync.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// Lock takes an exclusive non-blocking flock on name, creating the file if
// needed. The kernel releases the lock automatically when the holding
// process dies; Close releases it explicitly.
func (OsFS) Lock(name string) (io.Closer, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s is locked: %w", name, err)
	}
	return f, nil
}
