package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// FaultFS is a deterministic fault-injecting filesystem modeled on a kernel
// write-back page cache (the ALICE dirty-page model): every write, truncate,
// and file creation mutates only an in-memory view of the file; Sync flushes
// that view to the inner filesystem. The inner filesystem therefore always
// holds exactly the bytes that would survive a power cut, and a simulated
// crash needs only to torn-flush the dirty views and stop serving.
//
// Every durability-relevant operation (write, sync, truncate, rename,
// remove, dir-sync, file creation) increments a global operation counter.
// FailAt arms a one-shot fault at a counter value; the fault kind decides
// what happens when the counter hits it:
//
//   - FaultENOSPC: the operation fails with ENOSPC and has no effect.
//   - FaultShortWrite: a write persists only a torn prefix (half the buffer)
//     into the view and fails; other operations fail with a generic injected
//     error.
//   - FaultSyncErr: a sync reports failure without flushing; other
//     operations fail with a generic injected error.
//   - FaultCrash: the process "dies" — each dirty file's durable image keeps
//     a seeded-random prefix of the unflushed delta (modeling torn sector
//     writes), and every later operation on the FaultFS fails with
//     ErrCrashed. Reopen the real directory with OS() to model restart.
//
// Independently of FailAt, SetWriteBudget models a disk with n writable
// bytes left (persistent ENOSPC with a torn final write), and FlipReads arms
// single-bit corruption on upcoming positioned reads (silent bit rot).
//
// Model simplifications, chosen conservative for the code under test: file
// creation and rename reach the inner filesystem immediately (directory
// entries are never lost, only content is), and ReadDir/metadata listings
// delegate to the inner filesystem.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[string]*faultNode
	ops      int64
	failAt   int64
	kind     FaultKind
	injected int64
	down     bool
	budget   int64 // bytes writable before ENOSPC; < 0 = unlimited
	flips    int   // upcoming ReadAt calls to corrupt with one bit flip
}

// faultNode is the logical content of one file — the page-cache view.
type faultNode struct {
	view  []byte
	dirty bool // view differs from (or is newer than) the durable image
}

// FaultKind selects what an armed fault does when its operation index hits.
type FaultKind int

// Fault kinds; see FaultFS.
const (
	FaultNone FaultKind = iota
	FaultENOSPC
	FaultShortWrite
	FaultSyncErr
	FaultCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "shortwrite"
	case FaultSyncErr:
		return "syncerr"
	case FaultCrash:
		return "crash"
	default:
		return "none"
	}
}

// ErrCrashed is returned by every operation after a FaultCrash fired: the
// simulated process is dead and the directory must be reopened (through the
// real filesystem) to continue.
var ErrCrashed = errors.New("vfs: filesystem crashed (injected fault)")

// ErrInjected is the base error of non-crash injected faults; test code can
// errors.Is against it.
var ErrInjected = errors.New("vfs: injected fault")

// NewFaultFS wraps inner with fault injection. The seed drives every random
// decision (torn-flush prefixes, bit-flip positions), so a run is
// reproducible from (seed, arming calls).
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*faultNode),
		failAt: 0,
		budget: -1,
	}
}

// FailAt arms a one-shot fault of the given kind at operation index op
// (1-based: the op-th counted operation after the filesystem was created
// fails). op <= 0 disarms.
func (s *FaultFS) FailAt(op int64, kind FaultKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAt, s.kind = op, kind
}

// Ops returns how many durability-relevant operations have been counted.
func (s *FaultFS) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Injected returns how many faults have actually fired.
func (s *FaultFS) Injected() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Crashed reports whether a FaultCrash has fired.
func (s *FaultFS) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// SetWriteBudget limits the bytes future writes may persist before failing
// with ENOSPC (a full disk); the final write that crosses the budget lands a
// torn prefix, as a real filesystem running out of space does. n < 0 removes
// the limit.
func (s *FaultFS) SetWriteBudget(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = n
}

// FlipReads arms single-bit corruption on the next n positioned reads —
// silent bit rot as a read path would observe it.
func (s *FaultFS) FlipReads(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flips = n
}

// Crash simulates the process dying right now: dirty views torn-flush and
// every later operation fails with ErrCrashed.
func (s *FaultFS) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		s.crashLocked()
	}
}

// stepLocked counts one operation and fires the armed fault if the counter
// hit it. isWrite/isSync select the fault behavior that matches the
// operation; the caller handles a returned errShortWrite by landing the torn
// prefix itself.
var errShortWrite = fmt.Errorf("%w: short write: %s", ErrInjected, io.ErrShortWrite)

func (s *FaultFS) stepLocked(isWrite, isSync bool) error {
	s.ops++
	if s.failAt <= 0 || s.ops != s.failAt {
		return nil
	}
	s.injected++
	switch s.kind {
	case FaultENOSPC:
		return fmt.Errorf("%w: %v after %d ops", ErrInjected, syscall.ENOSPC, s.ops)
	case FaultShortWrite:
		if isWrite {
			return errShortWrite
		}
		return fmt.Errorf("%w: input/output error at op %d", ErrInjected, s.ops)
	case FaultSyncErr:
		if isSync {
			return fmt.Errorf("%w: fsync failed at op %d", ErrInjected, s.ops)
		}
		return fmt.Errorf("%w: input/output error at op %d", ErrInjected, s.ops)
	case FaultCrash:
		s.crashLocked()
		return ErrCrashed
	}
	return nil
}

// crashLocked torn-flushes every dirty node and marks the filesystem dead.
// For each dirty file the durable image keeps the already-synced prefix plus
// a seeded-random number of the unflushed bytes; a pending truncation
// persists (or not) independently.
func (s *FaultFS) crashLocked() {
	s.down = true
	for name, node := range s.nodes {
		if !node.dirty {
			continue
		}
		real, err := s.readInner(name)
		if err != nil || bytes.Equal(real, node.view) {
			continue
		}
		d := commonPrefix(real, node.view)
		keep := d
		if len(node.view) > d {
			keep = d + s.rng.Intn(len(node.view)-d+1)
		}
		length := len(real)
		if len(node.view) < len(real) && s.rng.Intn(2) == 0 {
			length = len(node.view) // the pending truncate made it to disk
		}
		img := append([]byte(nil), node.view[:keep]...)
		if keep < length && keep < len(real) {
			tail := real[keep:]
			if length-keep < len(tail) {
				tail = tail[:length-keep]
			}
			img = append(img, tail...)
		}
		s.writeInner(name, img)
	}
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// readInner reads a file's durable image; a missing file reads as nil.
func (s *FaultFS) readInner(name string) ([]byte, error) {
	f, err := Open(s.inner, name)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// writeInner replaces a file's durable image.
func (s *FaultFS) writeInner(name string, data []byte) error {
	f, err := s.inner.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := f.WriteAt(data, 0); err != nil {
			return err
		}
	}
	return f.Sync()
}

// ---- FS implementation -------------------------------------------------------

func (s *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_TRUNC|os.O_APPEND) != 0 {
		return nil, fmt.Errorf("vfs: FaultFS does not model O_TRUNC/O_APPEND (open %s)", name)
	}
	name = filepath.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrCrashed
	}
	creating := false
	if flag&os.O_CREATE != 0 && s.nodes[name] == nil {
		if _, err := s.inner.Stat(name); err != nil {
			creating = true
		}
	}
	if creating {
		if err := s.stepLocked(false, false); err != nil {
			return nil, err
		}
	}
	f, err := s.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f.Close()
	return s.handleLocked(name)
}

func (s *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrCrashed
	}
	if err := s.stepLocked(false, false); err != nil {
		return nil, err
	}
	f, err := s.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	name := filepath.Clean(f.Name())
	f.Close()
	return s.handleLocked(name)
}

// handleLocked loads (or reuses) the node for name and wraps it in a handle.
func (s *FaultFS) handleLocked(name string) (File, error) {
	node := s.nodes[name]
	if node == nil {
		data, err := s.readInner(name)
		if err != nil {
			return nil, err
		}
		node = &faultNode{view: data}
		s.nodes[name] = node
	}
	return &faultHandle{fs: s, name: name, node: node}, nil
}

func (s *FaultFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrCrashed
	}
	if err := s.stepLocked(false, false); err != nil {
		return err
	}
	if err := s.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if node, ok := s.nodes[oldpath]; ok {
		delete(s.nodes, oldpath)
		s.nodes[newpath] = node
	} else {
		// The rename may shadow a cached node of newpath with fresh content.
		delete(s.nodes, newpath)
	}
	return nil
}

func (s *FaultFS) Remove(name string) error {
	name = filepath.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrCrashed
	}
	if err := s.stepLocked(false, false); err != nil {
		return err
	}
	delete(s.nodes, name)
	return s.inner.Remove(name)
}

func (s *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		return nil, ErrCrashed
	}
	return s.inner.ReadDir(name)
}

func (s *FaultFS) Stat(name string) (fs.FileInfo, error) {
	name = filepath.Clean(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrCrashed
	}
	if node, ok := s.nodes[name]; ok {
		return fauxInfo{name: filepath.Base(name), size: int64(len(node.view))}, nil
	}
	return s.inner.Stat(name)
}

func (s *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		return ErrCrashed
	}
	return s.inner.MkdirAll(path, perm)
}

func (s *FaultFS) SyncDir(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrCrashed
	}
	if err := s.stepLocked(false, true); err != nil {
		return err
	}
	return s.inner.SyncDir(dir)
}

// Lock delegates to the inner filesystem: advisory locking fences processes,
// not disks, so it is outside the fault model (and never counted).
func (s *FaultFS) Lock(name string) (io.Closer, error) {
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		return nil, ErrCrashed
	}
	return s.inner.Lock(name)
}

// ---- file handle -------------------------------------------------------------

// faultHandle is one open file: a cursor over the shared node. Multiple
// handles on the same path share the node, exactly as processes share the
// page cache.
type faultHandle struct {
	fs   *FaultFS
	name string
	node *faultNode
	pos  int64
}

func (h *faultHandle) Name() string { return h.name }

func (h *faultHandle) Close() error { return nil }

func (h *faultHandle) ReadAt(p []byte, off int64) (int, error) {
	s := h.fs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, ErrCrashed
	}
	view := h.node.view
	if off >= int64(len(view)) {
		return 0, io.EOF
	}
	n := copy(p, view[off:])
	if s.flips > 0 && n > 0 {
		s.flips--
		bit := s.rng.Intn(n * 8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultHandle) Read(p []byte) (int, error) {
	n, err := h.ReadAt(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *faultHandle) WriteAt(p []byte, off int64) (int, error) {
	s := h.fs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, ErrCrashed
	}
	if err := s.stepLocked(true, false); err != nil {
		if errors.Is(err, errShortWrite) {
			n := len(p) / 2
			s.applyWriteLocked(h.node, p[:n], off)
			return n, err
		}
		return 0, err
	}
	if s.budget >= 0 {
		if s.budget == 0 {
			return 0, fmt.Errorf("vfs: write to %s: %w (write budget exhausted)", h.name, syscall.ENOSPC)
		}
		if int64(len(p)) > s.budget {
			n := int(s.budget)
			s.budget = 0
			s.applyWriteLocked(h.node, p[:n], off)
			return n, fmt.Errorf("vfs: write to %s: %w (write budget exhausted, %d of %d bytes landed)", h.name, syscall.ENOSPC, n, len(p))
		}
		s.budget -= int64(len(p))
	}
	s.applyWriteLocked(h.node, p, off)
	return len(p), nil
}

func (h *faultHandle) Write(p []byte) (int, error) {
	n, err := h.WriteAt(p, h.pos)
	h.pos += int64(n)
	return n, err
}

// applyWriteLocked lands bytes in the node's view, zero-filling any gap.
func (s *FaultFS) applyWriteLocked(node *faultNode, p []byte, off int64) {
	if len(p) == 0 {
		return
	}
	end := off + int64(len(p))
	if int64(len(node.view)) < end {
		grown := make([]byte, end)
		copy(grown, node.view)
		node.view = grown
	}
	copy(node.view[off:], p)
	node.dirty = true
}

func (h *faultHandle) Truncate(size int64) error {
	s := h.fs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrCrashed
	}
	if err := s.stepLocked(false, false); err != nil {
		return err
	}
	node := h.node
	if size <= int64(len(node.view)) {
		node.view = node.view[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, node.view)
		node.view = grown
	}
	node.dirty = true
	return nil
}

func (h *faultHandle) Sync() error {
	s := h.fs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrCrashed
	}
	if err := s.stepLocked(false, true); err != nil {
		return err
	}
	if !h.node.dirty {
		return nil
	}
	if err := s.writeInner(h.name, h.node.view); err != nil {
		return err
	}
	h.node.dirty = false
	return nil
}

func (h *faultHandle) Stat() (fs.FileInfo, error) {
	s := h.fs
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, ErrCrashed
	}
	return fauxInfo{name: filepath.Base(h.name), size: int64(len(h.node.view))}, nil
}

// fauxInfo is the synthesized FileInfo of a buffered file: the size is the
// logical view length, not the (possibly stale) durable image's.
type fauxInfo struct {
	name string
	size int64
}

func (i fauxInfo) Name() string       { return i.name }
func (i fauxInfo) Size() int64        { return i.size }
func (i fauxInfo) Mode() fs.FileMode  { return 0o644 }
func (i fauxInfo) ModTime() time.Time { return time.Time{} }
func (i fauxInfo) IsDir() bool        { return false }
func (i fauxInfo) Sys() any           { return nil }
