package vfs

import (
	"errors"
	"sync"
)

// FaultFile wraps one already-open File with switchable failure injection: a
// failing write still lands a torn prefix (as a crashed or erroring kernel
// write would), and syncs are counted so group-commit tests can assert how
// many fsyncs a concurrent append storm actually cost. It is the single-file
// sibling of FaultFS, for tests that want to wrap a live handle (the WAL)
// without routing the whole directory through a fault filesystem.
type FaultFile struct {
	File
	mu sync.Mutex
	// Each counter arms that many failures of its operation; every triggered
	// failure consumes one, so a single-shot fault does not cascade into the
	// recovery path's own truncate+sync.
	syncs      int
	failWrites int
	failSyncs  int
	failTruncs int
}

// NewFaultFile wraps f.
func NewFaultFile(f File) *FaultFile { return &FaultFile{File: f} }

// FailWrites arms n write failures (each lands a torn half-prefix).
func (f *FaultFile) FailWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites = n
}

// FailSyncs arms n sync failures.
func (f *FaultFile) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = n
}

// FailTruncs arms n truncate failures.
func (f *FaultFile) FailTruncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTruncs = n
}

// SyncCount returns how many Sync calls have been observed (failed ones
// included).
func (f *FaultFile) SyncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *FaultFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	fail := f.failWrites > 0
	if fail {
		f.failWrites--
	}
	f.mu.Unlock()
	if fail {
		// Land a torn prefix: the bytes a real short write leaves behind.
		n := len(p) / 2
		f.File.WriteAt(p[:n], off)
		return n, errors.New("injected write failure")
	}
	return f.File.WriteAt(p, off)
}

func (f *FaultFile) Sync() error {
	f.mu.Lock()
	f.syncs++
	fail := f.failSyncs > 0
	if fail {
		f.failSyncs--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func (f *FaultFile) Truncate(size int64) error {
	f.mu.Lock()
	fail := f.failTruncs > 0
	if fail {
		f.failTruncs--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("injected truncate failure")
	}
	return f.File.Truncate(size)
}
