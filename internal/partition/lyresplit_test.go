package partition_test

import (
	"testing"
	"testing/quick"

	"repro/internal/benchmark"
	"repro/internal/vgraph"

	. "repro/internal/partition"
)

// figure54Tree builds the version tree of Figure 5.4: root v1 with children
// v2, v3; v2 has children v4, v5; v3 has children v6, v7. Record counts and
// edge weights follow the figure.
func figure54Tree(t testing.TB) *vgraph.Tree {
	t.Helper()
	g := vgraph.New()
	records := map[vgraph.VersionID]int64{1: 30, 2: 12, 3: 10, 4: 8, 5: 10, 6: 8, 7: 7}
	for v := vgraph.VersionID(1); v <= 7; v++ {
		g.MustAddVersion(v, records[v])
	}
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(1, 3, 7)
	g.MustAddEdge(2, 4, 6)
	g.MustAddEdge(2, 5, 8)
	g.MustAddEdge(3, 6, 6)
	g.MustAddEdge(3, 7, 4)
	tree, err := vgraph.ToTree(g)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func sciTree(t testing.TB) (*benchmark.Workload, *vgraph.Tree) {
	t.Helper()
	cfg, err := benchmark.Preset("SCI_10K", 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.Tree()
	if err != nil {
		t.Fatal(err)
	}
	return w, tree
}

func TestLyreSplitSmallDelta(t *testing.T) {
	tree := figure54Tree(t)
	// δ at the minimum keeps everything in one partition.
	res, err := LyreSplit(tree, MinDelta(tree), LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioning.NumPartitions != 1 {
		t.Errorf("minimal delta should give one partition, got %d", res.Partitioning.NumPartitions)
	}
	if res.EstimatedStorage != tree.DistinctRecords() {
		t.Errorf("single-partition storage = %d, want %d", res.EstimatedStorage, tree.DistinctRecords())
	}
}

func TestLyreSplitLargeDeltaSplits(t *testing.T) {
	tree := figure54Tree(t)
	res, err := LyreSplit(tree, 0.5, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioning.NumPartitions < 2 {
		t.Fatalf("delta=0.5 should split the Figure 5.4 tree, got %d partitions", res.Partitioning.NumPartitions)
	}
	// The approximation guarantee of Theorem 5.2: Cavg < (1/δ)·|E|/|V| and
	// S ≤ (1+δ)^ℓ · |R|.
	e := float64(tree.TotalBipartiteEdges())
	v := float64(tree.NumVersions())
	if res.EstimatedAvgCheckout >= (1/0.5)*e/v {
		t.Errorf("Cavg = %g violates the 1/δ·|E|/|V| = %g bound", res.EstimatedAvgCheckout, (1/0.5)*e/v)
	}
	bound := float64(tree.DistinctRecords())
	for i := 0; i < res.Levels; i++ {
		bound *= 1.5
	}
	if float64(res.EstimatedStorage) > bound {
		t.Errorf("S = %d violates the (1+δ)^ℓ·|R| = %g bound", res.EstimatedStorage, bound)
	}
	if err := allVersionsAssigned(tree, res.Partitioning); err != nil {
		t.Error(err)
	}
}

func allVersionsAssigned(tree *vgraph.Tree, p vgraph.Partitioning) error {
	for _, v := range tree.SubtreeVersions(tree.Root) {
		if _, ok := p.Assignment[v]; !ok {
			return &assignError{v}
		}
	}
	return nil
}

type assignError struct{ v vgraph.VersionID }

func (e *assignError) Error() string { return "version not assigned to any partition" }

func TestLyreSplitInvalidInputs(t *testing.T) {
	tree := figure54Tree(t)
	if _, err := LyreSplit(tree, 0, LyreSplitOptions{}); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := LyreSplit(tree, 1.5, LyreSplitOptions{}); err == nil {
		t.Error("delta>1 should fail")
	}
	bad := &vgraph.Tree{Root: 1, Records: map[vgraph.VersionID]int64{1: 5, 2: 5}, Parent: map[vgraph.VersionID]vgraph.VersionID{}, Children: map[vgraph.VersionID][]vgraph.VersionID{}, Weight: map[vgraph.VersionID]int64{}}
	if _, err := LyreSplit(bad, 0.5, LyreSplitOptions{}); err == nil {
		t.Error("disconnected tree should fail validation")
	}
}

func TestLyreSplitMonotoneInDelta(t *testing.T) {
	// Larger δ ⇒ more partitions ⇒ more storage, less checkout (Section 5.2).
	_, tree := sciTree(t)
	var prevStorage int64 = -1
	var prevCheckout = 1e18
	for _, delta := range []float64{0.02, 0.05, 0.1, 0.3, 0.8} {
		res, err := LyreSplit(tree, delta, LyreSplitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if prevStorage >= 0 {
			if res.EstimatedStorage < prevStorage {
				t.Errorf("delta=%g: storage %d decreased from %d", delta, res.EstimatedStorage, prevStorage)
			}
			if res.EstimatedAvgCheckout > prevCheckout+1e-6 {
				t.Errorf("delta=%g: checkout %g increased from %g", delta, res.EstimatedAvgCheckout, prevCheckout)
			}
		}
		prevStorage = res.EstimatedStorage
		prevCheckout = res.EstimatedAvgCheckout
	}
}

func TestSolveStorageConstraint(t *testing.T) {
	_, tree := sciTree(t)
	baseR := tree.DistinctRecords()
	for _, factor := range []float64{1.5, 2.0} {
		gamma := int64(factor * float64(baseR))
		res, err := SolveStorageConstraint(tree, gamma, LyreSplitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedStorage > gamma {
			t.Errorf("γ=%.1f|R|: storage %d exceeds threshold %d", factor, res.EstimatedStorage, gamma)
		}
		// Partitioning should beat the single-partition checkout cost.
		if res.Partitioning.NumPartitions > 1 && res.EstimatedAvgCheckout >= float64(baseR) {
			t.Errorf("γ=%.1f|R|: checkout %g not better than unpartitioned %d", factor, res.EstimatedAvgCheckout, baseR)
		}
	}
	if _, err := SolveStorageConstraint(tree, baseR/2, LyreSplitOptions{}); err == nil {
		t.Error("threshold below |R| should be rejected")
	}
}

func TestPartitionBenefit(t *testing.T) {
	// The headline result of Section 5.5.3: with γ = 2|R| the checkout cost
	// drops by a large factor compared to a single partition.
	_, tree := sciTree(t)
	baseCheckout := float64(tree.DistinctRecords())
	res, err := SolveStorageConstraint(tree, 2*tree.DistinctRecords(), LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedAvgCheckout >= baseCheckout/2 {
		t.Errorf("partitioning should at least halve the checkout cost: %g vs %g", res.EstimatedAvgCheckout, baseCheckout)
	}
}

func TestPartitionDAGAndExactCosts(t *testing.T) {
	cfg, err := benchmark.Preset("CUR_10K", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TargetRecords = 3000
	cfg.InsertsPerVersion = 50
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveStorageConstraintDAG(w.Graph, 2*w.Bipartite.NumRecords(), LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Exact (bipartite) storage stays close to the estimate and within ~γ·(1+slack).
	exact := w.Bipartite.EvaluatePartitioning(res.Partitioning)
	if exact.Storage < w.Bipartite.NumRecords() {
		t.Errorf("exact storage %d below |R| %d", exact.Storage, w.Bipartite.NumRecords())
	}
	if float64(exact.Storage) > 2.5*float64(w.Bipartite.NumRecords()) {
		t.Errorf("exact storage %d too far above threshold %d", exact.Storage, 2*w.Bipartite.NumRecords())
	}
	// Partitioned checkout beats unpartitioned checkout.
	if exact.AvgCheckout >= float64(w.Bipartite.NumRecords()) {
		t.Errorf("partitioned checkout %g not better than unpartitioned %d", exact.AvgCheckout, w.Bipartite.NumRecords())
	}
	if _, err := PartitionDAG(w.Graph, 0.3, LyreSplitOptions{}); err != nil {
		t.Errorf("PartitionDAG: %v", err)
	}
}

func TestLyreSplitWeighted(t *testing.T) {
	_, tree := sciTree(t)
	// Weight the leaves (latest versions) heavily.
	freq := map[vgraph.VersionID]int{}
	for _, v := range tree.SubtreeVersions(tree.Root) {
		if len(tree.Children[v]) == 0 {
			freq[v] = 5
		}
	}
	res, err := LyreSplitWeighted(tree, freq, 0.3, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := allVersionsAssigned(tree, res.Partitioning); err != nil {
		t.Error(err)
	}
	if res.Partitioning.NumPartitions < 1 {
		t.Error("weighted partitioning produced no partitions")
	}
	// Every version appears exactly once.
	if len(res.Partitioning.Assignment) != tree.NumVersions() {
		t.Errorf("assignment covers %d versions, want %d", len(res.Partitioning.Assignment), tree.NumVersions())
	}
}

func TestLyreSplitSchemaAware(t *testing.T) {
	tree := figure54Tree(t)
	// Annotate attribute counts: v3 shares only 1 attribute with v1, making
	// the (1,3) edge cheap to cut even though its record weight alone would
	// not qualify under a small δ.
	for v := range tree.Records {
		tree.Attrs[v] = 5
	}
	for v := range tree.Parent {
		tree.CommonAttrs[v] = 5
	}
	tree.CommonAttrs[3] = 1
	plain, err := LyreSplit(tree, 0.25, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := LyreSplit(tree, 0.25, LyreSplitOptions{UseAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Partitioning.NumPartitions < plain.Partitioning.NumPartitions {
		t.Errorf("attribute-aware splitting should find at least as many cuts: %d vs %d", aware.Partitioning.NumPartitions, plain.Partitioning.NumPartitions)
	}
}

func TestEstimateTreeCostMatchesSinglePartition(t *testing.T) {
	tree := figure54Tree(t)
	assignment := map[vgraph.VersionID]int{}
	for _, v := range tree.SubtreeVersions(tree.Root) {
		assignment[v] = 0
	}
	cost := EstimateTreeCost(tree, vgraph.NewPartitioning(assignment))
	if cost.Storage != tree.DistinctRecords() {
		t.Errorf("storage = %d, want %d", cost.Storage, tree.DistinctRecords())
	}
	if cost.MaxCheckout != tree.DistinctRecords() {
		t.Errorf("max checkout = %d, want %d", cost.MaxCheckout, tree.DistinctRecords())
	}
}

// Property: for any δ in (0,1], every version is assigned exactly once and
// the estimated storage is at least |R|.
func TestLyreSplitAssignmentProperty(t *testing.T) {
	tree := figure54Tree(t)
	f := func(x uint8) bool {
		delta := (float64(x%100) + 1) / 100
		res, err := LyreSplit(tree, delta, LyreSplitOptions{})
		if err != nil {
			return false
		}
		if len(res.Partitioning.Assignment) != tree.NumVersions() {
			return false
		}
		return res.EstimatedStorage >= tree.DistinctRecords()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
