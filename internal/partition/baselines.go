package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/recset"
	"repro/internal/vgraph"
)

// This file implements the two baseline partitioners adapted from the NScale
// graph-partitioning project (Section 5.5.1): an agglomerative
// clustering-based algorithm (Agglo) and a k-means clustering-based algorithm
// (Kmeans). Both operate on the version-record bipartite graph, which is why
// they are orders of magnitude slower than LyreSplit on large workloads
// (Figures 5.10 and 5.12).

// AggloOptions configures the agglomerative baseline.
type AggloOptions struct {
	// Capacity is BC, the maximum number of records allowed per partition;
	// 0 means unlimited.
	Capacity int64
	// Lookahead is l, how many following partitions (in shingle order) are
	// considered as merge candidates for each partition. Defaults to 100.
	Lookahead int
	// Shingles is the number of min-hash shingles per partition signature.
	// Defaults to 16.
	Shingles int
	// Threshold is τ, the minimum number of common shingles required to
	// merge. Defaults to 1.
	Threshold int
}

// Agglo partitions versions by iteratively merging partitions that share
// many records, following the shingle-ordered agglomerative scheme of NScale
// (Algorithm 4 in the NScale paper, adapted to version-record graphs).
func Agglo(b *vgraph.Bipartite, opts AggloOptions) (vgraph.Partitioning, error) {
	if b.NumVersions() == 0 {
		return vgraph.Partitioning{}, fmt.Errorf("partition: empty bipartite graph")
	}
	if opts.Lookahead <= 0 {
		opts.Lookahead = 100
	}
	if opts.Shingles <= 0 {
		opts.Shingles = 16
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	type cluster struct {
		versions []vgraph.VersionID
		records  *recset.Set
		sig      []uint64
	}
	hashRecord := func(seed uint64, r vgraph.RecordID) uint64 {
		x := uint64(r)*2654435761 + seed*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
	signature := func(records *recset.Set) []uint64 {
		sig := make([]uint64, opts.Shingles)
		for i := range sig {
			min := uint64(1<<63 - 1)
			records.ForEach(func(r int64) bool {
				if h := hashRecord(uint64(i+1), vgraph.RecordID(r)); h < min {
					min = h
				}
				return true
			})
			sig[i] = min
		}
		return sig
	}
	commonShingles := func(a, c []uint64) int {
		n := 0
		for i := range a {
			if a[i] == c[i] {
				n++
			}
		}
		return n
	}

	clusters := make([]*cluster, 0, b.NumVersions())
	for _, v := range b.Versions() {
		// Clone: clusters union records in place as they merge, and the
		// bipartite graph's sets are shared read-only.
		c := &cluster{versions: []vgraph.VersionID{v}, records: b.RecordSet(v).Clone()}
		c.sig = signature(c.records)
		clusters = append(clusters, c)
	}

	merged := true
	for merged {
		merged = false
		// Order clusters by their signature (shingle ordering).
		sort.Slice(clusters, func(i, j int) bool {
			a, c := clusters[i].sig, clusters[j].sig
			for k := range a {
				if a[k] != c[k] {
					return a[k] < c[k]
				}
			}
			return clusters[i].versions[0] < clusters[j].versions[0]
		})
		used := make([]bool, len(clusters))
		var next []*cluster
		for i, c := range clusters {
			if used[i] {
				continue
			}
			used[i] = true
			bestJ := -1
			bestCommon := opts.Threshold - 1
			limit := i + opts.Lookahead
			if limit > len(clusters)-1 {
				limit = len(clusters) - 1
			}
			for j := i + 1; j <= limit; j++ {
				if used[j] {
					continue
				}
				cand := clusters[j]
				common := commonShingles(c.sig, cand.sig)
				if common <= bestCommon {
					continue
				}
				if opts.Capacity > 0 && recset.OrLen(c.records, cand.records) > opts.Capacity {
					continue
				}
				bestCommon = common
				bestJ = j
			}
			if bestJ >= 0 {
				cand := clusters[bestJ]
				used[bestJ] = true
				c.versions = append(c.versions, cand.versions...)
				c.records.UnionWith(cand.records)
				c.sig = signature(c.records)
				merged = true
			}
			next = append(next, c)
		}
		clusters = next
	}

	assignment := make(map[vgraph.VersionID]int)
	for k, c := range clusters {
		for _, v := range c.versions {
			assignment[v] = k
		}
	}
	return vgraph.NewPartitioning(assignment), nil
}

// KmeansOptions configures the k-means baseline.
type KmeansOptions struct {
	// K is the number of partitions.
	K int
	// Capacity is BC, the per-partition record limit; 0 means unlimited.
	Capacity int64
	// Iterations is the number of refinement passes (default 10, matching
	// the paper's setup).
	Iterations int
	// Seed makes the random initialization reproducible.
	Seed int64
}

// Kmeans partitions versions by clustering them around K record-set
// centroids (Algorithm 5 of NScale adapted to version-record graphs).
func Kmeans(b *vgraph.Bipartite, opts KmeansOptions) (vgraph.Partitioning, error) {
	n := b.NumVersions()
	if n == 0 {
		return vgraph.Partitioning{}, fmt.Errorf("partition: empty bipartite graph")
	}
	if opts.K <= 0 {
		return vgraph.Partitioning{}, fmt.Errorf("partition: K must be positive, got %d", opts.K)
	}
	if opts.K > n {
		opts.K = n
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 10
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	versions := b.Versions()

	// Initialize centroids from K random versions; centroids are replaced
	// wholesale each iteration, so sharing the bipartite graph's sets is safe.
	perm := rng.Perm(n)
	centroids := make([]*recset.Set, opts.K)
	for k := 0; k < opts.K; k++ {
		centroids[k] = b.RecordSet(versions[perm[k]])
	}
	assignment := make(map[vgraph.VersionID]int, n)

	for iter := 0; iter < opts.Iterations; iter++ {
		sizes := make([]int64, opts.K)
		members := make([][]vgraph.VersionID, opts.K)
		for _, v := range versions {
			// Assign to the centroid with the greatest record overlap that
			// still has capacity; fall back to the emptiest partition.
			vs := b.RecordSet(v)
			bestK, bestOverlap := -1, int64(-1)
			for k := 0; k < opts.K; k++ {
				if opts.Capacity > 0 && sizes[k]+vs.Len() > opts.Capacity {
					continue
				}
				if o := recset.AndLen(vs, centroids[k]); o > bestOverlap {
					bestOverlap, bestK = o, k
				}
			}
			if bestK < 0 {
				bestK = 0
				for k := 1; k < opts.K; k++ {
					if sizes[k] < sizes[bestK] {
						bestK = k
					}
				}
			}
			assignment[v] = bestK
			members[bestK] = append(members[bestK], v)
			sizes[bestK] += vs.Len()
		}
		// Update centroids to the union of member records.
		for k := 0; k < opts.K; k++ {
			c := b.UnionSet(members[k])
			if !c.IsEmpty() {
				centroids[k] = c
			}
		}
	}
	return vgraph.NewPartitioning(assignment), nil
}

// SolveStorageConstraintAgglo answers Problem 5.1 with the Agglo baseline by
// binary searching the capacity BC for the largest checkout improvement whose
// exact storage stays within gamma records.
func SolveStorageConstraintAgglo(b *vgraph.Bipartite, gamma int64, opts AggloOptions) (vgraph.Partitioning, vgraph.PartitionCost, error) {
	lo, hi := b.NumRecords(), b.NumEdges()
	var best vgraph.Partitioning
	var bestCost vgraph.PartitionCost
	found := false
	for iter := 0; iter < 20 && lo <= hi; iter++ {
		mid := (lo + hi) / 2
		opts.Capacity = mid
		p, err := Agglo(b, opts)
		if err != nil {
			return vgraph.Partitioning{}, vgraph.PartitionCost{}, err
		}
		cost := b.EvaluatePartitioning(p)
		if cost.Storage <= gamma {
			if !found || cost.AvgCheckout < bestCost.AvgCheckout {
				best, bestCost, found = p, cost, true
			}
			// Smaller capacities create more partitions: try allowing less per
			// partition to reduce checkout cost further.
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		// Fall back to a single partition, which always satisfies S = |R| ≤ γ
		// when γ ≥ |R|.
		assignment := make(map[vgraph.VersionID]int)
		for _, v := range b.Versions() {
			assignment[v] = 0
		}
		best = vgraph.NewPartitioning(assignment)
		bestCost = b.EvaluatePartitioning(best)
		if bestCost.Storage > gamma {
			return vgraph.Partitioning{}, vgraph.PartitionCost{}, fmt.Errorf("partition: no Agglo partitioning satisfies storage threshold %d", gamma)
		}
	}
	return best, bestCost, nil
}

// SolveStorageConstraintKmeans answers Problem 5.1 with the Kmeans baseline
// by binary searching K for the lowest checkout cost within the storage
// threshold.
func SolveStorageConstraintKmeans(b *vgraph.Bipartite, gamma int64, opts KmeansOptions) (vgraph.Partitioning, vgraph.PartitionCost, error) {
	lo, hi := 1, b.NumVersions()
	var best vgraph.Partitioning
	var bestCost vgraph.PartitionCost
	found := false
	for iter := 0; iter < 20 && lo <= hi; iter++ {
		mid := (lo + hi) / 2
		opts.K = mid
		p, err := Kmeans(b, opts)
		if err != nil {
			return vgraph.Partitioning{}, vgraph.PartitionCost{}, err
		}
		cost := b.EvaluatePartitioning(p)
		if cost.Storage <= gamma {
			if !found || cost.AvgCheckout < bestCost.AvgCheckout {
				best, bestCost, found = p, cost, true
			}
			lo = mid + 1 // more partitions reduce checkout, cost storage
		} else {
			hi = mid - 1
		}
	}
	if !found {
		return vgraph.Partitioning{}, vgraph.PartitionCost{}, fmt.Errorf("partition: no Kmeans partitioning satisfies storage threshold %d", gamma)
	}
	return best, bestCost, nil
}
