package partition_test

import (
	"testing"

	"repro/internal/benchmark"
	"repro/internal/vgraph"

	. "repro/internal/partition"
)

func smallBipartite(t testing.TB) *benchmark.Workload {
	t.Helper()
	cfg := benchmark.Config{
		Kind: benchmark.SCI, Name: "small", Branches: 6, VersionsPerBranch: 5,
		TargetRecords: 1500, InsertsPerVersion: 40, Attributes: 6,
		UpdateFraction: 0.3, DeleteFraction: 0.02, Seed: 5,
	}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAggloProducesValidPartitioning(t *testing.T) {
	w := smallBipartite(t)
	p, err := Agglo(w.Bipartite, AggloOptions{Capacity: w.Bipartite.NumRecords() / 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignment) != w.Bipartite.NumVersions() {
		t.Fatalf("assignment covers %d versions, want %d", len(p.Assignment), w.Bipartite.NumVersions())
	}
	cost := w.Bipartite.EvaluatePartitioning(p)
	if cost.Storage < w.Bipartite.NumRecords() || cost.Storage > w.Bipartite.NumEdges() {
		t.Errorf("storage %d outside [|R|=%d, |E|=%d]", cost.Storage, w.Bipartite.NumRecords(), w.Bipartite.NumEdges())
	}
	if _, err := Agglo(vgraph.NewBipartite(), AggloOptions{}); err == nil {
		t.Error("empty bipartite graph should fail")
	}
}

func TestAggloCapacityLimitsPartitionSize(t *testing.T) {
	w := smallBipartite(t)
	cap := w.Bipartite.NumRecords() / 4
	p, err := Agglo(w.Bipartite, AggloOptions{Capacity: cap})
	if err != nil {
		t.Fatal(err)
	}
	cost := w.Bipartite.EvaluatePartitioning(p)
	for k, rk := range cost.PartitionRecords {
		// A single version may exceed the cap on its own; merged partitions
		// must not exceed it by much more than one version's worth.
		if cost.PartitionVersions[k] > 1 && rk > cap*2 {
			t.Errorf("partition %d has %d records, capacity %d", k, rk, cap)
		}
	}
}

func TestKmeansProducesValidPartitioning(t *testing.T) {
	w := smallBipartite(t)
	p, err := Kmeans(w.Bipartite, KmeansOptions{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignment) != w.Bipartite.NumVersions() {
		t.Fatalf("assignment covers %d versions, want %d", len(p.Assignment), w.Bipartite.NumVersions())
	}
	if p.NumPartitions > 5 {
		t.Errorf("Kmeans produced %d partitions with K=5", p.NumPartitions)
	}
	if _, err := Kmeans(w.Bipartite, KmeansOptions{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Kmeans(vgraph.NewBipartite(), KmeansOptions{K: 2}); err == nil {
		t.Error("empty bipartite graph should fail")
	}
	// K larger than |V| is clamped.
	if p2, err := Kmeans(w.Bipartite, KmeansOptions{K: 10000, Seed: 3}); err != nil || p2.NumPartitions > w.Bipartite.NumVersions() {
		t.Errorf("K clamp failed: %v, %d partitions", err, p2.NumPartitions)
	}
}

func TestKmeansMorePartitionsReduceCheckout(t *testing.T) {
	w := smallBipartite(t)
	p1, err := Kmeans(w.Bipartite, KmeansOptions{K: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Kmeans(w.Bipartite, KmeansOptions{K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c1 := w.Bipartite.EvaluatePartitioning(p1)
	c8 := w.Bipartite.EvaluatePartitioning(p8)
	if c8.AvgCheckout > c1.AvgCheckout {
		t.Errorf("K=8 checkout %g should not exceed K=1 checkout %g", c8.AvgCheckout, c1.AvgCheckout)
	}
	if c8.Storage < c1.Storage {
		t.Errorf("K=8 storage %d should not be below K=1 storage %d", c8.Storage, c1.Storage)
	}
}

func TestSolveStorageConstraintBaselines(t *testing.T) {
	w := smallBipartite(t)
	gamma := 2 * w.Bipartite.NumRecords()
	_, aggloCost, err := SolveStorageConstraintAgglo(w.Bipartite, gamma, AggloOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if aggloCost.Storage > gamma {
		t.Errorf("Agglo storage %d exceeds γ %d", aggloCost.Storage, gamma)
	}
	_, kmeansCost, err := SolveStorageConstraintKmeans(w.Bipartite, gamma, KmeansOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if kmeansCost.Storage > gamma {
		t.Errorf("Kmeans storage %d exceeds γ %d", kmeansCost.Storage, gamma)
	}
}

func TestLyreSplitDominatesBaselinesOnCheckout(t *testing.T) {
	// The paper's effectiveness result (Figure 5.8): at equal storage budget,
	// LyreSplit's checkout cost is at least as good as the baselines' (we
	// allow a small tolerance since these are heuristics on a small sample).
	w := smallBipartite(t)
	tree, err := w.Tree()
	if err != nil {
		t.Fatal(err)
	}
	gamma := 2 * w.Bipartite.NumRecords()
	ls, err := SolveStorageConstraint(tree, gamma, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lsCost := w.Bipartite.EvaluatePartitioning(ls.Partitioning)
	_, aggloCost, err := SolveStorageConstraintAgglo(w.Bipartite, gamma, AggloOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lsCost.AvgCheckout > aggloCost.AvgCheckout*1.25 {
		t.Errorf("LyreSplit checkout %g much worse than Agglo %g at the same budget", lsCost.AvgCheckout, aggloCost.AvgCheckout)
	}
}
