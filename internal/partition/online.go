package partition

import (
	"fmt"
	"sort"

	"repro/internal/cvd"
	"repro/internal/recset"
	"repro/internal/vgraph"
)

// OnlineDecision is the outcome of the online-maintenance rule for a newly
// committed version (Section 5.4).
type OnlineDecision struct {
	// NewPartition is true when the version should start its own partition.
	NewPartition bool
	// Partition is the existing partition to join when NewPartition is false.
	Partition int
	// TriggerMigration is true when the current checkout cost has drifted
	// beyond the tolerance factor µ of the best achievable cost and the
	// migration engine should be invoked.
	TriggerMigration bool
	// CurrentAvgCheckout and BestAvgCheckout report the costs used for the
	// migration decision (tree-model estimates, in records).
	CurrentAvgCheckout float64
	BestAvgCheckout    float64
}

// OnlineMaintainer implements incremental partitioning: as versions are
// committed it decides where each one goes, tracks the drift between the
// current checkout cost and the cost LyreSplit could achieve, and signals
// when migration should run.
type OnlineMaintainer struct {
	// DeltaStar is δ*, the splitting parameter used by the last LyreSplit
	// invocation.
	DeltaStar float64
	// Gamma is the storage threshold in records.
	Gamma int64
	// Mu is the tolerance factor µ on checkout-cost drift (µ ≥ 1).
	Mu float64

	assignment map[vgraph.VersionID]int
	numParts   int
}

// NewOnlineMaintainer starts online maintenance from an existing partitioning.
func NewOnlineMaintainer(p vgraph.Partitioning, deltaStar float64, gamma int64, mu float64) *OnlineMaintainer {
	assignment := make(map[vgraph.VersionID]int, len(p.Assignment))
	for v, k := range p.Assignment {
		assignment[v] = k
	}
	if mu < 1 {
		mu = 1
	}
	return &OnlineMaintainer{
		DeltaStar:  deltaStar,
		Gamma:      gamma,
		Mu:         mu,
		assignment: assignment,
		numParts:   p.NumPartitions,
	}
}

// Partitioning returns the current assignment.
func (o *OnlineMaintainer) Partitioning() vgraph.Partitioning {
	return vgraph.NewPartitioning(o.assignment)
}

// OnCommit decides where a newly committed version goes. parent is the
// parent sharing the most records with the version (ties broken arbitrarily),
// shared is that shared record count, totalRecords is the current |R| of the
// CVD, and currentStorage is the current Σ_k |R_k|.
//
// Rule (Section 5.4): if w(v, parent) ≤ δ*·|R| and S < γ, create a new
// partition; otherwise the version joins its parent's partition.
func (o *OnlineMaintainer) OnCommit(v vgraph.VersionID, parent vgraph.VersionID, shared, totalRecords, currentStorage int64) OnlineDecision {
	parentPartition, hasParent := o.assignment[parent]
	dec := OnlineDecision{Partition: parentPartition}
	if !hasParent {
		dec.NewPartition = true
	} else if float64(shared) <= o.DeltaStar*float64(totalRecords) && currentStorage < o.Gamma {
		dec.NewPartition = true
	}
	if dec.NewPartition {
		dec.Partition = o.numParts
		o.numParts++
	}
	o.assignment[v] = dec.Partition
	return dec
}

// CheckDrift compares the current checkout cost against the best cost
// LyreSplit can achieve on the full tree and reports whether migration
// should be triggered (Cavg > µ·C*avg).
func (o *OnlineMaintainer) CheckDrift(t *vgraph.Tree) (OnlineDecision, error) {
	cur := EstimateTreeCost(t, o.Partitioning())
	best, err := SolveStorageConstraint(t, o.Gamma, LyreSplitOptions{})
	if err != nil {
		return OnlineDecision{}, err
	}
	dec := OnlineDecision{
		CurrentAvgCheckout: cur.AvgCheckout,
		BestAvgCheckout:    best.EstimatedAvgCheckout,
	}
	if best.EstimatedAvgCheckout > 0 && cur.AvgCheckout > o.Mu*best.EstimatedAvgCheckout {
		dec.TriggerMigration = true
	}
	return dec, nil
}

// AdoptPartitioning replaces the maintained assignment after a migration and
// records the δ* it was produced with.
func (o *OnlineMaintainer) AdoptPartitioning(p vgraph.Partitioning, deltaStar float64) {
	o.assignment = make(map[vgraph.VersionID]int, len(p.Assignment))
	for v, k := range p.Assignment {
		o.assignment[v] = k
	}
	o.numParts = p.NumPartitions
	o.DeltaStar = deltaStar
}

// MigrationPlan pairs the per-partition operations with the estimated number
// of record modifications they require.
type MigrationPlan struct {
	Ops []cvd.MigrationOp
	// EstimatedModifications is Σ over transformed partitions of
	// |R'_i \ R_j| + |R_j \ R'_i| plus the size of partitions built from
	// scratch.
	EstimatedModifications int64
}

// PlanMigration matches each new partition with the closest existing
// partition (smallest modification cost), greedily, using exact record sets
// from the bipartite graph. A new partition whose modification cost exceeds
// its own size is rebuilt from scratch instead (Section 5.4).
func PlanMigration(b *vgraph.Bipartite, old, new vgraph.Partitioning) (MigrationPlan, error) {
	if b == nil {
		return MigrationPlan{}, fmt.Errorf("partition: nil bipartite graph")
	}
	oldGroups := old.Groups()
	newGroups := new.Groups()
	oldRecords := make([]*recset.Set, len(oldGroups))
	for j, vs := range oldGroups {
		oldRecords[j] = b.UnionSet(vs)
	}
	type pair struct {
		newIdx, oldIdx int
		cost           int64
	}
	var pairs []pair
	newRecords := make([]*recset.Set, len(newGroups))
	for i, vs := range newGroups {
		newRecords[i] = b.UnionSet(vs)
		for j := range oldGroups {
			// |R'_i \ R_j| + |R_j \ R'_i| from cardinalities alone: the
			// symmetric difference needs only one intersection count.
			common := recset.AndLen(newRecords[i], oldRecords[j])
			missing := newRecords[i].Len() - common
			extra := oldRecords[j].Len() - common
			pairs = append(pairs, pair{newIdx: i, oldIdx: j, cost: missing + extra})
		}
	}
	sort.Slice(pairs, func(a, c int) bool {
		if pairs[a].cost != pairs[c].cost {
			return pairs[a].cost < pairs[c].cost
		}
		if pairs[a].newIdx != pairs[c].newIdx {
			return pairs[a].newIdx < pairs[c].newIdx
		}
		return pairs[a].oldIdx < pairs[c].oldIdx
	})
	assignedNew := make(map[int]bool)
	assignedOld := make(map[int]bool)
	match := make(map[int]int) // new -> old
	cost := make(map[int]int64)
	for _, p := range pairs {
		if assignedNew[p.newIdx] || assignedOld[p.oldIdx] {
			continue
		}
		assignedNew[p.newIdx] = true
		assignedOld[p.oldIdx] = true
		match[p.newIdx] = p.oldIdx
		cost[p.newIdx] = p.cost
	}
	plan := MigrationPlan{}
	for i, vs := range newGroups {
		op := cvd.MigrationOp{NewPartition: i, FromPartition: -1, Versions: vs}
		size := newRecords[i].Len()
		if j, ok := match[i]; ok && cost[i] <= size {
			op.FromPartition = j
			plan.EstimatedModifications += cost[i]
		} else {
			plan.EstimatedModifications += size
		}
		plan.Ops = append(plan.Ops, op)
	}
	return plan, nil
}
