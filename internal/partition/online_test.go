package partition_test

import (
	"testing"

	"repro/internal/benchmark"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"

	. "repro/internal/partition"
)

func TestOnlineMaintainerOnCommit(t *testing.T) {
	initial := vgraph.NewPartitioning(map[vgraph.VersionID]int{1: 0, 2: 0})
	o := NewOnlineMaintainer(initial, 0.1, 1000, 1.5)

	// Version 3 shares many records with its parent 2 -> joins partition 0.
	dec := o.OnCommit(3, 2, 90, 100, 120)
	if dec.NewPartition || dec.Partition != 0 {
		t.Errorf("high-overlap commit should join parent's partition: %+v", dec)
	}
	// Version 4 shares few records with parent 3 and storage is under γ ->
	// new partition.
	dec = o.OnCommit(4, 3, 5, 100, 120)
	if !dec.NewPartition {
		t.Errorf("low-overlap commit should open a new partition: %+v", dec)
	}
	// Version 5 shares few records but storage is at the threshold -> join.
	dec = o.OnCommit(5, 4, 5, 100, 1000)
	if dec.NewPartition {
		t.Errorf("commit at the storage threshold should not open a partition: %+v", dec)
	}
	// A version whose parent is unknown starts its own partition.
	dec = o.OnCommit(10, 99, 0, 100, 0)
	if !dec.NewPartition {
		t.Error("unknown parent should force a new partition")
	}
	p := o.Partitioning()
	if len(p.Assignment) != 6 {
		t.Errorf("maintainer tracks %d versions, want 6", len(p.Assignment))
	}
}

func TestOnlineMaintainerDriftAndAdopt(t *testing.T) {
	cfg := benchmark.Config{Kind: benchmark.SCI, Name: "drift", Branches: 8, VersionsPerBranch: 6,
		TargetRecords: 2000, InsertsPerVersion: 60, Attributes: 6, UpdateFraction: 0.3, Seed: 21}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := w.Tree()
	if err != nil {
		t.Fatal(err)
	}
	gamma := 2 * tree.DistinctRecords()
	// Deliberately bad current partitioning: everything in one partition.
	all := map[vgraph.VersionID]int{}
	for _, v := range tree.SubtreeVersions(tree.Root) {
		all[v] = 0
	}
	o := NewOnlineMaintainer(vgraph.NewPartitioning(all), 0.1, gamma, 1.5)
	dec, err := o.CheckDrift(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.TriggerMigration {
		t.Errorf("single-partition layout should exceed µ=1.5 drift: cur=%g best=%g", dec.CurrentAvgCheckout, dec.BestAvgCheckout)
	}
	// Adopt the optimizer's partitioning; drift disappears.
	best, err := SolveStorageConstraint(tree, gamma, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o.AdoptPartitioning(best.Partitioning, best.Delta)
	dec, err = o.CheckDrift(tree)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TriggerMigration {
		t.Errorf("freshly adopted partitioning should not trigger migration: cur=%g best=%g", dec.CurrentAvgCheckout, dec.BestAvgCheckout)
	}
}

func TestPlanMigrationReusesClosePartitions(t *testing.T) {
	w := smallBipartite(t)
	versions := w.Bipartite.Versions()
	// Old: split versions in half by id. New: same split with a handful of
	// versions moved, so both new partitions should reuse old ones.
	old := map[vgraph.VersionID]int{}
	new_ := map[vgraph.VersionID]int{}
	for i, v := range versions {
		if i < len(versions)/2 {
			old[v] = 0
		} else {
			old[v] = 1
		}
		if i < len(versions)/2+2 {
			new_[v] = 0
		} else {
			new_[v] = 1
		}
	}
	oldP := vgraph.NewPartitioning(old)
	newP := vgraph.NewPartitioning(new_)
	plan, err := PlanMigration(w.Bipartite, oldP, newP)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) != newP.NumPartitions {
		t.Fatalf("plan has %d ops, want %d", len(plan.Ops), newP.NumPartitions)
	}
	reused := 0
	for _, op := range plan.Ops {
		if op.FromPartition >= 0 {
			reused++
		}
	}
	if reused != 2 {
		t.Errorf("expected both partitions to be transformed in place, got %d", reused)
	}
	// The intelligent plan's modification estimate is below a full rebuild.
	full := w.Bipartite.EvaluatePartitioning(newP).Storage
	if plan.EstimatedModifications >= full {
		t.Errorf("intelligent migration (%d mods) should beat full rebuild (%d records)", plan.EstimatedModifications, full)
	}
	if _, err := PlanMigration(nil, oldP, newP); err == nil {
		t.Error("nil bipartite graph should fail")
	}
}

func TestEndToEndOnlinePartitioningWithMigration(t *testing.T) {
	// Streaming scenario of Section 5.5.4 in miniature: load a CVD, partition
	// it, commit more versions with online maintenance, detect drift, plan an
	// intelligent migration and apply it; checkouts stay correct throughout.
	cfg := benchmark.Config{Kind: benchmark.SCI, Name: "online", Branches: 4, VersionsPerBranch: 4,
		TargetRecords: 600, InsertsPerVersion: 30, Attributes: 6, UpdateFraction: 0.3, Seed: 33}
	w, err := benchmark.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDatabase("db")
	c, err := benchmark.LoadCVD(db, "online", w, cvd.SplitByRlist)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := vgraph.ToTree(c.Graph())
	if err != nil {
		t.Fatal(err)
	}
	gamma := 2 * tree.DistinctRecords()
	res, err := SolveStorageConstraint(tree, gamma, LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Rlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyPartitioning(res.Partitioning); err != nil {
		t.Fatal(err)
	}
	o := NewOnlineMaintainer(res.Partitioning, res.Delta, gamma, 1.2)

	// Commit 10 new versions, each derived from the current latest version.
	latest, _ := c.LatestVersion()
	for i := 0; i < 10; i++ {
		rows := w.Rows(latest)
		// Append a handful of new rows so each commit adds records.
		for j := 0; j < 20; j++ {
			row := make(relstore.Row, len(w.Schema.Columns))
			row[0] = relstore.Int(int64(1_000_000 + i*100 + j))
			for k := 1; k < len(row); k++ {
				row[k] = relstore.Int(int64(j * k))
			}
			rows = append(rows, row)
		}
		v, err := c.Commit([]vgraph.VersionID{latest}, rows, w.Schema, "stream", "")
		if err != nil {
			t.Fatal(err)
		}
		shared := c.Graph().Edge(latest, v).Weight
		dec := o.OnCommit(v, latest, shared, c.NumRecords(), m.DataRecordCount())
		if _, err := m.OnlineAssign(v, dec.Partition, dec.NewPartition, c.RecordsOf(v), nil); err != nil {
			t.Fatal(err)
		}
		latest = v
	}
	// Checkouts remain correct after online maintenance.
	tab, err := c.Checkout([]vgraph.VersionID{latest}, "onlineco")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(c.RecordsOf(latest)) {
		t.Errorf("checkout after online maintenance has %d rows, want %d", tab.Len(), len(c.RecordsOf(latest)))
	}
	c.DiscardCheckout("onlineco")

	// Recompute the best partitioning, plan an intelligent migration, apply.
	tree2, err := vgraph.ToTree(c.Graph())
	if err != nil {
		t.Fatal(err)
	}
	best, err := SolveStorageConstraint(tree2, 2*tree2.DistinctRecords(), LyreSplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanMigration(c.Bipartite(), o.Partitioning(), best.Partitioning)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Migrate(best.Partitioning, plan.Ops); err != nil {
		t.Fatal(err)
	}
	o.AdoptPartitioning(best.Partitioning, best.Delta)
	// All versions still check out with the right number of records.
	for _, v := range c.Versions() {
		tab, err := c.Checkout([]vgraph.VersionID{v}, "postmig")
		if err != nil {
			t.Fatalf("checkout v%d after migration: %v", v, err)
		}
		if tab.Len() != len(c.RecordsOf(v)) {
			t.Errorf("checkout(v%d) = %d rows, want %d", v, tab.Len(), len(c.RecordsOf(v)))
		}
		c.DiscardCheckout("postmig")
	}
}
