// Package partition implements the partition optimizer of Chapter 5: the
// LyreSplit algorithm and its generalizations (DAGs, weighted checkout
// frequencies, schema changes), the Agglo and Kmeans baselines adapted from
// NScale, the online maintenance rule, and the migration planner.
//
// Partitioners take a version tree (or the version-record bipartite graph for
// the baselines) and produce a vgraph.Partitioning assigning every version to
// exactly one partition; records may be replicated across partitions. The
// split-by-rlist data model (package cvd) knows how to physically apply a
// partitioning.
package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/vgraph"
)

// LyreSplitResult reports the partitioning produced by LyreSplit together
// with the tree-model cost estimates used during the search.
type LyreSplitResult struct {
	Partitioning vgraph.Partitioning
	// Delta is the δ parameter the partitioning was produced with.
	Delta float64
	// EstimatedStorage is Σ_k |R_k| under the tree model (records).
	EstimatedStorage int64
	// EstimatedTotalCheckout is Σ_k |V_k|·|R_k| under the tree model.
	EstimatedTotalCheckout int64
	// EstimatedAvgCheckout is EstimatedTotalCheckout / |V|.
	EstimatedAvgCheckout float64
	// Levels is the recursion depth ℓ reached by the splitting.
	Levels int
}

// LyreSplitOptions tunes the algorithm.
type LyreSplitOptions struct {
	// UseAttributes enables the schema-change-aware candidate rule of
	// Section 5.3.3: an edge is splittable when a(vi,vj)·w(vi,vj) ≤ δ·|A||R|.
	UseAttributes bool
	// Workers bounds the parallelism of the candidate-evaluation loop when a
	// part has many splittable edges; 0 or 1 evaluates candidates inline. The
	// chosen cut is identical regardless of the worker count: candidates are
	// scored in parallel but reduced sequentially in version-id order.
	Workers int
}

// part is one connected piece of the version tree during recursion.
type part struct {
	root    vgraph.VersionID
	members map[vgraph.VersionID]bool
	nV      int
	nR      int64 // tree-model distinct records
	nE      int64 // bipartite edges Σ|R(v)| over members
	level   int
}

// LyreSplit partitions the version tree with parameter δ (Algorithm 5.1).
// It recursively splits any part whose tree-model checkout cost is at least
// |E|/δ of its share, cutting an edge whose weight is at most δ·|R| and
// preferring the cut that balances version counts (ties broken on records).
func LyreSplit(t *vgraph.Tree, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	if err := t.Validate(); err != nil {
		return LyreSplitResult{}, err
	}
	if delta <= 0 || delta > 1 {
		return LyreSplitResult{}, fmt.Errorf("partition: delta %g out of range (0, 1]", delta)
	}
	if opts.Workers <= 0 {
		// Parallel candidate evaluation is strictly opt-in.
		opts.Workers = 1
	}
	totalAttrs := maxAttrs(t)

	root := &part{root: t.Root, members: make(map[vgraph.VersionID]bool, t.NumVersions())}
	for _, v := range t.SubtreeVersions(t.Root) {
		root.members[v] = true
	}
	fillStats(t, root)

	assignment := make(map[vgraph.VersionID]int)
	var finished []*part
	maxLevel := 0
	queue := []*part{root}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if p.level > maxLevel {
			maxLevel = p.level
		}
		if !needsSplit(p, delta) {
			finished = append(finished, p)
			continue
		}
		cutChild, ok := pickSplitEdge(t, p, delta, opts.UseAttributes, totalAttrs, opts.Workers)
		if !ok {
			// No eligible edge (can happen for degenerate weights); keep as is.
			finished = append(finished, p)
			continue
		}
		left, right := splitPart(t, p, cutChild)
		queue = append(queue, left, right)
	}
	res := LyreSplitResult{Delta: delta, Levels: maxLevel}
	for i, p := range finished {
		for v := range p.members {
			assignment[v] = i
		}
		res.EstimatedStorage += p.nR
		res.EstimatedTotalCheckout += p.nR * int64(p.nV)
	}
	res.Partitioning = vgraph.NewPartitioning(assignment)
	if n := t.NumVersions(); n > 0 {
		res.EstimatedAvgCheckout = float64(res.EstimatedTotalCheckout) / float64(n)
	}
	return res, nil
}

// needsSplit implements the termination test of Algorithm 5.1:
// keep the part whole when |R|·|V| ≤ |E|/δ (so that at the minimum
// meaningful δ = |E|/(|R||V|) the whole tree stays in one partition).
func needsSplit(p *part, delta float64) bool {
	if p.nV <= 1 {
		return false
	}
	return float64(p.nR)*float64(p.nV) > float64(p.nE)/delta
}

// fillStats computes nV, nR, nE for a part.
func fillStats(t *vgraph.Tree, p *part) {
	p.nV = len(p.members)
	p.nE = 0
	p.nR = 0
	for v := range p.members {
		p.nE += t.Records[v]
		if v == p.root {
			p.nR += t.Records[v]
		} else {
			p.nR += t.Records[v] - t.Weight[v]
		}
	}
}

// subtreeStats holds per-node subtree aggregates within a part.
type subtreeStats struct {
	nV int
	nR int64
	nE int64
}

// computeSubtreeStats returns, for every member v of the part, the stats of
// the subtree rooted at v restricted to the part (v contributing its full
// |R(v)| as the subtree root).
func computeSubtreeStats(t *vgraph.Tree, p *part) map[vgraph.VersionID]subtreeStats {
	stats := make(map[vgraph.VersionID]subtreeStats, len(p.members))
	// Post-order traversal from the part root.
	type frame struct {
		v       vgraph.VersionID
		childIx int
	}
	children := func(v vgraph.VersionID) []vgraph.VersionID {
		var out []vgraph.VersionID
		for _, c := range t.Children[v] {
			if p.members[c] {
				out = append(out, c)
			}
		}
		return out
	}
	var stack []frame
	stack = append(stack, frame{v: p.root})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := children(f.v)
		if f.childIx < len(kids) {
			next := kids[f.childIx]
			f.childIx++
			stack = append(stack, frame{v: next})
			continue
		}
		// All children processed.
		s := subtreeStats{nV: 1, nR: t.Records[f.v], nE: t.Records[f.v]}
		for _, c := range kids {
			cs := stats[c]
			s.nV += cs.nV
			s.nE += cs.nE
			// The child subtree's records minus the overlap along the cut edge
			// are new with respect to f.v's subtree when merged... within one
			// partition the tree-model distinct count composes as
			// R(parent-subtree) = R(parent) + Σ_c (R_subtree(c) - w(c)).
			s.nR += cs.nR - t.Weight[c]
		}
		stats[f.v] = s
		stack = stack[:len(stack)-1]
	}
	return stats
}

// parallelCandidateMin is the candidate count below which pickSplitEdge
// always scores sequentially; smaller parts don't amortize the fan-out.
const parallelCandidateMin = 512

// edgeScore is one candidate edge's evaluation under the balancing rule.
type edgeScore struct {
	eligible bool
	vDiff    float64
	rDiff    float64
}

// pickSplitEdge chooses the edge to cut among those with weight ≤ δ|R|
// (or a(e)·w(e) ≤ δ·|A||R| in attribute-aware mode). It prefers the edge
// that best balances the number of versions between the two sides, breaking
// ties by balancing records. With workers > 1 and enough candidates the
// per-candidate evaluation fans out over the worker pool; the reduction
// stays sequential in version-id order so the chosen cut is identical to the
// single-threaded loop.
func pickSplitEdge(t *vgraph.Tree, p *part, delta float64, useAttrs bool, totalAttrs, workers int) (vgraph.VersionID, bool) {
	stats := computeSubtreeStats(t, p)
	threshold := delta * float64(p.nR)
	// Deterministic iteration order.
	candidates := make([]vgraph.VersionID, 0, len(p.members))
	for v := range p.members {
		if v == p.root {
			continue
		}
		candidates = append(candidates, v)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	score := func(i int) edgeScore {
		v := candidates[i]
		w := float64(t.Weight[v])
		if useAttrs {
			a := t.CommonAttrs[v]
			if a <= 0 {
				a = totalAttrs
			}
			if float64(a)*w > delta*float64(totalAttrs)*float64(p.nR) {
				return edgeScore{}
			}
		} else if w > threshold {
			return edgeScore{}
		}
		sub := stats[v]
		r2 := sub.nR
		r1 := p.nR - r2 + t.Weight[v]
		return edgeScore{
			eligible: true,
			vDiff:    math.Abs(float64(p.nV) - 2*float64(sub.nV)),
			rDiff:    math.Abs(float64(r1) - float64(r2)),
		}
	}
	if len(candidates) < parallelCandidateMin {
		workers = 1
	}
	scores := parallel.Map(workers, len(candidates), score)

	var best vgraph.VersionID
	bestVDiff := math.MaxFloat64
	bestRDiff := math.MaxFloat64
	found := false
	for i, s := range scores {
		if !s.eligible {
			continue
		}
		if !found || s.vDiff < bestVDiff || (s.vDiff == bestVDiff && s.rDiff < bestRDiff) {
			found = true
			best, bestVDiff, bestRDiff = candidates[i], s.vDiff, s.rDiff
		}
	}
	return best, found
}

// splitPart cuts the edge (parent(cutChild), cutChild), producing the
// remaining part (same root) and the subtree part rooted at cutChild.
func splitPart(t *vgraph.Tree, p *part, cutChild vgraph.VersionID) (*part, *part) {
	right := &part{root: cutChild, members: make(map[vgraph.VersionID]bool), level: p.level + 1}
	for _, v := range t.SubtreeVersions(cutChild) {
		if p.members[v] {
			right.members[v] = true
		}
	}
	left := &part{root: p.root, members: make(map[vgraph.VersionID]bool, len(p.members)-len(right.members)), level: p.level + 1}
	for v := range p.members {
		if !right.members[v] {
			left.members[v] = true
		}
	}
	fillStats(t, left)
	fillStats(t, right)
	return left, right
}

func maxAttrs(t *vgraph.Tree) int {
	max := 1
	for _, a := range t.Attrs {
		if a > max {
			max = a
		}
	}
	return max
}

// MinDelta returns the smallest meaningful δ for a tree, |E| / (|R|·|V|):
// below it a single partition already satisfies the termination test.
func MinDelta(t *vgraph.Tree) float64 {
	r := t.DistinctRecords()
	v := int64(t.NumVersions())
	e := t.TotalBipartiteEdges()
	if r == 0 || v == 0 {
		return 1
	}
	d := float64(e) / (float64(r) * float64(v))
	if d > 1 {
		return 1
	}
	return d
}

// SolveStorageConstraint answers Problem 5.1 with LyreSplit: it binary
// searches δ in [|E|/(|R||V|), 1] for the largest value whose tree-model
// storage estimate stays within the threshold gamma (in records), returning
// that partitioning. The search stops when the estimate falls within
// [0.99γ, γ] or after maxIter iterations (the last feasible partitioning is
// returned).
func SolveStorageConstraint(t *vgraph.Tree, gamma int64, opts LyreSplitOptions) (LyreSplitResult, error) {
	if gamma < t.DistinctRecords() {
		return LyreSplitResult{}, fmt.Errorf("partition: storage threshold %d below minimum possible storage %d", gamma, t.DistinctRecords())
	}
	lo := MinDelta(t)
	hi := 1.0
	const maxIter = 40
	best, err := LyreSplit(t, lo, opts)
	if err != nil {
		return LyreSplitResult{}, err
	}
	for i := 0; i < maxIter; i++ {
		mid := (lo + hi) / 2
		res, err := LyreSplit(t, mid, opts)
		if err != nil {
			return LyreSplitResult{}, err
		}
		if res.EstimatedStorage <= gamma {
			best = res
			lo = mid
			if float64(res.EstimatedStorage) >= 0.99*float64(gamma) {
				break
			}
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	return best, nil
}

// PartitionDAG runs LyreSplit on a version graph that may contain merges by
// first converting it to a tree (Section 5.3.1).
func PartitionDAG(g *vgraph.Graph, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	t, err := vgraph.ToTree(g)
	if err != nil {
		return LyreSplitResult{}, err
	}
	return LyreSplit(t, delta, opts)
}

// SolveStorageConstraintDAG is SolveStorageConstraint for version graphs
// with merges.
func SolveStorageConstraintDAG(g *vgraph.Graph, gamma int64, opts LyreSplitOptions) (LyreSplitResult, error) {
	t, err := vgraph.ToTree(g)
	if err != nil {
		return LyreSplitResult{}, err
	}
	return SolveStorageConstraint(t, gamma, opts)
}

// LyreSplitWeighted handles frequency-weighted checkout costs
// (Section 5.3.2): the tree is expanded so each version appears f(v) times,
// partitioned with LyreSplit, and replicas of the same version are then
// coalesced into the replica partition with the fewest records.
func LyreSplitWeighted(t *vgraph.Tree, freq map[vgraph.VersionID]int, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	expanded, origOf := t.ExpandWeighted(freq)
	res, err := LyreSplit(expanded, delta, opts)
	if err != nil {
		return LyreSplitResult{}, err
	}
	// Estimate per-partition record counts on the expanded tree, then move
	// every original version into the smallest-record partition among those
	// its replicas were assigned to.
	partRecords := make(map[int]int64)
	for replica, k := range res.Partitioning.Assignment {
		_ = replica
		partRecords[k] = 0
	}
	// Recompute per-partition tree-model storage by grouping members.
	groups := res.Partitioning.Groups()
	for k, vs := range groups {
		memberSet := make(map[vgraph.VersionID]bool, len(vs))
		for _, v := range vs {
			memberSet[v] = true
		}
		var rec int64
		for _, v := range vs {
			p, hasParent := expanded.Parent[v]
			if hasParent && memberSet[p] {
				rec += expanded.Records[v] - expanded.Weight[v]
			} else {
				rec += expanded.Records[v]
			}
		}
		partRecords[k] = rec
	}
	assignment := make(map[vgraph.VersionID]int)
	for replica, k := range res.Partitioning.Assignment {
		orig := origOf[replica]
		cur, ok := assignment[orig]
		if !ok || partRecords[k] < partRecords[cur] {
			assignment[orig] = k
		}
	}
	out := LyreSplitResult{
		Partitioning: vgraph.NewPartitioning(assignment),
		Delta:        delta,
		Levels:       res.Levels,
	}
	// Recompute tree-model estimates on the original tree for the coalesced
	// assignment.
	est := EstimateTreeCost(t, out.Partitioning)
	out.EstimatedStorage = est.Storage
	out.EstimatedTotalCheckout = est.TotalCheckout
	out.EstimatedAvgCheckout = est.AvgCheckout
	return out, nil
}

// TreeCost is the tree-model estimate of a partitioning's cost.
type TreeCost struct {
	Storage       int64
	TotalCheckout int64
	AvgCheckout   float64
	MaxCheckout   int64
}

// EstimateTreeCost evaluates a partitioning with the tree model: within a
// partition, a version contributes |R(v)| - w(v) records if its tree parent
// is in the same partition, and |R(v)| otherwise.
func EstimateTreeCost(t *vgraph.Tree, p vgraph.Partitioning) TreeCost {
	var cost TreeCost
	groups := p.Groups()
	for _, vs := range groups {
		memberSet := make(map[vgraph.VersionID]bool, len(vs))
		for _, v := range vs {
			memberSet[v] = true
		}
		var rec int64
		for _, v := range vs {
			parent, hasParent := t.Parent[v]
			if hasParent && memberSet[parent] {
				rec += t.Records[v] - t.Weight[v]
			} else {
				rec += t.Records[v]
			}
		}
		cost.Storage += rec
		cost.TotalCheckout += rec * int64(len(vs))
		if rec > cost.MaxCheckout {
			cost.MaxCheckout = rec
		}
	}
	if n := t.NumVersions(); n > 0 {
		cost.AvgCheckout = float64(cost.TotalCheckout) / float64(n)
	}
	return cost
}
