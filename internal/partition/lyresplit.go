// Package partition implements the partition optimizer of Chapter 5: the
// LyreSplit algorithm and its generalizations (DAGs, weighted checkout
// frequencies, schema changes), the Agglo and Kmeans baselines adapted from
// NScale, the online maintenance rule, and the migration planner.
//
// Partitioners take a version tree (or the version-record bipartite graph for
// the baselines) and produce a vgraph.Partitioning assigning every version to
// exactly one partition; records may be replicated across partitions. The
// split-by-rlist data model (package cvd) knows how to physically apply a
// partitioning.
package partition

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/parallel"
	"repro/internal/recset"
	"repro/internal/vgraph"
)

// LyreSplitResult reports the partitioning produced by LyreSplit together
// with the tree-model cost estimates used during the search.
type LyreSplitResult struct {
	Partitioning vgraph.Partitioning
	// Delta is the δ parameter the partitioning was produced with.
	Delta float64
	// EstimatedStorage is Σ_k |R_k| under the tree model (records).
	EstimatedStorage int64
	// EstimatedTotalCheckout is Σ_k |V_k|·|R_k| under the tree model.
	EstimatedTotalCheckout int64
	// EstimatedAvgCheckout is EstimatedTotalCheckout / |V|.
	EstimatedAvgCheckout float64
	// Levels is the recursion depth ℓ reached by the splitting.
	Levels int
}

// LyreSplitOptions tunes the algorithm.
type LyreSplitOptions struct {
	// UseAttributes enables the schema-change-aware candidate rule of
	// Section 5.3.3: an edge is splittable when a(vi,vj)·w(vi,vj) ≤ δ·|A||R|.
	UseAttributes bool
	// Workers bounds the parallelism of the candidate-evaluation loop when a
	// part has many splittable edges; 0 or 1 evaluates candidates inline. The
	// chosen cut is identical regardless of the worker count: candidates are
	// scored in parallel but reduced sequentially in version-id order.
	Workers int
}

// lyreCtx is the dense working form of the version tree, built once per
// LyreSplit invocation: version ids map to dense indexes (ascending by id,
// so iterating a members recset over dense indexes visits versions in id
// order) and the per-version maps of vgraph.Tree are flattened into arrays.
// The recursion — stats, candidate scoring, splitting — then runs entirely
// on array indexing and compressed-set operations, with no map lookups on
// the hot path.
type lyreCtx struct {
	ids        []vgraph.VersionID // dense index -> version id, ascending
	records    []int64            // |R(v)|
	weight     []int64            // w(parent(v), v); 0 for the root
	attrs      []float64          // a(parent(v), v) with the missing-data default applied
	children   [][]int32          // dense child indexes, ascending
	root       int32
	totalAttrs int

	// Per-run scratch, reused across splits so the recursion allocates
	// nothing proportional to n per split. The split loop is sequential, so
	// sharing is safe; parallel candidate scoring only reads stats.
	inPart  []bool         // dense membership of the part being processed
	inSub   []bool         // dense membership of the subtree being cut
	stats   []subtreeStats // per-node subtree aggregates (see computeSubtreeStats)
	candBuf []int32
	subBuf  []int64
}

func newLyreCtx(t *vgraph.Tree, totalAttrs int) *lyreCtx {
	n := t.NumVersions()
	ids := make([]vgraph.VersionID, 0, n)
	for v := range t.Records {
		ids = append(ids, v)
	}
	slices.Sort(ids)
	idx := make(map[vgraph.VersionID]int32, n)
	for i, v := range ids {
		idx[v] = int32(i)
	}
	ctx := &lyreCtx{
		ids:        ids,
		records:    make([]int64, n),
		weight:     make([]int64, n),
		attrs:      make([]float64, n),
		children:   make([][]int32, n),
		root:       idx[t.Root],
		totalAttrs: totalAttrs,
		inPart:     make([]bool, n),
		inSub:      make([]bool, n),
		stats:      make([]subtreeStats, n),
	}
	for i, v := range ids {
		ctx.records[i] = t.Records[v]
		ctx.weight[i] = t.Weight[v]
		a := t.CommonAttrs[v]
		if a <= 0 {
			a = totalAttrs
		}
		ctx.attrs[i] = float64(a)
		if kids := t.Children[v]; len(kids) > 0 {
			ci := make([]int32, len(kids))
			for j, c := range kids {
				ci[j] = idx[c]
			}
			slices.Sort(ci)
			ctx.children[i] = ci
		}
	}
	return ctx
}

// part is one connected piece of the version tree during recursion. Members
// are kept as a compressed set of dense version indexes (package recset):
// membership tests are bit probes, splitting is two set operations, and
// iteration comes out in ascending version-id order for free — the property
// the deterministic candidate reduction needs, without re-sorting per split.
type part struct {
	root    int32
	members *recset.Set
	nV      int
	nR      int64 // tree-model distinct records
	nE      int64 // bipartite edges Σ|R(v)| over members
	level   int
}

// versionSet builds a recset from a version-id slice.
func versionSet(vs []vgraph.VersionID) *recset.Set {
	vals := make([]int64, len(vs))
	for i, v := range vs {
		vals[i] = int64(v)
	}
	return recset.FromSlice(vals)
}

// LyreSplit partitions the version tree with parameter δ (Algorithm 5.1).
// It recursively splits any part whose tree-model checkout cost is at least
// |E|/δ of its share, cutting an edge whose weight is at most δ·|R| and
// preferring the cut that balances version counts (ties broken on records).
func LyreSplit(t *vgraph.Tree, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	if err := t.Validate(); err != nil {
		return LyreSplitResult{}, err
	}
	if delta <= 0 || delta > 1 {
		return LyreSplitResult{}, fmt.Errorf("partition: delta %g out of range (0, 1]", delta)
	}
	ctx := newLyreCtx(t, maxAttrs(t))
	return materializeResult(ctx, lyreSplitDense(ctx, delta, opts), delta, t.NumVersions()), nil
}

// denseResult is one LyreSplit run's outcome in dense form: the per-version
// part ordinal plus the tree-model estimates. The δ search keeps these and
// materializes a Partitioning (map form) only for the winner.
type denseResult struct {
	partOf        []int32 // dense version index -> finished-part ordinal (uncompacted)
	numParts      int
	storage       int64
	totalCheckout int64
	levels        int
}

// lyreSplitDense is the Algorithm 5.1 recursion over a prepared context.
func lyreSplitDense(ctx *lyreCtx, delta float64, opts LyreSplitOptions) denseResult {
	workers := opts.Workers
	if workers <= 0 {
		// Parallel candidate evaluation is strictly opt-in.
		workers = 1
	}
	totalAttrs := ctx.totalAttrs

	all := make([]int64, len(ctx.ids))
	for i := range all {
		all[i] = int64(i)
	}
	root := &part{root: ctx.root, members: recset.FromSorted(all)}
	fillStats(ctx, root)

	var finished []*part
	maxLevel := 0
	queue := []*part{root}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if p.level > maxLevel {
			maxLevel = p.level
		}
		if !needsSplit(p, delta) {
			finished = append(finished, p)
			continue
		}
		cutChild, ok := pickSplitEdge(ctx, p, delta, opts.UseAttributes, totalAttrs, workers)
		if !ok {
			// No eligible edge (can happen for degenerate weights); keep as is.
			finished = append(finished, p)
			continue
		}
		left, right := splitPart(ctx, p, cutChild)
		queue = append(queue, left, right)
	}
	dr := denseResult{partOf: make([]int32, len(ctx.ids)), numParts: len(finished), levels: maxLevel}
	for i, p := range finished {
		i32 := int32(i)
		p.members.ForEach(func(x int64) bool {
			dr.partOf[x] = i32
			return true
		})
		dr.storage += p.nR
		dr.totalCheckout += p.nR * int64(p.nV)
	}
	return dr
}

// materializeResult converts a dense result into the public LyreSplitResult.
// The compaction is equivalent to vgraph.NewPartitioning — partition indexes
// dense in ascending version-id order — but computed from the dense arrays,
// skipping its sort and second map pass.
func materializeResult(ctx *lyreCtx, dr denseResult, delta float64, nVersions int) LyreSplitResult {
	res := LyreSplitResult{
		Delta:                  delta,
		Levels:                 dr.levels,
		EstimatedStorage:       dr.storage,
		EstimatedTotalCheckout: dr.totalCheckout,
	}
	assignment := make(map[vgraph.VersionID]int, len(ctx.ids))
	remap := make([]int32, dr.numParts)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for i := range dr.partOf {
		k := dr.partOf[i]
		if remap[k] < 0 {
			remap[k] = int32(next)
			next++
		}
		assignment[ctx.ids[i]] = int(remap[k])
	}
	res.Partitioning = vgraph.Partitioning{Assignment: assignment, NumPartitions: next}
	if nVersions > 0 {
		res.EstimatedAvgCheckout = float64(res.EstimatedTotalCheckout) / float64(nVersions)
	}
	return res
}

// needsSplit implements the termination test of Algorithm 5.1:
// keep the part whole when |R|·|V| ≤ |E|/δ (so that at the minimum
// meaningful δ = |E|/(|R||V|) the whole tree stays in one partition).
func needsSplit(p *part, delta float64) bool {
	if p.nV <= 1 {
		return false
	}
	return float64(p.nR)*float64(p.nV) > float64(p.nE)/delta
}

// fillStats computes nV, nR, nE for a part.
func fillStats(ctx *lyreCtx, p *part) {
	p.nV = int(p.members.Len())
	p.nE = 0
	p.nR = 0
	p.members.ForEach(func(x int64) bool {
		p.nE += ctx.records[x]
		if int32(x) == p.root {
			p.nR += ctx.records[x]
		} else {
			p.nR += ctx.records[x] - ctx.weight[x]
		}
		return true
	})
}

// subtreeStats holds per-node subtree aggregates within a part.
type subtreeStats struct {
	nV int
	nR int64
	nE int64
}

// markMembers flips the part's members on (or off) in a dense scratch
// membership array, turning per-node set probes into O(1) array reads.
func markMembers(scratch []bool, members *recset.Set, on bool) {
	members.ForEach(func(x int64) bool {
		scratch[x] = on
		return true
	})
}

// computeSubtreeStats fills ctx.stats with, for every member v of the part,
// the stats of the subtree rooted at v restricted to the part (v contributing
// its full |R(v)| as the subtree root). The slice is reused across splits
// without clearing: post-order guarantees every entry read was written during
// the current traversal. Callers must treat entries for non-members as
// garbage.
func computeSubtreeStats(ctx *lyreCtx, p *part) []subtreeStats {
	stats := ctx.stats
	markMembers(ctx.inPart, p.members, true)
	defer markMembers(ctx.inPart, p.members, false)
	// Post-order traversal from the part root; children outside the part are
	// skipped on the fly.
	type frame struct {
		v       int32
		childIx int
	}
	var stack []frame
	stack = append(stack, frame{v: p.root})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := ctx.children[f.v]
		descended := false
		for f.childIx < len(kids) {
			c := kids[f.childIx]
			f.childIx++
			if ctx.inPart[c] {
				stack = append(stack, frame{v: c})
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		// All children processed.
		s := subtreeStats{nV: 1, nR: ctx.records[f.v], nE: ctx.records[f.v]}
		for _, c := range kids {
			if !ctx.inPart[c] {
				continue
			}
			cs := stats[c]
			s.nV += cs.nV
			s.nE += cs.nE
			// The child subtree's records minus the overlap along the cut edge
			// are new with respect to f.v's subtree when merged... within one
			// partition the tree-model distinct count composes as
			// R(parent-subtree) = R(parent) + Σ_c (R_subtree(c) - w(c)).
			s.nR += cs.nR - ctx.weight[c]
		}
		stats[f.v] = s
		stack = stack[:len(stack)-1]
	}
	return stats
}

// parallelCandidateMin is the candidate count below which pickSplitEdge
// always scores sequentially; smaller parts don't amortize the fan-out.
const parallelCandidateMin = 512

// edgeScore is one candidate edge's evaluation under the balancing rule.
type edgeScore struct {
	eligible bool
	vDiff    float64
	rDiff    float64
}

// pickSplitEdge chooses the edge to cut among those with weight ≤ δ|R|
// (or a(e)·w(e) ≤ δ·|A||R| in attribute-aware mode). It prefers the edge
// that best balances the number of versions between the two sides, breaking
// ties by balancing records. With workers > 1 and enough candidates the
// per-candidate evaluation fans out over the worker pool; the reduction
// stays sequential in version-id order so the chosen cut is identical to the
// single-threaded loop.
func pickSplitEdge(ctx *lyreCtx, p *part, delta float64, useAttrs bool, totalAttrs, workers int) (int32, bool) {
	stats := computeSubtreeStats(ctx, p)
	threshold := delta * float64(p.nR)
	// Recset iteration is ascending by construction, so the candidate order
	// (and with it the deterministic reduction) needs no per-split sort. The
	// candidate buffer is per-run scratch.
	candidates := ctx.candBuf[:0]
	p.members.ForEach(func(x int64) bool {
		if v := int32(x); v != p.root {
			candidates = append(candidates, v)
		}
		return true
	})
	ctx.candBuf = candidates[:0]

	score := func(i int) edgeScore {
		v := candidates[i]
		w := float64(ctx.weight[v])
		if useAttrs {
			if ctx.attrs[v]*w > delta*float64(totalAttrs)*float64(p.nR) {
				return edgeScore{}
			}
		} else if w > threshold {
			return edgeScore{}
		}
		sub := stats[v]
		r2 := sub.nR
		r1 := p.nR - r2 + ctx.weight[v]
		return edgeScore{
			eligible: true,
			vDiff:    math.Abs(float64(p.nV) - 2*float64(sub.nV)),
			rDiff:    math.Abs(float64(r1) - float64(r2)),
		}
	}
	var best int32
	bestVDiff := math.MaxFloat64
	bestRDiff := math.MaxFloat64
	found := false
	take := func(i int, s edgeScore) {
		if !s.eligible {
			return
		}
		if !found || s.vDiff < bestVDiff || (s.vDiff == bestVDiff && s.rDiff < bestRDiff) {
			found = true
			best, bestVDiff, bestRDiff = candidates[i], s.vDiff, s.rDiff
		}
	}
	if workers <= 1 || len(candidates) < parallelCandidateMin {
		// Sequential path: score and reduce in one pass, no score slice.
		for i := range candidates {
			take(i, score(i))
		}
		return best, found
	}
	scores := parallel.Map(workers, len(candidates), score)
	for i, s := range scores {
		take(i, s)
	}
	return best, found
}

// splitPart cuts the edge (parent(cutChild), cutChild), producing the
// remaining part (same root) and the subtree part rooted at cutChild. The
// subtree is gathered by DFS over member children only — parts are connected
// in the tree, so that equals the full subtree intersected with the part.
func splitPart(ctx *lyreCtx, p *part, cutChild int32) (*part, *part) {
	markMembers(ctx.inPart, p.members, true)
	// DFS-mark the subtree, then collect it by filtering the (ordered)
	// member iteration — ordered output without a sort.
	stack := []int32{cutChild}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ctx.inSub[v] = true
		for _, c := range ctx.children[v] {
			if ctx.inPart[c] {
				stack = append(stack, c)
			}
		}
	}
	sub := ctx.subBuf[:0]
	p.members.ForEach(func(x int64) bool {
		if ctx.inSub[x] {
			sub = append(sub, x)
		}
		return true
	})
	right := &part{root: cutChild, members: recset.FromSorted(sub), level: p.level + 1}
	left := &part{root: p.root, members: recset.AndNot(p.members, right.members), level: p.level + 1}
	for _, v := range sub {
		ctx.inSub[v] = false
	}
	ctx.subBuf = sub[:0]
	markMembers(ctx.inPart, p.members, false)
	fillStats(ctx, left)
	fillStats(ctx, right)
	return left, right
}

func maxAttrs(t *vgraph.Tree) int {
	max := 1
	for _, a := range t.Attrs {
		if a > max {
			max = a
		}
	}
	return max
}

// MinDelta returns the smallest meaningful δ for a tree, |E| / (|R|·|V|):
// below it a single partition already satisfies the termination test.
func MinDelta(t *vgraph.Tree) float64 {
	r := t.DistinctRecords()
	v := int64(t.NumVersions())
	e := t.TotalBipartiteEdges()
	if r == 0 || v == 0 {
		return 1
	}
	d := float64(e) / (float64(r) * float64(v))
	if d > 1 {
		return 1
	}
	return d
}

// SolveStorageConstraint answers Problem 5.1 with LyreSplit: it binary
// searches δ in [|E|/(|R||V|), 1] for the largest value whose tree-model
// storage estimate stays within the threshold gamma (in records), returning
// that partitioning. The search stops when the estimate falls within
// [0.99γ, γ] or after maxIter iterations (the last feasible partitioning is
// returned).
func SolveStorageConstraint(t *vgraph.Tree, gamma int64, opts LyreSplitOptions) (LyreSplitResult, error) {
	if gamma < t.DistinctRecords() {
		return LyreSplitResult{}, fmt.Errorf("partition: storage threshold %d below minimum possible storage %d", gamma, t.DistinctRecords())
	}
	if err := t.Validate(); err != nil {
		return LyreSplitResult{}, err
	}
	// One dense context serves the whole δ search: only the recursion reruns
	// per iteration, and only the winning δ's partitioning is materialized
	// back into map form.
	ctx := newLyreCtx(t, maxAttrs(t))
	lo := MinDelta(t)
	hi := 1.0
	const maxIter = 40
	best := lyreSplitDense(ctx, lo, opts)
	bestDelta := lo
	for i := 0; i < maxIter; i++ {
		mid := (lo + hi) / 2
		res := lyreSplitDense(ctx, mid, opts)
		if res.storage <= gamma {
			best = res
			bestDelta = mid
			lo = mid
			if float64(res.storage) >= 0.99*float64(gamma) {
				break
			}
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	return materializeResult(ctx, best, bestDelta, t.NumVersions()), nil
}

// PartitionDAG runs LyreSplit on a version graph that may contain merges by
// first converting it to a tree (Section 5.3.1).
func PartitionDAG(g *vgraph.Graph, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	t, err := vgraph.ToTree(g)
	if err != nil {
		return LyreSplitResult{}, err
	}
	return LyreSplit(t, delta, opts)
}

// SolveStorageConstraintDAG is SolveStorageConstraint for version graphs
// with merges.
func SolveStorageConstraintDAG(g *vgraph.Graph, gamma int64, opts LyreSplitOptions) (LyreSplitResult, error) {
	t, err := vgraph.ToTree(g)
	if err != nil {
		return LyreSplitResult{}, err
	}
	return SolveStorageConstraint(t, gamma, opts)
}

// LyreSplitWeighted handles frequency-weighted checkout costs
// (Section 5.3.2): the tree is expanded so each version appears f(v) times,
// partitioned with LyreSplit, and replicas of the same version are then
// coalesced into the replica partition with the fewest records.
func LyreSplitWeighted(t *vgraph.Tree, freq map[vgraph.VersionID]int, delta float64, opts LyreSplitOptions) (LyreSplitResult, error) {
	expanded, origOf := t.ExpandWeighted(freq)
	res, err := LyreSplit(expanded, delta, opts)
	if err != nil {
		return LyreSplitResult{}, err
	}
	// Estimate per-partition record counts on the expanded tree, then move
	// every original version into the smallest-record partition among those
	// its replicas were assigned to.
	partRecords := make(map[int]int64)
	for replica, k := range res.Partitioning.Assignment {
		_ = replica
		partRecords[k] = 0
	}
	// Recompute per-partition tree-model storage by grouping members.
	groups := res.Partitioning.Groups()
	for k, vs := range groups {
		memberSet := versionSet(vs)
		var rec int64
		for _, v := range vs {
			p, hasParent := expanded.Parent[v]
			if hasParent && memberSet.Contains(int64(p)) {
				rec += expanded.Records[v] - expanded.Weight[v]
			} else {
				rec += expanded.Records[v]
			}
		}
		partRecords[k] = rec
	}
	assignment := make(map[vgraph.VersionID]int)
	for replica, k := range res.Partitioning.Assignment {
		orig := origOf[replica]
		cur, ok := assignment[orig]
		if !ok || partRecords[k] < partRecords[cur] {
			assignment[orig] = k
		}
	}
	out := LyreSplitResult{
		Partitioning: vgraph.NewPartitioning(assignment),
		Delta:        delta,
		Levels:       res.Levels,
	}
	// Recompute tree-model estimates on the original tree for the coalesced
	// assignment.
	est := EstimateTreeCost(t, out.Partitioning)
	out.EstimatedStorage = est.Storage
	out.EstimatedTotalCheckout = est.TotalCheckout
	out.EstimatedAvgCheckout = est.AvgCheckout
	return out, nil
}

// TreeCost is the tree-model estimate of a partitioning's cost.
type TreeCost struct {
	Storage       int64
	TotalCheckout int64
	AvgCheckout   float64
	MaxCheckout   int64
}

// EstimateTreeCost evaluates a partitioning with the tree model: within a
// partition, a version contributes |R(v)| - w(v) records if its tree parent
// is in the same partition, and |R(v)| otherwise.
func EstimateTreeCost(t *vgraph.Tree, p vgraph.Partitioning) TreeCost {
	var cost TreeCost
	groups := p.Groups()
	for _, vs := range groups {
		memberSet := versionSet(vs)
		var rec int64
		for _, v := range vs {
			parent, hasParent := t.Parent[v]
			if hasParent && memberSet.Contains(int64(parent)) {
				rec += t.Records[v] - t.Weight[v]
			} else {
				rec += t.Records[v]
			}
		}
		cost.Storage += rec
		cost.TotalCheckout += rec * int64(len(vs))
		if rec > cost.MaxCheckout {
			cost.MaxCheckout = rec
		}
	}
	if n := t.NumVersions(); n > 0 {
		cost.AvgCheckout = float64(cost.TotalCheckout) / float64(n)
	}
	return cost
}
