// Package server exposes an OrpheusDB engine over HTTP with JSON bodies —
// the long-running collaborative deployment of the paper, where many clients
// share one hosted engine instead of each embedding their own. The surface
// mirrors the versioning command set (init / checkout / commit / select /
// log) plus a small session layer: checkouts are session-scoped, so two
// clients staging the same logical table name never collide, and a vanished
// client's staging tables are reclaimed when its session closes.
//
// Endpoints (all JSON):
//
//	POST /v1/session          open a session            → {"session": id}
//	POST /v1/session/close    close it, drop its staging tables
//	POST /v1/init             create a CVD from rows    → {"version": 1}
//	POST /v1/checkout         versions → staging table  → {"records": n}
//	POST /v1/commit           staging table → version   → {"version": v}
//	POST /v1/select           versioned scan with predicates
//	GET  /v1/log?cvd=name     commit log of one CVD
//	GET  /v1/status           engine + server status
//
// Admission control bounds concurrent request handling: past MaxInflight the
// server answers 503 immediately instead of queueing unboundedly — a loaded
// commit endpoint degrades by shedding, not by collapsing.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// DefaultMaxInflight is the admission-control cap when Config leaves it 0.
const DefaultMaxInflight = 64

// Config tunes a Server.
type Config struct {
	// MaxInflight caps concurrently handled requests; further requests get
	// 503 Service Unavailable. <= 0 selects DefaultMaxInflight.
	MaxInflight int
}

// Server is an http.Handler serving one engine. Create with New.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux
	sem    chan struct{}

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
}

// session tracks one client's staging state: logical table name → the
// checkout's physical table and owning CVD, so close can reclaim leftovers.
type session struct {
	id string

	mu     sync.Mutex
	tables map[string]staged
}

type staged struct {
	cvd      string
	physical string
}

// New wraps an engine in a Server. The engine may be ephemeral or durable;
// the server itself never opens or closes it (the daemon owns that
// lifecycle, including the checkpoint-on-drain).
func New(engine *core.Engine, cfg Config) *Server {
	max := cfg.MaxInflight
	if max <= 0 {
		max = DefaultMaxInflight
	}
	s := &Server{
		engine:   engine,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, max),
		sessions: make(map[string]*session),
	}
	s.mux.HandleFunc("/v1/session", s.handleSessionOpen)
	s.mux.HandleFunc("/v1/session/close", s.handleSessionClose)
	s.mux.HandleFunc("/v1/init", s.handleInit)
	s.mux.HandleFunc("/v1/checkout", s.handleCheckout)
	s.mux.HandleFunc("/v1/commit", s.handleCommit)
	s.mux.HandleFunc("/v1/select", s.handleSelect)
	s.mux.HandleFunc("/v1/log", s.handleLog)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler with admission control: a request past
// the in-flight cap is shed with 503 instead of queued.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity (%d requests in flight)", cap(s.sem)))
		return
	}
	s.mux.ServeHTTP(w, r)
}

// CloseSessions closes every open session, dropping leftover staging tables.
// The daemon calls it during drain, after the HTTP listener has stopped.
func (s *Server) CloseSessions() {
	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, sess := range open {
		s.reclaim(sess)
	}
}

// reclaim drops a session's remaining staging tables.
func (s *Server) reclaim(sess *session) {
	sess.mu.Lock()
	tables := sess.tables
	sess.tables = make(map[string]staged)
	sess.mu.Unlock()
	for _, st := range tables {
		if c, err := s.engine.CVD(st.cvd); err == nil {
			c.DiscardCheckout(st.physical)
		} else {
			s.engine.Database().DropTable(st.physical)
		}
	}
}

// ---- request / response shapes ----

type errorResponse struct {
	Error string `json:"error"`
}

type sessionResponse struct {
	Session string `json:"session"`
}

type columnSpec struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type initRequest struct {
	CVD     string          `json:"cvd"`
	Columns []columnSpec    `json:"columns"`
	PK      []string        `json:"pk"`
	Rows    [][]interface{} `json:"rows"`
	Message string          `json:"message"`
	Author  string          `json:"author"`
}

type initResponse struct {
	CVD     string `json:"cvd"`
	Version int64  `json:"version"`
	Records int64  `json:"records"`
}

type checkoutRequest struct {
	Session  string  `json:"session"`
	CVD      string  `json:"cvd"`
	Versions []int64 `json:"versions"`
	Table    string  `json:"table"`
}

type checkoutResponse struct {
	Table   string `json:"table"`
	Records int    `json:"records"`
}

type commitRequest struct {
	Session string `json:"session"`
	CVD     string `json:"cvd"`
	Table   string `json:"table"`
	Message string `json:"message"`
	Author  string `json:"author"`
}

type commitResponse struct {
	Version int64 `json:"version"`
}

type predicateSpec struct {
	Column string      `json:"column"`
	Op     string      `json:"op"`
	Value  interface{} `json:"value"`
}

type selectRequest struct {
	CVD      string          `json:"cvd"`
	Versions []int64         `json:"versions"`
	Where    []predicateSpec `json:"where"`
	Limit    int             `json:"limit"`
}

type selectRow struct {
	Version int64         `json:"version"`
	RID     int64         `json:"rid"`
	Values  []interface{} `json:"values"`
}

type selectResponse struct {
	Columns []string    `json:"columns"`
	Rows    []selectRow `json:"rows"`
}

type logVersion struct {
	Version  int64   `json:"version"`
	Parents  []int64 `json:"parents"`
	Author   string  `json:"author"`
	Message  string  `json:"message"`
	CommitAt string  `json:"commit_at"`
	Records  int64   `json:"records"`
}

type logResponse struct {
	CVD      string       `json:"cvd"`
	Model    string       `json:"model"`
	Versions []logVersion `json:"versions"`
}

type statusResponse struct {
	CVDs     []string `json:"cvds"`
	Durable  bool     `json:"durable"`
	DataDir  string   `json:"data_dir,omitempty"`
	Sessions int      `json:"sessions"`
}

// ---- handlers ----

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	s.mu.Lock()
	s.nextID++
	sess := &session{id: "s" + strconv.FormatInt(s.nextID, 10), tables: make(map[string]staged)}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, sessionResponse{Session: sess.id})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req sessionResponse
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	delete(s.sessions, req.Session)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", req.Session))
		return
	}
	s.reclaim(sess)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleInit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req initRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.CVD == "" || len(req.Columns) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("init requires cvd and columns"))
		return
	}
	cols := make([]relstore.Column, 0, len(req.Columns))
	for _, c := range req.Columns {
		t, err := relstore.ParseType(c.Type)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("column %q: %w", c.Name, err))
			return
		}
		cols = append(cols, relstore.Column{Name: c.Name, Type: t})
	}
	schema, err := relstore.NewSchema(cols, req.PK...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := decodeRows(schema, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.engine.Init(req.CVD, schema, rows, cvd.Options{Author: req.Author, Message: req.Message})
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, initResponse{CVD: req.CVD, Version: 1, Records: c.NumRecords()})
}

func (s *Server) handleCheckout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req checkoutRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("checkout requires a table name"))
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The physical staging table is session-prefixed: two sessions staging
	// "wd" each get their own table, and the engine-side claim check (commit
	// consumes only tables that checkout produced) still holds per session.
	physical := sess.id + "__" + req.Table
	sess.mu.Lock()
	if _, dup := sess.tables[req.Table]; dup {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("table %q is already staged in session %s", req.Table, sess.id))
		return
	}
	sess.mu.Unlock()
	tab, err := s.engine.Checkout(req.CVD, versionIDs(req.Versions), physical)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	sess.mu.Lock()
	sess.tables[req.Table] = staged{cvd: req.CVD, physical: physical}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, checkoutResponse{Table: req.Table, Records: tab.Len()})
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req commitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	sess.mu.Lock()
	st, ok := sess.tables[req.Table]
	sess.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no staged table %q in session %s", req.Table, sess.id))
		return
	}
	if st.cvd != req.CVD {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q was checked out from CVD %q, not %q", req.Table, st.cvd, req.CVD))
		return
	}
	v, err := s.engine.Commit(req.CVD, st.physical, req.Message, req.Author)
	// The staging table is consumed on success AND on the journal-failure
	// partial-success path (v != 0): either way it no longer exists, so the
	// session must forget it.
	if v != 0 {
		sess.mu.Lock()
		delete(sess.tables, req.Table)
		sess.mu.Unlock()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, commitResponse{Version: int64(v)})
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req selectRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.engine.CVD(req.CVD)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var pred cvd.Predicate
	if len(req.Where) > 0 {
		schema := c.Schema()
		comparisons := make([]cvd.ColumnComparison, 0, len(req.Where))
		for _, p := range req.Where {
			i := schema.ColumnIndex(p.Column)
			if i < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown column %q", p.Column))
				return
			}
			val, err := jsonToValue(schema.Columns[i].Type, p.Value)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("predicate on %q: %w", p.Column, err))
				return
			}
			comparisons = append(comparisons, cvd.ColumnComparison{Column: p.Column, Op: p.Op, Value: val})
		}
		pred, err = c.NamedPredicateAll(comparisons)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	rows, err := c.ScanVersions(versionIDs(req.Versions), pred, req.Limit)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	resp := selectResponse{Columns: c.Schema().ColumnNames(), Rows: make([]selectRow, 0, len(rows))}
	for _, vr := range rows {
		vals := make([]interface{}, len(vr.Row))
		for i, v := range vr.Row {
			vals[i] = valueToJSON(v)
		}
		resp.Rows = append(resp.Rows, selectRow{Version: int64(vr.Version), RID: int64(vr.RID), Values: vals})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	name := r.URL.Query().Get("cvd")
	c, err := s.engine.CVD(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := logResponse{CVD: name, Model: c.Model().String()}
	for _, m := range c.AllMeta() {
		parents := make([]int64, len(m.Parents))
		for i, p := range m.Parents {
			parents[i] = int64(p)
		}
		resp.Versions = append(resp.Versions, logVersion{
			Version:  int64(m.ID),
			Parents:  parents,
			Author:   m.Author,
			Message:  m.Message,
			CommitAt: m.CommitAt.Format("2006-01-02T15:04:05Z07:00"),
			Records:  m.NumRecords,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statusResponse{
		CVDs:     s.engine.List(),
		Durable:  s.engine.Durable(),
		DataDir:  s.engine.DataDir(),
		Sessions: n,
	})
}

// ---- helpers ----

func (s *Server) session(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q (open one with POST /v1/session)", id)
	}
	return sess, nil
}

func decodeBody(r *http.Request, into interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func versionIDs(in []int64) []vgraph.VersionID {
	out := make([]vgraph.VersionID, len(in))
	for i, v := range in {
		out[i] = vgraph.VersionID(v)
	}
	return out
}

// decodeRows converts JSON row arrays into typed relstore rows per the
// schema's column types.
func decodeRows(schema relstore.Schema, raw [][]interface{}) ([]relstore.Row, error) {
	rows := make([]relstore.Row, 0, len(raw))
	for ri, rr := range raw {
		if len(rr) != len(schema.Columns) {
			return nil, fmt.Errorf("row %d has %d values, schema has %d columns", ri, len(rr), len(schema.Columns))
		}
		row := make(relstore.Row, len(rr))
		for ci, cell := range rr {
			v, err := jsonToValue(schema.Columns[ci].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("row %d, column %q: %w", ri, schema.Columns[ci].Name, err)
			}
			row[ci] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// jsonToValue coerces one decoded JSON value to a typed relstore value.
// Numbers arrive as json.Number (decodeBody sets UseNumber so int64 range is
// not squeezed through float64).
func jsonToValue(t relstore.ValueType, raw interface{}) (relstore.Value, error) {
	switch t {
	case relstore.TypeInt:
		switch x := raw.(type) {
		case json.Number:
			n, err := strconv.ParseInt(x.String(), 10, 64)
			if err != nil {
				return relstore.Value{}, fmt.Errorf("not an integer: %v", x)
			}
			return relstore.Int(n), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return relstore.Value{}, fmt.Errorf("not an integer: %q", x)
			}
			return relstore.Int(n), nil
		}
	case relstore.TypeFloat:
		switch x := raw.(type) {
		case json.Number:
			f, err := x.Float64()
			if err != nil {
				return relstore.Value{}, err
			}
			return relstore.Float(f), nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return relstore.Value{}, fmt.Errorf("not a float: %q", x)
			}
			return relstore.Float(f), nil
		}
	case relstore.TypeString:
		switch x := raw.(type) {
		case string:
			return relstore.Str(x), nil
		case json.Number:
			return relstore.Str(x.String()), nil
		}
	case relstore.TypeBool:
		if b, ok := raw.(bool); ok {
			return relstore.Bool(b), nil
		}
	}
	return relstore.Value{}, fmt.Errorf("cannot use JSON value %v (%T) as %s", raw, raw, t)
}

// valueToJSON renders a relstore value as its natural JSON type.
func valueToJSON(v relstore.Value) interface{} {
	switch v.Type {
	case relstore.TypeInt:
		return v.AsInt()
	case relstore.TypeFloat:
		return v.AsFloat()
	case relstore.TypeBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}
