package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// post sends a JSON body and decodes the JSON answer into out (when non-nil),
// returning the status code.
func post(t *testing.T, ts *httptest.Server, path string, body, out interface{}) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, ts *httptest.Server, path string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func openSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var sr sessionResponse
	if code := post(t, ts, "/v1/session", struct{}{}, &sr); code != http.StatusOK {
		t.Fatalf("session open: status %d", code)
	}
	if sr.Session == "" {
		t.Fatal("session open returned no id")
	}
	return sr.Session
}

var proteinInit = initRequest{
	CVD: "protein",
	Columns: []columnSpec{
		{Name: "protein1", Type: "string"},
		{Name: "protein2", Type: "string"},
		{Name: "coexpression", Type: "int"},
	},
	PK: []string{"protein1", "protein2"},
	Rows: [][]interface{}{
		{"ENSP1", "ENSP2", 80},
		{"ENSP1", "ENSP3", 40},
	},
	Message: "seed",
	Author:  "alice",
}

// TestVersioningOverHTTP drives the full client workflow — init, checkout
// into a session, commit, select with a predicate, log — over the wire.
func TestVersioningOverHTTP(t *testing.T) {
	e := core.Open("t")
	ts := httptest.NewServer(New(e, Config{}))
	defer ts.Close()

	var ir initResponse
	if code := post(t, ts, "/v1/init", proteinInit, &ir); code != http.StatusOK {
		t.Fatalf("init: status %d", code)
	}
	if ir.Version != 1 || ir.Records != 2 {
		t.Fatalf("init response = %+v", ir)
	}
	// Re-init of the same name is a conflict.
	if code := post(t, ts, "/v1/init", proteinInit, nil); code != http.StatusConflict {
		t.Fatalf("duplicate init: status %d, want 409", code)
	}

	sid := openSession(t, ts)
	var cr checkoutResponse
	code := post(t, ts, "/v1/checkout", checkoutRequest{Session: sid, CVD: "protein", Versions: []int64{1}, Table: "wd"}, &cr)
	if code != http.StatusOK || cr.Records != 2 {
		t.Fatalf("checkout: status %d, response %+v", code, cr)
	}
	// The physical staging table is session-scoped, not the logical name.
	if e.Database().HasTable("wd") {
		t.Fatal("staging table leaked under its logical name")
	}

	if _, ok := e.Database().Table(sid + "__wd"); !ok {
		t.Fatal("session-scoped staging table missing")
	}
	var mr commitResponse
	code = post(t, ts, "/v1/commit", commitRequest{Session: sid, CVD: "protein", Table: "wd", Message: "same", Author: "bob"}, &mr)
	if code != http.StatusOK || mr.Version != 2 {
		t.Fatalf("commit: status %d, version %d", code, mr.Version)
	}
	// The staged entry is consumed: committing again is a 404.
	if code := post(t, ts, "/v1/commit", commitRequest{Session: sid, CVD: "protein", Table: "wd"}, nil); code != http.StatusNotFound {
		t.Fatalf("re-commit of consumed table: status %d, want 404", code)
	}

	var sr selectResponse
	code = post(t, ts, "/v1/select", selectRequest{
		CVD: "protein", Versions: []int64{1},
		Where: []predicateSpec{{Column: "coexpression", Op: ">", Value: 50}},
	}, &sr)
	if code != http.StatusOK {
		t.Fatalf("select: status %d", code)
	}
	if len(sr.Rows) != 1 {
		t.Fatalf("select returned %d rows, want 1", len(sr.Rows))
	}
	if got := sr.Rows[0].Values[0]; got != "ENSP1" {
		t.Fatalf("select row = %v", sr.Rows[0].Values)
	}
	if v, ok := sr.Rows[0].Values[2].(float64); !ok || v != 80 {
		t.Fatalf("int column over JSON = %v (%T)", sr.Rows[0].Values[2], sr.Rows[0].Values[2])
	}

	var lr logResponse
	if code := get(t, ts, "/v1/log?cvd=protein", &lr); code != http.StatusOK {
		t.Fatalf("log: status %d", code)
	}
	if len(lr.Versions) != 2 || lr.Versions[1].Version != 2 || lr.Versions[1].Author != "bob" {
		t.Fatalf("log = %+v", lr)
	}

	var st statusResponse
	if code := get(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status: status %d", code)
	}
	if len(st.CVDs) != 1 || st.CVDs[0] != "protein" || st.Durable || st.Sessions != 1 {
		t.Fatalf("status = %+v", st)
	}
}

// TestSessionIsolation: two sessions stage the same logical table name
// without colliding, and closing a session reclaims its staging tables.
func TestSessionIsolation(t *testing.T) {
	e := core.Open("t")
	ts := httptest.NewServer(New(e, Config{}))
	defer ts.Close()
	if code := post(t, ts, "/v1/init", proteinInit, nil); code != http.StatusOK {
		t.Fatalf("init: status %d", code)
	}
	a := openSession(t, ts)
	b := openSession(t, ts)
	for _, sid := range []string{a, b} {
		code := post(t, ts, "/v1/checkout", checkoutRequest{Session: sid, CVD: "protein", Versions: []int64{1}, Table: "wd"}, nil)
		if code != http.StatusOK {
			t.Fatalf("checkout in %s: status %d", sid, code)
		}
	}
	// Double-stage of the same logical name within ONE session is refused.
	code := post(t, ts, "/v1/checkout", checkoutRequest{Session: a, CVD: "protein", Versions: []int64{1}, Table: "wd"}, nil)
	if code != http.StatusConflict {
		t.Fatalf("double checkout: status %d, want 409", code)
	}
	// Closing session a drops its staging table; b's survives and commits.
	if code := post(t, ts, "/v1/session/close", sessionResponse{Session: a}, nil); code != http.StatusOK {
		t.Fatalf("session close: status %d", code)
	}
	if e.Database().HasTable(a + "__wd") {
		t.Fatal("closed session's staging table not reclaimed")
	}
	var mr commitResponse
	code = post(t, ts, "/v1/commit", commitRequest{Session: b, CVD: "protein", Table: "wd", Message: "b wins", Author: "b"}, &mr)
	if code != http.StatusOK || mr.Version != 2 {
		t.Fatalf("commit from surviving session: status %d, version %d", code, mr.Version)
	}
	// Commits against a session that no longer exists 404.
	if code := post(t, ts, "/v1/commit", commitRequest{Session: a, CVD: "protein", Table: "wd"}, nil); code != http.StatusNotFound {
		t.Fatalf("commit in closed session: status %d, want 404", code)
	}
}

// TestAdmissionControl: with MaxInflight 1 and the single slot held, further
// requests are shed with 503 instead of queued.
func TestAdmissionControl(t *testing.T) {
	e := core.Open("t")
	s := New(e, Config{MaxInflight: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the only slot directly (the handler path would release it too
	// fast to observe).
	s.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	<-s.sem
	if code := get(t, ts, "/v1/status", nil); code != http.StatusOK {
		t.Fatalf("drained server answered %d, want 200", code)
	}
}

// TestConcurrentCommits: many sessions commit to their own CVDs over HTTP at
// once — the paths the -race build must prove clean, and on a durable engine
// the natural group-commit workload.
func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	e, err := core.OpenDurable("srv", dir, core.GroupCommit(0, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ts := httptest.NewServer(New(e, Config{}))
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("ds%d", i)
			req := proteinInit
			req.CVD = name
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(req); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/init", "application/json", &buf)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("init %s: status %d", name, resp.StatusCode)
				return
			}
			var sr sessionResponse
			r2, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader([]byte("{}")))
			if err != nil {
				errs <- err
				return
			}
			json.NewDecoder(r2.Body).Decode(&sr)
			r2.Body.Close()
			for c := 0; c < 3; c++ {
				co, _ := json.Marshal(checkoutRequest{Session: sr.Session, CVD: name, Versions: []int64{1}, Table: "wd"})
				r3, err := http.Post(ts.URL+"/v1/checkout", "application/json", bytes.NewReader(co))
				if err != nil {
					errs <- err
					return
				}
				r3.Body.Close()
				cm, _ := json.Marshal(commitRequest{Session: sr.Session, CVD: name, Table: "wd", Message: "m", Author: "a"})
				r4, err := http.Post(ts.URL+"/v1/commit", "application/json", bytes.NewReader(cm))
				if err != nil {
					errs <- err
					return
				}
				if r4.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("commit %s round %d: status %d", name, c, r4.StatusCode)
					r4.Body.Close()
					return
				}
				r4.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every dataset has 1 init + 3 commits; reopen proves it all hit the WAL.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := core.OpenDurable("srv", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < clients; i++ {
		c, err := re.CVD(fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if c.NumVersions() != 4 {
			t.Fatalf("ds%d recovered %d versions, want 4", i, c.NumVersions())
		}
	}
}

// TestBadRequests: malformed inputs come back as 4xx JSON errors.
func TestBadRequests(t *testing.T) {
	e := core.Open("t")
	ts := httptest.NewServer(New(e, Config{}))
	defer ts.Close()
	var er errorResponse
	if code := post(t, ts, "/v1/init", initRequest{CVD: "x"}, &er); code != http.StatusBadRequest || er.Error == "" {
		t.Fatalf("init without columns: status %d, err %q", code, er.Error)
	}
	bad := proteinInit
	bad.CVD = "y"
	bad.Columns = []columnSpec{{Name: "a", Type: "no-such-type"}}
	bad.Rows = nil
	if code := post(t, ts, "/v1/init", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("bad column type: status %d", code)
	}
	if code := post(t, ts, "/v1/checkout", checkoutRequest{Session: "nope", CVD: "x", Table: "t"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	if code := get(t, ts, "/v1/log?cvd=missing", nil); code != http.StatusNotFound {
		t.Fatalf("log of unknown CVD: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/init")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint: status %d", resp.StatusCode)
	}
}
