package benchmark

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/vgraph"
)

// DurableResult is one durable-storage measurement.
type DurableResult struct {
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
	Reps   int     `json:"reps"`
	Ns     int64   `json:"ns"` // per-rep wall time
	Bytes  int64   `json:"bytes,omitempty"`
	MBps   float64 `json:"mb_per_sec,omitempty"`
}

// DurableReport is the BENCH_durable.json document: snapshot write/restore
// throughput, WAL append and replay costs, and the recovery-path comparison
// (snapshot restore and WAL replay vs rebuilding the engine from CSV).
type DurableReport struct {
	Dataset  string `json:"dataset"`
	Scale    int    `json:"scale"`
	Versions int    `json:"versions"`
	Records  int64  `json:"records"`

	SnapshotBytes int64 `json:"snapshot_bytes"`
	WALBytes      int64 `json:"wal_bytes"`

	// RestoreSpeedupVsCSV is snapshot-restore time vs re-initializing the
	// engine from per-version CSV exports — the acceptance metric
	// (TestRunDurable requires >= 2x).
	RestoreSpeedupVsCSV float64 `json:"restore_speedup_vs_csv"`
	// ReplaySpeedupVsCSV is the same comparison for pure WAL replay.
	ReplaySpeedupVsCSV float64 `json:"replay_speedup_vs_csv"`

	Results []DurableResult `json:"results"`

	// Incremental holds the durable-incremental experiment (content-addressed
	// chunk reuse + lane codecs), attached when the durable experiment runs
	// through benchrunner so BENCH_durable.json carries both.
	Incremental *IncrementalReport `json:"incremental,omitempty"`
}

// JSON renders the report.
func (r DurableReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// versionCSV renders one version's rows as a CSV document (header + rows) for
// the re-init-from-CSV baseline.
func versionCSV(w *Workload, v vgraph.VersionID) []byte {
	var buf bytes.Buffer
	cols := w.Schema.ColumnNames()
	for i, c := range cols {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(c)
	}
	buf.WriteByte('\n')
	for _, row := range w.Rows(v) {
		for i, val := range row {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatInt(val.AsInt(), 10))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// commitOrder returns the workload's version ids in replayable order (the
// same order LoadCVD commits them).
func commitOrder(w *Workload) []vgraph.VersionID {
	order := w.Graph.TopoOrder()
	rest := append([]vgraph.VersionID(nil), order[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append([]vgraph.VersionID{order[0]}, rest...)
}

// RunDurable measures the durable storage subsystem on a generated workload:
//
//   - snapshot-save: full binary snapshot write (columnar lanes, recsets,
//     version graph, metadata) of a loaded engine.
//   - snapshot-restore: OpenDurable from the snapshot alone — the fast
//     recovery path.
//   - wal-write: loading the same workload through a journaled engine, i.e.
//     the ongoing fsync-per-commit overhead.
//   - wal-replay: OpenDurable from the WAL alone — recovery without a
//     checkpoint.
//   - csv-reinit: rebuilding the engine by re-importing every version from
//     CSV (InitFromCSV + CommitCSV), the no-durability baseline.
//
// The restore-vs-CSV ratio is the headline number: recovery from the binary
// snapshot must beat logical re-ingestion by at least 2x (TestRunDurable).
func RunDurable(dataset string, scale int) (DurableReport, Table, error) {
	report := DurableReport{Dataset: dataset, Scale: scale}
	cfg, err := Preset(dataset, scale)
	if err != nil {
		return report, Table{}, err
	}
	w, err := Generate(cfg)
	if err != nil {
		return report, Table{}, err
	}
	report.Versions = w.Bipartite.NumVersions()
	report.Records = w.Bipartite.NumRecords()

	workDir, err := os.MkdirTemp("", "durable-bench-*")
	if err != nil {
		return report, Table{}, err
	}
	defer os.RemoveAll(workDir)

	engine := core.Open("durable")
	c, err := LoadCVD(engine.Database(), "cvd", w, cvd.SplitByRlist)
	if err != nil {
		return report, Table{}, err
	}
	if err := engine.Adopt(c); err != nil {
		return report, Table{}, err
	}
	wantVersions := c.NumVersions()
	wantRecords := c.NumRecords()

	// ---- snapshot write ----------------------------------------------------
	const saveReps = 3
	snapDir := filepath.Join(workDir, "snap")
	var saveTotal time.Duration
	for i := 0; i < saveReps; i++ {
		os.RemoveAll(snapDir)
		start := time.Now()
		if err := engine.Save(snapDir); err != nil {
			return report, Table{}, err
		}
		saveTotal += time.Since(start)
	}
	info, err := os.Stat(filepath.Join(snapDir, durable.SnapshotFile))
	if err != nil {
		return report, Table{}, err
	}
	report.SnapshotBytes = info.Size()
	saveNs := saveTotal.Nanoseconds() / saveReps
	report.Results = append(report.Results, DurableResult{
		Name:   "snapshot-save",
		Detail: fmt.Sprintf("%d versions, %d records", report.Versions, report.Records),
		Reps:   saveReps, Ns: saveNs, Bytes: report.SnapshotBytes,
		MBps: mbps(report.SnapshotBytes, saveNs),
	})

	// ---- snapshot restore ----------------------------------------------------
	const restoreReps = 3
	var restoreTotal time.Duration
	for i := 0; i < restoreReps; i++ {
		start := time.Now()
		restored, err := core.OpenDurable("durable", snapDir)
		if err != nil {
			return report, Table{}, err
		}
		restoreTotal += time.Since(start)
		rc, err := restored.CVD("cvd")
		if err != nil {
			return report, Table{}, err
		}
		if rc.NumVersions() != wantVersions || rc.NumRecords() != wantRecords {
			return report, Table{}, fmt.Errorf("benchmark: restore mismatch: %d/%d versions, %d/%d records",
				rc.NumVersions(), wantVersions, rc.NumRecords(), wantRecords)
		}
		restored.Close()
	}
	restoreNs := restoreTotal.Nanoseconds() / restoreReps
	report.Results = append(report.Results, DurableResult{
		Name:   "snapshot-restore",
		Detail: "OpenDurable from snapshot only",
		Reps:   restoreReps, Ns: restoreNs, Bytes: report.SnapshotBytes,
		MBps: mbps(report.SnapshotBytes, restoreNs),
	})

	// ---- WAL write (journaled load) -----------------------------------------
	order := commitOrder(w)
	walDir := filepath.Join(workDir, "wal")
	start := time.Now()
	we, err := core.OpenDurable("durable", walDir)
	if err != nil {
		return report, Table{}, err
	}
	if _, err := we.Init("cvd", w.Schema, w.Rows(order[0]), cvd.Options{Author: "bench", Message: "initial version"}); err != nil {
		return report, Table{}, err
	}
	wc, err := we.CVD("cvd")
	if err != nil {
		return report, Table{}, err
	}
	for _, v := range order[1:] {
		if _, err := wc.Commit(w.Graph.Parents(v), w.Rows(v), w.Schema, "bench", "bench"); err != nil {
			return report, Table{}, err
		}
	}
	walWrite := time.Since(start)
	we.Close()
	report.WALBytes, err = durable.WALBytes(walDir)
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, DurableResult{
		Name:   "wal-write",
		Detail: fmt.Sprintf("journaled load, fsync per commit, %d commits", len(order)),
		Reps:   1, Ns: walWrite.Nanoseconds(), Bytes: report.WALBytes,
		MBps: mbps(report.WALBytes, walWrite.Nanoseconds()),
	})

	// ---- WAL replay ----------------------------------------------------------
	start = time.Now()
	re, err := core.OpenDurable("durable", walDir)
	if err != nil {
		return report, Table{}, err
	}
	walReplay := time.Since(start)
	rc, err := re.CVD("cvd")
	if err != nil {
		return report, Table{}, err
	}
	if rc.NumVersions() != wantVersions {
		return report, Table{}, fmt.Errorf("benchmark: WAL replay recovered %d versions, want %d", rc.NumVersions(), wantVersions)
	}
	re.Close()
	report.Results = append(report.Results, DurableResult{
		Name:   "wal-replay",
		Detail: "OpenDurable from WAL only (no snapshot)",
		Reps:   1, Ns: walReplay.Nanoseconds(), Bytes: report.WALBytes,
		MBps: mbps(report.WALBytes, walReplay.Nanoseconds()),
	})

	// ---- re-init from CSV baseline -------------------------------------------
	csvDocs := make(map[vgraph.VersionID][]byte, len(order))
	var csvBytes int64
	for _, v := range order {
		doc := versionCSV(w, v)
		csvDocs[v] = doc
		csvBytes += int64(len(doc))
	}
	start = time.Now()
	ce := core.Open("durable")
	if _, err := ce.InitFromCSV("cvd", bytes.NewReader(csvDocs[order[0]]), w.Schema, cvd.Options{Author: "bench", Message: "initial version"}); err != nil {
		return report, Table{}, err
	}
	cc, err := ce.CVD("cvd")
	if err != nil {
		return report, Table{}, err
	}
	for _, v := range order[1:] {
		if _, err := cc.CommitCSV(w.Graph.Parents(v), bytes.NewReader(csvDocs[v]), w.Schema, "bench", "bench"); err != nil {
			return report, Table{}, err
		}
	}
	csvReinit := time.Since(start)
	if cc.NumVersions() != wantVersions {
		return report, Table{}, fmt.Errorf("benchmark: CSV re-init produced %d versions, want %d", cc.NumVersions(), wantVersions)
	}
	report.Results = append(report.Results, DurableResult{
		Name:   "csv-reinit",
		Detail: fmt.Sprintf("InitFromCSV + CommitCSV of every version (%d MiB of CSV)", csvBytes>>20),
		Reps:   1, Ns: csvReinit.Nanoseconds(), Bytes: csvBytes,
		MBps: mbps(csvBytes, csvReinit.Nanoseconds()),
	})

	if restoreNs > 0 {
		report.RestoreSpeedupVsCSV = float64(csvReinit.Nanoseconds()) / float64(restoreNs)
	}
	if walReplay > 0 {
		report.ReplaySpeedupVsCSV = float64(csvReinit.Nanoseconds()) / float64(walReplay.Nanoseconds())
	}

	table := Table{
		Title: fmt.Sprintf("Durable storage: snapshot + WAL vs CSV re-init (%s, scale %d; restore %.1fx, replay %.1fx vs CSV)",
			dataset, scale, report.RestoreSpeedupVsCSV, report.ReplaySpeedupVsCSV),
		Columns: []string{"measurement", "reps", "time", "bytes", "MB/s", "detail"},
	}
	for _, r := range report.Results {
		table.Rows = append(table.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Reps), ms(time.Duration(r.Ns)),
			fmt.Sprintf("%d", r.Bytes), f2(r.MBps), r.Detail,
		})
	}
	return report, table, nil
}

func mbps(bytes, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / (float64(ns) / 1e9)
}
