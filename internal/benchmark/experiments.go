package benchmark

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/deltastore"
	"repro/internal/partition"
	"repro/internal/provenance"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file is the experiment harness: every table and figure of the paper's
// evaluation has a function here that regenerates it (at laptop scale) and
// renders the same rows/series the paper reports. cmd/benchrunner and the
// root bench_test.go call into these functions.

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s ==\n", t.Title)
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, joinTabs(t.Columns))
	for _, r := range t.Rows {
		fmt.Fprintln(w, joinTabs(r))
	}
	w.Flush()
	return buf.String()
}

func joinTabs(ss []string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteString(s)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}

// ---- Figure 4.1: data model comparison --------------------------------------

// Fig41Result is one (dataset, model) measurement.
type Fig41Result struct {
	Dataset      string
	Model        cvd.ModelKind
	StorageBytes int64
	CommitTime   time.Duration
	CheckoutTime time.Duration
}

// RunFig41 reproduces Figure 4.1: for each scaled SCI dataset and each of the
// five data models, it loads the workload, then measures the time to check
// out the latest version and commit it back unchanged, plus total storage.
func RunFig41(datasets []string, scale int) ([]Fig41Result, Table, error) {
	if len(datasets) == 0 {
		datasets = []string{"SCI_1K", "SCI_2K", "SCI_5K", "SCI_8K"}
	}
	models := []cvd.ModelKind{cvd.TablePerVersion, cvd.CombinedTable, cvd.SplitByVlist, cvd.SplitByRlist, cvd.DeltaBased}
	var results []Fig41Result
	for _, name := range datasets {
		cfg, err := Preset(name, scale)
		if err != nil {
			return nil, Table{}, err
		}
		cfg.Attributes = 10
		w, err := Generate(cfg)
		if err != nil {
			return nil, Table{}, err
		}
		for _, model := range models {
			db := relstore.NewDatabase("fig41")
			c, err := LoadCVD(db, "cvd", w, model)
			if err != nil {
				return nil, Table{}, fmt.Errorf("loading %s into %s: %w", name, model, err)
			}
			latest, _ := c.LatestVersion()

			start := time.Now()
			tab, err := c.Checkout([]vgraph.VersionID{latest}, "work")
			if err != nil {
				return nil, Table{}, err
			}
			checkoutTime := time.Since(start)

			start = time.Now()
			if _, err := c.CommitTable("work", "re-commit", "bench"); err != nil {
				return nil, Table{}, err
			}
			commitTime := time.Since(start)
			_ = tab

			results = append(results, Fig41Result{
				Dataset:      name,
				Model:        model,
				StorageBytes: c.StorageBytes(),
				CommitTime:   commitTime,
				CheckoutTime: checkoutTime,
			})
			c.Drop()
		}
	}
	table := Table{
		Title:   "Figure 4.1: data model comparison (storage / commit / checkout)",
		Columns: []string{"dataset", "model", "storage_bytes", "commit", "checkout"},
	}
	for _, r := range results {
		table.Rows = append(table.Rows, []string{r.Dataset, r.Model.String(), d64(r.StorageBytes), ms(r.CommitTime), ms(r.CheckoutTime)})
	}
	return results, table, nil
}

// ---- Table 5.2: dataset description ------------------------------------------

// RunTable52 regenerates the dataset description table for the scaled
// workloads.
func RunTable52(datasets []string, scale int) (Table, error) {
	if len(datasets) == 0 {
		datasets = []string{"SCI_10K", "SCI_50K", "SCI_100K", "CUR_10K", "CUR_50K"}
	}
	table := Table{
		Title:   "Table 5.2: dataset description (scaled)",
		Columns: []string{"dataset", "|V|", "|R|", "|E|", "|B|", "|I|", "|R^|"},
	}
	for _, name := range datasets {
		cfg, err := Preset(name, scale)
		if err != nil {
			return Table{}, err
		}
		w, err := Generate(cfg)
		if err != nil {
			return Table{}, err
		}
		s, err := w.Stats()
		if err != nil {
			return Table{}, err
		}
		table.Rows = append(table.Rows, []string{
			s.Name, fmt.Sprintf("%d", s.Versions), d64(s.Records), d64(s.BipartiteEdges),
			fmt.Sprintf("%d", s.Branches), fmt.Sprintf("%d", s.InsertsPerVersion), d64(s.DuplicatedRecords),
		})
	}
	return table, nil
}

// ---- Figure 5.7: checkout cost model validation -----------------------------

// RunFig57 validates the checkout cost model: checkout time (and rows read)
// grows linearly with the number of records in the partition, for the three
// join strategies and the two physical layouts.
func RunFig57(partitionSizes []int64, rlistSizes []int64) (Table, error) {
	if len(partitionSizes) == 0 {
		partitionSizes = []int64{2000, 5000, 10000, 20000}
	}
	if len(rlistSizes) == 0 {
		rlistSizes = []int64{100, 1000}
	}
	table := Table{
		Title:   "Figure 5.7: checkout cost model validation",
		Columns: []string{"join", "cluster", "|Rk|", "|rlist|", "time", "seq_reads", "rand_reads"},
	}
	joins := []relstore.JoinMethod{relstore.HashJoin, relstore.MergeJoin, relstore.IndexNestedLoopJoin}
	clusters := []relstore.ClusterMode{relstore.ClusterOnRID, relstore.ClusterOnPK}
	clusterName := map[relstore.ClusterMode]string{relstore.ClusterOnRID: "rid", relstore.ClusterOnPK: "pk"}
	rng := rand.New(rand.NewSource(3))
	for _, cluster := range clusters {
		for _, join := range joins {
			for _, rk := range partitionSizes {
				tab := relstore.NewTable("data", relstore.MustSchema([]relstore.Column{
					{Name: "rid", Type: relstore.TypeInt},
					{Name: "pk", Type: relstore.TypeInt},
					{Name: "val", Type: relstore.TypeInt},
				}, "rid"))
				for i := int64(0); i < rk; i++ {
					tab.MustInsert(relstore.Row{relstore.Int(i), relstore.Int(rk - i), relstore.Int(rng.Int63n(1000))})
				}
				if cluster == relstore.ClusterOnRID {
					if err := tab.SortBy(relstore.ClusterOnRID, "rid"); err != nil {
						return Table{}, err
					}
				} else {
					if err := tab.SortBy(relstore.ClusterOnPK, "pk"); err != nil {
						return Table{}, err
					}
				}
				for _, rl := range rlistSizes {
					if rl > rk {
						continue
					}
					rlist := make([]int64, rl)
					for i := range rlist {
						rlist[i] = int64(rng.Int63n(rk))
					}
					tab.Stats().Reset()
					start := time.Now()
					if _, err := relstore.JoinOnRIDs(tab, "rid", rlist, join); err != nil {
						return Table{}, err
					}
					elapsed := time.Since(start)
					st := *tab.Stats()
					table.Rows = append(table.Rows, []string{
						join.String(), clusterName[cluster], d64(rk), d64(rl), ms(elapsed), d64(st.SeqReads), d64(st.RandomReads),
					})
				}
			}
		}
	}
	return table, nil
}

// ---- Figure 5.8 / 5.20: storage vs checkout trade-off -----------------------

// TradeoffPoint is one partitioning scheme's cost.
type TradeoffPoint struct {
	Algorithm   string
	Parameter   string
	Storage     int64
	AvgCheckout float64
}

// RunFig58 sweeps the partitioners' parameters on a workload and reports the
// (storage, checkout) curve of each algorithm, in records (the estimated-cost
// variant of Figures 5.8, 5.20 and 5.21; wall-clock checkout on the physical
// store is measured by RunFig514).
func RunFig58(dataset string, scale int) ([]TradeoffPoint, Table, error) {
	cfg, err := Preset(dataset, scale)
	if err != nil {
		return nil, Table{}, err
	}
	w, err := Generate(cfg)
	if err != nil {
		return nil, Table{}, err
	}
	tree, err := w.Tree()
	if err != nil {
		return nil, Table{}, err
	}
	var points []TradeoffPoint
	for _, delta := range []float64{0.01, 0.03, 0.1, 0.3, 0.6, 0.9} {
		res, err := partition.LyreSplit(tree, delta, partition.LyreSplitOptions{})
		if err != nil {
			return nil, Table{}, err
		}
		cost := w.Bipartite.EvaluatePartitioning(res.Partitioning)
		points = append(points, TradeoffPoint{Algorithm: "LyreSplit", Parameter: fmt.Sprintf("delta=%.2f", delta), Storage: cost.Storage, AvgCheckout: cost.AvgCheckout})
	}
	caps := []int64{w.Bipartite.NumRecords() / 8, w.Bipartite.NumRecords() / 4, w.Bipartite.NumRecords() / 2, w.Bipartite.NumRecords()}
	for _, bc := range caps {
		p, err := partition.Agglo(w.Bipartite, partition.AggloOptions{Capacity: bc})
		if err != nil {
			return nil, Table{}, err
		}
		cost := w.Bipartite.EvaluatePartitioning(p)
		points = append(points, TradeoffPoint{Algorithm: "Agglo", Parameter: fmt.Sprintf("BC=%d", bc), Storage: cost.Storage, AvgCheckout: cost.AvgCheckout})
	}
	for _, k := range []int{2, 5, 10, 20} {
		p, err := partition.Kmeans(w.Bipartite, partition.KmeansOptions{K: k, Seed: 7})
		if err != nil {
			return nil, Table{}, err
		}
		cost := w.Bipartite.EvaluatePartitioning(p)
		points = append(points, TradeoffPoint{Algorithm: "Kmeans", Parameter: fmt.Sprintf("K=%d", k), Storage: cost.Storage, AvgCheckout: cost.AvgCheckout})
	}
	table := Table{
		Title:   fmt.Sprintf("Figures 5.8 / 5.20: storage vs checkout trade-off (%s)", dataset),
		Columns: []string{"algorithm", "parameter", "storage_records", "avg_checkout_records"},
	}
	for _, p := range points {
		table.Rows = append(table.Rows, []string{p.Algorithm, p.Parameter, d64(p.Storage), f2(p.AvgCheckout)})
	}
	return points, table, nil
}

// ---- Figures 5.10 / 5.12: partitioner running time --------------------------

// RunFig510 measures the end-to-end running time of answering Problem 5.1
// (γ = 2|R|) with LyreSplit, Agglo and Kmeans.
func RunFig510(datasets []string, scale int) (Table, error) {
	if len(datasets) == 0 {
		datasets = []string{"SCI_10K", "SCI_50K", "CUR_10K"}
	}
	table := Table{
		Title:   "Figures 5.10 / 5.12: partitioning algorithm running time (γ = 2|R|)",
		Columns: []string{"dataset", "algorithm", "total_time", "avg_checkout_records", "storage_records"},
	}
	for _, name := range datasets {
		cfg, err := Preset(name, scale)
		if err != nil {
			return Table{}, err
		}
		w, err := Generate(cfg)
		if err != nil {
			return Table{}, err
		}
		tree, err := w.Tree()
		if err != nil {
			return Table{}, err
		}
		gamma := 2 * w.Bipartite.NumRecords()

		start := time.Now()
		ls, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
		if err != nil {
			return Table{}, err
		}
		lsTime := time.Since(start)
		lsCost := w.Bipartite.EvaluatePartitioning(ls.Partitioning)
		table.Rows = append(table.Rows, []string{name, "LyreSplit", ms(lsTime), f2(lsCost.AvgCheckout), d64(lsCost.Storage)})

		start = time.Now()
		_, aggloCost, err := partition.SolveStorageConstraintAgglo(w.Bipartite, gamma, partition.AggloOptions{})
		if err != nil {
			return Table{}, err
		}
		aggloTime := time.Since(start)
		table.Rows = append(table.Rows, []string{name, "Agglo", ms(aggloTime), f2(aggloCost.AvgCheckout), d64(aggloCost.Storage)})

		start = time.Now()
		_, kmeansCost, err := partition.SolveStorageConstraintKmeans(w.Bipartite, gamma, partition.KmeansOptions{Seed: 7})
		if err != nil {
			return Table{}, err
		}
		kmeansTime := time.Since(start)
		table.Rows = append(table.Rows, []string{name, "Kmeans", ms(kmeansTime), f2(kmeansCost.AvgCheckout), d64(kmeansCost.Storage)})
	}
	return table, nil
}

// ---- Figures 5.14 / 5.15: benefit of partitioning ---------------------------

// RunFig514 loads a workload into a split-by-rlist CVD, measures checkout
// time and storage without partitioning and with LyreSplit partitioning at
// γ ∈ {1.5, 2}·|R|.
func RunFig514(datasets []string, scale int, sampleVersions int) (Table, error) {
	if len(datasets) == 0 {
		datasets = []string{"SCI_10K", "CUR_10K"}
	}
	if sampleVersions <= 0 {
		sampleVersions = 20
	}
	table := Table{
		Title:   "Figures 5.14 / 5.15: checkout time and storage, with vs. without partitioning",
		Columns: []string{"dataset", "scheme", "avg_checkout", "data_records", "storage_bytes"},
	}
	for _, name := range datasets {
		cfg, err := Preset(name, scale)
		if err != nil {
			return Table{}, err
		}
		cfg.Attributes = 10
		w, err := Generate(cfg)
		if err != nil {
			return Table{}, err
		}
		db := relstore.NewDatabase("fig514")
		c, err := LoadCVD(db, "cvd", w, cvd.SplitByRlist)
		if err != nil {
			return Table{}, err
		}
		m, err := c.Rlist()
		if err != nil {
			return Table{}, err
		}
		tree, err := vgraph.ToTree(c.Graph())
		if err != nil {
			return Table{}, err
		}
		sample := sampleVersionIDs(c.Versions(), sampleVersions)

		measure := func() (time.Duration, error) {
			var total time.Duration
			for i, v := range sample {
				start := time.Now()
				if _, err := c.Checkout([]vgraph.VersionID{v}, fmt.Sprintf("s%d", i)); err != nil {
					return 0, err
				}
				total += time.Since(start)
				c.DiscardCheckout(fmt.Sprintf("s%d", i))
			}
			return total / time.Duration(len(sample)), nil
		}
		baseline, err := measure()
		if err != nil {
			return Table{}, err
		}
		table.Rows = append(table.Rows, []string{name, "without-partitioning", ms(baseline), d64(m.DataRecordCount()), d64(c.StorageBytes())})

		for _, factor := range []float64{1.5, 2.0} {
			gamma := int64(factor * float64(tree.DistinctRecords()))
			res, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
			if err != nil {
				return Table{}, err
			}
			if err := m.ApplyPartitioning(res.Partitioning); err != nil {
				return Table{}, err
			}
			t, err := measure()
			if err != nil {
				return Table{}, err
			}
			table.Rows = append(table.Rows, []string{name, fmt.Sprintf("LyreSplit(gamma=%.1f|R|)", factor), ms(t), d64(m.DataRecordCount()), d64(c.StorageBytes())})
		}
		c.Drop()
	}
	return table, nil
}

// ---- Concurrent checkout scaling (multi-client throughput) -------------------

// ConcurrentResult is one client-count measurement of the concurrent
// checkout scaling experiment.
type ConcurrentResult struct {
	Clients    int
	Checkouts  int // total checkouts across all clients
	Elapsed    time.Duration
	Throughput float64 // checkouts per second
	Speedup    float64 // throughput relative to the single-client run
}

// ConcurrentConfig parameterizes RunConcurrent.
type ConcurrentConfig struct {
	// Dataset and Scale select the workload preset (default SCI_10K, scale 1).
	Dataset string
	Scale   int
	// Clients is the list of concurrent client counts to sweep (default
	// 1, 2, 4, 8).
	Clients []int
	// CheckoutsPerClient is how many single-version checkouts each client
	// performs per run (default 10).
	CheckoutsPerClient int
	// SimLatency models the per-request client-server round trip of the
	// original PostgreSQL-backed deployment (the engine here is embedded and
	// in-memory, so without it a single-CPU machine cannot exhibit any
	// concurrency benefit). Each client sleeps this long after every
	// checkout, off the engine's locks, exactly like a client waiting on the
	// wire. 0 selects the default of 5ms; set it negative to disable the
	// sleep and measure pure in-process scaling on multi-core hardware.
	SimLatency time.Duration
	// Workers is the engine's intra-operation worker-pool size (the
	// WithWorkers knob; default 0 = single-threaded operations, so the sweep
	// isolates client-level concurrency).
	Workers int
}

func (c *ConcurrentConfig) applyDefaults() {
	if c.Dataset == "" {
		c.Dataset = "SCI_10K"
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8}
	}
	if c.CheckoutsPerClient <= 0 {
		c.CheckoutsPerClient = 10
	}
	if c.SimLatency < 0 {
		c.SimLatency = 0
	} else if c.SimLatency == 0 {
		c.SimLatency = 5 * time.Millisecond
	}
}

// RunConcurrent measures multi-client checkout throughput against a single
// shared engine — the concurrent-workload counterpart of Figure 5.14. The
// workload is loaded into a split-by-rlist CVD and partitioned with
// LyreSplit at γ = 2|R| (so every single-version checkout touches exactly
// one partition), then for each client count N, N goroutines concurrently
// perform CheckoutsPerClient checkouts each of sampled versions through the
// engine façade, discarding the staging table after every checkout. The
// table reports throughput and the speedup over the single-client run:
// since checkouts share the CVD's read lock, throughput should scale with
// the client count until CPUs (or, with SimLatency = 0 on one CPU, the lack
// of them) become the bottleneck.
func RunConcurrent(cfg ConcurrentConfig) ([]ConcurrentResult, Table, error) {
	cfg.applyDefaults()
	preset, err := Preset(cfg.Dataset, cfg.Scale)
	if err != nil {
		return nil, Table{}, err
	}
	preset.Attributes = 10
	w, err := Generate(preset)
	if err != nil {
		return nil, Table{}, err
	}
	engine := core.Open("concurrent", core.WithWorkers(cfg.Workers))
	c, err := LoadCVD(engine.Database(), "cvd", w, cvd.SplitByRlist)
	if err != nil {
		return nil, Table{}, err
	}
	if err := engine.Adopt(c); err != nil {
		return nil, Table{}, err
	}
	// Partition the CVD (Fig-5.14-style, γ = 2|R|) so each checkout scans one
	// partition.
	if _, err := engine.Optimize("cvd", 2.0); err != nil {
		return nil, Table{}, err
	}
	sample := sampleVersionIDs(c.Versions(), 32)

	var results []ConcurrentResult
	for _, n := range cfg.Clients {
		total := n * cfg.CheckoutsPerClient
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, n)
		for client := 0; client < n; client++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				for k := 0; k < cfg.CheckoutsPerClient; k++ {
					v := sample[(client*cfg.CheckoutsPerClient+k)%len(sample)]
					tab := fmt.Sprintf("co_n%d_c%d_k%d", n, client, k)
					if _, err := engine.Checkout("cvd", []vgraph.VersionID{v}, tab); err != nil {
						errs[client] = err
						return
					}
					c.DiscardCheckout(tab)
					if cfg.SimLatency > 0 {
						time.Sleep(cfg.SimLatency)
					}
				}
			}(client)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, Table{}, err
			}
		}
		results = append(results, ConcurrentResult{
			Clients:    n,
			Checkouts:  total,
			Elapsed:    elapsed,
			Throughput: float64(total) / elapsed.Seconds(),
		})
	}
	// Speedups are relative to the 1-client run when the sweep includes one,
	// and to the first run otherwise.
	base := results[0].Throughput
	for _, r := range results {
		if r.Clients == 1 {
			base = r.Throughput
			break
		}
	}
	if base > 0 {
		for i := range results {
			results[i].Speedup = results[i].Throughput / base
		}
	}
	table := Table{
		Title: fmt.Sprintf("Concurrent checkout scaling (%s, partitioned, latency=%s, workers=%d)",
			cfg.Dataset, cfg.SimLatency, cfg.Workers),
		Columns: []string{"clients", "checkouts", "elapsed", "throughput_per_s", "speedup_vs_1"},
	}
	for _, r := range results {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.Checkouts), ms(r.Elapsed),
			f2(r.Throughput), f2(r.Speedup),
		})
	}
	return results, table, nil
}

func sampleVersionIDs(vs []vgraph.VersionID, n int) []vgraph.VersionID {
	if len(vs) <= n {
		return vs
	}
	rng := rand.New(rand.NewSource(101))
	perm := rng.Perm(len(vs))
	out := make([]vgraph.VersionID, 0, n)
	for _, i := range perm[:n] {
		out = append(out, vs[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- Figures 5.17 / 5.19: online maintenance and migration ------------------

// RunFig517 simulates streaming commits with online maintenance: it tracks
// the drift of the online checkout cost from the best achievable cost,
// triggers migrations at tolerance µ, and compares intelligent migration
// against naive rebuilds.
func RunFig517(dataset string, scale int, mu float64, gammaFactor float64) (Table, error) {
	if mu <= 1 {
		mu = 1.5
	}
	if gammaFactor <= 1 {
		gammaFactor = 2
	}
	cfg, err := Preset(dataset, scale)
	if err != nil {
		return Table{}, err
	}
	w, err := Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	order := w.Graph.TopoOrder()
	// Replay the workload: partition after the first quarter, then stream the
	// rest with online maintenance, checking drift after every commit batch.
	cut := len(order) / 4
	if cut < 2 {
		cut = 2
	}
	streamed := vgraph.NewBipartite()
	streamedGraph := vgraph.New()
	addVersion := func(v vgraph.VersionID) error {
		streamed.SetVersion(v, w.Bipartite.Records(v))
		if _, err := streamedGraph.AddVersion(v, int64(len(w.Bipartite.Records(v)))); err != nil {
			return err
		}
		for _, p := range w.Graph.Parents(v) {
			if streamedGraph.Node(p) != nil {
				if err := streamedGraph.AddEdge(p, v, w.Bipartite.CommonRecords(p, v)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, v := range order[:cut] {
		if err := addVersion(v); err != nil {
			return Table{}, err
		}
	}
	tree, err := vgraph.ToTree(streamedGraph)
	if err != nil {
		return Table{}, err
	}
	gamma := int64(gammaFactor * float64(tree.DistinctRecords()))
	initial, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
	if err != nil {
		return Table{}, err
	}
	maintainer := partition.NewOnlineMaintainer(initial.Partitioning, initial.Delta, gamma, mu)

	table := Table{
		Title:   fmt.Sprintf("Figures 5.17 / 5.19: online maintenance and migration (µ=%.2f, γ=%.1f|R|)", mu, gammaFactor),
		Columns: []string{"versions_committed", "online_avg_checkout", "best_avg_checkout", "migration", "intelligent_mods", "naive_mods"},
	}
	migrations := 0
	for i := cut; i < len(order); i++ {
		v := order[i]
		if err := addVersion(v); err != nil {
			return Table{}, err
		}
		parents := streamedGraph.Parents(v)
		var bestParent vgraph.VersionID
		var shared int64
		for _, p := range parents {
			if e := streamedGraph.Edge(p, v); e != nil && e.Weight >= shared {
				shared, bestParent = e.Weight, p
			}
		}
		cur := maintainer.Partitioning()
		curCost := streamed.EvaluatePartitioning(cur)
		maintainer.OnCommit(v, bestParent, shared, streamed.NumRecords(), curCost.Storage)

		// Check drift every 10 commits (running LyreSplit after every commit is
		// cheap but the table would be enormous).
		if (i-cut)%10 != 9 && i != len(order)-1 {
			continue
		}
		tree, err = vgraph.ToTree(streamedGraph)
		if err != nil {
			return Table{}, err
		}
		gamma = int64(gammaFactor * float64(tree.DistinctRecords()))
		maintainer.Gamma = gamma
		drift, err := maintainer.CheckDrift(tree)
		if err != nil {
			return Table{}, err
		}
		migrated := "-"
		intelligentMods, naiveMods := int64(0), int64(0)
		if drift.TriggerMigration {
			best, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
			if err != nil {
				return Table{}, err
			}
			plan, err := partition.PlanMigration(streamed, maintainer.Partitioning(), best.Partitioning)
			if err != nil {
				return Table{}, err
			}
			intelligentMods = plan.EstimatedModifications
			naiveMods = streamed.EvaluatePartitioning(best.Partitioning).Storage
			maintainer.AdoptPartitioning(best.Partitioning, best.Delta)
			migrations++
			migrated = fmt.Sprintf("#%d", migrations)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", i+1), f2(drift.CurrentAvgCheckout), f2(drift.BestAvgCheckout),
			migrated, d64(intelligentMods), d64(naiveMods),
		})
	}
	return table, nil
}

// ---- Chapter 7: compact delta storage ---------------------------------------

// RunCh7 reproduces the Section 7.5 experiments at small scale: it builds a
// collection of text dataset versions, constructs the candidate storage
// graph with a line-diff encoder, and reports total storage and recreation
// costs of MST, SPT, LMG and MP across a sweep of constraints, plus the
// algorithms' running time.
func RunCh7(numVersions int, seed int64) (Table, error) {
	if numVersions <= 0 {
		numVersions = 40
	}
	store, pairs := syntheticFileVersions(numVersions, seed)
	g, err := store.BuildGraph(pairs)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title:   "Chapter 7 (§7.5): storage vs recreation across algorithms",
		Columns: []string{"algorithm", "constraint", "total_storage", "sum_recreation", "max_recreation", "time"},
	}
	addRow := func(name, constraint string, sol deltastore.Solution, elapsed time.Duration) error {
		costs, err := g.Evaluate(sol)
		if err != nil {
			return err
		}
		table.Rows = append(table.Rows, []string{name, constraint, f2(costs.TotalStorage), f2(costs.SumRecreation), f2(costs.MaxRecreation), ms(elapsed)})
		return nil
	}
	start := time.Now()
	mst, err := deltastore.MinimumStorage(g)
	if err != nil {
		return Table{}, err
	}
	if err := addRow("MST (Problem 7.1)", "-", mst, time.Since(start)); err != nil {
		return Table{}, err
	}
	mstCosts, _ := g.Evaluate(mst)

	start = time.Now()
	spt, err := deltastore.MinimumRecreation(g)
	if err != nil {
		return Table{}, err
	}
	if err := addRow("SPT (Problem 7.2)", "-", spt, time.Since(start)); err != nil {
		return Table{}, err
	}
	sptCosts, _ := g.Evaluate(spt)

	for _, factor := range []float64{1.5, 2, 3} {
		beta := factor * mstCosts.TotalStorage
		start = time.Now()
		sol, err := deltastore.MinSumRecreationUnderStorage(g, beta)
		if err != nil {
			return Table{}, err
		}
		if err := addRow("LMG (Problem 7.3)", fmt.Sprintf("C<=%.1f*MST", factor), sol, time.Since(start)); err != nil {
			return Table{}, err
		}
	}
	for _, factor := range []float64{1.5, 2, 4} {
		theta := factor * sptCosts.MaxRecreation
		start = time.Now()
		sol, err := deltastore.MinStorageUnderMaxRecreation(g, theta)
		if err != nil {
			return Table{}, err
		}
		if err := addRow("MP (Problem 7.6)", fmt.Sprintf("maxR<=%.1f*SPTmax", factor), sol, time.Since(start)); err != nil {
			return Table{}, err
		}
	}
	for _, factor := range []float64{2, 4} {
		theta := factor * sptCosts.SumRecreation
		start = time.Now()
		sol, err := deltastore.MinStorageUnderSumRecreation(g, theta)
		if err != nil {
			return Table{}, err
		}
		if err := addRow("LMG (Problem 7.5)", fmt.Sprintf("sumR<=%.1f*SPTsum", factor), sol, time.Since(start)); err != nil {
			return Table{}, err
		}
	}
	return table, nil
}

// syntheticFileVersions builds a branched collection of CSV-like text
// versions and the delta pairs to reveal (both directions of every
// derivation edge).
func syntheticFileVersions(n int, seed int64) (*deltastore.Store, [][2]int) {
	rng := rand.New(rand.NewSource(seed + 23))
	store := deltastore.NewStore(deltastore.LineDiff{})
	var contents [][]byte
	var pairs [][2]int
	var base bytes.Buffer
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&base, "gene%05d,%d,%d,%d\n", i, rng.Intn(1000), rng.Intn(1000), rng.Intn(1000))
	}
	contents = append(contents, base.Bytes())
	store.AddVersion(base.Bytes())
	for v := 2; v <= n; v++ {
		parent := rng.Intn(len(contents))
		lines := bytes.Split(bytes.TrimSuffix(contents[parent], []byte("\n")), []byte("\n"))
		out := make([][]byte, len(lines))
		copy(out, lines)
		for m := 0; m < 20; m++ {
			idx := rng.Intn(len(out))
			out[idx] = []byte(fmt.Sprintf("gene%05d,%d,%d,%d", idx, rng.Intn(1000), rng.Intn(1000), rng.Intn(1000)))
		}
		for m := 0; m < 5; m++ {
			out = append(out, []byte(fmt.Sprintf("gene%05d,%d,%d,%d", 10000+v*10+m, rng.Intn(1000), rng.Intn(1000), rng.Intn(1000))))
		}
		doc := append(bytes.Join(out, []byte("\n")), '\n')
		contents = append(contents, doc)
		store.AddVersion(doc)
		pairs = append(pairs, [2]int{parent + 1, v}, [2]int{v, parent + 1})
	}
	return store, pairs
}

// ---- Chapter 8: lineage inference -------------------------------------------

// RunCh8 reproduces the §8.8 preliminary evaluation: precision/recall of
// inferred lineage edges with and without the signature-based acceleration,
// together with the number of pairwise comparisons performed.
func RunCh8(numVersions int, seed int64) (Table, error) {
	if numVersions <= 0 {
		numVersions = 30
	}
	artifacts, truth := syntheticArtifacts(numVersions, seed)
	table := Table{
		Title:   "Chapter 8 (§8.8): lineage inference precision/recall",
		Columns: []string{"mode", "precision", "recall", "pairs_compared", "time"},
	}
	run := func(name string, opts provenance.Options) error {
		start := time.Now()
		res, err := provenance.InferLineage(artifacts, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		q := truth.Evaluate(res.Edges)
		table.Rows = append(table.Rows, []string{name, f2(q.Precision), f2(q.Recall), fmt.Sprintf("%d", res.PairsCompared), ms(elapsed)})
		return nil
	}
	if err := run("exhaustive", provenance.Options{}); err != nil {
		return Table{}, err
	}
	if err := run("signature-pruned(k=5)", provenance.Options{UseSignatures: true, CandidateLimit: 5}); err != nil {
		return Table{}, err
	}
	if err := run("signature-pruned(k=3)", provenance.Options{UseSignatures: true, CandidateLimit: 3}); err != nil {
		return Table{}, err
	}
	return table, nil
}

// syntheticArtifacts builds a repository of derived tables with known
// lineage: chains and branches of row modifications over a base table.
func syntheticArtifacts(n int, seed int64) ([]provenance.Artifact, provenance.GroundTruth) {
	rng := rand.New(rand.NewSource(seed + 31))
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "gene", Type: relstore.TypeString},
		{Name: "score", Type: relstore.TypeInt},
		{Name: "pvalue", Type: relstore.TypeFloat},
	})
	base := relstore.NewTable("t0", schema)
	for i := 0; i < 150; i++ {
		base.MustInsert(relstore.Row{relstore.Str(fmt.Sprintf("gene%04d", i)), relstore.Int(int64(rng.Intn(100))), relstore.Float(rng.Float64())})
	}
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	artifacts := []provenance.Artifact{{Name: "dataset_v1.csv", ModTime: ts, Table: base}}
	var truth [][2]string
	for v := 2; v <= n; v++ {
		parentIdx := rng.Intn(len(artifacts))
		parent := artifacts[parentIdx]
		child := parent.Table.Clone(fmt.Sprintf("t%d", v))
		// Apply a random operation: update some rows, insert a few, or delete.
		switch rng.Intn(3) {
		case 0:
			for m := 0; m < 10; m++ {
				child.Set(rng.Intn(child.Len()), 1, relstore.Int(int64(rng.Intn(100))))
			}
		case 1:
			for m := 0; m < 8; m++ {
				child.AppendRow(relstore.Row{relstore.Str(fmt.Sprintf("new%04d_%d", v, m)), relstore.Int(int64(rng.Intn(100))), relstore.Float(rng.Float64())})
			}
		default:
			child.Shrink(child.Len() - 8)
		}
		name := fmt.Sprintf("dataset_v%d.csv", v)
		artifacts = append(artifacts, provenance.Artifact{Name: name, ModTime: ts.Add(time.Duration(v) * time.Hour), Table: child})
		truth = append(truth, [2]string{parent.Name, name})
	}
	return artifacts, provenance.NewGroundTruth(truth)
}
