package benchmark

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// This file freezes the superseded implementations of the hot paths so the
// before/after experiments can report honest numbers against the same
// inputs: the pre-recset map-based LyreSplit and clone-per-row checkout
// (RunRecset), and the pre-columnar row-backed physical table layout with
// its closure-per-row predicate evaluation (RunColumnar). Nothing outside
// the benchmark harness calls these.

// legacyRowTable freezes the pre-columnar physical layout of
// relstore.Table: boxed Row tuples in a []Row slice, scanned row at a time,
// with a string-keyed staging index. Every scanned cell pays the Value
// struct copy and type-tag branch the columnar vectors eliminated.
type legacyRowTable struct {
	schema relstore.Schema
	rows   []relstore.Row
}

// newLegacyRowTable materializes a frozen row-backed copy of a table (done
// once outside any timed region).
func newLegacyRowTable(t *relstore.Table) *legacyRowTable {
	return &legacyRowTable{schema: t.Schema.Clone(), rows: t.Rows()}
}

// filter is the frozen row-at-a-time predicate scan (relstore.Table.Filter
// before the columnar rewrite).
func (t *legacyRowTable) filter(pred func(relstore.Row) bool) []relstore.Row {
	var out []relstore.Row
	for _, r := range t.rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// legacyNamedPredicate is the frozen cvd.NamedPredicate: a closure that
// re-dispatches on the operator string for every row it tests.
func legacyNamedPredicate(schema relstore.Schema, column, op string, value relstore.Value) (func(relstore.Row) bool, error) {
	idx := schema.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("benchmark: unknown column %q", column)
	}
	return func(r relstore.Row) bool {
		if idx >= len(r) {
			return false
		}
		cmp := r[idx].Compare(value)
		switch op {
		case "=", "==":
			return cmp == 0
		case "!=", "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		default:
			return false
		}
	}, nil
}

// legacyLyreSplitResult mirrors partition.LyreSplitResult's estimates so the
// harness can cross-check that old and new implementations agree.
type legacyLyreSplitResult struct {
	Assignment             map[vgraph.VersionID]int
	EstimatedStorage       int64
	EstimatedTotalCheckout int64
}

type legacyPart struct {
	root    vgraph.VersionID
	members map[vgraph.VersionID]bool
	nV      int
	nR      int64
	nE      int64
}

// legacyLyreSplit is the pre-recset LyreSplit: parts hold their members in
// map[VersionID]bool, splitting copies maps, and candidate evaluation sorts
// the member set on every split to restore a deterministic order.
func legacyLyreSplit(t *vgraph.Tree, delta float64) (legacyLyreSplitResult, error) {
	if err := t.Validate(); err != nil {
		return legacyLyreSplitResult{}, err
	}
	if delta <= 0 || delta > 1 {
		return legacyLyreSplitResult{}, fmt.Errorf("benchmark: delta %g out of range (0, 1]", delta)
	}
	fill := func(p *legacyPart) {
		p.nV = len(p.members)
		p.nE, p.nR = 0, 0
		for v := range p.members {
			p.nE += t.Records[v]
			if v == p.root {
				p.nR += t.Records[v]
			} else {
				p.nR += t.Records[v] - t.Weight[v]
			}
		}
	}
	root := &legacyPart{root: t.Root, members: make(map[vgraph.VersionID]bool, t.NumVersions())}
	for _, v := range t.SubtreeVersions(t.Root) {
		root.members[v] = true
	}
	fill(root)

	res := legacyLyreSplitResult{Assignment: make(map[vgraph.VersionID]int)}
	var finished []*legacyPart
	queue := []*legacyPart{root}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if p.nV <= 1 || float64(p.nR)*float64(p.nV) <= float64(p.nE)/delta {
			finished = append(finished, p)
			continue
		}
		cutChild, ok := legacyPickSplitEdge(t, p, delta)
		if !ok {
			finished = append(finished, p)
			continue
		}
		right := &legacyPart{root: cutChild, members: make(map[vgraph.VersionID]bool)}
		for _, v := range t.SubtreeVersions(cutChild) {
			if p.members[v] {
				right.members[v] = true
			}
		}
		left := &legacyPart{root: p.root, members: make(map[vgraph.VersionID]bool, len(p.members)-len(right.members))}
		for v := range p.members {
			if !right.members[v] {
				left.members[v] = true
			}
		}
		fill(left)
		fill(right)
		queue = append(queue, left, right)
	}
	for i, p := range finished {
		for v := range p.members {
			res.Assignment[v] = i
		}
		res.EstimatedStorage += p.nR
		res.EstimatedTotalCheckout += p.nR * int64(p.nV)
	}
	return res, nil
}

type legacySubtreeStats struct {
	nV int
	nR int64
}

func legacyPickSplitEdge(t *vgraph.Tree, p *legacyPart, delta float64) (vgraph.VersionID, bool) {
	stats := legacyComputeSubtreeStats(t, p)
	threshold := delta * float64(p.nR)
	candidates := make([]vgraph.VersionID, 0, len(p.members))
	for v := range p.members {
		if v == p.root {
			continue
		}
		candidates = append(candidates, v)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	var best vgraph.VersionID
	bestVDiff := math.MaxFloat64
	bestRDiff := math.MaxFloat64
	found := false
	for _, v := range candidates {
		if float64(t.Weight[v]) > threshold {
			continue
		}
		sub := stats[v]
		r2 := sub.nR
		r1 := p.nR - r2 + t.Weight[v]
		vDiff := math.Abs(float64(p.nV) - 2*float64(sub.nV))
		rDiff := math.Abs(float64(r1) - float64(r2))
		if !found || vDiff < bestVDiff || (vDiff == bestVDiff && rDiff < bestRDiff) {
			found = true
			best, bestVDiff, bestRDiff = v, vDiff, rDiff
		}
	}
	return best, found
}

func legacyComputeSubtreeStats(t *vgraph.Tree, p *legacyPart) map[vgraph.VersionID]legacySubtreeStats {
	stats := make(map[vgraph.VersionID]legacySubtreeStats, len(p.members))
	type frame struct {
		v       vgraph.VersionID
		childIx int
	}
	children := func(v vgraph.VersionID) []vgraph.VersionID {
		var out []vgraph.VersionID
		for _, c := range t.Children[v] {
			if p.members[c] {
				out = append(out, c)
			}
		}
		return out
	}
	var stack []frame
	stack = append(stack, frame{v: p.root})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := children(f.v)
		if f.childIx < len(kids) {
			next := kids[f.childIx]
			f.childIx++
			stack = append(stack, frame{v: next})
			continue
		}
		s := legacySubtreeStats{nV: 1, nR: t.Records[f.v]}
		for _, c := range kids {
			cs := stats[c]
			s.nV += cs.nV
			s.nR += cs.nR - t.Weight[c]
		}
		stats[f.v] = s
		stack = stack[:len(stack)-1]
	}
	return stats
}

// legacySolveStorageConstraint mirrors partition.SolveStorageConstraint's
// binary search over δ, driving the frozen map-based LyreSplit: the
// production shape of a partitioning run (Problem 5.1, γ in records).
func legacySolveStorageConstraint(t *vgraph.Tree, gamma int64) (legacyLyreSplitResult, error) {
	lo := legacyMinDelta(t)
	hi := 1.0
	const maxIter = 40
	best, err := legacyLyreSplit(t, lo)
	if err != nil {
		return legacyLyreSplitResult{}, err
	}
	for i := 0; i < maxIter; i++ {
		mid := (lo + hi) / 2
		res, err := legacyLyreSplit(t, mid)
		if err != nil {
			return legacyLyreSplitResult{}, err
		}
		if res.EstimatedStorage <= gamma {
			best = res
			lo = mid
			if float64(res.EstimatedStorage) >= 0.99*float64(gamma) {
				break
			}
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	return best, nil
}

func legacyMinDelta(t *vgraph.Tree) float64 {
	r := t.DistinctRecords()
	v := int64(t.NumVersions())
	e := t.TotalBipartiteEdges()
	if r == 0 || v == 0 {
		return 1
	}
	d := float64(e) / (float64(r) * float64(v))
	if d > 1 {
		return 1
	}
	return d
}

// legacyPartitionCopies materializes frozen row-backed copies of the tables
// backing the sampled versions' checkouts (done once, outside any timed
// region, so before-side measurements pay the legacy per-row work only).
func legacyPartitionCopies(db *relstore.Database, m interface {
	PartitionTableName(vgraph.VersionID) string
}, sample []vgraph.VersionID) (map[string]*legacyRowTable, error) {
	out := make(map[string]*legacyRowTable)
	for _, v := range sample {
		name := m.PartitionTableName(v)
		if _, ok := out[name]; ok {
			continue
		}
		data, ok := db.Table(name)
		if !ok {
			return nil, fmt.Errorf("benchmark: missing partition table for version %d", v)
		}
		out[name] = newLegacyRowTable(data)
	}
	return out, nil
}

// legacyCheckout replays the pre-recset, pre-columnar checkout
// materialization against a frozen row-backed copy of the version's backing
// table: build a map[int64]struct{} from the rid list, scan the rows probing
// it, deep-Clone every matching row, and build a string-keyed staging index
// — the exact per-row work Checkout used to do.
func legacyCheckout(data *legacyRowTable, rids []vgraph.RecordID) (*legacyRowTable, error) {
	ridIdx := data.schema.ColumnIndex("rid")
	if ridIdx < 0 {
		return nil, fmt.Errorf("benchmark: legacy table has no rid column")
	}
	set := make(map[int64]struct{}, len(rids))
	for _, r := range rids {
		set[int64(r)] = struct{}{}
	}
	out := &legacyRowTable{schema: data.schema}
	index := make(map[string]int, len(rids))
	for _, r := range data.rows {
		if _, ok := set[r[ridIdx].AsInt()]; ok {
			nr := r.Clone()
			index[strconv.FormatInt(nr[ridIdx].AsInt(), 10)] = len(out.rows)
			out.rows = append(out.rows, nr)
		}
	}
	if len(index) == 0 && len(rids) > 0 {
		return nil, fmt.Errorf("benchmark: legacy checkout matched no rows")
	}
	return out, nil
}
