package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// GroupCommitResult is one client-count point of the group-commit sweep:
// the same commit storm run twice against fresh data directories, once with
// batching disabled (every commit pays its own fsync — the pre-group-commit
// behaviour) and once with the batched WAL.
type GroupCommitResult struct {
	Clients          int   `json:"clients"`
	CommitsPerClient int   `json:"commits_per_client"`
	TotalCommits     int   `json:"total_commits"`
	BaselineNs       int64 `json:"baseline_ns"`
	BatchedNs        int64 `json:"batched_ns"`

	// Throughputs are total commits per second of wall time.
	BaselineThroughput float64 `json:"baseline_commits_per_sec"`
	BatchedThroughput  float64 `json:"batched_commits_per_sec"`

	// Speedup is batched over baseline throughput — the acceptance metric
	// (TestRunGroupCommit requires >= 2x at 64 clients).
	Speedup float64 `json:"speedup"`
}

// GroupCommitReport is the BENCH_groupcommit.json document.
type GroupCommitReport struct {
	MaxBatch   int                 `json:"max_batch"`
	MaxDelayUs int64               `json:"max_delay_us"`
	Results    []GroupCommitResult `json:"results"`
}

// JSON renders the report.
func (r GroupCommitReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// groupCommitSchema is deliberately tiny: the sweep measures the fsync
// amortization of the commit boundary, not row serialization.
func groupCommitSchema() relstore.Schema {
	return relstore.MustSchema([]relstore.Column{
		{Name: "id", Type: relstore.TypeInt},
		{Name: "val", Type: relstore.TypeInt},
	}, "id")
}

// commitStorm opens a fresh durable engine in its own directory, gives every
// client its own CVD (one CVD's commits serialize on its exclusive lock, so
// batching can only come from distinct datasets committing concurrently —
// the hosted many-client workload orpheusd serves), then times all clients
// committing concurrently.
func commitStorm(clients, commitsPerClient, maxBatch int, maxDelay time.Duration) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "gc-bench-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	e, err := core.OpenDurable("gc", dir, core.GroupCommit(maxBatch, maxDelay))
	if err != nil {
		return 0, err
	}
	defer e.Close()
	schema := groupCommitSchema()
	cvds := make([]*cvd.CVD, clients)
	for i := range cvds {
		c, err := e.Init(fmt.Sprintf("client%d", i), schema, []relstore.Row{{relstore.Int(int64(i)), relstore.Int(0)}}, cvd.Options{Author: "bench"})
		if err != nil {
			return 0, err
		}
		cvds[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i, c := range cvds {
		wg.Add(1)
		go func(i int, c *cvd.CVD) {
			defer wg.Done()
			parent := vgraph.VersionID(1)
			for n := 0; n < commitsPerClient; n++ {
				rows := []relstore.Row{{relstore.Int(int64(i)), relstore.Int(int64(n + 1))}}
				v, err := c.Commit([]vgraph.VersionID{parent}, rows, schema, "bench", "bench")
				if err != nil {
					errs <- fmt.Errorf("client %d commit %d: %w", i, n, err)
					return
				}
				parent = v
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	for i, c := range cvds {
		if got, want := c.NumVersions(), commitsPerClient+1; got != want {
			return 0, fmt.Errorf("client %d ended with %d versions, want %d", i, got, want)
		}
	}
	return elapsed, nil
}

// RunGroupCommit sweeps the WAL group-commit win at 64 and 256 concurrent
// clients. Each point runs the identical commit storm twice: MaxBatch 1
// (every commit fsyncs alone) vs the batched configuration, where a batch
// leader waits maxDelay for followers so concurrent commits share one
// write+fsync. commitsPerClient <= 0 selects the default (8).
func RunGroupCommit(commitsPerClient int) (GroupCommitReport, Table, error) {
	if commitsPerClient <= 0 {
		commitsPerClient = 8
	}
	// MaxBatch 0 selects the store default; the 2ms leader wait trades a
	// bounded latency bump for large batches under heavy concurrency.
	const maxBatch = 0
	const maxDelay = 2 * time.Millisecond
	report := GroupCommitReport{MaxBatch: maxBatch, MaxDelayUs: maxDelay.Microseconds()}

	for _, clients := range []int{64, 256} {
		baseline, err := commitStorm(clients, commitsPerClient, 1, 0)
		if err != nil {
			return report, Table{}, err
		}
		batched, err := commitStorm(clients, commitsPerClient, maxBatch, maxDelay)
		if err != nil {
			return report, Table{}, err
		}
		total := clients * commitsPerClient
		res := GroupCommitResult{
			Clients:          clients,
			CommitsPerClient: commitsPerClient,
			TotalCommits:     total,
			BaselineNs:       baseline.Nanoseconds(),
			BatchedNs:        batched.Nanoseconds(),
		}
		if baseline > 0 {
			res.BaselineThroughput = float64(total) / baseline.Seconds()
		}
		if batched > 0 {
			res.BatchedThroughput = float64(total) / batched.Seconds()
		}
		if res.BaselineThroughput > 0 {
			res.Speedup = res.BatchedThroughput / res.BaselineThroughput
		}
		report.Results = append(report.Results, res)
	}

	table := Table{
		Title:   fmt.Sprintf("WAL group commit: batched vs fsync-per-commit (%d commits/client)", commitsPerClient),
		Columns: []string{"clients", "commits", "baseline", "batched", "baseline c/s", "batched c/s", "speedup"},
	}
	for _, r := range report.Results {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.TotalCommits),
			ms(time.Duration(r.BaselineNs)), ms(time.Duration(r.BatchedNs)),
			f2(r.BaselineThroughput), f2(r.BatchedThroughput), f2(r.Speedup),
		})
	}
	return report, table, nil
}
