package benchmark

import (
	"testing"

	"repro/internal/cvd"
	"repro/internal/relstore"
)

// TestRunColumnar checks the shape and the acceptance bars of the columnar
// before/after experiment: the vectorized predicate-scan checkout-query must
// clear 2x over the frozen row path, and the partitioned checkout and
// LyreSplit solve must not regress by more than 10%.
func TestRunColumnar(t *testing.T) {
	report, table, err := RunColumnar("SCI_1K", 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RecsetResult{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	for _, name := range []string{"checkout-query-scan", "filter-scan", "checkout-partitioned", "lyresplit-solve"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing measurement %q\n%s", name, table)
		}
		if r.BeforeNs <= 0 || r.AfterNs <= 0 {
			t.Errorf("%s: non-positive timings %+v", name, r)
		}
	}
	// The acceptance bar of the columnar subsystem: >= 2x on the
	// predicate-scan checkout query vs the frozen clone+closure path.
	if s := byName["checkout-query-scan"].Speedup; s < 2 {
		t.Errorf("checkout-query-scan speedup = %.2fx, want >= 2x\n%s", s, table)
	}
	// No regression (>10%) on the guard measurements.
	for _, name := range []string{"checkout-partitioned", "lyresplit-solve"} {
		if s := byName[name].Speedup; s < 0.9 {
			t.Errorf("%s speedup = %.2fx, want >= 0.9x (no regression)\n%s", name, s, table)
		}
	}
}

// filterBenchTable builds a 100k-row integer table shaped like the
// benchmark data tables (rid + integer attributes).
func filterBenchTable(b *testing.B) *relstore.Table {
	b.Helper()
	preset, err := Preset("SCI_10K", 1)
	if err != nil {
		b.Fatal(err)
	}
	preset.Attributes = 10
	w, err := Generate(preset)
	if err != nil {
		b.Fatal(err)
	}
	db := relstore.NewDatabase("filterbench")
	c, err := LoadCVD(db, "cvd", w, cvd.SplitByRlist)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Drop)
	return db.MustTable("cvd_data")
}

// BenchmarkFilterVec times the vectorized predicate scan over a benchmark
// data table.
func BenchmarkFilterVec(b *testing.B) {
	tab := filterBenchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.FilterVec("a01", relstore.CmpGT, relstore.Int(500_000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterRowAtATime times the equivalent row-at-a-time Filter for
// direct comparison with BenchmarkFilterVec.
func BenchmarkFilterRowAtATime(b *testing.B) {
	tab := filterBenchTable(b)
	a01 := tab.Schema.ColumnIndex("a01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := tab.Filter(func(r relstore.Row) bool {
			return r[a01].Compare(relstore.Int(500_000)) > 0
		})
		_ = rows
	}
}
