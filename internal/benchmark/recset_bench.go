package benchmark

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cvd"
	"repro/internal/partition"
	"repro/internal/recset"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// RecsetResult is one before/after measurement of the compressed record-set
// subsystem: Before replays the frozen pre-recset implementation (legacy.go),
// After runs the current code on the same input.
type RecsetResult struct {
	Name     string  `json:"name"`
	Detail   string  `json:"detail"`
	Reps     int     `json:"reps"`
	BeforeNs int64   `json:"before_ns"`
	AfterNs  int64   `json:"after_ns"`
	Speedup  float64 `json:"speedup"`
}

// RecsetReport is the BENCH_recset.json document.
type RecsetReport struct {
	Dataset string         `json:"dataset"`
	Scale   int            `json:"scale"`
	Results []RecsetResult `json:"results"`
}

// JSON renders the report.
func (r RecsetReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

func timeReps(reps int, f func() error) (time.Duration, error) {
	// One warm-up rep keeps lazily-populated state (caches, allocator) out of
	// the measured window on both sides equally.
	if err := f(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// RunRecset measures the record-set subsystem before/after pairs on the
// benchrunner workloads and renders them as a table plus a RecsetReport
// (written to BENCH_recset.json by cmd/benchrunner):
//
//   - lyresplit-1k: LyreSplit over a ≥1000-version SCI tree, current recset
//     parts vs the frozen map-based implementation.
//   - checkout-partitioned: partitioned single-version checkout, zero-copy
//     recset-probe materialization vs the frozen map-probe + clone-per-row +
//     string-index path, on the Fig. 5.14-style workload.
//   - setops-intersect / setops-union: the record-set algebra underneath the
//     baselines and the migration planner, recset vs map.
func RunRecset(dataset string, scale int) (RecsetReport, Table, error) {
	report := RecsetReport{Dataset: dataset, Scale: scale}

	// ---- LyreSplit on a >= 1k-version tree --------------------------------
	cfg := Config{
		Name: "SCI_1KV", Kind: SCI,
		Branches: 100, VersionsPerBranch: 10,
		TargetRecords: 20_000, InsertsPerVersion: 20,
		UpdateFraction: 0.3, DeleteFraction: 0.02, Seed: 42,
	}
	wBig, err := Generate(cfg)
	if err != nil {
		return report, Table{}, err
	}
	tree, err := wBig.Tree()
	if err != nil {
		return report, Table{}, err
	}
	if tree.NumVersions() < 1000 {
		return report, Table{}, fmt.Errorf("benchmark: lyresplit workload has %d versions, want >= 1000", tree.NumVersions())
	}
	// The production shape of a partitioning run: Problem 5.1 at γ = 2|R|,
	// the binary search over δ of the Fig. 5.10/5.14 workloads.
	gamma := 2 * tree.DistinctRecords()
	// Sanity: both implementations must agree before timing means anything.
	newRes, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
	if err != nil {
		return report, Table{}, err
	}
	oldRes, err := legacySolveStorageConstraint(tree, gamma)
	if err != nil {
		return report, Table{}, err
	}
	if newRes.EstimatedStorage != oldRes.EstimatedStorage || newRes.EstimatedTotalCheckout != oldRes.EstimatedTotalCheckout {
		return report, Table{}, fmt.Errorf("benchmark: legacy and recset LyreSplit disagree: storage %d vs %d, checkout %d vs %d",
			oldRes.EstimatedStorage, newRes.EstimatedStorage, oldRes.EstimatedTotalCheckout, newRes.EstimatedTotalCheckout)
	}
	lsReps := 5
	before, err := timeReps(lsReps, func() error {
		_, err := legacySolveStorageConstraint(tree, gamma)
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err := timeReps(lsReps, func() error {
		_, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{})
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("lyresplit-1k",
		fmt.Sprintf("SolveStorageConstraint gamma=2|R|: |V|=%d |R|=%d, %d partitions", tree.NumVersions(), tree.DistinctRecords(), newRes.Partitioning.NumPartitions),
		lsReps, before, after))

	// ---- Partitioned checkout --------------------------------------------
	preset, err := Preset(dataset, scale)
	if err != nil {
		return report, Table{}, err
	}
	preset.Attributes = 10
	w, err := Generate(preset)
	if err != nil {
		return report, Table{}, err
	}
	db := relstore.NewDatabase("recset")
	c, err := LoadCVD(db, "cvd", w, cvd.SplitByRlist)
	if err != nil {
		return report, Table{}, err
	}
	defer c.Drop()
	m, err := c.Rlist()
	if err != nil {
		return report, Table{}, err
	}
	cvdTree, err := vgraph.ToTree(c.Graph())
	if err != nil {
		return report, Table{}, err
	}
	sol, err := partition.SolveStorageConstraint(cvdTree, 2*cvdTree.DistinctRecords(), partition.LyreSplitOptions{})
	if err != nil {
		return report, Table{}, err
	}
	if err := m.ApplyPartitioning(sol.Partitioning); err != nil {
		return report, Table{}, err
	}
	sample := sampleVersionIDs(c.Versions(), 20)
	ckReps := 10
	seq := 0
	legacyParts, err := legacyPartitionCopies(db, m, sample)
	if err != nil {
		return report, Table{}, err
	}
	before, err = timeReps(ckReps, func() error {
		for _, v := range sample {
			if _, err := legacyCheckout(legacyParts[m.PartitionTableName(v)], c.RecordsOf(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(ckReps, func() error {
		for _, v := range sample {
			seq++
			tab := fmt.Sprintf("co_%d", seq)
			if _, err := c.Checkout([]vgraph.VersionID{v}, tab); err != nil {
				return err
			}
			c.DiscardCheckout(tab)
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("checkout-partitioned",
		fmt.Sprintf("%s, %d partitions, %d sampled versions per rep", dataset, sol.Partitioning.NumPartitions, len(sample)),
		ckReps, before, after))

	// ---- Set algebra: intersect over derivation edges ---------------------
	edges := w.Derivations
	recSlices := make(map[vgraph.VersionID][]vgraph.RecordID)
	for _, e := range edges {
		for _, v := range []vgraph.VersionID{e[0], e[1]} {
			if _, ok := recSlices[v]; !ok {
				recSlices[v] = w.Bipartite.Records(v)
			}
		}
	}
	opReps := 20
	before, err = timeReps(opReps, func() error {
		total := int64(0)
		for _, e := range edges {
			set := make(map[vgraph.RecordID]struct{}, len(recSlices[e[0]]))
			for _, r := range recSlices[e[0]] {
				set[r] = struct{}{}
			}
			for _, r := range recSlices[e[1]] {
				if _, ok := set[r]; ok {
					total++
				}
			}
		}
		if total == 0 {
			return fmt.Errorf("benchmark: empty intersections")
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(opReps, func() error {
		total := int64(0)
		for _, e := range edges {
			total += w.Bipartite.CommonRecords(e[0], e[1])
		}
		if total == 0 {
			return fmt.Errorf("benchmark: empty intersections")
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("setops-intersect",
		fmt.Sprintf("%d derivation-edge intersections per rep (%s)", len(edges), dataset),
		opReps, before, after))

	// ---- Set algebra: union over partition groups -------------------------
	groups := sol.Partitioning.Groups()
	for _, vs := range groups {
		for _, v := range vs {
			if _, ok := recSlices[v]; !ok {
				recSlices[v] = w.Bipartite.Records(v)
			}
		}
	}
	before, err = timeReps(opReps, func() error {
		total := int64(0)
		for _, vs := range groups {
			seen := make(map[vgraph.RecordID]struct{})
			for _, v := range vs {
				for _, r := range recSlices[v] {
					seen[r] = struct{}{}
				}
			}
			total += int64(len(seen))
		}
		if total == 0 {
			return fmt.Errorf("benchmark: empty unions")
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(opReps, func() error {
		total := int64(0)
		for _, vs := range groups {
			u := recset.New()
			for _, v := range vs {
				u.UnionWith(w.Bipartite.RecordSet(v))
			}
			total += u.Len()
		}
		if total == 0 {
			return fmt.Errorf("benchmark: empty unions")
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("setops-union",
		fmt.Sprintf("%d partition-group unions per rep (%s)", len(groups), dataset),
		opReps, before, after))

	table := Table{
		Title:   fmt.Sprintf("Record-set subsystem: before/after (%s, scale %d)", dataset, scale),
		Columns: []string{"measurement", "reps", "before", "after", "speedup", "detail"},
	}
	for _, r := range report.Results {
		table.Rows = append(table.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Reps),
			ms(time.Duration(r.BeforeNs)), ms(time.Duration(r.AfterNs)),
			fmt.Sprintf("%.2fx", r.Speedup), r.Detail,
		})
	}
	return report, table, nil
}

func recsetResult(name, detail string, reps int, before, after time.Duration) RecsetResult {
	speedup := 0.0
	if after > 0 {
		speedup = float64(before) / float64(after)
	}
	return RecsetResult{
		Name: name, Detail: detail, Reps: reps,
		BeforeNs: before.Nanoseconds(), AfterNs: after.Nanoseconds(),
		Speedup: speedup,
	}
}
