package benchmark

import "testing"

func TestRunGroupCommit(t *testing.T) {
	report, table, err := RunGroupCommit(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %d, want 2 (64 and 256 clients)\n%s", len(report.Results), table)
	}
	for _, r := range report.Results {
		if r.BaselineThroughput <= 0 || r.BatchedThroughput <= 0 {
			t.Errorf("%d clients: non-positive throughput (baseline %.1f, batched %.1f)",
				r.Clients, r.BaselineThroughput, r.BatchedThroughput)
		}
		if r.TotalCommits != r.Clients*r.CommitsPerClient {
			t.Errorf("%d clients: total commits %d", r.Clients, r.TotalCommits)
		}
	}
	// The acceptance bar of WAL group commit: at 64 concurrent clients,
	// sharing fsyncs must at least double commit throughput over
	// fsync-per-commit.
	if report.Results[0].Speedup < 2 {
		t.Errorf("64-client group-commit speedup = %.2fx, want >= 2x\n%s", report.Results[0].Speedup, table)
	}
	if _, err := report.JSON(); err != nil {
		t.Fatal(err)
	}
}
