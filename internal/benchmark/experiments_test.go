package benchmark

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cvd"
)

// The experiment harness tests run every experiment at the smallest scale and
// check the qualitative claims of the paper hold (who wins, roughly by what
// factor), not absolute numbers.

func TestRunFig41Shape(t *testing.T) {
	results, table, err := RunFig41([]string{"SCI_1K"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("expected 5 model results, got %d", len(results))
	}
	byModel := map[cvd.ModelKind]Fig41Result{}
	for _, r := range results {
		byModel[r.Model] = r
	}
	// Figure 4.1(a): a-table-per-version storage far exceeds split-by-rlist.
	if byModel[cvd.TablePerVersion].StorageBytes < 2*byModel[cvd.SplitByRlist].StorageBytes {
		t.Errorf("a-table-per-version storage %d should be well above split-by-rlist %d",
			byModel[cvd.TablePerVersion].StorageBytes, byModel[cvd.SplitByRlist].StorageBytes)
	}
	// Figure 4.1(b): split-by-rlist commit is not slower than combined-table.
	if byModel[cvd.SplitByRlist].CommitTime > byModel[cvd.CombinedTable].CommitTime*2 {
		t.Errorf("split-by-rlist commit %v should not be much slower than combined-table %v",
			byModel[cvd.SplitByRlist].CommitTime, byModel[cvd.CombinedTable].CommitTime)
	}
	if !strings.Contains(table.String(), "split-by-rlist") {
		t.Error("rendered table missing model rows")
	}
}

func TestRunTable52(t *testing.T) {
	table, err := RunTable52([]string{"SCI_10K", "CUR_10K"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	if table.Rows[0][0] != "SCI_10K" {
		t.Errorf("first row = %v", table.Rows[0])
	}
}

func TestRunFig57(t *testing.T) {
	table, err := RunFig57([]int64{1000, 4000}, []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cluster modes × 3 joins × 2 partition sizes × 1 rlist size.
	if len(table.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(table.Rows))
	}
}

func TestRunFig58Shape(t *testing.T) {
	points, _, err := RunFig58("SCI_10K", 1)
	if err != nil {
		t.Fatal(err)
	}
	// LyreSplit's curve must contain at least one point that dominates the
	// single-partition extreme (storage modestly above |R|, checkout far
	// below |R|).
	algos := map[string]bool{}
	for _, p := range points {
		algos[p.Algorithm] = true
	}
	for _, want := range []string{"LyreSplit", "Agglo", "Kmeans"} {
		if !algos[want] {
			t.Errorf("missing %s points", want)
		}
	}
}

func TestRunFig510(t *testing.T) {
	table, err := RunFig510([]string{"SCI_10K"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per algorithm)", len(table.Rows))
	}
}

func TestRunFig514(t *testing.T) {
	table, err := RunFig514([]string{"SCI_10K"}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// baseline + two gamma settings.
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
}

func TestRunFig517(t *testing.T) {
	table, err := RunFig517("SCI_10K", 1, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("no drift rows produced")
	}
}

func TestRunConcurrent(t *testing.T) {
	// Small dataset so per-checkout compute stays far below the simulated
	// round trip: the speedup then reflects request overlap, which must hold
	// on any machine (including single-CPU CI runners).
	results, table, err := RunConcurrent(ConcurrentConfig{
		Dataset:            "SCI_1K",
		Clients:            []int{1, 8},
		CheckoutsPerClient: 6,
		SimLatency:         5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Clients != 1 || results[1].Clients != 8 {
		t.Fatalf("client counts = %d, %d", results[0].Clients, results[1].Clients)
	}
	for _, r := range results {
		if r.Checkouts != r.Clients*6 {
			t.Errorf("%d clients: %d checkouts, want %d", r.Clients, r.Checkouts, r.Clients*6)
		}
		if r.Throughput <= 0 {
			t.Errorf("%d clients: non-positive throughput %f", r.Clients, r.Throughput)
		}
	}
	// The acceptance bar of the concurrent execution layer: 8 concurrent
	// clients must clear at least 1.5x the single-client throughput.
	if results[1].Speedup < 1.5 {
		t.Errorf("8-client speedup = %.2f, want >= 1.5\n%s", results[1].Speedup, table)
	}
}

func TestRunDurable(t *testing.T) {
	report, table, err := RunDurable("SCI_1K", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 5 {
		t.Fatalf("results = %d, want 5\n%s", len(report.Results), table)
	}
	if report.SnapshotBytes <= 0 || report.WALBytes <= 0 {
		t.Errorf("empty artifacts: snapshot %d bytes, WAL %d bytes", report.SnapshotBytes, report.WALBytes)
	}
	// The acceptance bar of the durable subsystem: recovering the engine from
	// its binary snapshot must be at least 2x faster than re-ingesting every
	// version from CSV.
	if report.RestoreSpeedupVsCSV < 2 {
		t.Errorf("snapshot restore speedup vs CSV re-init = %.2fx, want >= 2x\n%s", report.RestoreSpeedupVsCSV, table)
	}
	if _, err := report.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestRunDurableIncremental is the incremental-checkpoint acceptance gate:
// on a large seeded CVD, a checkpoint after a small-delta burst must reuse
// almost everything (bytes written <= 15% of the full checkpoint and >= 4x
// faster), and the sampled lane codecs must shrink the flat snapshot >= 2x
// vs identity encodings. SCI_50K is deliberate — on smaller presets the
// always-re-encoded tail bands dominate and the margins vanish.
func TestRunDurableIncremental(t *testing.T) {
	report, table, err := RunDurableIncremental("SCI_50K", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The first checkpoint writes essentially everything; the pack may still
	// dedup the odd pair of identical small bands by content.
	if report.Full.ChunksWritten < report.Full.Chunks*9/10 {
		t.Errorf("full checkpoint wrote only %d of %d chunks", report.Full.ChunksWritten, report.Full.Chunks)
	}
	if report.Incremental.ChunksWritten >= report.Incremental.Chunks {
		t.Errorf("incremental checkpoint reused no chunks (%d/%d written)\n%s",
			report.Incremental.ChunksWritten, report.Incremental.Chunks, table)
	}
	if report.BytesWrittenRatio > 0.15 {
		t.Errorf("incremental checkpoint wrote %.1f%% of full-checkpoint bytes, want <= 15%%\n%s",
			report.BytesWrittenRatio*100, table)
	}
	if report.Speedup < 4 {
		t.Errorf("incremental checkpoint speedup = %.2fx, want >= 4x\n%s", report.Speedup, table)
	}
	if report.CompressionRatio < 2 {
		t.Errorf("lane codecs shrink the snapshot %.2fx, want >= 2x\n%s", report.CompressionRatio, table)
	}
	if _, err := report.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCh7(t *testing.T) {
	table, err := RunCh7(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 5 {
		t.Fatalf("rows = %d, want at least MST/SPT/LMG/MP entries", len(table.Rows))
	}
}

func TestRunCh8(t *testing.T) {
	table, err := RunCh8(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
}
