package benchmark

import (
	"testing"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

func smallSCI(t testing.TB) *Workload {
	t.Helper()
	cfg, err := Preset("SCI_1K", 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallCUR(t testing.TB) *Workload {
	t.Helper()
	cfg, err := Preset("CUR_10K", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TargetRecords = 2000
	cfg.InsertsPerVersion = 40
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPresetNamesResolve(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 1)
		if err != nil {
			t.Errorf("Preset(%s): %v", name, err)
			continue
		}
		if cfg.Name != name {
			t.Errorf("Preset(%s).Name = %q", name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Preset(%s) invalid: %v", name, err)
		}
	}
	if _, err := Preset("NOPE", 1); err == nil {
		t.Error("unknown preset should error")
	}
	// Scale multiplies records.
	c1, _ := Preset("SCI_10K", 1)
	c2, _ := Preset("SCI_10K", 3)
	if c2.TargetRecords != 3*c1.TargetRecords {
		t.Errorf("scale not applied: %d vs %d", c2.TargetRecords, c1.TargetRecords)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Branches: 0, TargetRecords: 10, InsertsPerVersion: 1},
		{Branches: 1, TargetRecords: 0, InsertsPerVersion: 1},
		{Branches: 1, TargetRecords: 10, InsertsPerVersion: 0},
		{Branches: 1, TargetRecords: 10, InsertsPerVersion: 1, UpdateFraction: 1.5},
		{Branches: 1, TargetRecords: 10, InsertsPerVersion: 1, UpdateFraction: 0.8, DeleteFraction: 0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	ok := Config{Kind: CUR, Branches: 2, TargetRecords: 100, InsertsPerVersion: 5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if ok.VersionsPerBranch == 0 || ok.Attributes == 0 || ok.MergeEvery == 0 {
		t.Error("defaults not applied")
	}
}

func TestGenerateSCIShape(t *testing.T) {
	w := smallSCI(t)
	stats, err := w.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Versions != w.Config.Branches*w.Config.VersionsPerBranch {
		t.Errorf("|V| = %d, want %d", stats.Versions, w.Config.Branches*w.Config.VersionsPerBranch)
	}
	// Record count lands within 50% of the target.
	if stats.Records < w.Config.TargetRecords/2 || stats.Records > w.Config.TargetRecords*2 {
		t.Errorf("|R| = %d, want near %d", stats.Records, w.Config.TargetRecords)
	}
	// SCI is a tree: no merges, no duplicated records.
	if !w.Graph.IsTree() {
		t.Error("SCI workload should produce a version tree")
	}
	if stats.DuplicatedRecords != 0 {
		t.Errorf("SCI |R̂| = %d, want 0", stats.DuplicatedRecords)
	}
	// Every non-root version has exactly one parent and shares records with it.
	for _, v := range w.Graph.Versions() {
		parents := w.Graph.Parents(v)
		if v == 1 {
			if len(parents) != 0 {
				t.Errorf("root has parents %v", parents)
			}
			continue
		}
		if len(parents) != 1 {
			t.Errorf("version %d has %d parents, want 1", v, len(parents))
		}
		if e := w.Graph.Edge(parents[0], v); e == nil || e.Weight == 0 {
			t.Errorf("version %d shares no records with its parent", v)
		}
	}
	// Bipartite edges exceed distinct records (versions share records).
	if stats.BipartiteEdges <= stats.Records {
		t.Errorf("|E| = %d should exceed |R| = %d", stats.BipartiteEdges, stats.Records)
	}
}

func TestGenerateCURHasMerges(t *testing.T) {
	w := smallCUR(t)
	if w.Graph.IsTree() {
		t.Fatal("CUR workload should contain merges")
	}
	merges := 0
	for _, v := range w.Graph.Versions() {
		if len(w.Graph.Parents(v)) > 1 {
			merges++
		}
	}
	if merges == 0 {
		t.Error("expected at least one merge version")
	}
	stats, err := w.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DuplicatedRecords < 0 {
		t.Errorf("|R̂| = %d", stats.DuplicatedRecords)
	}
	tree, err := w.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("tree conversion invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, _ := Preset("SCI_1K", 1)
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Bipartite.NumRecords() != w2.Bipartite.NumRecords() || w1.Bipartite.NumEdges() != w2.Bipartite.NumEdges() {
		t.Error("generation is not deterministic for a fixed seed")
	}
}

func TestWorkloadRows(t *testing.T) {
	w := smallSCI(t)
	rows := w.Rows(1)
	if int64(len(rows)) != int64(len(w.Bipartite.Records(1))) {
		t.Fatalf("Rows(1) = %d rows, want %d", len(rows), len(w.Bipartite.Records(1)))
	}
	if len(rows[0]) != w.Config.Attributes {
		t.Errorf("row width = %d, want %d", len(rows[0]), w.Config.Attributes)
	}
	// Keys are unique within a version (the schema's primary key).
	seen := map[int64]bool{}
	for _, r := range rows {
		k := r[0].AsInt()
		if seen[k] {
			t.Fatalf("duplicate key %d in version 1", k)
		}
		seen[k] = true
	}
}

func TestLoadCVDMatchesWorkload(t *testing.T) {
	cfg := Config{Kind: SCI, Name: "tiny", Branches: 4, VersionsPerBranch: 3, TargetRecords: 300, InsertsPerVersion: 20, Attributes: 6, UpdateFraction: 0.3, DeleteFraction: 0.05, Seed: 7}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDatabase("bench")
	c, err := LoadCVD(db, "tiny", w, cvd.SplitByRlist)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVersions() != w.Bipartite.NumVersions() {
		t.Fatalf("CVD has %d versions, workload has %d", c.NumVersions(), w.Bipartite.NumVersions())
	}
	// Version sizes agree.
	for _, v := range w.Graph.Versions() {
		want := len(w.Bipartite.Records(v))
		got := len(c.RecordsOf(v))
		if got != want {
			t.Errorf("version %d: CVD has %d records, workload has %d", v, got, want)
		}
	}
	// Distinct record counts agree (content-diff reconstructs identity).
	if c.NumRecords() != w.Bipartite.NumRecords() {
		t.Errorf("CVD |R| = %d, workload |R| = %d", c.NumRecords(), w.Bipartite.NumRecords())
	}
	// Checkout of a leaf version returns the right rows.
	leaves := w.Graph.Leaves()
	leaf := leaves[len(leaves)-1]
	tab, err := c.Checkout([]vgraph.VersionID{leaf}, "leafco")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(w.Bipartite.Records(leaf)) {
		t.Errorf("checkout(%d) = %d rows, want %d", leaf, tab.Len(), len(w.Bipartite.Records(leaf)))
	}
}

func TestLoadCVDCurWorkload(t *testing.T) {
	cfg := Config{Kind: CUR, Name: "tinycur", Branches: 3, VersionsPerBranch: 4, TargetRecords: 300, InsertsPerVersion: 15, Attributes: 6, UpdateFraction: 0.2, DeleteFraction: 0.02, MergeEvery: 2, Seed: 11}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewDatabase("bench")
	c, err := LoadCVD(db, "tinycur", w, cvd.SplitByRlist)
	if err != nil {
		t.Fatal(err)
	}
	// A merged version keeps both parents in the CVD graph.
	foundMerge := false
	for _, v := range c.Versions() {
		if len(c.Parents(v)) > 1 {
			foundMerge = true
		}
	}
	if !foundMerge {
		t.Error("CVD lost merge structure")
	}
}
