// Package benchmark generates the versioning benchmark workloads used in the
// evaluation of Chapters 4 and 5 (originally from the Decibel benchmark of
// Maddox et al.): the Science (SCI) workload, a mainline with branches and no
// merges, and the Curation (CUR) workload, where branches periodically merge
// back, producing a DAG. It also carries the dataset configurations of
// Table 5.2 (scaled down so they run inside the test harness) and helpers to
// load a generated workload into a CVD.
package benchmark

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// WorkloadKind selects the generator.
type WorkloadKind int

const (
	// SCI simulates data scientists taking copies of an evolving dataset for
	// isolated analysis: a mainline with branches, no merges (a version tree).
	SCI WorkloadKind = iota
	// CUR simulates curation of a canonical dataset: branches are created and
	// periodically merged back, producing a DAG.
	CUR
)

// String names the workload.
func (k WorkloadKind) String() string {
	if k == CUR {
		return "CUR"
	}
	return "SCI"
}

// Config are the generator parameters of Table 5.2.
type Config struct {
	Name string
	Kind WorkloadKind
	// Branches is |B|, the number of branches created.
	Branches int
	// TargetRecords is the requested |R| (the generator, like the original
	// benchmark, produces approximately this many records).
	TargetRecords int64
	// InsertsPerVersion is |I|, the number of inserts or updates applied when
	// deriving a new version from its parent(s).
	InsertsPerVersion int
	// VersionsPerBranch is how many versions each branch accumulates; the
	// total version count is roughly Branches * VersionsPerBranch.
	VersionsPerBranch int
	// Attributes is the record width (the paper uses 100 4-byte integers).
	Attributes int
	// UpdateFraction is the fraction of per-version modifications that update
	// existing records (the remainder are inserts). Deletions are rare in the
	// original benchmark; DeleteFraction controls them.
	UpdateFraction float64
	// DeleteFraction is the fraction of modifications that delete records.
	DeleteFraction float64
	// MergeEvery (CUR only) merges a branch back into its parent branch after
	// this many versions on the branch.
	MergeEvery int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration and applies defaults.
func (c *Config) Validate() error {
	if c.Branches <= 0 {
		return fmt.Errorf("benchmark: Branches must be positive")
	}
	if c.TargetRecords <= 0 {
		return fmt.Errorf("benchmark: TargetRecords must be positive")
	}
	if c.InsertsPerVersion <= 0 {
		return fmt.Errorf("benchmark: InsertsPerVersion must be positive")
	}
	if c.VersionsPerBranch <= 0 {
		c.VersionsPerBranch = 10
	}
	if c.Attributes <= 0 {
		c.Attributes = 20
	}
	if c.UpdateFraction < 0 || c.UpdateFraction > 1 {
		return fmt.Errorf("benchmark: UpdateFraction must be in [0,1]")
	}
	if c.DeleteFraction < 0 || c.DeleteFraction+c.UpdateFraction > 1 {
		return fmt.Errorf("benchmark: DeleteFraction must be in [0, 1-UpdateFraction]")
	}
	if c.Kind == CUR && c.MergeEvery <= 0 {
		c.MergeEvery = c.VersionsPerBranch
	}
	return nil
}

// Workload is a generated versioned dataset: the version-record bipartite
// graph, the derivation edges, record contents, and the resulting version
// graph.
type Workload struct {
	Config      Config
	Bipartite   *vgraph.Bipartite
	Graph       *vgraph.Graph
	Derivations [][2]vgraph.VersionID
	// RecordRows holds the attribute values of every record id.
	RecordRows map[vgraph.RecordID]relstore.Row
	// Schema is the relation schema of the records.
	Schema relstore.Schema
}

// Stats summarizes a workload in the shape of Table 5.2.
type Stats struct {
	Name              string
	Versions          int
	Records           int64
	BipartiteEdges    int64
	Branches          int
	InsertsPerVersion int
	DuplicatedRecords int64 // |R̂| after DAG→tree conversion (0 for trees)
}

// Stats computes the Table 5.2 row for the workload.
func (w *Workload) Stats() (Stats, error) {
	s := Stats{
		Name:              w.Config.Name,
		Versions:          w.Bipartite.NumVersions(),
		Records:           w.Bipartite.NumRecords(),
		BipartiteEdges:    w.Bipartite.NumEdges(),
		Branches:          w.Config.Branches,
		InsertsPerVersion: w.Config.InsertsPerVersion,
	}
	tree, err := vgraph.ToTree(w.Graph)
	if err != nil {
		return Stats{}, err
	}
	s.DuplicatedRecords = tree.DuplicatedRecords
	return s, nil
}

// Generate produces a workload from a configuration.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	w := &Workload{
		Config:     cfg,
		Bipartite:  vgraph.NewBipartite(),
		RecordRows: make(map[vgraph.RecordID]relstore.Row),
		Schema:     recordSchema(cfg.Attributes),
	}

	totalVersions := cfg.Branches * cfg.VersionsPerBranch
	if totalVersions < 1 {
		totalVersions = 1
	}
	// Scale the initial version and per-version inserts so the final record
	// count lands near TargetRecords.
	expectedInserted := int64(float64(totalVersions) * float64(cfg.InsertsPerVersion) * (1 - cfg.UpdateFraction - cfg.DeleteFraction))
	initialSize := cfg.TargetRecords - expectedInserted
	if initialSize < int64(cfg.InsertsPerVersion) {
		initialSize = int64(cfg.InsertsPerVersion)
	}

	nextRID := vgraph.RecordID(1)
	newRecord := func() vgraph.RecordID {
		rid := nextRID
		nextRID++
		w.RecordRows[rid] = randomRow(rng, cfg.Attributes, int64(rid))
		return rid
	}

	// Version 1: the initial canonical dataset.
	nextVID := vgraph.VersionID(1)
	base := make([]vgraph.RecordID, 0, initialSize)
	for i := int64(0); i < initialSize; i++ {
		base = append(base, newRecord())
	}
	w.Bipartite.SetVersion(nextVID, base)
	versionRecords := map[vgraph.VersionID][]vgraph.RecordID{nextVID: base}
	nextVID++

	// deriveVersion produces a child of parent by applying InsertsPerVersion
	// modifications (update / insert / delete mix).
	derive := func(parent vgraph.VersionID) vgraph.VersionID {
		parentRecs := versionRecords[parent]
		child := make([]vgraph.RecordID, len(parentRecs))
		copy(child, parentRecs)
		mods := cfg.InsertsPerVersion
		for i := 0; i < mods; i++ {
			r := rng.Float64()
			switch {
			case r < cfg.DeleteFraction && len(child) > 1:
				// delete a random record
				idx := rng.Intn(len(child))
				child[idx] = child[len(child)-1]
				child = child[:len(child)-1]
			case r < cfg.DeleteFraction+cfg.UpdateFraction && len(child) > 0:
				// update: replace a record with a fresh one (records are
				// immutable, so updates create new rids)
				idx := rng.Intn(len(child))
				child[idx] = newRecord()
			default:
				child = append(child, newRecord())
			}
		}
		v := nextVID
		nextVID++
		w.Bipartite.SetVersion(v, child)
		versionRecords[v] = w.Bipartite.Records(v)
		w.Derivations = append(w.Derivations, [2]vgraph.VersionID{parent, v})
		return v
	}

	// mergeVersions produces a child with two parents (CUR): the union of the
	// parents' records plus the usual modifications.
	mergeVersions := func(a, b vgraph.VersionID) vgraph.VersionID {
		union := w.Bipartite.Union([]vgraph.VersionID{a, b})
		child := make([]vgraph.RecordID, len(union))
		copy(child, union)
		for i := 0; i < cfg.InsertsPerVersion; i++ {
			child = append(child, newRecord())
		}
		v := nextVID
		nextVID++
		w.Bipartite.SetVersion(v, child)
		versionRecords[v] = w.Bipartite.Records(v)
		w.Derivations = append(w.Derivations, [2]vgraph.VersionID{a, v}, [2]vgraph.VersionID{b, v})
		return v
	}

	// Mainline: branch 0 extends version 1.
	mainline := []vgraph.VersionID{1}
	for i := 1; i < cfg.VersionsPerBranch; i++ {
		mainline = append(mainline, derive(mainline[len(mainline)-1]))
	}
	branchHeads := [][]vgraph.VersionID{mainline}

	for b := 1; b < cfg.Branches; b++ {
		// Branch from a random point of a random existing branch.
		src := branchHeads[rng.Intn(len(branchHeads))]
		forkPoint := src[rng.Intn(len(src))]
		branch := []vgraph.VersionID{derive(forkPoint)}
		for i := 1; i < cfg.VersionsPerBranch; i++ {
			branch = append(branch, derive(branch[len(branch)-1]))
			if cfg.Kind == CUR && i%cfg.MergeEvery == 0 {
				// Merge the branch head back into the tip of the source branch.
				merged := mergeVersions(src[len(src)-1], branch[len(branch)-1])
				src = append(src, merged)
				branch = append(branch, merged)
			}
		}
		branchHeads = append(branchHeads, branch)
	}

	g, err := w.Bipartite.BuildGraph(w.Derivations)
	if err != nil {
		return nil, err
	}
	w.Graph = g
	return w, nil
}

// recordSchema builds the benchmark record schema: a key column plus
// Attributes-1 integer attributes (the paper uses 100 integer attributes).
func recordSchema(attrs int) relstore.Schema {
	cols := make([]relstore.Column, 0, attrs)
	cols = append(cols, relstore.Column{Name: "key", Type: relstore.TypeInt})
	for i := 1; i < attrs; i++ {
		cols = append(cols, relstore.Column{Name: fmt.Sprintf("a%02d", i), Type: relstore.TypeInt})
	}
	return relstore.MustSchema(cols, "key")
}

func randomRow(rng *rand.Rand, attrs int, key int64) relstore.Row {
	row := make(relstore.Row, attrs)
	row[0] = relstore.Int(key)
	for i := 1; i < attrs; i++ {
		row[i] = relstore.Int(rng.Int63n(1_000_000))
	}
	return row
}

// Rows returns the record contents of a version as relstore rows (in record
// id order), suitable for committing into a CVD.
func (w *Workload) Rows(v vgraph.VersionID) []relstore.Row {
	recs := w.Bipartite.Records(v)
	out := make([]relstore.Row, 0, len(recs))
	for _, r := range recs {
		out = append(out, w.RecordRows[r])
	}
	return out
}

// Tree converts the workload's version graph to a version tree.
func (w *Workload) Tree() (*vgraph.Tree, error) { return vgraph.ToTree(w.Graph) }
