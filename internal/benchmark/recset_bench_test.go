package benchmark

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cvd"
	"repro/internal/partition"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// Focused microbenchmarks for the recset subsystem's two headline paths:
// partitioned checkout with and without the zero-copy fast path, and
// LyreSplit's γ-constrained solve on a ≥1k-version tree. The recset-vs-map
// set-operation benchmarks live next to the data structure in
// internal/recset; the full before/after suite (against the frozen legacy
// implementations) is RunRecset / BenchmarkRecsetSubsystem.

var checkoutBench struct {
	once   sync.Once
	c      *cvd.CVD
	sample []vgraph.VersionID
	err    error
}

func checkoutBenchSetup() (*cvd.CVD, []vgraph.VersionID, error) {
	checkoutBench.once.Do(func() {
		preset, err := Preset("SCI_10K", 1)
		if err != nil {
			checkoutBench.err = err
			return
		}
		preset.Attributes = 10
		w, err := Generate(preset)
		if err != nil {
			checkoutBench.err = err
			return
		}
		db := relstore.NewDatabase("cobench")
		c, err := LoadCVD(db, "cvd", w, cvd.SplitByRlist)
		if err != nil {
			checkoutBench.err = err
			return
		}
		m, err := c.Rlist()
		if err != nil {
			checkoutBench.err = err
			return
		}
		tree, err := vgraph.ToTree(c.Graph())
		if err != nil {
			checkoutBench.err = err
			return
		}
		sol, err := partition.SolveStorageConstraint(tree, 2*tree.DistinctRecords(), partition.LyreSplitOptions{})
		if err != nil {
			checkoutBench.err = err
			return
		}
		if err := m.ApplyPartitioning(sol.Partitioning); err != nil {
			checkoutBench.err = err
			return
		}
		checkoutBench.c = c
		checkoutBench.sample = sampleVersionIDs(c.Versions(), 20)
	})
	return checkoutBench.c, checkoutBench.sample, checkoutBench.err
}

func benchCheckout(b *testing.B, clone bool) {
	c, sample, err := checkoutBenchSetup()
	if err != nil {
		b.Fatal(err)
	}
	m, err := c.Rlist()
	if err != nil {
		b.Fatal(err)
	}
	m.SetCloneOnCheckout(clone)
	defer m.SetCloneOnCheckout(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := sample[i%len(sample)]
		tab := fmt.Sprintf("bench_co_%v_%d", clone, i)
		if _, err := c.Checkout([]vgraph.VersionID{v}, tab); err != nil {
			b.Fatal(err)
		}
		c.DiscardCheckout(tab)
	}
}

// BenchmarkCheckoutZeroCopy times partitioned single-version checkout with
// the zero-copy fast path (rows share the partition table's backing).
func BenchmarkCheckoutZeroCopy(b *testing.B) { benchCheckout(b, false) }

// BenchmarkCheckoutClone times the same checkout with the pre-zero-copy
// deep-clone behavior restored, for direct comparison.
func BenchmarkCheckoutClone(b *testing.B) { benchCheckout(b, true) }

// BenchmarkLyreSplit1KTree times the γ = 2|R| storage-constrained solve on a
// 1000-version SCI tree with the current recset-based implementation.
func BenchmarkLyreSplit1KTree(b *testing.B) {
	cfg := Config{
		Name: "SCI_1KV", Kind: SCI,
		Branches: 100, VersionsPerBranch: 10,
		TargetRecords: 20_000, InsertsPerVersion: 20,
		UpdateFraction: 0.3, DeleteFraction: 0.02, Seed: 42,
	}
	w, err := Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := w.Tree()
	if err != nil {
		b.Fatal(err)
	}
	gamma := 2 * tree.DistinctRecords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.SolveStorageConstraint(tree, gamma, partition.LyreSplitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
