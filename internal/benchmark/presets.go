package benchmark

import (
	"fmt"
	"sort"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// Presets mirror the datasets of Table 5.2, scaled down by roughly 100×
// (SCI_1M → SCI_10K and so on) so the full evaluation runs on a laptop. The
// proportions between |V|, |R|, |B| and |I| follow the table; Scale can be
// raised to approach the paper's sizes.

// Preset returns a named dataset configuration. Known names: SCI_10K,
// SCI_20K, SCI_50K, SCI_80K, SCI_100K, CUR_10K, CUR_50K, CUR_100K. The scale
// multiplier scales record counts and inserts (1 = default laptop scale).
func Preset(name string, scale int) (Config, error) {
	if scale <= 0 {
		scale = 1
	}
	base := map[string]Config{
		// SCI_1K..SCI_8K scale down the SCI_1M..SCI_8M series of Figure 4.1
		// (data-model comparison); they are small because the
		// a-table-per-version model materializes every version in full.
		"SCI_1K": {Kind: SCI, Branches: 10, VersionsPerBranch: 5, TargetRecords: 1_000, InsertsPerVersion: 20},
		"SCI_2K": {Kind: SCI, Branches: 10, VersionsPerBranch: 5, TargetRecords: 2_000, InsertsPerVersion: 40},
		"SCI_5K": {Kind: SCI, Branches: 10, VersionsPerBranch: 5, TargetRecords: 5_000, InsertsPerVersion: 100},
		"SCI_8K": {Kind: SCI, Branches: 10, VersionsPerBranch: 5, TargetRecords: 8_000, InsertsPerVersion: 160},
		// SCI_1M in the paper: |V|=1K, |R|=944K, |B|=100, |I|=1000.
		"SCI_10K":  {Kind: SCI, Branches: 20, VersionsPerBranch: 5, TargetRecords: 10_000, InsertsPerVersion: 100},
		"SCI_20K":  {Kind: SCI, Branches: 20, VersionsPerBranch: 5, TargetRecords: 20_000, InsertsPerVersion: 200},
		"SCI_50K":  {Kind: SCI, Branches: 20, VersionsPerBranch: 5, TargetRecords: 50_000, InsertsPerVersion: 500},
		"SCI_80K":  {Kind: SCI, Branches: 20, VersionsPerBranch: 5, TargetRecords: 80_000, InsertsPerVersion: 800},
		"SCI_100K": {Kind: SCI, Branches: 50, VersionsPerBranch: 10, TargetRecords: 100_000, InsertsPerVersion: 100},
		"CUR_10K":  {Kind: CUR, Branches: 20, VersionsPerBranch: 5, TargetRecords: 10_000, InsertsPerVersion: 100, MergeEvery: 3},
		"CUR_50K":  {Kind: CUR, Branches: 20, VersionsPerBranch: 5, TargetRecords: 50_000, InsertsPerVersion: 500, MergeEvery: 3},
		"CUR_100K": {Kind: CUR, Branches: 50, VersionsPerBranch: 10, TargetRecords: 100_000, InsertsPerVersion: 100, MergeEvery: 4},
	}
	cfg, ok := base[name]
	if !ok {
		return Config{}, fmt.Errorf("benchmark: unknown preset %q", name)
	}
	cfg.Name = name
	cfg.TargetRecords *= int64(scale)
	cfg.InsertsPerVersion *= scale
	cfg.Attributes = 20
	cfg.UpdateFraction = 0.3
	cfg.DeleteFraction = 0.02
	cfg.Seed = 42
	return cfg, nil
}

// PresetNames returns the known preset names in a stable order.
func PresetNames() []string {
	names := []string{
		"SCI_1K", "SCI_2K", "SCI_5K", "SCI_8K",
		"SCI_10K", "SCI_20K", "SCI_50K", "SCI_80K", "SCI_100K",
		"CUR_10K", "CUR_50K", "CUR_100K",
	}
	sort.Strings(names)
	return names
}

// LoadCVD commits every version of a workload into a fresh CVD (in
// topological order, preserving the derivation edges) using the requested
// data model, and returns it. This is the bridge between the synthetic
// workloads and the physical storage layer used by the Figure 4.1 and
// Chapter 5 experiments.
func LoadCVD(db *relstore.Database, name string, w *Workload, model cvd.ModelKind) (*cvd.CVD, error) {
	order := w.Graph.TopoOrder()
	if len(order) == 0 {
		return nil, fmt.Errorf("benchmark: workload has no versions")
	}
	c, err := cvd.Init(db, name, w.Schema, w.Rows(order[0]), cvd.Options{
		Model:   model,
		Author:  "benchmark",
		Message: "initial version",
	})
	if err != nil {
		return nil, err
	}
	// Workload version ids were assigned in commit order, and CVD ids are
	// assigned the same way, so ids line up as long as we commit in id order.
	rest := append([]vgraph.VersionID(nil), order[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, v := range rest {
		parents := w.Graph.Parents(v)
		got, err := c.Commit(parents, w.Rows(v), w.Schema, fmt.Sprintf("benchmark version %d", v), "benchmark")
		if err != nil {
			return nil, fmt.Errorf("benchmark: committing version %d: %w", v, err)
		}
		if got != v {
			return nil, fmt.Errorf("benchmark: version id mismatch: committed %d, expected %d", got, v)
		}
	}
	return c, nil
}
