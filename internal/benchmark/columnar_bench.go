package benchmark

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cvd"
	"repro/internal/partition"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// ColumnarReport is the BENCH_columnar.json document: before/after
// measurements of the columnar table layout and vectorized predicate
// evaluation against the frozen row-backed implementation (legacy.go).
type ColumnarReport struct {
	Dataset string         `json:"dataset"`
	Scale   int            `json:"scale"`
	Results []RecsetResult `json:"results"`
}

// JSON renders the report.
func (r ColumnarReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// RunColumnar measures the columnar storage subsystem before/after pairs on
// the benchrunner workloads and renders them as a table plus a
// ColumnarReport (written to BENCH_columnar.json by cmd/benchrunner):
//
//   - checkout-query-scan: versioned SELECT with a predicate over sampled
//     versions — the frozen path clones every record of every version and
//     tests it with the op-string-dispatching closure predicate; the current
//     path compiles the predicate once and evaluates it vectorized over the
//     data table's column vectors, reducing each version to a compressed-set
//     intersection.
//   - filter-scan: a bare predicate scan of the master data table — frozen
//     row-at-a-time Filter vs the vectorized FilterVec.
//   - checkout-partitioned: partitioned single-version checkout, columnar
//     gather (column sharing when the version covers its backing table) vs
//     the frozen row-clone materialization — the no-regression guard.
//   - lyresplit-solve: the partitioner's δ binary search, unchanged by this
//     subsystem — the second no-regression guard.
func RunColumnar(dataset string, scale int) (ColumnarReport, Table, error) {
	report := ColumnarReport{Dataset: dataset, Scale: scale}

	preset, err := Preset(dataset, scale)
	if err != nil {
		return report, Table{}, err
	}
	preset.Attributes = 10
	w, err := Generate(preset)
	if err != nil {
		return report, Table{}, err
	}
	db := relstore.NewDatabase("columnar")
	c, err := LoadCVD(db, "cvd", w, cvd.SplitByRlist)
	if err != nil {
		return report, Table{}, err
	}
	defer c.Drop()
	m, err := c.Rlist()
	if err != nil {
		return report, Table{}, err
	}
	cvdTree, err := vgraph.ToTree(c.Graph())
	if err != nil {
		return report, Table{}, err
	}
	sol, err := partition.SolveStorageConstraint(cvdTree, 2*cvdTree.DistinctRecords(), partition.LyreSplitOptions{})
	if err != nil {
		return report, Table{}, err
	}
	if err := m.ApplyPartitioning(sol.Partitioning); err != nil {
		return report, Table{}, err
	}

	// ---- Versioned SELECT with predicate (the headline) -------------------
	// Frozen side: the pre-columnar ScanVersions — per (version, record),
	// look the row up in the record catalog, deep-clone it, and test it with
	// the closure predicate that re-dispatches on the operator string.
	data := db.MustTable("cvd_data")
	catalog := make(map[int64]relstore.Row, data.Len())
	ridIdx := data.Schema.ColumnIndex("rid")
	for i := 0; i < data.Len(); i++ {
		r := data.RowAt(i)
		catalog[r[ridIdx].AsInt()] = r[1:] // data attributes only, like the record catalog
	}
	dataSchema := c.Schema()
	legacyPred, err := legacyNamedPredicate(dataSchema, "a01", ">", relstore.Int(900_000))
	if err != nil {
		return report, Table{}, err
	}
	pred, err := c.NamedPredicate("a01", ">", relstore.Int(900_000))
	if err != nil {
		return report, Table{}, err
	}
	sample := sampleVersionIDs(c.Versions(), 20)
	perVersion := make(map[vgraph.VersionID][]vgraph.RecordID, len(sample))
	for _, v := range sample {
		perVersion[v] = c.RecordsOf(v)
	}
	legacyScan := func() (int, error) {
		matched := 0
		for _, v := range sample {
			for _, rid := range perVersion[v] {
				row, ok := catalog[int64(rid)]
				if !ok {
					return 0, fmt.Errorf("benchmark: record %d missing from catalog", rid)
				}
				if legacyPred(row.Clone()) {
					matched++
				}
			}
		}
		return matched, nil
	}
	// Sanity: both plans must agree before timing means anything.
	wantMatched, err := legacyScan()
	if err != nil {
		return report, Table{}, err
	}
	got, err := c.ScanVersions(sample, pred, 0)
	if err != nil {
		return report, Table{}, err
	}
	if len(got) != wantMatched {
		return report, Table{}, fmt.Errorf("benchmark: legacy and vectorized SELECT disagree: %d vs %d rows", wantMatched, len(got))
	}
	qReps := 10
	before, err := timeReps(qReps, func() error {
		_, err := legacyScan()
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err := timeReps(qReps, func() error {
		_, err := c.ScanVersions(sample, pred, 0)
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("checkout-query-scan",
		fmt.Sprintf("SELECT WHERE a01 > 900000 over %d versions (%d matches; clone+closure vs vectorized pushdown)", len(sample), wantMatched),
		qReps, before, after))

	// ---- Bare predicate scan of the data table ----------------------------
	legacyData := newLegacyRowTable(data)
	a01 := data.Schema.ColumnIndex("a01")
	legacyFilter := func() (int, error) {
		rows := legacyData.filter(func(r relstore.Row) bool {
			return a01 < len(r) && r[a01].Compare(relstore.Int(500_000)) > 0
		})
		return len(rows), nil
	}
	wantRows, _ := legacyFilter()
	sel, err := data.FilterVec("a01", relstore.CmpGT, relstore.Int(500_000))
	if err != nil {
		return report, Table{}, err
	}
	if len(sel) != wantRows {
		return report, Table{}, fmt.Errorf("benchmark: legacy filter and FilterVec disagree: %d vs %d rows", wantRows, len(sel))
	}
	fReps := 20
	before, err = timeReps(fReps, func() error {
		_, err := legacyFilter()
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(fReps, func() error {
		_, err := data.FilterVec("a01", relstore.CmpGT, relstore.Int(500_000))
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("filter-scan",
		fmt.Sprintf("a01 > 500000 over the %d-row master data table (%d matches)", data.Len(), wantRows),
		fReps, before, after))

	// ---- Partitioned checkout (no-regression guard) -----------------------
	legacyParts, err := legacyPartitionCopies(db, m, sample)
	if err != nil {
		return report, Table{}, err
	}
	ckReps := 10
	seq := 0
	before, err = timeReps(ckReps, func() error {
		for _, v := range sample {
			if _, err := legacyCheckout(legacyParts[m.PartitionTableName(v)], perVersion[v]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(ckReps, func() error {
		for _, v := range sample {
			seq++
			tab := fmt.Sprintf("colco_%d", seq)
			if _, err := c.Checkout([]vgraph.VersionID{v}, tab); err != nil {
				return err
			}
			c.DiscardCheckout(tab)
		}
		return nil
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("checkout-partitioned",
		fmt.Sprintf("%s, %d partitions, %d sampled versions per rep (row-clone vs columnar gather)", dataset, sol.Partitioning.NumPartitions, len(sample)),
		ckReps, before, after))

	// ---- LyreSplit solve (no-regression guard) ----------------------------
	gamma := 2 * cvdTree.DistinctRecords()
	lsReps := 3
	before, err = timeReps(lsReps, func() error {
		_, err := legacySolveStorageConstraint(cvdTree, gamma)
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	after, err = timeReps(lsReps, func() error {
		_, err := partition.SolveStorageConstraint(cvdTree, gamma, partition.LyreSplitOptions{})
		return err
	})
	if err != nil {
		return report, Table{}, err
	}
	report.Results = append(report.Results, recsetResult("lyresplit-solve",
		fmt.Sprintf("SolveStorageConstraint gamma=2|R|: |V|=%d |R|=%d", cvdTree.NumVersions(), cvdTree.DistinctRecords()),
		lsReps, before, after))

	table := Table{
		Title:   fmt.Sprintf("Columnar storage subsystem: before/after (%s, scale %d)", dataset, scale),
		Columns: []string{"measurement", "reps", "before", "after", "speedup", "detail"},
	}
	for _, r := range report.Results {
		table.Rows = append(table.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Reps),
			ms(time.Duration(r.BeforeNs)), ms(time.Duration(r.AfterNs)),
			fmt.Sprintf("%.2fx", r.Speedup), r.Detail,
		})
	}
	return report, table, nil
}
