package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/cvd"
	"repro/internal/durable"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// CheckpointCost is one checkpoint's measured footprint, lifted from
// durable.CheckpointStats into the report document.
type CheckpointCost struct {
	Epoch         uint64 `json:"epoch"`
	Chunks        int    `json:"chunks"`
	ChunksWritten int    `json:"chunks_written"`
	ChunkBytes    int64  `json:"chunk_bytes"`
	BytesWritten  int64  `json:"bytes_written"`
	Ns            int64  `json:"ns"`
}

func checkpointCost(s durable.CheckpointStats) CheckpointCost {
	return CheckpointCost{
		Epoch:         s.Epoch,
		Chunks:        s.Chunks,
		ChunksWritten: s.ChunksWritten,
		ChunkBytes:    s.ChunkBytes,
		BytesWritten:  s.BytesWritten,
		Ns:            s.Duration.Nanoseconds(),
	}
}

// IncrementalReport is the durable-incremental experiment document: a full
// checkpoint of a seeded engine vs an incremental checkpoint after a burst
// of small commits, plus the lane-codec compression ratio of the snapshot.
type IncrementalReport struct {
	Dataset  string `json:"dataset"`
	Scale    int    `json:"scale"`
	Versions int    `json:"versions"`
	Records  int64  `json:"records"`

	// Full is the first checkpoint: every chunk is new.
	Full CheckpointCost `json:"full"`
	// Incremental is the checkpoint after BurstCommits small commits:
	// unchanged chunks are reused by content hash, so only the delta lands
	// on disk.
	BurstCommits int            `json:"burst_commits"`
	Incremental  CheckpointCost `json:"incremental"`

	// BytesWrittenRatio is incremental/full bytes written — the incremental
	// claim (TestRunDurableIncremental requires <= 0.15).
	BytesWrittenRatio float64 `json:"bytes_written_ratio"`
	// Speedup is full/incremental checkpoint wall time (requires >= 4x).
	Speedup float64 `json:"speedup"`

	// Lane-codec effect on the flat snapshot export: identity encodings vs
	// the sampled dict/delta codecs (requires >= 2x on SCI presets).
	RawSnapshotBytes     int64   `json:"raw_snapshot_bytes"`
	EncodedSnapshotBytes int64   `json:"encoded_snapshot_bytes"`
	CompressionRatio     float64 `json:"compression_ratio"`

	Results []DurableResult `json:"results"`
}

// JSON renders the report.
func (r IncrementalReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// burstRows builds one small commit's payload: fresh records whose keys sit
// far above the generated id space, so every burst commit appends a handful
// of new records instead of rewriting existing ones.
func burstRows(schema relstore.Schema, commit, perCommit int) []relstore.Row {
	cols := len(schema.ColumnNames())
	rows := make([]relstore.Row, 0, perCommit)
	for j := 0; j < perCommit; j++ {
		key := int64(10_000_000 + commit*perCommit + j)
		row := make(relstore.Row, cols)
		row[0] = relstore.Int(key)
		for i := 1; i < cols; i++ {
			row[i] = relstore.Int(key*31 + int64(i))
		}
		rows = append(rows, row)
	}
	return rows
}

// RunDurableIncremental measures what the content-addressed chunk store buys
// over rewriting the world:
//
//   - checkpoint-full: first checkpoint of a freshly seeded engine — every
//     band chunk is new, so this is the full-snapshot cost incremental runs
//     are compared against.
//   - checkpoint-incremental: after 20 small commits (a few dozen fresh
//     records each), only the tail bands, record-set runs, catalog band and
//     CVD head differ; interior chunks are reused by content hash.
//   - lane codecs: the same engine's flat snapshot written with identity
//     lanes vs the sampled dict/delta codecs.
//
// The acceptance bars (TestRunDurableIncremental): incremental bytes written
// <= 15% of the full checkpoint, incremental wall time >= 4x faster, and the
// codecs shrink the snapshot >= 2x on SCI-style data.
func RunDurableIncremental(dataset string, scale int) (IncrementalReport, Table, error) {
	report := IncrementalReport{Dataset: dataset, Scale: scale}
	cfg, err := Preset(dataset, scale)
	if err != nil {
		return report, Table{}, err
	}
	w, err := Generate(cfg)
	if err != nil {
		return report, Table{}, err
	}

	workDir, err := os.MkdirTemp("", "durable-incr-*")
	if err != nil {
		return report, Table{}, err
	}
	defer os.RemoveAll(workDir)

	// Seed in memory (no per-commit fsync) and adopt into a durable engine;
	// the first checkpoint attaches the adopted CVD to the journal, so the
	// burst commits after it are WAL-logged like any live engine's.
	dataDir := filepath.Join(workDir, "data")
	engine, err := core.OpenDurable("durable-incr", dataDir)
	if err != nil {
		return report, Table{}, err
	}
	defer engine.Close()
	c, err := LoadCVD(engine.Database(), "cvd", w, cvd.SplitByRlist)
	if err != nil {
		return report, Table{}, err
	}
	if err := engine.Adopt(c); err != nil {
		return report, Table{}, err
	}
	report.Versions = c.NumVersions()
	report.Records = c.NumRecords()

	// ---- full checkpoint -----------------------------------------------------
	if err := engine.Checkpoint(); err != nil {
		return report, Table{}, err
	}
	full, ok := engine.LastCheckpoint()
	if !ok {
		return report, Table{}, fmt.Errorf("benchmark: no stats after full checkpoint")
	}
	report.Full = checkpointCost(full)
	report.Results = append(report.Results, DurableResult{
		Name:   "checkpoint-full",
		Detail: fmt.Sprintf("first checkpoint, %d chunks all written", full.Chunks),
		Reps:   1, Ns: full.Duration.Nanoseconds(), Bytes: full.BytesWritten,
		MBps: mbps(full.BytesWritten, full.Duration.Nanoseconds()),
	})

	// ---- small-delta burst + incremental checkpoint --------------------------
	const burstCommits, rowsPerCommit = 20, 25
	report.BurstCommits = burstCommits
	for i := 0; i < burstCommits; i++ {
		if _, err := c.Commit([]vgraph.VersionID{1}, burstRows(w.Schema, i, rowsPerCommit), w.Schema,
			fmt.Sprintf("burst %d", i), "bench"); err != nil {
			return report, Table{}, err
		}
	}
	if err := engine.Checkpoint(); err != nil {
		return report, Table{}, err
	}
	incr, ok := engine.LastCheckpoint()
	if !ok {
		return report, Table{}, fmt.Errorf("benchmark: no stats after incremental checkpoint")
	}
	report.Incremental = checkpointCost(incr)
	report.Results = append(report.Results, DurableResult{
		Name: "checkpoint-incremental",
		Detail: fmt.Sprintf("after %d small commits: %d/%d chunks rewritten",
			burstCommits, incr.ChunksWritten, incr.Chunks),
		Reps: 1, Ns: incr.Duration.Nanoseconds(), Bytes: incr.BytesWritten,
		MBps: mbps(incr.BytesWritten, incr.Duration.Nanoseconds()),
	})
	if full.BytesWritten > 0 {
		report.BytesWrittenRatio = float64(incr.BytesWritten) / float64(full.BytesWritten)
	}
	if incr.Duration > 0 {
		report.Speedup = float64(full.Duration.Nanoseconds()) / float64(incr.Duration.Nanoseconds())
	}

	// ---- lane-codec compression ----------------------------------------------
	// Export the flat snapshot (sampled codecs on), reread it, and rewrite
	// with identity lanes to measure what dict/delta encoding saves.
	snapDir := filepath.Join(workDir, "snap")
	if err := engine.Save(snapDir); err != nil {
		return report, Table{}, err
	}
	encPath := filepath.Join(snapDir, durable.SnapshotFile)
	info, err := os.Stat(encPath)
	if err != nil {
		return report, Table{}, err
	}
	report.EncodedSnapshotBytes = info.Size()
	snap, err := durable.ReadSnapshotFile(encPath)
	if err != nil {
		return report, Table{}, err
	}
	rawPath := filepath.Join(workDir, "snapshot-raw.orph")
	if err := durable.WriteSnapshotFileOpts(rawPath, snap, durable.SnapshotOptions{RawLanes: true}); err != nil {
		return report, Table{}, err
	}
	if info, err = os.Stat(rawPath); err != nil {
		return report, Table{}, err
	}
	report.RawSnapshotBytes = info.Size()
	if report.EncodedSnapshotBytes > 0 {
		report.CompressionRatio = float64(report.RawSnapshotBytes) / float64(report.EncodedSnapshotBytes)
	}
	report.Results = append(report.Results,
		DurableResult{
			Name:   "snapshot-raw-lanes",
			Detail: "flat snapshot, identity lane encodings",
			Reps:   1, Bytes: report.RawSnapshotBytes,
		},
		DurableResult{
			Name:   "snapshot-encoded-lanes",
			Detail: fmt.Sprintf("sampled dict/delta codecs (%.1fx smaller)", report.CompressionRatio),
			Reps:   1, Bytes: report.EncodedSnapshotBytes,
		})

	table := Table{
		Title: fmt.Sprintf("Incremental checkpoints: content-addressed chunks (%s, scale %d; %.1f%% of full bytes, %.1fx faster, codecs %.1fx)",
			dataset, scale, report.BytesWrittenRatio*100, report.Speedup, report.CompressionRatio),
		Columns: []string{"measurement", "reps", "time", "bytes", "MB/s", "detail"},
	}
	for _, r := range report.Results {
		table.Rows = append(table.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Reps), ms(time.Duration(r.Ns)),
			fmt.Sprintf("%d", r.Bytes), f2(r.MBps), r.Detail,
		})
	}
	return report, table, nil
}
