// Package vquel implements VQuel, the generalized query language of
// Chapter 6: a Quel/GEM-style language for querying dataset versions, their
// metadata, the data inside them, version-graph traversals (P/D/N), and
// record-level provenance, independent of SQL.
//
// The package contains the conceptual data model of Figure 6.1 (Repository /
// Version / Relation / Record), a lexer and parser for the VQuel surface
// syntax, and an evaluator. Aggregates (count, sum, avg, min, max) are
// grouped implicitly by the iterators that appear outside the aggregate, as
// in the chapter's examples.
package vquel

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
)

// Version is a node of the conceptual data model: a commit with metadata and
// a set of named relations.
type Version struct {
	ID        string
	Author    string
	Message   string
	CommitTS  time.Time
	Parents   []*Version
	Children  []*Version
	Relations map[string]*Relation
}

// Relation is a named table inside a version.
type Relation struct {
	Name string
	// Changed records whether the relation differs from the same-named
	// relation in the parent version.
	Changed bool
	Table   *relstore.Table
	// Provenance maps a row index of this relation to the row indexes of the
	// parent version's same-named relation it was derived from (record-level
	// provenance, when available).
	Provenance map[int][]int
}

// Repository is the queryable universe: all versions keyed by id.
type Repository struct {
	versions map[string]*Version
	order    []string
}

// NewRepository creates an empty repository.
func NewRepository() *Repository {
	return &Repository{versions: make(map[string]*Version)}
}

// AddVersion registers a version; parents must already be registered.
func (r *Repository) AddVersion(v *Version, parentIDs ...string) error {
	if v == nil || v.ID == "" {
		return fmt.Errorf("vquel: version must have an id")
	}
	if _, dup := r.versions[v.ID]; dup {
		return fmt.Errorf("vquel: version %q already exists", v.ID)
	}
	if v.Relations == nil {
		v.Relations = make(map[string]*Relation)
	}
	for _, pid := range parentIDs {
		p, ok := r.versions[pid]
		if !ok {
			return fmt.Errorf("vquel: parent version %q not found", pid)
		}
		v.Parents = append(v.Parents, p)
		p.Children = append(p.Children, v)
	}
	r.versions[v.ID] = v
	r.order = append(r.order, v.ID)
	return nil
}

// Version returns a version by id.
func (r *Repository) Version(id string) (*Version, bool) {
	v, ok := r.versions[id]
	return v, ok
}

// Versions returns all versions in registration order.
func (r *Repository) Versions() []*Version {
	out := make([]*Version, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.versions[id])
	}
	return out
}

// ancestors returns all ancestors within maxHops (0 = unlimited), excluding v.
func (v *Version) ancestors(maxHops int) []*Version {
	return v.walk(maxHops, func(x *Version) []*Version { return x.Parents })
}

// descendants returns all descendants within maxHops, excluding v.
func (v *Version) descendants(maxHops int) []*Version {
	return v.walk(maxHops, func(x *Version) []*Version { return x.Children })
}

// neighborhood returns versions within maxHops in either direction.
func (v *Version) neighborhood(maxHops int) []*Version {
	return v.walk(maxHops, func(x *Version) []*Version {
		out := make([]*Version, 0, len(x.Parents)+len(x.Children))
		out = append(out, x.Parents...)
		out = append(out, x.Children...)
		return out
	})
}

func (v *Version) walk(maxHops int, next func(*Version) []*Version) []*Version {
	type qe struct {
		v    *Version
		hops int
	}
	seen := map[*Version]bool{v: true}
	var out []*Version
	queue := []qe{{v, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxHops > 0 && cur.hops >= maxHops {
			continue
		}
		for _, nb := range next(cur.v) {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			out = append(out, nb)
			queue = append(queue, qe{nb, cur.hops + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FromCVD builds a single-relation repository from a CVD: every version of
// the CVD becomes a repository version whose one relation (named after the
// CVD) holds that version's records. This lets VQuel queries run against
// OrpheusDB-managed data.
func FromCVD(c *cvd.CVD) (*Repository, error) {
	repo := NewRepository()
	// Snapshot takes the schema, metadata, and rows under one shared lock, so
	// a concurrent schema-widening commit cannot hand us rows wider than the
	// schema we pair them with.
	schema, versions, err := c.Snapshot()
	if err != nil {
		return nil, err
	}
	// Repository relations are read-only snapshots; drop the primary key so
	// records that collide across merged versions do not trip the index.
	schema.PrimaryKey = nil
	for _, vs := range versions {
		meta := vs.Meta
		tab := relstore.NewTable(c.Name(), schema)
		for _, row := range vs.Rows {
			if err := tab.Insert(row); err != nil {
				return nil, err
			}
		}
		v := &Version{
			ID:        fmt.Sprintf("v%d", meta.ID),
			Author:    meta.Author,
			Message:   meta.Message,
			CommitTS:  meta.CommitAt,
			Relations: map[string]*Relation{c.Name(): {Name: c.Name(), Table: tab, Changed: true}},
		}
		parentIDs := make([]string, 0, len(meta.Parents))
		for _, p := range meta.Parents {
			parentIDs = append(parentIDs, fmt.Sprintf("v%d", p))
		}
		if err := repo.AddVersion(v, parentIDs...); err != nil {
			return nil, err
		}
	}
	return repo, nil
}
