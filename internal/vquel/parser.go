package vquel

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ---- Lexer -----------------------------------------------------------------

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokDot
	tokComma
	tokLParen
	tokRParen
	tokOp // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	ch := l.input[l.pos]
	switch {
	case ch == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case ch == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ch == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ch == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ch == '=', ch == '<', ch == '>', ch == '!':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.input[start:l.pos], pos: start}, nil
	case ch == '"' || ch == '\'':
		quote := ch
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) && l.input[l.pos] != quote {
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		if l.pos >= len(l.input) {
			return token{}, fmt.Errorf("vquel: unterminated string literal at %d", start)
		}
		l.pos++
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case unicode.IsDigit(rune(ch)) || (ch == '-' && l.pos+1 < len(l.input) && unicode.IsDigit(rune(l.input[l.pos+1]))):
		l.pos++
		for l.pos < len(l.input) && (unicode.IsDigit(rune(l.input[l.pos])) || l.input[l.pos] == '.' || l.input[l.pos] == '/') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	case unicode.IsLetter(rune(ch)) || ch == '_':
		l.pos++
		for l.pos < len(l.input) && (unicode.IsLetter(rune(l.input[l.pos])) || unicode.IsDigit(rune(l.input[l.pos])) || l.input[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("vquel: unexpected character %q at %d", ch, start)
	}
}

func tokenize(input string) ([]token, error) {
	l := &lexer{input: input}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// ---- AST -------------------------------------------------------------------

// Query is a parsed VQuel query: range declarations followed by a retrieve.
type Query struct {
	Ranges   []RangeDecl
	Retrieve RetrieveStmt
}

// RangeDecl declares an iterator over a set expression.
type RangeDecl struct {
	Iterator string
	Set      PathExpr
}

// PathExpr is a navigation path: a base (the Version set or a previously
// declared iterator) followed by segments like Relations(name = "Employee"),
// Tuples, parents, P(2), D(), N(1), or attribute names.
type PathExpr struct {
	Base     string
	Segments []PathSegment
}

// PathSegment is one step of a path, optionally with an inline filter or a
// numeric argument (for P/D/N).
type PathSegment struct {
	Name   string
	Filter *Comparison // inline filter such as (name = "Employee")
	Arg    *int        // numeric argument for P/D/N
	HasArg bool
}

// RetrieveStmt is the projection with optional predicate and ordering.
type RetrieveStmt struct {
	Unique  bool
	Targets []Target
	Where   *BoolExpr
	SortBy  *PathExpr
	SortDsc bool
}

// Target is one output column: either a path or an aggregate.
type Target struct {
	Path *PathExpr
	Agg  *Aggregate
	As   string
}

// Aggregate is count/sum/avg/min/max over a path, with an optional inner
// where predicate. count_all is treated as count (the evaluator groups by
// all non-aggregated iterators, which covers the chapter's examples).
type Aggregate struct {
	Func  string
	Path  PathExpr
	Where *BoolExpr
}

// BoolExpr is a conjunction/disjunction tree of comparisons.
type BoolExpr struct {
	Op    string // "and", "or", "not", or "" for a leaf
	Left  *BoolExpr
	Right *BoolExpr
	Leaf  *Comparison
}

// Comparison compares two operands.
type Comparison struct {
	Left  Operand
	Op    string
	Right Operand
}

// Operand is a path, a literal, or an aggregate.
type Operand struct {
	Path    *PathExpr
	Agg     *Aggregate
	Literal *Literal
}

// Literal is a string or numeric constant.
type Literal struct {
	IsString bool
	S        string
	N        float64
}

// ---- Parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.toks[p.pos].kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectIdent(word string) error {
	t := p.advance()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("vquel: expected %q at position %d, got %q", word, t.pos, t.text)
	}
	return nil
}

// Parse parses a VQuel query.
func Parse(input string) (*Query, error) {
	toks, err := tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	for p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "range") {
		decl, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		q.Ranges = append(q.Ranges, decl)
	}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "retrieve") {
		r, err := p.parseRetrieve()
		if err != nil {
			return nil, err
		}
		q.Retrieve = r
	} else {
		return nil, fmt.Errorf("vquel: expected retrieve statement, got %q", p.peek().text)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("vquel: unexpected trailing input %q", p.peek().text)
	}
	if len(q.Ranges) == 0 {
		return nil, fmt.Errorf("vquel: query must declare at least one iterator")
	}
	return q, nil
}

func (p *parser) parseRange() (RangeDecl, error) {
	if err := p.expectIdent("range"); err != nil {
		return RangeDecl{}, err
	}
	if err := p.expectIdent("of"); err != nil {
		return RangeDecl{}, err
	}
	name := p.advance()
	if name.kind != tokIdent {
		return RangeDecl{}, fmt.Errorf("vquel: expected iterator name, got %q", name.text)
	}
	if err := p.expectIdent("is"); err != nil {
		return RangeDecl{}, err
	}
	path, err := p.parsePath()
	if err != nil {
		return RangeDecl{}, err
	}
	return RangeDecl{Iterator: name.text, Set: path}, nil
}

func (p *parser) parsePath() (PathExpr, error) {
	base := p.advance()
	if base.kind != tokIdent {
		return PathExpr{}, fmt.Errorf("vquel: expected path base, got %q", base.text)
	}
	path := PathExpr{Base: base.text}
	// Optional filter directly on the base, e.g. Version(id = "v01").
	if p.peek().kind == tokLParen {
		seg := PathSegment{Name: ""}
		if err := p.parseSegmentArgs(&seg); err != nil {
			return PathExpr{}, err
		}
		path.Segments = append(path.Segments, seg)
	}
	for p.peek().kind == tokDot {
		p.advance()
		name := p.advance()
		if name.kind != tokIdent {
			return PathExpr{}, fmt.Errorf("vquel: expected path segment, got %q", name.text)
		}
		seg := PathSegment{Name: name.text}
		if p.peek().kind == tokLParen {
			if err := p.parseSegmentArgs(&seg); err != nil {
				return PathExpr{}, err
			}
		}
		path.Segments = append(path.Segments, seg)
	}
	return path, nil
}

// parseSegmentArgs parses "( ... )" after a segment: either empty, a numeric
// argument, or an inline comparison filter.
func (p *parser) parseSegmentArgs(seg *PathSegment) error {
	p.advance() // consume (
	if p.peek().kind == tokRParen {
		p.advance()
		seg.HasArg = true
		return nil
	}
	if p.peek().kind == tokNumber {
		n, err := strconv.Atoi(p.advance().text)
		if err != nil {
			return fmt.Errorf("vquel: bad numeric argument: %w", err)
		}
		seg.Arg = &n
		seg.HasArg = true
		if p.peek().kind != tokRParen {
			return fmt.Errorf("vquel: expected ) after numeric argument, got %q", p.peek().text)
		}
		p.advance()
		return nil
	}
	cmp, err := p.parseComparison()
	if err != nil {
		return err
	}
	seg.Filter = &cmp
	if p.peek().kind != tokRParen {
		return fmt.Errorf("vquel: expected ) after filter, got %q", p.peek().text)
	}
	p.advance()
	return nil
}

func (p *parser) parseRetrieve() (RetrieveStmt, error) {
	if err := p.expectIdent("retrieve"); err != nil {
		return RetrieveStmt{}, err
	}
	stmt := RetrieveStmt{}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "unique") {
		p.advance()
		stmt.Unique = true
	}
	for {
		tgt, err := p.parseTarget()
		if err != nil {
			return RetrieveStmt{}, err
		}
		stmt.Targets = append(stmt.Targets, tgt)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "where") {
		p.advance()
		cond, err := p.parseBoolExpr()
		if err != nil {
			return RetrieveStmt{}, err
		}
		stmt.Where = cond
	}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "sort") {
		p.advance()
		if err := p.expectIdent("by"); err != nil {
			return RetrieveStmt{}, err
		}
		path, err := p.parsePath()
		if err != nil {
			return RetrieveStmt{}, err
		}
		stmt.SortBy = &path
		if p.peek().kind == tokIdent && (strings.EqualFold(p.peek().text, "desc") || strings.EqualFold(p.peek().text, "asc")) {
			stmt.SortDsc = strings.EqualFold(p.advance().text, "desc")
		}
	}
	return stmt, nil
}

var aggFuncs = map[string]bool{"count": true, "count_all": true, "sum": true, "sum_all": true, "avg": true, "min": true, "max": true}

func (p *parser) parseTarget() (Target, error) {
	if p.peek().kind == tokIdent && aggFuncs[strings.ToLower(p.peek().text)] && p.toks[p.pos+1].kind == tokLParen {
		agg, err := p.parseAggregate()
		if err != nil {
			return Target{}, err
		}
		return Target{Agg: agg, As: agg.Func}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return Target{}, err
	}
	name := path.Base
	if len(path.Segments) > 0 {
		name = path.Segments[len(path.Segments)-1].Name
	}
	tgt := Target{Path: &path, As: name}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "as") {
		p.advance()
		alias := p.advance()
		if alias.kind != tokIdent {
			return Target{}, fmt.Errorf("vquel: expected alias after 'as', got %q", alias.text)
		}
		tgt.As = alias.text
	}
	return tgt, nil
}

func (p *parser) parseAggregate() (*Aggregate, error) {
	fn := strings.ToLower(p.advance().text)
	fn = strings.TrimSuffix(fn, "_all")
	p.advance() // (
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	agg := &Aggregate{Func: fn, Path: path}
	// Optional "group by ..." is accepted and ignored (grouping is implicit
	// over the non-aggregated iterators), followed by an optional "where".
	for p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "group") {
		p.advance()
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		for {
			if _, err := p.parsePath(); err != nil {
				return nil, err
			}
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "where") {
		p.advance()
		cond, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		agg.Where = cond
	}
	if p.peek().kind != tokRParen {
		return nil, fmt.Errorf("vquel: expected ) to close aggregate, got %q", p.peek().text)
	}
	p.advance()
	return agg, nil
}

func (p *parser) parseBoolExpr() (*BoolExpr, error) {
	left, err := p.parseBoolTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && (strings.EqualFold(p.peek().text, "and") || strings.EqualFold(p.peek().text, "or")) {
		op := strings.ToLower(p.advance().text)
		right, err := p.parseBoolTerm()
		if err != nil {
			return nil, err
		}
		left = &BoolExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseBoolTerm() (*BoolExpr, error) {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "not") {
		p.advance()
		inner, err := p.parseBoolTerm()
		if err != nil {
			return nil, err
		}
		return &BoolExpr{Op: "not", Left: inner}, nil
	}
	cmp, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	return &BoolExpr{Leaf: &cmp}, nil
}

func (p *parser) parseComparison() (Comparison, error) {
	left, err := p.parseOperand()
	if err != nil {
		return Comparison{}, err
	}
	opTok := p.advance()
	if opTok.kind != tokOp {
		return Comparison{}, fmt.Errorf("vquel: expected comparison operator, got %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Op: opTok.text, Right: right}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch t := p.peek(); t.kind {
	case tokString:
		p.advance()
		return Operand{Literal: &Literal{IsString: true, S: t.text}}, nil
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, "/") {
			// Date-like literal such as 01/01/2015: keep as a string.
			return Operand{Literal: &Literal{IsString: true, S: t.text}}, nil
		}
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("vquel: bad number %q: %w", t.text, err)
		}
		return Operand{Literal: &Literal{N: n}}, nil
	case tokIdent:
		if aggFuncs[strings.ToLower(t.text)] && p.toks[p.pos+1].kind == tokLParen {
			agg, err := p.parseAggregate()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Agg: agg}, nil
		}
		path, err := p.parsePath()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Path: &path}, nil
	default:
		return Operand{}, fmt.Errorf("vquel: unexpected operand %q", t.text)
	}
}
