package vquel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/relstore"
)

// Result is the output of a VQuel query: named columns and rows of values.
type Result struct {
	Columns []string
	Rows    [][]relstore.Value
}

// value is anything an iterator can be bound to during evaluation.
type value struct {
	version  *Version
	relation *Relation
	tupleRel *Relation
	tupleIdx int
	scalar   relstore.Value
	isTuple  bool
	isScalar bool
}

func versionValue(v *Version) value   { return value{version: v} }
func relationValue(r *Relation) value { return value{relation: r} }
func tupleValue(r *Relation, idx int) value {
	return value{tupleRel: r, tupleIdx: idx, isTuple: true}
}
func scalarValue(v relstore.Value) value { return value{scalar: v, isScalar: true} }

// key returns a stable identity string for grouping and dedup.
func (v value) key() string {
	switch {
	case v.version != nil:
		return "V:" + v.version.ID
	case v.relation != nil:
		return "R:" + v.relation.Name
	case v.isTuple:
		return fmt.Sprintf("T:%s:%d", v.tupleRel.Name, v.tupleIdx)
	default:
		return "S:" + v.scalar.AsString()
	}
}

// render converts a value to a relstore scalar for output and comparisons.
func (v value) render() relstore.Value {
	switch {
	case v.isScalar:
		return v.scalar
	case v.version != nil:
		return relstore.Str(v.version.ID)
	case v.relation != nil:
		return relstore.Str(v.relation.Name)
	case v.isTuple:
		parts := make([]string, len(v.tupleRel.Table.Schema.Columns))
		for i := range parts {
			parts[i] = v.tupleRel.Table.StringAt(v.tupleIdx, i)
		}
		return relstore.Str(strings.Join(parts, "|"))
	default:
		return relstore.Null()
	}
}

// Evaluator runs parsed queries against a repository.
type Evaluator struct {
	repo *Repository
}

// NewEvaluator creates an evaluator over a repository.
func NewEvaluator(repo *Repository) *Evaluator { return &Evaluator{repo: repo} }

// Run parses and evaluates a VQuel query string.
func (e *Evaluator) Run(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

type binding map[string]value

// Eval evaluates a parsed query.
func (e *Evaluator) Eval(q *Query) (*Result, error) {
	iterators := make([]string, 0, len(q.Ranges))
	for _, r := range q.Ranges {
		iterators = append(iterators, r.Iterator)
	}
	// Enumerate all bindings of the declared iterators.
	var bindings []binding
	var enumerate func(i int, cur binding) error
	enumerate = func(i int, cur binding) error {
		if i == len(q.Ranges) {
			cp := make(binding, len(cur))
			for k, v := range cur {
				cp[k] = v
			}
			bindings = append(bindings, cp)
			return nil
		}
		domain, err := e.evalPath(q.Ranges[i].Set, cur)
		if err != nil {
			return err
		}
		for _, v := range domain {
			cur[q.Ranges[i].Iterator] = v
			if err := enumerate(i+1, cur); err != nil {
				return err
			}
		}
		delete(cur, q.Ranges[i].Iterator)
		return nil
	}
	if err := enumerate(0, binding{}); err != nil {
		return nil, err
	}

	// Which iterators are aggregated? Those that appear in aggregate paths
	// but not in plain targets, plain where operands, or sort-by.
	aggregated := map[string]bool{}
	plain := map[string]bool{}
	markPath := func(p *PathExpr, m map[string]bool) {
		if p != nil {
			m[p.Base] = true
		}
	}
	for _, t := range q.Retrieve.Targets {
		if t.Agg != nil {
			markPath(&t.Agg.Path, aggregated)
		} else {
			markPath(t.Path, plain)
		}
	}
	var scanBool func(b *BoolExpr)
	scanBool = func(b *BoolExpr) {
		if b == nil {
			return
		}
		if b.Leaf != nil {
			for _, op := range []Operand{b.Leaf.Left, b.Leaf.Right} {
				if op.Agg != nil {
					markPath(&op.Agg.Path, aggregated)
				} else if op.Path != nil {
					markPath(op.Path, plain)
				}
			}
		}
		scanBool(b.Left)
		scanBool(b.Right)
	}
	scanBool(q.Retrieve.Where)
	markPath(q.Retrieve.SortBy, plain)
	// Free iterators: declared, not purely aggregated.
	var free []string
	for _, it := range iterators {
		if plain[it] || !aggregated[it] {
			free = append(free, it)
		}
	}

	// Group bindings by the free iterators.
	type group struct {
		rep      binding
		bindings []binding
	}
	groups := map[string]*group{}
	var order []string
	for _, b := range bindings {
		var kb strings.Builder
		for _, it := range free {
			kb.WriteString(b[it].key())
			kb.WriteByte('\x1e')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{rep: b}
			groups[k] = g
			order = append(order, k)
		}
		g.bindings = append(g.bindings, b)
	}

	res := &Result{}
	for _, t := range q.Retrieve.Targets {
		res.Columns = append(res.Columns, t.As)
	}
	type sortable struct {
		row []relstore.Value
		key relstore.Value
	}
	var rows []sortable
	seen := map[string]bool{}
	for _, k := range order {
		g := groups[k]
		// Evaluate the where clause at group level.
		if q.Retrieve.Where != nil {
			ok, err := e.evalBool(q.Retrieve.Where, g.rep, g.bindings)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		row := make([]relstore.Value, 0, len(q.Retrieve.Targets))
		for _, t := range q.Retrieve.Targets {
			if t.Agg != nil {
				v, err := e.evalAggregate(t.Agg, g.bindings)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
				continue
			}
			vals, err := e.evalPath(*t.Path, g.rep)
			if err != nil {
				return nil, err
			}
			if len(vals) == 0 {
				row = append(row, relstore.Null())
			} else {
				row = append(row, vals[0].render())
			}
		}
		var sortKey relstore.Value
		if q.Retrieve.SortBy != nil {
			vals, err := e.evalPath(*q.Retrieve.SortBy, g.rep)
			if err != nil {
				return nil, err
			}
			if len(vals) > 0 {
				sortKey = vals[0].render()
			}
		}
		if q.Retrieve.Unique {
			var kb strings.Builder
			for _, v := range row {
				kb.WriteString(v.AsString())
				kb.WriteByte('\x1e')
			}
			if seen[kb.String()] {
				continue
			}
			seen[kb.String()] = true
		}
		rows = append(rows, sortable{row: row, key: sortKey})
	}
	if q.Retrieve.SortBy != nil {
		sort.SliceStable(rows, func(i, j int) bool {
			cmp := rows[i].key.Compare(rows[j].key)
			if q.Retrieve.SortDsc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.row)
	}
	return res, nil
}

// evalPath evaluates a path expression under a binding, returning the set of
// values it denotes.
func (e *Evaluator) evalPath(p PathExpr, b binding) ([]value, error) {
	var current []value
	if strings.EqualFold(p.Base, "Version") || strings.EqualFold(p.Base, "Versions") {
		for _, v := range e.repo.Versions() {
			current = append(current, versionValue(v))
		}
	} else if bound, ok := b[p.Base]; ok {
		current = []value{bound}
	} else {
		return nil, fmt.Errorf("vquel: unknown iterator or set %q", p.Base)
	}
	for _, seg := range p.Segments {
		var next []value
		for _, v := range current {
			out, err := e.step(v, seg, b)
			if err != nil {
				return nil, err
			}
			next = append(next, out...)
		}
		current = next
	}
	return current, nil
}

// step applies one path segment to a value.
func (e *Evaluator) step(v value, seg PathSegment, b binding) ([]value, error) {
	// A nameless segment is an inline filter applied to the current value.
	if seg.Name == "" {
		if seg.Filter == nil {
			return []value{v}, nil
		}
		ok, err := e.matchFilter(v, *seg.Filter, b)
		if err != nil {
			return nil, err
		}
		if ok {
			return []value{v}, nil
		}
		return nil, nil
	}
	name := seg.Name
	hops := 0
	if seg.Arg != nil {
		hops = *seg.Arg
	}
	filterAll := func(vals []value) ([]value, error) {
		if seg.Filter == nil {
			return vals, nil
		}
		var out []value
		for _, x := range vals {
			ok, err := e.matchFilter(x, *seg.Filter, b)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, x)
			}
		}
		return out, nil
	}
	switch {
	case v.version != nil:
		ver := v.version
		switch strings.ToLower(name) {
		case "relations", "relation":
			names := make([]string, 0, len(ver.Relations))
			for n := range ver.Relations {
				names = append(names, n)
			}
			sort.Strings(names)
			var out []value
			for _, n := range names {
				out = append(out, relationValue(ver.Relations[n]))
			}
			return filterAll(out)
		case "p":
			return filterAll(versionsToValues(ver.ancestors(hops)))
		case "d":
			return filterAll(versionsToValues(ver.descendants(hops)))
		case "n":
			return filterAll(versionsToValues(ver.neighborhood(hops)))
		case "parents":
			return filterAll(versionsToValues(ver.Parents))
		case "children":
			return filterAll(versionsToValues(ver.Children))
		case "id", "commit_id":
			return []value{scalarValue(relstore.Str(ver.ID))}, nil
		case "author":
			return []value{scalarValue(relstore.Str(ver.Author))}, nil
		case "msg", "commit_msg", "commit_message":
			return []value{scalarValue(relstore.Str(ver.Message))}, nil
		case "commit_ts", "creation_ts":
			return []value{scalarValue(relstore.Int(ver.CommitTS.Unix()))}, nil
		case "all":
			return []value{scalarValue(relstore.Str(ver.ID))}, nil
		default:
			// Treat an unknown segment as a relation name lookup, enabling
			// paths like Version(...).Employee.Tuples in extended syntax.
			if rel, ok := ver.Relations[name]; ok {
				return filterAll([]value{relationValue(rel)})
			}
			return nil, fmt.Errorf("vquel: version has no attribute or relation %q", name)
		}
	case v.relation != nil:
		rel := v.relation
		switch strings.ToLower(name) {
		case "tuples", "records":
			// Scalar filters over a relation's tuples push straight down to
			// the vectorized column scan when the filter is a plain
			// column-vs-literal comparison; only opaque filters fall back to
			// enumerating and testing tuple values one at a time.
			if sel, ok := e.pushdownTupleFilter(rel, seg.Filter); ok {
				out := make([]value, 0, len(sel))
				for _, i := range sel {
					out = append(out, tupleValue(rel, int(i)))
				}
				return out, nil
			}
			var out []value
			for i := 0; i < rel.Table.Len(); i++ {
				out = append(out, tupleValue(rel, i))
			}
			return filterAll(out)
		case "name":
			return []value{scalarValue(relstore.Str(rel.Name))}, nil
		case "changed":
			return []value{scalarValue(relstore.Bool(rel.Changed))}, nil
		case "version":
			// up-navigation is not tracked per relation; unsupported here.
			return nil, fmt.Errorf("vquel: Version(...) up-navigation from relations is not supported")
		default:
			return nil, fmt.Errorf("vquel: relation has no attribute %q", name)
		}
	case v.isTuple:
		rel := v.tupleRel
		switch strings.ToLower(name) {
		case "all":
			return []value{scalarValue(v.render())}, nil
		case "parents":
			var out []value
			for _, pIdx := range rel.Provenance[v.tupleIdx] {
				out = append(out, scalarValue(relstore.Int(int64(pIdx))))
			}
			return filterAll(out)
		case "id":
			return []value{scalarValue(relstore.Int(int64(v.tupleIdx)))}, nil
		default:
			// The Record entity is conceptually the union of all fields across
			// records (Figure 6.1), so a missing column reads as NULL rather
			// than erroring.
			idx := rel.Table.Schema.ColumnIndex(name)
			if idx < 0 {
				return []value{scalarValue(relstore.Null())}, nil
			}
			return []value{scalarValue(rel.Table.At(v.tupleIdx, idx))}, nil
		}
	case v.isScalar:
		// ".name" on a scalar (e.g. V.author.name) is the identity.
		if strings.EqualFold(name, "name") || strings.EqualFold(name, "all") {
			return []value{v}, nil
		}
		return nil, fmt.Errorf("vquel: cannot navigate %q from a scalar", name)
	default:
		return nil, fmt.Errorf("vquel: cannot navigate from an empty value")
	}
}

// pushdownTupleFilter recognizes inline tuple filters of the shape
// `column op literal` (either side) and evaluates them as one vectorized
// column scan (relstore.Table.FilterVec) instead of materializing and
// testing every tuple. It declines (ok=false) anything it cannot prove
// equivalent to the row-at-a-time path: opaque paths, aggregate operands,
// the special tuple attributes (all/parents/id), unknown columns, and
// unknown operators — those keep their historical evaluation and errors.
func (e *Evaluator) pushdownTupleFilter(rel *Relation, f *Comparison) (relstore.Selection, bool) {
	if f == nil {
		return nil, false
	}
	col, op, lit, ok := splitColumnComparison(rel, *f)
	if !ok {
		return nil, false
	}
	sel, err := rel.Table.FilterVec(col, op, lit)
	if err != nil {
		return nil, false
	}
	return sel, true
}

// splitColumnComparison normalizes a comparison to (column, op, literal),
// flipping the operator when the literal is on the left.
func splitColumnComparison(rel *Relation, f Comparison) (string, relstore.CmpOp, relstore.Value, bool) {
	op, ok := relstore.ParseCmpOp(f.Op)
	if !ok {
		return "", 0, relstore.Value{}, false
	}
	if col, ok := bareColumn(rel, f.Left); ok && f.Right.Literal != nil {
		return col, op, literalValue(*f.Right.Literal), true
	}
	if col, ok := bareColumn(rel, f.Right); ok && f.Left.Literal != nil {
		return col, flipCmpOp(op), literalValue(*f.Left.Literal), true
	}
	return "", 0, relstore.Value{}, false
}

// bareColumn reports whether the operand is a segment-free path naming a
// real (non-special) column of the relation.
func bareColumn(rel *Relation, op Operand) (string, bool) {
	if op.Path == nil || op.Agg != nil || op.Literal != nil || len(op.Path.Segments) != 0 {
		return "", false
	}
	name := op.Path.Base
	switch strings.ToLower(name) {
	case "all", "parents", "id":
		return "", false // special tuple attributes, not columns
	}
	if rel.Table.Schema.ColumnIndex(name) < 0 {
		return "", false
	}
	return name, true
}

// flipCmpOp mirrors an operator across the comparison (literal op column →
// column flipped-op literal).
func flipCmpOp(op relstore.CmpOp) relstore.CmpOp {
	switch op {
	case relstore.CmpLT:
		return relstore.CmpGT
	case relstore.CmpLE:
		return relstore.CmpGE
	case relstore.CmpGT:
		return relstore.CmpLT
	case relstore.CmpGE:
		return relstore.CmpLE
	default:
		return op
	}
}

func versionsToValues(vs []*Version) []value {
	out := make([]value, 0, len(vs))
	for _, v := range vs {
		out = append(out, versionValue(v))
	}
	return out
}

// matchFilter evaluates an inline filter against a value: the filter's left
// path is interpreted relative to the value.
func (e *Evaluator) matchFilter(v value, cmp Comparison, b binding) (bool, error) {
	left, err := e.operandRelative(cmp.Left, v, b)
	if err != nil {
		return false, err
	}
	right, err := e.operandRelative(cmp.Right, v, b)
	if err != nil {
		return false, err
	}
	return compareValues(left, cmp.Op, right)
}

// operandRelative resolves an operand either as a literal, or as a path
// whose base is an attribute of the current value (e.g. name = "Employee"),
// or as a path over the enclosing binding.
func (e *Evaluator) operandRelative(op Operand, v value, b binding) (relstore.Value, error) {
	if op.Literal != nil {
		return literalValue(*op.Literal), nil
	}
	if op.Agg != nil {
		return relstore.Null(), fmt.Errorf("vquel: aggregates are not allowed in inline filters")
	}
	if op.Path == nil {
		return relstore.Null(), fmt.Errorf("vquel: empty operand")
	}
	// Try the path as relative to the current value first.
	rel := PathSegment{Name: op.Path.Base}
	vals, err := e.step(v, rel, b)
	if err == nil && len(vals) > 0 && len(op.Path.Segments) == 0 {
		return vals[0].render(), nil
	}
	// Fall back to an absolute path over the binding.
	abs, absErr := e.evalPath(*op.Path, b)
	if absErr != nil {
		if err != nil {
			return relstore.Null(), err
		}
		return relstore.Null(), absErr
	}
	if len(abs) == 0 {
		return relstore.Null(), nil
	}
	return abs[0].render(), nil
}

func literalValue(l Literal) relstore.Value {
	if l.IsString {
		if ts, err := time.Parse("01/02/2006", l.S); err == nil {
			return relstore.Int(ts.Unix())
		}
		return relstore.Str(l.S)
	}
	if l.N == float64(int64(l.N)) {
		return relstore.Int(int64(l.N))
	}
	return relstore.Float(l.N)
}

func compareValues(a relstore.Value, op string, b relstore.Value) (bool, error) {
	cmp := a.Compare(b)
	switch op {
	case "=", "==":
		return cmp == 0, nil
	case "!=", "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("vquel: unknown comparison operator %q", op)
	}
}

// evalBool evaluates a boolean expression for a group: plain operands are
// resolved against the representative binding, aggregate operands over all
// bindings of the group.
func (e *Evaluator) evalBool(b *BoolExpr, rep binding, group []binding) (bool, error) {
	if b == nil {
		return true, nil
	}
	switch b.Op {
	case "and":
		l, err := e.evalBool(b.Left, rep, group)
		if err != nil || !l {
			return false, err
		}
		return e.evalBool(b.Right, rep, group)
	case "or":
		l, err := e.evalBool(b.Left, rep, group)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return e.evalBool(b.Right, rep, group)
	case "not":
		l, err := e.evalBool(b.Left, rep, group)
		return !l, err
	}
	left, err := e.evalOperandGroup(b.Leaf.Left, rep, group)
	if err != nil {
		return false, err
	}
	right, err := e.evalOperandGroup(b.Leaf.Right, rep, group)
	if err != nil {
		return false, err
	}
	return compareValues(left, b.Leaf.Op, right)
}

func (e *Evaluator) evalOperandGroup(op Operand, rep binding, group []binding) (relstore.Value, error) {
	switch {
	case op.Literal != nil:
		return literalValue(*op.Literal), nil
	case op.Agg != nil:
		return e.evalAggregate(op.Agg, group)
	case op.Path != nil:
		vals, err := e.evalPath(*op.Path, rep)
		if err != nil {
			return relstore.Null(), err
		}
		if len(vals) == 0 {
			return relstore.Null(), nil
		}
		return vals[0].render(), nil
	default:
		return relstore.Null(), fmt.Errorf("vquel: empty operand")
	}
}

// evalAggregate computes an aggregate over the bindings of a group.
func (e *Evaluator) evalAggregate(agg *Aggregate, group []binding) (relstore.Value, error) {
	var count int64
	var sum float64
	var min, max relstore.Value
	seen := map[string]bool{}
	for _, b := range group {
		if agg.Where != nil {
			ok, err := e.evalBool(agg.Where, b, []binding{b})
			if err != nil {
				return relstore.Null(), err
			}
			if !ok {
				continue
			}
		}
		vals, err := e.evalPath(agg.Path, b)
		if err != nil {
			return relstore.Null(), err
		}
		for _, v := range vals {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			count++
			r := v.render()
			sum += r.AsFloat()
			if min.IsNull() || r.Compare(min) < 0 {
				min = r
			}
			if max.IsNull() || r.Compare(max) > 0 {
				max = r
			}
		}
	}
	switch agg.Func {
	case "count":
		return relstore.Int(count), nil
	case "sum":
		return relstore.Float(sum), nil
	case "avg":
		if count == 0 {
			return relstore.Null(), nil
		}
		return relstore.Float(sum / float64(count)), nil
	case "min":
		return min, nil
	case "max":
		return max, nil
	default:
		return relstore.Null(), fmt.Errorf("vquel: unknown aggregate %q", agg.Func)
	}
}
