package vquel

import (
	"testing"
	"time"

	"repro/internal/cvd"
	"repro/internal/relstore"
	"repro/internal/vgraph"
)

// buildFigure61Repo builds the repository of Figure 6.1: three versions v01,
// v02, v03 each containing Employee and Department relations. v02 adds
// employees; v03 modifies one.
func buildFigure61Repo(t testing.TB) *Repository {
	t.Helper()
	empSchema := relstore.MustSchema([]relstore.Column{
		{Name: "employee_id", Type: relstore.TypeString},
		{Name: "last_name", Type: relstore.TypeString},
		{Name: "age", Type: relstore.TypeInt},
		{Name: "dept_id", Type: relstore.TypeInt},
	})
	deptSchema := relstore.MustSchema([]relstore.Column{
		{Name: "dept_id", Type: relstore.TypeInt},
		{Name: "name", Type: relstore.TypeString},
	})
	mkEmp := func(rows ...relstore.Row) *relstore.Table {
		tab := relstore.NewTable("Employee", empSchema)
		for _, r := range rows {
			tab.MustInsert(r)
		}
		return tab
	}
	mkDept := func() *relstore.Table {
		tab := relstore.NewTable("Department", deptSchema)
		tab.MustInsert(relstore.Row{relstore.Int(1), relstore.Str("eng")})
		tab.MustInsert(relstore.Row{relstore.Int(2), relstore.Str("bio")})
		return tab
	}
	e := func(id, last string, age, dept int64) relstore.Row {
		return relstore.Row{relstore.Str(id), relstore.Str(last), relstore.Int(age), relstore.Int(dept)}
	}
	repo := NewRepository()
	ts := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)
	v1 := &Version{ID: "v01", Author: "Alice", Message: "initial", CommitTS: ts,
		Relations: map[string]*Relation{
			"Employee":   {Name: "Employee", Changed: true, Table: mkEmp(e("e01", "Smith", 34, 1), e("e02", "Jones", 51, 1), e("e03", "Smith", 45, 2))},
			"Department": {Name: "Department", Changed: true, Table: mkDept()},
		}}
	if err := repo.AddVersion(v1); err != nil {
		t.Fatal(err)
	}
	v2 := &Version{ID: "v02", Author: "Bob", Message: "add hires", CommitTS: ts.AddDate(0, 1, 0),
		Relations: map[string]*Relation{
			"Employee":   {Name: "Employee", Changed: true, Table: mkEmp(e("e01", "Smith", 34, 1), e("e02", "Jones", 51, 1), e("e03", "Smith", 45, 2), e("e04", "Lee", 29, 2), e("e05", "Smith", 62, 1))},
			"Department": {Name: "Department", Changed: false, Table: mkDept()},
		}}
	if err := repo.AddVersion(v2, "v01"); err != nil {
		t.Fatal(err)
	}
	v3 := &Version{ID: "v03", Author: "Alice", Message: "fix age", CommitTS: ts.AddDate(0, 2, 0),
		Relations: map[string]*Relation{
			"Employee":   {Name: "Employee", Changed: true, Table: mkEmp(e("e01", "Smith", 35, 1), e("e02", "Jones", 51, 1), e("e03", "Smith", 45, 2))},
			"Department": {Name: "Department", Changed: false, Table: mkDept()},
		}}
	if err := repo.AddVersion(v3, "v01"); err != nil {
		t.Fatal(err)
	}
	return repo
}

func runQuery(t *testing.T, repo *Repository, q string) *Result {
	t.Helper()
	res, err := NewEvaluator(repo).Run(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

// Query 6.1: Who is the author of version v01?
func TestQuery61Author(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		retrieve V.author.name
		where V.id = "v01"`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "Alice" {
		t.Errorf("rows = %v, want [[Alice]]", res.Rows)
	}
}

// Query 6.2: What commits did Alice make after a date?
func TestQuery62CommitsByAuthorAfterDate(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		retrieve V.all
		where V.author.name = "Alice" and V.creation_ts >= 04/01/2015`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "v03" {
		t.Errorf("rows = %v, want [[v03]]", res.Rows)
	}
}

// Query 6.3: commit timestamps of versions containing the Employee relation.
func TestQuery63VersionsWithRelation(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of R is V.Relations
		retrieve V.commit_ts
		where R.name = "Employee"`)
	if len(res.Rows) != 3 {
		t.Errorf("got %d rows, want 3", len(res.Rows))
	}
}

// Query 6.4: commit history of the Employee relation in reverse
// chronological order.
func TestQuery64CommitHistorySorted(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of R is V.Relations
		retrieve V.creation_ts, V.author.name, V.commit_message
		where R.name = "Employee" and R.changed = "true"
		sort by V.creation_ts desc`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// Descending timestamps.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0].AsInt() > res.Rows[i-1][0].AsInt() {
			t.Errorf("rows not sorted descending: %v", res.Rows)
		}
	}
	if res.Rows[0][1].AsString() != "Alice" {
		t.Errorf("latest commit author = %q, want Alice", res.Rows[0][1].AsString())
	}
}

// Query 6.5: history of tuple e01 across versions.
func TestQuery65TupleHistory(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of R is V.Relations
		range of E is R.Tuples
		retrieve E.all, V.commit_id, V.creation_ts
		where E.employee_id = "e01" and R.name = "Employee"
		sort by V.creation_ts`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (one per version)", len(res.Rows))
	}
	if res.Rows[0][1].AsString() != "v01" {
		t.Errorf("first row version = %q, want v01", res.Rows[0][1].AsString())
	}
}

// Query 6.6-style: inline filters in range declarations.
func TestQuery66InlineFilters(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of E1 is Version(id = "v01").Relations(name = "Employee").Tuples
		range of E2 is Version(id = "v03").Relations(name = "Employee").Tuples
		retrieve E1.all
		where E1.employee_id = E2.employee_id and E1.age != E2.age`)
	// Only e01's age changed between v01 and v03.
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1: %v", len(res.Rows), res.Rows)
	}
}

// Query 6.7: for each version, count the relations inside it.
func TestQuery67CountRelationsPerVersion(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of R is V.Relations
		retrieve V.id, count(R)`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].AsInt() != 2 {
			t.Errorf("version %s has count %d, want 2", r[0].AsString(), r[1].AsInt())
		}
	}
}

// Query 6.8: versions containing exactly 3 employees named Smith.
func TestQuery68AggregateInWhere(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of E is V.Relations(name = "Employee").Tuples
		retrieve V.commit_id
		where count(E.employee_id where E.last_name = "Smith") = 3`)
	// v02 has Smith x3 (e01, e03, e05); v01 and v03 have 2.
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "v02" {
		t.Errorf("rows = %v, want [[v02]]", res.Rows)
	}
}

// Query 6.11-style: which version contains the most employees above age 50
// (expressed with max over an aggregate comparison instead of retrieve-into).
func TestAggregateTargetsAndSumAvg(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version
		range of E is V.Relations(name = "Employee").Tuples
		retrieve V.id, count(E), sum(E.age), avg(E.age), max(E.age), min(E.age)`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	byVersion := map[string][]relstore.Value{}
	for _, r := range res.Rows {
		byVersion[r[0].AsString()] = r
	}
	if byVersion["v02"][1].AsInt() != 5 {
		t.Errorf("count(v02) = %d, want 5", byVersion["v02"][1].AsInt())
	}
	if byVersion["v01"][2].AsFloat() != 34+51+45 {
		t.Errorf("sum age(v01) = %g, want 130", byVersion["v01"][2].AsFloat())
	}
	if byVersion["v03"][4].AsInt() != 51 {
		t.Errorf("max age(v03) = %d, want 51", byVersion["v03"][4].AsInt())
	}
	if byVersion["v02"][5].AsInt() != 29 {
		t.Errorf("min age(v02) = %d, want 29", byVersion["v02"][5].AsInt())
	}
}

// Query 6.13: versions within 2 commits of v01 with fewer than 100 employees.
func TestQuery613GraphTraversalN(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version(id = "v01")
		range of N is V.N(2)
		range of E is N.Relations(name = "Employee").Tuples
		retrieve N.all
		where count(E) < 100`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (v02 and v03)", len(res.Rows))
	}
}

// Graph traversal P and D.
func TestGraphTraversalPD(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of V is Version(id = "v02")
		range of P is V.P(1)
		retrieve P.id`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "v01" {
		t.Errorf("P(1) of v02 = %v, want v01", res.Rows)
	}
	res = runQuery(t, repo, `
		range of V is Version(id = "v01")
		range of D is V.D()
		retrieve unique D.id`)
	if len(res.Rows) != 2 {
		t.Errorf("descendants of v01 = %v, want 2", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"retrieve V.id",
		"range of V is Version retrieve",
		"range of V is Version select V.id",
		`range of V is Version retrieve V.id where V.id ~ "x"`,
		`range of V is Version retrieve V.id where`,
		`range of V is Version(id = "unterminated`,
		"range of V is Version retrieve V.id extra",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("query %q should fail to parse", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	repo := buildFigure61Repo(t)
	ev := NewEvaluator(repo)
	bad := []string{
		`range of V is Nothing retrieve V.id`,
		`range of V is Version retrieve V.bogus_field`,
		`range of V is Version range of R is V.Relations retrieve R.bogus`,
	}
	for _, q := range bad {
		if _, err := ev.Run(q); err == nil {
			t.Errorf("query %q should fail to evaluate", q)
		}
	}
}

func TestRepositoryErrors(t *testing.T) {
	repo := NewRepository()
	if err := repo.AddVersion(&Version{}); err == nil {
		t.Error("version without id should fail")
	}
	if err := repo.AddVersion(&Version{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := repo.AddVersion(&Version{ID: "a"}); err == nil {
		t.Error("duplicate version should fail")
	}
	if err := repo.AddVersion(&Version{ID: "b"}, "missing"); err == nil {
		t.Error("unknown parent should fail")
	}
	if _, ok := repo.Version("a"); !ok {
		t.Error("Version(a) should exist")
	}
	if len(repo.Versions()) != 1 {
		t.Error("Versions() should have one entry")
	}
}

func TestFromCVD(t *testing.T) {
	db := relstore.NewDatabase("db")
	schema := relstore.MustSchema([]relstore.Column{
		{Name: "protein1", Type: relstore.TypeString},
		{Name: "coexpression", Type: relstore.TypeInt},
	}, "protein1")
	c, err := cvd.Init(db, "interaction", schema, []relstore.Row{
		{relstore.Str("A"), relstore.Int(10)},
		{relstore.Str("B"), relstore.Int(90)},
	}, cvd.Options{Author: "alice", Message: "init"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit([]vgraph.VersionID{1}, []relstore.Row{
		{relstore.Str("A"), relstore.Int(10)},
		{relstore.Str("B"), relstore.Int(95)},
		{relstore.Str("C"), relstore.Int(50)},
	}, schema, "update", "bob"); err != nil {
		t.Fatal(err)
	}
	repo, err := FromCVD(c)
	if err != nil {
		t.Fatal(err)
	}
	res := runQuery(t, repo, `
		range of V is Version
		range of E is V.Relations(name = "interaction").Tuples
		retrieve V.id, count(E.protein1 where E.coexpression > 80)`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].AsInt() != 1 {
			t.Errorf("version %s: count = %d, want 1", r[0].AsString(), r[1].AsInt())
		}
	}
	// Version-graph queries work through the CVD bridge too.
	res = runQuery(t, repo, `
		range of V is Version(id = "v2")
		range of P is V.P()
		retrieve P.id`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "v1" {
		t.Errorf("ancestors of v2 = %v, want [v1]", res.Rows)
	}
}

// Inline scalar tuple filters push down to the vectorized column scan; the
// result must match the row-at-a-time evaluation exactly, for both operand
// orders and for filters the pushdown must decline (special attributes).
func TestTupleFilterPushdownEquivalence(t *testing.T) {
	repo := buildFigure61Repo(t)
	res := runQuery(t, repo, `
		range of E is Version(id = "v02").Relations(name = "Employee").Tuples(age > 40)
		retrieve E.employee_id, E.age`)
	if len(res.Rows) != 3 {
		t.Fatalf("age > 40 in v02: got %d rows, want 3: %v", len(res.Rows), res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].AsInt() <= 40 {
			t.Errorf("pushdown returned non-matching row: %v", r)
		}
	}
	// A string-typed column filter takes the same pushdown path.
	smiths := runQuery(t, repo, `
		range of E is Version(id = "v02").Relations(name = "Employee").Tuples(last_name = "Smith")
		retrieve E.employee_id`)
	if len(smiths.Rows) != 3 {
		t.Errorf("last_name = Smith in v02: got %d rows, want 3", len(smiths.Rows))
	}
	// The special tuple attribute `id` is NOT a column: the filter must fall
	// back to the row-at-a-time path and keep its tuple-index semantics.
	byIdx := runQuery(t, repo, `
		range of E is Version(id = "v02").Relations(name = "Employee").Tuples(id = 0)
		retrieve E.employee_id`)
	if len(byIdx.Rows) != 1 {
		t.Errorf("id = 0 filter: got %d rows, want 1 (tuple index, not a column)", len(byIdx.Rows))
	}
}
