// Package deltastore implements the compact storage engine for arbitrary
// data versioning of Chapter 7: given a collection of versions (of any
// format) and the storage / recreation costs of storing each version fully or
// as a delta from another version, it chooses a storage graph — which
// versions to materialize and which to store as deltas — trading off total
// storage cost against version recreation cost.
//
// The package provides the six problem variants of Table 7.1 and the
// algorithms the chapter proposes: minimum spanning tree / arborescence
// (Problem 7.1), shortest path tree (Problem 7.2), the LMG local-move greedy
// heuristic (Problems 7.3/7.5), the MP modified-Prim heuristic (Problems
// 7.4/7.6), the LAST balanced-tree construction for the undirected
// proportional case, and an exact solver for tiny instances used to validate
// the heuristics.
package deltastore

import (
	"fmt"
	"math"
	"sort"
)

// VersionID identifies a version; the dummy root is version 0.
const Root = 0

// Edge describes one way to obtain version To: either materialized fully
// (From == Root) or as a delta from version From. Storage is the bytes
// needed to store the delta (or the full version), Recreation the time/cost
// to recreate To given From is available.
type Edge struct {
	From, To   int
	Storage    float64
	Recreation float64
}

// Graph is the candidate storage graph: all known edges, including the
// materialization edges from the dummy root. Version ids are 1..N.
type Graph struct {
	n     int
	edges map[[2]int]Edge
}

// NewGraph creates a graph over n versions (ids 1..n).
func NewGraph(n int) *Graph {
	return &Graph{n: n, edges: make(map[[2]int]Edge)}
}

// NumVersions returns the number of versions (excluding the dummy root).
func (g *Graph) NumVersions() int { return g.n }

// SetMaterialization records the cost of storing version v in full.
func (g *Graph) SetMaterialization(v int, storage, recreation float64) error {
	return g.SetDelta(Root, v, storage, recreation)
}

// SetDelta records the cost of storing version to as a delta from version
// from. Costs must be non-negative.
func (g *Graph) SetDelta(from, to int, storage, recreation float64) error {
	if to < 1 || to > g.n || from < 0 || from > g.n {
		return fmt.Errorf("deltastore: edge (%d,%d) out of range [0..%d]", from, to, g.n)
	}
	if from == to {
		return fmt.Errorf("deltastore: self delta on version %d", to)
	}
	if storage < 0 || recreation < 0 {
		return fmt.Errorf("deltastore: negative cost on edge (%d,%d)", from, to)
	}
	g.edges[[2]int{from, to}] = Edge{From: from, To: to, Storage: storage, Recreation: recreation}
	return nil
}

// Delta returns the edge from→to if known.
func (g *Graph) Delta(from, to int) (Edge, bool) {
	e, ok := g.edges[[2]int{from, to}]
	return e, ok
}

// Edges returns all edges sorted by (from, to).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// InEdges returns all edges into version v.
func (g *Graph) InEdges(v int) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.To == v {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Validate checks that every version has at least a materialization edge, so
// a feasible solution always exists.
func (g *Graph) Validate() error {
	for v := 1; v <= g.n; v++ {
		if _, ok := g.Delta(Root, v); !ok {
			return fmt.Errorf("deltastore: version %d has no materialization cost", v)
		}
	}
	return nil
}

// Solution is a storage graph: Parent[v] tells how version v is stored —
// Root means materialized, any other value means stored as a delta from that
// version. A valid solution is a spanning tree (arborescence) rooted at the
// dummy root (Lemma 7.1).
type Solution struct {
	Parent []int // indexed 1..n; Parent[0] unused
}

// NewSolution allocates a solution for n versions with all parents unset (-1).
func NewSolution(n int) Solution {
	p := make([]int, n+1)
	for i := range p {
		p[i] = -1
	}
	p[0] = 0
	return Solution{Parent: p}
}

// Costs summarizes a solution's objective values.
type Costs struct {
	// TotalStorage is C, the total storage cost.
	TotalStorage float64
	// Recreation[v] is R_v, the cost of recreating version v along its path
	// from a materialized version.
	Recreation []float64
	// SumRecreation is Σ R_v.
	SumRecreation float64
	// MaxRecreation is max_v R_v.
	MaxRecreation float64
}

// Evaluate computes the costs of a solution against the graph. It errors if
// the solution is not a valid spanning tree or uses unknown edges.
func (g *Graph) Evaluate(s Solution) (Costs, error) {
	if len(s.Parent) != g.n+1 {
		return Costs{}, fmt.Errorf("deltastore: solution covers %d versions, graph has %d", len(s.Parent)-1, g.n)
	}
	c := Costs{Recreation: make([]float64, g.n+1)}
	// Verify tree structure and compute recreation by walking to the root
	// with memoization.
	state := make([]int, g.n+1) // 0 = unvisited, 1 = in progress, 2 = done
	var visit func(v int) error
	visit = func(v int) error {
		if v == Root || state[v] == 2 {
			return nil
		}
		if state[v] == 1 {
			return fmt.Errorf("deltastore: cycle detected at version %d", v)
		}
		state[v] = 1
		p := s.Parent[v]
		if p < 0 {
			return fmt.Errorf("deltastore: version %d has no parent", v)
		}
		e, ok := g.Delta(p, v)
		if !ok {
			return fmt.Errorf("deltastore: solution uses unknown edge (%d,%d)", p, v)
		}
		if err := visit(p); err != nil {
			return err
		}
		c.Recreation[v] = c.Recreation[p] + e.Recreation
		c.TotalStorage += e.Storage
		state[v] = 2
		return nil
	}
	for v := 1; v <= g.n; v++ {
		if err := visit(v); err != nil {
			return Costs{}, err
		}
	}
	for v := 1; v <= g.n; v++ {
		c.SumRecreation += c.Recreation[v]
		if c.Recreation[v] > c.MaxRecreation {
			c.MaxRecreation = c.Recreation[v]
		}
	}
	return c, nil
}

// Materialized returns the versions stored in full, sorted.
func (s Solution) Materialized() []int {
	var out []int
	for v := 1; v < len(s.Parent); v++ {
		if s.Parent[v] == Root {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a copy of the solution.
func (s Solution) Clone() Solution {
	p := make([]int, len(s.Parent))
	copy(p, s.Parent)
	return Solution{Parent: p}
}

// RecreationPath returns the chain of versions applied to recreate v,
// starting from the materialized ancestor and ending at v.
func (s Solution) RecreationPath(v int) ([]int, error) {
	if v < 1 || v >= len(s.Parent) {
		return nil, fmt.Errorf("deltastore: version %d out of range", v)
	}
	var rev []int
	for cur := v; cur != Root; cur = s.Parent[cur] {
		if s.Parent[cur] < 0 {
			return nil, fmt.Errorf("deltastore: version %d is not connected to the root", cur)
		}
		rev = append(rev, cur)
		if len(rev) > len(s.Parent) {
			return nil, fmt.Errorf("deltastore: cycle while recreating version %d", v)
		}
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// inf is a large sentinel cost.
var inf = math.Inf(1)
