package deltastore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineDiffRoundTrip(t *testing.T) {
	enc := LineDiff{}
	base := []byte("a,1\nb,2\nc,3\n")
	target := []byte("a,1\nb,20\nc,3\nd,4\n")
	delta := enc.Diff(base, target)
	got, err := enc.Apply(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Errorf("round trip: got %q, want %q", got, target)
	}
	// The delta for a small change is much smaller than the full target.
	if len(delta) >= len(target) {
		t.Errorf("delta (%d bytes) not smaller than target (%d bytes)", len(delta), len(target))
	}
	if enc.Name() == "" {
		t.Error("encoder must have a name")
	}
}

func TestLineDiffEdgeCases(t *testing.T) {
	enc := LineDiff{}
	cases := []struct{ base, target string }{
		{"", "x\ny\n"},
		{"x\ny\n", ""},
		{"", ""},
		{"same\n", "same\n"},
		{"a\nb\nc\n", "c\nb\na\n"},
		{"a\n\n\nb\n", "a\nb\n\n"},
	}
	for i, c := range cases {
		delta := enc.Diff([]byte(c.base), []byte(c.target))
		got, err := enc.Apply([]byte(c.base), delta)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if !bytes.Equal(normalizeNewline(got), normalizeNewline([]byte(c.target))) && len(c.target) > 0 {
			t.Errorf("case %d: got %q, want %q", i, got, c.target)
		}
	}
	// Corrupt deltas are rejected, not mis-applied.
	if _, err := enc.Apply([]byte("a\n"), []byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("corrupt delta should fail")
	}
}

func TestXORDiffRoundTrip(t *testing.T) {
	enc := XORDiff{}
	base := []byte("hello world, this is version one")
	target := []byte("hello world, this is version two!")
	delta := enc.Diff(base, target)
	got, err := enc.Apply(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Errorf("round trip: got %q, want %q", got, target)
	}
	if enc.Name() != "xor" {
		t.Error("wrong name")
	}
	// Symmetric: |Diff(a,b)| is close to |Diff(b,a)|.
	d1, d2 := enc.Diff(base, target), enc.Diff(target, base)
	diff := len(d1) - len(d2)
	if diff < -4 || diff > 4 {
		t.Errorf("xor deltas should be near-symmetric: %d vs %d", len(d1), len(d2))
	}
}

// Property: line-diff and xor round-trip arbitrary line-structured content.
func TestEncoderRoundTripProperty(t *testing.T) {
	encs := []Encoder{LineDiff{}, XORDiff{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkDoc := func() []byte {
			var b bytes.Buffer
			n := rng.Intn(30)
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "row-%d,%d\n", rng.Intn(20), rng.Intn(1000))
			}
			return b.Bytes()
		}
		base, target := mkDoc(), mkDoc()
		for _, enc := range encs {
			delta := enc.Diff(base, target)
			got, err := enc.Apply(base, delta)
			if err != nil {
				return false
			}
			if !bytes.Equal(normalizeNewline(got), normalizeNewline(target)) && len(target) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// buildVersionedFiles produces a chain-with-branches collection of CSV-like
// documents where each version modifies a few lines of its parent.
func buildVersionedFiles(n int, seed int64) ([][]byte, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	var versions [][]byte
	var pairs [][2]int
	var mkBase bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&mkBase, "gene%04d,%d,%d\n", i, rng.Intn(100), rng.Intn(100))
	}
	versions = append(versions, mkBase.Bytes())
	for v := 2; v <= n; v++ {
		parent := rng.Intn(len(versions)) // branch from any earlier version
		lines := bytes.Split(bytes.TrimSuffix(versions[parent], []byte("\n")), []byte("\n"))
		out := make([][]byte, len(lines))
		copy(out, lines)
		for m := 0; m < 10; m++ {
			idx := rng.Intn(len(out))
			out[idx] = []byte(fmt.Sprintf("gene%04d,%d,%d", idx, rng.Intn(100), rng.Intn(100)))
		}
		out = append(out, []byte(fmt.Sprintf("gene%04d,%d,%d", 1000+v, rng.Intn(100), rng.Intn(100))))
		doc := append(bytes.Join(out, []byte("\n")), '\n')
		versions = append(versions, doc)
		pairs = append(pairs, [2]int{parent + 1, v})
		pairs = append(pairs, [2]int{v, parent + 1})
	}
	return versions, pairs
}

func TestStoreEndToEnd(t *testing.T) {
	contents, pairs := buildVersionedFiles(12, 3)
	s := NewStore(LineDiff{})
	for _, c := range contents {
		s.AddVersion(c)
	}
	if s.NumVersions() != 12 {
		t.Fatalf("NumVersions = %d", s.NumVersions())
	}
	g, err := s.BuildGraph(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum-storage plan: build and verify every version recreates.
	mst, err := MinimumStorage(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(mst); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	mstBytes, err := s.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Materializing everything costs much more.
	all := NewSolution(s.NumVersions())
	for v := 1; v <= s.NumVersions(); v++ {
		all.Parent[v] = Root
	}
	if err := s.Build(all); err != nil {
		t.Fatal(err)
	}
	allBytes, _ := s.StorageBytes()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if mstBytes >= allBytes {
		t.Errorf("delta storage (%d bytes) should beat full materialization (%d bytes)", mstBytes, allBytes)
	}
	// Recreation under the MST plan reads more bytes for deep versions than
	// materializing them would.
	if err := s.Build(mst); err != nil {
		t.Fatal(err)
	}
	_, bytesRead, err := s.Recreate(12)
	if err != nil {
		t.Fatal(err)
	}
	if bytesRead <= 0 {
		t.Error("recreation should read bytes")
	}
	// Content round trip through a balanced plan too.
	sptTheta := 3.0 * float64(len(contents[0]))
	mp, err := MinStorageUnderMaxRecreation(g, sptTheta)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(mp); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore(LineDiff{})
	if _, err := s.BuildGraph(nil); err == nil {
		t.Error("BuildGraph on empty store should fail")
	}
	if err := s.Build(NewSolution(0)); err == nil {
		t.Error("Build before BuildGraph should fail")
	}
	if _, err := s.StorageBytes(); err == nil {
		t.Error("StorageBytes before Build should fail")
	}
	if _, _, err := s.Recreate(1); err == nil {
		t.Error("Recreate before Build should fail")
	}
	s.AddVersion([]byte("a\n"))
	s.AddVersion([]byte("b\n"))
	if _, err := s.BuildGraph([][2]int{{1, 99}}); err == nil {
		t.Error("invalid pair should fail")
	}
	if _, err := s.BuildGraph([][2]int{{1, 1}}); err == nil {
		t.Error("self pair should fail")
	}
	if _, ok := s.Content(1); !ok {
		t.Error("Content(1) missing")
	}
	if _, ok := s.Content(99); ok {
		t.Error("Content(99) should not exist")
	}
}

func TestStoreAllPairsGraph(t *testing.T) {
	s := NewStore(LineDiff{})
	s.AddVersion([]byte("a\nb\n"))
	s.AddVersion([]byte("a\nb\nc\n"))
	s.AddVersion([]byte("a\nx\nc\n"))
	g, err := s.BuildGraph(nil)
	if err != nil {
		t.Fatal(err)
	}
	// All ordered pairs plus materializations: 3*2 + 3 edges.
	if len(g.Edges()) != 9 {
		t.Errorf("edges = %d, want 9", len(g.Edges()))
	}
	if s.Graph() != g {
		t.Error("Graph() should return the built graph")
	}
}
